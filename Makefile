.PHONY: all build test campaign-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

# Short randomized campaign as a CI gate: the stuck-at mix is fully
# covered by IFA-9, so any escape or oracle divergence is a regression
# (--fail-on-anomaly exits 3 in that case).
campaign-smoke: build
	dune exec bin/bisramgen.exe -- campaign --trials 50 --seed 7 \
	  --mix stuck-at --fail-on-anomaly > /dev/null

ci: build test campaign-smoke
	@echo "ci: OK"

clean:
	dune clean
