.PHONY: all build test campaign-smoke campaign-determinism estimator-smoke bench-json bench-smoke bench-check bench-check-advisory trace-smoke events-smoke bench-page explore-smoke chaos-smoke bira-smoke resume-determinism ci clean

all: build

build:
	dune build

test: build
	dune runtest

# Short randomized campaign as a CI gate: the stuck-at mix is fully
# covered by IFA-9, so any escape or oracle divergence is a regression
# (--fail-on-anomaly exits 3 in that case).  Runs on two worker domains
# to exercise the parallel scheduler in CI.
campaign-smoke: build
	dune exec bin/bisramgen.exe -- campaign --trials 50 --seed 7 \
	  --mix stuck-at --fail-on-anomaly --jobs 2 > /dev/null

# Determinism gate: the parallel report must be byte-identical to the
# sequential one for the same config and seed, and the lane-batched
# scheduler (--batch-lanes 62, the default) must be byte-identical to
# the scalar one (--batch-lanes 1) — with enough trials to form full
# 62-wide batches and a ragged tail, at both a faulty and a
# mostly-clean fault load (clean lanes are the ones the batch engine
# resolves without unpacking, so both paths must be covered).
campaign-determinism: build
	dune exec bin/bisramgen.exe -- campaign --trials 50 --seed 7 \
	  --mix stuck-at --jobs 1 > .ci-campaign-jobs1.json
	dune exec bin/bisramgen.exe -- campaign --trials 50 --seed 7 \
	  --mix stuck-at --jobs 2 > .ci-campaign-jobs2.json
	diff .ci-campaign-jobs1.json .ci-campaign-jobs2.json
	dune exec bin/bisramgen.exe -- campaign --trials 130 --seed 7 \
	  --mix stuck-at --batch-lanes 62 --jobs 2 > .ci-campaign-lanes62.json
	dune exec bin/bisramgen.exe -- campaign --trials 130 --seed 7 \
	  --mix stuck-at --batch-lanes 1 --jobs 1 > .ci-campaign-lanes1.json
	diff .ci-campaign-lanes62.json .ci-campaign-lanes1.json
	dune exec bin/bisramgen.exe -- campaign --trials 130 --seed 7 \
	  --mode poisson --mean 0.4 --batch-lanes 62 --jobs 2 \
	  > .ci-campaign-planes62.json
	dune exec bin/bisramgen.exe -- campaign --trials 130 --seed 7 \
	  --mode poisson --mean 0.4 --batch-lanes 1 --jobs 1 \
	  > .ci-campaign-planes1.json
	diff .ci-campaign-planes62.json .ci-campaign-planes1.json
	rm -f .ci-campaign-jobs1.json .ci-campaign-jobs2.json \
	  .ci-campaign-lanes62.json .ci-campaign-lanes1.json \
	  .ci-campaign-planes62.json .ci-campaign-planes1.json
	@echo "campaign-determinism: OK"

# Rare-event estimation gate.  (1) Adaptive stopping must actually
# save trials: on a rigged low-density config (poisson mean 0.02, zero
# spare rows, so the repair-failure rate is ~0.0198) the stratified
# proposal must reach the CI target in strictly fewer trials than
# naive adaptive sampling.  (2) The importance-weighted report must be
# byte-identical across --jobs counts — the weighted sums accumulate
# in strict trial order, so parallel fan-out must not perturb a single
# float.
estimator-smoke: build
	dune exec bin/bisramgen.exe -- campaign --spares 0 --mix stuck-at \
	  --mode poisson --mean 0.02 --seed 7 --jobs 2 --no-shrink \
	  --target-ci 0.25 --ci-batch 992 --ci-max-trials 20000 \
	  --proposal-nonzero 0.5 > .ci-est-strat.json 2> /dev/null
	dune exec bin/bisramgen.exe -- campaign --spares 0 --mix stuck-at \
	  --mode poisson --mean 0.02 --seed 7 --jobs 2 --no-shrink \
	  --target-ci 0.25 --ci-batch 992 --ci-max-trials 20000 \
	  > .ci-est-naive.json 2> /dev/null
	@s=$$(sed -n 's/^ *"trials_run": \([0-9]*\),*$$/\1/p' .ci-est-strat.json); \
	n=$$(sed -n 's/^ *"trials_run": \([0-9]*\),*$$/\1/p' .ci-est-naive.json); \
	echo "estimator-smoke: stratified $$s trials vs naive $$n"; \
	test "$$s" -lt "$$n"
	dune exec bin/bisramgen.exe -- campaign --spares 0 --mix stuck-at \
	  --mode poisson --mean 0.05 --seed 7 --trials 400 --no-shrink \
	  --proposal-count-scale 10 --jobs 1 > .ci-est-is1.json
	dune exec bin/bisramgen.exe -- campaign --spares 0 --mix stuck-at \
	  --mode poisson --mean 0.05 --seed 7 --trials 400 --no-shrink \
	  --proposal-count-scale 10 --jobs 2 > .ci-est-is2.json
	diff .ci-est-is1.json .ci-est-is2.json
	rm -f .ci-est-strat.json .ci-est-naive.json .ci-est-is1.json \
	  .ci-est-is2.json
	@echo "estimator-smoke: OK"

# Machine-readable perf trajectory: campaign throughput at several
# --jobs levels plus fast-vs-legacy kernel microbenchmarks, written to
# the repo root so subsequent changes have a baseline to regress
# against (see EXPERIMENTS.md for the interpretation).
bench-json: build
	dune exec bench/bench_json.exe -- -o BENCH_campaign.json

# Wiring check for the bench harness itself: tiny trial/rep counts, a
# throwaway output file (its numbers are noise by design — bench-json
# is the one that regenerates the committed baseline).
bench-smoke: build
	dune exec bench/bench_json.exe -- --smoke -o .ci-bench-smoke.json
	rm -f .ci-bench-smoke.json
	@echo "bench-smoke: OK"

# Perf regression gate: a fresh --quick bench run (campaign + lanes
# sections only) against the committed baseline, failing when
# trials_per_sec dropped beyond the noise tolerance.  `make ci` runs
# it through bench-check-advisory — warn-only — because CI boxes
# (especially 1-core containers) are too noisy to hard-fail on wall
# clock; run the strict form manually on a quiet machine.
BENCH_CHECK_FLAGS ?=
bench-check: build
	dune exec bench/bench_json.exe -- --quick -o .ci-bench-fresh.json
	dune exec bench/bench_check.exe -- --baseline BENCH_campaign.json \
	  --fresh .ci-bench-fresh.json $(BENCH_CHECK_FLAGS)
	rm -f .ci-bench-fresh.json
	@echo "bench-check: OK"

bench-check-advisory:
	$(MAKE) bench-check BENCH_CHECK_FLAGS=--advisory

# Telemetry wiring check: a tiny instrumented campaign must produce a
# well-formed Chrome trace and metrics file with the always-present
# keys (trial spans, campaign/model/pool counters, cycle histogram).
trace-smoke: build
	dune exec bin/bisramgen.exe -- campaign --trials 6 --seed 11 --jobs 2 \
	  --trace .ci-trace-smoke.trace.json \
	  --metrics .ci-trace-smoke.metrics.json > /dev/null
	dune exec bench/trace_check.exe -- --trace .ci-trace-smoke.trace.json \
	  --metrics .ci-trace-smoke.metrics.json
	rm -f .ci-trace-smoke.trace.json .ci-trace-smoke.metrics.json
	@echo "trace-smoke: OK"

# Observability wiring check: a small campaign with the event log,
# live progress and status file armed must (1) produce a JSONL event
# log that strict-parses line by line with the run lifecycle pair and
# a final status snapshot (events_check), and (2) produce a report
# byte-identical to the same run with every observability channel off.
events-smoke: build
	dune exec bin/bisramgen.exe -- campaign --trials 40 --seed 7 \
	  --mix stuck-at --jobs 2 --events .ci-events.jsonl --progress \
	  --status-file .ci-status.json > .ci-events-on.json 2> /dev/null
	dune exec bin/bisramgen.exe -- campaign --trials 40 --seed 7 \
	  --mix stuck-at --jobs 2 > .ci-events-off.json
	diff .ci-events-on.json .ci-events-off.json
	dune exec bench/events_check.exe -- --events .ci-events.jsonl \
	  --status .ci-status.json
	rm -f .ci-events.jsonl .ci-status.json .ci-events-on.json \
	  .ci-events-off.json
	@echo "events-smoke: OK"

# Bench trajectory page: render BENCH_history.jsonl to a static HTML
# trend page (advisory against the committed baseline — same noise
# rationale as bench-check-advisory), then prove the --check gate has
# teeth by rendering a synthetic history whose latest campaign
# throughput is floored to 1 trial/s: that run must exit non-zero.
bench-page: build
	dune exec bench/bench_page.exe -- --history BENCH_history.jsonl \
	  --baseline BENCH_campaign.json -o .ci-bench-page.html \
	  --check --advisory
	sed 's/"campaign_trials_per_sec_jobs1":[0-9.eE+-]*/"campaign_trials_per_sec_jobs1":1.0/' \
	  BENCH_history.jsonl > .ci-bench-history-regressed.jsonl
	! dune exec bench/bench_page.exe -- \
	  --history .ci-bench-history-regressed.jsonl \
	  --baseline BENCH_campaign.json -o .ci-bench-page-regressed.html \
	  --check
	rm -f .ci-bench-page.html .ci-bench-page-regressed.html \
	  .ci-bench-history-regressed.jsonl
	@echo "bench-page: OK"

# Explore determinism + cache gate: the tiny example sweep must produce
# byte-identical reports sequentially and in parallel, and a second run
# resuming from the first run's cache must hit on every evaluation.
explore-smoke: build
	rm -rf .ci-explore-cache
	dune exec bin/bisramgen.exe -- explore --spec examples/explore_smoke.spec \
	  --jobs 1 --cache .ci-explore-cache > .ci-explore-jobs1.json
	dune exec bin/bisramgen.exe -- explore --spec examples/explore_smoke.spec \
	  --jobs 2 --cache .ci-explore-cache --resume \
	  > .ci-explore-jobs2.json 2> .ci-explore-warm.err
	diff .ci-explore-jobs1.json .ci-explore-jobs2.json
	grep -q "(100.0% hit rate)" .ci-explore-warm.err
	rm -rf .ci-explore-cache .ci-explore-jobs1.json .ci-explore-jobs2.json \
	  .ci-explore-warm.err
	@echo "explore-smoke: OK"

# Fault-injection gate: with deterministic chaos armed, transient job
# failures must be absorbed by the pool's retry and injected cache
# corruption must quarantine-and-recompute — both byte-identical to the
# clean run (the whole point of the fault-tolerant execution layer).
chaos-smoke: build
	dune exec bin/bisramgen.exe -- campaign --trials 40 --seed 7 \
	  --mix stuck-at --jobs 2 > .ci-chaos-clean.json
	BISRAM_CHAOS_SEED=11 BISRAM_CHAOS_JOB=0.2 \
	  dune exec bin/bisramgen.exe -- campaign --trials 40 --seed 7 \
	  --mix stuck-at --jobs 2 > .ci-chaos-faulted.json
	diff .ci-chaos-clean.json .ci-chaos-faulted.json
	rm -rf .ci-chaos-cache
	dune exec bin/bisramgen.exe -- explore --spec examples/explore_smoke.spec \
	  --jobs 1 --cache .ci-chaos-cache > .ci-chaos-explore-cold.json
	BISRAM_CHAOS_SEED=3 BISRAM_CHAOS_CACHE_READ=0.5 \
	  dune exec bin/bisramgen.exe -- explore \
	  --spec examples/explore_smoke.spec --jobs 2 --cache .ci-chaos-cache \
	  --resume > .ci-chaos-explore-heal.json 2> .ci-chaos-explore.err
	diff .ci-chaos-explore-cold.json .ci-chaos-explore-heal.json
	grep -q "cache self-heal" .ci-chaos-explore.err
	rm -rf .ci-chaos-cache .ci-chaos-clean.json .ci-chaos-faulted.json \
	  .ci-chaos-explore-cold.json .ci-chaos-explore-heal.json \
	  .ci-chaos-explore.err
	@echo "chaos-smoke: OK"

# 2D BIRA gate: (1) the default row-TLB report must still match the
# committed golden bytes (test/golden_row_tlb.json) — the BIRA layer
# must be invisible unless asked for; (2) every BIRA allocator's report
# must be byte-identical across worker counts and lane widths, since
# fault-list collection rides the batched kernels; (3) a bogus
# --repair name must be rejected with the usage exit code (2).
bira-smoke: build
	dune exec bin/bisramgen.exe -- campaign --trials 60 --seed 7 --jobs 1 \
	  > .ci-bira-golden.json
	cmp .ci-bira-golden.json test/golden_row_tlb.json
	for s in bira-greedy bira-essential bira-bnb; do \
	  dune exec bin/bisramgen.exe -- campaign --trials 40 --seed 11 \
	    --mode poisson --mean 3 --spare-cols 2 --repair $$s \
	    --jobs 1 --batch-lanes 1 > .ci-bira-$$s-a.json && \
	  dune exec bin/bisramgen.exe -- campaign --trials 40 --seed 11 \
	    --mode poisson --mean 3 --spare-cols 2 --repair $$s \
	    --jobs 2 --batch-lanes 62 > .ci-bira-$$s-b.json && \
	  diff .ci-bira-$$s-a.json .ci-bira-$$s-b.json || exit 1; \
	done
	dune exec bin/bisramgen.exe -- campaign --repair frobnicate \
	  > /dev/null 2>&1; test $$? -eq 2
	rm -f .ci-bira-golden.json .ci-bira-bira-greedy-a.json \
	  .ci-bira-bira-greedy-b.json .ci-bira-bira-essential-a.json \
	  .ci-bira-bira-essential-b.json .ci-bira-bira-bnb-a.json \
	  .ci-bira-bira-bnb-b.json
	@echo "bira-smoke: OK"

# Crash-recovery gate: a campaign killed mid-run (injected exit 137 at
# trial 25) leaves a checkpoint from which --resume reproduces the
# uninterrupted report byte-for-byte.
resume-determinism: build
	rm -f .ci-resume.ckpt.json
	dune exec bin/bisramgen.exe -- campaign --trials 60 --seed 7 \
	  --mix stuck-at --jobs 2 > .ci-resume-full.json
	BISRAM_CHAOS_KILL_TRIAL=25 dune exec bin/bisramgen.exe -- campaign \
	  --trials 60 --seed 7 --mix stuck-at --jobs 2 \
	  --checkpoint .ci-resume.ckpt.json --checkpoint-every 5 \
	  > /dev/null; test $$? -eq 137
	test -s .ci-resume.ckpt.json
	dune exec bin/bisramgen.exe -- campaign --trials 60 --seed 7 \
	  --mix stuck-at --jobs 2 --checkpoint .ci-resume.ckpt.json --resume \
	  > .ci-resume-resumed.json 2> .ci-resume.err
	grep -q "resumed" .ci-resume.err
	diff .ci-resume-full.json .ci-resume-resumed.json
	rm -f .ci-resume-full.json .ci-resume-resumed.json .ci-resume.ckpt.json \
	  .ci-resume.err
	@echo "resume-determinism: OK"

ci: build test campaign-smoke campaign-determinism estimator-smoke bench-smoke bench-check-advisory trace-smoke events-smoke bench-page explore-smoke chaos-smoke bira-smoke resume-determinism
	@echo "ci: OK"

clean:
	dune clean
