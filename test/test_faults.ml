(* Tests for fault models, defect statistics and injection. *)

module F = Bisram_faults.Fault
module D = Bisram_faults.Defect
module I = Bisram_faults.Injection

let rng () = Random.State.make [| 42; 1999 |]

let cell r c = { F.row = r; F.col = c }

let test_fault_victims () =
  let v = cell 2 3 and a = cell 2 4 in
  Alcotest.(check bool) "saf victim" true
    (F.equal_cell v (F.victim (F.Stuck_at (v, true))));
  Alcotest.(check bool) "coupling victim" true
    (F.equal_cell v (F.victim (F.Coupling_inversion { aggressor = a; victim = v })));
  Alcotest.(check int) "coupling mentions both" 2
    (List.length (F.cells (F.Coupling_inversion { aggressor = a; victim = v })));
  Alcotest.(check int) "saf mentions one" 1
    (List.length (F.cells (F.Stuck_open v)))

let test_fault_class_names () =
  let fs =
    [ F.Stuck_at (cell 0 0, true)
    ; F.Transition (cell 0 0, true)
    ; F.Stuck_open (cell 0 0)
    ; F.Coupling_inversion { aggressor = cell 0 0; victim = cell 0 1 }
    ; F.Coupling_idempotent
        { aggressor = cell 0 0; rising = true; victim = cell 0 1; forces = true }
    ; F.State_coupling
        { aggressor = cell 0 0; when_state = true; victim = cell 0 1; reads_as = true }
    ; F.Data_retention (cell 0 0, false)
    ]
  in
  Alcotest.(check (list string))
    "classes cover all names" F.all_class_names
    (List.map F.class_name fs)

let test_poisson_mean () =
  let r = rng () in
  let n = 20000 in
  let mean = 7.5 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + D.poisson r mean
  done;
  let m = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "poisson mean %.3f ~ %.1f" m mean)
    true
    (abs_float (m -. mean) < 0.15)

let test_poisson_large_lambda () =
  let r = rng () in
  let n = 5000 in
  let mean = 120.0 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + D.poisson r mean
  done;
  let m = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "large-lambda mean" true (abs_float (m -. mean) < 2.0)

let test_negative_binomial_mean_and_var () =
  let r = rng () in
  let n = 30000 in
  let mean = 5.0 and alpha = 2.0 in
  let xs = Array.init n (fun _ -> float_of_int (D.negative_binomial r ~mean ~alpha)) in
  let m = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs /. float_of_int n
  in
  (* NB variance = mean + mean^2/alpha = 5 + 12.5 = 17.5 *)
  Alcotest.(check bool) (Printf.sprintf "nb mean %.2f" m) true (abs_float (m -. mean) < 0.2);
  Alcotest.(check bool)
    (Printf.sprintf "nb var %.2f (clustered > poisson)" var)
    true
    (var > 12.0 && var < 24.0)

let test_pmf_normalization () =
  let total_poisson = ref 0.0 and total_nb = ref 0.0 in
  for k = 0 to 200 do
    total_poisson := !total_poisson +. D.poisson_pmf ~mean:6.0 k;
    total_nb := !total_nb +. D.negative_binomial_pmf ~mean:6.0 ~alpha:2.0 k
  done;
  Alcotest.(check (float 1e-6)) "poisson pmf sums to 1" 1.0 !total_poisson;
  Alcotest.(check (float 1e-6)) "nb pmf sums to 1" 1.0 !total_nb

let test_nb_pmf_matches_sampler () =
  (* P(0) under clustering = Stapper yield formula (1+mean/alpha)^-alpha *)
  let p0 = D.negative_binomial_pmf ~mean:4.0 ~alpha:2.0 0 in
  Alcotest.(check (float 1e-9)) "nb p0 = stapper" ((1.0 +. 2.0) ** -2.0) p0

let test_injection_bounds () =
  let r = rng () in
  let faults = I.inject r ~rows:16 ~cols:8 ~mix:I.default_mix ~n:500 in
  Alcotest.(check int) "count" 500 (List.length faults);
  List.iter
    (fun f ->
      List.iter
        (fun (c : F.cell) ->
          Alcotest.(check bool) "row in range" true (c.F.row >= 0 && c.F.row < 16);
          Alcotest.(check bool) "col in range" true (c.F.col >= 0 && c.F.col < 8))
        (F.cells f))
    faults

let test_injection_stuck_at_only () =
  let r = rng () in
  let faults = I.inject r ~rows:8 ~cols:8 ~mix:I.stuck_at_only ~n:200 in
  List.iter
    (fun f ->
      match f with
      | F.Stuck_at _ -> ()
      | other ->
          Alcotest.failf "expected only SAF, got %s" (F.class_name other))
    faults

let test_injection_mix_hits_all_classes () =
  let r = rng () in
  let faults = I.inject r ~rows:32 ~cols:32 ~mix:I.default_mix ~n:2000 in
  let seen = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace seen (F.class_name f) ()) faults;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " appears") true (Hashtbl.mem seen name))
    F.all_class_names

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_mix_rejects_negative_weight () =
  let bad = { I.default_mix with I.transition = -0.1 } in
  expect_invalid "validate_mix" (fun () -> I.validate_mix bad);
  expect_invalid "inject" (fun () ->
      I.inject (rng ()) ~rows:8 ~cols:8 ~mix:bad ~n:1);
  expect_invalid "random_fault" (fun () ->
      I.random_fault (rng ()) ~rows:8 ~cols:8 ~mix:bad)

let test_mix_rejects_all_zero () =
  let zero =
    { I.stuck_at = 0.0
    ; transition = 0.0
    ; stuck_open = 0.0
    ; coupling_inversion = 0.0
    ; coupling_idempotent = 0.0
    ; state_coupling = 0.0
    ; data_retention = 0.0
    }
  in
  expect_invalid "validate_mix" (fun () -> I.validate_mix zero);
  (* validated even when no fault would actually be drawn *)
  expect_invalid "inject n=0" (fun () ->
      I.inject (rng ()) ~rows:8 ~cols:8 ~mix:zero ~n:0);
  expect_invalid "inject_poisson" (fun () ->
      I.inject_poisson (rng ()) ~rows:8 ~cols:8 ~mix:zero ~mean:2.0)

let test_mix_valid_passes () =
  I.validate_mix I.default_mix;
  I.validate_mix I.stuck_at_only;
  Alcotest.(check pass) "valid mixes accepted" () ()

let test_faulty_rows () =
  let fs =
    [ F.Stuck_at (cell 5 0, true)
    ; F.Stuck_at (cell 2 3, false)
    ; F.Stuck_open (cell 5 7)
    ]
  in
  Alcotest.(check (list int)) "dedup + sort" [ 2; 5 ] (I.faulty_rows fs)

let prop_coupling_aggressor_adjacent =
  QCheck.Test.make ~name:"coupling aggressors physically adjacent" ~count:500
    QCheck.(pair (int_range 2 40) (int_range 2 40))
    (fun (rows, cols) ->
      let r = rng () in
      let fs = I.inject r ~rows ~cols ~mix:I.default_mix ~n:50 in
      List.for_all
        (fun f ->
          match f with
          | F.Coupling_inversion { aggressor = a; victim = v }
          | F.Coupling_idempotent { aggressor = a; victim = v; _ }
          | F.State_coupling { aggressor = a; victim = v; _ } ->
              abs (a.F.row - v.F.row) + abs (a.F.col - v.F.col) = 1
          | F.Stuck_at _ | F.Transition _ | F.Stuck_open _
          | F.Data_retention _ ->
              true)
        fs)

let prop_gamma_positive =
  QCheck.Test.make ~name:"gamma sampler positive" ~count:300
    QCheck.(pair (float_range 0.2 10.0) (float_range 0.1 10.0))
    (fun (shape, scale) ->
      let r = rng () in
      D.gamma r ~shape ~scale > 0.0)

(* ------------------------------------------------------------------ *)
(* Spatial defects *)

module Sp = Bisram_faults.Spatial

let test_radius_bounds_and_skew () =
  let r = rng () in
  let n = 5000 in
  let small = ref 0 in
  for _ = 1 to n do
    let rad = Sp.sample_radius r ~r_min:1 ~r_max:100 in
    Alcotest.(check bool) "in range" true (rad >= 1 && rad <= 100);
    if rad <= 2 then incr small
  done;
  (* 1/r^3: most defects are near the minimum size *)
  Alcotest.(check bool)
    (Printf.sprintf "small-defect fraction %.2f" (float_of_int !small /. float_of_int n))
    true
    (float_of_int !small /. float_of_int n > 0.6)

let test_cells_hit_geometry () =
  (* 24x20 cells; defect well inside cell (1,2) *)
  let d = { Sp.x = (2 * 24) + 12; y = 20 + 10; radius = 3 } in
  Alcotest.(check (list (pair int int))) "single cell" [ (1, 2) ]
    (Sp.cells_hit ~cell_w:24 ~cell_h:20 ~rows:8 ~cols:8 d);
  (* defect on a vertical cell boundary hits both neighbours *)
  let d2 = { Sp.x = 24; y = 10; radius = 2 } in
  Alcotest.(check (list (pair int int))) "two cells" [ (0, 0); (0, 1) ]
    (List.sort compare (Sp.cells_hit ~cell_w:24 ~cell_h:20 ~rows:8 ~cols:8 d2));
  (* big defect clipped at the array corner *)
  let d3 = { Sp.x = 0; y = 0; radius = 25 } in
  let hits = Sp.cells_hit ~cell_w:24 ~cell_h:20 ~rows:8 ~cols:8 d3 in
  Alcotest.(check bool) "several cells" true (List.length hits >= 3);
  List.iter
    (fun (r, c) ->
      Alcotest.(check bool) "clipped" true (r >= 0 && r < 8 && c >= 0 && c < 8))
    hits

let test_faults_of_defect_bridges () =
  let r = rng () in
  let d = { Sp.x = 24; y = 10; radius = 4 } in
  let faults =
    Sp.faults_of_defect r ~cell_w:24 ~cell_h:20 ~rows:8 ~cols:8 d
  in
  let stuck, bridges =
    List.partition (function F.Stuck_at _ -> true | _ -> false) faults
  in
  Alcotest.(check int) "one bridge between two hits" (List.length stuck - 1)
    (List.length bridges)

let test_spatial_inject_clusters_rows () =
  (* large defects hit multiple adjacent rows; single-cell injection
     never does within one "defect" *)
  let r = rng () in
  let faults =
    Sp.inject r ~cell_w:24 ~cell_h:20 ~rows:64 ~cols:16 ~r_min:30 ~r_max:60
      ~mean:3.0 ~alpha:2.0
  in
  if faults <> [] then begin
    let rows = Sp.rows_hit faults in
    Alcotest.(check bool) "multi-row damage" true (List.length rows >= 2)
  end

(* ------------------------------------------------------------------ *)
(* validation diagnostics and sampling proposals *)

module P = Bisram_faults.Proposal

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let expect_invalid_msg name sub f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument m ->
      if not (contains m sub) then
        Alcotest.failf "%s: diagnostic %S does not name %S" name m sub

let test_mix_diagnostics_name_key () =
  expect_invalid_msg "negative names key" "transition weight -0.1" (fun () ->
      I.validate_mix { I.default_mix with I.transition = -0.1 });
  expect_invalid_msg "negative names key" "stuck_open weight" (fun () ->
      I.validate_mix { I.default_mix with I.stuck_open = -2.5 });
  expect_invalid_msg "nan names key" "data_retention weight is NaN" (fun () ->
      I.validate_mix { I.default_mix with I.data_retention = Float.nan });
  let zero =
    { I.stuck_at = 0.0
    ; transition = 0.0
    ; stuck_open = 0.0
    ; coupling_inversion = 0.0
    ; coupling_idempotent = 0.0
    ; state_coupling = 0.0
    ; data_retention = 0.0
    }
  in
  expect_invalid_msg "all-zero lists keys" "all-zero mix" (fun () ->
      I.validate_mix zero);
  expect_invalid_msg "all-zero lists keys" "coupling_idempotent" (fun () ->
      I.validate_mix zero)

let test_class_probability () =
  let saf = F.Stuck_at (cell 0 0, true) in
  let drf = F.Data_retention (cell 0 0, true) in
  Alcotest.(check (float 1e-12)) "stuck-at only saf" 1.0
    (I.class_probability I.stuck_at_only saf);
  Alcotest.(check (float 1e-12)) "stuck-at only drf" 0.0
    (I.class_probability I.stuck_at_only drf);
  Alcotest.(check (float 1e-12)) "default mix saf" 0.40
    (I.class_probability I.default_mix saf)

let test_log_pmf_degenerate_mean () =
  Alcotest.(check (float 0.0)) "poisson mean 0, k 0" 0.0
    (D.poisson_log_pmf ~mean:0.0 0);
  Alcotest.(check bool) "poisson mean 0, k 1" true
    (D.poisson_log_pmf ~mean:0.0 1 = Float.neg_infinity);
  Alcotest.(check bool) "pmf not nan" false
    (Float.is_nan (D.poisson_pmf ~mean:0.0 0));
  Alcotest.(check (float 0.0)) "nb mean 0, k 0" 0.0
    (D.negative_binomial_log_pmf ~mean:0.0 ~alpha:2.0 0);
  Alcotest.(check bool) "nb mean 0, k 3" true
    (D.negative_binomial_log_pmf ~mean:0.0 ~alpha:2.0 3 = Float.neg_infinity);
  (* log pmfs agree with the historical direct pmfs *)
  Alcotest.(check (float 1e-12)) "poisson log pmf" (D.poisson_pmf ~mean:1.7 3)
    (exp (D.poisson_log_pmf ~mean:1.7 3))

let test_proposal_validation () =
  let v ?(count = P.Count_nominal) ?mix model =
    P.validate ~nominal_mix:I.default_mix model { P.count; mix }
  in
  (* fine: the identity on every model *)
  v (P.Fixed 3);
  v (P.Poisson 0.05);
  v ~count:(P.Scaled { scale = 20.0; shift = 0.5 }) (P.Poisson 0.05);
  v ~count:(P.Stratified { nonzero = 0.5 })
    (P.Clustered { mean = 0.05; alpha = 2.0 });
  v ~mix:I.default_mix (P.Poisson 0.05);
  expect_invalid_msg "scale" "count_scale" (fun () ->
      v ~count:(P.Scaled { scale = 0.0; shift = 0.0 }) (P.Poisson 0.05));
  expect_invalid_msg "scale nan" "count_scale" (fun () ->
      v ~count:(P.Scaled { scale = Float.nan; shift = 0.0 }) (P.Poisson 0.05));
  expect_invalid_msg "shift" "count_shift -1 is negative" (fun () ->
      v ~count:(P.Scaled { scale = 1.0; shift = -1.0 }) (P.Poisson 0.05));
  expect_invalid_msg "scaled on fixed" "uniform mode" (fun () ->
      v ~count:(P.Scaled { scale = 2.0; shift = 0.0 }) (P.Fixed 2));
  expect_invalid_msg "nonzero range" "stratified_nonzero" (fun () ->
      v ~count:(P.Stratified { nonzero = 1.0 }) (P.Poisson 0.05));
  expect_invalid_msg "stratified on fixed" "uniform mode" (fun () ->
      v ~count:(P.Stratified { nonzero = 0.5 }) (P.Fixed 2));
  expect_invalid_msg "stratified needs mass" "mean must be positive" (fun () ->
      v ~count:(P.Stratified { nonzero = 0.5 }) (P.Poisson 0.0));
  (* absolute continuity: nominal default mix draws transitions, the
     stuck-at-only proposal mix cannot *)
  expect_invalid_msg "starved class named" "zero weight to transition"
    (fun () -> v ~mix:I.stuck_at_only (P.Poisson 0.05));
  (* proposal mixes are themselves validated *)
  expect_invalid_msg "proposal mix validated" "stuck_at weight" (fun () ->
      v ~mix:{ I.default_mix with I.stuck_at = -1.0 } (P.Poisson 0.05))

let test_proposal_identity_draws () =
  (* the identity proposal consumes the rng exactly like the nominal
     sampler: byte-identical draws, weight exactly 1 *)
  let check_model name model nominal_draw =
    let a = nominal_draw (rng ()) in
    let b =
      P.draw P.nominal ~count:model ~mix:I.default_mix (rng ()) ~rows:16
        ~cols:16
    in
    Alcotest.(check bool) (name ^ " identical draws") true (a = b);
    Alcotest.(check (float 0.0)) (name ^ " weight 1") 1.0
      (P.weight P.nominal ~count:model ~mix:I.default_mix b)
  in
  check_model "fixed" (P.Fixed 4) (fun r ->
      I.inject r ~rows:16 ~cols:16 ~mix:I.default_mix ~n:4);
  check_model "poisson" (P.Poisson 1.5) (fun r ->
      I.inject_poisson r ~rows:16 ~cols:16 ~mix:I.default_mix ~mean:1.5);
  check_model "clustered" (P.Clustered { mean = 1.5; alpha = 2.0 }) (fun r ->
      I.inject_clustered r ~rows:16 ~cols:16 ~mix:I.default_mix ~mean:1.5
        ~alpha:2.0)

let test_stratified_weights_closed_form () =
  let model = P.Poisson 0.05 in
  let p = { P.count = P.Stratified { nonzero = 0.5 }; mix = None } in
  let p0 = exp (D.poisson_log_pmf ~mean:0.05 0) in
  Alcotest.(check (float 1e-12)) "zero stratum" (p0 /. 0.5)
    (P.weight p ~count:model ~mix:I.stuck_at_only []);
  Alcotest.(check (float 1e-12)) "nonzero stratum" ((1.0 -. p0) /. 0.5)
    (P.weight p ~count:model ~mix:I.stuck_at_only
       [ F.Stuck_at (cell 0 0, true) ])

let prop_proposal_weights_mean_one =
  (* E_q[w] = 1: the average importance weight over proposal draws
     converges to 1 for any valid proposal (here checked loosely on
     4000 draws at a deterministic seed per case) *)
  QCheck.Test.make ~name:"proposal weights average to 1" ~count:20
    QCheck.(pair (int_range 0 100_000) (int_range 0 2))
    (fun (seed, which) ->
      let model = P.Poisson 0.08 in
      let p =
        match which with
        | 0 -> { P.count = P.Scaled { scale = 15.0; shift = 0.0 }; mix = None }
        | 1 -> { P.count = P.Stratified { nonzero = 0.5 }; mix = None }
        | _ ->
            { P.count = P.Scaled { scale = 5.0; shift = 0.1 }
            ; mix = Some I.default_mix
            }
      in
      let mix = { I.stuck_at_only with I.transition = 0.5 } in
      P.validate ~nominal_mix:mix model p;
      let r = Random.State.make [| seed; 77 |] in
      let n = 4000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        let faults = P.draw p ~count:model ~mix r ~rows:16 ~cols:16 in
        sum := !sum +. P.weight p ~count:model ~mix faults
      done;
      Float.abs ((!sum /. float_of_int n) -. 1.0) < 0.15)

let () =
  Alcotest.run "faults"
    [ ( "fault",
        [ Alcotest.test_case "victims" `Quick test_fault_victims
        ; Alcotest.test_case "class names" `Quick test_fault_class_names
        ] )
    ; ( "defect",
        [ Alcotest.test_case "poisson mean" `Quick test_poisson_mean
        ; Alcotest.test_case "poisson large lambda" `Quick
            test_poisson_large_lambda
        ; Alcotest.test_case "negative binomial" `Quick
            test_negative_binomial_mean_and_var
        ; Alcotest.test_case "pmf normalization" `Quick test_pmf_normalization
        ; Alcotest.test_case "nb p0 = stapper" `Quick test_nb_pmf_matches_sampler
        ] )
    ; ( "injection",
        [ Alcotest.test_case "bounds" `Quick test_injection_bounds
        ; Alcotest.test_case "stuck-at only" `Quick test_injection_stuck_at_only
        ; Alcotest.test_case "all classes" `Quick
            test_injection_mix_hits_all_classes
        ; Alcotest.test_case "faulty rows" `Quick test_faulty_rows
        ; Alcotest.test_case "mix rejects negative weight" `Quick
            test_mix_rejects_negative_weight
        ; Alcotest.test_case "mix rejects all-zero" `Quick
            test_mix_rejects_all_zero
        ; Alcotest.test_case "valid mixes accepted" `Quick
            test_mix_valid_passes
        ; Alcotest.test_case "diagnostics name the key" `Quick
            test_mix_diagnostics_name_key
        ; Alcotest.test_case "class probability" `Quick test_class_probability
        ; QCheck_alcotest.to_alcotest prop_coupling_aggressor_adjacent
        ; QCheck_alcotest.to_alcotest prop_gamma_positive
        ] )
    ; ( "proposal",
        [ Alcotest.test_case "log pmf degenerate mean" `Quick
            test_log_pmf_degenerate_mean
        ; Alcotest.test_case "validation diagnostics" `Quick
            test_proposal_validation
        ; Alcotest.test_case "identity draws byte-identical" `Quick
            test_proposal_identity_draws
        ; Alcotest.test_case "stratified weights closed form" `Quick
            test_stratified_weights_closed_form
        ; QCheck_alcotest.to_alcotest prop_proposal_weights_mean_one
        ] )
    ; ( "spatial",
        [ Alcotest.test_case "radius distribution" `Quick
            test_radius_bounds_and_skew
        ; Alcotest.test_case "cells hit" `Quick test_cells_hit_geometry
        ; Alcotest.test_case "bridges" `Quick test_faults_of_defect_bridges
        ; Alcotest.test_case "row clustering" `Quick
            test_spatial_inject_clusters_rows
        ] )
    ]
