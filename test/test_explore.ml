(* Tests for the design-space exploration engine (spec parsing, lattice
   expansion, cache + jobs determinism, report well-formedness, Pareto
   extraction). *)

module Spec = Bisram_explore.Spec
module Explore = Bisram_explore.Explore
module Pareto = Bisram_explore.Pareto
module J = Bisram_obs.Json

(* small enough to compile its designs in well under a second: one
   organization at two spare levels, two defect means *)
let tiny_spec_text =
  "words = 64\n\
   bpw = 8\n\
   bpc = 4\n\
   spares = 0, 4\n\
   mean_defects = 1, 4\n\
   evaluators = area, yield, cost, reliability\n"

let tiny_spec () =
  match Spec.of_string tiny_spec_text with
  | Ok s -> s
  | Error e -> Alcotest.fail ("tiny spec rejected: " ^ e)

let temp_cache_dir () =
  let path = Filename.temp_file "bisram-test-explore" ".cache" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* spec parsing *)

let test_spec_parses () =
  let s = tiny_spec () in
  Alcotest.(check (list int)) "words" [ 64 ] s.Spec.words;
  Alcotest.(check (list int)) "spares" [ 0; 4 ] s.Spec.spares;
  Alcotest.(check (list string))
    "evaluators in fixed order"
    [ "area"; "yield"; "cost"; "reliability" ]
    s.Spec.evaluators

let test_spec_defaults () =
  match Spec.of_string "" with
  | Error e -> Alcotest.fail ("empty spec rejected: " ^ e)
  | Ok s ->
      Alcotest.(check (list int)) "fig4 spares" [ 0; 4; 8; 16 ] s.Spec.spares;
      Alcotest.(check bool) "campaign off by default" false
        (List.mem "campaign" s.Spec.evaluators)

let expect_error name text =
  match Spec.of_string text with
  | Ok _ -> Alcotest.fail (name ^ ": expected a parse error")
  | Error _ -> ()

let test_spec_rejects () =
  expect_error "unknown key" "wordz = 64\n";
  expect_error "unknown evaluator" "evaluators = area, vibes\n";
  expect_error "bad int" "words = sixty-four\n";
  expect_error "negative mean" "mean_defects = -1\n";
  expect_error "zero alpha" "alpha = 0\n";
  expect_error "non-finite" "alpha = inf\n";
  expect_error "missing equals" "words 64\n";
  expect_error "campaign without trials" "evaluators = campaign\n";
  expect_error "unknown process" "process = unobtainium\n"

let test_expand_counts () =
  let s = tiny_spec () in
  let points, skipped = Spec.expand s in
  Alcotest.(check int) "2 spares x 2 means" 4 (Array.length points);
  Alcotest.(check int) "nothing skipped" 0 skipped;
  (* an invalid organization (words not a multiple of bpc) is skipped,
     dropping every point it would have generated *)
  match
    Spec.of_string
      "words = 64, 66\n\
       bpw = 8\n\
       bpc = 4\n\
       spares = 0, 4\n\
       mean_defects = 1, 4\n\
       evaluators = area, yield\n"
  with
  | Error e -> Alcotest.fail e
  | Ok s2 ->
      let points2, skipped2 = Spec.expand s2 in
      Alcotest.(check int) "valid points survive" 4 (Array.length points2);
      Alcotest.(check int) "invalid combos counted" 2 skipped2

(* ------------------------------------------------------------------ *)
(* determinism: jobs count and cache temperature never change bytes *)

let test_determinism () =
  let s = tiny_spec () in
  let dir = temp_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cold1 = Explore.run ~jobs:1 ~cache_dir:dir s in
      let cold2 = Explore.run ~jobs:2 ~cache_dir:dir s in
      let warm = Explore.run ~jobs:2 ~cache_dir:dir ~resume:true s in
      let b1 = Explore.json_string cold1 in
      Alcotest.(check string) "jobs 1 = jobs 2 (cold)" b1
        (Explore.json_string cold2);
      Alcotest.(check string) "cold = warm" b1 (Explore.json_string warm);
      Alcotest.(check int) "cold run never hits" 0 cold1.Explore.cache_hits;
      Alcotest.(check int) "warm run always hits"
        (Explore.evaluations warm)
        warm.Explore.cache_hits;
      Alcotest.(check int) "warm run never misses" 0 warm.Explore.cache_misses)

let test_diskless_run () =
  (* no cache_dir: everything is a miss, bytes still identical *)
  let s = tiny_spec () in
  let r = Explore.run ~jobs:1 s in
  let dir = temp_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cached = Explore.run ~jobs:1 ~cache_dir:dir s in
      Alcotest.(check string) "diskless = cached bytes"
        (Explore.json_string r)
        (Explore.json_string cached);
      Alcotest.(check int) "diskless misses everything"
        (Explore.evaluations r)
        r.Explore.cache_misses)

(* ------------------------------------------------------------------ *)
(* cache self-healing *)

module Cache = Bisram_explore.Cache
module Chaos = Bisram_chaos.Chaos

let corrupt_every_entry dir =
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".json" then begin
        let path = Filename.concat dir name in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc "{ not json")
      end)
    (Sys.readdir dir)

let count_suffix dir suffix =
  Array.fold_left
    (fun n name -> if Filename.check_suffix name suffix then n + 1 else n)
    0 (Sys.readdir dir)

let test_corrupt_entries_quarantined () =
  let s = tiny_spec () in
  let dir = temp_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cold = Explore.run ~jobs:1 ~cache_dir:dir s in
      (* distinct entries < evaluations: evaluators whose keys ignore
         some axes (area does not depend on mean_defects) share files *)
      let entries = count_suffix dir ".json" in
      corrupt_every_entry dir;
      (* jobs:1 keeps the counters deterministic: with workers, two
         points racing on a shared corrupt entry may quarantine twice *)
      let healed = Explore.run ~jobs:1 ~cache_dir:dir ~resume:true s in
      Alcotest.(check string) "report byte-identical after healing"
        (Explore.json_string cold)
        (Explore.json_string healed);
      Alcotest.(check int) "every entry quarantined" entries
        healed.Explore.cache_stats.Cache.st_quarantined;
      (* a quarantined entry is recomputed and re-stored, so only the
         first lookup of each shared key misses *)
      Alcotest.(check int) "one miss per entry" entries
        healed.Explore.cache_misses;
      Alcotest.(check int) "quarantine files on disk" entries
        (count_suffix dir ".quarantine");
      (* the healed entries are good again: a third run hits everything *)
      let warm = Explore.run ~jobs:1 ~cache_dir:dir ~resume:true s in
      Alcotest.(check int) "healed cache hits everything"
        (Explore.evaluations warm)
        warm.Explore.cache_hits)

let test_orphan_tmp_reaped () =
  let s = tiny_spec () in
  let dir = temp_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let orphan = Filename.concat dir ".cache-orphan.tmp" in
      Out_channel.with_open_bin orphan (fun oc ->
          Out_channel.output_string oc "torn write");
      let r = Explore.run ~jobs:1 ~cache_dir:dir s in
      Alcotest.(check int) "orphan counted" 1
        r.Explore.cache_stats.Cache.st_reaped_tmp;
      Alcotest.(check bool) "orphan gone" false (Sys.file_exists orphan))

let test_chaos_cache_corruption_heals () =
  (* the injector corrupts reads instead of the test mangling files:
     entries quarantine, re-evaluate, and the report stays identical *)
  let s = tiny_spec () in
  let dir = temp_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cold = Explore.run ~jobs:1 ~cache_dir:dir s in
      Chaos.configure
        { Chaos.off with Chaos.seed = 3; Chaos.cache_read_corrupt = 0.5 };
      let healed =
        Fun.protect ~finally:Chaos.disarm (fun () ->
            Explore.run ~jobs:2 ~cache_dir:dir ~resume:true s)
      in
      Alcotest.(check string) "byte-identical under injected corruption"
        (Explore.json_string cold)
        (Explore.json_string healed);
      Alcotest.(check bool) "the injector actually fired" true
        (healed.Explore.cache_stats.Cache.st_quarantined > 0))

let test_chaos_write_failure_degrades () =
  (* every store fails (disk-full style): the sweep completes uncached
     with identical bytes and an empty cache directory *)
  let s = tiny_spec () in
  let baseline = Explore.json_string (Explore.run ~jobs:1 s) in
  let dir = temp_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Chaos.configure
        { Chaos.off with Chaos.seed = 5; Chaos.cache_write_fail = 1.0 };
      let r =
        Fun.protect ~finally:Chaos.disarm (fun () ->
            Explore.run ~jobs:1 ~cache_dir:dir s)
      in
      Alcotest.(check string) "byte-identical uncached" baseline
        (Explore.json_string r);
      Alcotest.(check int) "every store degraded" (Explore.evaluations r)
        r.Explore.cache_stats.Cache.st_io_errors;
      Alcotest.(check int) "no entry written" 0 (count_suffix dir ".json"))

(* ------------------------------------------------------------------ *)
(* report shape *)

let test_report_roundtrip () =
  let r = Explore.run ~jobs:1 (tiny_spec ()) in
  let text = Explore.pretty_json_string r in
  match J.of_string text with
  | Error e -> Alcotest.fail ("report does not re-parse: " ^ e)
  | Ok doc ->
      let member name =
        match J.member name doc with
        | Some v -> v
        | None -> Alcotest.fail ("report lacks " ^ name)
      in
      (match member "schema" with
      | J.String s -> Alcotest.(check string) "schema" "bisram-explore/1" s
      | _ -> Alcotest.fail "schema not a string");
      (match member "points" with
      | J.List l -> Alcotest.(check int) "4 points" 4 (List.length l)
      | _ -> Alcotest.fail "points not a list");
      (match member "points_total" with
      | J.Int n -> Alcotest.(check int) "points_total" 4 n
      | _ -> Alcotest.fail "points_total not an int");
      (match member "pareto" with
      | J.List l ->
          Alcotest.(check bool) "pareto non-empty" true (List.length l > 0)
      | _ -> Alcotest.fail "pareto not a list");
      (match member "best_spares" with
      | J.List l ->
          (* one group per defect mean (spares is the ranked variable) *)
          Alcotest.(check int) "2 groups" 2 (List.length l)
      | _ -> Alcotest.fail "best_spares not a list");
      (* compact and pretty renderings carry the same document *)
      match J.of_string (Explore.json_string r) with
      | Ok compact ->
          Alcotest.(check bool) "pretty = compact document" true (compact = doc)
      | Error e -> Alcotest.fail ("compact form does not re-parse: " ^ e)

(* ------------------------------------------------------------------ *)
(* pareto frontier *)

let xy_objectives =
  [ Pareto.objective ~name:"x" ~direction:Pareto.Minimize (fun (x, _) ->
        Some x)
  ; Pareto.objective ~name:"y" ~direction:Pareto.Maximize (fun (_, y) -> y)
  ]

let test_pareto_frontier () =
  (* (1,9) and (3,12) are efficient; (2,5) is dominated by (1,9);
     (4,1) by everything; the point missing y is excluded *)
  let items =
    [ (1.0, Some 9.0); (2.0, Some 5.0); (3.0, Some 12.0); (4.0, Some 1.0)
    ; (0.0, None)
    ]
  in
  let front = Pareto.frontier ~objectives:xy_objectives items in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "efficient set in input order"
    [ (1.0, 9.0); (3.0, 12.0) ]
    (List.map (fun (x, y) -> (x, Option.get y)) front)

let prop_pareto_nondominated =
  QCheck.Test.make ~name:"frontier members never dominate each other"
    ~count:100
    QCheck.(small_list (pair (float_range 0.0 10.0) (float_range 0.0 10.0)))
    (fun pts ->
      let items = List.map (fun (x, y) -> (x, Some y)) pts in
      let front = Pareto.frontier ~objectives:xy_objectives items in
      let score (x, y) = [| x; -.Option.get y |] in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> not (Pareto.dominates (score a) (score b)))
            front)
        front)

let () =
  Alcotest.run "explore"
    [ ( "spec",
        [ Alcotest.test_case "parses" `Quick test_spec_parses
        ; Alcotest.test_case "defaults" `Quick test_spec_defaults
        ; Alcotest.test_case "rejects" `Quick test_spec_rejects
        ; Alcotest.test_case "expand counts" `Quick test_expand_counts
        ] )
    ; ( "engine",
        [ Alcotest.test_case "jobs + cache determinism" `Quick
            test_determinism
        ; Alcotest.test_case "diskless run" `Quick test_diskless_run
        ; Alcotest.test_case "report round-trip" `Quick test_report_roundtrip
        ] )
    ; ( "self-heal",
        [ Alcotest.test_case "corrupt entries quarantined" `Quick
            test_corrupt_entries_quarantined
        ; Alcotest.test_case "orphan tmp reaped" `Quick test_orphan_tmp_reaped
        ; Alcotest.test_case "injected corruption heals" `Quick
            test_chaos_cache_corruption_heals
        ; Alcotest.test_case "write failure degrades to uncached" `Quick
            test_chaos_write_failure_degrades
        ] )
    ; ( "pareto",
        [ Alcotest.test_case "frontier" `Quick test_pareto_frontier
        ; QCheck_alcotest.to_alcotest prop_pareto_nondominated
        ] )
    ]
