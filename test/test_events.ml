(* Tests for the structured event stream and its consumers: strict
   schema round-trip, level filtering, drain ordering, the
   jobs-invariance of merged campaign event streams (payloads are pure
   functions of work items; only the ts/tid/seq envelope is
   scheduling-shaped), the invariant that reports stay byte-identical
   with events and progress reporting enabled at any jobs x lanes
   combination, and the hardened BENCH_history reader/appender. *)

module Events = Bisram_obs.Events
module Progress = Bisram_obs.Progress
module History = Bisram_obs.History
module Json = Bisram_obs.Json
module C = Bisram_campaign.Campaign
module Chaos = Bisram_chaos.Chaos

(* Every test leaves the stream off, empty and at the default level,
   so tests are independent of execution order. *)
let with_events ?(level = Events.Info) f =
  Events.set_min_level level;
  Events.set_enabled true;
  Events.reset ();
  Fun.protect
    ~finally:(fun () ->
      Events.set_enabled false;
      Events.reset ();
      Events.set_min_level Events.Info)
    f

let with_chaos cfg f =
  Chaos.configure cfg;
  Fun.protect ~finally:Chaos.disarm f

let temp_path suffix =
  let p = Filename.temp_file "bisram-test-events" suffix in
  Sys.remove p;
  p

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let cleanup path = try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* stream basics *)

let test_levels () =
  List.iter
    (fun l ->
      Alcotest.(check bool)
        "level round-trips" true
        (Events.level_of_string (Events.level_to_string l) = Ok l))
    [ Events.Debug; Events.Info; Events.Warn ];
  Alcotest.(check bool)
    "bogus level rejected" true
    (Result.is_error (Events.level_of_string "fatal"))

let test_disabled_records_nothing () =
  Events.set_enabled false;
  Events.reset ();
  Events.emit ~domain:"t" "e" [];
  Alcotest.(check int) "nothing buffered" 0 (List.length (Events.drain ()));
  Alcotest.(check bool) "would_log off" false (Events.would_log Events.Warn)

let test_min_level_filters () =
  with_events ~level:Events.Warn (fun () ->
      Alcotest.(check bool) "info below floor" false
        (Events.would_log Events.Info);
      Alcotest.(check bool) "warn at floor" true
        (Events.would_log Events.Warn);
      Events.emit ~level:Events.Debug ~domain:"t" "d" [];
      Events.emit ~level:Events.Info ~domain:"t" "i" [];
      Events.emit ~level:Events.Warn ~domain:"t" "w" [];
      match Events.drain () with
      | [ ev ] ->
          Alcotest.(check string) "only the warn survives" "w"
            ev.Events.ev_name
      | evs ->
          Alcotest.fail
            (Printf.sprintf "expected 1 event, got %d" (List.length evs)))

let test_drain_sorted_and_destructive () =
  with_events (fun () ->
      Events.emit ~domain:"t" "a" [];
      Events.emit ~domain:"t" "b" [];
      Events.emit ~domain:"t" "c" [];
      let evs = Events.drain () in
      Alcotest.(check (list string))
        "emission order preserved on one domain" [ "a"; "b"; "c" ]
        (List.map (fun e -> e.Events.ev_name) evs);
      Alcotest.(check (list int))
        "sequence numbers ascend" [ 0; 1; 2 ]
        (List.map (fun e -> e.Events.ev_seq) evs);
      Alcotest.(check int) "drain is destructive" 0
        (List.length (Events.drain ())))

(* ------------------------------------------------------------------ *)
(* schema round-trip and strictness *)

let test_roundtrip () =
  with_events ~level:Events.Debug (fun () ->
      Events.emit ~level:Events.Debug ~domain:"cache" "cache.hit"
        [ ("key", Json.String "abc"); ("n", Json.Int 3) ];
      Events.emit ~domain:"campaign" "run.start"
        [ ("f", Json.Float 1.25)
        ; ("b", Json.Bool true)
        ; ("z", Json.Null)
        ; ("l", Json.List [ Json.Int 1; Json.Int 2 ])
        ; ("o", Json.Obj [ ("k", Json.String "v") ])
        ];
      Events.emit ~level:Events.Warn ~domain:"pool" "pool.retry" [];
      List.iter
        (fun ev ->
          let line = Json.to_string (Events.to_json ev) in
          match Events.parse_line line with
          | Ok ev' ->
              Alcotest.(check bool)
                ("round-trips: " ^ ev.Events.ev_name)
                true (ev = ev')
          | Error e -> Alcotest.fail (ev.Events.ev_name ^ ": " ^ e))
        (Events.drain ()))

let valid_line =
  {|{"schema":"bisram-events/1","seq":0,"tid":0,"ts_ns":12,"level":"info","domain":"d","name":"n","fields":{"k":1}}|}

let test_parser_strict () =
  (match Events.parse_line valid_line with
  | Ok ev ->
      Alcotest.(check string) "name" "n" ev.Events.ev_name;
      Alcotest.(check bool) "ts" true (ev.Events.ev_ts_ns = 12L)
  | Error e -> Alcotest.fail ("valid line rejected: " ^ e));
  let rejected label line =
    Alcotest.(check bool) label true
      (Result.is_error (Events.parse_line line))
  in
  rejected "not json" "nonsense";
  rejected "wrong schema"
    {|{"schema":"bisram-events/9","seq":0,"tid":0,"ts_ns":12,"level":"info","domain":"d","name":"n","fields":{}}|};
  rejected "unknown key"
    {|{"schema":"bisram-events/1","seq":0,"tid":0,"ts_ns":12,"level":"info","domain":"d","name":"n","fields":{},"extra":1}|};
  rejected "missing name"
    {|{"schema":"bisram-events/1","seq":0,"tid":0,"ts_ns":12,"level":"info","domain":"d","fields":{}}|};
  rejected "bad level"
    {|{"schema":"bisram-events/1","seq":0,"tid":0,"ts_ns":12,"level":"fatal","domain":"d","name":"n","fields":{}}|};
  rejected "fields not an object"
    {|{"schema":"bisram-events/1","seq":0,"tid":0,"ts_ns":12,"level":"info","domain":"d","name":"n","fields":[]}|}

(* ------------------------------------------------------------------ *)
(* jobs-invariance of the merged campaign event stream *)

(* lanes fixed (unit boundaries depend on lanes, not jobs), chaos armed
   so the retry path emits: dropping the (ts_ns, tid, seq) envelope and
   the run.start event (the one event that names its execution
   environment) must leave the same multiset at any job count *)
let canonical_events () =
  Events.drain ()
  |> List.filter (fun ev -> ev.Events.ev_name <> "run.start")
  |> List.map (fun ev ->
         Json.to_string
           (Json.Obj
              [ ("level", Json.String (Events.level_to_string ev.Events.ev_level))
              ; ("domain", Json.String ev.Events.ev_domain)
              ; ("name", Json.String ev.Events.ev_name)
              ; ("fields", Json.Obj ev.Events.ev_fields)
              ]))
  |> List.sort compare

let test_campaign_events_jobs_invariant () =
  let cfg =
    C.make_config ~mode:(C.Uniform 2) ~trials:60 ~seed:7 ~shrink:false ()
  in
  let stream jobs =
    with_events (fun () ->
        ignore (C.run ~jobs ~lanes:4 cfg);
        canonical_events ())
  in
  with_chaos
    { Chaos.off with Chaos.seed = 11; job_fail = 0.4 }
    (fun () ->
      let j1 = stream 1 and j4 = stream 4 in
      Alcotest.(check bool)
        "stream is non-trivial (chaos + anomalies fired)" true
        (List.length j1 > 2);
      let mentions sub s =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        "chaos injections recorded" true
        (List.exists (mentions "chaos.inject") j1);
      Alcotest.(check (list string)) "jobs 1 = jobs 4" j1 j4)

(* ------------------------------------------------------------------ *)
(* reports byte-identical with events + progress on, any jobs x lanes *)

let test_report_identity_with_observability () =
  let cfg =
    C.make_config ~mode:(C.Uniform 2) ~trials:30 ~seed:11 ~shrink:false ()
  in
  let baseline = C.json_string (C.run ~jobs:1 ~lanes:1 cfg) in
  List.iter
    (fun (jobs, lanes) ->
      let status = temp_path ".status.json" in
      let observed =
        with_events ~level:Events.Debug (fun () ->
            let reporter =
              Progress.create ~total:cfg.C.trials ~status_file:status
                ~min_interval_s:0.0 ()
            in
            let on_progress (p : C.progress) =
              Progress.update reporter ~done_:p.C.p_done
                ~escapes:p.C.p_escapes ~divergences:p.C.p_divergences
                ~tool_errors:p.C.p_tool_errors ~clean:p.C.p_clean
            in
            let r = C.run ~jobs ~lanes ~on_progress cfg in
            Progress.finish reporter;
            C.json_string r)
      in
      (* the status file caught at least the final forced render *)
      (match Json.of_string (String.trim (In_channel.with_open_text status In_channel.input_all)) with
      | Ok j ->
          Alcotest.(check bool)
            (Printf.sprintf "status finished (jobs %d lanes %d)" jobs lanes)
            true
            (Json.member "finished" j = Some (Json.Bool true))
      | Error e -> Alcotest.fail ("status file unparseable: " ^ e));
      cleanup status;
      Alcotest.(check string)
        (Printf.sprintf "report bytes (jobs %d lanes %d)" jobs lanes)
        baseline observed)
    [ (1, 1); (1, 62); (4, 1); (4, 62) ]

(* ------------------------------------------------------------------ *)
(* hardened history file *)

let test_history_missing_reads_empty () =
  let p = temp_path ".jsonl" in
  let records, warnings = History.read ~path:p in
  Alcotest.(check int) "no records" 0 (List.length records);
  Alcotest.(check int) "no warnings" 0 (List.length warnings)

let test_history_skips_malformed () =
  let p = temp_path ".jsonl" in
  write_file p
    ("{\"schema\":\"bisram-bench-history/1\",\"utc\":\"A\",\"bench_schema\":\"s\"}\n"
   ^ "<<<<<<< conflict marker\n" ^ "\n"
   ^ "{\"schema\":\"bisram-bench-history/1\",\"utc\":\"B\"\n"
   ^ "{\"schema\":\"bisram-bench-history/1\",\"utc\":\"C\",\"bench_schema\":\"s\"}\n"
    );
  let records, warnings = History.read ~path:p in
  cleanup p;
  Alcotest.(check int) "two well-formed records survive" 2
    (List.length records);
  Alcotest.(check int) "one warning per damaged line" 2
    (List.length warnings);
  List.iter
    (fun w ->
      Alcotest.(check bool) "warning names the file and says skipping" true
        (String.length w > 0
        && String.equal (String.sub w 0 (String.length p)) p))
    warnings

let record ~utc ~tps =
  Json.Obj
    [ ("schema", Json.String "bisram-bench-history/1")
    ; ("utc", Json.String utc)
    ; ("bench_schema", Json.String "bisram-bench/7")
    ; ("campaign_trials_per_sec_jobs1", Json.Float tps)
    ]

let test_history_append_dedups () =
  let p = temp_path ".jsonl" in
  let st1, _ = History.append ~path:p (record ~utc:"2026-01-01T00:00:00Z" ~tps:100.0) in
  Alcotest.(check bool) "first append lands" true (st1 = `Appended);
  (* same (utc, bench_schema) identity, different payload: a re-run
     bench must not double the line *)
  let st2, _ = History.append ~path:p (record ~utc:"2026-01-01T00:00:00Z" ~tps:999.0) in
  Alcotest.(check bool) "identical identity deduped" true (st2 = `Duplicate);
  let st3, _ = History.append ~path:p (record ~utc:"2026-01-02T00:00:00Z" ~tps:101.0) in
  Alcotest.(check bool) "new identity appends" true (st3 = `Appended);
  let records, warnings = History.read ~path:p in
  cleanup p;
  Alcotest.(check int) "two records on disk" 2 (List.length records);
  Alcotest.(check int) "no warnings" 0 (List.length warnings)

let test_history_append_survives_damage () =
  (* damaged lines in the existing file are warned about but never
     block a fresh append *)
  let p = temp_path ".jsonl" in
  write_file p "garbage line\n";
  let st, warnings =
    History.append ~path:p (record ~utc:"2026-03-01T00:00:00Z" ~tps:50.0)
  in
  let records, _ = History.read ~path:p in
  cleanup p;
  Alcotest.(check bool) "append lands past the damage" true (st = `Appended);
  Alcotest.(check int) "scan warned about the damage" 1 (List.length warnings);
  Alcotest.(check int) "the appended record reads back" 1 (List.length records)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "events"
    [ ( "stream"
      , [ Alcotest.test_case "level strings" `Quick test_levels
        ; Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing
        ; Alcotest.test_case "min level filters" `Quick test_min_level_filters
        ; Alcotest.test_case "drain sorted and destructive" `Quick
            test_drain_sorted_and_destructive
        ] )
    ; ( "schema"
      , [ Alcotest.test_case "round-trip" `Quick test_roundtrip
        ; Alcotest.test_case "strict parser" `Quick test_parser_strict
        ] )
    ; ( "determinism"
      , [ Alcotest.test_case "jobs-invariant stream" `Quick
            test_campaign_events_jobs_invariant
        ; Alcotest.test_case "report bytes with observability on" `Quick
            test_report_identity_with_observability
        ] )
    ; ( "history"
      , [ Alcotest.test_case "missing file reads empty" `Quick
            test_history_missing_reads_empty
        ; Alcotest.test_case "malformed lines skipped with warnings" `Quick
            test_history_skips_malformed
        ; Alcotest.test_case "append dedups on (utc, schema)" `Quick
            test_history_append_dedups
        ; Alcotest.test_case "append survives damaged lines" `Quick
            test_history_append_survives_damage
        ] )
    ]
