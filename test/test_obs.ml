(* Tests for the telemetry subsystem: registry merge determinism
   across job counts, histogram bucketing, span recording, exporter
   well-formedness, the JSON parser, and the invariant that telemetry
   never changes campaign report bytes. *)

module Obs = Bisram_obs.Obs
module Export = Bisram_obs.Export
module Json = Bisram_obs.Json
module Pool = Bisram_parallel.Pool
module C = Bisram_campaign.Campaign

(* Every test leaves the registry off and empty, so tests are
   independent of execution order. *)
let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* registry *)

let test_disabled_records_nothing () =
  Obs.set_enabled false;
  Obs.reset ();
  Obs.add "c" 3;
  Obs.observe "h" 9;
  Obs.span "s" (fun () -> ());
  let s = Obs.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length s.Obs.counters);
  Alcotest.(check int) "no hists" 0 (List.length s.Obs.hists);
  Alcotest.(check int) "no spans" 0 (List.length s.Obs.spans)

let test_counter_sums () =
  with_obs (fun () ->
      Obs.add "a" 2;
      Obs.incr "a";
      Obs.add "b" 10;
      let s = Obs.snapshot () in
      Alcotest.(check (list (pair string int)))
        "summed, sorted by name"
        [ ("a", 3); ("b", 10) ]
        s.Obs.counters)

let test_hist_buckets () =
  with_obs (fun () ->
      (* bucket k holds [2^k, 2^(k+1)); values <= 1 land in bucket 0 *)
      List.iter (Obs.observe "h") [ 0; 1; 2; 3; 4; 7; 8; 1024 ];
      let h = List.assoc "h" (Obs.snapshot ()).Obs.hists in
      Alcotest.(check int) "count" 8 h.Obs.count;
      Alcotest.(check int) "sum" 1049 h.Obs.sum;
      Alcotest.(check int) "min" 0 h.Obs.min;
      Alcotest.(check int) "max" 1024 h.Obs.max;
      Alcotest.(check (list (pair int int)))
        "bucket boundaries"
        [ (0, 2); (1, 2); (2, 2); (3, 1); (10, 1) ]
        h.Obs.buckets)

let test_span_records () =
  with_obs (fun () ->
      let r = Obs.span ~cat:"test" ~arg:("k", 7) "phase" (fun () -> 41 + 1) in
      Alcotest.(check int) "span returns thunk value" 42 r;
      (match (Obs.snapshot ()).Obs.spans with
      | [ ev ] ->
          Alcotest.(check string) "name" "phase" ev.Obs.name;
          Alcotest.(check string) "cat" "test" ev.Obs.cat;
          Alcotest.(check (option (pair string int))) "arg" (Some ("k", 7))
            ev.Obs.arg;
          Alcotest.(check bool) "duration non-negative" true
            (Int64.compare ev.Obs.dur_ns 0L >= 0)
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)))

let test_span_records_on_raise () =
  with_obs (fun () ->
      (match Obs.span "boom" (fun () -> failwith "x") with
      | () -> Alcotest.fail "expected the exception to propagate"
      | exception Failure _ -> ());
      Alcotest.(check int) "span recorded despite raise" 1
        (List.length (Obs.snapshot ()).Obs.spans))

(* ------------------------------------------------------------------ *)
(* merge determinism across job counts *)

(* Deterministic per-item recording fanned out over a pool must merge
   to the same counters and histograms at any jobs count: sums are
   order-independent and shards never share state. *)
let prop_merge_jobs_invariant =
  QCheck.Test.make
    ~name:"counters/histograms identical at jobs=1 and jobs=n" ~count:30
    QCheck.(pair (int_range 0 80) (int_range 2 5))
    (fun (n, jobs) ->
      let run jobs =
        Obs.set_enabled true;
        Obs.reset ();
        ignore
          (Pool.map ~jobs ~chunk:3 n (fun i ->
               Obs.add "items" 1;
               Obs.add "weight" (i * i);
               Obs.observe "value" ((i * 13 mod 97) + 1);
               i));
        let s = Obs.snapshot () in
        Obs.set_enabled false;
        Obs.reset ();
        (s.Obs.counters, s.Obs.hists)
      in
      run 1 = run jobs)

(* Whole-campaign determinism: everything except the pool's own
   scheduling counters (pool.workerN.*: how chunks landed on workers
   is timing-dependent) and the spans (wall-clock stamps) must be
   identical at any jobs count. *)
let test_campaign_telemetry_jobs_invariant () =
  let cfg =
    C.make_config ~mode:(C.Uniform 2) ~trials:12 ~seed:33 ~shrink:false ()
  in
  let run jobs =
    Obs.set_enabled true;
    Obs.reset ();
    ignore (C.run ~jobs cfg);
    let s = Obs.snapshot () in
    Obs.set_enabled false;
    Obs.reset ();
    let deterministic (name, _) =
      not (String.length name >= 5 && String.sub name 0 5 = "pool.")
    in
    (List.filter deterministic s.Obs.counters, s.Obs.hists)
  in
  let c1, h1 = run 1 in
  let c2, h2 = run 3 in
  Alcotest.(check (list (pair string int)))
    "non-pool counters identical" c1 c2;
  Alcotest.(check bool) "histograms identical" true (h1 = h2);
  Alcotest.(check bool) "campaign.cycles histogram present" true
    (List.mem_assoc "campaign.cycles" h1)

(* ------------------------------------------------------------------ *)
(* telemetry never touches reports *)

let test_report_bytes_unchanged_by_telemetry () =
  let cfg = C.make_config ~mode:(C.Uniform 2) ~trials:10 ~seed:5 () in
  Obs.set_enabled false;
  Obs.reset ();
  let off = C.json_string (C.run cfg) in
  Obs.set_enabled true;
  Obs.reset ();
  let on = C.json_string (C.run cfg) in
  let on_jobs2 = C.json_string (C.run ~jobs:2 cfg) in
  Obs.set_enabled false;
  Obs.reset ();
  Alcotest.(check string) "bytes identical telemetry on/off" off on;
  Alcotest.(check string) "bytes identical telemetry on, jobs=2" off on_jobs2

(* ------------------------------------------------------------------ *)
(* exporters *)

let parse_ok label s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s did not parse: %s" label e

let test_exporters_parse () =
  with_obs (fun () ->
      let cfg =
        C.make_config ~mode:(C.Uniform 1) ~trials:3 ~seed:9 ~shrink:false ()
      in
      ignore (C.run cfg);
      let snap = Obs.snapshot () in
      let metrics = parse_ok "metrics" (Json.to_string (Export.metrics_json snap)) in
      (match Json.member "schema" metrics with
      | Some (Json.String "bisram-metrics/1") -> ()
      | _ -> Alcotest.fail "metrics schema missing or wrong");
      (match Json.member "counters" metrics with
      | Some (Json.Obj kvs) ->
          Alcotest.(check bool) "campaign.trials counted" true
            (List.assoc_opt "campaign.trials" kvs = Some (Json.Int 3))
      | _ -> Alcotest.fail "metrics counters missing");
      let trace =
        parse_ok "trace"
          (Json.to_pretty_string (Export.chrome_trace_json snap))
      in
      match Json.member "traceEvents" trace with
      | Some (Json.List evs) ->
          Alcotest.(check bool) "trace has events" true (evs <> []);
          let ts_nonneg ev =
            match Json.member "ts" ev with
            | Some (Json.Float f) -> f >= 0.
            | Some (Json.Int i) -> i >= 0
            | None -> true (* metadata events carry no ts *)
            | _ -> false
          in
          Alcotest.(check bool) "timestamps rebased to >= 0" true
            (List.for_all ts_nonneg evs);
          Alcotest.(check bool) "has a trial span" true
            (List.exists
               (fun ev ->
                 Json.member "name" ev = Some (Json.String "trial"))
               evs)
      | _ -> Alcotest.fail "traceEvents missing")

let test_stats_table_mentions_phases () =
  with_obs (fun () ->
      let cfg =
        C.make_config ~mode:(C.Uniform 1) ~trials:2 ~seed:4 ~shrink:false ()
      in
      ignore (C.run cfg);
      let table = Export.stats_table (Obs.snapshot ()) in
      List.iter
        (fun needle ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "table mentions %s" needle)
            true (contains table needle))
        [ "trial"; "march"; "campaign.trials"; "campaign.cycles" ])

(* ------------------------------------------------------------------ *)
(* JSON parser *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("i", Json.Int (-42))
      ; ("f", Json.Float 1.5)
      ; ("s", Json.String "quote \" slash \\ tab \t unicode \xc3\xa9")
      ; ("b", Json.Bool true)
      ; ("n", Json.Null)
      ; ("l", Json.List [ Json.Int 1; Json.Obj [ ("x", Json.Int 2) ] ])
      ]
  in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok j -> Alcotest.(check bool) "round-trips" true (j = doc)
      | Error e -> Alcotest.failf "round-trip parse failed: %s" e)
    [ Json.to_string doc; Json.to_pretty_string doc ]

let test_json_rejects_malformed () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [ ( "registry"
      , [ Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing
        ; Alcotest.test_case "counters sum" `Quick test_counter_sums
        ; Alcotest.test_case "histogram buckets" `Quick test_hist_buckets
        ; Alcotest.test_case "span records" `Quick test_span_records
        ; Alcotest.test_case "span records on raise" `Quick
            test_span_records_on_raise
        ] )
    ; ( "determinism"
      , [ QCheck_alcotest.to_alcotest prop_merge_jobs_invariant
        ; Alcotest.test_case "campaign telemetry jobs-invariant" `Quick
            test_campaign_telemetry_jobs_invariant
        ; Alcotest.test_case "report bytes unchanged by telemetry" `Quick
            test_report_bytes_unchanged_by_telemetry
        ] )
    ; ( "exporters"
      , [ Alcotest.test_case "metrics and trace parse" `Quick
            test_exporters_parse
        ; Alcotest.test_case "stats table mentions phases" `Quick
            test_stats_table_mentions_phases
        ] )
    ; ( "json"
      , [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip
        ; Alcotest.test_case "rejects malformed" `Quick
            test_json_rejects_malformed
        ] )
    ]
