(* Tests for the MPR cost model (Section X / Tables II-III). *)

module W = Bisram_cost.Wafer
module C = Bisram_cost.Chips
module M = Bisram_cost.Mpr

let test_dies_per_wafer () =
  (* 100 mm^2 die on a 200 mm wafer: pi*100^2/100 - pi*200/sqrt(200)
     = 314 - 44 = ~269 *)
  let n = W.dies_per_wafer ~wafer_mm:200.0 ~die_mm2:100.0 in
  Alcotest.(check bool) (Printf.sprintf "got %d" n) true (n > 260 && n < 280);
  Alcotest.(check int) "degenerate huge die" 0
    (W.dies_per_wafer ~wafer_mm:100.0 ~die_mm2:10000.0)

let test_wafer_upgrade_gain () =
  (* 150 -> 200 mm raises die count by ~80-100% (paper's observation) *)
  let g = W.die_count_gain ~die_mm2:150.0 ~from_mm:150.0 ~to_mm:200.0 in
  Alcotest.(check bool) (Printf.sprintf "gain %.2f" g) true (g > 1.7 && g < 2.3)

let test_database_sanity () =
  Alcotest.(check bool) "at least 10 chips" true (List.length C.all >= 10);
  Alcotest.(check bool) "has 2-metal examples" true
    (List.exists (fun c -> c.C.metal_layers < 3) C.all);
  Alcotest.(check bool) "bisr_capable excludes them" true
    (List.for_all (fun c -> c.C.metal_layers >= 3) C.bisr_capable);
  (match C.find "ti supersparc" with
  | Some c -> Alcotest.(check int) "case-insensitive find" 293 c.C.pins
  | None -> Alcotest.fail "SuperSPARC missing")

let test_package_cost () =
  (match C.find "Intel 486DX2" with
  | Some c ->
      (* 168 pins at a cent each / 0.97 final-test yield *)
      Alcotest.(check (float 0.01)) "package" (1.68 /. 0.97) (C.package_cost c)
  | None -> Alcotest.fail "486DX2 missing");
  Alcotest.(check bool) "PQFP yield below PGA" true
    (C.final_test_yield C.PQFP < C.final_test_yield C.PGA)

let test_bisr_improves_yield_and_cost () =
  List.iter
    (fun chip ->
      match M.die_bisr chip M.default_bisr with
      | None -> Alcotest.failf "%s should be BISR-capable" chip.C.name
      | Some w ->
          let plain = M.die_plain chip in
          Alcotest.(check bool)
            (chip.C.name ^ " yield improves")
            true
            (w.M.die_yield > plain.M.die_yield);
          Alcotest.(check bool)
            (chip.C.name ^ " cost drops")
            true
            (w.M.cost_per_good_die < plain.M.cost_per_good_die);
          Alcotest.(check bool)
            (chip.C.name ^ " area grows")
            true
            (w.M.die_area_mm2 > plain.M.die_area_mm2))
    C.bisr_capable

let test_two_metal_rejected () =
  match C.find "Intel 386DX" with
  | Some c -> Alcotest.(check bool) "no BISR" true (M.die_bisr c M.default_bisr = None)
  | None -> Alcotest.fail "386DX missing"

let test_table3_bracket () =
  (* paper: total-cost reduction spans 2.35% (486DX2) .. 47.2%
     (SuperSPARC) *)
  let rows = M.table3 () in
  let get name =
    match List.find_opt (fun r -> r.M.chip3.C.name = name) rows with
    | Some { M.reduction_pct = Some pct; _ } -> pct
    | Some { M.reduction_pct = None; _ } | None ->
        Alcotest.failf "missing %s" name
  in
  let dx2 = get "Intel 486DX2" in
  Alcotest.(check bool) (Printf.sprintf "486DX2 %.1f%%" dx2) true
    (dx2 > 1.0 && dx2 < 5.0);
  let ss = get "TI SuperSPARC" in
  Alcotest.(check bool) (Printf.sprintf "SuperSPARC %.1f%%" ss) true
    (ss > 35.0 && ss < 55.0);
  (* SuperSPARC is the extreme of the table *)
  List.iter
    (fun r ->
      match r.M.reduction_pct with
      | Some pct -> Alcotest.(check bool) "superSPARC max" true (pct <= ss)
      | None -> ())
    rows

let test_superSPARC_die_cost_halves () =
  (* paper: cost per good die often drops by about a factor of 2 *)
  match C.find "TI SuperSPARC" with
  | None -> Alcotest.fail "missing"
  | Some c -> (
      match M.die_bisr c M.default_bisr with
      | None -> Alcotest.fail "not capable"
      | Some w ->
          let plain = M.die_plain c in
          let factor = plain.M.cost_per_good_die /. w.M.cost_per_good_die in
          Alcotest.(check bool)
            (Printf.sprintf "factor %.2f" factor)
            true
            (factor > 1.6 && factor < 2.6))

let test_ram_yield_model () =
  match C.find "MIPS R4600" with
  | None -> Alcotest.fail "missing"
  | Some c ->
      let y = M.ram_yield c in
      Alcotest.(check (float 1e-9)) "power law"
        (c.C.die_yield ** c.C.cache_fraction) y;
      let y' = M.ram_yield_bisr c M.default_bisr in
      Alcotest.(check bool) "repair helps" true (y' > y);
      Alcotest.(check bool) "still a probability" true (y' <= 1.0)

let test_totals_components () =
  let t = M.totals_plain (List.hd C.bisr_capable) in
  Alcotest.(check (float 1e-9)) "total = sum" t.M.total
    (t.M.die +. t.M.test_assembly +. t.M.package);
  Alcotest.(check bool) "all positive" true
    (t.M.die > 0.0 && t.M.test_assembly > 0.0 && t.M.package > 0.0)

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_params_rejected () =
  let p = M.default_bisr in
  expect_invalid "negative spares" (fun () ->
      M.validate_params { p with M.spares = -1 });
  expect_invalid "zero cache_rows" (fun () ->
      M.validate_params { p with M.cache_rows = 0 });
  expect_invalid "nan overhead" (fun () ->
      M.validate_params { p with M.area_overhead = Float.nan });
  expect_invalid "negative overhead" (fun () ->
      M.validate_params { p with M.area_overhead = -0.1 });
  expect_invalid "zero alpha" (fun () ->
      M.validate_params { p with M.alpha = 0.0 });
  expect_invalid "nan alpha" (fun () ->
      M.validate_params { p with M.alpha = Float.nan });
  (* the checks fire from the cost paths themselves, not only when
     callers remember to validate *)
  let chip = List.hd C.bisr_capable in
  expect_invalid "die_bisr rejects" (fun () ->
      M.die_bisr chip { p with M.alpha = Float.nan });
  expect_invalid "totals_bisr rejects" (fun () ->
      M.totals_bisr chip { p with M.cache_rows = -4 });
  M.validate_params p (* defaults pass *)

let () =
  Alcotest.run "cost"
    [ ( "wafer",
        [ Alcotest.test_case "dies per wafer" `Quick test_dies_per_wafer
        ; Alcotest.test_case "upgrade gain" `Quick test_wafer_upgrade_gain
        ] )
    ; ( "chips",
        [ Alcotest.test_case "database" `Quick test_database_sanity
        ; Alcotest.test_case "package cost" `Quick test_package_cost
        ] )
    ; ( "mpr",
        [ Alcotest.test_case "bisr improves" `Quick
            test_bisr_improves_yield_and_cost
        ; Alcotest.test_case "2-metal rejected" `Quick test_two_metal_rejected
        ; Alcotest.test_case "table3 bracket" `Quick test_table3_bracket
        ; Alcotest.test_case "die cost halves" `Quick
            test_superSPARC_die_cost_halves
        ; Alcotest.test_case "ram yield" `Quick test_ram_yield_model
        ; Alcotest.test_case "totals" `Quick test_totals_components
        ; Alcotest.test_case "degenerate params rejected" `Quick
            test_params_rejected
        ] )
    ]
