(* Tests for the rare-event estimation layer: interval math against
   closed forms, frequentist coverage on synthetic Bernoulli data,
   unbiasedness of importance-weighted estimates against the analytic
   rare-event probability, adaptive stopping, and byte-identity of the
   schema-/3 report across jobs/lanes and adaptive/fixed runs. *)

module C = Bisram_campaign.Campaign
module E = Bisram_campaign.Estimator
module J = Bisram_campaign.Report
module Org = Bisram_sram.Org
module I = Bisram_faults.Injection
module P = Bisram_faults.Proposal

let close ?(eps = 1e-9) name expected got =
  if Float.abs (expected -. got) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

(* ------------------------------------------------------------------ *)
(* interval math vs closed forms *)

let test_normal_quantile () =
  close ~eps:1.5e-9 "q(0.5)" 0.0 (E.normal_quantile 0.5);
  close ~eps:1e-6 "q(0.975)" 1.959963985 (E.normal_quantile 0.975);
  close ~eps:1e-6 "q(0.995)" 2.575829304 (E.normal_quantile 0.995);
  close ~eps:1.5e-9 "symmetry"
    (-.E.normal_quantile 0.975)
    (E.normal_quantile 0.025);
  List.iter
    (fun p ->
      match E.normal_quantile p with
      | _ -> Alcotest.failf "normal_quantile %g should raise" p
      | exception Invalid_argument _ -> ())
    [ 0.0; 1.0; -0.5; 1.5 ]

let test_reg_inc_beta_closed_forms () =
  (* I_x(1,1) = x;  I_x(2,1) = x^2;  I_x(1,b) = 1 - (1-x)^b *)
  List.iter
    (fun x ->
      close ~eps:1e-12 "I_x(1,1)" x (E.reg_inc_beta ~a:1.0 ~b:1.0 x);
      close ~eps:1e-12 "I_x(2,1)" (x *. x) (E.reg_inc_beta ~a:2.0 ~b:1.0 x);
      close ~eps:1e-12 "I_x(1,7)"
        (1.0 -. ((1.0 -. x) ** 7.0))
        (E.reg_inc_beta ~a:1.0 ~b:7.0 x))
    [ 0.0; 0.1; 0.37; 0.5; 0.81; 1.0 ]

let test_beta_inv_roundtrip () =
  List.iter
    (fun (a, b) ->
      List.iter
        (fun p ->
          close ~eps:1e-9
            (Printf.sprintf "I(I^-1) a=%g b=%g p=%g" a b p)
            p
            (E.reg_inc_beta ~a ~b (E.beta_inv ~a ~b p)))
        [ 0.025; 0.2; 0.5; 0.9; 0.975 ])
    [ (1.0, 1.0); (2.0, 9.0); (0.5, 0.5); (12.0, 3.0) ]

let test_wilson_closed_form () =
  (* k=5, n=10 at 95%: symmetric around 0.5, half-width
     z*sqrt(0.025 + z^2/400) / (1 + z^2/10) = 0.263405... *)
  let iv = E.wilson ~k:5.0 ~n:10.0 () in
  close ~eps:1e-4 "wilson lo (5/10)" 0.236595 iv.E.lo;
  close ~eps:1e-4 "wilson hi (5/10)" 0.763405 iv.E.hi;
  let z = E.wilson ~k:0.0 ~n:25.0 () in
  close "wilson lo at k=0" 0.0 z.E.lo;
  Alcotest.(check bool) "wilson hi(k=0) in (0,1)" true
    (z.E.hi > 0.0 && z.E.hi < 1.0);
  let f = E.wilson ~k:25.0 ~n:25.0 () in
  close "wilson hi at k=n" 1.0 f.E.hi;
  Alcotest.(check bool) "wilson lo(k=n) in (0,1)" true
    (f.E.lo > 0.0 && f.E.lo < 1.0)

let test_clopper_pearson_edges () =
  (* closed forms at the edges: k=0 -> hi = 1 - (alpha/2)^(1/n),
     k=n -> lo = (alpha/2)^(1/n). *)
  let n = 20.0 in
  let zero = E.clopper_pearson ~k:0.0 ~n () in
  close "cp lo at k=0" 0.0 zero.E.lo;
  close ~eps:1e-9 "cp hi at k=0"
    (1.0 -. (0.025 ** (1.0 /. n)))
    zero.E.hi;
  let full = E.clopper_pearson ~k:n ~n () in
  close "cp hi at k=n" 1.0 full.E.hi;
  close ~eps:1e-9 "cp lo at k=n" (0.025 ** (1.0 /. n)) full.E.lo;
  (* standard reference values for 2/10 at 95% *)
  let iv = E.clopper_pearson ~k:2.0 ~n:10.0 () in
  close ~eps:1e-4 "cp lo (2/10)" 0.025211 iv.E.lo;
  close ~eps:1e-4 "cp hi (2/10)" 0.556095 iv.E.hi

let test_intervals_degenerate_n_zero () =
  List.iter
    (fun iv ->
      close "lo" 0.0 iv.E.lo;
      close "hi" 1.0 iv.E.hi)
    [ E.wilson ~k:0.0 ~n:0.0 (); E.clopper_pearson ~k:0.0 ~n:0.0 () ]

let test_interval_validation () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ (fun () -> E.wilson ~k:(-1.0) ~n:10.0 ())
    ; (fun () -> E.wilson ~k:11.0 ~n:10.0 ())
    ; (fun () -> E.clopper_pearson ~k:Float.nan ~n:10.0 ())
    ; (fun () -> E.wilson ~level:0.0 ~k:1.0 ~n:10.0 ())
    ; (fun () -> E.wilson ~level:1.0 ~k:1.0 ~n:10.0 ())
    ]

(* ------------------------------------------------------------------ *)
(* frequentist coverage on synthetic Bernoulli data (deterministic
   seeds, so no flake): Clopper-Pearson guarantees >= level coverage;
   Wilson is approximate but must stay close at these sizes. *)

let binomial_draw st ~n ~p =
  let k = ref 0 in
  for _ = 1 to n do
    if Random.State.float st 1.0 < p then incr k
  done;
  !k

let coverage ~interval ~p ~n ~reps st =
  let covered = ref 0 in
  for _ = 1 to reps do
    let k = binomial_draw st ~n ~p in
    let iv = interval ~k:(float_of_int k) ~n:(float_of_int n) () in
    if iv.E.lo <= p && p <= iv.E.hi then incr covered
  done;
  float_of_int !covered /. float_of_int reps

let test_coverage_synthetic_bernoulli () =
  let reps = 400 in
  List.iter
    (fun (p, n) ->
      let st = Random.State.make [| 7; n; int_of_float (1e6 *. p) |] in
      let cp = coverage ~interval:(E.clopper_pearson ~level:0.95) ~p ~n ~reps st in
      let st = Random.State.make [| 7; n; int_of_float (1e6 *. p) |] in
      let wi = coverage ~interval:(E.wilson ~level:0.95) ~p ~n ~reps st in
      if cp < 0.93 then
        Alcotest.failf "CP coverage %.3f < 0.93 at p=%g n=%d" cp p n;
      if wi < 0.90 then
        Alcotest.failf "Wilson coverage %.3f < 0.90 at p=%g n=%d" wi p n)
    [ (0.05, 120); (0.3, 60); (0.5, 150) ]

(* ------------------------------------------------------------------ *)
(* campaign-level estimates *)

(* Rare-event rig: zero spare rows and a stuck-at-only mix make every
   nonempty fault set an unrepairable array, so the two-pass
   repair-failure indicator is exactly 1{n >= 1} and its nominal
   probability under Poisson(lambda) counts is 1 - exp(-lambda). *)
let rare_cfg ?proposal ?(trials = 300) ?(seed = 20) ~lambda () =
  let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:0 () in
  C.make_config ~org ~mix:I.stuck_at_only ~mode:(C.Poisson lambda) ?proposal
    ~trials ~seed ()

let test_estimate_unweighted_reduces_to_counts () =
  let cfg = rare_cfg ~lambda:0.5 ~trials:120 () in
  let r = C.run ~lanes:62 cfg in
  Alcotest.(check bool) "no weighted tallies without a proposal" true
    (r.C.weighted = None);
  let e = E.estimate r E.Repair_failure_two_pass in
  let h = r.C.two_pass in
  let hits = h.C.too_many_faulty_rows + h.C.fault_in_second_pass in
  Alcotest.(check int) "hits = histogram failures" hits e.E.e_hits;
  Alcotest.(check int) "trials" r.C.trials_run e.E.e_trials;
  close "k_eff = raw hits" (float_of_int hits) e.E.e_k_eff;
  close "n_eff = raw trials" (float_of_int r.C.trials_run) e.E.e_n_eff;
  close "rate = hits/trials"
    (float_of_int hits /. float_of_int r.C.trials_run)
    e.E.e_rate

let proposals_under_test =
  [ ("scaled x8", { P.count = P.Scaled { scale = 8.0; shift = 0.0 }; mix = None })
  ; ("stratified 0.5", { P.count = P.Stratified { nonzero = 0.5 }; mix = None })
  ; ( "stratified+mix"
    , { P.count = P.Stratified { nonzero = 0.6 }
      ; mix = Some { I.stuck_at_only with I.transition = 0.25 }
      } )
  ]

let prop_weighted_estimate_brackets_analytic =
  QCheck.Test.make ~name:"IS/stratified CI brackets analytic rare-event rate"
    ~count:8
    QCheck.(
      pair (int_range 0 (List.length proposals_under_test - 1))
        (pair (int_range 1 1000) (int_range 2 20)))
    (fun (pi, (seed, lam100)) ->
      let _, proposal = List.nth proposals_under_test pi in
      let lambda = float_of_int lam100 /. 100.0 in
      let cfg = rare_cfg ~proposal ~trials:300 ~seed ~lambda () in
      let r = C.run ~lanes:62 cfg in
      let p_true = 1.0 -. exp (-.lambda) in
      (* near-certain level: a violation means bias, not bad luck *)
      let e = E.estimate ~level:(1.0 -. 1e-6) r E.Repair_failure_two_pass in
      e.E.e_clopper_pearson.E.lo <= p_true
      && p_true <= e.E.e_clopper_pearson.E.hi)

let test_weighted_report_deterministic_jobs_lanes () =
  let proposal =
    { P.count = P.Stratified { nonzero = 0.5 }; mix = None }
  in
  let cfg = rare_cfg ~proposal ~trials:200 ~lambda:0.1 () in
  let base = E.report_string (C.run cfg) in
  List.iter
    (fun (jobs, lanes) ->
      Alcotest.(check string)
        (Printf.sprintf "report at jobs=%d lanes=%d" jobs lanes)
        base
        (E.report_string (C.run ~jobs ~lanes cfg)))
    [ (1, 62); (2, 1); (2, 62); (3, 31) ]

(* ------------------------------------------------------------------ *)
(* schema-/3 report structure *)

let test_report_v3_superset_of_v2 () =
  let r = C.run (rare_cfg ~lambda:0.5 ~trials:60 ()) in
  let v2 = C.to_json r and v3 = E.report_json r in
  (match J.member "schema" v3 with
  | Some (J.String "bisram-campaign/3") -> ()
  | _ -> Alcotest.fail "schema must be bisram-campaign/3");
  Alcotest.(check bool) "confidence section present" true
    (J.member "confidence" v3 <> None);
  Alcotest.(check bool) "no estimation section without a proposal" true
    (J.member "estimation" v3 = None);
  (match (v2, v3) with
  | J.Obj f2, J.Obj f3 ->
      List.iter
        (fun (k, v) ->
          if not (String.equal k "schema") then
            match List.assoc_opt k f3 with
            | Some v' when v = v' -> ()
            | _ -> Alcotest.failf "field %s not carried verbatim into /3" k)
        f2
  | _ -> Alcotest.fail "reports must be objects");
  (* confidence section carries all three metrics with both intervals *)
  match J.member "confidence" v3 with
  | Some (J.Obj fields) ->
      List.iter
        (fun m ->
          match List.assoc_opt m fields with
          | Some (J.Obj e) ->
              List.iter
                (fun k ->
                  if List.assoc_opt k e = None then
                    Alcotest.failf "confidence.%s.%s missing" m k)
                [ "rate"; "hits"; "k_eff"; "n_eff"; "wilson"; "clopper_pearson" ]
          | _ -> Alcotest.failf "confidence.%s missing" m)
        [ "escape"; "repair_failure_two_pass"; "repair_failure_iterated" ]
  | _ -> Alcotest.fail "confidence must be an object"

let test_estimation_section_when_weighted () =
  let proposal = { P.count = P.Scaled { scale = 4.0; shift = 0.0 }; mix = None } in
  let r = C.run (rare_cfg ~proposal ~lambda:0.1 ~trials:80 ()) in
  match J.member "estimation" (E.report_json r) with
  | Some (J.Obj fields) ->
      List.iter
        (fun k ->
          if List.assoc_opt k fields = None then
            Alcotest.failf "estimation.%s missing" k)
        [ "weighted_trials"; "weight_sum"; "weight_sum_sq"; "ess" ]
  | _ -> Alcotest.fail "estimation section must be present with a proposal"

(* ------------------------------------------------------------------ *)
(* adaptive stopping *)

let test_adaptive_merged_equals_fixed_run () =
  (* the merged adaptive result must be byte-identical to one fixed
     run of the same total size — naive and weighted alike *)
  List.iter
    (fun proposal ->
      let cfg = rare_cfg ?proposal ~lambda:0.5 ~trials:1 () in
      let a =
        E.run_adaptive ~lanes:62 ~batch:40 ~metric:E.Repair_failure_two_pass
          ~max_trials:400 ~target:0.35 cfg
      in
      Alcotest.(check bool) "stopped on target" true
        (a.E.a_reason = E.Target_reached);
      Alcotest.(check int) "whole batches"
        (a.E.a_batches * 40)
        a.E.a_result.C.trials_run;
      let fixed =
        C.run ~lanes:62 { cfg with C.trials = a.E.a_result.C.trials_run }
      in
      Alcotest.(check string) "merged == fixed, byte for byte"
        (E.report_string fixed)
        (E.report_string a.E.a_result))
    [ None; Some { P.count = P.Stratified { nonzero = 0.5 }; mix = None } ]

let test_adaptive_trial_cap () =
  let cfg = rare_cfg ~lambda:0.5 ~trials:1 () in
  let a =
    E.run_adaptive ~lanes:62 ~batch:40 ~max_trials:80 ~target:0.0001 cfg
  in
  Alcotest.(check bool) "hit the cap" true (a.E.a_reason = E.Trial_cap);
  Alcotest.(check int) "ran exactly the cap" 80 a.E.a_result.C.trials_run;
  Alcotest.(check bool) "half-width above target" true
    (a.E.a_rel_half_width > 0.0001)

let test_adaptive_stratified_needs_fewer_trials () =
  (* the headline property at low density: the stratified proposal
     reaches the same relative-CI target in fewer trials than naive
     sampling *)
  let target = 0.3 and lambda = 0.02 in
  let naive =
    E.run_adaptive ~lanes:62 ~batch:100 ~max_trials:8000 ~target
      (rare_cfg ~lambda ~trials:1 ())
  in
  let strat =
    E.run_adaptive ~lanes:62 ~batch:100 ~max_trials:8000 ~target
      (rare_cfg
         ~proposal:{ P.count = P.Stratified { nonzero = 0.5 }; mix = None }
         ~lambda ~trials:1 ())
  in
  Alcotest.(check bool) "both reached the target" true
    (naive.E.a_reason = E.Target_reached && strat.E.a_reason = E.Target_reached);
  if strat.E.a_result.C.trials_run * 2 > naive.E.a_result.C.trials_run then
    Alcotest.failf "stratified took %d trials vs naive %d — no reduction"
      strat.E.a_result.C.trials_run naive.E.a_result.C.trials_run

let test_adaptive_validation () =
  let cfg = rare_cfg ~lambda:0.5 ~trials:1 () in
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ (fun () -> E.run_adaptive ~target:0.0 cfg)
    ; (fun () -> E.run_adaptive ~target:0.1 ~batch:0 cfg)
    ; (fun () -> E.run_adaptive ~target:0.1 ~max_trials:0 cfg)
    ; (fun () -> E.run_adaptive ~target:0.1 ~level:1.0 cfg)
    ]

let () =
  Alcotest.run "estimator"
    [ ( "intervals"
      , [ Alcotest.test_case "normal quantile" `Quick test_normal_quantile
        ; Alcotest.test_case "incomplete beta closed forms" `Quick
            test_reg_inc_beta_closed_forms
        ; Alcotest.test_case "beta_inv roundtrip" `Quick
            test_beta_inv_roundtrip
        ; Alcotest.test_case "wilson closed form" `Quick
            test_wilson_closed_form
        ; Alcotest.test_case "clopper-pearson edges" `Quick
            test_clopper_pearson_edges
        ; Alcotest.test_case "n=0 degenerates to [0,1]" `Quick
            test_intervals_degenerate_n_zero
        ; Alcotest.test_case "validation" `Quick test_interval_validation
        ; Alcotest.test_case "coverage on synthetic Bernoulli" `Quick
            test_coverage_synthetic_bernoulli
        ] )
    ; ( "estimates"
      , [ Alcotest.test_case "unweighted reduces to raw counts" `Quick
            test_estimate_unweighted_reduces_to_counts
        ; QCheck_alcotest.to_alcotest prop_weighted_estimate_brackets_analytic
        ; Alcotest.test_case "weighted report deterministic (jobs, lanes)"
            `Quick test_weighted_report_deterministic_jobs_lanes
        ] )
    ; ( "report"
      , [ Alcotest.test_case "/3 is a strict superset of /2" `Quick
            test_report_v3_superset_of_v2
        ; Alcotest.test_case "estimation section when weighted" `Quick
            test_estimation_section_when_weighted
        ] )
    ; ( "adaptive"
      , [ Alcotest.test_case "merged equals fixed run" `Quick
            test_adaptive_merged_equals_fixed_run
        ; Alcotest.test_case "trial cap" `Quick test_adaptive_trial_cap
        ; Alcotest.test_case "stratified needs fewer trials" `Slow
            test_adaptive_stratified_needs_fewer_trials
        ; Alcotest.test_case "validation" `Quick test_adaptive_validation
        ] )
    ]
