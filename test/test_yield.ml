(* Tests for the yield models (Section VII / Fig. 4). *)

module S = Bisram_yield.Stapper
module Rp = Bisram_yield.Repairable

let test_stapper_basics () =
  Alcotest.(check (float 1e-12)) "zero defects" 1.0
    (S.stapper_yield ~mean_defects:0.0 ~alpha:2.0);
  Alcotest.(check (float 1e-12)) "alpha 2, n 2" (1.0 /. 4.0)
    (S.stapper_yield ~mean_defects:2.0 ~alpha:2.0);
  Alcotest.(check (float 1e-12)) "da form"
    (S.stapper_yield ~mean_defects:3.0 ~alpha:2.0)
    (S.stapper_yield_da ~defect_density:0.5 ~area:6.0 ~alpha:2.0)

let test_stapper_vs_poisson () =
  (* clustering helps yield at equal mean defect count *)
  let n = 2.0 in
  Alcotest.(check bool) "clustered > poisson" true
    (S.stapper_yield ~mean_defects:n ~alpha:2.0 > S.poisson_yield ~mean_defects:n)

let test_stapper_inversion () =
  let y = 0.37 and alpha = 2.0 in
  let n = S.mean_defects_of_yield ~yield:y ~alpha in
  Alcotest.(check (float 1e-9)) "roundtrip" y (S.stapper_yield ~mean_defects:n ~alpha)

let test_occupancy_basics () =
  (* one ball occupies one bin *)
  Alcotest.(check (float 1e-12)) "1 ball <=1" 1.0
    (Rp.p_distinct_rows_at_most ~rows:10 ~spares:1 1);
  Alcotest.(check (float 1e-12)) "1 ball <=0" 0.0
    (Rp.p_distinct_rows_at_most ~rows:10 ~spares:0 1);
  (* two balls in same bin of 4: prob 1/4 *)
  Alcotest.(check (float 1e-12)) "2 balls <=1 in 4 bins" 0.25
    (Rp.p_distinct_rows_at_most ~rows:4 ~spares:1 2);
  Alcotest.(check (float 1e-12)) "spares >= rows" 1.0
    (Rp.p_distinct_rows_at_most ~rows:4 ~spares:4 100)

let test_p_repairable_edges () =
  let g = Rp.make ~regular_rows:16 ~spares:2 ~logic_fraction:0.0
      ~growth_factor:1.0 in
  Alcotest.(check (float 1e-12)) "0 faults" 1.0 (Rp.p_repairable g 0);
  (* one fault: must land in a regular row: 16/18 *)
  Alcotest.(check (float 1e-9)) "1 fault" (16.0 /. 18.0) (Rp.p_repairable g 1);
  (* with logic: scaled down *)
  let gl = Rp.make ~regular_rows:16 ~spares:2 ~logic_fraction:0.1
      ~growth_factor:1.0 in
  Alcotest.(check (float 1e-9)) "1 fault with logic" (0.9 *. 16.0 /. 18.0)
    (Rp.p_repairable gl 1)

let test_bare_yield_equals_stapper () =
  (* with no spares and no logic the module yield must equal Stapper *)
  let g = Rp.bare ~regular_rows:1024 in
  List.iter
    (fun n ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "n=%g" n)
        (S.stapper_yield ~mean_defects:n ~alpha:2.0)
        (Rp.yield g ~mean_defects:n ~alpha:2.0))
    [ 0.0; 0.5; 2.0; 10.0; 40.0 ]

let fig4_geom s =
  if s = 0 then Rp.bare ~regular_rows:1024
  else
    Rp.make ~regular_rows:1024 ~spares:s ~logic_fraction:0.02
      ~growth_factor:1.05

let test_fig4_ordering_high_defects () =
  (* at meaningful defect counts more spares = more yield *)
  List.iter
    (fun n ->
      let y s = Rp.yield (fig4_geom s) ~mean_defects:n ~alpha:2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "ordering at n=%g" n)
        true
        (y 0 < y 4 && y 4 < y 8 && y 8 < y 16))
    [ 5.0; 10.0; 20.0; 40.0 ]

let test_fig4_spare_vulnerability () =
  (* at very low defect counts extra spares HURT slightly (they are
     themselves fault sites) — visible in Fig. 4 near the origin *)
  let y s = Rp.yield (fig4_geom s) ~mean_defects:1.0 ~alpha:2.0 in
  Alcotest.(check bool) "16 spares below 8 at n=1" true (y 16 < y 8)

let test_yield_monotone_in_defects () =
  let g = fig4_geom 4 in
  let prev = ref 1.1 in
  List.iter
    (fun n ->
      let y = Rp.yield g ~mean_defects:n ~alpha:2.0 in
      Alcotest.(check bool) (Printf.sprintf "monotone at %g" n) true (y < !prev);
      prev := y)
    [ 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 40.0 ]

let test_analytic_matches_monte_carlo () =
  let rng = Random.State.make [| 2024 |] in
  let g = fig4_geom 4 in
  let a = Rp.yield g ~mean_defects:5.0 ~alpha:2.0 in
  let m = Rp.yield_monte_carlo rng g ~mean_defects:5.0 ~alpha:2.0 ~trials:60_000 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.4f ~ MC %.4f" a m)
    true
    (abs_float (a -. m) < 0.015)

let test_poisson_vs_clustered_repairable () =
  (* clustering concentrates defects into fewer dies: higher yield *)
  let g = fig4_geom 4 in
  Alcotest.(check bool) "clustered higher" true
    (Rp.yield g ~mean_defects:10.0 ~alpha:2.0
    > Rp.yield_poisson g ~mean_defects:10.0)

let prop_yield_in_unit_interval =
  QCheck.Test.make ~name:"yield in [0,1]" ~count:200
    QCheck.(pair (float_range 0.0 80.0) (int_range 0 16))
    (fun (n, s) ->
      let s = if s > 8 then 16 else if s > 4 then 8 else if s > 0 then 4 else 0 in
      let y = Rp.yield (fig4_geom s) ~mean_defects:n ~alpha:2.0 in
      y >= 0.0 && y <= 1.0)

(* --- input hardening: degenerate inputs raise instead of yielding NaN --- *)

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_stapper_rejects_degenerate () =
  expect_invalid "negative mean" (fun () ->
      S.stapper_yield ~mean_defects:(-1.0) ~alpha:2.0);
  expect_invalid "nan mean" (fun () ->
      S.stapper_yield ~mean_defects:Float.nan ~alpha:2.0);
  expect_invalid "zero alpha" (fun () ->
      S.stapper_yield ~mean_defects:1.0 ~alpha:0.0);
  expect_invalid "negative alpha" (fun () ->
      S.stapper_yield ~mean_defects:1.0 ~alpha:(-2.0));
  expect_invalid "infinite alpha" (fun () ->
      S.stapper_yield ~mean_defects:1.0 ~alpha:Float.infinity);
  expect_invalid "negative density" (fun () ->
      S.stapper_yield_da ~defect_density:(-0.1) ~area:1.0 ~alpha:2.0);
  expect_invalid "negative area" (fun () ->
      S.stapper_yield_da ~defect_density:0.1 ~area:(-1.0) ~alpha:2.0);
  expect_invalid "yield 0" (fun () ->
      S.mean_defects_of_yield ~yield:0.0 ~alpha:2.0);
  expect_invalid "yield > 1" (fun () ->
      S.mean_defects_of_yield ~yield:1.5 ~alpha:2.0);
  expect_invalid "nan yield" (fun () ->
      S.mean_defects_of_yield ~yield:Float.nan ~alpha:2.0);
  expect_invalid "negative poisson mean" (fun () ->
      S.poisson_yield ~mean_defects:(-0.5));
  expect_invalid "negative lambda" (fun () ->
      S.poisson_cell_yield ~lambda:(-1e-9))

let test_repairable_rejects_degenerate () =
  expect_invalid "nan logic_fraction" (fun () ->
      Rp.make ~regular_rows:16 ~spares:2 ~logic_fraction:Float.nan
        ~growth_factor:1.0);
  expect_invalid "logic_fraction 1" (fun () ->
      Rp.make ~regular_rows:16 ~spares:2 ~logic_fraction:1.0
        ~growth_factor:1.0);
  expect_invalid "nan growth" (fun () ->
      Rp.make ~regular_rows:16 ~spares:2 ~logic_fraction:0.0
        ~growth_factor:Float.nan);
  expect_invalid "growth < 1" (fun () ->
      Rp.make ~regular_rows:16 ~spares:2 ~logic_fraction:0.0
        ~growth_factor:0.5);
  let g = fig4_geom 4 in
  expect_invalid "negative mean" (fun () ->
      Rp.yield g ~mean_defects:(-1.0) ~alpha:2.0);
  expect_invalid "nan mean" (fun () ->
      Rp.yield g ~mean_defects:Float.nan ~alpha:2.0);
  expect_invalid "zero alpha" (fun () ->
      Rp.yield g ~mean_defects:1.0 ~alpha:0.0);
  expect_invalid "poisson negative mean" (fun () ->
      Rp.yield_poisson g ~mean_defects:(-1.0));
  expect_invalid "mc zero trials" (fun () ->
      Rp.yield_monte_carlo
        (Random.State.make [| 1 |])
        g ~mean_defects:1.0 ~alpha:2.0 ~trials:0)

(* MC simulation agrees with the analytic mixture on *random* geometries,
   not just the Fig. 4 one — the two paths share no code beyond the
   geometry record, so agreement cross-checks both *)
let prop_mc_matches_analytic =
  QCheck.Test.make ~name:"monte carlo ~ analytic on random geometries"
    ~count:15
    QCheck.(
      quad (int_range 32 512) (int_range 0 3)
        (pair (float_range 0.0 0.1) (float_range 0.0 8.0))
        (float_range 0.5 4.0))
    (fun (rows, si, (logic, mean), alpha) ->
      let spares = [| 0; 2; 4; 8 |].(si) in
      let g =
        Rp.make ~regular_rows:rows ~spares ~logic_fraction:logic
          ~growth_factor:1.05
      in
      let rng =
        Random.State.make
          [| 73; rows; spares; int_of_float (mean *. 1000.0)
           ; int_of_float (alpha *. 1000.0)
          |]
      in
      let a = Rp.yield g ~mean_defects:mean ~alpha in
      let m =
        Rp.yield_monte_carlo rng g ~mean_defects:mean ~alpha ~trials:20_000
      in
      abs_float (a -. m) < 0.03)

let prop_occupancy_monotone_in_spares =
  QCheck.Test.make ~name:"occupancy CDF monotone in spares" ~count:200
    QCheck.(pair (int_range 1 40) (int_range 2 64))
    (fun (n, rows) ->
      let p s = Rp.p_distinct_rows_at_most ~rows ~spares:s n in
      p 0 <= p 1 +. 1e-12 && p 1 <= p 4 +. 1e-12 && p 4 <= p 16 +. 1e-12)

let () =
  Alcotest.run "yield"
    [ ( "stapper",
        [ Alcotest.test_case "basics" `Quick test_stapper_basics
        ; Alcotest.test_case "vs poisson" `Quick test_stapper_vs_poisson
        ; Alcotest.test_case "inversion" `Quick test_stapper_inversion
        ] )
    ; ( "repairable",
        [ Alcotest.test_case "occupancy basics" `Quick test_occupancy_basics
        ; Alcotest.test_case "p_repairable edges" `Quick test_p_repairable_edges
        ; Alcotest.test_case "bare = stapper" `Quick
            test_bare_yield_equals_stapper
        ; Alcotest.test_case "fig4 ordering" `Quick
            test_fig4_ordering_high_defects
        ; Alcotest.test_case "spare vulnerability" `Quick
            test_fig4_spare_vulnerability
        ; Alcotest.test_case "monotone in defects" `Quick
            test_yield_monotone_in_defects
        ; Alcotest.test_case "matches monte carlo" `Slow
            test_analytic_matches_monte_carlo
        ; Alcotest.test_case "clustering helps" `Quick
            test_poisson_vs_clustered_repairable
        ; QCheck_alcotest.to_alcotest prop_yield_in_unit_interval
        ; QCheck_alcotest.to_alcotest prop_occupancy_monotone_in_spares
        ; QCheck_alcotest.to_alcotest prop_mc_matches_analytic
        ] )
    ; ( "hardening",
        [ Alcotest.test_case "stapper rejects degenerate" `Quick
            test_stapper_rejects_degenerate
        ; Alcotest.test_case "repairable rejects degenerate" `Quick
            test_repairable_rejects_degenerate
        ] )
    ]
