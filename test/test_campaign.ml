(* Tests for the Monte Carlo campaign harness: JSON report module,
   greedy shrinking, escape sweep, determinism, replay, budgets and the
   differential-oracle / no-silent-escape properties. *)

module C = Bisram_campaign.Campaign
module Sweep = Bisram_campaign.Sweep
module Shrink = Bisram_campaign.Shrink
module J = Bisram_campaign.Report
module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module F = Bisram_faults.Fault
module I = Bisram_faults.Injection
module Repair = Bisram_bisr.Repair
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen

let retention_only =
  { I.stuck_at = 0.0
  ; transition = 0.0
  ; stuck_open = 0.0
  ; coupling_inversion = 0.0
  ; coupling_idempotent = 0.0
  ; state_coupling = 0.0
  ; data_retention = 1.0
  }

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_rendering () =
  let j =
    J.Obj
      [ ("a", J.Int 3)
      ; ("b", J.Float 0.5)
      ; ("c", J.Float 2.0)
      ; ("s", J.String "x\"y\n")
      ; ("l", J.List [ J.Bool true; J.Null ])
      ]
  in
  Alcotest.(check string)
    "compact deterministic"
    "{\"a\":3,\"b\":0.5,\"c\":2.0,\"s\":\"x\\\"y\\n\",\"l\":[true,null]}"
    (J.to_string j)

(* ------------------------------------------------------------------ *)
(* shrinker *)

let test_shrink_single_culprit () =
  let items = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  Alcotest.(check (list int))
    "isolates the culprit" [ 7 ]
    (Shrink.minimize ~keep:(fun l -> List.mem 7 l) items)

let test_shrink_pair () =
  let items = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  Alcotest.(check (list int))
    "keeps interacting pair in order" [ 3; 9 ]
    (Shrink.minimize ~keep:(fun l -> List.mem 3 l && List.mem 9 l) items)

let test_shrink_size_threshold () =
  let items = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let r = Shrink.minimize ~keep:(fun l -> List.length l >= 3) items in
  Alcotest.(check int) "1-minimal size" 3 (List.length r)

let test_shrink_not_failing () =
  Alcotest.(check (list int))
    "non-failing input unchanged" [ 1; 2 ]
    (Shrink.minimize ~keep:(fun _ -> false) [ 1; 2 ])

let prop_shrink_minimal =
  QCheck.Test.make ~name:"shrunk list is 1-minimal" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 12) (int_range 0 30))
    (fun items ->
      let keep l = List.exists (fun x -> x mod 3 = 0) l in
      QCheck.assume (keep items);
      let r = Shrink.minimize ~keep items in
      keep r
      && List.for_all
           (fun x -> not (keep (List.filter (fun y -> y <> x) r)))
           r)

(* ------------------------------------------------------------------ *)
(* sweep *)

let test_sweep_clean_ram () =
  let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 () in
  let m = Model.create org in
  Alcotest.(check (list int)) "no mismatch on a clean RAM" []
    (List.map (fun mm -> mm.Sweep.addr) (Sweep.run m))

let test_sweep_sees_unrepaired_fault () =
  let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 () in
  let m = Model.create org in
  Model.set_faults m [ F.Stuck_at ({ F.row = 3; col = 9 }, true) ];
  Alcotest.(check bool) "stuck-at visible" false (Sweep.clean m)

let test_sweep_blind_after_remap () =
  let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 () in
  let m = Model.create org in
  Model.set_faults m [ F.Stuck_at ({ F.row = 3; col = 9 }, true) ];
  let outcome, _, _ =
    Repair.run m Alg.ifa_9 ~backgrounds:(Datagen.required_backgrounds ~bpw:8)
  in
  (match outcome with
  | Repair.Repaired _ -> ()
  | o -> Alcotest.failf "expected repair, got %a" Repair.pp_outcome o);
  Alcotest.(check bool) "repaired fault invisible" true (Sweep.clean m)

(* ------------------------------------------------------------------ *)
(* campaign determinism and replay *)

let test_campaign_deterministic () =
  let cfg = C.make_config ~trials:60 ~seed:11 () in
  let a = C.json_string (C.run cfg) in
  let b = C.json_string (C.run cfg) in
  Alcotest.(check string) "byte-identical reports" a b

let test_campaign_seed_changes_report () =
  let r1 = C.json_string (C.run (C.make_config ~trials:20 ~seed:1 ())) in
  let r2 = C.json_string (C.run (C.make_config ~trials:20 ~seed:2 ())) in
  Alcotest.(check bool) "different seeds differ" true (r1 <> r2)

let known_escape_config ?(trials = 30) () =
  C.make_config ~march:Alg.mats_plus ~mix:retention_only ~mode:(C.Uniform 3)
    ~trials ~seed:5 ()

let test_known_escape_detected_and_shrunk () =
  let cfg = known_escape_config () in
  let r = C.run cfg in
  Alcotest.(check bool) "escapes found" true (r.C.escapes <> []);
  List.iter
    (fun f ->
      let n = List.length f.C.f_shrunk in
      if n < 1 || n > 3 then
        Alcotest.failf "shrunk reproducer has %d faults" n;
      (* a retention-only escape shrinks to a single decaying cell *)
      Alcotest.(check int) "minimal reproducer" 1 n)
    r.C.escapes

let test_known_escape_replayable () =
  let cfg = known_escape_config () in
  let r = C.run cfg in
  let f = List.hd r.C.escapes in
  let t = C.replay cfg ~seed:f.C.f_seed in
  Alcotest.(check bool) "replay reproduces the escape" true
    (List.exists
       (function C.Escape _ -> true | C.Divergence _ -> false)
       t.C.t_anomalies);
  Alcotest.(check bool) "replay regenerates the fault set" true
    (t.C.t_faults = f.C.f_faults)

let test_clean_mix_has_no_anomalies () =
  let cfg =
    C.make_config ~mix:I.stuck_at_only ~mode:(C.Uniform 3) ~trials:60 ~seed:3
      ()
  in
  let r = C.run cfg in
  Alcotest.(check int) "no escapes" 0 (List.length r.C.escapes);
  Alcotest.(check int) "no divergences" 0 (List.length r.C.divergences);
  Alcotest.(check int) "all trials accounted"
    r.C.trials_run
    (r.C.two_pass.C.passed_clean + r.C.two_pass.C.repaired
    + r.C.two_pass.C.too_many_faulty_rows
    + r.C.two_pass.C.fault_in_second_pass)

let test_budget_truncates () =
  (* a fake clock advancing 1s per reading: the first budget check
     already fires, so zero trials run and the report says truncated *)
  let t = ref 0.0 in
  let now () =
    t := !t +. 1.0;
    !t
  in
  let cfg = C.make_config ~trials:50 ~seed:1 ~max_seconds:0.5 () in
  let r = C.run ~now cfg in
  Alcotest.(check bool) "truncated" true r.C.truncated;
  Alcotest.(check int) "no trials" 0 r.C.trials_run;
  Alcotest.(check bool) "report still renders" true
    (String.length (C.json_string r) > 0)

let test_budget_partial () =
  (* 0.1s per check, 0.35s budget: exactly three trials fit *)
  let t = ref 0.0 in
  let now () =
    t := !t +. 0.1;
    !t
  in
  let cfg = C.make_config ~trials:50 ~seed:1 ~max_seconds:0.35 () in
  let r = C.run ~now cfg in
  Alcotest.(check bool) "truncated" true r.C.truncated;
  Alcotest.(check int) "three trials" 3 r.C.trials_run

let test_budget_now_caller_only () =
  (* the mli promises [now] is never called from a worker domain, so an
     impure stub (like the refs above) cannot race when jobs > 1 *)
  let caller = Domain.self () in
  let foreign = Atomic.make false in
  let now () =
    if Domain.self () <> caller then Atomic.set foreign true;
    0.0
  in
  let cfg = C.make_config ~trials:30 ~seed:7 ~max_seconds:1000.0 () in
  ignore (C.run ~now ~jobs:4 cfg);
  Alcotest.(check bool) "now confined to calling domain" false
    (Atomic.get foreign)

let test_budget_parallel_prefix_semantics () =
  (* a truncated parallel report must aggregate exactly the contiguous
     prefix [0 .. trials_run - 1]: whatever the cutoff landed on, the
     counts equal an unbudgeted sequential run over that many trials *)
  (* only the caller polls [now] (0.02s per poll, 0.12s budget), so it
     stops after a handful of its own claims; 200 trials guarantee the
     helpers cannot drain the queue first, so the caller's tripped
     claim is a hole and the run is always truncated *)
  let t = ref 0.0 in
  let now () =
    t := !t +. 0.02;
    !t
  in
  let cfg =
    { (known_escape_config ~trials:200 ()) with C.max_seconds = Some 0.12 }
  in
  let r = C.run ~now ~jobs:4 cfg in
  Alcotest.(check bool) "truncated" true r.C.truncated;
  let prefix =
    C.run { cfg with C.trials = r.C.trials_run; C.max_seconds = None }
  in
  Alcotest.(check bool) "counts equal the sequential prefix run" true
    (r.C.two_pass = prefix.C.two_pass
    && r.C.iterated = prefix.C.iterated
    && r.C.rounds = prefix.C.rounds
    && r.C.escapes = prefix.C.escapes
    && r.C.divergences = prefix.C.divergences)

let test_unbudgeted_runs_all () =
  let cfg = C.make_config ~trials:25 ~seed:9 () in
  let r = C.run cfg in
  Alcotest.(check bool) "not truncated" false r.C.truncated;
  Alcotest.(check int) "all trials" 25 r.C.trials_run

let test_jobs_byte_identical () =
  (* ISSUE acceptance gate: the parallel report is byte-identical to the
     sequential one, both on a clean run and on one with escapes (the
     escape/divergence lists exercise the merge's index ordering) *)
  let check_cfg name cfg =
    let seq = C.json_string (C.run ~jobs:1 cfg) in
    let par = C.json_string (C.run ~jobs:4 cfg) in
    Alcotest.(check string) name seq par
  in
  check_cfg "clean mix, jobs=4 = jobs=1"
    (C.make_config ~trials:40 ~seed:11 ~mode:(C.Uniform 2) ());
  check_cfg "escaping mix, jobs=4 = jobs=1" (known_escape_config ~trials:20 ())

let test_jobs_validation () =
  let cfg = C.make_config ~trials:5 ~seed:1 () in
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Campaign.run: jobs must be >= 1") (fun () ->
      ignore (C.run ~jobs:0 cfg))


(* Pre-estimator golden report, captured from the tool before the
   rare-event estimation layer landed: with no proposal armed the /2
   report must stay byte-identical forever (replay/CI contracts hang
   off these bytes).  Any diff here is a schema break, not a tweak. *)
let golden_v2_report = {golden|{
  "schema": "bisram-campaign/2",
  "config": {
    "org": {
      "words": 64,
      "bpw": 8,
      "bpc": 4,
      "spares": 4
    },
    "march": "IFA-9",
    "mix": {
      "stuck_at": 1.0,
      "transition": 0.0,
      "stuck_open": 0.0,
      "coupling_inversion": 0.0,
      "coupling_idempotent": 0.0,
      "state_coupling": 0.0,
      "data_retention": 0.0
    },
    "mode": {
      "kind": "uniform",
      "faults": 2
    },
    "trials": 8,
    "seed": 11,
    "max_seconds": null,
    "shrink": true,
    "max_rounds": 8
  },
  "trials_run": 8,
  "truncated": false,
  "outcomes": {
    "two_pass": {
      "passed_clean": 2,
      "repaired": 5,
      "too_many_faulty_rows": 0,
      "fault_in_second_pass": 1
    },
    "iterated": {
      "passed_clean": 2,
      "repaired": 6,
      "too_many_faulty_rows": 0,
      "fault_in_second_pass": 0
    }
  },
  "repair_rounds": [
    {
      "rounds": 1,
      "count": 7
    },
    {
      "rounds": 2,
      "count": 1
    }
  ],
  "escapes": [],
  "divergences": [],
  "tool_errors": [],
  "yield": {
    "observed_two_pass": 0.875,
    "observed_iterated": 1.0,
    "analytic": 0.64
  }
}
|golden}

let test_golden_v2_bytes_frozen () =
  let cfg =
    C.make_config ~mix:I.stuck_at_only ~mode:(C.Uniform 2) ~trials:8 ~seed:11
      ()
  in
  Alcotest.(check string) "estimation-off report bytes are frozen"
    golden_v2_report
    (C.pretty_json_string (C.run cfg))

let test_rounds_histogram_totals () =
  let cfg = C.make_config ~trials:40 ~seed:13 ~mode:(C.Uniform 4) () in
  let r = C.run cfg in
  Alcotest.(check int) "rounds cover every trial" r.C.trials_run
    (List.fold_left (fun a (_, c) -> a + c) 0 r.C.rounds)

let test_yield_brackets_analytic () =
  (* The analytic strict notion (no fault in ANY spare) is a lower
     bound on the simulated two-pass flow, which only fails on faults
     in spares it actually deploys; the iterated flow repairs faulty
     spares and dominates both. *)
  let cfg =
    C.make_config ~mix:I.stuck_at_only ~mode:(C.Uniform 6) ~trials:300 ~seed:21
      ()
  in
  let r = C.run cfg in
  if r.C.observed_yield_two_pass < r.C.analytic_yield -. 0.06 then
    Alcotest.failf "two-pass %.3f below strict analytic bound %.3f"
      r.C.observed_yield_two_pass r.C.analytic_yield;
  Alcotest.(check bool) "iterated dominates two-pass" true
    (r.C.observed_yield_iterated >= r.C.observed_yield_two_pass)

(* ------------------------------------------------------------------ *)
(* resilience: checkpoints, resume, tool errors, chaos, drain *)

module Chaos = Bisram_chaos.Chaos
module Pool = Bisram_parallel.Pool

let with_temp_ckpt f =
  let path = Filename.temp_file "bisram-ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let prop_kill_resume_byte_identical =
  (* the ISSUE acceptance gate, in-process: interrupt the campaign after
     a random number of trials (exactly what a kill after the last
     snapshot leaves on disk), resume to completion, and require the
     report byte-identical to an uninterrupted run — at jobs 1 and 4 *)
  QCheck.Test.make ~name:"kill at random trial + resume is byte-identical"
    ~count:10
    QCheck.(triple (int_range 0 24) (int_range 1 6) bool)
    (fun (k, every, par) ->
      let jobs = if par then 4 else 1 in
      let cfg = C.make_config ~trials:25 ~seed:17 () in
      let full = C.json_string (C.run ~jobs cfg) in
      with_temp_ckpt (fun path ->
          ignore
            (C.run ~jobs
               ~checkpoint:(C.checkpoint ~path ~every ())
               { cfg with C.trials = k });
          let r =
            C.run ~jobs
              ~checkpoint:(C.checkpoint ~path ~every ~resume:true ())
              cfg
          in
          r.C.resumed_trials = k && C.json_string r = full))

let test_checkpoint_config_mismatch_rejected () =
  with_temp_ckpt (fun path ->
      let cfg1 = C.make_config ~trials:8 ~seed:1 () in
      ignore (C.run ~checkpoint:(C.checkpoint ~path ~every:2 ()) cfg1);
      (* a different campaign seed changes every trial: the snapshot
         must be rejected, not blended in *)
      let cfg2 = C.make_config ~trials:8 ~seed:2 () in
      let cold = C.json_string (C.run cfg2) in
      let r =
        C.run ~checkpoint:(C.checkpoint ~path ~every:2 ~resume:true ()) cfg2
      in
      Alcotest.(check int) "nothing resumed" 0 r.C.resumed_trials;
      Alcotest.(check string) "cold-start report" cold (C.json_string r))

let test_checkpoint_corruption_degrades () =
  with_temp_ckpt (fun path ->
      let cfg = C.make_config ~trials:10 ~seed:23 () in
      let full = C.json_string (C.run cfg) in
      ignore
        (C.run
           ~checkpoint:(C.checkpoint ~path ~every:2 ())
           { cfg with C.trials = 6 });
      (* truncate the snapshot mid-record: the resume must fall back to
         recomputation, never crash or mis-aggregate *)
      let s = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub s 0 (String.length s / 2)));
      let r =
        C.run ~checkpoint:(C.checkpoint ~path ~every:2 ~resume:true ()) cfg
      in
      Alcotest.(check string) "byte-identical despite corrupt checkpoint" full
        (C.json_string r))

let test_resume_missing_checkpoint_is_cold () =
  let cfg = C.make_config ~trials:6 ~seed:29 () in
  let cold = C.json_string (C.run cfg) in
  let r =
    C.run
      ~checkpoint:
        (C.checkpoint ~path:"/nonexistent-dir/nope.ckpt" ~resume:true ())
      cfg
  in
  Alcotest.(check int) "nothing resumed" 0 r.C.resumed_trials;
  Alcotest.(check string) "cold-start report" cold (C.json_string r)

let test_chaos_transients_absorbed () =
  (* injected transient job faults at a moderate rate are fully
     absorbed by the pool's retries: the report is byte-identical to a
     chaos-free run, at any job count (rate/seed verified to never
     exhaust the 3 attempts for these trial indices) *)
  let cfg = C.make_config ~trials:30 ~seed:19 () in
  let clean = C.json_string (C.run cfg) in
  Chaos.configure { Chaos.off with Chaos.seed = 11; Chaos.job_fail = 0.2 };
  Fun.protect ~finally:Chaos.disarm (fun () ->
      Alcotest.(check string) "absorbed at jobs 1" clean
        (C.json_string (C.run ~jobs:1 cfg));
      Alcotest.(check string) "absorbed at jobs 4" clean
        (C.json_string (C.run ~jobs:4 cfg)))

let test_chaos_tool_errors_recorded () =
  (* at rate 1 every attempt fails: each trial becomes a recorded
     tool_error outcome instead of aborting the campaign, and the
     report is still jobs-invariant *)
  let cfg = C.make_config ~trials:10 ~seed:19 () in
  Chaos.configure { Chaos.off with Chaos.seed = 1; Chaos.job_fail = 1.0 };
  Fun.protect ~finally:Chaos.disarm (fun () ->
      let a = C.run ~jobs:1 cfg in
      Alcotest.(check int) "every trial a tool error" 10
        (List.length a.C.tool_errors);
      Alcotest.(check int) "all trials still accounted" 10 a.C.trials_run;
      Alcotest.(check int) "no outcome counted" 0
        (a.C.two_pass.C.passed_clean + a.C.two_pass.C.repaired
        + a.C.two_pass.C.too_many_faulty_rows
        + a.C.two_pass.C.fault_in_second_pass);
      List.iteri
        (fun i te ->
          Alcotest.(check int) "trial order" i te.C.te_trial;
          Alcotest.(check bool) "diagnostic names chaos" true
            (String.length te.C.te_error > 0))
        a.C.tool_errors;
      let b = C.run ~jobs:4 cfg in
      Alcotest.(check string) "jobs-invariant" (C.json_string a)
        (C.json_string b))

let test_should_stop_drains_prefix () =
  (* the SIGINT path: a caller stop flag drains exactly like the
     budget, leaving the maximal contiguous prefix *)
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 5
  in
  let cfg = C.make_config ~trials:50 ~seed:3 () in
  let r = C.run ~should_stop:stop cfg in
  Alcotest.(check bool) "truncated" true r.C.truncated;
  Alcotest.(check int) "five-trial prefix" 5 r.C.trials_run;
  Alcotest.(check bool) "report renders" true
    (String.length (C.json_string r) > 0)

let test_trial_deadline_records_tool_errors () =
  (* a 1 ns per-trial deadline: the first cooperative poll (between the
     march and oracle flows) raises, and every trial lands in the
     report as a deadline tool error *)
  let cfg = C.make_config ~trials:4 ~seed:5 () in
  let r = C.run ~trial_deadline:1e-9 cfg in
  Alcotest.(check int) "every trial deadlined" 4
    (List.length r.C.tool_errors);
  List.iter
    (fun te ->
      Alcotest.(check string) "deadline diagnostic"
        (Printexc.to_string Pool.Deadline_exceeded)
        te.C.te_error)
    r.C.tool_errors

let test_tool_errors_in_schema () =
  (* schema /2: the field is always present, also when empty *)
  let r = C.run (C.make_config ~trials:3 ~seed:1 ()) in
  let j = C.json_string r in
  Alcotest.(check bool) "schema bumped" true
    (let sub = "bisram-campaign/2" in
     let rec find i =
       i + String.length sub <= String.length j
       && (String.sub j i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  Alcotest.(check bool) "tool_errors always present" true
    (let sub = "\"tool_errors\":[]" in
     let rec find i =
       i + String.length sub <= String.length j
       && (String.sub j i (String.length sub) = sub || find (i + 1))
     in
     find 0)

(* ------------------------------------------------------------------ *)
(* properties: differential oracle and no silent escapes *)

let prop_oracle_agreement =
  (* controller and functional reference agree on every outcome, for
     random fault sets across every class of the default mix *)
  QCheck.Test.make ~name:"controller agrees with reference oracle" ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 0 6))
    (fun (seed, n) ->
      let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 () in
      let rng = Random.State.make [| 0xD1FF; seed |] in
      let faults =
        I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
          ~mix:I.default_mix ~n
      in
      let bgs = Datagen.required_backgrounds ~bpw:8 in
      let run_on () =
        let m = Model.create org in
        Model.set_faults m faults;
        m
      in
      let mc = run_on () in
      let controller, _, _ = Repair.run mc Alg.ifa_9 ~backgrounds:bgs in
      let mr = run_on () in
      let reference, _ = Repair.run_reference mr Alg.ifa_9 ~backgrounds:bgs in
      match (controller, reference) with
      | Repair.Passed_clean, Repair.Passed_clean -> true
      | Repair.Repaired a, Repair.Repaired b -> a = b
      | Repair.Repair_unsuccessful a, Repair.Repair_unsuccessful b -> a = b
      | _ -> false)

let prop_no_silent_escape_stuck_at =
  (* for the fault class the march covers completely, a success verdict
     from the iterated flow means the sweep finds nothing *)
  QCheck.Test.make
    ~name:"run_iterated never reports Repaired over a faulty logical cell"
    ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 0 8))
    (fun (seed, n) ->
      let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 () in
      let rng = Random.State.make [| 0x5CA9; seed |] in
      let faults =
        I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
          ~mix:I.stuck_at_only ~n
      in
      let m = Model.create org in
      Model.set_faults m faults;
      let r =
        Repair.run_iterated_result m Alg.ifa_9
          ~backgrounds:(Datagen.required_backgrounds ~bpw:8)
      in
      match r.Repair.i_outcome with
      | Repair.Passed_clean | Repair.Repaired _ -> Sweep.clean m
      | Repair.Repair_unsuccessful _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "campaign"
    [ ( "json"
      , [ Alcotest.test_case "rendering" `Quick test_json_rendering ] )
    ; ( "shrink"
      , [ Alcotest.test_case "single culprit" `Quick test_shrink_single_culprit
        ; Alcotest.test_case "pair" `Quick test_shrink_pair
        ; Alcotest.test_case "size threshold" `Quick test_shrink_size_threshold
        ; Alcotest.test_case "not failing" `Quick test_shrink_not_failing
        ; QCheck_alcotest.to_alcotest prop_shrink_minimal
        ] )
    ; ( "sweep"
      , [ Alcotest.test_case "clean RAM" `Quick test_sweep_clean_ram
        ; Alcotest.test_case "unrepaired fault" `Quick
            test_sweep_sees_unrepaired_fault
        ; Alcotest.test_case "repaired fault invisible" `Quick
            test_sweep_blind_after_remap
        ] )
    ; ( "campaign"
      , [ Alcotest.test_case "deterministic report" `Quick
            test_campaign_deterministic
        ; Alcotest.test_case "seed sensitivity" `Quick
            test_campaign_seed_changes_report
        ; Alcotest.test_case "known escape detected+shrunk" `Quick
            test_known_escape_detected_and_shrunk
        ; Alcotest.test_case "known escape replayable" `Quick
            test_known_escape_replayable
        ; Alcotest.test_case "stuck-at mix is anomaly-free" `Quick
            test_clean_mix_has_no_anomalies
        ; Alcotest.test_case "budget truncates" `Quick test_budget_truncates
        ; Alcotest.test_case "budget partial results" `Quick
            test_budget_partial
        ; Alcotest.test_case "budget now confined to caller" `Quick
            test_budget_now_caller_only
        ; Alcotest.test_case "budget parallel prefix semantics" `Quick
            test_budget_parallel_prefix_semantics
        ; Alcotest.test_case "unbudgeted runs all" `Quick
            test_unbudgeted_runs_all
        ; Alcotest.test_case "rounds histogram totals" `Quick
            test_rounds_histogram_totals
        ; Alcotest.test_case "parallel report byte-identical" `Quick
            test_jobs_byte_identical
        ; Alcotest.test_case "jobs validation" `Quick test_jobs_validation
        ; Alcotest.test_case "golden /2 bytes frozen" `Quick
            test_golden_v2_bytes_frozen
        ; Alcotest.test_case "observed yield brackets analytic" `Slow
            test_yield_brackets_analytic
        ] )
    ; ( "resilience"
      , [ QCheck_alcotest.to_alcotest prop_kill_resume_byte_identical
        ; Alcotest.test_case "config mismatch rejects checkpoint" `Quick
            test_checkpoint_config_mismatch_rejected
        ; Alcotest.test_case "corrupt checkpoint degrades" `Quick
            test_checkpoint_corruption_degrades
        ; Alcotest.test_case "missing checkpoint is a cold start" `Quick
            test_resume_missing_checkpoint_is_cold
        ; Alcotest.test_case "chaos transients absorbed by retries" `Quick
            test_chaos_transients_absorbed
        ; Alcotest.test_case "crashing trials become tool errors" `Quick
            test_chaos_tool_errors_recorded
        ; Alcotest.test_case "should_stop drains the prefix" `Quick
            test_should_stop_drains_prefix
        ; Alcotest.test_case "trial deadline records tool errors" `Quick
            test_trial_deadline_records_tool_errors
        ; Alcotest.test_case "tool_errors field in schema" `Quick
            test_tool_errors_in_schema
        ] )
    ; ( "properties"
      , [ QCheck_alcotest.to_alcotest prop_oracle_agreement
        ; QCheck_alcotest.to_alcotest prop_no_silent_escape_stuck_at
        ] )
    ]
