(* Tests for the reliability model (Section VIII / Fig. 5). *)

module Rel = Bisram_rel.Reliability
module Org = Bisram_sram.Org

(* Fig. 5 configuration: 1024 rows, bpc = bpw = 4 *)
let org s = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:s ()
let lambda = 1e-8
let cfg s = Rel.of_org (org s) ~lambda

let test_boundary_conditions () =
  Alcotest.(check (float 1e-12)) "R(0)=1" 1.0 (Rel.reliability (cfg 4) 0.0);
  Alcotest.(check bool) "R(huge)~0" true
    (Rel.reliability (cfg 4) 1e9 < 1e-6)

let test_monotone_decreasing () =
  let c = cfg 4 in
  let prev = ref 1.0 in
  List.iter
    (fun t ->
      let r = Rel.reliability c t in
      Alcotest.(check bool) (Printf.sprintf "R decreasing at %g" t) true
        (r <= !prev +. 1e-12);
      Alcotest.(check bool) "in unit interval" true (r >= 0.0 && r <= 1.0);
      prev := r)
    [ 1e3; 1e4; 5e4; 1e5; 2e5; 1e6 ]

let test_early_life_fewer_spares_better () =
  (* before the crossover, more spares means lower reliability — the
     spares are themselves failure sites (paper's Fig. 5 observation) *)
  let t = 10_000.0 in
  let r s = Rel.reliability (cfg s) t in
  Alcotest.(check bool) "4 > 8 early" true (r 4 > r 8);
  Alcotest.(check bool) "8 > 16 early" true (r 8 > r 16)

let test_late_life_more_spares_better () =
  let t = 200_000.0 in
  let r s = Rel.reliability (cfg s) t in
  Alcotest.(check bool) "8 > 4 late" true (r 8 > r 4)

let test_crossover_location () =
  (* paper: reliability with 4 spares exceeds 8 spares until the device
     is ~8 years old (~70,000 h) *)
  match Rel.crossover (cfg 4) (cfg 8) ~t0:1000.0 ~t1:1e6 ~steps:4000 with
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "crossover at %.0f h" t)
        true
        (t > 40_000.0 && t < 110_000.0)
  | None -> Alcotest.fail "no 4-vs-8 crossover found"

let test_spares_extend_mttf () =
  let m0 = Rel.mttf (cfg 0) and m4 = Rel.mttf (cfg 4) in
  Alcotest.(check bool)
    (Printf.sprintf "mttf %.3g -> %.3g" m0 m4)
    true (m4 > 3.0 *. m0)

let test_mttf_scales_inversely_with_lambda () =
  let m1 = Rel.mttf (Rel.of_org (org 4) ~lambda:1e-8) in
  let m2 = Rel.mttf (Rel.of_org (org 4) ~lambda:2e-8) in
  Alcotest.(check bool) "halved lambda doubles mttf" true
    (abs_float ((m1 /. m2) -. 2.0) < 0.1)

let test_failure_pdf_nonnegative () =
  let c = cfg 4 in
  List.iter
    (fun t ->
      Alcotest.(check bool) (Printf.sprintf "pdf >= 0 at %g" t) true
        (Rel.failure_pdf c t >= -1e-9))
    [ 1e3; 1e4; 1e5; 5e5 ]

let test_lambda_rejected () =
  let expect name l =
    Alcotest.(check bool) name true
      (try
         ignore (Rel.of_org (org 4) ~lambda:l);
         false
       with Invalid_argument _ -> true)
  in
  expect "zero lambda" 0.0;
  expect "negative lambda" (-1e-9);
  expect "nan lambda" Float.nan;
  expect "infinite lambda" Float.infinity

(* MTTF is strictly decreasing in the per-bit failure rate: scaling
   lambda up by any factor >= 1.5 must strictly shorten the expected
   life.  A small org keeps the Simpson integration cheap. *)
let prop_mttf_decreasing_in_lambda =
  QCheck.Test.make ~name:"mttf strictly decreasing in lambda" ~count:25
    QCheck.(
      triple
        (float_range (-9.0) (-6.0))
        (float_range 1.5 10.0) (int_range 0 2))
    (fun (log_l, factor, si) ->
      let s = List.nth [ 0; 4; 8 ] si in
      let small = Org.make ~words:64 ~bpw:4 ~bpc:4 ~spares:s () in
      let l = 10.0 ** log_l in
      let m1 = Rel.mttf (Rel.of_org small ~lambda:l) in
      let m2 = Rel.mttf (Rel.of_org small ~lambda:(l *. factor)) in
      m2 < m1)

let prop_reliability_unit_interval =
  QCheck.Test.make ~name:"R(t) in [0,1]" ~count:200
    QCheck.(pair (float_range 0.0 1e6) (int_range 0 2))
    (fun (t, si) ->
      let s = List.nth [ 0; 4; 8 ] si in
      let r = Rel.reliability (cfg s) t in
      r >= 0.0 && r <= 1.0)

let () =
  Alcotest.run "reliability"
    [ ( "reliability",
        [ Alcotest.test_case "boundary" `Quick test_boundary_conditions
        ; Alcotest.test_case "monotone" `Quick test_monotone_decreasing
        ; Alcotest.test_case "early life" `Quick
            test_early_life_fewer_spares_better
        ; Alcotest.test_case "late life" `Quick
            test_late_life_more_spares_better
        ; Alcotest.test_case "crossover ~70kh" `Quick test_crossover_location
        ; Alcotest.test_case "mttf gain" `Slow test_spares_extend_mttf
        ; Alcotest.test_case "mttf scaling" `Slow
            test_mttf_scales_inversely_with_lambda
        ; Alcotest.test_case "pdf nonnegative" `Quick test_failure_pdf_nonnegative
        ; Alcotest.test_case "degenerate lambda rejected" `Quick
            test_lambda_rejected
        ; QCheck_alcotest.to_alcotest prop_reliability_unit_interval
        ; QCheck_alcotest.to_alcotest prop_mttf_decreasing_in_lambda
        ] )
    ]
