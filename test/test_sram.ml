(* Tests for organization, words and the fault-aware SRAM model. *)

module Org = Bisram_sram.Org
module Word = Bisram_sram.Word
module Model = Bisram_sram.Model
module Timing = Bisram_sram.Timing
module F = Bisram_faults.Fault
module Pr = Bisram_tech.Process

let word = Alcotest.testable Word.pp Word.equal
let cell r c = { F.row = r; F.col = c }

(* ------------------------------------------------------------------ *)
(* Org *)

let test_org_derived () =
  let o = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:4 () in
  Alcotest.(check int) "rows" 1024 (Org.rows o);
  Alcotest.(check int) "total rows" 1028 (Org.total_rows o);
  Alcotest.(check int) "cols" 16 (Org.cols o);
  Alcotest.(check int) "bits" 16384 (Org.bits o);
  Alcotest.(check (float 1e-9)) "kilobits" 16.0 (Org.kilobits o);
  Alcotest.(check int) "spare words" 16 (Org.spare_words o)

let test_org_validation () =
  let bad f = Alcotest.check_raises "rejected" (Invalid_argument "") (fun () ->
      try ignore (f ()) with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  bad (fun () -> Org.make ~words:100 ~bpw:4 ~bpc:3 ());
  bad (fun () -> Org.make ~words:100 ~bpw:3 ~bpc:4 ());
  bad (fun () -> Org.make ~words:10 ~bpw:4 ~bpc:4 ());
  bad (fun () -> Org.make ~words:64 ~bpw:4 ~bpc:4 ~spares:5 ())

let test_org_address_split () =
  let o = Org.make ~words:64 ~bpw:8 ~bpc:4 () in
  (* addr = row*bpc + col *)
  Alcotest.(check int) "row of 13" 3 (Org.row_of_addr o 13);
  Alcotest.(check int) "col of 13" 1 (Org.col_of_addr o 13);
  Alcotest.(check int) "roundtrip" 13 (Org.addr_of o ~row:3 ~col:1);
  (* bit i of mux position c sits at column i*bpc + c *)
  Alcotest.(check int) "cell col" 9 (Org.cell_col o ~col:1 ~bit:2)

let prop_org_addr_roundtrip =
  QCheck.Test.make ~name:"address decomposition roundtrips" ~count:300
    QCheck.(int_range 0 4095)
    (fun a ->
      let o = Org.make ~words:4096 ~bpw:4 ~bpc:8 () in
      Org.addr_of o ~row:(Org.row_of_addr o a) ~col:(Org.col_of_addr o a) = a)

(* ------------------------------------------------------------------ *)
(* Word *)

let test_word_basics () =
  let w = Word.of_int ~width:8 0b10110010 in
  Alcotest.(check bool) "bit1" true (Word.get w 1);
  Alcotest.(check bool) "bit0" false (Word.get w 0);
  Alcotest.(check string) "to_string lsb first" "01001101" (Word.to_string w);
  Alcotest.check word "lnot" (Word.of_int ~width:8 0b01001101) (Word.lnot_ w);
  Alcotest.(check (list int)) "diff" [ 0; 7 ]
    (Word.diff w (Word.of_int ~width:8 0b00110011))

let test_word_set () =
  let w = Word.zero 4 in
  let w' = Word.set w 2 true in
  Alcotest.(check bool) "functional update" false (Word.get w 2);
  Alcotest.(check bool) "new value" true (Word.get w' 2)

let test_word_width_bounds () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  (* max_width itself is fine, one past it is not *)
  Alcotest.check word "ones at max_width"
    (Word.of_int ~width:Word.max_width max_int)
    (Word.ones Word.max_width);
  Alcotest.(check int) "max_width packs to max_int" max_int
    (Word.to_int (Word.ones Word.max_width));
  Alcotest.(check bool) "width 63 rejected" true
    (raises (fun () -> Word.zero (Word.max_width + 1)));
  Alcotest.(check bool) "negative width rejected" true
    (raises (fun () -> Word.zero (-1)));
  (* width mismatch is a caller bug, not inequality *)
  Alcotest.(check bool) "equal raises on width mismatch" true
    (raises (fun () -> Word.equal (Word.zero 4) (Word.zero 5)));
  Alcotest.(check bool) "diff raises on width mismatch" true
    (raises (fun () -> Word.diff (Word.zero 4) (Word.zero 5)))

(* Every Word operation checked against a bool-array reference model,
   across the full width range including the 62-bit boundary.  The
   packed representation's masking discipline (no stray high bits, so
   [equal] can be a plain int compare) is exactly what this pins. *)
let prop_word_vs_reference =
  QCheck.Test.make ~name:"packed word agrees with bool-array reference"
    ~count:500
    QCheck.(quad (int_range 1 62) int int small_nat)
    (fun (width, v1, v2, i) ->
      let i = i mod width in
      let ref_of v = Array.init width (fun b -> (v lsr b) land 1 = 1) in
      let r1 = ref_of v1 and r2 = ref_of v2 in
      let w1 = Word.of_int ~width v1 and w2 = Word.of_int ~width v2 in
      let agree w r = Word.to_bits w = r in
      agree w1 r1 && agree w2 r2
      (* init/of_bits/to_bits roundtrip *)
      && agree (Word.init width (Array.get r1)) r1
      && agree (Word.of_bits r1) r1
      && Word.width w1 = width
      (* get / functional set *)
      && Word.get w1 i = r1.(i)
      && agree (Word.set w1 i true) (Array.mapi (fun b x -> b = i || x) r1)
      && agree (Word.set w1 i false) (Array.mapi (fun b x -> b <> i && x) r1)
      (* complement *)
      && agree (Word.lnot_ w1) (Array.map not r1)
      (* equality = array equality at the same width *)
      && Word.equal w1 w2 = (r1 = r2)
      (* diff = mismatching positions, ascending *)
      && Word.diff w1 w2
         = List.filter (fun b -> r1.(b) <> r2.(b))
             (List.init width (fun b -> b))
      (* string form, bit 0 first *)
      && Word.to_string w1
         = String.init width (fun b -> if r1.(b) then '1' else '0')
      (* to_int inverts of_int under the width mask *)
      && Word.to_int w1 = v1 land ((1 lsl width) - 1)
      && agree (Word.zero width) (Array.make width false)
      && agree (Word.ones width) (Array.make width true))

(* ------------------------------------------------------------------ *)
(* Model: fault-free behaviour *)

let small () = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 ()

let test_model_rw () =
  let m = Model.create (small ()) in
  let w = Word.of_int ~width:8 0xA5 in
  Model.write_word m 17 w;
  Alcotest.check word "read back" w (Model.read_word m 17);
  Alcotest.check word "other addr untouched" (Word.zero 8) (Model.read_word m 18);
  Alcotest.(check int) "write count" 1 (Model.writes m);
  Alcotest.(check int) "read count" 2 (Model.reads m)

let test_model_all_addresses_independent () =
  let org = small () in
  let m = Model.create org in
  for a = 0 to org.Org.words - 1 do
    Model.write_word m a (Word.of_int ~width:8 (a land 0xFF))
  done;
  let ok = ref true in
  for a = 0 to org.Org.words - 1 do
    if not (Word.equal (Model.read_word m a) (Word.of_int ~width:8 (a land 0xFF)))
    then ok := false
  done;
  Alcotest.(check bool) "all distinct" true !ok

let test_model_clear () =
  let m = Model.create (small ()) in
  Model.write_word m 5 (Word.ones 8);
  Model.clear m;
  Alcotest.check word "cleared" (Word.zero 8) (Model.read_word m 5)

let test_model_rejects_unsimulable_org () =
  (* bpw = 64 is a legal organization (layout flows accept it) but
     exceeds the packed simulator's word width *)
  let o = Org.make ~words:64 ~bpw:64 ~bpc:4 () in
  Alcotest.(check bool) "org constructs" true (Org.bits o = 4096);
  Alcotest.(check bool) "not simulable" false (Org.simulable o);
  Alcotest.(check bool) "simulable at 32" true
    (Org.simulable (Org.make ~words:64 ~bpw:32 ~bpc:4 ()));
  Alcotest.(check bool) "Model.create rejects it" true
    (match Model.create o with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Model: fault behaviour.  Bit 2 of mux col 1 = physical column 2*4+1=9. *)

let test_stuck_at () =
  let m = Model.create (small ()) in
  Model.set_faults m [ F.Stuck_at (cell 3 9, true) ];
  (* addr with row 3, col 1 = 13; bit 2 is the faulty cell *)
  Alcotest.(check bool) "reads 1 initially" true (Word.get (Model.read_word m 13) 2);
  Model.write_word m 13 (Word.zero 8);
  Alcotest.(check bool) "still 1 after w0" true (Word.get (Model.read_word m 13) 2);
  (* neighbour bit unaffected *)
  Alcotest.(check bool) "bit 3 clean" false (Word.get (Model.read_word m 13) 3)

let test_transition_fault () =
  let m = Model.create (small ()) in
  Model.set_faults m [ F.Transition (cell 3 9, true) ] (* cannot rise *);
  Model.write_word m 13 (Word.ones 8);
  Alcotest.(check bool) "bit stuck low" false (Word.get (Model.read_word m 13) 2);
  Alcotest.(check bool) "others rose" true (Word.get (Model.read_word m 13) 3);
  (* down transitions work: a down-TF cell can rise *)
  let m2 = Model.create (small ()) in
  Model.set_faults m2 [ F.Transition (cell 3 9, false) ];
  Model.write_word m2 13 (Word.ones 8);
  Alcotest.(check bool) "rose" true (Word.get (Model.read_word m2 13) 2);
  Model.write_word m2 13 (Word.zero 8);
  Alcotest.(check bool) "cannot fall" true (Word.get (Model.read_word m2 13) 2)

let test_stuck_open () =
  let m = Model.create (small ()) in
  Model.set_faults m [ F.Stuck_open (cell 3 9) ];
  (* write all-1 everywhere in row 3 col 1; the open cell keeps nothing;
     read returns the sense-amp residue from the previous read on I/O 2 *)
  Model.write_word m 13 (Word.ones 8);
  (* read another address first: residue for io 2 = that cell's value 0 *)
  ignore (Model.read_word m 14);
  Alcotest.(check bool) "reads residue 0" false (Word.get (Model.read_word m 13) 2);
  (* now make the residue 1 by reading a 1 elsewhere *)
  Model.write_word m 14 (Word.ones 8);
  ignore (Model.read_word m 14);
  Alcotest.(check bool) "reads residue 1" true (Word.get (Model.read_word m 13) 2)

let test_coupling_inversion () =
  let m = Model.create (small ()) in
  (* aggressor phys col 9 (bit 2 of col 1); victim col 10 (bit 2 of col 2) *)
  Model.set_faults m
    [ F.Coupling_inversion { aggressor = cell 3 9; victim = cell 3 10 } ];
  (* victim: row 3 col 2 = addr 14, bit 2 *)
  Alcotest.(check bool) "victim starts 0" false (Word.get (Model.read_word m 14) 2);
  (* flip aggressor: write 1 to addr 13 bit 2 *)
  Model.write_word m 13 (Word.of_int ~width:8 0b100);
  Alcotest.(check bool) "victim inverted" true (Word.get (Model.read_word m 14) 2);
  (* writing the same value again is no transition: no further flip *)
  Model.write_word m 13 (Word.of_int ~width:8 0b100);
  Alcotest.(check bool) "no double flip" true (Word.get (Model.read_word m 14) 2)

let test_coupling_idempotent () =
  let m = Model.create (small ()) in
  Model.set_faults m
    [ F.Coupling_idempotent
        { aggressor = cell 3 9; rising = true; victim = cell 3 10; forces = true }
    ];
  Model.write_word m 14 (Word.zero 8);
  (* falling aggressor transition does nothing *)
  Model.write_word m 13 (Word.of_int ~width:8 0b100);
  Alcotest.(check bool) "rising forces 1" true (Word.get (Model.read_word m 14) 2);
  Model.write_word m 14 (Word.zero 8);
  Model.write_word m 13 (Word.zero 8);
  Alcotest.(check bool) "falling does not force" false
    (Word.get (Model.read_word m 14) 2)

let test_state_coupling () =
  let m = Model.create (small ()) in
  Model.set_faults m
    [ F.State_coupling
        { aggressor = cell 3 9; when_state = true; victim = cell 3 10; reads_as = false }
    ];
  Model.write_word m 14 (Word.of_int ~width:8 0b100) (* victim = 1 *);
  Alcotest.(check bool) "reads true while aggressor 0" true
    (Word.get (Model.read_word m 14) 2);
  Model.write_word m 13 (Word.of_int ~width:8 0b100) (* aggressor = 1 *);
  Alcotest.(check bool) "masked while aggressor 1" false
    (Word.get (Model.read_word m 14) 2);
  Model.write_word m 13 (Word.zero 8);
  Alcotest.(check bool) "restored" true (Word.get (Model.read_word m 14) 2)

let test_data_retention () =
  let m = Model.create (small ()) in
  Model.set_faults m [ F.Data_retention (cell 3 9, false) ];
  Model.write_word m 13 (Word.ones 8);
  Alcotest.(check bool) "holds before wait" true (Word.get (Model.read_word m 13) 2);
  Model.retention_wait m;
  Alcotest.(check bool) "decays after wait" false (Word.get (Model.read_word m 13) 2);
  Alcotest.(check bool) "healthy bit holds" true (Word.get (Model.read_word m 13) 3)

let test_set_faults_reuse_restores_powerup_zeros () =
  (* Reusing one model across [set_faults] calls (as Coverage.evaluate
     and Module_model.inject do): data planted by the old config — the
     stuck-at pin re-asserted by [clear], retention decay, coupling
     force-stores — must not leak into the new config.  Regression for
     the teardown forgetting to flag previously armed rows as dirty. *)
  let m = Model.create (small ()) in
  Model.set_faults m [ F.Stuck_at (cell 3 9, true) ];
  Alcotest.(check bool) "pin reads 1 under old config" true
    (Word.get (Model.read_word m 13) 2);
  (* second config on a different row; read row 3 without writing it *)
  Model.set_faults m [ F.Transition (cell 1 0, true) ];
  Alcotest.check word "old pinned row back to power-up zeros" (Word.zero 8)
    (Model.read_word m 13);
  (* same leak through retention decay: decay row 3, then re-arm *)
  Model.set_faults m [ F.Data_retention (cell 3 9, true) ];
  Model.retention_wait m;
  Alcotest.(check bool) "decayed to 1" true (Word.get (Model.read_word m 13) 2);
  Model.set_faults m [];
  Alcotest.check word "decayed row back to power-up zeros" (Word.zero 8)
    (Model.read_word m 13)

let test_remap () =
  let org = small () in
  let m = Model.create org in
  (* kill row 3 completely, then remap logical row 3 to spare row 16 *)
  Model.set_faults m [ F.Stuck_at (cell 3 9, true) ];
  Model.set_remap m (Some (fun row -> if row = 3 then Org.rows org else row));
  Model.write_word m 13 (Word.zero 8);
  Alcotest.check word "reads clean via spare" (Word.zero 8) (Model.read_word m 13);
  (* physical row 3 is untouched by the remapped write *)
  Alcotest.(check bool) "stuck cell still 1 physically" true
    (Word.get (Model.read_row_word m ~row:3 ~col:1) 2)

let test_faulty_spare () =
  let org = small () in
  let m = Model.create org in
  let spare_row = Org.rows org in
  Model.set_faults m [ F.Stuck_at (cell spare_row 9, true) ];
  Model.set_remap m (Some (fun row -> if row = 3 then spare_row else row));
  Model.write_word m 13 (Word.zero 8);
  Alcotest.(check bool) "fault visible through remap" true
    (Word.get (Model.read_word m 13) 2)

(* ------------------------------------------------------------------ *)
(* Timing *)

let test_timing_magnitudes () =
  let org = Org.make ~words:4096 ~bpw:128 ~bpc:8 () in
  let b = Timing.access_time Pr.cda_07u3m1p org ~drive:2.0 in
  let t = Timing.total b in
  Alcotest.(check bool)
    (Printf.sprintf "access %.2f ns in 0.5..10" (t *. 1e9))
    true
    (t > 0.5e-9 && t < 10e-9)

let test_timing_monotone_rows () =
  let p = Pr.cda_07u3m1p in
  let t1 =
    Timing.total
      (Timing.access_time p (Org.make ~words:1024 ~bpw:8 ~bpc:4 ()) ~drive:2.0)
  in
  let t2 =
    Timing.total
      (Timing.access_time p (Org.make ~words:16384 ~bpw:8 ~bpc:4 ()) ~drive:2.0)
  in
  Alcotest.(check bool) "bigger array slower" true (t2 > t1)

let test_write_and_interface_timing () =
  let p = Pr.cda_07u3m1p in
  let org = Org.make ~words:4096 ~bpw:32 ~bpc:8 () in
  let wt = Timing.write_time p org ~drive:2.0 in
  let rt = Timing.total (Timing.access_time p org ~drive:2.0) in
  Alcotest.(check bool)
    (Printf.sprintf "write %.2f ns positive and comparable to read %.2f ns"
       (wt *. 1e9) (rt *. 1e9))
    true
    (wt > 0.1e-9 && wt < 3.0 *. rt);
  let itf = Timing.interface p org ~drive:2.0 in
  Alcotest.(check bool) "setups positive" true
    (itf.Timing.address_setup > 0.0 && itf.Timing.data_setup > 0.0
    && itf.Timing.hold >= 0.0);
  Alcotest.(check bool) "address setup below access" true
    (itf.Timing.address_setup < rt)

let test_timing_drive_helps () =
  let p = Pr.cda_07u3m1p in
  let org = Org.make ~words:4096 ~bpw:32 ~bpc:8 () in
  let t1 = (Timing.access_time p org ~drive:1.0).Timing.address_buffer in
  let t4 = (Timing.access_time p org ~drive:4.0).Timing.address_buffer in
  Alcotest.(check bool) "bigger drive faster address buffer" true (t4 < t1)

let prop_model_rw_roundtrip =
  QCheck.Test.make ~name:"fault-free write/read roundtrip" ~count:200
    QCheck.(pair (int_range 0 63) (int_range 0 255))
    (fun (addr, v) ->
      let m = Model.create (small ()) in
      let w = Word.of_int ~width:8 v in
      Model.write_word m addr w;
      Word.equal w (Model.read_word m addr))

(* Differential check of the fault-free fast path against the legacy
   per-cell machinery: same faults, same operation sequence, every read
   and the access counters must agree — on fault-free arrays (n = 0)
   and on random fault sets of every class, including spare rows. *)
let prop_fast_path_equals_legacy =
  QCheck.Test.make ~name:"fast path agrees with legacy path" ~count:150
    QCheck.(pair (int_range 0 100_000) (int_range 0 6))
    (fun (seed, n) ->
      let module I = Bisram_faults.Injection in
      let org = small () in
      let rng = Random.State.make [| 0xFA57; seed |] in
      let faults =
        I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
          ~mix:I.default_mix ~n
      in
      let spare = Org.rows org in
      let ops =
        List.init 250 (fun _ ->
            match Random.State.int rng 10 with
            | 0 -> `Wait
            | 1 -> `Clear
            | 2 -> `Spare_w (Random.State.int rng org.Org.spares,
                             Random.State.int rng 256)
            | 3 -> `Spare_r (Random.State.int rng org.Org.spares)
            | 4 | 5 | 6 ->
                `W (Random.State.int rng org.Org.words,
                    Random.State.int rng 256)
            | _ -> `R (Random.State.int rng org.Org.words))
      in
      let drive fast =
        let m = Model.create org in
        Model.set_fast_path m fast;
        Model.set_faults m faults;
        let log =
          List.filter_map
            (fun op ->
              match op with
              | `W (a, v) ->
                  Model.write_word m a (Word.of_int ~width:8 v);
                  None
              | `R a -> Some (Word.to_string (Model.read_word m a))
              | `Spare_w (k, v) ->
                  Model.write_row_word m ~row:(spare + k) ~col:0
                    (Word.of_int ~width:8 v);
                  None
              | `Spare_r k ->
                  Some (Word.to_string (Model.read_row_word m ~row:(spare + k) ~col:0))
              | `Wait ->
                  Model.retention_wait m;
                  None
              | `Clear ->
                  Model.clear m;
                  None)
            ops
        in
        (log, Model.reads m, Model.writes m)
      in
      drive true = drive false)

(* Same differential with the BISR remap in the loop: ops install and
   remove logical-to-spare row translations mid-stream, plus fast-path
   toggles (exercising the packed<->byte store migration), so reads
   through a remap of clean and faulty rows must agree byte for byte
   with the legacy machinery. *)
let prop_fast_path_equals_legacy_remap =
  QCheck.Test.make ~name:"fast path agrees with legacy path under remap"
    ~count:150
    QCheck.(pair (int_range 0 100_000) (int_range 0 5))
    (fun (seed, n) ->
      let module I = Bisram_faults.Injection in
      let org = small () in
      let rng = Random.State.make [| 0x4E4A; seed |] in
      let faults =
        I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
          ~mix:I.default_mix ~n
      in
      let spare = Org.rows org in
      let ops =
        List.init 300 (fun _ ->
            match Random.State.int rng 12 with
            | 0 -> `Wait
            | 1 -> `Clear
            | 2 ->
                `Remap
                  ( Random.State.int rng (Org.rows org)
                  , Random.State.int rng org.Org.spares )
            | 3 -> `Unmap
            | 4 -> `Toggle
            | 5 | 6 | 7 ->
                `W (Random.State.int rng org.Org.words,
                    Random.State.int rng 256)
            | _ -> `R (Random.State.int rng org.Org.words))
      in
      let drive fast =
        let m = Model.create org in
        Model.set_fast_path m fast;
        Model.set_faults m faults;
        let on = ref fast in
        let log =
          List.filter_map
            (fun op ->
              match op with
              | `W (a, v) ->
                  Model.write_word m a (Word.of_int ~width:8 v);
                  None
              | `R a -> Some (Word.to_string (Model.read_word m a))
              | `Remap (r, k) ->
                  Model.set_remap m
                    (Some (fun row -> if row = r then spare + k else row));
                  None
              | `Unmap ->
                  Model.set_remap m None;
                  None
              | `Toggle ->
                  (* only meaningful in the fast-driven model: the
                     legacy-driven one stays legacy throughout *)
                  if fast then begin
                    on := not !on;
                    Model.set_fast_path m !on
                  end;
                  None
              | `Wait ->
                  Model.retention_wait m;
                  None
              | `Clear ->
                  Model.clear m;
                  None)
            ops
        in
        (log, Model.reads m, Model.writes m)
      in
      drive true = drive false)

let test_clear_touches_only_dirty_rows () =
  (* behavioural check of the dirty-row invariant: after clear,
     every cell reads zero again regardless of what was written,
     including spare rows and pinned cells at their stuck value *)
  let org = small () in
  let m = Model.create org in
  Model.set_faults m [ F.Stuck_at (cell 3 9, true) ];
  for a = 0 to org.Org.words - 1 do
    Model.write_word m a (Word.ones 8)
  done;
  Model.write_row_word m ~row:(Org.rows org) ~col:2 (Word.ones 8);
  Model.clear m;
  for a = 0 to org.Org.words - 1 do
    let expected =
      if a = 13 then Word.of_int ~width:8 0b100 (* pinned cell reads 1 *)
      else Word.zero 8
    in
    Alcotest.check word (Printf.sprintf "addr %d cleared" a) expected
      (Model.read_word m a)
  done;
  Alcotest.check word "spare row cleared" (Word.zero 8)
    (Model.read_row_word m ~row:(Org.rows org) ~col:2)

let () =
  Alcotest.run "sram"
    [ ( "org",
        [ Alcotest.test_case "derived" `Quick test_org_derived
        ; Alcotest.test_case "validation" `Quick test_org_validation
        ; Alcotest.test_case "address split" `Quick test_org_address_split
        ; QCheck_alcotest.to_alcotest prop_org_addr_roundtrip
        ] )
    ; ( "word",
        [ Alcotest.test_case "basics" `Quick test_word_basics
        ; Alcotest.test_case "set" `Quick test_word_set
        ; Alcotest.test_case "width bounds" `Quick test_word_width_bounds
        ; QCheck_alcotest.to_alcotest prop_word_vs_reference
        ] )
    ; ( "model",
        [ Alcotest.test_case "read/write" `Quick test_model_rw
        ; Alcotest.test_case "independence" `Quick
            test_model_all_addresses_independent
        ; Alcotest.test_case "clear" `Quick test_model_clear
        ; Alcotest.test_case "rejects unsimulable org" `Quick
            test_model_rejects_unsimulable_org
        ; Alcotest.test_case "stuck-at" `Quick test_stuck_at
        ; Alcotest.test_case "transition" `Quick test_transition_fault
        ; Alcotest.test_case "stuck-open" `Quick test_stuck_open
        ; Alcotest.test_case "coupling inversion" `Quick test_coupling_inversion
        ; Alcotest.test_case "coupling idempotent" `Quick
            test_coupling_idempotent
        ; Alcotest.test_case "state coupling" `Quick test_state_coupling
        ; Alcotest.test_case "data retention" `Quick test_data_retention
        ; Alcotest.test_case "set_faults reuse restores power-up zeros"
            `Quick test_set_faults_reuse_restores_powerup_zeros
        ; Alcotest.test_case "remap" `Quick test_remap
        ; Alcotest.test_case "faulty spare" `Quick test_faulty_spare
        ; QCheck_alcotest.to_alcotest prop_model_rw_roundtrip
        ; QCheck_alcotest.to_alcotest prop_fast_path_equals_legacy
        ; QCheck_alcotest.to_alcotest prop_fast_path_equals_legacy_remap
        ; Alcotest.test_case "clear covers dirty rows" `Quick
            test_clear_touches_only_dirty_rows
        ] )
    ; ( "timing",
        [ Alcotest.test_case "magnitudes" `Quick test_timing_magnitudes
        ; Alcotest.test_case "monotone in rows" `Quick test_timing_monotone_rows
        ; Alcotest.test_case "write/interface" `Quick
            test_write_and_interface_timing
        ; Alcotest.test_case "drive helps" `Quick test_timing_drive_helps
        ] )
    ]
