(* Tests for the deterministic chaos injector. *)

module Chaos = Bisram_chaos.Chaos

let with_config cfg f =
  Chaos.configure cfg;
  Fun.protect ~finally:Chaos.disarm f

let armed rate = { Chaos.off with Chaos.seed = 11; job_fail = rate }

(* ------------------------------------------------------------------ *)
(* arming *)

let test_disarmed_by_default () =
  Chaos.disarm ();
  Alcotest.(check bool) "inactive" false (Chaos.active ());
  Alcotest.(check bool) "never fires" false
    (Chaos.fires ~site:"pool.job" ~key:"0.1" 1.0);
  Alcotest.(check bool) "no corruption" true
    (Chaos.corrupt ~key:"k" "payload" = None);
  Alcotest.(check bool) "no write failure" false (Chaos.write_fails ~key:"k");
  Alcotest.(check bool) "no job failure" false (Chaos.job_fails ~key:"0.1");
  Alcotest.(check bool) "no kill" true (Chaos.kill_at_trial () = None);
  Alcotest.(check int) "no skew" 0 (Int64.to_int (Chaos.clock_skew_ns ()))

let test_configure_disarm_roundtrip () =
  with_config (armed 0.5) (fun () ->
      Alcotest.(check bool) "active" true (Chaos.active ());
      Alcotest.(check bool) "config visible" true
        ((Chaos.current ()).Chaos.job_fail = 0.5));
  Alcotest.(check bool) "disarmed after" false (Chaos.active ())

(* ------------------------------------------------------------------ *)
(* env parsing *)

let env_of_list l k = List.assoc_opt k l

let test_env_none () =
  Alcotest.(check bool) "no knobs -> no config" true
    (Chaos.config_of_env (fun _ -> None) = None)

let test_env_full () =
  let env =
    env_of_list
      [ ("BISRAM_CHAOS_SEED", "7")
      ; ("BISRAM_CHAOS_CACHE_READ", "0.25")
      ; ("BISRAM_CHAOS_CACHE_WRITE", "0.5")
      ; ("BISRAM_CHAOS_JOB", "0.125")
      ; ("BISRAM_CHAOS_KILL_TRIAL", "42")
      ; ("BISRAM_CHAOS_CLOCK_SKEW_NS", "1000")
      ]
  in
  match Chaos.config_of_env env with
  | None -> Alcotest.fail "expected a config"
  | Some c ->
      Alcotest.(check int) "seed" 7 c.Chaos.seed;
      Alcotest.(check (float 0.0)) "read" 0.25 c.Chaos.cache_read_corrupt;
      Alcotest.(check (float 0.0)) "write" 0.5 c.Chaos.cache_write_fail;
      Alcotest.(check (float 0.0)) "job" 0.125 c.Chaos.job_fail;
      Alcotest.(check (option int)) "kill" (Some 42) c.Chaos.kill_at_trial;
      Alcotest.(check int) "skew" 1000 (Int64.to_int c.Chaos.clock_skew_ns)

let test_env_partial_and_garbage () =
  (* one valid knob arms; unparseable values fall back to off *)
  let env =
    env_of_list
      [ ("BISRAM_CHAOS_JOB", "0.5"); ("BISRAM_CHAOS_SEED", "banana") ]
  in
  match Chaos.config_of_env env with
  | None -> Alcotest.fail "one valid knob should arm"
  | Some c ->
      Alcotest.(check (float 0.0)) "job parsed" 0.5 c.Chaos.job_fail;
      Alcotest.(check int) "garbage seed ignored" Chaos.off.Chaos.seed
        c.Chaos.seed

(* ------------------------------------------------------------------ *)
(* determinism *)

let test_fires_deterministic () =
  with_config (armed 0.5) (fun () ->
      let keys = List.init 200 (fun i -> Printf.sprintf "%d.1" i) in
      let roll () =
        List.map (fun k -> Chaos.fires ~site:"pool.job" ~key:k 0.5) keys
      in
      let a = roll () in
      (* same decisions on a second pass and in reverse order *)
      Alcotest.(check bool) "stable across calls" true (roll () = a);
      let rev =
        List.rev_map (fun k -> Chaos.fires ~site:"pool.job" ~key:k 0.5)
          (List.rev keys)
      in
      Alcotest.(check bool) "independent of call order" true (rev = a);
      (* a 0.5 rate on 200 keys fires somewhere strictly between the
         extremes — i.e. the hash actually varies with the key *)
      let n = List.length (List.filter Fun.id a) in
      Alcotest.(check bool) "some fire" true (n > 0);
      Alcotest.(check bool) "some do not" true (n < 200))

let test_fires_extremes () =
  with_config (armed 0.5) (fun () ->
      Alcotest.(check bool) "rate 0 never" false
        (Chaos.fires ~site:"s" ~key:"k" 0.0);
      Alcotest.(check bool) "rate 1 always" true
        (Chaos.fires ~site:"s" ~key:"k" 1.0))

let test_sites_independent () =
  (* the same key hashes differently at different sites: 64 keys all
     agreeing across two sites would be a 2^-64 coincidence *)
  with_config (armed 0.5) (fun () ->
      let differs =
        List.exists
          (fun i ->
            let k = string_of_int i in
            Chaos.fires ~site:"cache.read" ~key:k 0.5
            <> Chaos.fires ~site:"cache.write" ~key:k 0.5)
          (List.init 64 Fun.id)
      in
      Alcotest.(check bool) "site enters the hash" true differs)

let test_seed_changes_decisions () =
  let roll seed =
    with_config { (armed 0.5) with Chaos.seed } (fun () ->
        List.init 64 (fun i ->
            Chaos.fires ~site:"pool.job" ~key:(string_of_int i) 0.5))
  in
  Alcotest.(check bool) "seed enters the hash" true (roll 1 <> roll 2)

(* ------------------------------------------------------------------ *)
(* corruption shapes *)

let test_corrupt_deterministic_and_damaging () =
  with_config
    { Chaos.off with Chaos.seed = 3; cache_read_corrupt = 1.0 }
    (fun () ->
      let s = "{\"key\":\"k\",\"value\":1}" in
      match Chaos.corrupt ~key:"k" s with
      | None -> Alcotest.fail "rate 1 must corrupt"
      | Some c ->
          Alcotest.(check bool) "actually damaged" true (c <> s);
          Alcotest.(check bool) "stable" true (Chaos.corrupt ~key:"k" s = Some c))

let test_corrupt_shapes_vary () =
  (* across many keys all three corruption shapes (flip, truncate,
     empty) appear: lengths equal, shorter-non-empty and zero *)
  with_config
    { Chaos.off with Chaos.seed = 5; cache_read_corrupt = 1.0 }
    (fun () ->
      let s = String.make 64 'x' in
      let lens =
        List.init 64 (fun i ->
            match Chaos.corrupt ~key:(string_of_int i) s with
            | Some c -> String.length c
            | None -> -1)
      in
      Alcotest.(check bool) "byte flip" true (List.mem 64 lens);
      Alcotest.(check bool) "truncation" true
        (List.exists (fun l -> l > 0 && l < 64) lens);
      Alcotest.(check bool) "emptied" true (List.mem 0 lens))

(* ------------------------------------------------------------------ *)
(* clock skew *)

let test_clock_skew_applied () =
  let module Clock = Bisram_parallel.Clock in
  let before = Clock.now_ns () in
  with_config
    { Chaos.off with Chaos.seed = 1; clock_skew_ns = 1_000_000_000_000L }
    (fun () ->
      let skewed = Clock.now_ns () in
      (* a 1000 s skew dwarfs any real elapsed time *)
      Alcotest.(check bool) "skew visible" true
        (Int64.sub skewed before > 500_000_000_000L));
  let after = Clock.now_ns () in
  Alcotest.(check bool) "skew gone after disarm" true
    (Int64.sub after before < 500_000_000_000L)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chaos"
    [ ( "arming"
      , [ Alcotest.test_case "disarmed by default" `Quick
            test_disarmed_by_default
        ; Alcotest.test_case "configure/disarm" `Quick
            test_configure_disarm_roundtrip
        ] )
    ; ( "env"
      , [ Alcotest.test_case "no knobs" `Quick test_env_none
        ; Alcotest.test_case "all knobs" `Quick test_env_full
        ; Alcotest.test_case "partial + garbage" `Quick
            test_env_partial_and_garbage
        ] )
    ; ( "determinism"
      , [ Alcotest.test_case "fires is a pure hash" `Quick
            test_fires_deterministic
        ; Alcotest.test_case "rate extremes" `Quick test_fires_extremes
        ; Alcotest.test_case "sites independent" `Quick test_sites_independent
        ; Alcotest.test_case "seed matters" `Quick test_seed_changes_decisions
        ] )
    ; ( "corruption"
      , [ Alcotest.test_case "deterministic and damaging" `Quick
            test_corrupt_deterministic_and_damaging
        ; Alcotest.test_case "all shapes appear" `Quick
            test_corrupt_shapes_vary
        ] )
    ; ( "clock"
      , [ Alcotest.test_case "skew applied and removed" `Quick
            test_clock_skew_applied
        ] )
    ]
