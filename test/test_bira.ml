(* Tests for the 2D BIRA subsystem: the line-cover allocators against a
   brute-force oracle, the bounded fault map's packed/scalar extraction
   agreement, the 2D remap layer, the spare-column yield model, and the
   campaign-facing guarantees — row-tlb golden bytes and jobs x lanes
   byte-identity for every allocator. *)

module Cover = Bisram_bira.Cover
module Fault_map = Bisram_bira.Fault_map
module Remap2d = Bisram_bira.Remap2d
module Bira = Bisram_bira.Bira
module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module Engine = Bisram_bist.Engine
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module F = Bisram_faults.Fault
module Repairable = Bisram_yield.Repairable
module C = Bisram_campaign.Campaign

(* ------------------------------------------------------------------ *)
(* cover: deterministic cases *)

let solution = Alcotest.testable (fun ppf (s : Cover.solution) ->
    Format.fprintf ppf "rows %a cols %a"
      (Format.pp_print_list Format.pp_print_int) s.Cover.rep_rows
      (Format.pp_print_list Format.pp_print_int) s.Cover.rep_cols)
    ( = )

let verdict = Alcotest.testable (fun ppf -> function
    | Cover.Uncoverable -> Format.pp_print_string ppf "uncoverable"
    | Cover.Cover s -> Alcotest.pp solution ppf s)
    ( = )

let problem ?(rows = 8) ?(cols = 8) ~sr ~sc cells =
  { Cover.rows; cols; spare_rows = sr; spare_cols = sc; cells }

let test_cover_empty () =
  List.iter
    (fun (module A : Cover.Allocator) ->
      Alcotest.check verdict
        (A.name ^ " empty")
        (Cover.Cover { Cover.rep_rows = []; rep_cols = [] })
        (A.solve (problem ~sr:2 ~sc:2 [])))
    [ (module Cover.Greedy); (module Cover.Essential)
    ; (module Cover.Exhaustive)
    ]

let test_cover_must_repair () =
  (* row 3 holds three faults but only two column spares exist, so the
     row is forced; that exhausts the row budget, which in turn forces
     column 2 for the stray cell — the fixpoint must find both *)
  let p = problem ~sr:1 ~sc:2 [ (3, 0); (3, 4); (3, 6); (5, 2) ] in
  match Cover.must_repair p with
  | None -> Alcotest.fail "must_repair gave up"
  | Some (rs, cs, rest) ->
      Alcotest.(check (list int)) "forced rows" [ 3 ] rs;
      Alcotest.(check (list int)) "forced cols" [ 2 ] cs;
      Alcotest.(check (list (pair int int))) "residue" [] rest

let test_cover_uncoverable () =
  (* a 3x3 diagonal needs three lines; only two are available *)
  let p = problem ~sr:1 ~sc:1 [ (0, 0); (1, 1); (2, 2) ] in
  List.iter
    (fun (module A : Cover.Allocator) ->
      Alcotest.check verdict (A.name ^ " diagonal") Cover.Uncoverable
        (A.solve p))
    [ (module Cover.Greedy); (module Cover.Essential)
    ; (module Cover.Exhaustive)
    ]

let test_bnb_col_only () =
  (* a full column of faults with no spare rows *)
  let p = problem ~sr:0 ~sc:1 [ (0, 5); (3, 5); (7, 5) ] in
  Alcotest.check verdict "column repair"
    (Cover.Cover { Cover.rep_rows = []; rep_cols = [ 5 ] })
    (Cover.Exhaustive.solve p)

(* ------------------------------------------------------------------ *)
(* cover: properties against the brute-force oracle *)

let gen_problem =
  QCheck.Gen.(
    let* rows = int_range 2 6 and* cols = int_range 2 6 in
    let* sr = int_range 0 2 and* sc = int_range 0 2 in
    let* n = int_range 0 7 in
    let* cells =
      list_size (return n)
        (pair (int_range 0 (rows - 1)) (int_range 0 (cols - 1)))
    in
    let cells = List.sort_uniq compare cells in
    return { Cover.rows; cols; spare_rows = sr; spare_cols = sc; cells })

let arb_problem =
  QCheck.make gen_problem ~print:(fun p ->
      Printf.sprintf "%dx%d sr=%d sc=%d cells=[%s]" p.Cover.rows p.Cover.cols
        p.Cover.spare_rows p.Cover.spare_cols
        (String.concat "; "
           (List.map
              (fun (r, c) -> Printf.sprintf "(%d,%d)" r c)
              p.Cover.cells)))

let size (s : Cover.solution) =
  List.length s.Cover.rep_rows + List.length s.Cover.rep_cols

(* the acceptance property: branch-and-bound matches the brute-force
   optimum — same coverability verdict, same minimal line count, and a
   genuine cover *)
let prop_bnb_optimal =
  QCheck.Test.make ~name:"Exhaustive = brute-force optimal" ~count:500
    arb_problem (fun p ->
      match (Cover.Exhaustive.solve p, Cover.brute_force p) with
      | Cover.Uncoverable, Cover.Uncoverable -> true
      | Cover.Cover s, Cover.Cover o ->
          Cover.covers p s && size s = size o
      | Cover.Cover _, Cover.Uncoverable
      | Cover.Uncoverable, Cover.Cover _ -> false)

(* heuristics must be sound: any Cover is a genuine in-budget cover,
   and they never "repair" a memory BnB proves unrepairable *)
let prop_heuristics_sound =
  QCheck.Test.make ~name:"Greedy/Essential sound vs BnB" ~count:500
    arb_problem (fun p ->
      let bnb = Cover.Exhaustive.solve p in
      List.for_all
        (fun (module A : Cover.Allocator) ->
          match A.solve p with
          | Cover.Uncoverable -> true
          | Cover.Cover s -> Cover.covers p s && bnb <> Cover.Uncoverable)
        [ (module Cover.Greedy); (module Cover.Essential) ])

(* determinism: solving twice is physically equal output *)
let prop_deterministic =
  QCheck.Test.make ~name:"allocators deterministic" ~count:200 arb_problem
    (fun p ->
      List.for_all
        (fun (module A : Cover.Allocator) -> A.solve p = A.solve p)
        [ (module Cover.Greedy); (module Cover.Essential)
        ; (module Cover.Exhaustive)
        ])

(* ------------------------------------------------------------------ *)
(* fault map *)

let org_2d = Org.make ~spares:4 ~spare_cols:2 ~words:64 ~bpw:8 ~bpc:4 ()

let test_fault_map_bound () =
  let fm = Fault_map.create org_2d in
  (* bound = spares*cols + spare_cols*rows = 4*32 + 2*16 = 160 *)
  let rows = Org.rows org_2d and cols = Org.cols org_2d in
  (try
     for r = 0 to rows - 1 do
       for c = 0 to cols - 1 do
         Fault_map.add_cell fm ~row:r ~col:c
       done
     done
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "overflowed" true (Fault_map.overflowed fm)

let test_fault_map_extraction_agrees () =
  (* march a model with injected faults and hold the packed-XOR cell
     extraction against the per-bit reference on every failure *)
  let model = Model.create org_2d in
  Model.set_faults model
    [ F.Stuck_at ({ F.row = 3; col = 5 }, false)
    ; F.Stuck_at ({ F.row = 9; col = 17 }, true)
    ; F.Transition ({ F.row = 12; col = 2 }, false)
    ];
  let backgrounds = Datagen.required_backgrounds ~bpw:8 in
  let failures = Engine.run model Alg.ifa_9 ~backgrounds in
  Alcotest.(check bool) "failures found" true (failures <> []);
  List.iter
    (fun f ->
      let fastc = Fault_map.failure_cells ~fast:true org_2d f in
      let slowc = Fault_map.failure_cells ~fast:false org_2d f in
      Alcotest.(check (list (pair int int))) "fast = scalar" slowc fastc)
    failures

(* ------------------------------------------------------------------ *)
(* 2D remap *)

let test_remap_assign () =
  Alcotest.(check (option (list (pair int int))))
    "skips burned spares"
    (Some [ (2, 1); (7, 3) ])
    (Remap2d.assign ~spares:4 ~burned:[| true; false; true; false |] [ 2; 7 ]);
  Alcotest.(check (option (list (pair int int))))
    "exhausted -> None" None
    (Remap2d.assign ~spares:1 ~burned:[| true |] [ 0 ])

let test_remap_paths () =
  let rr = Remap2d.row_remap org_2d [ (3, 0); (9, 2) ] in
  Alcotest.(check int) "row 3 -> spare 0" (Org.rows org_2d) (rr 3);
  Alcotest.(check int) "row 9 -> spare 2" (Org.rows org_2d + 2) (rr 9);
  Alcotest.(check int) "row 4 identity" 4 (rr 4);
  let cr = Remap2d.col_remap org_2d [ (5, 1) ] in
  Alcotest.(check int) "col 5 -> spare 1" (Org.cols org_2d + 1) (cr 5);
  Alcotest.(check int) "col 6 identity" 6 (cr 6)

let test_model_col_steering () =
  (* writes land in the steered spare column: a fault in the regular
     column becomes invisible once steering is armed *)
  let model = Model.create org_2d in
  Model.set_faults model [ F.Stuck_at ({ F.row = 2; col = 7 }, false) ];
  let cr = Remap2d.col_remap org_2d [ (7, 0) ] in
  Model.set_col_remap model (Some cr);
  let backgrounds = Datagen.required_backgrounds ~bpw:8 in
  let failures = Engine.run model Alg.ifa_9 ~backgrounds in
  Alcotest.(check int) "steered around the fault" 0 (List.length failures)

(* ------------------------------------------------------------------ *)
(* BIRA flow *)

let run_bira ?(faults = []) strategy =
  let model = Model.create org_2d in
  Model.set_faults model faults;
  let backgrounds = Datagen.required_backgrounds ~bpw:8 in
  Bira.run ~fast:true strategy model Alg.ifa_9 ~backgrounds

let test_bira_clean () =
  let r = run_bira Bira.Exhaustive in
  Alcotest.(check bool) "passed clean"
    true
    (r.Bira.b_outcome = Bisram_bisr.Repair.Passed_clean);
  Alcotest.(check bool) "no alloc" true (r.Bira.b_alloc = None);
  Alcotest.(check int) "one round" 1 r.Bira.b_rounds

let test_bira_col_repair () =
  (* more faulty rows than row spares, all in one column: only a
     column repair can succeed *)
  let faults =
    List.map (fun row -> F.Stuck_at ({ F.row; col = 11 }, false)) [ 0; 2; 4; 6; 8 ]
  in
  let r = run_bira ~faults Bira.Exhaustive in
  (match r.Bira.b_outcome with
  | Bisram_bisr.Repair.Repaired _ -> ()
  | o ->
      Alcotest.failf "expected repair, got %a" Bisram_bisr.Repair.pp_outcome o);
  match r.Bira.b_alloc with
  | Some a -> Alcotest.(check (list int)) "column 11" [ 11 ] a.Bira.a_cols
  | None -> Alcotest.fail "no allocation reported"

let test_bira_strategies_agree_on_verdict () =
  let faults =
    [ F.Stuck_at ({ F.row = 1; col = 3 }, true)
    ; F.Stuck_at ({ F.row = 1; col = 9 }, false)
    ; F.Stuck_at ({ F.row = 14; col = 22 }, true)
    ]
  in
  let ok s =
    match (run_bira ~faults s).Bira.b_outcome with
    | Bisram_bisr.Repair.Passed_clean | Bisram_bisr.Repair.Repaired _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "greedy repairs" true (ok Bira.Greedy);
  Alcotest.(check bool) "essential repairs" true (ok Bira.Essential);
  Alcotest.(check bool) "bnb repairs" true (ok Bira.Exhaustive)

(* ------------------------------------------------------------------ *)
(* 2D yield model *)

let test_yield2_guards () =
  let g2 = Repairable.make2 ~rows:16 ~cols:32 ~spare_rows:4 ~spare_cols:2 in
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name
        (Invalid_argument
           (match name with
           | "nan mean" ->
               "Repairable.yield2: mean_defects must be finite and >= 0 (got nan)"
           | "negative mean" ->
               "Repairable.yield2: mean_defects must be finite and >= 0 (got -1)"
           | _ -> "Repairable.yield2: alpha must be finite and > 0 (got 0)"))
        (fun () -> ignore (f ())))
    [ ("nan mean", fun () -> Repairable.yield2 g2 ~mean_defects:Float.nan ~alpha:2.0)
    ; ("negative mean", fun () -> Repairable.yield2 g2 ~mean_defects:(-1.0) ~alpha:2.0)
    ; ("bad alpha", fun () -> Repairable.yield2 g2 ~mean_defects:1.0 ~alpha:0.0)
    ];
  Alcotest.check_raises "degenerate geometry"
    (Invalid_argument "Repairable.make2: rows")
    (fun () -> ignore (Repairable.make2 ~rows:0 ~cols:4 ~spare_rows:1 ~spare_cols:1))

let test_yield2_sanity () =
  let g2 = Repairable.make2 ~rows:16 ~cols:32 ~spare_rows:4 ~spare_cols:2 in
  let y1 = Repairable.yield2 g2 ~mean_defects:1.0 ~alpha:2.0 in
  let y5 = Repairable.yield2 g2 ~mean_defects:5.0 ~alpha:2.0 in
  Alcotest.(check bool) "in (0,1]" true (y1 > 0.0 && y1 <= 1.0);
  Alcotest.(check bool) "monotone in defects" true (y5 <= y1);
  (* no faults is always repairable *)
  Alcotest.(check (float 1e-9)) "p(0) = 1" 1.0 (Repairable.p_repairable2 g2 0);
  (* deterministic: same samples/seed, same value *)
  Alcotest.(check (float 0.0)) "deterministic" y1
    (Repairable.yield2 g2 ~mean_defects:1.0 ~alpha:2.0)

(* ------------------------------------------------------------------ *)
(* campaign guarantees *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* `--repair row-tlb` reproduces the pre-PR report bytes (the golden
   file is the CLI output of `campaign --trials 60 --seed 7 --jobs 1`
   captured before the BIRA subsystem landed) *)
let test_golden_row_tlb () =
  let cfg = C.make_config ~trials:60 ~seed:7 () in
  let r = C.run ~jobs:1 cfg in
  Alcotest.(check string)
    "row-tlb report is byte-identical to the golden capture"
    (read_file "golden_row_tlb.json")
    (C.pretty_json_string r)

(* byte-identity at jobs x lanes for every allocator *)
let test_jobs_lanes_identical () =
  List.iter
    (fun repair ->
      let cfg =
        C.make_config ~org:org_2d ~repair
          ~mode:(C.Poisson 3.0) ~trials:24 ~seed:11 ()
      in
      let base = C.json_string (C.run ~jobs:1 ~lanes:1 cfg) in
      List.iter
        (fun (jobs, lanes) ->
          Alcotest.(check string)
            (Printf.sprintf "%s jobs=%d lanes=%d" (C.repair_name repair) jobs
               lanes)
            base
            (C.json_string (C.run ~jobs ~lanes cfg)))
        [ (1, 62); (4, 1); (4, 62) ])
    [ C.Bira Bira.Greedy; C.Bira Bira.Essential; C.Bira Bira.Exhaustive ]

(* the BIRA differential oracle (packed vs per-bit extraction, plus
   allocation equality) reports no divergence *)
let test_bira_no_divergence () =
  List.iter
    (fun repair ->
      let cfg =
        C.make_config ~org:org_2d ~repair
          ~mode:(C.Poisson 3.0) ~trials:40 ~seed:5 ()
      in
      let r = C.run ~jobs:2 cfg in
      Alcotest.(check int)
        (C.repair_name repair ^ " divergences")
        0
        (List.length r.C.divergences))
    [ C.Bira Bira.Greedy; C.Bira Bira.Exhaustive ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "bira"
    [ ( "cover"
      , [ Alcotest.test_case "empty problem" `Quick test_cover_empty
        ; Alcotest.test_case "must-repair fixpoint" `Quick
            test_cover_must_repair
        ; Alcotest.test_case "uncoverable diagonal" `Quick
            test_cover_uncoverable
        ; Alcotest.test_case "column-only repair" `Quick test_bnb_col_only
        ; QCheck_alcotest.to_alcotest prop_bnb_optimal
        ; QCheck_alcotest.to_alcotest prop_heuristics_sound
        ; QCheck_alcotest.to_alcotest prop_deterministic
        ] )
    ; ( "fault-map"
      , [ Alcotest.test_case "bound overflow" `Quick test_fault_map_bound
        ; Alcotest.test_case "fast = scalar extraction" `Quick
            test_fault_map_extraction_agrees
        ] )
    ; ( "remap2d"
      , [ Alcotest.test_case "spare assignment" `Quick test_remap_assign
        ; Alcotest.test_case "row/col remap paths" `Quick test_remap_paths
        ; Alcotest.test_case "model column steering" `Quick
            test_model_col_steering
        ] )
    ; ( "flow"
      , [ Alcotest.test_case "clean pass" `Quick test_bira_clean
        ; Alcotest.test_case "column repair" `Quick test_bira_col_repair
        ; Alcotest.test_case "strategies agree" `Quick
            test_bira_strategies_agree_on_verdict
        ] )
    ; ( "yield2"
      , [ Alcotest.test_case "degenerate inputs raise" `Quick
            test_yield2_guards
        ; Alcotest.test_case "sanity" `Quick test_yield2_sanity
        ] )
    ; ( "campaign"
      , [ Alcotest.test_case "golden row-tlb bytes" `Slow test_golden_row_tlb
        ; Alcotest.test_case "jobs x lanes byte-identity" `Slow
            test_jobs_lanes_identical
        ; Alcotest.test_case "no divergences" `Slow test_bira_no_divergence
        ] )
    ]
