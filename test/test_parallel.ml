(* Tests for the domain-pool scheduler and the monotonic clock. *)

module Pool = Bisram_parallel.Pool
module Clock = Bisram_parallel.Clock

let completed r = Array.to_list r |> List.filter_map Fun.id

(* ------------------------------------------------------------------ *)
(* pool *)

let test_empty_input () =
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        "no slots" 0
        (Array.length (Pool.map ~jobs 0 (fun i -> i))))
    [ 1; 4 ]

let test_one_item () =
  Alcotest.(check (list int))
    "single result" [ 10 ]
    (completed (Pool.map ~jobs:4 1 (fun i -> (i + 1) * 10)))

let test_more_chunks_than_workers () =
  (* 57 items in chunks of 4 = 15 chunks over 3 workers *)
  let n = 57 in
  let r = Pool.map ~jobs:3 ~chunk:4 n (fun i -> i * i) in
  Alcotest.(check int) "every slot filled" n (List.length (completed r));
  Array.iteri
    (fun i v -> Alcotest.(check (option int)) "in index order" (Some (i * i)) v)
    r

let test_sequential_runs_in_order () =
  let order = ref [] in
  let r =
    Pool.map 5 (fun i ->
        order := i :: !order;
        i)
  in
  Alcotest.(check (list int))
    "caller domain, index order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order);
  Alcotest.(check (list int)) "results positional" [ 0; 1; 2; 3; 4 ]
    (completed r)

let test_parallel_matches_sequential () =
  let f i = (i * 37) mod 11 in
  let seq = Pool.map 100 f in
  let par = Pool.map ~jobs:4 ~chunk:7 100 f in
  Alcotest.(check (list int)) "same results any job count" (completed seq)
    (completed par)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match Pool.map ~jobs ~chunk:2 20 (fun i -> if i = 13 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected the worker exception to re-raise"
      | exception Boom 13 -> ())
    [ 1; 4 ]

let test_should_stop_prefix () =
  (* one worker, chunk 1: the poll sequence is deterministic, so
     stopping after the 7th poll completes exactly the 7-trial prefix *)
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 7
  in
  let r = Pool.map ~jobs:1 ~should_stop:stop 50 (fun i -> i) in
  Alcotest.(check (list int)) "exact prefix" [ 0; 1; 2; 3; 4; 5; 6 ]
    (completed r)

let test_should_stop_parallel_halts () =
  let stop () = true in
  let r = Pool.map ~jobs:4 50 ~should_stop:stop (fun i -> i) in
  Alcotest.(check (list int)) "nothing ran" [] (completed r)

let test_validation () =
  let bad f =
    Alcotest.(check bool) "rejected" true
      (match f () with
      | _ -> false
      | exception Invalid_argument _ -> true)
  in
  bad (fun () -> Pool.map ~jobs:0 3 (fun i -> i));
  bad (fun () -> Pool.map ~chunk:0 3 (fun i -> i));
  bad (fun () -> Pool.map (-1) (fun i -> i))

let prop_pool_positional =
  QCheck.Test.make ~name:"pool results are positional at any jobs/chunk"
    ~count:60
    QCheck.(triple (int_range 0 64) (int_range 1 6) (int_range 1 9))
    (fun (n, jobs, chunk) ->
      let r = Pool.map ~jobs ~chunk n (fun i -> i * 3) in
      Array.length r = n
      && Array.for_all Option.is_some r
      && List.for_all (fun i -> r.(i) = Some (i * 3)) (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* clock *)

let test_clock_monotonic () =
  let a = Clock.now () in
  let b = Clock.now () in
  let c = Clock.now () in
  Alcotest.(check bool) "non-decreasing" true (a <= b && b <= c)

let test_clock_ns_scale () =
  let a = Clock.now_ns () in
  let fa = Clock.now () in
  (* the float view is the ns counter in seconds *)
  Alcotest.(check bool) "same origin and scale" true
    (fa >= Int64.to_float a /. 1e9)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [ ( "pool"
      , [ Alcotest.test_case "empty input" `Quick test_empty_input
        ; Alcotest.test_case "one item" `Quick test_one_item
        ; Alcotest.test_case "more chunks than workers" `Quick
            test_more_chunks_than_workers
        ; Alcotest.test_case "sequential order" `Quick
            test_sequential_runs_in_order
        ; Alcotest.test_case "parallel matches sequential" `Quick
            test_parallel_matches_sequential
        ; Alcotest.test_case "worker exception propagates" `Quick
            test_exception_propagates
        ; Alcotest.test_case "should_stop prefix (sequential)" `Quick
            test_should_stop_prefix
        ; Alcotest.test_case "should_stop halts workers" `Quick
            test_should_stop_parallel_halts
        ; Alcotest.test_case "argument validation" `Quick test_validation
        ; QCheck_alcotest.to_alcotest prop_pool_positional
        ] )
    ; ( "clock"
      , [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic
        ; Alcotest.test_case "ns scale" `Quick test_clock_ns_scale
        ] )
    ]
