(* Tests for the domain-pool scheduler and the monotonic clock. *)

module Pool = Bisram_parallel.Pool
module Clock = Bisram_parallel.Clock

let completed r = Array.to_list r |> List.filter_map Fun.id

(* ------------------------------------------------------------------ *)
(* pool *)

let test_empty_input () =
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        "no slots" 0
        (Array.length (Pool.map ~jobs 0 (fun i -> i))))
    [ 1; 4 ]

let test_one_item () =
  Alcotest.(check (list int))
    "single result" [ 10 ]
    (completed (Pool.map ~jobs:4 1 (fun i -> (i + 1) * 10)))

let test_more_chunks_than_workers () =
  (* 57 items in chunks of 4 = 15 chunks over 3 workers *)
  let n = 57 in
  let r = Pool.map ~jobs:3 ~chunk:4 n (fun i -> i * i) in
  Alcotest.(check int) "every slot filled" n (List.length (completed r));
  Array.iteri
    (fun i v -> Alcotest.(check (option int)) "in index order" (Some (i * i)) v)
    r

let test_sequential_runs_in_order () =
  let order = ref [] in
  let r =
    Pool.map 5 (fun i ->
        order := i :: !order;
        i)
  in
  Alcotest.(check (list int))
    "caller domain, index order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order);
  Alcotest.(check (list int)) "results positional" [ 0; 1; 2; 3; 4 ]
    (completed r)

let test_parallel_matches_sequential () =
  let f i = (i * 37) mod 11 in
  let seq = Pool.map 100 f in
  let par = Pool.map ~jobs:4 ~chunk:7 100 f in
  Alcotest.(check (list int)) "same results any job count" (completed seq)
    (completed par)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match Pool.map ~jobs ~chunk:2 20 (fun i -> if i = 13 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected the worker exception to re-raise"
      | exception Boom 13 -> ())
    [ 1; 4 ]

let test_should_stop_prefix () =
  (* one worker, chunk 1: the poll sequence is deterministic, so
     stopping after the 7th poll completes exactly the 7-trial prefix *)
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 7
  in
  let r = Pool.map ~jobs:1 ~should_stop:stop 50 (fun i -> i) in
  Alcotest.(check (list int)) "exact prefix" [ 0; 1; 2; 3; 4; 5; 6 ]
    (completed r)

let test_should_stop_parallel_halts () =
  let stop () = true in
  let r = Pool.map ~jobs:4 50 ~should_stop:stop (fun i -> i) in
  Alcotest.(check (list int)) "nothing ran" [] (completed r)

let test_validation () =
  let bad f =
    Alcotest.(check bool) "rejected" true
      (match f () with
      | _ -> false
      | exception Invalid_argument _ -> true)
  in
  bad (fun () -> Pool.map ~jobs:0 3 (fun i -> i));
  bad (fun () -> Pool.map ~chunk:0 3 (fun i -> i));
  bad (fun () -> Pool.map (-1) (fun i -> i))

let prop_pool_positional =
  QCheck.Test.make ~name:"pool results are positional at any jobs/chunk"
    ~count:60
    QCheck.(triple (int_range 0 64) (int_range 1 6) (int_range 1 9))
    (fun (n, jobs, chunk) ->
      let r = Pool.map ~jobs ~chunk n (fun i -> i * 3) in
      Array.length r = n
      && Array.for_all Option.is_some r
      && List.for_all (fun i -> r.(i) = Some (i * 3)) (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* supervised pool *)

let test_supervised_captures_failure () =
  List.iter
    (fun jobs ->
      let r =
        Pool.map_result ~jobs ~chunk:2 20 (fun i ->
            if i = 13 then raise (Boom i) else i)
      in
      (* no deadlock, every other chunk completed *)
      Alcotest.(check int) "every slot filled" 20
        (Array.length (Array.to_list r |> List.filter Option.is_some |> Array.of_list));
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> Alcotest.fail "unexpected empty slot"
          | Some jr -> (
              match (i, jr.Pool.outcome) with
              | 13, Error f ->
                  Alcotest.(check bool) "original exception" true
                    (f.Pool.f_exn = Boom 13);
                  Alcotest.(check bool) "not transient" false f.Pool.f_transient;
                  Alcotest.(check int) "single attempt" 1 jr.Pool.attempts
              | 13, Ok _ -> Alcotest.fail "index 13 should have failed"
              | _, Ok v -> Alcotest.(check int) "value" i v
              | _, Error _ -> Alcotest.fail "only index 13 should fail"))
        r)
    [ 1; 4 ]

let test_transient_retried () =
  (* fails on attempts 1 and 2, succeeds on 3: absorbed by the default
     retries = 2 *)
  let r =
    Pool.map_result ~jobs:2 6 (fun i ->
        if i = 4 && Pool.current_attempt () < 3 then
          raise (Pool.Transient (Boom i))
        else (i, Pool.current_attempt ()))
  in
  match r.(4) with
  | Some { Pool.outcome = Ok (4, 3); attempts = 3 } -> ()
  | _ -> Alcotest.fail "expected success on the third attempt"

let test_on_retry_seam () =
  (* on_retry fires once per re-attempt, before the backoff, with the
     attempt number that just raised — and not at all for items that
     never raise *)
  let mu = Mutex.create () in
  let seen = ref [] in
  let on_retry i ~attempt e =
    Mutex.lock mu;
    seen := (i, attempt, e) :: !seen;
    Mutex.unlock mu
  in
  let r =
    Pool.map_result ~jobs:2 ~retries:2 ~on_retry 6 (fun i ->
        if i = 4 && Pool.current_attempt () < 3 then
          raise (Pool.Transient (Boom i))
        else i)
  in
  (match r.(4) with
  | Some { Pool.outcome = Ok 4; attempts = 3 } -> ()
  | _ -> Alcotest.fail "expected success on the third attempt");
  let calls = List.sort compare !seen in
  Alcotest.(check (list (pair int int)))
    "one call per re-attempt, attempt = the one that raised"
    [ (4, 1); (4, 2) ]
    (List.map (fun (i, a, _) -> (i, a)) calls);
  List.iter
    (fun (_, _, e) ->
      Alcotest.(check bool) "original exception, wrapper stripped" true
        (e = Boom 4))
    calls

let test_transient_exhausted () =
  let r =
    Pool.map_result ~jobs:1 ~retries:1 3 (fun i ->
        if i = 1 then raise (Pool.Transient (Boom i)) else i)
  in
  match r.(1) with
  | Some { Pool.outcome = Error f; attempts = 2 } ->
      Alcotest.(check bool) "transient flag set" true f.Pool.f_transient;
      Alcotest.(check bool) "wrapper stripped" true (f.Pool.f_exn = Boom 1)
  | _ -> Alcotest.fail "expected exhausted retries as a transient failure"

let test_nontransient_not_retried () =
  let calls = Atomic.make 0 in
  let r =
    Pool.map_result ~jobs:1 ~retries:5 1 (fun i ->
        Atomic.incr calls;
        raise (Boom i))
  in
  Alcotest.(check int) "no retry of a plain raise" 1 (Atomic.get calls);
  match r.(0) with
  | Some { Pool.outcome = Error _; attempts = 1 } -> ()
  | _ -> Alcotest.fail "expected one failed attempt"

let test_deadline_cooperative () =
  (* a 1 ns deadline with a polling item: the poll raises, the pool
     records Deadline_exceeded, other items complete *)
  let r =
    Pool.map_result ~jobs:2 ~deadline_ns:1L 4 (fun i ->
        if i = 2 then begin
          (* the deadline has passed by the first poll *)
          while true do
            Pool.check_deadline ()
          done;
          assert false
        end
        else i)
  in
  (match r.(2) with
  | Some { Pool.outcome = Error f; _ } ->
      Alcotest.(check bool) "deadline exception" true
        (f.Pool.f_exn = Pool.Deadline_exceeded)
  | _ -> Alcotest.fail "expected a deadline failure");
  List.iter
    (fun i ->
      match r.(i) with
      | Some { Pool.outcome = Ok v; _ } -> Alcotest.(check int) "value" i v
      | _ -> Alcotest.fail "other items must complete")
    [ 0; 1; 3 ]

let test_check_deadline_noop_without_deadline () =
  (* outside map_result (and inside it without ~deadline_ns) the poll
     never raises *)
  Pool.check_deadline ();
  let r = Pool.map_result ~jobs:1 2 (fun i -> Pool.check_deadline (); i) in
  Alcotest.(check bool) "completed" true
    (Array.for_all Option.is_some r)

let test_on_result_sees_every_completion () =
  let seen = Atomic.make [] in
  let rec push x =
    let old = Atomic.get seen in
    if not (Atomic.compare_and_set seen old (x :: old)) then push x
  in
  let n = 30 in
  let r =
    Pool.map_result ~jobs:3
      ~on_result:(fun i jr ->
        push (i, match jr.Pool.outcome with Ok v -> v | Error _ -> -1))
      n
      (fun i -> if i = 7 then raise (Boom i) else i * 2)
  in
  Alcotest.(check int) "slots" n (Array.length r);
  let got = List.sort compare (Atomic.get seen) in
  let want =
    List.init n (fun i -> (i, if i = 7 then -1 else i * 2))
  in
  Alcotest.(check bool) "hook saw every item with its result" true
    (got = want)

let prop_supervised_deterministic =
  QCheck.Test.make
    ~name:"supervised results identical at any jobs/chunk, failures isolated"
    ~count:40
    QCheck.(triple (int_range 1 40) (int_range 1 5) (int_range 1 7))
    (fun (n, jobs, chunk) ->
      let f i = if i mod 5 = 3 then raise (Boom i) else i * 7 in
      let project r =
        Array.map
          (function
            | Some { Pool.outcome = Ok v; _ } -> `Ok v
            | Some { Pool.outcome = Error fl; _ } -> `Err fl.Pool.f_exn
            | None -> `Empty)
          r
      in
      let seq = project (Pool.map_result ~jobs:1 n f) in
      let par = project (Pool.map_result ~jobs ~chunk n f) in
      seq = par
      && Array.to_list seq
         |> List.mapi (fun i s -> (i, s))
         |> List.for_all (fun (i, s) ->
                if i mod 5 = 3 then s = `Err (Boom i) else s = `Ok (i * 7)))

(* ------------------------------------------------------------------ *)
(* clock *)

let test_clock_monotonic () =
  let a = Clock.now () in
  let b = Clock.now () in
  let c = Clock.now () in
  Alcotest.(check bool) "non-decreasing" true (a <= b && b <= c)

let test_clock_ns_scale () =
  let a = Clock.now_ns () in
  let fa = Clock.now () in
  (* the float view is the ns counter in seconds *)
  Alcotest.(check bool) "same origin and scale" true
    (fa >= Int64.to_float a /. 1e9)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [ ( "pool"
      , [ Alcotest.test_case "empty input" `Quick test_empty_input
        ; Alcotest.test_case "one item" `Quick test_one_item
        ; Alcotest.test_case "more chunks than workers" `Quick
            test_more_chunks_than_workers
        ; Alcotest.test_case "sequential order" `Quick
            test_sequential_runs_in_order
        ; Alcotest.test_case "parallel matches sequential" `Quick
            test_parallel_matches_sequential
        ; Alcotest.test_case "worker exception propagates" `Quick
            test_exception_propagates
        ; Alcotest.test_case "should_stop prefix (sequential)" `Quick
            test_should_stop_prefix
        ; Alcotest.test_case "should_stop halts workers" `Quick
            test_should_stop_parallel_halts
        ; Alcotest.test_case "argument validation" `Quick test_validation
        ; QCheck_alcotest.to_alcotest prop_pool_positional
        ] )
    ; ( "supervised"
      , [ Alcotest.test_case "failure captured, no deadlock" `Quick
            test_supervised_captures_failure
        ; Alcotest.test_case "transient retried" `Quick test_transient_retried
        ; Alcotest.test_case "on_retry seam" `Quick test_on_retry_seam
        ; Alcotest.test_case "transient exhausted" `Quick
            test_transient_exhausted
        ; Alcotest.test_case "non-transient not retried" `Quick
            test_nontransient_not_retried
        ; Alcotest.test_case "cooperative deadline" `Quick
            test_deadline_cooperative
        ; Alcotest.test_case "check_deadline no-op without deadline" `Quick
            test_check_deadline_noop_without_deadline
        ; Alcotest.test_case "on_result sees every completion" `Quick
            test_on_result_sees_every_completion
        ; QCheck_alcotest.to_alcotest prop_supervised_deterministic
        ] )
    ; ( "clock"
      , [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic
        ; Alcotest.test_case "ns scale" `Quick test_clock_ns_scale
        ] )
    ]
