(* Tests for the BIST library: march DSL, generators, PLA, engine,
   microprogrammed controller and coverage. *)

module March = Bisram_bist.March
module Alg = Bisram_bist.Algorithms
module Addgen = Bisram_bist.Addgen
module Datagen = Bisram_bist.Datagen
module Trpla = Bisram_bist.Trpla
module Engine = Bisram_bist.Engine
module Controller = Bisram_bist.Controller
module Coverage = Bisram_bist.Coverage
module Org = Bisram_sram.Org
module Word = Bisram_sram.Word
module Model = Bisram_sram.Model
module F = Bisram_faults.Fault

let word = Alcotest.testable Word.pp Word.equal
let cell r c = { F.row = r; F.col = c }
let small () = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 ()
let bgs8 = Datagen.required_backgrounds ~bpw:8

(* ------------------------------------------------------------------ *)
(* March DSL *)

let test_march_roundtrip () =
  List.iter
    (fun m ->
      let s = March.to_string m in
      let m' = March.of_string ~name:m.March.name s in
      Alcotest.(check bool) (m.March.name ^ " roundtrips") true (March.equal m m'))
    Alg.all

let test_march_complexity () =
  (* IFA-9 is a 12N test with 6 reads per address and retention waits *)
  Alcotest.(check int) "IFA-9 12N" 12 (March.ops_per_address Alg.ifa_9);
  Alcotest.(check int) "IFA-9 reads" 6 (March.reads_per_address Alg.ifa_9);
  Alcotest.(check bool) "IFA-9 retention" true (March.has_retention Alg.ifa_9);
  Alcotest.(check int) "IFA-13 16N" 16 (March.ops_per_address Alg.ifa_13);
  Alcotest.(check int) "MATS+ 5N" 5 (March.ops_per_address Alg.mats_plus);
  Alcotest.(check bool) "MATS+ no retention" false
    (March.has_retention Alg.mats_plus)

let test_extended_library () =
  Alcotest.(check int) "10 algorithms" 10 (List.length Alg.all);
  Alcotest.(check int) "March A 15N" 15 (March.ops_per_address Alg.march_a);
  Alcotest.(check int) "March Y 8N" 8 (March.ops_per_address Alg.march_y);
  Alcotest.(check int) "March LR 14N" 14 (March.ops_per_address Alg.march_lr);
  Alcotest.(check int) "PMOVI 13N" 13 (March.ops_per_address Alg.pmovi);
  (* PMOVI's read-after-write catches mid-array stuck-opens like IFA-13 *)
  let m = Model.create (small ()) in
  Model.set_faults m [ F.Stuck_open (cell 11 0) ];
  Alcotest.(check bool) "PMOVI catches SOF" false
    (Engine.passes m Alg.pmovi ~backgrounds:bgs8);
  (* March Y misses retention (no waits) *)
  let m2 = Model.create (small ()) in
  Model.set_faults m2 [ F.Data_retention (cell 5 0, false) ];
  Alcotest.(check bool) "March Y misses DRF" true
    (Engine.passes m2 Alg.march_y ~backgrounds:bgs8)

let test_march_parse_errors () =
  let bad s =
    match March.of_string ~name:"x" s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "u()";
  bad "z(w0)";
  bad "u(w2)";
  Alcotest.(check bool) "good parse ok" true
    (March.of_string ~name:"ok" "u(w0); D; d(r0)" |> March.has_retention)

(* ------------------------------------------------------------------ *)
(* ADDGEN *)

let test_addgen_up_sequence () =
  let g = Addgen.create ~limit:4 in
  Addgen.reset g ~dir:March.Up;
  let seq = ref [] in
  let wrapped = ref false in
  for _ = 1 to 4 do
    seq := Addgen.value g :: !seq;
    wrapped := Addgen.step g ~dir:March.Up
  done;
  Alcotest.(check (list int)) "0..3" [ 0; 1; 2; 3 ] (List.rev !seq);
  Alcotest.(check bool) "wraps at end" true !wrapped;
  Alcotest.(check int) "back to 0" 0 (Addgen.value g)

let test_addgen_down_sequence () =
  let g = Addgen.create ~limit:4 in
  Addgen.reset g ~dir:March.Down;
  let seq = ref [] in
  for _ = 1 to 4 do
    seq := Addgen.value g :: !seq;
    ignore (Addgen.step g ~dir:March.Down)
  done;
  Alcotest.(check (list int)) "3..0" [ 3; 2; 1; 0 ] (List.rev !seq)

let test_addgen_width () =
  Alcotest.(check int) "1024 -> 10 bits" 10
    (Addgen.width (Addgen.create ~limit:1024));
  Alcotest.(check int) "1000 -> 10 bits" 10
    (Addgen.width (Addgen.create ~limit:1000));
  Alcotest.(check int) "1 -> 0 bits" 0 (Addgen.width (Addgen.create ~limit:1))

(* ------------------------------------------------------------------ *)
(* DATAGEN *)

let test_johnson_cycle () =
  let g = Datagen.create ~bpw:4 in
  let states = ref [] in
  for _ = 0 to 7 do
    states := Word.to_string (Datagen.state g) :: !states;
    Datagen.step g
  done;
  Alcotest.(check (list string))
    "full johnson cycle"
    [ "0000"; "1000"; "1100"; "1110"; "1111"; "0111"; "0011"; "0001" ]
    (List.rev !states);
  Alcotest.check word "period 2*bpw" (Word.zero 4) (Datagen.state g)

let test_required_backgrounds () =
  let bgs = Datagen.required_backgrounds ~bpw:4 in
  Alcotest.(check int) "bpw/2+1 backgrounds" 3 (List.length bgs);
  Alcotest.(check (list string))
    "subset incl all-0 and all-1"
    [ "0000"; "1100"; "1111" ]
    (List.map Word.to_string bgs)

let test_half_cycle_pairwise_coverage () =
  (* The half-cycle set gives every pair of bit positions both equal and
     different values in some background — needed for intra-word
     coupling coverage. *)
  let bpw = 8 in
  let bgs = Datagen.half_cycle_backgrounds ~bpw in
  for i = 0 to bpw - 1 do
    for j = 0 to bpw - 1 do
      if i <> j then begin
        let differs = List.exists (fun b -> Word.get b i <> Word.get b j) bgs in
        let equals = List.exists (fun b -> Word.get b i = Word.get b j) bgs in
        Alcotest.(check bool)
          (Printf.sprintf "pair %d,%d differs" i j)
          true differs;
        Alcotest.(check bool) (Printf.sprintf "pair %d,%d equals" i j) true equals
      end
    done
  done

let test_datagen_width_guard () =
  (* the counter packs its state into one native int, like Word *)
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check int) "max_width accepted" Word.max_width
    (Datagen.bpw (Datagen.create ~bpw:Word.max_width));
  Alcotest.(check bool) "64 rejected" true
    (raises (fun () -> Datagen.create ~bpw:64));
  Alcotest.(check bool) "0 rejected" true
    (raises (fun () -> Datagen.create ~bpw:0))

let prop_johnson_period =
  QCheck.Test.make ~name:"johnson counter period = 2*bpw" ~count:20
    QCheck.(int_range 1 32)
    (fun bpw ->
      let g = Datagen.create ~bpw in
      let start = Datagen.state g in
      let rec go k =
        Datagen.step g;
        if Word.equal (Datagen.state g) start then k
        else if k > (2 * bpw) + 1 then -1
        else go (k + 1)
      in
      go 1 = 2 * bpw)

(* ------------------------------------------------------------------ *)
(* TRPLA *)

let test_pla_eval () =
  (* f0 = a & ~b ; f1 = b *)
  let pla = Trpla.create ~n_inputs:2 ~n_outputs:2 in
  Trpla.add_term pla ~ands:[| Trpla.T; Trpla.F |] ~ors:[| true; false |];
  Trpla.add_term pla ~ands:[| Trpla.X; Trpla.T |] ~ors:[| false; true |];
  let check ins outs =
    Alcotest.(check (array bool)) "eval" outs (Trpla.eval pla ins)
  in
  check [| true; false |] [| true; false |];
  check [| true; true |] [| false; true |];
  check [| false; false |] [| false; false |]

let test_pla_image_roundtrip () =
  let pla = Trpla.create ~n_inputs:3 ~n_outputs:2 in
  Trpla.add_term pla ~ands:[| Trpla.T; Trpla.X; Trpla.F |] ~ors:[| true; true |];
  Trpla.add_term pla ~ands:[| Trpla.F; Trpla.T; Trpla.X |] ~ors:[| false; true |];
  let and_plane = Trpla.and_plane_image pla in
  let or_plane = Trpla.or_plane_image pla in
  Alcotest.(check (list string)) "and image" [ "1-0"; "01-" ] and_plane;
  Alcotest.(check (list string)) "or image" [ "11"; ".1" ] or_plane;
  let pla' = Trpla.of_images ~and_plane ~or_plane in
  for v = 0 to 7 do
    let ins = Array.init 3 (fun i -> v land (1 lsl i) <> 0) in
    Alcotest.(check (array bool))
      "same function" (Trpla.eval pla ins) (Trpla.eval pla' ins)
  done

let test_pla_costs () =
  let pla = Trpla.create ~n_inputs:2 ~n_outputs:1 in
  Trpla.add_term pla ~ands:[| Trpla.T; Trpla.T |] ~ors:[| true |];
  (* 2 AND literals + 1 OR + 1 term pull-up + 1 output pull-up + 4 input
     buffer devices = 9 *)
  Alcotest.(check int) "transistors" 9 (Trpla.transistor_count pla);
  Alcotest.(check bool) "area positive" true
    (Trpla.area_lambda2 Bisram_tech.Rules.scmos pla > 0)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_clean_ram_passes () =
  let m = Model.create (small ()) in
  List.iter
    (fun alg ->
      Alcotest.(check bool)
        (alg.March.name ^ " passes on clean RAM")
        true
        (Engine.passes m alg ~backgrounds:bgs8))
    Alg.all

let test_engine_detects_saf () =
  let m = Model.create (small ()) in
  Model.set_faults m [ F.Stuck_at (cell 3 9, true) ];
  let failures = Engine.run m Alg.ifa_9 ~backgrounds:bgs8 in
  Alcotest.(check bool) "detected" true (failures <> []);
  List.iter
    (fun f ->
      Alcotest.(check int) "row 3" 3 (Org.row_of_addr (small ()) f.Engine.addr))
    failures;
  Alcotest.(check (list int)) "failing rows" [ 3 ]
    (Engine.failing_rows (small ()) failures)

let test_engine_detects_retention_only_with_wait () =
  let m = Model.create (small ()) in
  Model.set_faults m [ F.Data_retention (cell 5 0, false) ];
  Alcotest.(check bool) "IFA-9 catches DRF" false
    (Engine.passes m Alg.ifa_9 ~backgrounds:bgs8);
  Alcotest.(check bool) "MATS+ misses DRF" true
    (Engine.passes m Alg.mats_plus ~backgrounds:bgs8)

let test_engine_op_count () =
  let org = small () in
  Alcotest.(check int) "12N x words x bgs" (12 * 64 * 5)
    (Engine.op_count Alg.ifa_9 org ~backgrounds:5)

(* ------------------------------------------------------------------ *)
(* Controller *)

let hooks_recording tbl limit =
  let count () = Hashtbl.length tbl in
  { Controller.record_fault =
      (fun ~row ->
        if Hashtbl.mem tbl row then `Ok
        else if count () >= limit then `Full
        else begin
          Hashtbl.add tbl row ();
          `Ok
        end)
  ; would_overflow =
      (fun ~row -> (not (Hashtbl.mem tbl row)) && count () >= limit)
  ; enable_remap = (fun () -> ())
  ; faults_recorded = count
  }

let test_controller_clean () =
  let m = Model.create (small ()) in
  let ctl = Controller.compile Alg.ifa_9 ~words:64 ~backgrounds:bgs8 in
  let report = Controller.run ctl m (hooks_recording (Hashtbl.create 4) 4) in
  Alcotest.(check bool) "clean" true
    (report.Controller.outcome = Controller.Passed_clean);
  let datapath_ops = 2 * 12 * 64 * 5 in
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d >= ops %d" report.Controller.cycles datapath_ops)
    true
    (report.Controller.cycles >= datapath_ops
    && report.Controller.cycles < 2 * datapath_ops)

let test_controller_state_budget () =
  let ctl = Controller.compile Alg.ifa_9 ~words:64 ~backgrounds:bgs8 in
  Alcotest.(check int) "49 states for IFA-9" 49 (Controller.state_count ctl);
  Alcotest.(check int) "6 flip-flops" 6 (Controller.flipflop_count ctl);
  Alcotest.(check int) "names cover states" 49
    (Array.length (Controller.state_names ctl))

let test_controller_vs_engine_failure_detection () =
  let cases =
    [ []
    ; [ F.Stuck_at (cell 3 9, true) ]
    ; [ F.Transition (cell 7 0, true) ]
    ; [ F.Stuck_open (cell 1 1) ]
    ; [ F.Data_retention (cell 9 4, false) ]
    ]
  in
  let ctl = Controller.compile Alg.ifa_9 ~words:64 ~backgrounds:bgs8 in
  List.iter
    (fun faults ->
      let m1 = Model.create (small ()) in
      Model.set_faults m1 faults;
      let engine_clean = Engine.passes m1 Alg.ifa_9 ~backgrounds:bgs8 in
      let m2 = Model.create (small ()) in
      Model.set_faults m2 faults;
      let r = Controller.run ctl m2 Controller.no_repair_hooks in
      let ctl_clean = r.Controller.outcome = Controller.Passed_clean in
      Alcotest.(check bool) "controller agrees with engine" engine_clean
        ctl_clean)
    cases

let test_controller_pla_agrees () =
  let faults = [ F.Stuck_at (cell 3 9, true); F.Transition (cell 7 0, false) ] in
  let ctl = Controller.compile Alg.ifa_9 ~words:64 ~backgrounds:bgs8 in
  let run f =
    let m = Model.create (small ()) in
    Model.set_faults m faults;
    f ctl m (hooks_recording (Hashtbl.create 4) 4)
  in
  let r1 = run Controller.run in
  let r2 = run Controller.run_via_pla in
  Alcotest.(check bool) "same outcome" true
    (r1.Controller.outcome = r2.Controller.outcome);
  Alcotest.(check int) "same cycles" r1.Controller.cycles r2.Controller.cycles;
  Alcotest.(check int) "same recorded" r1.Controller.faults_recorded
    r2.Controller.faults_recorded

let test_controller_pla_size () =
  let ctl = Controller.compile Alg.ifa_9 ~words:64 ~backgrounds:bgs8 in
  let pla = Controller.to_pla ctl in
  Alcotest.(check int) "12 inputs (6 state + 6 cond)" 12 (Trpla.n_inputs pla);
  Alcotest.(check bool) "term count reasonable" true
    (Trpla.term_count pla > Controller.state_count ctl
    && Trpla.term_count pla < 8 * Controller.state_count ctl)

(* Random march tests: the microprogrammed controller must agree with
   the functional engine on ANY march algorithm, not just the library
   ones. *)

let arb_march =
  let gen_op rng =
    match Random.State.int rng 4 with
    | 0 -> March.W false
    | 1 -> March.W true
    | 2 -> March.R false
    | _ -> March.R true
  in
  let gen_item rng =
    if Random.State.int rng 8 = 0 then March.Wait
    else begin
      let order =
        match Random.State.int rng 3 with
        | 0 -> March.Up
        | 1 -> March.Down
        | _ -> March.Either
      in
      let n_ops = 1 + Random.State.int rng 3 in
      March.Elem { order; ops = List.init n_ops (fun _ -> gen_op rng) }
    end
  in
  QCheck.make
    ~print:(fun m -> March.to_string m)
    (QCheck.Gen.map
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         let n = 1 + Random.State.int rng 4 in
         let items = List.init n (fun _ -> gen_item rng) in
         (* ensure at least one element exists *)
         let items =
           if List.exists (function March.Elem _ -> true | March.Wait -> false) items
           then items
           else March.Elem { order = March.Up; ops = [ March.W false ] } :: items
         in
         March.make ~name:"rand" items)
       QCheck.Gen.(int_range 0 1_000_000))

let prop_random_march_roundtrip =
  QCheck.Test.make ~name:"random march notation round-trips" ~count:100
    arb_march
    (fun m -> March.equal m (March.of_string ~name:"rt" (March.to_string m)))

let prop_controller_matches_engine_random_march =
  QCheck.Test.make
    ~name:"controller = two-pass engine on random marches and faults"
    ~count:60
    QCheck.(pair arb_march (int_range 0 1_000_000))
    (fun (march, seed) ->
      let rng = Random.State.make [| seed |] in
      let o = small () in
      let faults =
        Bisram_faults.Injection.inject rng ~rows:(Org.rows o)
          ~cols:(Org.cols o) ~mix:Bisram_faults.Injection.default_mix
          ~n:(Random.State.int rng 3)
      in
      (* reference: the controller's two passes — the second runs over
         whatever the first left in the array, which can expose faults
         (e.g. down-transitions) a single pass cannot *)
      let m1 = Model.create o in
      Model.set_faults m1 faults;
      let pass1 = Engine.run m1 march ~backgrounds:bgs8 in
      let pass2 =
        Engine.run_ram (Engine.ram_of_model m1) march ~backgrounds:bgs8
      in
      let engine_clean = pass1 = [] && pass2 = [] in
      let m2 = Model.create o in
      Model.set_faults m2 faults;
      let ctl = Controller.compile march ~words:o.Org.words ~backgrounds:bgs8 in
      let r = Controller.run ctl m2 Controller.no_repair_hooks in
      engine_clean = (r.Controller.outcome = Controller.Passed_clean))

let prop_pla_path_matches_symbolic_random_march =
  QCheck.Test.make ~name:"PLA execution = symbolic on random marches"
    ~count:15
    QCheck.(pair arb_march (int_range 0 1_000_000))
    (fun (march, seed) ->
      let rng = Random.State.make [| seed |] in
      let o = small () in
      let faults =
        Bisram_faults.Injection.inject rng ~rows:(Org.rows o)
          ~cols:(Org.cols o) ~mix:Bisram_faults.Injection.stuck_at_only
          ~n:(Random.State.int rng 3)
      in
      let run f =
        let m = Model.create o in
        Model.set_faults m faults;
        let ctl =
          Controller.compile march ~words:o.Org.words ~backgrounds:bgs8
        in
        f ctl m (hooks_recording (Hashtbl.create 4) 4)
      in
      let r1 = run Controller.run and r2 = run Controller.run_via_pla in
      r1.Controller.outcome = r2.Controller.outcome
      && r1.Controller.cycles = r2.Controller.cycles)

(* ------------------------------------------------------------------ *)
(* Coverage *)

let tiny () = Org.make ~words:16 ~bpw:4 ~bpc:4 ~spares:0 ()
let bgs4 = Datagen.required_backgrounds ~bpw:4

let test_ifa9_exhaustive_coverage () =
  let org = tiny () in
  let faults = Coverage.exhaustive_faults org in
  let r = Coverage.evaluate org Alg.ifa_9 ~backgrounds:bgs4 ~faults in
  List.iter
    (fun c ->
      match c.Coverage.class_name with
      | "SAF" | "TF" | "DRF" ->
          Alcotest.(check (float 0.01))
            (c.Coverage.class_name ^ " coverage 100%")
            100.0
            (Coverage.coverage_pct c)
      | _ -> ())
    r.Coverage.per_class;
  Alcotest.(check bool)
    (Printf.sprintf "total coverage high (%.1f%%)" (Coverage.total_pct r))
    true
    (Coverage.total_pct r > 90.0)

let test_sof_semantics () =
  (* With the sense-amplifier-residue model, a stuck-open cell is seen
     only when the residue carries the complement of the expected value:
     IFA-9 catches it at an element boundary (first address), IFA-13's
     read-after-write catches it everywhere — the reason IFA-13 exists. *)
  let org = small () in
  let m = Model.create org in
  Model.set_faults m [ F.Stuck_open (cell 0 0) ];
  Alcotest.(check bool) "IFA-9 catches SOF at first address" false
    (Engine.passes m Alg.ifa_9 ~backgrounds:bgs8);
  let m2 = Model.create org in
  Model.set_faults m2 [ F.Stuck_open (cell 11 0) ];
  Alcotest.(check bool) "IFA-9 misses mid-array SOF" true
    (Engine.passes m2 Alg.ifa_9 ~backgrounds:bgs8);
  let m3 = Model.create org in
  Model.set_faults m3 [ F.Stuck_open (cell 11 0) ];
  Alcotest.(check bool) "IFA-13 catches mid-array SOF" false
    (Engine.passes m3 Alg.ifa_13 ~backgrounds:bgs8)

let test_ifa13_beats_ifa9_on_sof () =
  let org = tiny () in
  let faults = Coverage.exhaustive_faults org in
  let sof_pct alg =
    let r = Coverage.evaluate org alg ~backgrounds:bgs4 ~faults in
    match
      List.find_opt (fun c -> c.Coverage.class_name = "SOF") r.Coverage.per_class
    with
    | Some c -> Coverage.coverage_pct c
    | None -> Alcotest.fail "no SOF class"
  in
  let p9 = sof_pct Alg.ifa_9 and p13 = sof_pct Alg.ifa_13 in
  Alcotest.(check bool)
    (Printf.sprintf "IFA-13 SOF %.1f%% > IFA-9 SOF %.1f%%" p13 p9)
    true (p13 > p9);
  Alcotest.(check (float 0.01)) "IFA-13 SOF complete" 100.0 p13

let test_ifa9_beats_zero_one () =
  let org = tiny () in
  let faults = Coverage.exhaustive_faults org in
  let ifa = Coverage.evaluate org Alg.ifa_9 ~backgrounds:bgs4 ~faults in
  let zo = Coverage.evaluate org Alg.zero_one ~backgrounds:bgs4 ~faults in
  Alcotest.(check bool)
    (Printf.sprintf "IFA-9 %.1f%% > Zero-One %.1f%%" (Coverage.total_pct ifa)
       (Coverage.total_pct zo))
    true
    (Coverage.total_pct ifa > Coverage.total_pct zo)

(* ------------------------------------------------------------------ *)
(* March synthesis *)

module Synthesis = Bisram_bist.Synthesis

let test_synthesis_saf_tf () =
  (* stuck-at + transition faults need only a short MATS+-like march *)
  let org = tiny () in
  let faults =
    List.filter
      (fun f ->
        match f with
        | F.Stuck_at _ | F.Transition _ -> true
        | F.Stuck_open _ | F.Coupling_inversion _ | F.Coupling_idempotent _
        | F.State_coupling _ | F.Data_retention _ ->
            false)
      (Coverage.exhaustive_faults org)
  in
  let r = Synthesis.synthesize org ~faults ~backgrounds:bgs4 ~target:100.0 in
  Alcotest.(check (float 0.01)) "full coverage" 100.0 r.Synthesis.achieved;
  Alcotest.(check bool)
    (Printf.sprintf "short (%dN vs IFA-9's 12N): %s"
       (March.ops_per_address r.Synthesis.march)
       (March.to_string r.Synthesis.march))
    true
    (March.ops_per_address r.Synthesis.march <= 6);
  (* the synthesized test is valid: passes a clean RAM *)
  let m = Model.create org in
  Alcotest.(check bool) "valid" true
    (Engine.passes m r.Synthesis.march ~backgrounds:bgs4)

let test_synthesis_includes_wait_for_drf () =
  let org = tiny () in
  let faults =
    List.filter
      (fun f -> match f with F.Data_retention _ -> true | _ -> false)
      (Coverage.exhaustive_faults org)
  in
  let r = Synthesis.synthesize org ~faults ~backgrounds:bgs4 ~target:100.0 in
  Alcotest.(check (float 0.01)) "full DRF coverage" 100.0 r.Synthesis.achieved;
  Alcotest.(check bool) "uses a retention wait" true
    (March.has_retention r.Synthesis.march)

let test_synthesis_respects_budget () =
  let org = tiny () in
  let faults = Coverage.exhaustive_faults org in
  let r =
    Synthesis.synthesize ~max_elements:2 org ~faults ~backgrounds:bgs4
      ~target:100.0
  in
  Alcotest.(check bool) "stopped at budget" true
    (List.length r.Synthesis.march.March.items <= 2)

let () =
  Alcotest.run "bist"
    [ ( "march",
        [ Alcotest.test_case "roundtrip" `Quick test_march_roundtrip
        ; Alcotest.test_case "complexity" `Quick test_march_complexity
        ; Alcotest.test_case "extended library" `Quick test_extended_library
        ; Alcotest.test_case "parse errors" `Quick test_march_parse_errors
        ] )
    ; ( "addgen",
        [ Alcotest.test_case "up" `Quick test_addgen_up_sequence
        ; Alcotest.test_case "down" `Quick test_addgen_down_sequence
        ; Alcotest.test_case "width" `Quick test_addgen_width
        ] )
    ; ( "datagen",
        [ Alcotest.test_case "johnson cycle" `Quick test_johnson_cycle
        ; Alcotest.test_case "required backgrounds" `Quick
            test_required_backgrounds
        ; Alcotest.test_case "pairwise coverage" `Quick
            test_half_cycle_pairwise_coverage
        ; Alcotest.test_case "width guard" `Quick test_datagen_width_guard
        ; QCheck_alcotest.to_alcotest prop_johnson_period
        ] )
    ; ( "trpla",
        [ Alcotest.test_case "eval" `Quick test_pla_eval
        ; Alcotest.test_case "image roundtrip" `Quick test_pla_image_roundtrip
        ; Alcotest.test_case "costs" `Quick test_pla_costs
        ] )
    ; ( "engine",
        [ Alcotest.test_case "clean passes" `Quick test_engine_clean_ram_passes
        ; Alcotest.test_case "detects SAF" `Quick test_engine_detects_saf
        ; Alcotest.test_case "retention needs wait" `Quick
            test_engine_detects_retention_only_with_wait
        ; Alcotest.test_case "op count" `Quick test_engine_op_count
        ] )
    ; ( "controller",
        [ Alcotest.test_case "clean run" `Quick test_controller_clean
        ; Alcotest.test_case "state budget" `Quick test_controller_state_budget
        ; Alcotest.test_case "agrees with engine" `Quick
            test_controller_vs_engine_failure_detection
        ; Alcotest.test_case "PLA path agrees" `Quick test_controller_pla_agrees
        ; Alcotest.test_case "PLA size" `Quick test_controller_pla_size
        ; QCheck_alcotest.to_alcotest prop_random_march_roundtrip
        ; QCheck_alcotest.to_alcotest prop_controller_matches_engine_random_march
        ; QCheck_alcotest.to_alcotest prop_pla_path_matches_symbolic_random_march
        ] )
    ; ( "coverage",
        [ Alcotest.test_case "IFA-9 exhaustive" `Slow
            test_ifa9_exhaustive_coverage
        ; Alcotest.test_case "SOF semantics" `Quick test_sof_semantics
        ; Alcotest.test_case "IFA-13 > IFA-9 on SOF" `Slow
            test_ifa13_beats_ifa9_on_sof
        ; Alcotest.test_case "IFA-9 > Zero-One" `Slow test_ifa9_beats_zero_one
        ] )
    ; ( "synthesis",
        [ Alcotest.test_case "SAF+TF minimal" `Slow test_synthesis_saf_tf
        ; Alcotest.test_case "DRF needs wait" `Slow
            test_synthesis_includes_wait_for_drf
        ; Alcotest.test_case "budget" `Slow test_synthesis_respects_budget
        ] )
    ]
