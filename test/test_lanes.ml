(* Tests for the lane-sliced batch engine: the differential property
   pinning [Lanes] to the scalar [Model] trial-for-trial, report byte
   identity of the batched campaign scheduler across lane widths and
   job counts, failing-lane replay, and the batched checkpoint/resume
   boundary. *)

module C = Bisram_campaign.Campaign
module Sweep = Bisram_campaign.Sweep
module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module Lanes = Bisram_sram.Lanes
module Lane_engine = Bisram_bist.Lane_engine
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module I = Bisram_faults.Injection
module Pool = Bisram_parallel.Pool

let retention_only =
  { I.stuck_at = 0.0
  ; transition = 0.0
  ; stuck_open = 0.0
  ; coupling_inversion = 0.0
  ; coupling_idempotent = 0.0
  ; state_coupling = 0.0
  ; data_retention = 1.0
  }

(* ------------------------------------------------------------------ *)
(* the correctness keystone: per lane, [Lanes] equals the scalar
   [Model] under arbitrary per-lane fault sets and an arbitrary
   broadcast stimulus.  Every read compares every lane's every data
   bit against its own scalar model. *)

type op = Op_write of int * int | Op_read of int | Op_wait

let prop_lanes_equal_scalar_models =
  QCheck.Test.make
    ~name:"every lane of Lanes equals its own scalar Model (differential)"
    ~count:150
    QCheck.(
      triple (int_range 0 1_000_000) (int_range 1 10)
        (list_of_size (Gen.int_range 1 60) (triple (int_range 0 20) small_nat small_nat)))
    (fun (seed, lanes, raw_ops) ->
      let org = Org.make ~words:16 ~bpw:4 ~bpc:2 ~spares:4 () in
      let rng = Random.State.make [| 0x1a9e5; seed |] in
      (* per-lane random fault sets across every class of the default
         mix, sizes 0..4 so clean lanes and heavily faulted lanes mix
         within one batch *)
      let fault_sets =
        List.init lanes (fun _ ->
            I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
              ~mix:I.default_mix
              ~n:(Random.State.int rng 5))
      in
      let batch = Lanes.create org ~lanes in
      List.iteri (fun l f -> Lanes.arm batch ~lane:l f) fault_sets;
      Lanes.clear batch;
      let models =
        List.map
          (fun f ->
            let m = Model.create org in
            Model.set_faults m f;
            m)
          fault_sets
      in
      (* decode the raw generator triples into a stimulus: tag 0-8 a
         write, 9-18 a read, 19-20 a retention wait *)
      let ops =
        List.map
          (fun (tag, a, d) ->
            let addr = a mod org.Org.words in
            if tag < 9 then Op_write (addr, d mod 16)
            else if tag < 19 then Op_read addr
            else Op_wait)
          raw_ops
      in
      List.for_all
        (fun o ->
          match o with
          | Op_write (a, d) ->
              let w = Word.of_int ~width:4 d in
              Lanes.write_word batch a w;
              List.iter (fun m -> Model.write_word m a w) models;
              true
          | Op_wait ->
              Lanes.retention_wait batch;
              List.iter Model.retention_wait models;
              true
          | Op_read a ->
              let bits = Lanes.read_bits batch a in
              List.for_all
                (fun (l, m) ->
                  let w = Model.read_word m a in
                  let ok = ref true in
                  Array.iteri
                    (fun b mask ->
                      let lane_bit = (mask lsr l) land 1 = 1 in
                      if lane_bit <> Word.get w b then ok := false)
                    bits;
                  !ok)
                (List.mapi (fun l m -> (l, m)) models))
        ops)

(* the lane march engine agrees with the scalar engine's pass/fail
   verdict per lane, for random per-lane fault sets *)
let prop_lane_engine_verdicts =
  QCheck.Test.make
    ~name:"lane march fail mask = per-lane scalar Engine.passes" ~count:60
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 10))
    (fun (seed, lanes) ->
      let org = Org.make ~words:16 ~bpw:4 ~bpc:2 ~spares:4 () in
      let rng = Random.State.make [| 0xe9e1e; seed |] in
      let fault_sets =
        List.init lanes (fun _ ->
            I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
              ~mix:I.default_mix
              ~n:(Random.State.int rng 4))
      in
      let bgs = Datagen.required_backgrounds ~bpw:4 in
      let batch = Lanes.create org ~lanes in
      List.iteri (fun l f -> Lanes.arm batch ~lane:l f) fault_sets;
      Lanes.clear batch;
      let fail = Lane_engine.run_pass batch Alg.ifa_9 ~backgrounds:bgs in
      (* saturation stops the lane pass early, so only the all-failed
         case is comparable when the mask saturates *)
      if fail = Lanes.all_mask batch then
        List.for_all
          (fun f ->
            let m = Model.create org in
            Model.set_faults m f;
            not (Bisram_bist.Engine.passes m Alg.ifa_9 ~backgrounds:bgs))
          fault_sets
      else
        List.for_all
          (fun (l, f) ->
            let m = Model.create org in
            Model.set_faults m f;
            let scalar_pass =
              Bisram_bist.Engine.passes m Alg.ifa_9 ~backgrounds:bgs
            in
            scalar_pass = ((fail lsr l) land 1 = 0))
          (List.mapi (fun l f -> (l, f)) fault_sets))

(* ------------------------------------------------------------------ *)
(* report byte identity: the batched scheduler is purely a throughput
   knob.  70 trials so lanes=62 forms one full batch plus a ragged
   tail and lanes=7 forms ten full batches. *)

let check_identity name cfg =
  let scalar = C.json_string (C.run ~jobs:1 ~lanes:1 cfg) in
  List.iter
    (fun lanes ->
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s lanes=%d jobs=%d" name lanes jobs)
            scalar
            (C.json_string (C.run ~jobs ~lanes cfg)))
        [ 1; 4 ])
    [ 1; 7; 62 ]

let test_report_identity_fault_free () =
  check_identity "fault-free"
    (C.make_config ~mode:(C.Uniform 0) ~trials:70 ~seed:1999 ())

let test_report_identity_stuck_at () =
  check_identity "stuck-at"
    (C.make_config ~mix:I.stuck_at_only ~mode:(C.Uniform 2) ~trials:70
       ~seed:7 ())

let test_report_identity_poisson_default_mix () =
  check_identity "poisson default mix"
    (C.make_config ~mode:(C.Poisson 0.4) ~trials:70 ~seed:3 ())

let test_lanes_out_of_range_rejected () =
  let cfg = C.make_config ~trials:3 ~seed:1 () in
  List.iter
    (fun lanes ->
      Alcotest.check_raises
        (Printf.sprintf "lanes=%d rejected" lanes)
        (Invalid_argument
           (Printf.sprintf "Campaign.run: lanes must be in 1..%d" C.max_lanes))
        (fun () -> ignore (C.run ~lanes cfg)))
    [ 0; -1; C.max_lanes + 1 ]

(* ------------------------------------------------------------------ *)
(* failing-lane replay: a failure found by the batched scheduler
   carries the same trial seed as the scalar one, and replaying that
   seed alone (pure scalar path) reproduces the anomaly *)

let test_failing_lane_replay () =
  let cfg =
    C.make_config ~march:Alg.mats_plus ~mix:retention_only ~mode:(C.Uniform 3)
      ~trials:70 ~seed:5 ()
  in
  let batched = C.run ~jobs:1 ~lanes:62 cfg in
  let scalar = C.run ~jobs:1 ~lanes:1 cfg in
  Alcotest.(check bool) "escapes found" true (batched.C.escapes <> []);
  Alcotest.(check string) "batched report = scalar report"
    (C.json_string scalar) (C.json_string batched);
  let f = List.hd batched.C.escapes in
  let t = C.replay cfg ~seed:f.C.f_seed in
  Alcotest.(check bool) "replayed lane reproduces the escape" true
    (List.exists (function C.Escape _ -> true | _ -> false)
       t.C.t_anomalies);
  Alcotest.(check (list string)) "replay draws the reported fault set"
    (List.map (Format.asprintf "%a" Bisram_faults.Fault.pp) f.C.f_faults)
    (List.map (Format.asprintf "%a" Bisram_faults.Fault.pp) t.C.t_faults)

(* ------------------------------------------------------------------ *)
(* batched checkpoint/resume: a checkpoint cut inside and at a batch
   boundary resumes to a byte-identical report *)

let test_batched_checkpoint_resume () =
  let cfg = C.make_config ~mode:(C.Uniform 2) ~trials:70 ~seed:17 () in
  let full = C.json_string (C.run ~jobs:1 ~lanes:1 cfg) in
  let path = Filename.temp_file "bisram-lanes-ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      List.iter
        (fun k ->
          (* run the first k trials batched, snapshotting; resume the
             full campaign batched from the snapshot *)
          ignore
            (C.run ~jobs:1 ~lanes:62
               ~checkpoint:(C.checkpoint ~path ~every:1 ())
               { cfg with C.trials = k });
          let r =
            C.run ~jobs:1 ~lanes:62
              ~checkpoint:(C.checkpoint ~path ~every:1 ~resume:true ())
              cfg
          in
          Alcotest.(check int)
            (Printf.sprintf "k=%d trials resumed" k)
            k r.C.resumed_trials;
          Alcotest.(check string)
            (Printf.sprintf "k=%d byte-identical" k)
            full (C.json_string r))
        [ 30; 62; 65 ])

(* ------------------------------------------------------------------ *)
(* unit decomposition: full batches then single-trial tail units, so
   per-trial chaos/checkpoint semantics survive for short campaigns *)

let test_batch_ranges () =
  Alcotest.(check (list (pair int int)))
    "70 trials at width 62" [ (0, 62); (62, 1); (63, 1); (64, 1); (65, 1); (66, 1); (67, 1); (68, 1); (69, 1) ]
    (Array.to_list (Pool.batch_ranges ~items:70 ~width:62));
  Alcotest.(check (list (pair int int)))
    "width 1 stays scalar" [ (0, 1); (1, 1); (2, 1) ]
    (Array.to_list (Pool.batch_ranges ~items:3 ~width:1));
  Alcotest.(check (list (pair int int)))
    "exact multiple has no tail" [ (0, 4); (4, 4) ]
    (Array.to_list (Pool.batch_ranges ~items:8 ~width:4));
  Alcotest.(check (list (pair int int)))
    "fewer items than width decomposes to singles"
    [ (0, 1); (1, 1) ]
    (Array.to_list (Pool.batch_ranges ~items:2 ~width:62));
  Alcotest.(check (list (pair int int))) "zero items" []
    (Array.to_list (Pool.batch_ranges ~items:0 ~width:8))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lanes"
    [ ( "differential"
      , [ QCheck_alcotest.to_alcotest prop_lanes_equal_scalar_models
        ; QCheck_alcotest.to_alcotest prop_lane_engine_verdicts
        ] )
    ; ( "report-identity"
      , [ Alcotest.test_case "fault-free" `Quick test_report_identity_fault_free
        ; Alcotest.test_case "stuck-at" `Quick test_report_identity_stuck_at
        ; Alcotest.test_case "poisson default mix" `Slow
            test_report_identity_poisson_default_mix
        ; Alcotest.test_case "lanes out of range" `Quick
            test_lanes_out_of_range_rejected
        ] )
    ; ( "replay"
      , [ Alcotest.test_case "failing lane replays scalar" `Quick
            test_failing_lane_replay
        ] )
    ; ( "checkpoint"
      , [ Alcotest.test_case "batched resume boundaries" `Quick
            test_batched_checkpoint_resume
        ] )
    ; ( "scheduler"
      , [ Alcotest.test_case "batch_ranges decomposition" `Quick
            test_batch_ranges
        ] )
    ]
