(* Quickstart: generate a small built-in self-repairable RAM, break it,
   and watch it heal.

   Run with:  dune exec examples/quickstart.exe *)

module Config = Bisram_core.Config
module Compiler = Bisram_core.Compiler
module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module F = Bisram_faults.Fault
module Repair = Bisram_bisr.Repair

let () =
  (* 1. Describe the RAM: 256 words of 8 bits, 4-way column muxing,
     four spare rows, on the bundled 0.7 um process. *)
  let cfg =
    Config.make ~process:Bisram_tech.Process.cda_07u3m1p ~words:256 ~bpw:8
      ~bpc:4 ~spares:4 ()
  in

  (* 2. Compile: layout synthesis + timing/area guarantees. *)
  let design = Compiler.compile cfg in
  print_string (Compiler.datasheet design);

  (* 3. Manufacture a faulty chip: a behavioural model of the array
     with a stuck-at cell and an up-transition-fault cell. *)
  let faults =
    [ F.Stuck_at ({ F.row = 5; col = 9 }, true)
    ; F.Transition ({ F.row = 20; col = 0 }, true)
    ]
  in

  (* 4. Power-on self-test: the TRPLA microprogram runs IFA-9 twice;
     pass 1 records the faulty rows in the TLB, pass 2 verifies the
     repaired array (including the mapped spare rows). *)
  let outcome, report = Compiler.self_test design ~faults in
  Format.printf "@.self-test: %a after %d controller cycles@."
    Repair.pp_outcome outcome report.Bisram_bist.Controller.cycles;

  (* 5. Use the repaired RAM in normal mode: accesses to the faulty
     rows are diverted to spares by the TLB, invisibly to the user. *)
  let model = Model.create cfg.Config.org in
  Model.set_faults model faults;
  let backgrounds = Config.backgrounds cfg in
  (match Repair.run model cfg.Config.march ~backgrounds with
  | Repair.Repaired rows, _, _ ->
      Format.printf "repaired rows: %s@."
        (String.concat ", " (List.map string_of_int rows))
  | _ -> assert false);
  let faulty_addr = Org.addr_of cfg.Config.org ~row:5 ~col:1 in
  let data = Word.of_int ~width:8 0xA5 in
  Model.write_word model faulty_addr data;
  let back = Model.read_word model faulty_addr in
  Format.printf "wrote 0x%02X to a repaired address, read back %s -> %s@." 0xA5
    (Word.to_string back)
    (if Word.equal data back then "OK" else "CORRUPT");

  (* 6. Peek at the physical design: the 6T cell the array tiles
     (metal2 bitlines 'H', poly word line '|', metal1 rails '='). *)
  Format.printf "@.the 6T leaf cell (24 x 20 lambda):@.%s"
    (Bisram_layout.Cell_render.render (Bisram_layout.Leaf.sram_6t ()));

  (* 7. And the synthesizable face of the self-test engine. *)
  let net = Bisram_bist.Pla_gates.controller_netlist design.Compiler.controller in
  let opt, stats = Bisram_gates.Optimize.optimize net in
  Format.printf
    "@.BIST engine as gates: %d gates + %d flip-flops (~%d transistors)@."
    stats.Bisram_gates.Optimize.gates_after stats.Bisram_gates.Optimize.ffs
    (Bisram_gates.Netlist.transistor_count opt)
