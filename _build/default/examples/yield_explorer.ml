(* Yield / reliability / cost what-if exploration (Sections VII-X).

   For a user-chosen embedded RAM, sweeps the spare-row count and the
   process defectivity, and reports manufacturing yield, field
   reliability and the impact on die cost — the analysis a design team
   would run before committing to a repair strategy.

   Run with:  dune exec examples/yield_explorer.exe *)

module Config = Bisram_core.Config
module Compiler = Bisram_core.Compiler
module Org = Bisram_sram.Org
module Repairable = Bisram_yield.Repairable
module Stapper = Bisram_yield.Stapper
module Rel = Bisram_rel.Reliability
module Chips = Bisram_cost.Chips
module Mpr = Bisram_cost.Mpr
module Pr = Bisram_tech.Process

let alpha = 2.0

(* Measure geometry (growth factor, logic fraction) from real compiles. *)
let geometry ~words ~bpw ~bpc spares =
  let rows = words / bpc in
  if spares = 0 then Repairable.bare ~regular_rows:rows
  else begin
    let cfg = Config.make ~process:Pr.cda_07u3m1p ~words ~bpw ~bpc ~spares () in
    let a = (Compiler.compile cfg).Compiler.area in
    Repairable.make ~regular_rows:rows ~spares
      ~logic_fraction:(a.Compiler.logic_mm2 /. a.Compiler.module_mm2)
      ~growth_factor:(max 1.0 a.Compiler.growth_factor)
  end

let () =
  let words = 16384 and bpw = 16 and bpc = 8 in
  Printf.printf "target RAM: %d words x %d bits (%d rows), 0.7 um\n" words bpw
    (words / bpc);

  (* ---- manufacturing yield vs spares and defectivity ---- *)
  Printf.printf "\nmodule yield vs spares (rows %d, alpha=%.0f)\n"
    (words / bpc) alpha;
  Printf.printf "%18s" "defects/module";
  List.iter (fun s -> Printf.printf " %8s" (Printf.sprintf "s=%d" s)) [ 0; 4; 8; 16 ];
  Printf.printf "\n";
  let geoms = List.map (fun s -> (s, geometry ~words ~bpw ~bpc s)) [ 0; 4; 8; 16 ] in
  List.iter
    (fun n ->
      Printf.printf "%18.1f" n;
      List.iter
        (fun (_, g) ->
          Printf.printf " %8.4f" (Repairable.yield g ~mean_defects:n ~alpha))
        geoms;
      Printf.printf "\n")
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ];

  (* ---- field reliability ---- *)
  let lambda = 1e-10 in
  Printf.printf "\nfield reliability (lambda = %g /bit/h)\n" lambda;
  List.iter
    (fun s ->
      let org = Org.make ~words ~bpw ~bpc ~spares:s () in
      let c = Rel.of_org org ~lambda in
      let yr = 8760.0 in
      Printf.printf
        "  %2d spares: R(1y) = %.5f, R(10y) = %.5f, MTTF = %.3g h\n" s
        (Rel.reliability c yr)
        (Rel.reliability c (10.0 *. yr))
        (Rel.mttf c))
    [ 0; 4; 8; 16 ];

  (* ---- die-cost impact when this RAM is embedded in a processor ---- *)
  Printf.printf "\ndie-cost impact when embedded at 25%% of a 150 mm2 die\n";
  let host =
    { Chips.name = "host ASIC"
    ; feature_um = 0.7
    ; metal_layers = 3
    ; die_mm2 = 150.0
    ; wafer_mm = 200.0
    ; wafer_cost = 1400.0
    ; die_yield = 0.45
    ; cache_fraction = 0.25
    ; pins = 240
    ; package = Chips.PGA
    ; test_minutes = 2.0
    ; tester_rate = 5.0
    }
  in
  List.iter
    (fun s ->
      let params =
        { Mpr.default_bisr with Mpr.spares = s; cache_rows = words / bpc }
      in
      match Mpr.die_bisr host params with
      | Some w ->
          let plain = Mpr.die_plain host in
          Printf.printf
            "  %2d spares: die yield %.1f%% -> %.1f%%, $/die %.2f -> %.2f\n" s
            (100.0 *. plain.Mpr.die_yield)
            (100.0 *. w.Mpr.die_yield)
            plain.Mpr.cost_per_good_die w.Mpr.cost_per_good_die
      | None -> ())
    [ 4; 8; 16 ];

  (* ---- recommendation ---- *)
  Printf.printf
    "\nrecommendation: four spare rows — the yield knee is between 4 and 8\n\
     spares at realistic defectivity, the TLB delay stays maskable only up\n\
     to four spares, and early-life reliability favours fewer spares.\n"
