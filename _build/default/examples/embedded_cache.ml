(* Embedded-cache scenario: the workloads the paper's introduction
   motivates — L1/L2 caches inside microprocessors, where external field
   repair is impossible and BISR pays for itself.

   Generates the paper's two showcase modules (Figs. 6 and 7), a 64 KB
   and a 128 KB wide-word array, prints their datasheets, floorplans and
   the timing-masking analysis, and sizes a hypothetical L1 across the
   bundled processes.

   Run with:  dune exec examples/embedded_cache.exe *)

module Config = Bisram_core.Config
module Compiler = Bisram_core.Compiler
module Org = Bisram_sram.Org
module Floorplan = Bisram_pr.Floorplan
module Pr = Bisram_tech.Process

let compile_and_show ~title ~words ~bpw ~bpc =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-');
  let cfg =
    Config.make ~process:Pr.cda_07u3m1p ~words ~bpw ~bpc ~spares:4 ~drive:2
      ~strap:32 ()
  in
  let d = Compiler.compile cfg in
  print_string (Compiler.datasheet d);
  Format.printf "@.%a@." Floorplan.pp d.Compiler.floorplan;
  print_string (Floorplan.render ~width:76 d.Compiler.floorplan);
  d

let () =
  (* The paper's Fig. 6: a 64 KB array such as a unified L1. *)
  let _fig6 =
    compile_and_show ~title:"64 KB embedded cache (4K x 128, bpc=8)"
      ~words:4096 ~bpw:128 ~bpc:8
  in
  (* The paper's Fig. 7: a 128 KB array such as an on-chip L2 slice. *)
  let _fig7 =
    compile_and_show ~title:"128 KB embedded cache (4K x 256, bpc=16)"
      ~words:4096 ~bpw:256 ~bpc:16
  in
  (* Process exploration: the same 32 KB L1 data cache compiled on each
     bundled process; the generator is design-rule independent, so only
     the physical numbers change. *)
  Printf.printf "\n32 KB L1 across processes\n-------------------------\n";
  Printf.printf "%-14s %9s %9s %10s %9s\n" "process" "area mm2" "access ns"
    "TLB ns" "maskable";
  List.iter
    (fun p ->
      let cfg =
        Config.make ~process:p ~words:8192 ~bpw:32 ~bpc:8 ~spares:4 ()
      in
      let d = Compiler.compile cfg in
      Printf.printf "%-14s %9.3f %9.2f %10.2f %9b\n" p.Pr.name
        d.Compiler.area.Compiler.module_mm2 d.Compiler.timing.Compiler.access_ns
        d.Compiler.timing.Compiler.tlb_ns d.Compiler.timing.Compiler.tlb_maskable)
    Pr.all;
  (* Why it matters: a mission-critical part cannot be repaired in the
     field with laser fuses; the self-test runs at every power-on. *)
  let cfg =
    Config.make ~process:Pr.cda_07u3m1p ~words:8192 ~bpw:32 ~bpc:8 ~spares:4 ()
  in
  let d = Compiler.compile cfg in
  let ops = d.Compiler.ctl_report.Compiler.test_ops in
  let cycle_ns = d.Compiler.timing.Compiler.access_ns in
  Printf.printf
    "\npower-on self-test of the 32 KB L1: %d RAM operations ~ %.2f ms at one\n\
     access per %.1f ns (plus two 100 ms retention pauses for IFA-9)\n"
    ops
    (float_of_int ops *. cycle_ns *. 1e-6)
    cycle_ns
