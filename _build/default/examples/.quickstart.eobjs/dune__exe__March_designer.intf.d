examples/march_designer.mli:
