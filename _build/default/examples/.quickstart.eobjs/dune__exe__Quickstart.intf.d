examples/quickstart.mli:
