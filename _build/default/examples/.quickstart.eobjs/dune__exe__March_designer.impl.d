examples/march_designer.ml: Array Bisram_bist Bisram_faults Bisram_sram List Printf Sys
