examples/yield_explorer.ml: Bisram_core Bisram_cost Bisram_rel Bisram_sram Bisram_tech Bisram_yield List Printf
