examples/soc_integration.ml: Bisram_bist Bisram_core Bisram_faults Bisram_sram Bisram_tech List Printf
