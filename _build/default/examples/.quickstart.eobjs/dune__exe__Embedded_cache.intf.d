examples/embedded_cache.mli:
