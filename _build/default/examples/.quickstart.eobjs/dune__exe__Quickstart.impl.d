examples/quickstart.ml: Bisram_bisr Bisram_bist Bisram_core Bisram_faults Bisram_gates Bisram_layout Bisram_sram Bisram_tech Format List String
