examples/embedded_cache.ml: Bisram_core Bisram_pr Bisram_sram Bisram_tech Format List Printf String
