examples/soc_integration.mli:
