examples/yield_explorer.mli:
