(* SoC integration: drive the generated module through its pins, the
   way a boot ROM would — power-on self-test, BUSY/FAIL handshake, then
   a software memory pattern check through the repaired array.

   Run with:  dune exec examples/soc_integration.exe *)

module Config = Bisram_core.Config
module Compiler = Bisram_core.Compiler
module MM = Bisram_core.Module_model
module Org = Bisram_sram.Org
module Word = Bisram_sram.Word
module F = Bisram_faults.Fault

let () =
  let cfg =
    Config.make ~process:Bisram_tech.Process.cda_07u3m1p ~words:256 ~bpw:8
      ~bpc:4 ~spares:4 ()
  in
  let design = Compiler.compile cfg in
  Printf.printf "module pinout:\n";
  List.iter
    (fun pin ->
      Printf.printf "  %-5s %-7s %-6s %s\n" pin.Compiler.pin_name
        (if pin.Compiler.width = 1 then ""
         else Printf.sprintf "[%d:0]" (pin.Compiler.width - 1))
        pin.Compiler.dir pin.Compiler.purpose)
    (Compiler.pinout design);

  (* the part comes back from the fab with two manufacturing defects *)
  let dut = MM.create design in
  MM.inject dut
    [ F.Stuck_at ({ F.row = 9; col = 3 }, true)
    ; F.Transition ({ F.row = 33; col = 12 }, false)
    ];

  let idle = MM.idle ~bpw:8 in

  (* --- boot ROM step 1: pulse TEST, wait for BUSY to clear --- *)
  Printf.printf "\nboot: raising TEST...\n";
  let t = MM.cycle dut { idle with MM.test = true } in
  Printf.printf "boot: BUSY=%b FAIL=%b" t.MM.busy t.MM.fail;
  (match MM.last_test dut with
  | Some r ->
      Printf.printf " (self-test took %d controller cycles, %d rows mapped)\n"
        r.Bisram_bist.Controller.cycles r.Bisram_bist.Controller.faults_recorded
  | None -> Printf.printf "\n");
  if t.MM.fail then begin
    Printf.printf "boot: part is bad, reject\n";
    exit 2
  end;

  (* --- boot ROM step 2: software pattern test over every address --- *)
  let org = cfg.Config.org in
  let errors = ref 0 in
  for addr = 0 to org.Org.words - 1 do
    let pattern = Word.of_int ~width:8 ((addr * 37) land 0xFF) in
    ignore
      (MM.cycle dut { idle with MM.addr = addr; din = pattern; we = true; cs = true })
  done;
  for addr = 0 to org.Org.words - 1 do
    let expected = Word.of_int ~width:8 ((addr * 37) land 0xFF) in
    let o = MM.cycle dut { idle with MM.addr = addr; cs = true } in
    if not (Word.equal expected o.MM.dout) then incr errors
  done;
  Printf.printf "boot: pattern test over %d words -> %d error(s)%s\n"
    org.Org.words !errors
    (if !errors = 0 then " (defective rows healed invisibly)" else "");

  (* --- and for contrast, a part that cannot be saved --- *)
  let dead = MM.create design in
  MM.inject dead
    (List.init 6 (fun r -> F.Stuck_at ({ F.row = 3 * r; col = 0 }, true)));
  let t = MM.cycle dead { idle with MM.test = true } in
  Printf.printf "\na part with 6 dead rows: FAIL=%b -> production reject\n"
    t.MM.fail;
  Printf.printf "interface cycles driven this session: %d\n" (MM.cycles dut)
