(* March-algorithm designer: author a custom test, microprogram it into
   the TRPLA and compare its fault coverage and cost against the
   library algorithms.

   The TRPLA control code is loaded from two plane images at layout
   time, so changing the test algorithm is exactly this workflow in the
   paper: edit the march, regenerate the planes.

   Run with:  dune exec examples/march_designer.exe -- [march-notation]
   e.g.       dune exec examples/march_designer.exe -- "u(w0); u(r0,w1); d(r1)" *)

module March = Bisram_bist.March
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module Controller = Bisram_bist.Controller
module Trpla = Bisram_bist.Trpla
module Coverage = Bisram_bist.Coverage
module Engine = Bisram_bist.Engine
module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module F = Bisram_faults.Fault

let default_custom = "u(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1)"

let () =
  let notation =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else default_custom
  in
  let custom =
    match March.of_string ~name:"custom" notation with
    | m -> m
    | exception Invalid_argument e ->
        Printf.eprintf "bad march notation: %s\n" e;
        exit 1
  in
  Printf.printf "custom march: %s\n" (March.to_string custom);
  Printf.printf "complexity  : %dN (%d reads, retention %b)\n"
    (March.ops_per_address custom)
    (March.reads_per_address custom)
    (March.has_retention custom);

  (* ---- microprogram it ---- *)
  let org = Org.make ~words:64 ~bpw:4 ~bpc:4 ~spares:4 () in
  let backgrounds = Datagen.required_backgrounds ~bpw:4 in
  Printf.printf "\nmicroprogramming into the TRPLA (64-word array)\n";
  Printf.printf "%-10s %7s %5s %7s %12s\n" "march" "states" "FFs" "terms"
    "transistors";
  let show alg =
    let ctl = Controller.compile alg ~words:org.Org.words ~backgrounds in
    let pla = Controller.to_pla ctl in
    Printf.printf "%-10s %7d %5d %7d %12d\n" alg.March.name
      (Controller.state_count ctl)
      (Controller.flipflop_count ctl)
      (Trpla.term_count pla)
      (Trpla.transistor_count pla)
  in
  List.iter show [ custom; Alg.ifa_9; Alg.ifa_13; Alg.mats_plus ];

  (* ---- plane images: the runtime-loadable control code ---- *)
  let ctl = Controller.compile custom ~words:org.Org.words ~backgrounds in
  let pla = Controller.to_pla ctl in
  let and_plane = Trpla.and_plane_image pla in
  Printf.printf "\nfirst four AND-plane rows of the custom control code:\n";
  List.iteri
    (fun i line -> if i < 4 then Printf.printf "  %s\n" line)
    and_plane;

  (* ---- coverage comparison ---- *)
  let cov_org = Org.make ~words:16 ~bpw:4 ~bpc:4 ~spares:0 () in
  let faults = Coverage.exhaustive_faults cov_org in
  Printf.printf "\nfault coverage (exhaustive single faults, 4x16 array)\n";
  Printf.printf "%-10s" "march";
  List.iter (fun c -> Printf.printf " %6s" c) F.all_class_names;
  Printf.printf " %7s\n" "TOTAL";
  List.iter
    (fun alg ->
      let r = Coverage.evaluate cov_org alg ~backgrounds ~faults in
      Printf.printf "%-10s" alg.March.name;
      List.iter
        (fun name ->
          match
            List.find_opt
              (fun c -> c.Coverage.class_name = name)
              r.Coverage.per_class
          with
          | Some c -> Printf.printf " %5.1f%%" (Coverage.coverage_pct c)
          | None -> Printf.printf " %6s" "-")
        F.all_class_names;
      Printf.printf " %6.1f%%\n" (Coverage.total_pct r))
    [ custom; Alg.ifa_9; Alg.ifa_13 ];

  (* ---- run the custom test against a faulty RAM ---- *)
  let model = Model.create org in
  Model.set_faults model [ F.Stuck_at ({ F.row = 2; col = 5 }, true) ];
  let detected = not (Engine.passes model custom ~backgrounds) in
  Printf.printf "\ncustom march on a stuck-at-faulty RAM: %s\n"
    (if detected then "fault detected" else "FAULT MISSED");
  Printf.printf
    "\ntest time on a 1 Mb module: custom %d ops vs IFA-9 %d ops per pass\n"
    (Engine.op_count custom
       (Org.make ~words:65536 ~bpw:16 ~bpc:8 ())
       ~backgrounds:(Datagen.required_count ~bpw:16))
    (Engine.op_count Alg.ifa_9
       (Org.make ~words:65536 ~bpw:16 ~bpc:8 ())
       ~backgrounds:(Datagen.required_count ~bpw:16))
