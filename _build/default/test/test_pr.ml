(* Tests for the macrocell placer and over-the-cell router. *)

module P = Bisram_geometry.Point
module R = Bisram_geometry.Rect
module Port = Bisram_layout.Port
module Block = Bisram_pr.Block
module Placer = Bisram_pr.Placer
module Router = Bisram_pr.Router
module Floorplan = Bisram_pr.Floorplan

let rules = Bisram_tech.Rules.scmos

let blk ?(pins = []) name w h = Block.make ~name ~w ~h pins

let pin net edge offset = { Block.net; edge; offset }

let no_overlaps result =
  let rects = List.map Placer.rect_of_placement result.Placer.placements in
  let arr = Array.of_list rects in
  let ok = ref true in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      if R.overlaps arr.(i) arr.(j) then ok := false
    done
  done;
  !ok

let test_block_validation () =
  (match Block.make ~name:"b" ~w:10 ~h:10 [ pin "x" Port.North 11 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "offset beyond edge accepted");
  let b = blk "b" 10 20 ~pins:[ pin "x" Port.East 5 ] in
  Alcotest.(check int) "area" 200 (Block.area b);
  let p = Block.pin_position b (List.hd b.Block.pins) in
  Alcotest.(check bool) "east pin at x=w" true (P.equal p (P.make 10 5))

let test_single_block () =
  let r = Placer.place [ blk "a" 100 50 ] in
  Alcotest.(check int) "dead 0" 0 r.Placer.dead_space;
  Alcotest.(check (float 1e-9)) "rectangularity 1" 1.0 r.Placer.rectangularity

let test_two_blocks_no_overlap () =
  let r = Placer.place [ blk "a" 100 50; blk "b" 100 50 ] in
  Alcotest.(check bool) "no overlap" true (no_overlaps r);
  (* two equal blocks tile perfectly *)
  Alcotest.(check int) "dead 0" 0 r.Placer.dead_space

let test_many_blocks_rectangular () =
  let blocks =
    [ blk "big" 400 300; blk "tall" 80 300; blk "wide" 480 60
    ; blk "s1" 100 60; blk "s2" 120 60; blk "s3" 90 50
    ]
  in
  let r = Placer.place blocks in
  Alcotest.(check bool) "no overlap" true (no_overlaps r);
  Alcotest.(check bool)
    (Printf.sprintf "rectangularity %.3f > 0.7" r.Placer.rectangularity)
    true
    (r.Placer.rectangularity > 0.7)

let test_port_alignment_pulls_together () =
  (* the smaller block can slide along the larger one's edge at no dead
     space cost: port alignment must make the shared pins coincide *)
  let a = blk "a" 200 100 ~pins:[ pin "x" Port.East 70 ] in
  let b = blk "b" 100 60 ~pins:[ pin "x" Port.West 30 ] in
  let r = Placer.place [ a; b ] in
  let pa = Option.get (Placer.find r "a") in
  let pb = Option.get (Placer.find r "b") in
  let ppa = Placer.pin_point pa (List.hd pa.Placer.block.Block.pins) in
  let ppb = Placer.pin_point pb (List.hd pb.Placer.block.Block.pins) in
  Alcotest.(check int) "pins coincide" 0 (P.manhattan ppa ppb)

let test_stretching_matches_edges () =
  (* a slightly shorter block abutting a taller one is stretched *)
  let a = blk "a" 200 100 ~pins:[ pin "x" Port.East 50 ] in
  let b = blk "b" 100 80 ~pins:[ pin "x" Port.West 50 ] in
  let r = Placer.place [ a; b ] in
  let pb = Option.get (Placer.find r "b") in
  Alcotest.(check bool)
    (Printf.sprintf "stretched by %d" pb.Placer.stretch_h)
    true
    (pb.Placer.stretch_h > 0 || pb.Placer.at.P.y <> 0)

let test_hpwl_lower_with_connection () =
  (* placement of connected blocks yields smaller wirelength than a
     deliberately bad manual placement *)
  let a = blk "a" 100 100 ~pins:[ pin "n" Port.East 50 ] in
  let b = blk "b" 100 100 ~pins:[ pin "n" Port.West 50 ] in
  let r = Placer.place [ a; b ] in
  Alcotest.(check bool) "hpwl small" true (Placer.hpwl r <= 210)

let test_router_abutted_nets_free () =
  let a = blk "a" 100 100 ~pins:[ pin "n" Port.East 50 ] in
  let b = blk "b" 100 100 ~pins:[ pin "n" Port.West 50 ] in
  let fp = Floorplan.make rules [ a; b ] in
  Alcotest.(check int) "abutted" 1 fp.Floorplan.routing.Router.abutted_nets;
  Alcotest.(check int) "no wires" 0 fp.Floorplan.routing.Router.wirelength

let test_router_l_routes () =
  (* disconnected pins need routing; wirelength >= manhattan distance *)
  let a = blk "a" 100 100 ~pins:[ pin "n" Port.North 10; pin "m" Port.South 10 ] in
  let b = blk "b" 60 40 ~pins:[ pin "n" Port.South 30; pin "m" Port.North 30 ] in
  let fp = Floorplan.make rules [ a; b ] in
  let routing = fp.Floorplan.routing in
  Alcotest.(check int) "two nets routed" 2 routing.Router.routed_nets;
  Alcotest.(check bool) "wirelength positive" true (routing.Router.wirelength > 0)

let test_floorplan_render () =
  let fp =
    Floorplan.make rules [ blk "ARRAY" 400 300; blk "DEC" 80 300; blk "IO" 480 60 ]
  in
  let art = Floorplan.render ~width:60 fp in
  Alcotest.(check bool) "mentions blocks" true
    (let has sub =
       let n = String.length art and m = String.length sub in
       let rec go i =
         i + m <= n && (String.sub art i m = sub || go (i + 1))
       in
       go 0
     in
     has "ARRAY" && has "DEC");
  Alcotest.(check bool) "multi-line" true (String.contains art '\n')

let test_epsilon_near_optimal () =
  (* the paper's provably-(1+eps)-optimal claim: for well-matched block
     sets epsilon stays small *)
  let blocks =
    [ blk "a" 300 200; blk "b" 300 100; blk "c" 150 100; blk "d" 150 100 ]
  in
  let fp = Floorplan.make rules blocks in
  Alcotest.(check bool)
    (Printf.sprintf "epsilon %.3f < 0.35" (Floorplan.epsilon fp))
    true
    (Floorplan.epsilon fp < 0.35)

let prop_placement_never_overlaps =
  QCheck.Test.make ~name:"random block sets never overlap" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_range 20 300) (int_range 20 300)))
    (fun sizes ->
      let blocks = List.mapi (fun i (w, h) -> blk (Printf.sprintf "b%d" i) w h) sizes in
      no_overlaps (Placer.place blocks))

let prop_rectangularity_bounds =
  QCheck.Test.make ~name:"rectangularity in (0,1]" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_range 20 300) (int_range 20 300)))
    (fun sizes ->
      let blocks = List.mapi (fun i (w, h) -> blk (Printf.sprintf "b%d" i) w h) sizes in
      let r = Placer.place blocks in
      r.Placer.rectangularity > 0.0 && r.Placer.rectangularity <= 1.0 +. 1e-9)

let () =
  Alcotest.run "place_route"
    [ ( "block",
        [ Alcotest.test_case "validation" `Quick test_block_validation ] )
    ; ( "placer",
        [ Alcotest.test_case "single" `Quick test_single_block
        ; Alcotest.test_case "two blocks" `Quick test_two_blocks_no_overlap
        ; Alcotest.test_case "many blocks" `Quick test_many_blocks_rectangular
        ; Alcotest.test_case "port alignment" `Quick
            test_port_alignment_pulls_together
        ; Alcotest.test_case "stretching" `Quick test_stretching_matches_edges
        ; Alcotest.test_case "hpwl" `Quick test_hpwl_lower_with_connection
        ; QCheck_alcotest.to_alcotest prop_placement_never_overlaps
        ; QCheck_alcotest.to_alcotest prop_rectangularity_bounds
        ] )
    ; ( "router",
        [ Alcotest.test_case "abutment free" `Quick test_router_abutted_nets_free
        ; Alcotest.test_case "l-routes" `Quick test_router_l_routes
        ] )
    ; ( "floorplan",
        [ Alcotest.test_case "render" `Quick test_floorplan_render
        ; Alcotest.test_case "epsilon" `Quick test_epsilon_near_optimal
        ] )
    ]
