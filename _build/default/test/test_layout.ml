(* Tests for the layout substrate: cells, leaf generators, tiling,
   macros and the CIF writer. *)

module R = Bisram_geometry.Rect
module P = Bisram_geometry.Point
module T = Bisram_geometry.Transform
module O = Bisram_geometry.Orient
module L = Bisram_tech.Layer
module Cell = Bisram_layout.Cell
module Port = Bisram_layout.Port
module Leaf = Bisram_layout.Leaf
module Tile = Bisram_layout.Tile
module Macro = Bisram_layout.Macro
module Cif = Bisram_layout.Cif

let rules = Bisram_tech.Rules.scmos

(* naive substring search helpers for CIF-output checks *)
let find_sub ~start ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then Some start else go (max 0 start)

let contains_sub ~sub s = find_sub ~start:0 ~sub s <> None

let count_sub ~sub s =
  let rec go acc i =
    match find_sub ~start:i ~sub s with
    | Some j -> go (acc + 1) (j + 1)
    | None -> acc
  in
  go 0 0

let test_port_edge_transform () =
  Alcotest.(check bool) "R90 north->west" true
    (Port.transform_edge O.R90 Port.North = Port.West);
  Alcotest.(check bool) "Mx north->south" true
    (Port.transform_edge O.Mx Port.North = Port.South);
  Alcotest.(check bool) "My east->west" true
    (Port.transform_edge O.My Port.East = Port.West);
  Alcotest.(check bool) "R0 identity" true
    (List.for_all
       (fun e -> Port.transform_edge O.R0 e = e)
       [ Port.North; Port.South; Port.East; Port.West ])

let test_cell_basics () =
  let c = Leaf.sram_6t () in
  Alcotest.(check int) "width 24" 24 (Cell.width c);
  Alcotest.(check int) "height 20" 20 (Cell.height c);
  Alcotest.(check int) "area" 480 (Cell.area c);
  Alcotest.(check bool) "has bl port" true (Cell.find_port c "bl" <> None);
  Alcotest.(check bool) "wl on both sides" true
    (List.length
       (List.filter (fun p -> p.Port.name = "wl") c.Cell.ports)
    = 2)

let test_leaf_cells_drc_clean () =
  let cells =
    [ Leaf.sram_6t (); Leaf.precharge (); Leaf.sense_amp ()
    ; Leaf.wordline_driver ~drive:2; Leaf.row_decoder_slice ~bits:9
    ; Leaf.column_mux ~bpc:4; Leaf.strap ~w:8
    ]
  in
  List.iter
    (fun c ->
      let violations = Cell.drc rules c in
      Alcotest.(check (list string)) (c.Cell.name ^ " drc clean") [] violations)
    cells

let test_cell_transform_roundtrip () =
  let c = Leaf.sram_6t () in
  let tr = T.make O.R90 (P.make 100 50) in
  let c' = Cell.transform (T.inverse tr) (Cell.transform tr c) in
  Alcotest.(check bool) "bbox restored" true (R.equal c.Cell.bbox c'.Cell.bbox);
  Alcotest.(check int) "shape count" (List.length c.Cell.shapes)
    (List.length c'.Cell.shapes)

let test_hstack_abutment () =
  let c = Leaf.sram_6t () in
  let row = Tile.harray ~name:"row4" ~n:4 c in
  Alcotest.(check int) "width x4" (4 * 24) (Cell.width row);
  Alcotest.(check int) "height kept" 20 (Cell.height row);
  Alcotest.(check int) "shapes x4" (4 * List.length c.Cell.shapes)
    (List.length row.Cell.shapes)

let test_vstack_mirrored_rails_shared () =
  let c = Leaf.sram_6t () in
  let col = Tile.varray_mirrored ~name:"col2" ~n:2 c in
  Alcotest.(check int) "height x2" 40 (Cell.height col);
  (* mirrored row puts its vdd rail at the shared boundary: rails of
     row0 top (y18-20) and row1 bottom (y20-22 after mirror) meet *)
  let m1 = Cell.shapes_on col L.Metal1 in
  let at_boundary =
    List.filter (fun r -> r.R.y0 <= 20 && r.R.y1 >= 20) m1
  in
  Alcotest.(check bool) "metal1 across boundary" true (at_boundary <> [])

let test_abutting_ports () =
  let c = Leaf.sram_6t () in
  let left = Cell.normalize c in
  let right = Cell.translate (P.make 24 0) c in
  let pairs = Tile.abutting_ports left right in
  (* wl, vdd, gnd meet on the shared vertical edge *)
  let names = List.sort_uniq compare (List.map (fun (p, _) -> p.Port.name) pairs) in
  Alcotest.(check (list string)) "abutting signals" [ "gnd"; "vdd"; "wl" ] names

let test_macro_area_and_count () =
  let c = Leaf.sram_6t () in
  let m =
    Macro.make ~name:"arr"
      [ Macro.array ~origin:P.zero ~nx:16 ~ny:8 ~mirror_odd_rows:true c ]
  in
  Alcotest.(check int) "instances" 128 (Macro.instance_count m);
  Alcotest.(check int) "width" (16 * 24) (Macro.width m);
  Alcotest.(check int) "height" (8 * 20) (Macro.height m);
  Alcotest.(check int) "area" (16 * 24 * 8 * 20) (Macro.area m)

let test_macro_flatten_matches_symbolic () =
  let c = Leaf.sram_6t () in
  let m =
    Macro.make ~name:"arr"
      [ Macro.array ~origin:(P.make 5 7) ~nx:3 ~ny:2 c ]
  in
  let flat = Macro.flatten m in
  Alcotest.(check bool) "bbox equal" true (R.equal (Macro.bbox m) flat.Cell.bbox);
  Alcotest.(check int) "shapes" (6 * List.length c.Cell.shapes)
    (List.length flat.Cell.shapes)

let test_macro_flatten_limit () =
  let c = Leaf.sram_6t () in
  let m =
    Macro.make ~name:"huge"
      [ Macro.array ~origin:P.zero ~nx:1000 ~ny:1000 c ]
  in
  match Macro.flatten m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flatten should refuse 1M instances"

let test_cif_of_cell () =
  let p = Bisram_tech.Process.cda_07u3m1p in
  let s = Cif.of_cell p (Leaf.sram_6t ()) in
  Alcotest.(check bool) "has DS/DF" true
    (String.length s > 0
    && contains_sub ~sub:"DS 1 1 2;" s
    && contains_sub ~sub:"DF;" s
    && contains_sub ~sub:"L CMF;" s)

let test_cif_of_macro_hierarchy () =
  let p = Bisram_tech.Process.cda_07u3m1p in
  let c = Leaf.sram_6t () in
  let m =
    Macro.make ~name:"arr"
      [ Macro.array ~origin:P.zero ~nx:4 ~ny:2 ~mirror_odd_rows:true c ]
  in
  let s = Cif.of_macro p m in
  (* one cell definition, 8 calls of it, one top definition *)
  Alcotest.(check int) "2 definitions" 2 (count_sub ~sub:"DS " s);
  Alcotest.(check int) "8 leaf calls + 1 top call" 9 (count_sub ~sub:"\nC " s);
  Alcotest.(check int) "4 mirrored calls" 4 (count_sub ~sub:"MY" s)

let test_pla_programmed_geometry () =
  let and_plane = [ "1-0"; "01-"; "--1" ] in
  let or_plane = [ "11"; ".1"; "1." ] in
  let c = Leaf.pla_programmed ~and_plane ~or_plane in
  (* device patches: AND literals (2+2+1) + OR connections (2+1+1) *)
  let actives = Cell.shapes_on c L.Active in
  Alcotest.(check int) "device patches" 9 (List.length actives);
  (* one poly column pair per input, one m2 column per output *)
  let polys = Cell.shapes_on c L.Poly in
  Alcotest.(check int) "poly columns" 6 (List.length polys);
  Alcotest.(check int) "ports" 5 (List.length c.Cell.ports);
  (* DRC clean *)
  Alcotest.(check (list string)) "drc" [] (Cell.drc rules c)

let test_pla_programmed_from_controller () =
  (* the real control program: generate layout straight from the
     compiled TRPLA's plane images *)
  let ctl =
    Bisram_bist.Controller.compile Bisram_bist.Algorithms.ifa_9 ~words:64
      ~backgrounds:(Bisram_bist.Datagen.required_backgrounds ~bpw:8)
  in
  let pla = Bisram_bist.Controller.to_pla ctl in
  let c =
    Leaf.pla_programmed
      ~and_plane:(Bisram_bist.Trpla.and_plane_image pla)
      ~or_plane:(Bisram_bist.Trpla.or_plane_image pla)
  in
  Alcotest.(check (list string)) "drc clean" [] (Cell.drc rules c);
  (* device count tracks the programmed literal count *)
  let literals =
    List.fold_left
      (fun acc line ->
        acc
        + String.fold_left
            (fun a ch -> if ch = '1' || ch = '0' then a + 1 else a)
            0 line)
      0
      (Bisram_bist.Trpla.and_plane_image pla)
    + List.fold_left
        (fun acc line ->
          acc + String.fold_left (fun a ch -> if ch = '1' then a + 1 else a) 0 line)
        0
        (Bisram_bist.Trpla.or_plane_image pla)
  in
  Alcotest.(check int) "one patch per literal" literals
    (List.length (Cell.shapes_on c L.Active));
  (* exports as CIF *)
  let cif = Bisram_layout.Cif.of_cell Bisram_tech.Process.cda_07u3m1p c in
  Alcotest.(check bool) "cif nonempty" true (String.length cif > 1000)

(* ------------------------------------------------------------------ *)
(* CIF reader: round-trips of the writer *)

module Cif_reader = Bisram_layout.Cif_reader

let sorted_shapes (c : Cell.t) =
  List.sort compare
    (List.map (fun (l, r) -> (L.to_string l, r)) c.Cell.shapes)

let test_cif_roundtrip_cell () =
  let p = Bisram_tech.Process.cda_07u3m1p in
  let original = Leaf.sram_6t () in
  let reimported = Cif_reader.to_cell p (Cif.of_cell p original) in
  (* same multiset of shapes (ports are not part of CIF) *)
  Alcotest.(check int) "shape count"
    (List.length original.Cell.shapes)
    (List.length reimported.Cell.shapes);
  Alcotest.(check bool) "same geometry" true
    (sorted_shapes original = sorted_shapes reimported)

let test_cif_roundtrip_macro () =
  let p = Bisram_tech.Process.cda_07u3m1p in
  let m =
    Macro.make ~name:"arr"
      [ Macro.array ~origin:P.zero ~nx:3 ~ny:2 ~mirror_odd_rows:true
          (Leaf.sram_6t ())
      ]
  in
  let parsed = Cif_reader.parse (Cif.of_macro p m) in
  Alcotest.(check int) "two definitions" 2
    (List.length parsed.Cif_reader.definitions);
  let flat_via_cif = Cif_reader.flatten parsed in
  let flat_direct = Macro.flatten m in
  Alcotest.(check int) "same flattened shape count"
    (List.length flat_direct.Cell.shapes)
    (List.length flat_via_cif);
  (* spot geometry equality after scaling back to lambda *)
  let scale = p.Bisram_tech.Process.lambda_nm / 10 in
  let via_cif =
    List.sort compare
      (List.map
         (fun (l, (r : R.t)) ->
           ( L.to_string l,
             R.make (r.R.x0 / scale) (r.R.y0 / scale) (r.R.x1 / scale)
               (r.R.y1 / scale) ))
         flat_via_cif)
  in
  Alcotest.(check bool) "same geometry" true
    (via_cif = sorted_shapes flat_direct)

let test_cif_reader_rejects_garbage () =
  (match Cif_reader.parse "B 1 2 3 4;" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "box before layer/definition accepted");
  match Cif_reader.parse "Q nonsense;" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown statement accepted"

(* ------------------------------------------------------------------ *)
(* Cell renderer *)

module Render = Bisram_layout.Cell_render

let test_render_6t () =
  let art = Render.render (Leaf.sram_6t ()) in
  let lines = String.split_on_char '\n' art in
  let nonempty = List.filter (fun l -> l <> "") lines in
  (* 20 rows of 24 characters *)
  Alcotest.(check int) "20 rows" 20 (List.length nonempty);
  List.iter
    (fun l -> Alcotest.(check int) "24 cols" 24 (String.length l))
    nonempty;
  let has c = String.contains art c in
  (* metal2 bitlines, poly word line, metal1 rails all visible *)
  Alcotest.(check bool) "metal2" true (has 'H');
  Alcotest.(check bool) "poly" true (has '|');
  Alcotest.(check bool) "metal1" true (has '=');
  (match nonempty with
  | top :: _ ->
      Alcotest.(check bool) "vdd rail on top" true
        (String.for_all (fun c -> c = '=' || c = 'H') top)
  | [] -> Alcotest.fail "no render")

let test_render_scale () =
  let art = Render.render ~scale:2 (Leaf.sram_6t ()) in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' art) in
  Alcotest.(check int) "10 rows at scale 2" 10 (List.length lines)

let test_pla_phantom_scales () =
  let small = Leaf.pla ~n_inputs:4 ~n_outputs:4 ~n_terms:10 in
  let big = Leaf.pla ~n_inputs:12 ~n_outputs:19 ~n_terms:98 in
  Alcotest.(check bool) "bigger pla bigger cell" true
    (Cell.area big > Cell.area small);
  Alcotest.(check int) "ports = ins + outs" (12 + 19)
    (List.length big.Cell.ports)

let () =
  Alcotest.run "layout"
    [ ( "port",
        [ Alcotest.test_case "edge transform" `Quick test_port_edge_transform ]
      )
    ; ( "cell",
        [ Alcotest.test_case "basics" `Quick test_cell_basics
        ; Alcotest.test_case "leaf drc" `Quick test_leaf_cells_drc_clean
        ; Alcotest.test_case "transform roundtrip" `Quick
            test_cell_transform_roundtrip
        ] )
    ; ( "tile",
        [ Alcotest.test_case "hstack" `Quick test_hstack_abutment
        ; Alcotest.test_case "mirrored rails" `Quick
            test_vstack_mirrored_rails_shared
        ; Alcotest.test_case "abutting ports" `Quick test_abutting_ports
        ] )
    ; ( "macro",
        [ Alcotest.test_case "area/count" `Quick test_macro_area_and_count
        ; Alcotest.test_case "flatten" `Quick test_macro_flatten_matches_symbolic
        ; Alcotest.test_case "flatten limit" `Quick test_macro_flatten_limit
        ] )
    ; ( "cif",
        [ Alcotest.test_case "of_cell" `Quick test_cif_of_cell
        ; Alcotest.test_case "of_macro" `Quick test_cif_of_macro_hierarchy
        ; Alcotest.test_case "pla phantom" `Quick test_pla_phantom_scales
        ; Alcotest.test_case "pla programmed" `Quick test_pla_programmed_geometry
        ; Alcotest.test_case "pla from controller" `Quick
            test_pla_programmed_from_controller
        ] )
    ; ( "render",
        [ Alcotest.test_case "6T cell" `Quick test_render_6t
        ; Alcotest.test_case "scale" `Quick test_render_scale
        ] )
    ; ( "cif reader",
        [ Alcotest.test_case "cell roundtrip" `Quick test_cif_roundtrip_cell
        ; Alcotest.test_case "macro roundtrip" `Quick test_cif_roundtrip_macro
        ; Alcotest.test_case "rejects garbage" `Quick
            test_cif_reader_rejects_garbage
        ] )
    ]
