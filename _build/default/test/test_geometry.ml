(* Unit and property tests for the geometry substrate. *)

module P = Bisram_geometry.Point
module O = Bisram_geometry.Orient
module R = Bisram_geometry.Rect
module T = Bisram_geometry.Transform

let point = Alcotest.testable P.pp P.equal
let rect = Alcotest.testable R.pp R.equal
let orient = Alcotest.testable O.pp O.equal

(* ------------------------------------------------------------------ *)
(* Point *)

let test_point_algebra () =
  let a = P.make 3 4 and b = P.make (-1) 2 in
  Alcotest.check point "add" (P.make 2 6) (P.add a b);
  Alcotest.check point "sub" (P.make 4 2) (P.sub a b);
  Alcotest.check point "neg" (P.make (-3) (-4)) (P.neg a);
  Alcotest.check point "scale" (P.make 9 12) (P.scale 3 a);
  Alcotest.check Alcotest.int "dist2" 20 (P.dist2 a b);
  Alcotest.check Alcotest.int "manhattan" 6 (P.manhattan a b)

(* ------------------------------------------------------------------ *)
(* Orient: group structure *)

let test_orient_identity () =
  List.iter
    (fun o ->
      Alcotest.check orient "left id" o (O.compose O.R0 o);
      Alcotest.check orient "right id" o (O.compose o O.R0))
    O.all

let test_orient_inverse () =
  List.iter
    (fun o ->
      Alcotest.check orient "o^-1 o = id" O.R0 (O.compose (O.inverse o) o);
      Alcotest.check orient "o o^-1 = id" O.R0 (O.compose o (O.inverse o)))
    O.all

let test_orient_rotation_order () =
  let r2 = O.compose O.R90 O.R90 in
  Alcotest.check orient "R90^2 = R180" O.R180 r2;
  Alcotest.check orient "R90^4 = R0" O.R0 (O.compose r2 r2)

let test_orient_apply () =
  let p = P.make 2 1 in
  Alcotest.check point "R90" (P.make (-1) 2) (O.apply O.R90 p);
  Alcotest.check point "R180" (P.make (-2) (-1)) (O.apply O.R180 p);
  Alcotest.check point "MX flips y" (P.make 2 (-1)) (O.apply O.Mx p);
  Alcotest.check point "MY flips x" (P.make (-2) 1) (O.apply O.My p)

let test_orient_string_roundtrip () =
  List.iter
    (fun o ->
      match O.of_string (O.to_string o) with
      | Some o' -> Alcotest.check orient "roundtrip" o o'
      | None -> Alcotest.fail "of_string failed")
    O.all;
  Alcotest.(check (option orient)) "garbage" None (O.of_string "R45")

(* ------------------------------------------------------------------ *)
(* Rect *)

let test_rect_normalization () =
  let r = R.make 5 7 1 2 in
  Alcotest.check rect "normalized" (R.make 1 2 5 7) r;
  Alcotest.check Alcotest.int "width" 4 (R.width r);
  Alcotest.check Alcotest.int "height" 5 (R.height r);
  Alcotest.check Alcotest.int "area" 20 (R.area r)

let test_rect_contains () =
  let outer = R.make 0 0 10 10 and inner = R.make 2 2 8 8 in
  Alcotest.check Alcotest.bool "contains" true (R.contains ~outer ~inner);
  Alcotest.check Alcotest.bool "not contains" false
    (R.contains ~outer:inner ~inner:outer);
  Alcotest.check Alcotest.bool "edge point" true
    (R.contains_point outer (P.make 10 10));
  Alcotest.check Alcotest.bool "outside point" false
    (R.contains_point outer (P.make 11 10))

let test_rect_overlap_vs_touch () =
  let a = R.make 0 0 4 4 and b = R.make 4 0 8 4 and c = R.make 5 0 9 4 in
  Alcotest.check Alcotest.bool "shared edge touches" true (R.touches a b);
  Alcotest.check Alcotest.bool "shared edge no overlap" false (R.overlaps a b);
  Alcotest.check Alcotest.bool "disjoint no touch" false (R.touches a c);
  Alcotest.check Alcotest.bool "abuts" true (R.abuts a b);
  Alcotest.check Alcotest.bool "corner contact is not abutment" false
    (R.abuts a (R.make 4 4 8 8))

let test_rect_inter_join () =
  let a = R.make 0 0 6 6 and b = R.make 4 4 10 10 in
  (match R.inter a b with
  | Some i -> Alcotest.check rect "inter" (R.make 4 4 6 6) i
  | None -> Alcotest.fail "expected intersection");
  Alcotest.check rect "join" (R.make 0 0 10 10) (R.join a b);
  Alcotest.check rect "bbox"
    (R.make (-2) 0 10 10)
    (R.bbox [ a; b; R.make (-2) 1 0 2 ])

let test_rect_inflate () =
  let r = R.make 2 2 8 8 in
  Alcotest.check rect "grow" (R.make 0 0 10 10) (R.inflate 2 r);
  Alcotest.check rect "shrink" (R.make 4 4 6 6) (R.inflate (-2) r);
  (* Over-shrinking collapses to the center rather than denormalizing. *)
  let collapsed = R.inflate (-10) r in
  Alcotest.check Alcotest.bool "collapsed empty" true (R.is_empty collapsed)

(* ------------------------------------------------------------------ *)
(* Transform *)

let test_transform_compose_apply () =
  let t1 = T.make O.R90 (P.make 10 0) and t2 = T.translation (P.make 1 2) in
  let p = P.make 3 4 in
  Alcotest.check point "compose = sequential"
    (T.apply t1 (T.apply t2 p))
    (T.apply (T.compose t1 t2) p)

let test_transform_inverse () =
  let t = T.make O.Mx90 (P.make 7 (-3)) in
  let p = P.make 5 11 in
  Alcotest.check point "t^-1 t = id" p (T.apply (T.inverse t) (T.apply t p))

let test_transform_rect () =
  let t = T.make O.R90 (P.make 10 0) in
  let r = R.make 0 0 4 2 in
  let r' = T.apply_rect t r in
  Alcotest.check rect "rotated+translated" (R.make 8 0 10 4) r';
  Alcotest.check Alcotest.int "area preserved" (R.area r) (R.area r')

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_point =
  QCheck.map
    (fun (x, y) -> P.make x y)
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))

let arb_orient = QCheck.oneofl O.all

let arb_rect =
  QCheck.map
    (fun (p, w, h) -> R.of_size ~w ~h p)
    QCheck.(triple arb_point (int_range 0 500) (int_range 0 500))

let prop_orient_preserves_dist2 =
  QCheck.Test.make ~name:"orientations preserve squared distance" ~count:300
    QCheck.(triple arb_orient arb_point arb_point)
    (fun (o, a, b) -> P.dist2 a b = P.dist2 (O.apply o a) (O.apply o b))

let prop_orient_group_closed =
  QCheck.Test.make ~name:"orientation composition closed and associative"
    ~count:300
    QCheck.(triple arb_orient arb_orient arb_orient)
    (fun (a, b, c) ->
      O.equal (O.compose (O.compose a b) c) (O.compose a (O.compose b c)))

let prop_rect_transform_area =
  QCheck.Test.make ~name:"rect transform preserves area" ~count:300
    QCheck.(pair arb_orient arb_rect)
    (fun (o, r) -> R.area (R.transform o r) = R.area r)

let prop_join_contains_both =
  QCheck.Test.make ~name:"join contains both operands" ~count:300
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) ->
      let j = R.join a b in
      R.contains ~outer:j ~inner:a && R.contains ~outer:j ~inner:b)

let prop_inter_contained =
  QCheck.Test.make ~name:"intersection contained in both operands" ~count:300
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) ->
      match R.inter a b with
      | None -> not (R.touches a b)
      | Some i -> R.contains ~outer:a ~inner:i && R.contains ~outer:b ~inner:i)

let prop_transform_roundtrip =
  QCheck.Test.make ~name:"transform inverse round-trips rects" ~count:300
    QCheck.(triple arb_orient arb_point arb_rect)
    (fun (o, d, r) ->
      let t = T.make o d in
      R.equal r (T.apply_rect (T.inverse t) (T.apply_rect t r)))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_orient_preserves_dist2
    ; prop_orient_group_closed
    ; prop_rect_transform_area
    ; prop_join_contains_both
    ; prop_inter_contained
    ; prop_transform_roundtrip
    ]

let () =
  Alcotest.run "geometry"
    [ ( "point",
        [ Alcotest.test_case "algebra" `Quick test_point_algebra ] )
    ; ( "orient",
        [ Alcotest.test_case "identity" `Quick test_orient_identity
        ; Alcotest.test_case "inverse" `Quick test_orient_inverse
        ; Alcotest.test_case "rotation order" `Quick test_orient_rotation_order
        ; Alcotest.test_case "apply" `Quick test_orient_apply
        ; Alcotest.test_case "string roundtrip" `Quick
            test_orient_string_roundtrip
        ] )
    ; ( "rect",
        [ Alcotest.test_case "normalization" `Quick test_rect_normalization
        ; Alcotest.test_case "contains" `Quick test_rect_contains
        ; Alcotest.test_case "overlap vs touch" `Quick test_rect_overlap_vs_touch
        ; Alcotest.test_case "inter/join" `Quick test_rect_inter_join
        ; Alcotest.test_case "inflate" `Quick test_rect_inflate
        ] )
    ; ( "transform",
        [ Alcotest.test_case "compose/apply" `Quick test_transform_compose_apply
        ; Alcotest.test_case "inverse" `Quick test_transform_inverse
        ; Alcotest.test_case "rect" `Quick test_transform_rect
        ] )
    ; ("properties", properties)
    ]
