(* Tests for the circuit-analysis substrate: Elmore, transient, sizing. *)

module C = Bisram_spice.Circuit
module El = Bisram_spice.Elmore
module Tr = Bisram_spice.Transient
module Sz = Bisram_spice.Sizing
module E = Bisram_tech.Electrical
module Pr = Bisram_tech.Process

let e07 = Pr.cda_07u3m1p.Pr.electrical
let feature_m = 0.7e-6

(* ------------------------------------------------------------------ *)
(* Elmore *)

let test_elmore_single_rc () =
  (* One segment: delay = rdrive*c + r*c. *)
  let t = El.create ~rdrive:1000.0 in
  let n = El.add_segment t ~parent:0 ~r:500.0 ~c:1e-12 in
  Alcotest.(check (float 1e-18)) "single rc" 1.5e-9 (El.delay t n)

let test_elmore_shared_trunk () =
  (* Two leaves off a trunk: trunk resistance sees both caps. *)
  let t = El.create ~rdrive:0.0 in
  let trunk = El.add_segment t ~parent:0 ~r:100.0 ~c:0.0 in
  let leaf1 = El.add_segment t ~parent:trunk ~r:0.0 ~c:1e-12 in
  let _leaf2 = El.add_segment t ~parent:trunk ~r:0.0 ~c:1e-12 in
  Alcotest.(check (float 1e-18)) "trunk sees 2pF" 0.2e-9 (El.delay t leaf1)

let test_elmore_add_cap () =
  let t = El.create ~rdrive:1000.0 in
  let n = El.add_segment t ~parent:0 ~r:0.0 ~c:1e-12 in
  El.add_cap t n 1e-12;
  Alcotest.(check (float 1e-18)) "extra cap" 2e-9 (El.delay t n)

let test_elmore_max_delay () =
  let t = El.create ~rdrive:100.0 in
  let a = El.add_segment t ~parent:0 ~r:100.0 ~c:1e-12 in
  let b = El.add_segment t ~parent:a ~r:100.0 ~c:1e-12 in
  Alcotest.(check (float 1e-18)) "max is deepest" (El.delay t b) (El.max_delay t)

let test_elmore_rc_line () =
  Alcotest.(check (float 1e-18))
    "line formula" (1000.0 *. 2e-12 +. 500.0 *. (0.5e-12 +. 1e-12))
    (El.rc_line ~rdrive:1000.0 ~r:500.0 ~c:1e-12 ~cload:1e-12)

(* ------------------------------------------------------------------ *)
(* Transient *)

let test_transient_rc_charge () =
  (* RC charging through a resistor from a stepped source: after 5 tau
     the node is at Vdd. *)
  let ckt = C.create e07 in
  let src = C.fresh_net ~name:"in" ckt in
  let out = C.fresh_net ~name:"out" ckt in
  let r = 1000.0 and cap = 1e-12 in
  C.add ckt (C.Resistor { a = src; b = out; ohms = r });
  C.add ckt (C.Capacitor { a = out; b = C.gnd; farads = cap });
  let tau = r *. cap in
  let res =
    Tr.simulate ckt ~feature_m
      ~sources:[ (src, Tr.step ~vdd:5.0 ~at:0.0) ]
      ~tstop:(10.0 *. tau) ~dt:(tau /. 50.0)
  in
  Alcotest.(check bool) "charged to Vdd" true (abs_float (Tr.final res out -. 5.0) < 0.05);
  (* 50% crossing of an RC step is at 0.69 tau. *)
  match Tr.crossing (Tr.waveform res out) ~level:2.5 ~rising:true with
  | Some t -> Alcotest.(check bool) "tau*ln2" true (abs_float (t -. 0.693 *. tau) < 0.1 *. tau)
  | None -> Alcotest.fail "never crossed 50%"

let make_inverter ckt ~input ~output g =
  C.add ckt
    (C.Mos
       { kind = C.Nmos
       ; gate = input
       ; drain = output
       ; source = C.gnd
       ; w = g.Sz.wn
       ; l = g.Sz.l
       });
  C.add ckt
    (C.Mos
       { kind = C.Pmos
       ; gate = input
       ; drain = output
       ; source = C.vdd_net ckt
       ; w = g.Sz.wp
       ; l = g.Sz.l
       })

let test_transient_inverter () =
  let ckt = C.create e07 in
  let input = C.fresh_net ~name:"a" ckt in
  let output = C.fresh_net ~name:"y" ckt in
  let g = Sz.balanced e07 ~feature_m ~drive:1.0 in
  make_inverter ckt ~input ~output g;
  C.add ckt (C.Capacitor { a = output; b = C.gnd; farads = 50e-15 });
  let res =
    Tr.simulate ckt ~feature_m
      ~sources:[ (input, Tr.step ~vdd:5.0 ~at:1e-9) ]
      ~tstop:20e-9 ~dt:0.02e-9
  in
  (* Before the input step the output floats up through the PMOS (input
     starts low), so at t=1ns output is high; after it, output falls. *)
  Alcotest.(check bool) "output low at end" true (Tr.final res output < 0.1);
  let tin = Tr.crossing (Tr.waveform res input) ~level:2.5 ~rising:true in
  let tout = Tr.crossing (Tr.waveform res output) ~level:2.5 ~rising:false in
  match (tin, tout) with
  | Some ti, Some to_ ->
      let d = to_ -. ti in
      Alcotest.(check bool)
        (Printf.sprintf "inverter delay sane (%.0f ps)" (d *. 1e12))
        true
        (d > 1e-12 && d < 5e-9)
  | _ -> Alcotest.fail "no output transition"

let test_transient_inverter_chain_inverts () =
  (* Two inverters in series restore polarity. *)
  let ckt = C.create e07 in
  let a = C.fresh_net ckt in
  let b = C.fresh_net ckt in
  let y = C.fresh_net ckt in
  let g = Sz.balanced e07 ~feature_m ~drive:2.0 in
  make_inverter ckt ~input:a ~output:b g;
  make_inverter ckt ~input:b ~output:y g;
  let res =
    Tr.simulate ckt ~feature_m
      ~sources:[ (a, Tr.step ~vdd:5.0 ~at:0.5e-9) ]
      ~tstop:10e-9 ~dt:0.02e-9
  in
  Alcotest.(check bool) "middle low" true (Tr.final res b < 0.1);
  Alcotest.(check bool) "out high" true (Tr.final res y > 4.9)

(* ------------------------------------------------------------------ *)
(* Sizing *)

let test_sizing_balanced () =
  let g = Sz.balanced e07 ~feature_m ~drive:1.0 in
  let rn = Sz.rpull_down e07 g and rp = Sz.rpull_up e07 g in
  Alcotest.(check bool)
    (Printf.sprintf "balanced within 15%% (rn=%.0f rp=%.0f)" rn rp)
    true
    (abs_float (rn -. rp) /. rn < 0.15);
  Alcotest.(check bool) "wp > wn" true (g.Sz.wp > g.Sz.wn)

let test_sizing_stacks () =
  let g = Sz.balanced e07 ~feature_m ~drive:1.0 in
  let nand3 = Sz.nand_stack g ~n:3 in
  Alcotest.(check (float 1e-12)) "nand3 wn tripled" (3.0 *. g.Sz.wn) nand3.Sz.wn;
  Alcotest.(check (float 1e-12)) "nand3 wp kept" g.Sz.wp nand3.Sz.wp;
  let nor2 = Sz.nor_stack g ~n:2 in
  Alcotest.(check (float 1e-12)) "nor2 wp doubled" (2.0 *. g.Sz.wp) nor2.Sz.wp

let test_sizing_buffer_chain () =
  let cin = 5e-15 in
  let chain_small = Sz.buffer_chain e07 ~feature_m ~cin ~cload:10e-15 in
  Alcotest.(check bool) "small load one stage" true (List.length chain_small = 1);
  let chain_big = Sz.buffer_chain e07 ~feature_m ~cin ~cload:5e-12 in
  Alcotest.(check bool) "big load multiple stages" true
    (List.length chain_big > 1);
  (* sizes must be increasing *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a.Sz.wn <= b.Sz.wn && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone sizes" true (increasing chain_big)

let prop_inverter_delay_monotone_load =
  QCheck.Test.make ~name:"inverter delay monotone in load" ~count:100
    QCheck.(pair (float_range 1.0 100.0) (float_range 1.0 100.0))
    (fun (c1, c2) ->
      let g = Sz.balanced e07 ~feature_m ~drive:2.0 in
      let d c = Sz.inverter_delay e07 ~feature_m g ~cload:(c *. 1e-15) in
      if c1 <= c2 then d c1 <= d c2 else d c1 >= d c2)

let prop_buffer_chain_nonempty =
  QCheck.Test.make ~name:"buffer chain never empty" ~count:100
    QCheck.(pair (float_range 0.5 50.0) (float_range 0.1 10000.0))
    (fun (cin_f, cload_f) ->
      Sz.buffer_chain e07 ~feature_m ~cin:(cin_f *. 1e-15)
        ~cload:(cload_f *. 1e-15)
      <> [])

let () =
  Alcotest.run "spice"
    [ ( "elmore",
        [ Alcotest.test_case "single rc" `Quick test_elmore_single_rc
        ; Alcotest.test_case "shared trunk" `Quick test_elmore_shared_trunk
        ; Alcotest.test_case "add cap" `Quick test_elmore_add_cap
        ; Alcotest.test_case "max delay" `Quick test_elmore_max_delay
        ; Alcotest.test_case "rc line" `Quick test_elmore_rc_line
        ] )
    ; ( "transient",
        [ Alcotest.test_case "rc charge" `Quick test_transient_rc_charge
        ; Alcotest.test_case "inverter" `Quick test_transient_inverter
        ; Alcotest.test_case "chain inverts" `Quick
            test_transient_inverter_chain_inverts
        ] )
    ; ( "sizing",
        [ Alcotest.test_case "balanced" `Quick test_sizing_balanced
        ; Alcotest.test_case "stacks" `Quick test_sizing_stacks
        ; Alcotest.test_case "buffer chain" `Quick test_sizing_buffer_chain
        ; QCheck_alcotest.to_alcotest prop_inverter_delay_monotone_load
        ; QCheck_alcotest.to_alcotest prop_buffer_chain_nonempty
        ] )
    ]
