(* Tests for the Section III baseline schemes (Sawada, Chen-Sunada),
   the transparent-BIST extension and the critical-area analysis. *)

module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module F = Bisram_faults.Fault
module I = Bisram_faults.Injection
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module Engine = Bisram_bist.Engine
module Transparent = Bisram_bist.Transparent
module March = Bisram_bist.March
module Sawada = Bisram_baselines.Sawada
module CS = Bisram_baselines.Chen_sunada
module Repair = Bisram_bisr.Repair
module CA = Bisram_layout.Critical_area
module Leaf = Bisram_layout.Leaf
module R = Bisram_geometry.Rect

let cell r c = { F.row = r; F.col = c }
let org () = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 ()
let bgs8 = Datagen.required_backgrounds ~bpw:8

let with_faults faults =
  let m = Model.create (org ()) in
  Model.set_faults m faults;
  m

(* ------------------------------------------------------------------ *)
(* Sawada *)

let test_sawada_register () =
  let t = Sawada.create (org ()) in
  Alcotest.(check bool) "empty" true (Sawada.registered t = None);
  Alcotest.(check bool) "record" true (Sawada.record t ~addr:13 = `Ok);
  Alcotest.(check bool) "same addr ok" true (Sawada.record t ~addr:13 = `Ok);
  Alcotest.(check bool) "second addr overflows" true
    (Sawada.record t ~addr:14 = `Full)

let test_sawada_repairs_single_word () =
  (* one faulty cell = one faulty word address *)
  let m = with_faults [ F.Stuck_at (cell 3 9, true) ] in
  match Sawada.repair m Alg.ifa_9 ~backgrounds:bgs8 with
  | `Repaired addr ->
      Alcotest.(check int) "addr of row 3 col 1" 13 addr
  | `Passed_clean -> Alcotest.fail "fault missed"
  | `Unsuccessful -> Alcotest.fail "single word must be repairable"

let test_sawada_fails_two_words () =
  let m =
    with_faults [ F.Stuck_at (cell 3 9, true); F.Stuck_at (cell 7 0, true) ]
  in
  Alcotest.(check bool) "two words unrepairable" true
    (Sawada.repair m Alg.ifa_9 ~backgrounds:bgs8 = `Unsuccessful)

let test_sawada_static_analysis () =
  let o = org () in
  Alcotest.(check bool) "one word ok" true
    (Sawada.repairable o [ F.Stuck_at (cell 3 9, true) ]);
  (* two faults in the same word are fine *)
  Alcotest.(check bool) "same word ok" true
    (Sawada.repairable o
       [ F.Stuck_at (cell 3 9, true); F.Stuck_at (cell 3 13, true) ]);
  Alcotest.(check bool) "two words not" false
    (Sawada.repairable o
       [ F.Stuck_at (cell 3 9, true); F.Stuck_at (cell 7 0, true) ])

(* ------------------------------------------------------------------ *)
(* Chen-Sunada *)

let cs () = CS.create (org ()) ~subblocks:4 ~spare_blocks:1

let test_cs_creation () =
  let t = cs () in
  Alcotest.(check int) "blocks" 4 (CS.subblocks t);
  Alcotest.(check int) "words per block" 16 (CS.words_per_block t);
  Alcotest.(check int) "two backgrounds only" 2
    (List.length (CS.backgrounds ~bpw:8))

let cs_bgs = CS.backgrounds ~bpw:8

let test_cs_repairs_two_per_block () =
  (* two faulty words inside one subblock: captured by the registers *)
  let m =
    with_faults [ F.Stuck_at (cell 1 9, true); F.Stuck_at (cell 2 0, true) ]
  in
  match CS.repair (cs ()) m Alg.ifa_13 ~backgrounds:cs_bgs with
  | CS.Repaired { word_repairs; block_repairs } ->
      Alcotest.(check int) "word repairs" 2 word_repairs;
      Alcotest.(check int) "no block repairs" 0 block_repairs
  | CS.Passed_clean | CS.Unsuccessful -> Alcotest.fail "expected word repair"

let test_cs_excludes_dead_block () =
  (* three faulty words in one subblock exceed the two registers: the
     fault assembler diverts the whole block to the spare *)
  let m =
    with_faults
      [ F.Stuck_at (cell 0 9, true)
      ; F.Stuck_at (cell 1 0, true)
      ; F.Stuck_at (cell 2 5, true)
      ]
  in
  match CS.repair (cs ()) m Alg.ifa_13 ~backgrounds:cs_bgs with
  | CS.Repaired { block_repairs; _ } ->
      Alcotest.(check int) "block diverted" 1 block_repairs
  | CS.Passed_clean | CS.Unsuccessful -> Alcotest.fail "expected block repair"

let test_cs_fails_two_dead_blocks () =
  (* dead blocks in two subblocks but only one spare *)
  let m =
    with_faults
      (List.map (fun r -> F.Stuck_at (cell r 0, true)) [ 0; 1; 2 ]
      @ List.map (fun r -> F.Stuck_at (cell r 9, true)) [ 4; 5; 6 ])
  in
  Alcotest.(check bool) "unsuccessful" true
    (CS.repair (cs ()) m Alg.ifa_13 ~backgrounds:cs_bgs = CS.Unsuccessful)

let test_cs_static_analysis () =
  let t = cs () in
  Alcotest.(check bool) "2 per block ok" true
    (CS.repairable t [ F.Stuck_at (cell 1 9, true); F.Stuck_at (cell 2 0, true) ]);
  Alcotest.(check bool) "3 in one block -> needs spare block" true
    (CS.repairable t
       (List.map (fun r -> F.Stuck_at (cell r 0, true)) [ 0; 1; 2 ]));
  Alcotest.(check bool) "two dead blocks too many" false
    (CS.repairable t
       (List.map (fun r -> F.Stuck_at (cell r 0, true)) [ 0; 1; 2 ]
       @ List.map (fun r -> F.Stuck_at (cell r 9, true)) [ 4; 5; 6 ]))

let test_cs_delay_penalty_exceeds_tlb () =
  (* the sequential 2-register compare must cost more than BISRAMGEN's
     parallel TLB match for the same organization *)
  let o = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:4 () in
  let p = Bisram_tech.Process.cda_07u3m1p in
  let cs_delay = CS.delay_penalty p ~org:o in
  let tlb = Bisram_bisr.Tlb_timing.delay p ~org:o in
  Alcotest.(check bool)
    (Printf.sprintf "cs %.2f ns vs tlb match %.2f ns" (cs_delay *. 1e9)
       (tlb.Bisram_bisr.Tlb_timing.match_line *. 1e9))
    true
    (cs_delay > tlb.Bisram_bisr.Tlb_timing.match_line)

let test_bisramgen_repairs_what_cs_cannot () =
  (* five faulty words spread over one subblock's rows: Chen-Sunada
     needs a whole spare block; BISRAMGEN repairs them with row spares
     as long as they occupy <= 4 rows *)
  let faults =
    [ F.Stuck_at (cell 0 0, true)
    ; F.Stuck_at (cell 0 9, true)
    ; F.Stuck_at (cell 1 0, true)
    ; F.Stuck_at (cell 1 9, true)
    ; F.Stuck_at (cell 2 0, true)
    ]
  in
  let m = with_faults faults in
  (match Repair.run_reference m Alg.ifa_9 ~backgrounds:bgs8 with
  | Repair.Repaired rows, _ -> Alcotest.(check int) "3 rows" 3 (List.length rows)
  | _ -> Alcotest.fail "BISRAMGEN should repair");
  let t = CS.create (org ()) ~subblocks:4 ~spare_blocks:0 in
  Alcotest.(check bool) "CS without spare blocks cannot" false
    (CS.repairable t faults)

(* ------------------------------------------------------------------ *)
(* Transparent BIST *)

let random_contents m o rng =
  for a = 0 to o.Org.words - 1 do
    Model.write_word m a (Word.of_int ~width:o.Org.bpw (Random.State.int rng 256))
  done

let test_transparent_clean_preserves () =
  let o = org () in
  let m = Model.create o in
  let rng = Random.State.make [| 5 |] in
  random_contents m o rng;
  let r = Transparent.run_model m Alg.ifa_9 in
  Alcotest.(check bool) "no detection" false r.Transparent.detected;
  Alcotest.(check bool) "contents preserved" true r.Transparent.contents_preserved

let test_transparent_detects_saf () =
  let m = with_faults [ F.Stuck_at (cell 3 9, true) ] in
  let r = Transparent.run_model m Alg.ifa_9 in
  Alcotest.(check bool) "detected" true r.Transparent.detected

let test_transparent_detects_transition () =
  let m = with_faults [ F.Transition (cell 7 0, true) ] in
  let r = Transparent.run_model m Alg.ifa_9 in
  Alcotest.(check bool) "detected" true r.Transparent.detected

let test_transparent_ops_count () =
  (* IFA-9 drops its 1-op init element (12 -> 11); its last write is w1
     (complemented), so a restore write is appended: 12 total *)
  Alcotest.(check int) "IFA-9 transparent ops" 12
    (Transparent.transformed_ops_per_address Alg.ifa_9);
  (* a test ending complemented gains a restore write *)
  let t = March.of_string ~name:"t" "u(w0); u(r0,w1); u(r1)" in
  Alcotest.(check int) "restore appended" 4
    (Transparent.transformed_ops_per_address t)

let prop_transparent_preserves_random_contents =
  QCheck.Test.make ~name:"transparent BIST preserves arbitrary contents"
    ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let o = org () in
      let m = Model.create o in
      let rng = Random.State.make [| seed |] in
      random_contents m o rng;
      let r = Transparent.run_model m Alg.march_c_minus in
      (not r.Transparent.detected) && r.Transparent.contents_preserved)

(* ------------------------------------------------------------------ *)
(* Critical area *)

let test_union_area () =
  Alcotest.(check int) "disjoint" 8
    (CA.union_area [ R.make 0 0 2 2; R.make 3 0 5 2 ]);
  Alcotest.(check int) "overlapping" 7
    (CA.union_area [ R.make 0 0 2 2; R.make 1 0 3 2; R.make 0 0 1 3 ]);
  Alcotest.(check int) "empty" 0 (CA.union_area [])

let test_critical_area_gap () =
  (* two 10x2 wires separated by a 6-gap: a square defect of half-width
     r bridges them iff 2r > 6 *)
  let a = [ R.make 0 0 10 2 ] and b = [ R.make 0 8 10 10 ] in
  Alcotest.(check int) "r=2 none" 0 (CA.critical_area ~radius:2 ~a ~b);
  Alcotest.(check int) "r=3 touch only" 0 (CA.critical_area ~radius:3 ~a ~b);
  Alcotest.(check bool) "r=4 bridges" true (CA.critical_area ~radius:4 ~a ~b > 0)

let test_6t_power_short_near_zero () =
  (* the paper's claim: the 6T template has (near-)zero critical area
     for the fatal vdd/gnd short at realistic defect radii *)
  let c = Leaf.sram_6t () in
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "radius %d" r)
        0
        (CA.power_short c ~radius:r))
    [ 1; 2; 4; 6; 8 ];
  match CA.fatal_radius c with
  | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "fatal radius %d lambda large" r)
        true (r > 8)
  | None -> Alcotest.fail "rails must eventually short"

let () =
  Alcotest.run "baselines"
    [ ( "sawada",
        [ Alcotest.test_case "register" `Quick test_sawada_register
        ; Alcotest.test_case "repairs single word" `Quick
            test_sawada_repairs_single_word
        ; Alcotest.test_case "fails two words" `Quick test_sawada_fails_two_words
        ; Alcotest.test_case "static analysis" `Quick test_sawada_static_analysis
        ] )
    ; ( "chen-sunada",
        [ Alcotest.test_case "creation" `Quick test_cs_creation
        ; Alcotest.test_case "two per block" `Quick test_cs_repairs_two_per_block
        ; Alcotest.test_case "dead block" `Quick test_cs_excludes_dead_block
        ; Alcotest.test_case "two dead blocks" `Quick test_cs_fails_two_dead_blocks
        ; Alcotest.test_case "static analysis" `Quick test_cs_static_analysis
        ; Alcotest.test_case "delay penalty" `Quick
            test_cs_delay_penalty_exceeds_tlb
        ; Alcotest.test_case "capability gap" `Quick
            test_bisramgen_repairs_what_cs_cannot
        ] )
    ; ( "transparent",
        [ Alcotest.test_case "clean preserves" `Quick
            test_transparent_clean_preserves
        ; Alcotest.test_case "detects SAF" `Quick test_transparent_detects_saf
        ; Alcotest.test_case "detects TF" `Quick
            test_transparent_detects_transition
        ; Alcotest.test_case "ops count" `Quick test_transparent_ops_count
        ; QCheck_alcotest.to_alcotest prop_transparent_preserves_random_contents
        ] )
    ; ( "critical-area",
        [ Alcotest.test_case "union area" `Quick test_union_area
        ; Alcotest.test_case "gap bridging" `Quick test_critical_area_gap
        ; Alcotest.test_case "6T power short" `Quick
            test_6t_power_short_near_zero
        ] )
    ]
