(* Tests for the BISR library: TLB, two-pass repair, repairability
   analysis and TLB timing. *)

module Tlb = Bisram_bisr.Tlb
module Repair = Bisram_bisr.Repair
module Analysis = Bisram_bisr.Analysis
module Tlb_timing = Bisram_bisr.Tlb_timing
module Org = Bisram_sram.Org
module Word = Bisram_sram.Word
module Model = Bisram_sram.Model
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module F = Bisram_faults.Fault
module I = Bisram_faults.Injection
module Pr = Bisram_tech.Process

let cell r c = { F.row = r; F.col = c }
let small () = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 ()
let bgs8 = Datagen.required_backgrounds ~bpw:8

(* ------------------------------------------------------------------ *)
(* TLB *)

let test_tlb_basic_mapping () =
  let t = Tlb.create ~spares:4 ~regular_rows:16 in
  Alcotest.(check int) "unmapped passthrough" 7 (Tlb.remap t ~row:7);
  Alcotest.(check bool) "record" true (Tlb.record t ~row:7 = `Ok);
  Alcotest.(check int) "mapped to first spare" 16 (Tlb.remap t ~row:7);
  Alcotest.(check bool) "re-record is noop" true (Tlb.record t ~row:7 = `Ok);
  Alcotest.(check int) "entries" 1 (Tlb.entries t);
  Alcotest.(check bool) "second row" true (Tlb.record t ~row:3 = `Ok);
  Alcotest.(check int) "second spare" 17 (Tlb.remap t ~row:3);
  Alcotest.(check (list int)) "mapped rows in order" [ 7; 3 ] (Tlb.mapped_rows t)

let test_tlb_overflow () =
  let t = Tlb.create ~spares:2 ~regular_rows:16 in
  Alcotest.(check bool) "r1" true (Tlb.record t ~row:1 = `Ok);
  Alcotest.(check bool) "r2" true (Tlb.record t ~row:2 = `Ok);
  Alcotest.(check bool) "full" true (Tlb.is_full t);
  Alcotest.(check bool) "overflow flagged" true (Tlb.would_overflow t ~row:3);
  Alcotest.(check bool) "existing row no overflow" false
    (Tlb.would_overflow t ~row:1);
  Alcotest.(check bool) "record fails" true (Tlb.record t ~row:3 = `Full)

let test_tlb_remap_spare () =
  let t = Tlb.create ~spares:3 ~regular_rows:16 in
  ignore (Tlb.record t ~row:5);
  Alcotest.(check int) "spare 0" 16 (Tlb.remap t ~row:5);
  Alcotest.(check bool) "iterate" true (Tlb.remap_spare t ~row:5 = `Ok);
  Alcotest.(check int) "now spare 1" 17 (Tlb.remap t ~row:5);
  Alcotest.(check int) "two spares consumed" 2 (Tlb.entries t);
  Alcotest.(check (list int)) "still one mapped row" [ 5 ] (Tlb.mapped_rows t);
  Alcotest.(check bool) "still increasing" true
    (Tlb.allocation_is_strictly_increasing t)

let test_tlb_clear () =
  let t = Tlb.create ~spares:2 ~regular_rows:8 in
  ignore (Tlb.record t ~row:1);
  Tlb.clear t;
  Alcotest.(check int) "empty" 0 (Tlb.entries t);
  Alcotest.(check int) "passthrough again" 1 (Tlb.remap t ~row:1)

let prop_tlb_strictly_increasing =
  QCheck.Test.make ~name:"spare allocation strictly increasing" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 20) (int_range 0 15))
    (fun rows ->
      let t = Tlb.create ~spares:16 ~regular_rows:16 in
      List.iter (fun row -> ignore (Tlb.record t ~row)) rows;
      Tlb.allocation_is_strictly_increasing t)

let prop_tlb_distinct_spares =
  QCheck.Test.make ~name:"distinct rows get distinct spares" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 16) (int_range 0 63))
    (fun rows ->
      let t = Tlb.create ~spares:16 ~regular_rows:64 in
      List.iter (fun row -> ignore (Tlb.record t ~row)) rows;
      let mapped = Tlb.mapped_rows t in
      let spares = List.map (fun row -> Tlb.remap t ~row) mapped in
      List.length (List.sort_uniq Int.compare spares) = List.length spares)

(* ------------------------------------------------------------------ *)
(* Two-pass repair *)

let with_faults faults =
  let m = Model.create (small ()) in
  Model.set_faults m faults;
  m

let test_repair_clean () =
  let m = with_faults [] in
  let outcome, _, _ = Repair.run m Alg.ifa_9 ~backgrounds:bgs8 in
  Alcotest.(check bool) "clean" true (outcome = Repair.Passed_clean)

let test_repair_two_rows () =
  let m = with_faults
      [ F.Stuck_at (cell 3 9, true); F.Transition (cell 7 0, true) ]
  in
  let outcome, _, tlb = Repair.run m Alg.ifa_9 ~backgrounds:bgs8 in
  (match outcome with
  | Repair.Repaired rows -> Alcotest.(check (list int)) "rows" [ 3; 7 ] rows
  | other ->
      Alcotest.failf "expected repair, got %s"
        (Format.asprintf "%a" Repair.pp_outcome other));
  (* normal-mode accesses now divert and the RAM reads clean *)
  let w = Word.of_int ~width:8 0x5A in
  Model.write_word m 13 w;
  Alcotest.(check bool) "repaired read" true (Word.equal w (Model.read_word m 13));
  Alcotest.(check int) "two spares used" 2 (Tlb.entries tlb)

let test_repair_too_many_rows () =
  (* 5 faulty rows > 4 spares *)
  let faults =
    List.map (fun r -> F.Stuck_at (cell r 0, true)) [ 1; 3; 5; 7; 9 ]
  in
  let m = with_faults faults in
  let outcome, _, _ = Repair.run m Alg.ifa_9 ~backgrounds:bgs8 in
  Alcotest.(check bool) "unsuccessful" true
    (outcome = Repair.Repair_unsuccessful Repair.Too_many_faulty_rows)

let test_repair_faulty_spare_detected () =
  (* fault in spare row 16: pass 2 hits it after remap *)
  let spare = Org.rows (small ()) in
  let m =
    with_faults [ F.Stuck_at (cell 3 9, true); F.Stuck_at (cell spare 9, true) ]
  in
  let outcome, _, _ = Repair.run m Alg.ifa_9 ~backgrounds:bgs8 in
  Alcotest.(check bool) "second-pass failure" true
    (outcome = Repair.Repair_unsuccessful Repair.Fault_in_second_pass)

let test_repair_column_failure_unrepairable () =
  (* an entire column faulty swamps row redundancy *)
  let org = small () in
  let faults =
    List.init (Org.rows org) (fun r -> F.Stuck_at (cell r 5, true))
  in
  let m = with_faults faults in
  let outcome, _, _ = Repair.run m Alg.ifa_9 ~backgrounds:bgs8 in
  (match outcome with
  | Repair.Repair_unsuccessful _ -> ()
  | _ -> Alcotest.fail "column failure must be unrepairable");
  Alcotest.(check (list int)) "column flagged" [ 5 ]
    (Analysis.swamped_columns org faults)

let test_repair_reference_agrees () =
  let rng = Random.State.make [| 7 |] in
  let org = small () in
  for _ = 1 to 25 do
    let n = Random.State.int rng 7 in
    let faults =
      I.inject rng ~rows:(Org.rows org) ~cols:(Org.cols org)
        ~mix:I.default_mix ~n
    in
    let m1 = with_faults faults in
    let o1, _, _ = Repair.run m1 Alg.ifa_9 ~backgrounds:bgs8 in
    let m2 = with_faults faults in
    let o2, _ = Repair.run_reference m2 Alg.ifa_9 ~backgrounds:bgs8 in
    let tag = function
      | Repair.Passed_clean -> "clean"
      | Repair.Repaired _ -> "repaired"
      | Repair.Repair_unsuccessful _ -> "unsuccessful"
    in
    Alcotest.(check string) "controller = reference" (tag o2) (tag o1)
  done

let test_repair_iterated_fixes_faulty_spare () =
  (* one faulty row + one faulty spare: plain two-pass fails, iterated
     flow walks to the next spare *)
  let spare0 = Org.rows (small ()) in
  let faults =
    [ F.Stuck_at (cell 3 9, true); F.Stuck_at (cell spare0 9, true) ]
  in
  let m = with_faults faults in
  let o_plain, _ = Repair.run_reference m Alg.ifa_9 ~backgrounds:bgs8 in
  Alcotest.(check bool) "plain fails" true
    (o_plain = Repair.Repair_unsuccessful Repair.Fault_in_second_pass);
  let m2 = with_faults faults in
  let o_iter, tlb = Repair.run_iterated m2 Alg.ifa_9 ~backgrounds:bgs8 in
  (match o_iter with
  | Repair.Repaired rows -> Alcotest.(check (list int)) "row 3" [ 3 ] rows
  | other ->
      Alcotest.failf "iterated should repair: %s"
        (Format.asprintf "%a" Repair.pp_outcome other));
  Alcotest.(check int) "consumed two spares" 2 (Tlb.entries tlb);
  Alcotest.(check int) "row 3 on spare 1" (spare0 + 1) (Tlb.remap tlb ~row:3)

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_analysis_classify () =
  let org = small () in
  let spare = Org.rows org in
  let faults =
    [ F.Stuck_at (cell 0 0, true)
    ; F.Stuck_at (cell 0 5, true) (* same row *)
    ; F.Stuck_at (cell 9 2, false)
    ; F.Stuck_open (cell spare 1)
    ]
  in
  let v = Analysis.classify org faults in
  Alcotest.(check int) "regular rows" 2 v.Analysis.faulty_regular_rows;
  Alcotest.(check int) "spare rows" 1 v.Analysis.faulty_spare_rows;
  Alcotest.(check bool) "not strict-repairable" false
    (Analysis.repairable_strict org faults);
  Alcotest.(check bool) "iterated-repairable" true
    (Analysis.repairable_iterated org faults)

let prop_analysis_agrees_with_flow =
  (* the static strict predicate must match the dynamic two-pass flow
     for single-cell (non-coupling) faults *)
  QCheck.Test.make ~name:"static analysis matches two-pass flow" ~count:40
    QCheck.(int_range 0 8)
    (fun n ->
      let rng = Random.State.make [| n; 13 |] in
      let org = small () in
      let faults =
        I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
          ~mix:I.stuck_at_only ~n
      in
      (* drop faults that stick a cell at its background value for every
         background: stuck-at-0 and stuck-at-1 are both always detected
         by IFA-9, so no filtering needed *)
      let m = Model.create org in
      Model.set_faults m faults;
      let o, _ = Repair.run_reference m Alg.ifa_9 ~backgrounds:bgs8 in
      let dynamic_ok =
        match o with
        | Repair.Passed_clean | Repair.Repaired _ -> true
        | Repair.Repair_unsuccessful _ -> false
      in
      dynamic_ok = Analysis.repairable_strict org faults)

(* ------------------------------------------------------------------ *)
(* Hybrid row + word repair *)

module Hybrid = Bisram_bisr.Hybrid

let hyb () = Hybrid.create (small ()) ~word_registers:2

let test_hybrid_plan_prefers_rows_for_clusters () =
  (* rows 1-4 carry two faulty words each (ranked onto the four spare
     rows); the isolated words in rows 9 and 11 go to the registers *)
  let faulty_words =
    [ 4; 5 (* row 1 *); 8; 9 (* row 2 *); 12; 13 (* row 3 *); 16; 17
      (* row 4 *); 37 (* row 9 *); 45 (* row 11 *)
    ]
  in
  match Hybrid.plan (hyb ()) ~faulty_words with
  | Some plan ->
      Alcotest.(check (list int)) "clustered rows to spare rows" [ 1; 2; 3; 4 ]
        plan.Hybrid.row_assignments;
      Alcotest.(check (list int)) "singles to registers" [ 37; 45 ]
        plan.Hybrid.word_assignments
  | None -> Alcotest.fail "plannable pattern rejected"

let test_hybrid_beats_both_pure_schemes () =
  let org = small () in
  (* 5 scattered single-word faults in distinct rows: pure row sparing
     (4 spares) fails; hybrid (4 rows + 2 registers) succeeds *)
  let scattered =
    List.map (fun r -> F.Stuck_at (cell r 0, true)) [ 1; 3; 5; 7; 9 ]
  in
  Alcotest.(check bool) "row sparing fails" false
    (Analysis.repairable_strict org scattered);
  Alcotest.(check bool) "hybrid repairs" true
    (Hybrid.repairable (hyb ()) scattered);
  (* 4 killed rows: word registers alone could never, hybrid uses rows *)
  let row_kill =
    List.concat_map
      (fun r -> List.init (Org.cols org) (fun c -> F.Stuck_at (cell r c, true)))
      [ 2; 6; 10; 14 ]
  in
  Alcotest.(check bool) "hybrid absorbs row kills" true
    (Hybrid.repairable (hyb ()) row_kill)

let test_hybrid_rejects_overflow () =
  (* 7 scattered singles: 4 rows + 2 registers cannot hold them *)
  let scattered =
    List.map (fun r -> F.Stuck_at (cell r 0, true)) [ 1; 2; 3; 5; 7; 9; 11 ]
  in
  Alcotest.(check bool) "overflow rejected" false
    (Hybrid.repairable (hyb ()) scattered)

let test_hybrid_end_to_end_repair () =
  let m =
    with_faults
      (List.map (fun r -> F.Stuck_at (cell r 0, true)) [ 1; 3; 5; 7; 9 ])
  in
  match Hybrid.repair (hyb ()) m Alg.ifa_9 ~backgrounds:bgs8 with
  | `Repaired plan ->
      Alcotest.(check int) "4 spare rows used" 4
        (List.length plan.Hybrid.row_assignments);
      Alcotest.(check int) "1 register used" 1
        (List.length plan.Hybrid.word_assignments)
  | `Passed_clean -> Alcotest.fail "faults missed"
  | `Unsuccessful -> Alcotest.fail "hybrid should repair"

let test_hybrid_delay_still_parallel () =
  let org = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:4 () in
  let p = Pr.cda_07u3m1p in
  let hybrid_delay = Hybrid.delay_penalty p ~org ~word_registers:2 in
  let tlb_total = Tlb_timing.total (Tlb_timing.delay p ~org) in
  Alcotest.(check bool)
    (Printf.sprintf "hybrid %.2f ns close to TLB %.2f ns"
       (hybrid_delay *. 1e9) (tlb_total *. 1e9))
    true
    (hybrid_delay < 1.6 *. tlb_total)

(* ------------------------------------------------------------------ *)
(* TLB timing *)

let test_tlb_delay_magnitude () =
  (* paper: ~1.2 ns with 4 spares at 0.7 um *)
  let org = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:4 () in
  let d = Tlb_timing.total (Tlb_timing.delay Pr.cda_07u3m1p ~org) in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f ns in 0.3..2.5" (d *. 1e9))
    true
    (d > 0.3e-9 && d < 2.5e-9)

let test_tlb_delay_order_of_magnitude_below_access () =
  let org = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:4 () in
  let d = Tlb_timing.total (Tlb_timing.delay Pr.cda_07u3m1p ~org) in
  let access =
    Bisram_sram.Timing.total
      (Bisram_sram.Timing.access_time Pr.cda_07u3m1p org ~drive:2.0)
  in
  Alcotest.(check bool) "much smaller than access" true (d < 0.5 *. access)

let test_tlb_masking_vs_spares () =
  let p = Pr.cda_07u3m1p in
  let mk s = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:s () in
  Alcotest.(check bool) "4 spares maskable" true
    (Tlb_timing.maskable p ~org:(mk 4) ~drive:2.0);
  Alcotest.(check bool) "16 spares not guaranteed" false
    (Tlb_timing.maskable p ~org:(mk 16) ~drive:2.0)

let test_tlb_delay_grows_with_spares () =
  let p = Pr.cda_07u3m1p in
  let d s =
    Tlb_timing.total
      (Tlb_timing.delay p ~org:(Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:s ()))
  in
  Alcotest.(check bool) "monotone" true (d 4 < d 8 && d 8 < d 16)

let () =
  Alcotest.run "bisr"
    [ ( "tlb",
        [ Alcotest.test_case "basic mapping" `Quick test_tlb_basic_mapping
        ; Alcotest.test_case "overflow" `Quick test_tlb_overflow
        ; Alcotest.test_case "remap spare" `Quick test_tlb_remap_spare
        ; Alcotest.test_case "clear" `Quick test_tlb_clear
        ; QCheck_alcotest.to_alcotest prop_tlb_strictly_increasing
        ; QCheck_alcotest.to_alcotest prop_tlb_distinct_spares
        ] )
    ; ( "repair",
        [ Alcotest.test_case "clean" `Quick test_repair_clean
        ; Alcotest.test_case "two rows" `Quick test_repair_two_rows
        ; Alcotest.test_case "too many rows" `Quick test_repair_too_many_rows
        ; Alcotest.test_case "faulty spare" `Quick
            test_repair_faulty_spare_detected
        ; Alcotest.test_case "column failure" `Quick
            test_repair_column_failure_unrepairable
        ; Alcotest.test_case "controller = reference" `Slow
            test_repair_reference_agrees
        ; Alcotest.test_case "iterated repair" `Quick
            test_repair_iterated_fixes_faulty_spare
        ] )
    ; ( "analysis",
        [ Alcotest.test_case "classify" `Quick test_analysis_classify
        ; QCheck_alcotest.to_alcotest prop_analysis_agrees_with_flow
        ] )
    ; ( "hybrid",
        [ Alcotest.test_case "plan" `Quick test_hybrid_plan_prefers_rows_for_clusters
        ; Alcotest.test_case "beats both" `Quick test_hybrid_beats_both_pure_schemes
        ; Alcotest.test_case "overflow" `Quick test_hybrid_rejects_overflow
        ; Alcotest.test_case "end to end" `Quick test_hybrid_end_to_end_repair
        ; Alcotest.test_case "delay parallel" `Quick
            test_hybrid_delay_still_parallel
        ] )
    ; ( "timing",
        [ Alcotest.test_case "magnitude" `Quick test_tlb_delay_magnitude
        ; Alcotest.test_case "below access time" `Quick
            test_tlb_delay_order_of_magnitude_below_access
        ; Alcotest.test_case "masking vs spares" `Quick test_tlb_masking_vs_spares
        ; Alcotest.test_case "grows with spares" `Quick
            test_tlb_delay_grows_with_spares
        ] )
    ]
