(* Full gate-level BIST/BISR integration: the compiled FSM, the ADDGEN
   counter, the DATAGEN Johnson counter, the read comparator and the TLB
   CAM all run as gate netlists, wired together exactly as the module's
   datapath wires them, against the fault-injected behavioural array.
   The complete two-pass flow must agree with the behavioural reference
   on outcome and on the repaired rows. *)

module N = Bisram_gates.Netlist
module B = Bisram_gates.Builders
module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module March = Bisram_bist.March
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module Controller = Bisram_bist.Controller
module Pla_gates = Bisram_bist.Pla_gates
module Repair = Bisram_bisr.Repair
module F = Bisram_faults.Fault
module I = Bisram_faults.Injection

type outcome = Clean | Repaired of int list | Fail

let bits_for = B.bits_for

let bools_of_int ~bits v =
  List.init bits (fun i -> (v lsr i) land 1 = 1)

let int_of_outputs outs ~bits ~prefix =
  let v = ref 0 in
  for i = 0 to bits - 1 do
    if List.assoc (Printf.sprintf "%s%d" prefix i) outs then
      v := !v lor (1 lsl i)
  done;
  !v

(* drive the whole BIST engine in gates *)
let run_gate_bist org faults =
  let words = org.Org.words in
  let bpw = org.Org.bpw in
  let regular = Org.rows org in
  let abits = max 1 (bits_for words) in
  let rbits = max 1 (bits_for regular) in
  let backgrounds = Datagen.required_backgrounds ~bpw in
  let nbgs = List.length backgrounds in
  let ctl = Controller.compile Alg.ifa_9 ~words ~backgrounds in
  (* --- the five netlists --- *)
  let fsm = N.simulate (Pla_gates.controller_netlist ctl) in
  let addgen = N.simulate (B.up_down_counter ~bits:abits) in
  let johnson = N.simulate (B.johnson_counter ~bits:bpw) in
  let cmp = N.simulate (B.comparator ~bits:bpw) in
  let cam = N.simulate (B.cam ~entries:org.Org.spares ~bits:rbits) in
  (* --- behavioural array --- *)
  let model = Model.create org in
  Model.set_faults model faults;
  (* --- datapath registers held by the harness --- *)
  let dir_up = ref true in
  let cmp_fail = ref false in
  let remap_enabled = ref false in
  let bg_index = ref 0 in
  let waited = ref false in
  let recorded = ref [] in
  (* --- gate-block helpers --- *)
  let addgen_idle =
    [ ("reset_up", false); ("reset_down", false); ("en", false); ("up", true) ]
  in
  let addgen_value () = int_of_outputs (N.eval addgen addgen_idle) ~bits:abits ~prefix:"q" in
  let johnson_idle = [ ("reset", false); ("en", false) ] in
  let background () =
    let outs = N.eval johnson johnson_idle in
    Word.of_bits (Array.init bpw (fun i -> List.assoc (Printf.sprintf "q%d" i) outs))
  in
  let cam_inputs ~row ~write =
    ("write", write)
    :: List.mapi (fun i b -> (Printf.sprintf "key%d" i, b)) (bools_of_int ~bits:rbits row)
  in
  let cam_lookup row =
    let outs = N.eval cam (cam_inputs ~row ~write:false) in
    ( List.assoc "hit" outs,
      int_of_outputs outs ~bits:(bits_for org.Org.spares) ~prefix:"idx",
      List.assoc "full" outs )
  in
  let current_row () = addgen_value () / org.Org.bpc in
  let phys_row row =
    if !remap_enabled then begin
      let hit, idx, _ = cam_lookup row in
      if hit then regular + idx else row
    end
    else row
  in
  let compare_words expected got =
    let inputs =
      List.concat
        (List.init bpw (fun i ->
             [ (Printf.sprintf "a%d" i, Word.get expected i)
             ; (Printf.sprintf "b%d" i, Word.get got i)
             ]))
    in
    List.assoc "neq" (N.eval cmp inputs)
  in
  (* --- condition sampling for the FSM --- *)
  let conds () =
    [ ("test_enable", true)
    ; ("cmp_fail", !cmp_fail)
    ; ( "elem_done",
        let v = addgen_value () in
        if !dir_up then v = words - 1 else v = 0 )
    ; ("bg_done", !bg_index = nbgs - 1)
    ; ( "tlb_full",
        let hit, _, full = cam_lookup (current_row ()) in
        (not hit) && full )
    ; ("ret_ack", !waited)
    ]
  in
  let exec_work outs =
    let on name = List.assoc name outs in
    let compl = on "data_complement" in
    if on "addr_reset_up" then begin
      dir_up := true;
      ignore (N.step addgen [ ("reset_up", true); ("reset_down", false); ("en", false); ("up", true) ])
    end;
    if on "addr_reset_down" then begin
      dir_up := false;
      ignore (N.step addgen [ ("reset_up", false); ("reset_down", true); ("en", false); ("up", false) ])
    end;
    if on "request_wait" then begin
      Model.retention_wait model;
      waited := true
    end;
    let data () =
      let bg = background () in
      if compl then Word.lnot_ bg else bg
    in
    if on "apply_read" then begin
      let addr = addgen_value () in
      let row = phys_row (addr / org.Org.bpc) and col = addr mod org.Org.bpc in
      let got = Model.read_row_word model ~row ~col in
      cmp_fail := compare_words (data ()) got
    end;
    if on "apply_write" then begin
      let addr = addgen_value () in
      let row = phys_row (addr / org.Org.bpc) and col = addr mod org.Org.bpc in
      Model.write_row_word model ~row ~col (data ())
    end
  in
  let exec_exits outs =
    let on name = List.assoc name outs in
    if on "record_row" then begin
      let row = current_row () in
      let hit, _, _ = cam_lookup row in
      if not hit then begin
        recorded := row :: !recorded;
        ignore (N.step cam (cam_inputs ~row ~write:true))
      end
    end;
    if on "next_background" then begin
      (* the Johnson counter double-steps between required backgrounds *)
      ignore (N.step johnson [ ("reset", false); ("en", true) ]);
      ignore (N.step johnson [ ("reset", false); ("en", true) ]);
      incr bg_index
    end;
    if on "reset_background" then begin
      ignore (N.step johnson [ ("reset", true); ("en", false) ]);
      bg_index := 0
    end;
    if on "enable_remap" then remap_enabled := true;
    if on "addr_step" then
      ignore
        (N.step addgen
           [ ("reset_up", false); ("reset_down", false); ("en", true)
           ; ("up", !dir_up)
           ])
  in
  let budget = 16 * (March.ops_per_address Alg.ifa_9 * words * nbgs) in
  let rec go cycles =
    if cycles > budget then failwith "gate BIST livelock";
    waited := false;
    (* phase A: the FSM's work lines under pre-work conditions *)
    let outs_a = N.eval fsm (conds ()) in
    if List.assoc "sig_done" outs_a then
      if !recorded = [] then Clean else Repaired (List.rev !recorded)
    else if List.assoc "sig_fail" outs_a then Fail
    else begin
      exec_work outs_a;
      (* phase B: the transition under post-work conditions *)
      let cs = conds () in
      let outs_b = N.eval fsm cs in
      exec_exits outs_b;
      ignore (N.step fsm cs);
      go (cycles + 1)
    end
  in
  go 0

(* behavioural reference on an identical model *)
let run_reference org faults =
  let m = Model.create org in
  Model.set_faults m faults;
  let backgrounds = Datagen.required_backgrounds ~bpw:org.Org.bpw in
  match Repair.run_reference m Alg.ifa_9 ~backgrounds with
  | Repair.Passed_clean, _ -> Clean
  | Repair.Repaired rows, _ -> Repaired rows
  | Repair.Repair_unsuccessful _, _ -> Fail

let org () = Org.make ~words:16 ~bpw:4 ~bpc:4 ~spares:4 ()
let cell r c = { F.row = r; F.col = c }

let check_agrees name faults =
  let o = org () in
  let gate = run_gate_bist o faults in
  let reference = run_reference o faults in
  let show = function
    | Clean -> "clean"
    | Repaired rows ->
        "repaired [" ^ String.concat "," (List.map string_of_int rows) ^ "]"
    | Fail -> "fail"
  in
  Alcotest.(check string) name (show reference) (show gate)

let test_clean () = check_agrees "clean RAM" []

let test_single_fault () =
  check_agrees "one stuck-at" [ F.Stuck_at (cell 2 5, true) ]

let test_multi_row () =
  check_agrees "three rows"
    [ F.Stuck_at (cell 0 1, true)
    ; F.Transition (cell 1 9, true)
    ; F.Stuck_at (cell 3 14, false)
    ]

let test_overflow () =
  check_agrees "five rows overflow"
    (List.init 4 (fun r -> F.Stuck_at (cell r 0, true))
    @ [ F.Stuck_at (cell 3 1, true) ])

let test_faulty_spare () =
  check_agrees "faulty spare"
    [ F.Stuck_at (cell 1 0, true); F.Stuck_at (cell 4 0, true) ]

let prop_random_fault_sets =
  QCheck.Test.make ~name:"gate BIST = behavioural reference (random faults)"
    ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let o = org () in
      let faults =
        I.inject rng ~rows:(Org.total_rows o) ~cols:(Org.cols o)
          ~mix:I.stuck_at_only
          ~n:(Random.State.int rng 5)
      in
      run_gate_bist o faults = run_reference o faults)

let () =
  Alcotest.run "gate_bist"
    [ ( "integration",
        [ Alcotest.test_case "clean" `Quick test_clean
        ; Alcotest.test_case "single fault" `Quick test_single_fault
        ; Alcotest.test_case "multi row" `Quick test_multi_row
        ; Alcotest.test_case "overflow" `Quick test_overflow
        ; Alcotest.test_case "faulty spare" `Quick test_faulty_spare
        ; QCheck_alcotest.to_alcotest prop_random_fault_sets
        ] )
    ]
