(* Gate-level netlists: simulator semantics and cycle-equivalence of the
   generated datapath blocks against their behavioural models. *)

module N = Bisram_gates.Netlist
module B = Bisram_gates.Builders
module Addgen = Bisram_bist.Addgen
module Datagen = Bisram_bist.Datagen
module March = Bisram_bist.March
module Word = Bisram_sram.Word
module Tlb = Bisram_bisr.Tlb

(* ------------------------------------------------------------------ *)
(* Netlist primitives *)

let test_combinational_gates () =
  let t = N.create () in
  let a = N.input t "a" and b = N.input t "b" in
  N.output t "and" (N.and_ t a b);
  N.output t "or" (N.or_ t a b);
  N.output t "xor" (N.xor_ t a b);
  N.output t "nota" (N.not_ t a);
  N.output t "mux" (N.mux t ~sel:a ~t1:b ~t0:(N.const t true));
  let st = N.simulate t in
  let check ai bi exp_and exp_or exp_xor exp_not exp_mux =
    let outs = N.step st [ ("a", ai); ("b", bi) ] in
    let get n = List.assoc n outs in
    Alcotest.(check bool) "and" exp_and (get "and");
    Alcotest.(check bool) "or" exp_or (get "or");
    Alcotest.(check bool) "xor" exp_xor (get "xor");
    Alcotest.(check bool) "not" exp_not (get "nota");
    Alcotest.(check bool) "mux" exp_mux (get "mux")
  in
  check false false false false false true true;
  check true false false true true false false;
  check true true true true false false true;
  check false true false true true true true

let test_dff_delays_one_cycle () =
  let t = N.create () in
  let d = N.input t "d" in
  let q = N.dff t "q" in
  N.connect t ~q ~d;
  N.output t "q" q;
  let st = N.simulate t in
  Alcotest.(check bool) "init 0" false (List.assoc "q" (N.step st [ ("d", true) ]));
  Alcotest.(check bool) "captured" true (List.assoc "q" (N.step st [ ("d", false) ]));
  Alcotest.(check bool) "dropped" false (List.assoc "q" (N.step st [ ("d", false) ]))

let test_unconnected_dff_rejected () =
  let t = N.create () in
  let _q = N.dff t "q" in
  match N.simulate t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unconnected flip-flop accepted"

let test_counts () =
  let t = B.comparator ~bits:8 in
  Alcotest.(check int) "no ffs in comparator" 0 (N.ff_count t);
  Alcotest.(check bool) "gates present" true (N.gate_count t > 8);
  let c = B.up_down_counter ~bits:6 in
  Alcotest.(check int) "6 ffs" 6 (N.ff_count c)

(* ------------------------------------------------------------------ *)
(* ADDGEN equivalence *)

let counter_inputs ~reset_up ~reset_down ~en ~up =
  [ ("reset_up", reset_up); ("reset_down", reset_down); ("en", en); ("up", up) ]

let read_count st bits outs =
  ignore st;
  let v = ref 0 in
  for i = 0 to bits - 1 do
    if List.assoc (Printf.sprintf "q%d" i) outs then v := !v lor (1 lsl i)
  done;
  !v

let test_counter_matches_addgen () =
  let bits = 5 in
  let limit = 1 lsl bits in
  let net = B.up_down_counter ~bits in
  let st = N.simulate net in
  let check_dir dir up =
    let gen = Addgen.create ~limit in
    Addgen.reset gen ~dir;
    (* load the gate counter *)
    ignore
      (N.step st
         (counter_inputs
            ~reset_up:(dir = March.Up)
            ~reset_down:(dir = March.Down)
            ~en:false ~up));
    for k = 0 to (2 * limit) + 3 do
      let outs =
        N.step st (counter_inputs ~reset_up:false ~reset_down:false ~en:true ~up)
      in
      let gate_value = read_count st bits outs in
      let gate_wrap = List.assoc "wrap" outs in
      Alcotest.(check int)
        (Printf.sprintf "value at step %d" k)
        (Addgen.value gen) gate_value;
      let wrapped = Addgen.step gen ~dir in
      Alcotest.(check bool) (Printf.sprintf "wrap at %d" k) wrapped gate_wrap
    done
  in
  check_dir March.Up true;
  check_dir March.Down false

(* ------------------------------------------------------------------ *)
(* DATAGEN equivalence *)

let test_johnson_matches_datagen () =
  let bits = 6 in
  let net = B.johnson_counter ~bits in
  let st = N.simulate net in
  let gen = Datagen.create ~bpw:bits in
  ignore (N.step st [ ("reset", true); ("en", false) ]);
  for k = 0 to (2 * bits) + 3 do
    let outs = N.step st [ ("reset", false); ("en", true) ] in
    let gate_word =
      Word.of_bits
        (Array.init bits (fun i -> List.assoc (Printf.sprintf "q%d" i) outs))
    in
    Alcotest.(check bool)
      (Printf.sprintf "state at %d" k)
      true
      (Word.equal (Datagen.state gen) gate_word);
    Datagen.step gen
  done

(* ------------------------------------------------------------------ *)
(* Comparator equivalence *)

let prop_comparator_equals_word_equal =
  QCheck.Test.make ~name:"gate comparator = Word.equal" ~count:200
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) ->
      let bits = 8 in
      let net = B.comparator ~bits in
      let st = N.simulate net in
      let inputs =
        List.concat
          (List.init bits (fun i ->
               [ (Printf.sprintf "a%d" i, (a lsr i) land 1 = 1)
               ; (Printf.sprintf "b%d" i, (b lsr i) land 1 = 1)
               ]))
      in
      let outs = N.step st inputs in
      List.assoc "neq" outs = (a <> b))

(* ------------------------------------------------------------------ *)
(* CAM vs TLB *)

let cam_inputs ~bits ~key ~write =
  ("write", write)
  :: List.init bits (fun i -> (Printf.sprintf "key%d" i, (key lsr i) land 1 = 1))

let test_cam_matches_tlb () =
  let entries = 4 and bits = 5 in
  let net = B.cam ~entries ~bits in
  let st = N.simulate net in
  let tlb = Tlb.create ~spares:entries ~regular_rows:(1 lsl bits) in
  let lookup key =
    let outs = N.step st (cam_inputs ~bits ~key ~write:false) in
    let hit = List.assoc "hit" outs in
    let idx = ref 0 in
    for i = 0 to B.bits_for entries - 1 do
      if List.assoc (Printf.sprintf "idx%d" i) outs then idx := !idx lor (1 lsl i)
    done;
    (hit, !idx, List.assoc "full" outs)
  in
  let record key =
    ignore (N.step st (cam_inputs ~bits ~key ~write:true));
    Tlb.record tlb ~row:key
  in
  (* empty CAM: no hits *)
  let hit, _, full = lookup 7 in
  Alcotest.(check bool) "no hit when empty" false hit;
  Alcotest.(check bool) "not full" false full;
  (* record rows 7, 13, 2 and check lookups track the TLB *)
  List.iter (fun k -> ignore (record k)) [ 7; 13; 2 ];
  List.iter
    (fun key ->
      let hit, idx, _ = lookup key in
      match Tlb.spare_of tlb ~row:key with
      | Some spare ->
          Alcotest.(check bool) (Printf.sprintf "hit %d" key) true hit;
          Alcotest.(check int) (Printf.sprintf "index %d" key) spare idx
      | None -> Alcotest.(check bool) (Printf.sprintf "miss %d" key) false hit)
    [ 0; 2; 7; 9; 13; 31 ];
  (* fill up: fourth record fills the CAM *)
  ignore (record 21);
  let _, _, full = lookup 21 in
  Alcotest.(check bool) "full after 4" true full;
  Alcotest.(check bool) "tlb full too" true (Tlb.is_full tlb)

let prop_cam_random_sequences =
  QCheck.Test.make ~name:"CAM tracks TLB on random row sequences" ~count:60
    QCheck.(list_of_size (Gen.int_range 0 10) (int_range 0 31))
    (fun rows ->
      let entries = 4 and bits = 5 in
      let net = B.cam ~entries ~bits in
      let st = N.simulate net in
      let tlb = Tlb.create ~spares:entries ~regular_rows:32 in
      List.for_all
        (fun key ->
          (* query first (gate CAM write also matches same-cycle state) *)
          let outs = N.step st (cam_inputs ~bits ~key ~write:false) in
          let gate_hit = List.assoc "hit" outs in
          let model_hit = Tlb.spare_of tlb ~row:key <> None in
          (* record through both when the model would accept a new row *)
          if (not model_hit) && not (Tlb.is_full tlb) then begin
            ignore (N.step st (cam_inputs ~bits ~key ~write:true));
            ignore (Tlb.record tlb ~row:key)
          end;
          gate_hit = model_hit)
        rows)

(* ------------------------------------------------------------------ *)
(* PLA expansion and the controller FSM as gates *)

module Trpla = Bisram_bist.Trpla
module Pla_gates = Bisram_bist.Pla_gates
module Controller = Bisram_bist.Controller
module Alg = Bisram_bist.Algorithms

let prop_pla_netlist_equals_eval =
  QCheck.Test.make ~name:"PLA netlist = Trpla.eval on random vectors"
    ~count:100
    QCheck.(int_range 0 4095)
    (fun v ->
      let ctl =
        Controller.compile Alg.mats_plus ~words:16
          ~backgrounds:(Datagen.required_backgrounds ~bpw:4)
      in
      let pla = Controller.to_pla ctl in
      let net = Pla_gates.of_trpla pla in
      let st = N.simulate net in
      let n_in = Trpla.n_inputs pla in
      let bits = Array.init n_in (fun i -> (v lsr (i mod 12)) land 1 = 1) in
      let outs =
        N.step st
          (List.init n_in (fun i -> (Printf.sprintf "in%d" i, bits.(i))))
      in
      let expected = Trpla.eval pla bits in
      List.for_all
        (fun i -> List.assoc (Printf.sprintf "out%d" i) outs = expected.(i))
        (List.init (Trpla.n_outputs pla) Fun.id))

let test_controller_fsm_first_transitions () =
  (* drive the FSM netlist: IDLE -(test_enable)-> SETUP -> first op *)
  let ctl =
    Controller.compile Alg.mats_plus ~words:16
      ~backgrounds:(Datagen.required_backgrounds ~bpw:4)
  in
  let net = Pla_gates.controller_netlist ctl in
  let st = N.simulate net in
  let conds ~te =
    List.map
      (fun n -> (n, n = "test_enable" && te))
      Pla_gates.cond_names
  in
  let state outs =
    let v = ref 0 in
    List.iteri
      (fun i _ ->
        if List.assoc_opt (Printf.sprintf "state%d" i) outs = Some true then
          v := !v lor (1 lsl i))
      (List.init (Controller.flipflop_count ctl) Fun.id);
    !v
  in
  (* cycle 1: in IDLE; with test_enable the exit asserts reset_background *)
  let o1 = N.step st (conds ~te:true) in
  Alcotest.(check int) "starts in IDLE (0)" 0 (state o1);
  Alcotest.(check bool) "reset_background on exit" true
    (List.assoc "reset_background" o1);
  (* cycle 2: SETUP state (id 1) resets the address counter *)
  let o2 = N.step st (conds ~te:true) in
  Alcotest.(check int) "in SETUP (1)" 1 (state o2);
  Alcotest.(check bool) "addr_reset_up" true (List.assoc "addr_reset_up" o2);
  (* cycle 3: first op state applies the write *)
  let o3 = N.step st (conds ~te:true) in
  Alcotest.(check bool) "apply_write in first op" true
    (List.assoc "apply_write" o3)

let test_verilog_export () =
  let ctl =
    Controller.compile Alg.mats_plus ~words:16
      ~backgrounds:(Datagen.required_backgrounds ~bpw:4)
  in
  let v = Pla_gates.controller_verilog ctl in
  let has sub =
    let n = String.length v and m = String.length sub in
    let rec go i = i + m <= n && (String.sub v i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> Alcotest.(check bool) ("verilog has " ^ key) true (has key))
    [ "module trpla_fsm"; "endmodule"; "always @(posedge clk)"; "cmp_fail"
    ; "record_row"; "input clk, rst"
    ];
  (* balanced: one module, one endmodule *)
  Alcotest.(check bool) "nonempty" true (String.length v > 500)

(* ------------------------------------------------------------------ *)
(* Optimizer *)

module Opt = Bisram_gates.Optimize

let test_optimize_folds_constants () =
  let t = N.create () in
  let a = N.input t "a" in
  let zero = N.const t false in
  let one = N.const t true in
  (* and(a, 1) = a ; or(a, 0) = a ; xor(a, a) = 0 ; mux(1, a, b) = a *)
  N.output t "y1" (N.and_ t a one);
  N.output t "y2" (N.or_ t a zero);
  N.output t "y3" (N.xor_ t a a);
  N.output t "y4" (N.mux t ~sel:one ~t1:a ~t0:zero);
  N.output t "y5" (N.not_ t (N.not_ t a));
  let t', stats = Opt.optimize t in
  Alcotest.(check int) "all gates folded" 0 stats.Opt.gates_after;
  let st = N.simulate t' in
  List.iter
    (fun v ->
      let outs = N.step st [ ("a", v) ] in
      Alcotest.(check bool) "y1=a" v (List.assoc "y1" outs);
      Alcotest.(check bool) "y2=a" v (List.assoc "y2" outs);
      Alcotest.(check bool) "y3=0" false (List.assoc "y3" outs);
      Alcotest.(check bool) "y4=a" v (List.assoc "y4" outs);
      Alcotest.(check bool) "y5=a" v (List.assoc "y5" outs))
    [ true; false ]

let test_optimize_removes_dead_gates () =
  let t = N.create () in
  let a = N.input t "a" and b = N.input t "b" in
  let _dead = N.and_ t a b in
  let _dead2 = N.xor_ t a (N.or_ t a b) in
  N.output t "y" (N.and_ t a b);
  let _, stats = Opt.optimize t in
  Alcotest.(check bool)
    (Printf.sprintf "gates %d -> %d" stats.Opt.gates_before stats.Opt.gates_after)
    true
    (stats.Opt.gates_after < stats.Opt.gates_before);
  Alcotest.(check int) "only the live AND" 1 stats.Opt.gates_after

let prop_optimize_preserves_controller_fsm =
  QCheck.Test.make
    ~name:"optimized FSM netlist = original on random cond sequences"
    ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let ctl =
        Controller.compile Alg.mats_plus ~words:16
          ~backgrounds:(Datagen.required_backgrounds ~bpw:4)
      in
      let net = Pla_gates.controller_netlist ctl in
      let opt, _ = Opt.optimize net in
      let s1 = N.simulate net and s2 = N.simulate opt in
      let rng = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to 40 do
        let ins =
          List.map (fun n -> (n, Random.State.bool rng)) Pla_gates.cond_names
        in
        let o1 = List.sort compare (N.step s1 ins) in
        let o2 = List.sort compare (N.step s2 ins) in
        if o1 <> o2 then ok := false
      done;
      !ok)

let test_optimize_shrinks_pla () =
  let ctl =
    Controller.compile Alg.ifa_9 ~words:64
      ~backgrounds:(Datagen.required_backgrounds ~bpw:8)
  in
  let net = Pla_gates.controller_netlist ctl in
  let _, stats = Opt.optimize net in
  Alcotest.(check bool)
    (Printf.sprintf "FSM gates %d -> %d (6 FFs kept)" stats.Opt.gates_before
       stats.Opt.gates_after)
    true
    (stats.Opt.gates_after < stats.Opt.gates_before);
  Alcotest.(check int) "state register preserved" 6 stats.Opt.ffs

let () =
  Alcotest.run "gates"
    [ ( "netlist",
        [ Alcotest.test_case "combinational" `Quick test_combinational_gates
        ; Alcotest.test_case "dff" `Quick test_dff_delays_one_cycle
        ; Alcotest.test_case "unconnected dff" `Quick
            test_unconnected_dff_rejected
        ; Alcotest.test_case "counts" `Quick test_counts
        ] )
    ; ( "equivalence",
        [ Alcotest.test_case "ADDGEN counter" `Quick test_counter_matches_addgen
        ; Alcotest.test_case "DATAGEN johnson" `Quick
            test_johnson_matches_datagen
        ; QCheck_alcotest.to_alcotest prop_comparator_equals_word_equal
        ; Alcotest.test_case "TLB cam" `Quick test_cam_matches_tlb
        ; QCheck_alcotest.to_alcotest prop_cam_random_sequences
        ] )
    ; ( "pla-gates",
        [ QCheck_alcotest.to_alcotest prop_pla_netlist_equals_eval
        ; Alcotest.test_case "FSM transitions" `Quick
            test_controller_fsm_first_transitions
        ; Alcotest.test_case "verilog export" `Quick test_verilog_export
        ] )
    ; ( "optimize",
        [ Alcotest.test_case "constant folding" `Quick
            test_optimize_folds_constants
        ; Alcotest.test_case "dead gates" `Quick test_optimize_removes_dead_gates
        ; QCheck_alcotest.to_alcotest prop_optimize_preserves_controller_fsm
        ; Alcotest.test_case "shrinks the FSM" `Quick test_optimize_shrinks_pla
        ] )
    ]
