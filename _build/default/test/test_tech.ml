(* Tests for layers, design rules and process decks. *)

module L = Bisram_tech.Layer
module Ru = Bisram_tech.Rules
module Pr = Bisram_tech.Process
module E = Bisram_tech.Electrical
module Rect = Bisram_geometry.Rect

let test_layer_roundtrip () =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let cif = L.cif_name l in
      Alcotest.(check bool)
        (Printf.sprintf "cif name %s unique" cif)
        false (Hashtbl.mem seen cif);
      Hashtbl.add seen cif ())
    L.all;
  Alcotest.(check int) "13 layers" 13 (List.length L.all)

let test_metal_index () =
  Alcotest.(check (option int)) "m1" (Some 1) (L.metal_index L.Metal1);
  Alcotest.(check (option int)) "m3" (Some 3) (L.metal_index L.Metal3);
  Alcotest.(check (option int)) "poly" None (L.metal_index L.Poly)

let test_rules_pitch () =
  let r = Ru.scmos in
  Alcotest.(check int) "m1 pitch" 6 (Ru.pitch r L.Metal1);
  Alcotest.(check int) "poly pitch" 4 (Ru.pitch r L.Poly);
  Alcotest.(check bool) "contacted pitch >= plain" true
    (Ru.contact_pitch r >= Ru.pitch r L.Metal1)

let test_rules_width_check () =
  let r = Ru.scmos in
  Alcotest.(check (option string))
    "wide wire ok" None
    (Ru.check_width r L.Metal1 (Rect.make 0 0 100 3));
  Alcotest.(check bool) "narrow wire flagged" true
    (Ru.check_width r L.Metal1 (Rect.make 0 0 100 2) <> None);
  Alcotest.(check (option string))
    "zero-extent stub exempt" None
    (Ru.check_width r L.Metal1 (Rect.make 0 0 0 3))

let test_rules_spacing_check () =
  let r = Ru.scmos in
  let ok = [ Rect.make 0 0 3 10; Rect.make 6 0 9 10 ] in
  let bad = [ Rect.make 0 0 3 10; Rect.make 5 0 8 10 ] in
  let touching = [ Rect.make 0 0 3 10; Rect.make 3 0 6 10 ] in
  Alcotest.(check int) "spaced ok" 0 (List.length (Ru.check_spacing r L.Metal1 ok));
  Alcotest.(check int) "close flagged" 1
    (List.length (Ru.check_spacing r L.Metal1 bad));
  Alcotest.(check int) "touching = merged shape" 0
    (List.length (Ru.check_spacing r L.Metal1 touching))

let test_process_lookup () =
  (match Pr.find "CDA.7u3m1p" with
  | Some p -> Alcotest.(check int) "feature" 700 p.Pr.feature_nm
  | None -> Alcotest.fail "CDA.7u3m1p not found");
  Alcotest.(check bool) "unknown" true (Pr.find "tsmc28" = None);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Pr.name ^ " supports BISR")
        true (Pr.supports_bisr p))
    Pr.all

let test_process_units () =
  let p = Pr.cda_07u3m1p in
  Alcotest.(check int) "lambda" 350 p.Pr.lambda_nm;
  Alcotest.(check int) "nm of 10 lambda" 3500 (Pr.nm_of_lambda p 10);
  Alcotest.(check (float 1e-9)) "um of 2 lambda" 0.7 (Pr.um_of_lambda p 2);
  (* 1000 x 1000 lambda at 0.35um = 0.1225 mm^2 *)
  Alcotest.(check (float 1e-6))
    "mm2" 0.1225
    (Pr.mm2_of_lambda_area p 1000 1000)

let test_process_two_metal_rejected () =
  let p2 = Pr.custom ~name:"old2m" ~feature_nm:800 ~metal_layers:2 () in
  Alcotest.(check bool) "2-metal rejected" false (Pr.supports_bisr p2)

let test_electrical_scaling () =
  let e05 = Pr.cda_05u3m1p.Pr.electrical
  and e07 = Pr.cda_07u3m1p.Pr.electrical in
  Alcotest.(check bool) "smaller feature has higher kn" true
    (e05.E.kn > e07.E.kn);
  Alcotest.(check bool) "beta ratio in 2..3.5" true
    (let b = E.beta_ratio e07 in
     b > 2.0 && b < 3.5)

let test_ron_scaling () =
  let e = Pr.cda_07u3m1p.Pr.electrical in
  let r1 = E.ron_nmos e ~w:1e-6 ~l:0.7e-6 in
  let r2 = E.ron_nmos e ~w:2e-6 ~l:0.7e-6 in
  Alcotest.(check (float 1e-6)) "Ron halves with double W" (r1 /. 2.0) r2;
  let rp = E.ron_pmos e ~w:1e-6 ~l:0.7e-6 in
  Alcotest.(check bool) "PMOS weaker than NMOS" true (rp > r1)

let prop_wider_is_stronger =
  QCheck.Test.make ~name:"Ron monotone decreasing in W" ~count:200
    QCheck.(pair (float_range 0.5 50.0) (float_range 0.5 50.0))
    (fun (w1um, w2um) ->
      let e = Pr.cda_07u3m1p.Pr.electrical in
      let r w = E.ron_nmos e ~w:(w *. 1e-6) ~l:0.7e-6 in
      if w1um < w2um then r w1um >= r w2um else r w1um <= r w2um)

let () =
  Alcotest.run "tech"
    [ ( "layer",
        [ Alcotest.test_case "cif names" `Quick test_layer_roundtrip
        ; Alcotest.test_case "metal index" `Quick test_metal_index
        ] )
    ; ( "rules",
        [ Alcotest.test_case "pitch" `Quick test_rules_pitch
        ; Alcotest.test_case "width check" `Quick test_rules_width_check
        ; Alcotest.test_case "spacing check" `Quick test_rules_spacing_check
        ] )
    ; ( "process",
        [ Alcotest.test_case "lookup" `Quick test_process_lookup
        ; Alcotest.test_case "units" `Quick test_process_units
        ; Alcotest.test_case "2-metal rejected" `Quick
            test_process_two_metal_rejected
        ] )
    ; ( "electrical",
        [ Alcotest.test_case "scaling" `Quick test_electrical_scaling
        ; Alcotest.test_case "ron" `Quick test_ron_scaling
        ; QCheck_alcotest.to_alcotest prop_wider_is_stronger
        ] )
    ]
