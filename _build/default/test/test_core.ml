(* Integration tests for the BISRAMGEN compiler. *)

module Config = Bisram_core.Config
module Compiler = Bisram_core.Compiler
module Macros = Bisram_core.Macros
module Org = Bisram_sram.Org
module F = Bisram_faults.Fault
module Repair = Bisram_bisr.Repair
module Pr = Bisram_tech.Process

let cell r c = { F.row = r; F.col = c }

let small_cfg () =
  Config.make ~process:Pr.cda_07u3m1p ~words:64 ~bpw:8 ~bpc:4 ~spares:4 ()

let fig6_cfg () =
  Config.make ~process:Pr.cda_07u3m1p ~words:4096 ~bpw:128 ~bpc:8 ~spares:4
    ~drive:2 ~strap:32 ()

let test_config_validation () =
  let two_metal = Pr.custom ~name:"old" ~feature_nm:800 ~metal_layers:2 () in
  (match Config.make ~process:two_metal ~words:64 ~bpw:8 ~bpc:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "2-metal process accepted");
  (match
     Config.make ~process:Pr.cda_07u3m1p ~drive:9 ~words:64 ~bpw:8 ~bpc:4 ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "drive 9 accepted");
  Alcotest.(check int) "backgrounds bpw/2+1" 5
    (List.length (Config.backgrounds (small_cfg ())))

let test_compile_small () =
  let d = Compiler.compile (small_cfg ()) in
  Alcotest.(check bool) "access time positive" true (d.Compiler.timing.Compiler.access_ns > 0.1);
  Alcotest.(check bool) "module bigger than base" true
    (d.Compiler.area.Compiler.module_mm2 > d.Compiler.area.Compiler.base_mm2);
  Alcotest.(check int) "6 flip-flops" 6 d.Compiler.ctl_report.Compiler.flipflops

let test_compile_fig6_overhead () =
  (* paper: BIST/BISR logic overhead below 7% for realistic sizes *)
  let d = Compiler.compile (fig6_cfg ()) in
  let pct = d.Compiler.area.Compiler.overhead_logic_pct in
  Alcotest.(check bool)
    (Printf.sprintf "logic overhead %.2f%% < 7%%" pct)
    true (pct < 7.0);
  Alcotest.(check bool) "tlb maskable with 4 spares" true
    d.Compiler.timing.Compiler.tlb_maskable;
  (* 64 KB module *)
  Alcotest.(check (float 1e-6)) "64 KB" 64.0
    (Org.kilobits d.Compiler.config.Config.org /. 8.0)

let test_compile_area_consistency () =
  let d = Compiler.compile (small_cfg ()) in
  let a = d.Compiler.area in
  Alcotest.(check bool) "components below module" true
    (a.Compiler.base_mm2 +. a.Compiler.logic_mm2 +. a.Compiler.spare_mm2
    <= a.Compiler.module_mm2 +. 1e-9);
  Alcotest.(check bool) "dead space nonnegative" true (a.Compiler.dead_mm2 >= 0.0)

let test_self_test_clean () =
  let d = Compiler.compile (small_cfg ()) in
  let outcome, report = Compiler.self_test d ~faults:[] in
  Alcotest.(check bool) "clean" true (outcome = Repair.Passed_clean);
  Alcotest.(check bool) "cycles counted" true
    (report.Bisram_bist.Controller.cycles > 0)

let test_self_test_repairs () =
  let d = Compiler.compile (small_cfg ()) in
  let outcome, _ =
    Compiler.self_test d
      ~faults:[ F.Stuck_at (cell 3 9, true); F.Transition (cell 11 0, true) ]
  in
  match outcome with
  | Repair.Repaired rows -> Alcotest.(check (list int)) "rows" [ 3; 11 ] rows
  | Repair.Passed_clean | Repair.Repair_unsuccessful _ ->
      Alcotest.fail "expected repair"

let test_self_test_overflow () =
  let d = Compiler.compile (small_cfg ()) in
  let faults = List.map (fun r -> F.Stuck_at (cell r 0, true)) [ 0; 2; 4; 6; 8 ] in
  let outcome, _ = Compiler.self_test d ~faults in
  Alcotest.(check bool) "unsuccessful" true
    (outcome = Repair.Repair_unsuccessful Repair.Too_many_faulty_rows)

let test_datasheet_contents () =
  let d = Compiler.compile (small_cfg ()) in
  let s = Compiler.datasheet d in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> Alcotest.(check bool) ("mentions " ^ key) true (has key))
    [ "IFA-9"; "access time"; "TLB"; "overhead"; "flip-flops"; "Johnson" ]

let test_pinout () =
  let d = Compiler.compile (small_cfg ()) in
  let pins = Compiler.pinout d in
  let find n = List.find_opt (fun p -> p.Compiler.pin_name = n) pins in
  (match find "A" with
  | Some p -> Alcotest.(check int) "addr width log2(64)" 6 p.Compiler.width
  | None -> Alcotest.fail "no address pin");
  (match find "DOUT" with
  | Some p -> Alcotest.(check int) "data width" 8 p.Compiler.width
  | None -> Alcotest.fail "no data pin");
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (find n <> None))
    [ "WE"; "CS"; "TEST"; "RET"; "BUSY"; "FAIL"; "VDD"; "GND" ]

let test_leaf_library_cif () =
  let d = Compiler.compile (small_cfg ()) in
  let lib = Compiler.leaf_library_cif d in
  Alcotest.(check bool) "several cells" true (List.length lib >= 5);
  List.iter
    (fun (name, cif) ->
      Alcotest.(check bool) (name ^ " nonempty") true (String.length cif > 50))
    lib

let test_macros_scale_with_org () =
  let pla =
    Compiler.(compile (small_cfg ())).Compiler.pla
  in
  let m_small = Macros.generate (small_cfg ()) ~pla in
  let m_big = Macros.generate (fig6_cfg ()) ~pla in
  let area m = Bisram_layout.Macro.area m in
  Alcotest.(check bool) "array grows" true
    (area m_big.Macros.ram_array > area m_small.Macros.ram_array);
  Alcotest.(check bool) "datagen grows with bpw" true
    (area m_big.Macros.datagen > area m_small.Macros.datagen)

let test_floorplan_quality () =
  let d = Compiler.compile (fig6_cfg ()) in
  let fp = d.Compiler.floorplan in
  Alcotest.(check bool)
    (Printf.sprintf "rectangularity %.3f > 0.85"
       fp.Bisram_pr.Floorplan.placement.Bisram_pr.Placer.rectangularity)
    true
    (fp.Bisram_pr.Floorplan.placement.Bisram_pr.Placer.rectangularity > 0.85)

(* ------------------------------------------------------------------ *)
(* Config files *)

module CF = Bisram_core.Config_file

let test_config_file_roundtrip () =
  let text =
    "# comment\nprocess = CDA.5u3m1p\nwords=1024\nbpw = 16 # trailing\n\
     bpc = 4\nspares = 8\nmarch = MATS+\n"
  in
  match CF.of_string text with
  | Ok cfg ->
      Alcotest.(check int) "words" 1024 cfg.Config.org.Org.words;
      Alcotest.(check int) "spares" 8 cfg.Config.org.Org.spares;
      Alcotest.(check string) "march" "MATS+"
        cfg.Config.march.Bisram_bist.March.name;
      Alcotest.(check string) "process" "CDA.5u3m1p"
        cfg.Config.process.Pr.name
  | Error e -> Alcotest.failf "rejected: %s" e

let test_config_file_defaults_and_errors () =
  (match CF.of_string "words = 4096" with
  | Ok cfg -> Alcotest.(check int) "default bpw" 128 cfg.Config.org.Org.bpw
  | Error e -> Alcotest.failf "rejected: %s" e);
  (match CF.of_string "wordz = 4096" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted");
  (match CF.of_string "words = many" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-integer accepted");
  (match CF.of_string "spares = 5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid spares accepted");
  match CF.of_string "march = u(w0); u(r0)" with
  | Ok cfg ->
      Alcotest.(check int) "inline march" 2
        (Bisram_bist.March.ops_per_address cfg.Config.march)
  | Error e -> Alcotest.failf "inline march rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Pin-accurate module model *)

module MM = Bisram_core.Module_model
module Word = Bisram_sram.Word

let mm_small () = MM.create (Compiler.compile (small_cfg ()))

let test_module_normal_rw () =
  let m = mm_small () in
  let idle = MM.idle ~bpw:8 in
  let w = Word.of_int ~width:8 0x3C in
  let _ = MM.cycle m { idle with MM.addr = 17; din = w; we = true; cs = true } in
  let o = MM.cycle m { idle with MM.addr = 17; cs = true } in
  Alcotest.(check bool) "read back" true (Word.equal w o.MM.dout);
  Alcotest.(check bool) "not busy" false o.MM.busy;
  Alcotest.(check bool) "no fail" false o.MM.fail;
  (* chip-select low: no access *)
  let o2 = MM.cycle m { idle with MM.addr = 17 } in
  Alcotest.(check bool) "cs low reads zero" true (Word.equal (Word.zero 8) o2.MM.dout)

let test_module_power_on_self_test_repairs () =
  let m = mm_small () in
  MM.inject m [ F.Stuck_at ({ F.row = 3; col = 9 }, true) ];
  let idle = MM.idle ~bpw:8 in
  (* before the self-test, the faulty address misbehaves *)
  let faulty_addr = 13 in
  let _ = MM.cycle m { idle with MM.addr = faulty_addr; din = Word.zero 8; we = true; cs = true } in
  let bad = MM.cycle m { idle with MM.addr = faulty_addr; cs = true } in
  Alcotest.(check bool) "fault visible pre-test" false
    (Word.equal (Word.zero 8) bad.MM.dout);
  (* pulse TEST: BUSY for that cycle, then repaired *)
  let t = MM.cycle m { idle with MM.test = true } in
  Alcotest.(check bool) "busy during test" true t.MM.busy;
  Alcotest.(check bool) "no fail" false t.MM.fail;
  let w = Word.of_int ~width:8 0x55 in
  let _ = MM.cycle m { idle with MM.addr = faulty_addr; din = w; we = true; cs = true } in
  let o = MM.cycle m { idle with MM.addr = faulty_addr; cs = true } in
  Alcotest.(check bool) "repaired read" true (Word.equal w o.MM.dout);
  (match MM.last_test m with
  | Some r ->
      Alcotest.(check bool) "controller ran" true (r.Bisram_bist.Controller.cycles > 0)
  | None -> Alcotest.fail "no test report")

let test_module_fail_pin_latches () =
  let m = mm_small () in
  MM.inject m
    (List.map (fun r -> F.Stuck_at ({ F.row = r; col = 0 }, true)) [ 1; 3; 5; 7; 9 ]);
  let idle = MM.idle ~bpw:8 in
  let t = MM.cycle m { idle with MM.test = true } in
  Alcotest.(check bool) "fail raised" true t.MM.fail;
  (* FAIL stays latched on subsequent cycles *)
  let o = MM.cycle m { idle with MM.addr = 0; cs = true } in
  Alcotest.(check bool) "fail latched" true o.MM.fail

let test_module_test_level_not_retriggered () =
  let m = mm_small () in
  let idle = MM.idle ~bpw:8 in
  let t1 = MM.cycle m { idle with MM.test = true } in
  (* holding TEST high must not rerun the self-test every cycle *)
  let t2 = MM.cycle m { idle with MM.test = true } in
  Alcotest.(check bool) "first busy" true t1.MM.busy;
  Alcotest.(check bool) "second not busy" false t2.MM.busy;
  (* releasing and pulsing again reruns *)
  let _ = MM.cycle m idle in
  let t3 = MM.cycle m { idle with MM.test = true } in
  Alcotest.(check bool) "re-pulse runs" true t3.MM.busy

(* ------------------------------------------------------------------ *)
(* Simulation model: the transistor-level column *)

let test_column_read_both_polarities () =
  let cfg = small_cfg () in
  Alcotest.(check bool) "read path verifies" true
    (Bisram_core.Simulation_model.verify_read_path cfg)

let test_column_differential_symmetric () =
  let cfg = small_cfg () in
  let r1 = Bisram_core.Simulation_model.simulate_read cfg ~stored:true in
  let r0 = Bisram_core.Simulation_model.simulate_read cfg ~stored:false in
  Alcotest.(check bool) "opposite signs" true
    (r1.Bisram_core.Simulation_model.differential > 0.0
    && r0.Bisram_core.Simulation_model.differential < 0.0);
  Alcotest.(check (float 0.1)) "symmetric"
    r1.Bisram_core.Simulation_model.differential
    (-.r0.Bisram_core.Simulation_model.differential)

let test_spice_deck_contents () =
  let deck = Bisram_core.Simulation_model.spice_deck (small_cfg ()) in
  let has sub =
    let n = String.length deck and m = String.length sub in
    let rec go i = i + m <= n && (String.sub deck i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> Alcotest.(check bool) ("deck has " ^ key) true (has key))
    [ ".MODEL NMOS"; ".MODEL PMOS"; ".TRAN"; ".END"; "M1 "; "VDD " ];
  (* 9 transistors: 3 precharge + 6T cell *)
  let count_m =
    List.length
      (List.filter
         (fun line -> String.length line > 0 && line.[0] = 'M')
         (String.split_on_char '\n' deck))
  in
  Alcotest.(check int) "9 MOS devices" 9 count_m

(* ------------------------------------------------------------------ *)
(* Power *)

let test_power_sanity () =
  let org = Org.make ~words:4096 ~bpw:32 ~bpc:8 () in
  let pw = Bisram_sram.Power.estimate Pr.cda_07u3m1p org ~drive:2.0 in
  Alcotest.(check bool) "write > read (full bitline swing)" true
    (pw.Bisram_sram.Power.write_energy > pw.Bisram_sram.Power.read_energy);
  Alcotest.(check bool) "energies positive" true
    (pw.Bisram_sram.Power.read_energy > 0.0
    && pw.Bisram_sram.Power.static_power > 0.0);
  (* 10-500 pJ/read is the right ballpark for a 5 V 0.7 um 16 KB array *)
  Alcotest.(check bool) "read energy magnitude" true
    (pw.Bisram_sram.Power.read_energy > 1e-12
    && pw.Bisram_sram.Power.read_energy < 1e-9)

let test_power_scales_with_size () =
  let p = Pr.cda_07u3m1p in
  let small_pw =
    Bisram_sram.Power.estimate p (Org.make ~words:1024 ~bpw:8 ~bpc:4 ()) ~drive:2.0
  in
  let big_pw =
    Bisram_sram.Power.estimate p (Org.make ~words:16384 ~bpw:8 ~bpc:4 ()) ~drive:2.0
  in
  Alcotest.(check bool) "bigger array more energy" true
    (big_pw.Bisram_sram.Power.read_energy > small_pw.Bisram_sram.Power.read_energy)

let test_power_current () =
  let org = Org.make ~words:4096 ~bpw:32 ~bpc:8 () in
  let pw = Bisram_sram.Power.estimate Pr.cda_07u3m1p org ~drive:2.0 in
  let i100 = Bisram_sram.Power.supply_current pw ~frequency_hz:100e6 in
  Alcotest.(check bool)
    (Printf.sprintf "Icc at 100 MHz = %.1f mA plausible" (i100 *. 1e3))
    true
    (i100 > 1e-3 && i100 < 1.0);
  (* idle current is the static bias *)
  let idle = Bisram_sram.Power.supply_current pw ~frequency_hz:0.0 in
  Alcotest.(check bool) "idle < active" true (idle < i100)

let () =
  Alcotest.run "core"
    [ ( "config",
        [ Alcotest.test_case "validation" `Quick test_config_validation ] )
    ; ( "compiler",
        [ Alcotest.test_case "small compile" `Quick test_compile_small
        ; Alcotest.test_case "fig6 overhead" `Quick test_compile_fig6_overhead
        ; Alcotest.test_case "area consistency" `Quick
            test_compile_area_consistency
        ; Alcotest.test_case "floorplan quality" `Quick test_floorplan_quality
        ; Alcotest.test_case "macros scale" `Quick test_macros_scale_with_org
        ] )
    ; ( "self test",
        [ Alcotest.test_case "clean" `Quick test_self_test_clean
        ; Alcotest.test_case "repairs" `Quick test_self_test_repairs
        ; Alcotest.test_case "overflow" `Quick test_self_test_overflow
        ] )
    ; ( "outputs",
        [ Alcotest.test_case "datasheet" `Quick test_datasheet_contents
        ; Alcotest.test_case "pinout" `Quick test_pinout
        ; Alcotest.test_case "leaf cif" `Quick test_leaf_library_cif
        ] )
    ; ( "config file",
        [ Alcotest.test_case "roundtrip" `Quick test_config_file_roundtrip
        ; Alcotest.test_case "defaults/errors" `Quick
            test_config_file_defaults_and_errors
        ] )
    ; ( "module model",
        [ Alcotest.test_case "normal read/write" `Quick test_module_normal_rw
        ; Alcotest.test_case "power-on repair" `Quick
            test_module_power_on_self_test_repairs
        ; Alcotest.test_case "fail latches" `Quick test_module_fail_pin_latches
        ; Alcotest.test_case "level not retriggered" `Quick
            test_module_test_level_not_retriggered
        ] )
    ; ( "simulation model",
        [ Alcotest.test_case "read both polarities" `Quick
            test_column_read_both_polarities
        ; Alcotest.test_case "differential symmetric" `Quick
            test_column_differential_symmetric
        ; Alcotest.test_case "spice deck" `Quick test_spice_deck_contents
        ] )
    ; ( "power",
        [ Alcotest.test_case "sanity" `Quick test_power_sanity
        ; Alcotest.test_case "scales with size" `Quick
            test_power_scales_with_size
        ; Alcotest.test_case "supply current" `Quick test_power_current
        ] )
    ]
