test/test_pr.ml: Alcotest Array Bisram_geometry Bisram_layout Bisram_pr Bisram_tech Gen List Option Printf QCheck QCheck_alcotest String
