test/test_yield.mli:
