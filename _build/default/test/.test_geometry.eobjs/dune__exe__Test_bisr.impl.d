test/test_bisr.ml: Alcotest Bisram_bisr Bisram_bist Bisram_faults Bisram_sram Bisram_tech Format Gen Int List Printf QCheck QCheck_alcotest Random
