test/test_reliability.ml: Alcotest Bisram_rel Bisram_sram List Printf QCheck QCheck_alcotest
