test/test_bist.ml: Alcotest Array Bisram_bist Bisram_faults Bisram_sram Bisram_tech Hashtbl List Printf QCheck QCheck_alcotest Random
