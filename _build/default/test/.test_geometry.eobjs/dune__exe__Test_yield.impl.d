test/test_yield.ml: Alcotest Bisram_yield List Printf QCheck QCheck_alcotest Random
