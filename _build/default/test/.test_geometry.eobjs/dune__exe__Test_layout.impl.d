test/test_layout.ml: Alcotest Bisram_bist Bisram_geometry Bisram_layout Bisram_tech List String
