test/test_bisr.mli:
