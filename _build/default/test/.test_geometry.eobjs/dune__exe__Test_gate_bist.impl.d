test/test_gate_bist.ml: Alcotest Array Bisram_bisr Bisram_bist Bisram_faults Bisram_gates Bisram_sram List Printf QCheck QCheck_alcotest Random String
