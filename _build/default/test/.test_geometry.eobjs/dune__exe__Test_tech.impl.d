test/test_tech.ml: Alcotest Bisram_geometry Bisram_tech Hashtbl List Printf QCheck QCheck_alcotest
