test/test_core.ml: Alcotest Bisram_bisr Bisram_bist Bisram_core Bisram_faults Bisram_layout Bisram_pr Bisram_sram Bisram_tech List Printf String
