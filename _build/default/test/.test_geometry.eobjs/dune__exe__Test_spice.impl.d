test/test_spice.ml: Alcotest Bisram_spice Bisram_tech List Printf QCheck QCheck_alcotest
