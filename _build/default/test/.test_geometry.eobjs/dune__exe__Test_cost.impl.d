test/test_cost.ml: Alcotest Bisram_cost List Printf
