test/test_geometry.ml: Alcotest Bisram_geometry List QCheck QCheck_alcotest
