test/test_gates.ml: Alcotest Array Bisram_bisr Bisram_bist Bisram_gates Bisram_sram Fun Gen List Printf QCheck QCheck_alcotest Random String
