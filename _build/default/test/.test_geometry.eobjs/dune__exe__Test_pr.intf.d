test/test_pr.mli:
