test/test_gate_bist.mli:
