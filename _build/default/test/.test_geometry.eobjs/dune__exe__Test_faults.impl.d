test/test_faults.ml: Alcotest Array Bisram_faults Hashtbl List Printf QCheck QCheck_alcotest Random
