test/test_sram.ml: Alcotest Bisram_faults Bisram_sram Bisram_tech Printf QCheck QCheck_alcotest
