module C = Bisram_spice.Circuit
module Tr = Bisram_spice.Transient
module Export = Bisram_spice.Spice_export
module E = Bisram_tech.Electrical
module Pr = Bisram_tech.Process
module Org = Bisram_sram.Org
module Timing = Bisram_sram.Timing

type column = {
  circuit : C.t;
  bl : C.net;
  blb : C.net;
  wordline : C.net;
  pclk : C.net;
  q : C.net;
  qb : C.net;
}

let lambda_m cfg = float_of_int cfg.Config.process.Pr.lambda_nm *. 1e-9
let feature_m cfg = float_of_int cfg.Config.process.Pr.feature_nm *. 1e-9

let column cfg ~stored =
  let p = cfg.Config.process in
  let e = p.Pr.electrical in
  let lam = lambda_m cfg and l = feature_m cfg in
  let ckt = C.create e in
  let vdd = C.vdd_net ckt in
  let bl = C.fresh_net ~name:"bl" ckt in
  let blb = C.fresh_net ~name:"blb" ckt in
  let wordline = C.fresh_net ~name:"wl" ckt in
  let pclk = C.fresh_net ~name:"pclk" ckt in
  let q = C.fresh_net ~name:"q" ckt in
  let qb = C.fresh_net ~name:"qb" ckt in
  let nmos ~gate ~drain ~source ~w =
    C.add ckt (C.Mos { kind = C.Nmos; gate; drain; source; w; l })
  in
  let pmos ~gate ~drain ~source ~w =
    C.add ckt (C.Mos { kind = C.Pmos; gate; drain; source; w; l })
  in
  (* precharge head: two precharge devices + equalizer *)
  pmos ~gate:pclk ~drain:bl ~source:vdd ~w:(8.0 *. lam);
  pmos ~gate:pclk ~drain:blb ~source:vdd ~w:(8.0 *. lam);
  pmos ~gate:pclk ~drain:bl ~source:blb ~w:(6.0 *. lam);
  (* the accessed 6T cell: cross-coupled inverters + access devices *)
  pmos ~gate:qb ~drain:q ~source:vdd ~w:(3.0 *. lam);
  nmos ~gate:qb ~drain:q ~source:C.gnd ~w:(6.0 *. lam);
  pmos ~gate:q ~drain:qb ~source:vdd ~w:(3.0 *. lam);
  nmos ~gate:q ~drain:qb ~source:C.gnd ~w:(6.0 *. lam);
  nmos ~gate:wordline ~drain:bl ~source:q ~w:(4.0 *. lam);
  nmos ~gate:wordline ~drain:blb ~source:qb ~w:(4.0 *. lam);
  (* bit-line parasitics of the full column height *)
  let org = cfg.Config.org in
  let bl_len = Timing.bitline_length p org in
  let c_bl =
    (e.E.cap_area Bisram_tech.Layer.Metal1 *. bl_len *. (3.0 *. lam))
    +. (e.E.cap_fringe Bisram_tech.Layer.Metal1 *. 2.0 *. bl_len)
    +. (float_of_int (Org.total_rows org)
       *. E.cdiff e ~feature_m:l ~w:(3.0 *. lam))
  in
  C.add ckt (C.Capacitor { a = bl; b = C.gnd; farads = c_bl });
  C.add ckt (C.Capacitor { a = blb; b = C.gnd; farads = c_bl });
  (* weak bias imposing the stored state on both latch nodes: strong
     enough to set the state during the precharge phase, weak enough
     (>> Ron) not to disturb the read *)
  let high, low = if stored then (q, qb) else (qb, q) in
  C.add ckt (C.Resistor { a = high; b = vdd; ohms = 20e3 });
  C.add ckt (C.Resistor { a = low; b = C.gnd; ohms = 20e3 });
  { circuit = ckt; bl; blb; wordline; pclk; q; qb }

let spice_deck cfg =
  let col = column cfg ~stored:true in
  Export.deck
    ~title:
      (Printf.sprintf "BISRAMGEN column slice: %s"
         (Format.asprintf "%a" Org.pp cfg.Config.org))
    ~controls:
      [ "VWL wl 0 PULSE(0 5 2.5N 0.1N 0.1N 3N 10N)"
      ; "VPC pclk 0 PULSE(0 5 2.0N 0.1N 0.1N 7N 20N)"
      ; ".TRAN 10P 6N"
      ; ".PRINT TRAN V(bl) V(blb) V(q) V(qb)"
      ]
    col.circuit

type read_result = { differential : float; correct : bool }

let simulate_read cfg ~stored =
  let col = column cfg ~stored in
  let e = cfg.Config.process.Pr.electrical in
  let vdd = e.E.vdd in
  (* pclk low (precharge on) until 2 ns; word line rises at 2.5 ns *)
  let res =
    Tr.simulate col.circuit ~feature_m:(feature_m cfg)
      ~sources:
        [ (col.pclk, Tr.step ~vdd ~at:2e-9)
        ; (col.wordline, Tr.step ~vdd ~at:2.5e-9)
        ]
      ~tstop:6e-9 ~dt:20e-12
  in
  let differential = Tr.final res col.bl -. Tr.final res col.blb in
  (* reading a stored 1 discharges blb (the qb=0 side): diff > 0 *)
  let correct =
    if stored then differential > 0.2 else differential < -0.2
  in
  { differential; correct }

let verify_read_path cfg =
  (simulate_read cfg ~stored:true).correct
  && (simulate_read cfg ~stored:false).correct
