(** Pin-accurate behavioural model of the generated BISR RAM module.

    Wraps the fault-aware array, the TLB and the microprogrammed
    controller behind the module's actual interface (see
    {!Compiler.pinout}): drive it cycle by cycle with address, data and
    control pins exactly as an SoC integration would.

    Normal mode ([cs] high, [test] low): combinational-read semantics —
    [dout] of the cycle reflects the addressed word (through the TLB
    diversion once repaired); [we] high writes [din].

    Test mode: pulsing [test] runs the complete two-pass self-test and
    repair internally (the controller's cycles are not interleaved with
    user cycles — BUSY covers them, as in a real power-on BIST whose
    duration the system only observes through BUSY/FAIL). *)

type t

val create : Compiler.t -> t

(** Manufacture faults into the underlying array (before power-on). *)
val inject : t -> Bisram_faults.Fault.t list -> unit

type pins_in = {
  addr : int;
  din : Bisram_sram.Word.t;
  we : bool;
  cs : bool;
  test : bool;  (** start self-test (sampled on a rising level) *)
}

type pins_out = {
  dout : Bisram_sram.Word.t;
  busy : bool;  (** self-test ran during this cycle *)
  fail : bool;  (** latched "Repair Unsuccessful" *)
}

val idle : bpw:int -> pins_in

(** One interface cycle. *)
val cycle : t -> pins_in -> pins_out

(** Statistics of the last self-test, if any. *)
val last_test : t -> Bisram_bist.Controller.report option

(** Number of interface cycles driven so far. *)
val cycles : t -> int
