(** The BISRAMGEN compiler: configuration in, complete design out.

    [compile] runs the whole flow of Fig. 1: microprogram the march
    test into the TRPLA, generate the macrocells bottom-up from the
    leaf library, place and route them, and extract the area, timing
    and controller reports — the "guarantees" BISRAMGEN extrapolates
    before committing to a layout. *)

type area_report = {
  array_mm2 : float;  (** regular-row RAM core *)
  base_mm2 : float;  (** core + address/column periphery, no BIST/BISR *)
  logic_mm2 : float;  (** BIST + BISR logic (TRPLA, generators, TLB, STREG) *)
  spare_mm2 : float;  (** spare rows and their row periphery *)
  module_mm2 : float;  (** placed-and-routed module bounding box *)
  base_module_mm2 : float;
      (** bounding box of the floorplanned base RAM (no spares, no
          BIST/BISR) — what a plain compiler would produce *)
  dead_mm2 : float;  (** floorplan dead space *)
  overhead_logic_pct : float;  (** logic / base (Table I's metric) *)
  overhead_total_pct : float;
      (** (module - base_module) / base_module: the full silicon cost of
          self-repair, floorplanning effects included *)
  growth_factor : float;  (** module / base_module, Fig. 4's growth *)
}

type timing_report = {
  access : Bisram_sram.Timing.breakdown;
  access_ns : float;
  tlb : Bisram_bisr.Tlb_timing.estimate;
  tlb_ns : float;
  tlb_maskable : bool;
}

type controller_report = {
  states : int;
  flipflops : int;
  pla_terms : int;
  pla_transistors : int;
  backgrounds : int;
  test_ops : int;  (** RAM operations for the two-pass self-test *)
}

type t = {
  config : Config.t;
  macros : Macros.t;
  controller : Bisram_bist.Controller.t;
  pla : Bisram_bist.Trpla.t;
  floorplan : Bisram_pr.Floorplan.t;
  area : area_report;
  timing : timing_report;
  ctl_report : controller_report;
}

val compile : Config.t -> t

(** Run the built-in two-pass self-test/repair against a behavioural
    model carrying the given faults (small organizations only — the
    simulation is word-accurate). *)
val self_test :
  t -> faults:Bisram_faults.Fault.t list ->
  Bisram_bisr.Repair.outcome * Bisram_bist.Controller.report

type pin = { pin_name : string; width : int; dir : string; purpose : string }

(** The module symbol (Fig. 1's "symbols" output): the generated RAM's
    interface pins. *)
val pinout : t -> pin list

(** One-line-per-figure text datasheet. *)
val datasheet : t -> string

(** CIF of the leaf library (small, always safe to write). *)
val leaf_library_cif : t -> (string * string) list

(** Structural Verilog of the BIST/BISR engine: the TRPLA FSM compiled
    to gates, ADDGEN, the DATAGEN Johnson core, the read comparator and
    the TLB CAM — the synthesizable face of the generated self-test
    hardware. *)
val rtl : t -> string
