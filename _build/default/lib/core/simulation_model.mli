(** Simulation-model generation (the second output of Fig. 1).

    Builds a transistor-level circuit of one RAM column — precharge
    head, the accessed 6T cell, the bit-line parasitics of the full
    column height — exports it as a SPICE deck, and can exercise a read
    through the built-in switch-level transient engine to confirm the
    correct bit-line differential develops for both stored values. *)

type column = {
  circuit : Bisram_spice.Circuit.t;
  bl : Bisram_spice.Circuit.net;
  blb : Bisram_spice.Circuit.net;
  wordline : Bisram_spice.Circuit.net;
  pclk : Bisram_spice.Circuit.net;
  q : Bisram_spice.Circuit.net;
  qb : Bisram_spice.Circuit.net;
}

(** Transistor-level column for the configuration; the stored value is
    imposed through a weak bias on the storage node. *)
val column : Config.t -> stored:bool -> column

(** SPICE deck of the column (with a .TRAN control). *)
val spice_deck : Config.t -> string

type read_result = {
  differential : float;
      (** v(bl) - v(blb) at the end of the sensing window *)
  correct : bool;  (** sign matches the stored value *)
}

(** Simulate a read: precharge, release, raise the word line, measure
    the developed differential. *)
val simulate_read : Config.t -> stored:bool -> read_result

(** Both polarities read correctly. *)
val verify_read_path : Config.t -> bool
