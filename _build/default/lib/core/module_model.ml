module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module Controller = Bisram_bist.Controller
module Repair = Bisram_bisr.Repair
module Tlb = Bisram_bisr.Tlb

type t = {
  design : Compiler.t;
  model : Model.t;
  mutable tlb : Tlb.t option;
  mutable fail : bool;
  mutable test_seen : bool; (* for rising-level detection *)
  mutable last_report : Controller.report option;
  mutable n_cycles : int;
}

let create design =
  { design
  ; model = Model.create design.Compiler.config.Config.org
  ; tlb = None
  ; fail = false
  ; test_seen = false
  ; last_report = None
  ; n_cycles = 0
  }

let inject t faults =
  Model.set_faults t.model faults;
  (* manufacturing reset: any previous repair is void *)
  t.tlb <- None;
  t.fail <- false;
  t.last_report <- None;
  Model.set_remap t.model None

type pins_in = {
  addr : int;
  din : Word.t;
  we : bool;
  cs : bool;
  test : bool;
}

type pins_out = { dout : Word.t; busy : bool; fail : bool }

let idle ~bpw = { addr = 0; din = Word.zero bpw; we = false; cs = false; test = false }

let run_self_test t =
  let cfg = t.design.Compiler.config in
  let backgrounds = Config.backgrounds cfg in
  Model.set_remap t.model None;
  let outcome, report, tlb =
    Repair.run t.model cfg.Config.march ~backgrounds
  in
  t.last_report <- Some report;
  (match outcome with
  | Repair.Passed_clean | Repair.Repaired _ ->
      t.tlb <- Some tlb;
      t.fail <- false
  | Repair.Repair_unsuccessful _ ->
      t.tlb <- None;
      Model.set_remap t.model None;
      t.fail <- true);
  report

let cycle t pins =
  t.n_cycles <- t.n_cycles + 1;
  let org = t.design.Compiler.config.Config.org in
  let bpw = org.Org.bpw in
  let busy = ref false in
  (* rising level on TEST starts the power-on self-test *)
  if pins.test && not t.test_seen then begin
    ignore (run_self_test t);
    busy := true
  end;
  t.test_seen <- pins.test;
  let dout =
    if pins.cs && not !busy then begin
      if pins.addr < 0 || pins.addr >= org.Org.words then Word.zero bpw
      else if pins.we then begin
        Model.write_word t.model pins.addr pins.din;
        Word.zero bpw
      end
      else Model.read_word t.model pins.addr
    end
    else Word.zero bpw
  in
  { dout; busy = !busy; fail = t.fail }

let last_test t = t.last_report
let cycles t = t.n_cycles
