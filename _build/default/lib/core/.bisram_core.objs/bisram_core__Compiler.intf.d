lib/core/compiler.mli: Bisram_bisr Bisram_bist Bisram_faults Bisram_pr Bisram_sram Config Macros
