lib/core/macros.ml: Bisram_bist Bisram_geometry Bisram_layout Bisram_pr Bisram_sram Config List
