lib/core/module_model.mli: Bisram_bist Bisram_faults Bisram_sram Compiler
