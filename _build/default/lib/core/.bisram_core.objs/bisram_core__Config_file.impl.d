lib/core/config_file.ml: Bisram_bist Bisram_tech Config List Option Printf Result String
