lib/core/config_file.mli: Config
