lib/core/compiler.ml: Bisram_bisr Bisram_bist Bisram_gates Bisram_geometry Bisram_layout Bisram_pr Bisram_sram Bisram_tech Buffer Config List Macros Printf String
