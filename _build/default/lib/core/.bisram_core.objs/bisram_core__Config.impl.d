lib/core/config.ml: Bisram_bist Bisram_sram Bisram_tech Format Printf
