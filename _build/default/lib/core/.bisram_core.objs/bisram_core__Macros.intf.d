lib/core/macros.mli: Bisram_bist Bisram_layout Bisram_pr Config
