lib/core/simulation_model.ml: Bisram_spice Bisram_sram Bisram_tech Config Format Printf
