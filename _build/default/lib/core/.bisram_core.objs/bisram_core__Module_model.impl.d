lib/core/module_model.ml: Bisram_bisr Bisram_bist Bisram_sram Compiler Config
