lib/core/simulation_model.mli: Bisram_spice Config
