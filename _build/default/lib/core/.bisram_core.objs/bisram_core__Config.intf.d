lib/core/config.mli: Bisram_bist Bisram_sram Bisram_tech Format
