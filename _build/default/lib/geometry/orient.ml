type t = R0 | R90 | R180 | R270 | Mx | Mx90 | My | My90

let all = [ R0; R90; R180; R270; Mx; Mx90; My; My90 ]

(* Represent each orientation as a 2x2 integer matrix [a b; c d] acting on
   column vectors; composition is then matrix product, which keeps the
   group law honest. *)
let matrix = function
  | R0 -> (1, 0, 0, 1)
  | R90 -> (0, -1, 1, 0)
  | R180 -> (-1, 0, 0, -1)
  | R270 -> (0, 1, -1, 0)
  | Mx -> (1, 0, 0, -1)
  | My -> (-1, 0, 0, 1)
  | Mx90 -> (0, -1, -1, 0) (* R90 after Mx *)
  | My90 -> (0, 1, 1, 0) (* R90 after My *)

let of_matrix = function
  | 1, 0, 0, 1 -> R0
  | 0, -1, 1, 0 -> R90
  | -1, 0, 0, -1 -> R180
  | 0, 1, -1, 0 -> R270
  | 1, 0, 0, -1 -> Mx
  | -1, 0, 0, 1 -> My
  | 0, -1, -1, 0 -> Mx90
  | 0, 1, 1, 0 -> My90
  | _ -> invalid_arg "Orient.of_matrix: not an orientation matrix"

let compose o1 o2 =
  let a1, b1, c1, d1 = matrix o1 and a2, b2, c2, d2 = matrix o2 in
  of_matrix
    ( (a1 * a2) + (b1 * c2),
      (a1 * b2) + (b1 * d2),
      (c1 * a2) + (d1 * c2),
      (c1 * b2) + (d1 * d2) )

let inverse o =
  let rec find = function
    | [] -> assert false
    | cand :: rest -> if compose cand o = R0 then cand else find rest
  in
  find all

let apply o (p : Point.t) =
  let a, b, c, d = matrix o in
  Point.make ((a * p.Point.x) + (b * p.Point.y)) ((c * p.Point.x) + (d * p.Point.y))

let swaps_axes = function
  | R90 | R270 | Mx90 | My90 -> true
  | R0 | R180 | Mx | My -> false

let equal (a : t) b = a = b

let to_string = function
  | R0 -> "R0"
  | R90 -> "R90"
  | R180 -> "R180"
  | R270 -> "R270"
  | Mx -> "MX"
  | Mx90 -> "MX90"
  | My -> "MY"
  | My90 -> "MY90"

let of_string s =
  match String.uppercase_ascii s with
  | "R0" -> Some R0
  | "R90" -> Some R90
  | "R180" -> Some R180
  | "R270" -> Some R270
  | "MX" -> Some Mx
  | "MX90" -> Some Mx90
  | "MY" -> Some My
  | "MY90" -> Some My90
  | _ -> None

let pp ppf o = Format.pp_print_string ppf (to_string o)
