(** The eight planar orientations of a macrocell (the dihedral group D4).

    Names follow the usual layout convention: [Rn] is a counter-clockwise
    rotation by [n] degrees; [Mx] mirrors about the x axis (flips y);
    [My] mirrors about the y axis (flips x); [Mx90]/[My90] are a mirror
    followed by a 90-degree rotation. *)

type t = R0 | R90 | R180 | R270 | Mx | Mx90 | My | My90

val all : t list

(** [compose a b] is the orientation "first apply [b], then [a]". *)
val compose : t -> t -> t

val inverse : t -> t

(** Apply an orientation to a point (about the origin). *)
val apply : t -> Point.t -> Point.t

(** Whether the orientation swaps the x and y extents of a box. *)
val swaps_axes : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option
