(** Integer lattice points.

    All geometry in BISRAMGEN is on an integer grid whose unit is one
    nanometer.  Lambda-based design rules are scaled onto this grid by
    {!Bisram_tech}; keeping coordinates integral makes abutment exact. *)

type t = { x : int; y : int }

val make : int -> int -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Squared Euclidean distance (exact on the grid). *)
val dist2 : t -> t -> int

(** Manhattan (L1) distance, the metric used by the router. *)
val manhattan : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
