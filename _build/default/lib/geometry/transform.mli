(** Rigid placements: an orientation followed by a translation.

    [apply { orient; offset } p = Orient.apply orient p + offset].
    Placements compose; a macrocell instance carries one placement and a
    flattened layout is obtained by pushing placements down to leaf
    rectangles. *)

type t = { orient : Orient.t; offset : Point.t }

val identity : t
val translation : Point.t -> t
val rotation : Orient.t -> t
val make : Orient.t -> Point.t -> t

(** [compose a b] is "first [b], then [a]". *)
val compose : t -> t -> t

val inverse : t -> t
val apply : t -> Point.t -> Point.t
val apply_rect : t -> Rect.t -> Rect.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
