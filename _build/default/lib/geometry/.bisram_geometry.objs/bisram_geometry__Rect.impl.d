lib/geometry/rect.ml: Format Int List Orient Point
