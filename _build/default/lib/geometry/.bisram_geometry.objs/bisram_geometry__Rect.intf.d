lib/geometry/rect.mli: Format Orient Point
