lib/geometry/orient.ml: Format Point String
