lib/geometry/transform.mli: Format Orient Point Rect
