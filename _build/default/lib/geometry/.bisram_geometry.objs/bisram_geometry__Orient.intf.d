lib/geometry/orient.mli: Format Point
