lib/geometry/transform.ml: Format Orient Point Rect
