type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make xa ya xb yb =
  { x0 = min xa xb; y0 = min ya yb; x1 = max xa xb; y1 = max ya yb }

let of_size ~w ~h (p : Point.t) =
  assert (w >= 0 && h >= 0);
  { x0 = p.Point.x; y0 = p.Point.y; x1 = p.Point.x + w; y1 = p.Point.y + h }

let width r = r.x1 - r.x0
let height r = r.y1 - r.y0
let area r = width r * height r
let center r = Point.make ((r.x0 + r.x1) / 2) ((r.y0 + r.y1) / 2)
let lower_left r = Point.make r.x0 r.y0
let upper_right r = Point.make r.x1 r.y1
let is_empty r = r.x0 = r.x1 || r.y0 = r.y1
let equal a b = a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1

let compare a b =
  let c = Int.compare a.x0 b.x0 in
  if c <> 0 then c
  else
    let c = Int.compare a.y0 b.y0 in
    if c <> 0 then c
    else
      let c = Int.compare a.x1 b.x1 in
      if c <> 0 then c else Int.compare a.y1 b.y1

let translate (d : Point.t) r =
  { x0 = r.x0 + d.Point.x
  ; y0 = r.y0 + d.Point.y
  ; x1 = r.x1 + d.Point.x
  ; y1 = r.y1 + d.Point.y
  }

let transform o r =
  let a = Orient.apply o (Point.make r.x0 r.y0)
  and b = Orient.apply o (Point.make r.x1 r.y1) in
  make a.Point.x a.Point.y b.Point.x b.Point.y

let inflate d r =
  let r' = { x0 = r.x0 - d; y0 = r.y0 - d; x1 = r.x1 + d; y1 = r.y1 + d } in
  if r'.x0 > r'.x1 || r'.y0 > r'.y1 then
    let c = center r in
    { x0 = c.Point.x; y0 = c.Point.y; x1 = c.Point.x; y1 = c.Point.y }
  else r'

let contains_point r (p : Point.t) =
  r.x0 <= p.Point.x && p.Point.x <= r.x1 && r.y0 <= p.Point.y && p.Point.y <= r.y1

let contains ~outer ~inner =
  outer.x0 <= inner.x0 && outer.y0 <= inner.y0 && inner.x1 <= outer.x1
  && inner.y1 <= outer.y1

let touches a b = a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1
let overlaps a b = a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1

let inter a b =
  if touches a b then
    Some
      { x0 = max a.x0 b.x0
      ; y0 = max a.y0 b.y0
      ; x1 = min a.x1 b.x1
      ; y1 = min a.y1 b.y1
      }
  else None

let join a b =
  { x0 = min a.x0 b.x0
  ; y0 = min a.y0 b.y0
  ; x1 = max a.x1 b.x1
  ; y1 = max a.y1 b.y1
  }

let bbox = function
  | [] -> invalid_arg "Rect.bbox: empty list"
  | r :: rs -> List.fold_left join r rs

let abuts a b =
  (not (overlaps a b))
  &&
  match inter a b with
  | None -> false
  | Some i -> width i > 0 || height i > 0

let pp ppf r = Format.fprintf ppf "[%d,%d %d,%d]" r.x0 r.y0 r.x1 r.y1
let to_string r = Format.asprintf "%a" pp r
