(** Axis-aligned rectangles on the integer grid.

    A rectangle is stored in normalized form: [x0 <= x1] and [y0 <= y1].
    Degenerate (zero-width or zero-height) rectangles are allowed; they
    are useful as port stubs on cell edges. *)

type t = private { x0 : int; y0 : int; x1 : int; y1 : int }

(** [make x0 y0 x1 y1] normalizes corner order. *)
val make : int -> int -> int -> int -> t

(** [of_size ~w ~h p] is the [w] x [h] rectangle with lower-left corner [p]. *)
val of_size : w:int -> h:int -> Point.t -> t

val width : t -> int
val height : t -> int
val area : t -> int
val center : t -> Point.t
val lower_left : t -> Point.t
val upper_right : t -> Point.t

val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val translate : Point.t -> t -> t
val transform : Orient.t -> t -> t

(** [inflate d r] grows [r] by [d] on every side (shrinks if negative). *)
val inflate : int -> t -> t

val contains_point : t -> Point.t -> bool
val contains : outer:t -> inner:t -> bool

(** Closed-region intersection test: shared edges count as intersecting. *)
val touches : t -> t -> bool

(** Open-region intersection test: shared edges do not count. *)
val overlaps : t -> t -> bool

val inter : t -> t -> t option

(** Smallest rectangle covering both arguments. *)
val join : t -> t -> t

(** Bounding box of a non-empty list. @raise Invalid_argument on []. *)
val bbox : t list -> t

(** [abuts a b] holds when [a] and [b] share a boundary segment of
    positive length but do not overlap — the contract between adjacent
    macrocells connected by abutment. *)
val abuts : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
