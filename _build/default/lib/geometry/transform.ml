type t = { orient : Orient.t; offset : Point.t }

let identity = { orient = Orient.R0; offset = Point.zero }
let translation offset = { orient = Orient.R0; offset }
let rotation orient = { orient; offset = Point.zero }
let make orient offset = { orient; offset }
let apply t p = Point.add (Orient.apply t.orient p) t.offset

let compose a b =
  (* (a o b) p = a (b p) = Oa (Ob p + tb) + ta = (Oa Ob) p + (Oa tb + ta) *)
  { orient = Orient.compose a.orient b.orient
  ; offset = Point.add (Orient.apply a.orient b.offset) a.offset
  }

let inverse t =
  let oi = Orient.inverse t.orient in
  { orient = oi; offset = Point.neg (Orient.apply oi t.offset) }

let apply_rect t r = Rect.translate t.offset (Rect.transform t.orient r)
let equal a b = Orient.equal a.orient b.orient && Point.equal a.offset b.offset

let pp ppf t =
  Format.fprintf ppf "%a@%a" Orient.pp t.orient Point.pp t.offset
