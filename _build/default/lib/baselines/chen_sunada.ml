module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module Engine = Bisram_bist.Engine
module F = Bisram_faults.Fault
module E = Bisram_tech.Electrical
module Pr = Bisram_tech.Process
module Sz = Bisram_spice.Sizing

type t = {
  org : Org.t;
  n_blocks : int;
  spare_blocks : int;
  words_per_block : int;
  (* per-block capture registers: up to two diverted word addresses *)
  captures : (int * Word.t ref) list array;
  (* dead blocks diverted to spare blocks (index into spare storage) *)
  dead : (int, int) Hashtbl.t;
  mutable spares_used : int;
  spare_store : Word.t array array; (* spare block storage *)
}

let create org ~subblocks ~spare_blocks =
  if subblocks <= 0 || org.Org.words mod subblocks <> 0 then
    invalid_arg "Chen_sunada.create: subblocks must divide words";
  if spare_blocks < 0 then invalid_arg "Chen_sunada.create: spare_blocks";
  let words_per_block = org.Org.words / subblocks in
  { org
  ; n_blocks = subblocks
  ; spare_blocks
  ; words_per_block
  ; captures = Array.make subblocks []
  ; dead = Hashtbl.create 4
  ; spares_used = 0
  ; spare_store =
      Array.init spare_blocks (fun _ ->
          Array.make words_per_block (Word.zero org.Org.bpw))
  }

let subblocks t = t.n_blocks
let words_per_block t = t.words_per_block

let backgrounds ~bpw = [ Word.zero bpw; Word.ones bpw ]

type outcome =
  | Passed_clean
  | Repaired of { word_repairs : int; block_repairs : int }
  | Unsuccessful

let block_of t addr = addr / t.words_per_block

let diverted_ram t model =
  let base = Engine.ram_of_model model in
  let lookup addr =
    let blk = block_of t addr in
    match Hashtbl.find_opt t.dead blk with
    | Some spare -> `Spare_block (spare, addr mod t.words_per_block)
    | None -> (
        (* sequential comparison with the two captured addresses *)
        match List.assoc_opt addr t.captures.(blk) with
        | Some cell -> `Captured cell
        | None -> `Direct)
  in
  { base with
    Engine.read =
      (fun addr ->
        match lookup addr with
        | `Direct -> base.Engine.read addr
        | `Captured cell -> !cell
        | `Spare_block (s, off) -> t.spare_store.(s).(off))
  ; write =
      (fun addr w ->
        match lookup addr with
        | `Direct -> base.Engine.write addr w
        | `Captured cell -> cell := w
        | `Spare_block (s, off) -> t.spare_store.(s).(off) <- w)
  }

let repair t model test ~backgrounds =
  assert (Model.org model = t.org);
  Model.clear model;
  let failures = Engine.run_ram (Engine.ram_of_model model) test ~backgrounds in
  let addrs =
    List.sort_uniq Int.compare (List.map (fun f -> f.Engine.addr) failures)
  in
  if addrs = [] then Passed_clean
  else begin
    (* group faulty addresses per subblock *)
    let per_block = Hashtbl.create 8 in
    List.iter
      (fun addr ->
        let blk = block_of t addr in
        Hashtbl.replace per_block blk
          (addr
          ::
          (match Hashtbl.find_opt per_block blk with
          | Some l -> l
          | None -> [])))
      addrs;
    let word_repairs = ref 0 and block_repairs = ref 0 in
    let feasible = ref true in
    Hashtbl.iter
      (fun blk faulty ->
        if List.length faulty <= 2 then begin
          t.captures.(blk) <-
            List.map (fun a -> (a, ref (Word.zero t.org.Org.bpw))) faulty;
          word_repairs := !word_repairs + List.length faulty
        end
        else if t.spares_used < t.spare_blocks then begin
          Hashtbl.replace t.dead blk t.spares_used;
          t.spares_used <- t.spares_used + 1;
          incr block_repairs
        end
        else feasible := false)
      per_block;
    if not !feasible then Unsuccessful
    else begin
      (* verify pass through the repaired structure *)
      Model.clear model;
      if Engine.run_ram (diverted_ram t model) test ~backgrounds = [] then
        Repaired { word_repairs = !word_repairs; block_repairs = !block_repairs }
      else Unsuccessful
    end
  end

let repairable t faults =
  let per_block = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let c = F.victim f in
      if c.F.row < Org.rows t.org then begin
        let addr = Org.addr_of t.org ~row:c.F.row ~col:(c.F.col mod t.org.Org.bpc) in
        let blk = block_of t addr in
        let set =
          match Hashtbl.find_opt per_block blk with
          | Some s -> s
          | None ->
              let s = Hashtbl.create 4 in
              Hashtbl.add per_block blk s;
              s
        in
        Hashtbl.replace set addr ()
      end)
    faults;
  let over_budget =
    Hashtbl.fold
      (fun _ set acc -> if Hashtbl.length set > 2 then acc + 1 else acc)
      per_block 0
  in
  over_budget <= t.spare_blocks

let delay_penalty ?(entries = 2) p ~org =
  (* sequential register compares: each is an XOR per address bit into
     a log-depth AND tree, then the select mux *)
  let e = p.Pr.electrical in
  let feature_m = float_of_int p.Pr.feature_nm *. 1e-9 in
  let unit = Sz.balanced e ~feature_m ~drive:1.0 in
  let log2i n =
    let rec go acc k = if k <= 1 then acc else go (acc + 1) (k / 2) in
    go 0 n
  in
  let addr_bits = max 1 (log2i org.Org.words) in
  let tree_depth = max 1 (log2i addr_bits) in
  let stage = Sz.inverter_delay e ~feature_m unit ~cload:(2.0 *. Sz.input_cap e unit) in
  let one_compare = float_of_int (1 + tree_depth) *. stage in
  let mux = stage in
  (float_of_int entries *. one_compare) +. mux
