lib/baselines/sawada.ml: Bisram_bist Bisram_faults Bisram_sram Hashtbl Int List
