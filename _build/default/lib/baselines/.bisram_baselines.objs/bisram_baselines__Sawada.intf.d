lib/baselines/sawada.mli: Bisram_bist Bisram_faults Bisram_sram
