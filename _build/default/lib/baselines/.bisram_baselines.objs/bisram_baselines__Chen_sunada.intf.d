lib/baselines/chen_sunada.mli: Bisram_bist Bisram_faults Bisram_sram Bisram_tech
