lib/baselines/chen_sunada.ml: Array Bisram_bist Bisram_faults Bisram_spice Bisram_sram Bisram_tech Hashtbl Int List
