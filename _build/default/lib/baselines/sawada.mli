(** Sawada et al.'s 1989 built-in self-repair scheme (Section III).

    The original address-comparison method: during test mode a single
    failing word address is stored in the fail-address register; during
    normal mode every incoming address is compared against it, and a
    match diverts the access to one spare word.  Only one faulty
    address location can be registered, so any pattern with two or more
    faulty words is unrepairable. *)

type t

val create : Bisram_sram.Org.t -> t

(** Record a failing word address; [`Full] once one is registered and a
    different address fails. *)
val record : t -> addr:int -> [ `Ok | `Full ]

val registered : t -> int option

(** Install the diversion into a model: the matching address reads and
    writes a private spare word instead of the array. *)
val attach : t -> Bisram_sram.Model.t -> unit

(** Two-pass test-and-repair flow with this scheme. *)
val repair :
  Bisram_sram.Model.t ->
  Bisram_bist.March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  [ `Passed_clean | `Repaired of int | `Unsuccessful ]

(** Static repairability: at most one faulty word (spare assumed good
    unless a fault hits it — the spare is one extra word). *)
val repairable : Bisram_sram.Org.t -> Bisram_faults.Fault.t list -> bool
