(** Chen and Sunada's hierarchical self-test/self-repair structure
    (Section III).

    The memory is decomposed into subblocks; the lowest level carries
    the self-test (IFA-13) and a fault-signature block with {e two}
    fault-capture registers, so at most two faulty word addresses per
    subblock can be redirected to the subblock's redundant locations.
    Subblocks with more than two faults are excluded by the top-level
    fault assembler, which diverts their accesses to spare subblocks.
    In normal mode the incoming address is compared {e sequentially}
    with the two captured addresses, costing two compare delays on the
    access path.  The data generator applies a single pattern and its
    complement (no Johnson backgrounds). *)

type t

(** [create org ~subblocks ~spare_blocks] — [subblocks] must divide the
    word count. *)
val create : Bisram_sram.Org.t -> subblocks:int -> spare_blocks:int -> t

val subblocks : t -> int
val words_per_block : t -> int

(** The backgrounds its data generator can apply: all-0 and all-1. *)
val backgrounds : bpw:int -> Bisram_sram.Word.t list

type outcome =
  | Passed_clean
  | Repaired of { word_repairs : int; block_repairs : int }
  | Unsuccessful

(** Two-pass test-and-repair over a faulty model (word diversion via
    the capture registers, block diversion via the fault assembler). *)
val repair :
  t ->
  Bisram_sram.Model.t ->
  Bisram_bist.March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  outcome

(** Static repairability: every subblock has <= 2 faulty words, except
    that up to [spare_blocks] over-budget subblocks may be excluded. *)
val repairable : t -> Bisram_faults.Fault.t list -> bool

(** Normal-mode delay penalty of sequentially comparing the incoming
    address with [entries] capture registers (Chen-Sunada uses two);
    contrast with BISRAMGEN's parallel TLB, whose match time is
    independent of the entry count. *)
val delay_penalty :
  ?entries:int -> Bisram_tech.Process.t -> org:Bisram_sram.Org.t -> float
