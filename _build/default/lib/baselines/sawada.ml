module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module Engine = Bisram_bist.Engine
module F = Bisram_faults.Fault

type t = {
  org : Org.t;
  mutable fail_addr : int option;
  mutable spare : Word.t; (* one spare word *)
}

let create org = { org; fail_addr = None; spare = Word.zero org.Org.bpw }

let record t ~addr =
  match t.fail_addr with
  | None ->
      t.fail_addr <- Some addr;
      `Ok
  | Some a when a = addr -> `Ok
  | Some _ -> `Full

let registered t = t.fail_addr

(* Word-level diversion around a model. *)
let diverted_ram t model =
  let base = Engine.ram_of_model model in
  { base with
    Engine.read =
      (fun addr ->
        if t.fail_addr = Some addr then t.spare else base.Engine.read addr)
  ; write =
      (fun addr w ->
        if t.fail_addr = Some addr then t.spare <- w
        else base.Engine.write addr w)
  }

let attach t model =
  (* the model's row remap cannot express word diversion; accesses must
     go through [diverted_ram], so attach only validates compatibility *)
  if Model.org model <> t.org then invalid_arg "Sawada.attach: wrong org"

let repair model test ~backgrounds =
  let t = create (Model.org model) in
  Model.clear model;
  let failures =
    Engine.run_ram (Engine.ram_of_model model) test ~backgrounds
  in
  let addrs =
    List.sort_uniq Int.compare
      (List.map (fun f -> f.Engine.addr) failures)
  in
  match addrs with
  | [] -> `Passed_clean
  | [ addr ] -> (
      (match record t ~addr with `Ok -> () | `Full -> assert false);
      (* verify pass through the diversion *)
      Model.clear model;
      t.spare <- Word.zero t.org.Org.bpw;
      match Engine.run_ram (diverted_ram t model) test ~backgrounds with
      | [] -> `Repaired addr
      | _ :: _ -> `Unsuccessful)
  | _ :: _ :: _ -> `Unsuccessful

let repairable org faults =
  let words = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let c = F.victim f in
      if c.F.row < Org.rows org then
        Hashtbl.replace words
          (Org.addr_of org ~row:c.F.row ~col:(c.F.col mod org.Org.bpc))
          ())
    faults;
  Hashtbl.length words <= 1
