(** Placeable blocks: the abstract (outline + pins) view of a macrocell
    that the macrocell place-and-route works on. *)

type pin = {
  net : string;  (** net name; pins of equal net must be connected *)
  edge : Bisram_layout.Port.edge;
  offset : int;  (** position of the pin centre along the edge, lambda *)
}

type t = {
  name : string;
  w : int;
  h : int;
  pins : pin list;
}

val make : name:string -> w:int -> h:int -> pin list -> t
val area : t -> int

(** Derive a block from a macrocell: outline from the bounding box,
    pins from the macro-level ports (net = port name). *)
val of_macro : Bisram_layout.Macro.t -> t

(** Pin centre in block-local coordinates (block at origin, R0). *)
val pin_position : t -> pin -> Bisram_geometry.Point.t

val pp : Format.formatter -> t -> unit
