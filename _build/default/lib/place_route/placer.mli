(** The macrocell placer (Section II).

    The heuristic follows the paper: macrocells are sorted in
    decreasing order of area and placed one at a time; each new block
    tries candidate positions abutting the already-placed blocks.
    Candidates are scored on dead space (keeping the overall layout
    "as rectangular as possible") and on estimated interconnect length.
    Two refinements from the paper are applied:

    - {b port alignment}: when the new block faces a placed block with
      which it shares nets, the block slides along the shared edge so
      those ports line up (also avoiding the 64-orientation search);
    - {b stretching}: a block abutting a slightly longer edge is
      stretched to match it, so ports connect by abutment. *)

type placement = {
  block : Block.t;
  at : Bisram_geometry.Point.t;
  stretch_w : int;  (** extra width added by stretching *)
  stretch_h : int;
}

type result = {
  placements : placement list;
  bbox : Bisram_geometry.Rect.t;
  dead_space : int;  (** bbox area - sum of placed areas *)
  rectangularity : float;  (** sum of areas / bbox area, in (0,1] *)
}

val rect_of_placement : placement -> Bisram_geometry.Rect.t

(** Absolute position of a pin of a placed block. *)
val pin_point : placement -> Block.pin -> Bisram_geometry.Point.t

(** [place blocks] — blocks are connected by pins sharing net names. *)
val place : Block.t list -> result

(** Total half-perimeter wirelength over nets (pre-routing metric). *)
val hpwl : result -> int

val find : result -> string -> placement option
val pp : Format.formatter -> result -> unit
