module P = Bisram_geometry.Point
module R = Bisram_geometry.Rect
module Port = Bisram_layout.Port
module Macro = Bisram_layout.Macro

type pin = { net : string; edge : Port.edge; offset : int }
type t = { name : string; w : int; h : int; pins : pin list }

let make ~name ~w ~h pins =
  if w <= 0 || h <= 0 then invalid_arg "Block.make: size";
  List.iter
    (fun pin ->
      let along =
        match pin.edge with
        | Port.North | Port.South -> w
        | Port.East | Port.West -> h
      in
      if pin.offset < 0 || pin.offset > along then
        invalid_arg
          (Printf.sprintf "Block.make: pin %s offset %d out of edge" pin.net
             pin.offset))
    pins;
  { name; w; h; pins }

let area t = t.w * t.h

let of_macro m =
  let box = Macro.bbox m in
  let w = R.width box and h = R.height box in
  let ll = R.lower_left box in
  let pins =
    List.map
      (fun (p : Port.t) ->
        let c = R.center p.Port.rect in
        let local = P.sub c ll in
        let offset =
          match p.Port.edge with
          | Port.North | Port.South -> local.P.x
          | Port.East | Port.West -> local.P.y
        in
        { net = p.Port.name; edge = p.Port.edge; offset = max 0 (min offset (max w h)) })
      m.Macro.ports
  in
  make ~name:m.Macro.name ~w ~h pins

let pin_position t pin =
  match pin.edge with
  | Port.South -> P.make pin.offset 0
  | Port.North -> P.make pin.offset t.h
  | Port.West -> P.make 0 pin.offset
  | Port.East -> P.make t.w pin.offset

let pp ppf t =
  Format.fprintf ppf "%s %dx%d (%d pins)" t.name t.w t.h (List.length t.pins)
