module P = Bisram_geometry.Point
module R = Bisram_geometry.Rect
module Port = Bisram_layout.Port

type placement = {
  block : Block.t;
  at : P.t;
  stretch_w : int;
  stretch_h : int;
}

type result = {
  placements : placement list;
  bbox : R.t;
  dead_space : int;
  rectangularity : float;
}

let placed_w pl = pl.block.Block.w + pl.stretch_w
let placed_h pl = pl.block.Block.h + pl.stretch_h

let rect_of_placement pl =
  R.of_size ~w:(placed_w pl) ~h:(placed_h pl) pl.at

let pin_point pl pin =
  (* stretching extends the far edges; pins keep their offsets *)
  P.add pl.at (Block.pin_position pl.block pin)

let overlaps_any rect placements =
  List.exists (fun pl -> R.overlaps rect (rect_of_placement pl)) placements

let bbox_of placements =
  match placements with
  | [] -> R.make 0 0 0 0
  | pl :: rest ->
      List.fold_left
        (fun acc p -> R.join acc (rect_of_placement p))
        (rect_of_placement pl) rest

(* Sum of min distances from each pin of the candidate to an
   already-placed pin of the same net. *)
let wire_estimate (candidate : placement) placements =
  List.fold_left
    (fun acc pin ->
      let mine = pin_point candidate pin in
      let best =
        List.fold_left
          (fun best pl ->
            List.fold_left
              (fun best other ->
                if other.Block.net = pin.Block.net then
                  min best (P.manhattan mine (pin_point pl other))
                else best)
              best pl.block.Block.pins)
          max_int placements
      in
      if best = max_int then acc else acc + best)
    0 candidate.block.Block.pins

(* Candidate positions: abutting each placed block on its east or north
   side, plus port-aligned variants, plus the two global shelf spots. *)
let candidates_for (b : Block.t) placements bbox =
  let base =
    List.concat_map
      (fun pl ->
        let r = rect_of_placement pl in
        let right = P.make r.R.x1 r.R.y0 in
        let top = P.make r.R.x0 r.R.y1 in
        (* port alignment: facing pins slide the block along the edge *)
        let aligned_right =
          List.concat_map
            (fun (mine : Block.pin) ->
              if mine.Block.edge = Port.West then
                List.filter_map
                  (fun (theirs : Block.pin) ->
                    if
                      theirs.Block.edge = Port.East
                      && theirs.Block.net = mine.Block.net
                    then
                      Some
                        (P.make r.R.x1
                           (pl.at.P.y + theirs.Block.offset - mine.Block.offset))
                    else None)
                  pl.block.Block.pins
              else [])
            b.Block.pins
        in
        let aligned_top =
          List.concat_map
            (fun (mine : Block.pin) ->
              if mine.Block.edge = Port.South then
                List.filter_map
                  (fun (theirs : Block.pin) ->
                    if
                      theirs.Block.edge = Port.North
                      && theirs.Block.net = mine.Block.net
                    then
                      Some
                        (P.make
                           (pl.at.P.x + theirs.Block.offset - mine.Block.offset)
                           r.R.y1)
                    else None)
                  pl.block.Block.pins
              else [])
            b.Block.pins
        in
        (right :: top :: aligned_right) @ aligned_top)
      placements
  in
  P.make bbox.R.x1 0 :: P.make 0 bbox.R.y1 :: base

(* Stretch the block to match the facing neighbour's edge when the
   mismatch is modest (<= 30%), so ports connect by abutment. *)
let stretching (b : Block.t) at placements =
  let my_rect = R.of_size ~w:b.Block.w ~h:b.Block.h at in
  let stretch_h =
    List.fold_left
      (fun acc pl ->
        let r = rect_of_placement pl in
        (* side-by-side abutment, bottoms aligned *)
        if (r.R.x1 = my_rect.R.x0 || my_rect.R.x1 = r.R.x0) && r.R.y0 = my_rect.R.y0
        then
          let nh = R.height r and mh = b.Block.h in
          if nh > mh && float_of_int (nh - mh) <= 0.3 *. float_of_int mh then
            max acc (nh - mh)
          else acc
        else acc)
      0 placements
  in
  let stretch_w =
    List.fold_left
      (fun acc pl ->
        let r = rect_of_placement pl in
        if (r.R.y1 = my_rect.R.y0 || my_rect.R.y1 = r.R.y0) && r.R.x0 = my_rect.R.x0
        then
          let nw = R.width r and mw = b.Block.w in
          if nw > mw && float_of_int (nw - mw) <= 0.3 *. float_of_int mw then
            max acc (nw - mw)
          else acc
        else acc)
      0 placements
  in
  (stretch_w, stretch_h)

let place blocks =
  if blocks = [] then invalid_arg "Placer.place: no blocks";
  let sorted =
    List.sort (fun a b -> Int.compare (Block.area b) (Block.area a)) blocks
  in
  let scale =
    sqrt (float_of_int (List.fold_left (fun a b -> a + Block.area b) 0 blocks))
  in
  let place_one placements b =
    match placements with
    | [] -> [ { block = b; at = P.zero; stretch_w = 0; stretch_h = 0 } ]
    | _ ->
        let bbox = bbox_of placements in
        let best = ref None in
        List.iter
          (fun at ->
            let trial = { block = b; at; stretch_w = 0; stretch_h = 0 } in
            let rect = rect_of_placement trial in
            if not (overlaps_any rect placements) then begin
              let bbox' = R.join bbox rect in
              let dead =
                R.area bbox'
                - List.fold_left
                    (fun a pl -> a + R.area (rect_of_placement pl))
                    (R.area rect) placements
              in
              let wl = wire_estimate trial placements in
              (* rectangularity (dead space) first; wirelength breaks
                 ties and decides between near-equal candidates *)
              let cost = float_of_int dead +. (float_of_int wl *. scale /. 100.0) in
              match !best with
              | Some (c, _) when c <= cost -> ()
              | _ -> best := Some (cost, trial)
            end)
          (candidates_for b placements bbox);
        let chosen =
          match !best with
          | Some (_, t) -> t
          | None ->
              (* fall back to the shelf right of everything *)
              { block = b
              ; at = P.make (bbox_of placements).R.x1 0
              ; stretch_w = 0
              ; stretch_h = 0
              }
        in
        let sw, sh = stretching b chosen.at placements in
        let stretched = { chosen with stretch_w = sw; stretch_h = sh } in
        let final =
          if overlaps_any (rect_of_placement stretched) placements then chosen
          else stretched
        in
        final :: placements
  in
  let placements = List.fold_left place_one [] sorted in
  let bbox = bbox_of placements in
  let used =
    List.fold_left (fun a pl -> a + R.area (rect_of_placement pl)) 0 placements
  in
  { placements = List.rev placements
  ; bbox
  ; dead_space = R.area bbox - used
  ; rectangularity = float_of_int used /. float_of_int (max 1 (R.area bbox))
  }

let hpwl result =
  (* group pins by net over all placements *)
  let nets = Hashtbl.create 32 in
  List.iter
    (fun pl ->
      List.iter
        (fun pin ->
          let p = pin_point pl pin in
          let cur =
            match Hashtbl.find_opt nets pin.Block.net with
            | Some r -> R.join r (R.make p.P.x p.P.y p.P.x p.P.y)
            | None -> R.make p.P.x p.P.y p.P.x p.P.y
          in
          Hashtbl.replace nets pin.Block.net cur)
        pl.block.Block.pins)
    result.placements;
  Hashtbl.fold (fun _ r acc -> acc + R.width r + R.height r) nets 0

let find result name =
  List.find_opt (fun pl -> pl.block.Block.name = name) result.placements

let pp ppf r =
  Format.fprintf ppf "bbox %dx%d, dead %d, rectangularity %.3f"
    (R.width r.bbox) (R.height r.bbox) r.dead_space r.rectangularity
