lib/place_route/router.mli: Bisram_geometry Bisram_tech Format Placer
