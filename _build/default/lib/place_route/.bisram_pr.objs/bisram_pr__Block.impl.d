lib/place_route/block.ml: Bisram_geometry Bisram_layout Format List Printf
