lib/place_route/placer.ml: Bisram_geometry Bisram_layout Block Format Hashtbl Int List
