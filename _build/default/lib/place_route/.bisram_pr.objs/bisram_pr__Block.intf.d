lib/place_route/block.mli: Bisram_geometry Bisram_layout Format
