lib/place_route/floorplan.mli: Bisram_tech Block Format Placer Router
