lib/place_route/floorplan.ml: Array Bisram_geometry Block Buffer Format List Placer Router String
