lib/place_route/placer.mli: Bisram_geometry Block Format
