lib/place_route/router.ml: Array Bisram_geometry Bisram_tech Block Format Hashtbl List Placer
