(** Floorplan reporting: metrics and the ASCII rendering used to
    reproduce the layout plots of Figs. 6 and 7. *)

type t = {
  placement : Placer.result;
  routing : Router.result;
}

val make : Bisram_tech.Rules.t -> Block.t list -> t

(** The paper's near-optimality measure: layout area over the sum of
    block areas, i.e. 1 + epsilon.  [epsilon] is reported. *)
val epsilon : t -> float

(** ASCII rendering of the placement, roughly [width] characters wide;
    each block is drawn as a box labelled with its name. *)
val render : ?width:int -> t -> string

val pp : Format.formatter -> t -> unit
