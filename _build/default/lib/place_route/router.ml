module P = Bisram_geometry.Point
module R = Bisram_geometry.Rect
module L = Bisram_tech.Layer

type segment = { net : string; a : P.t; b : P.t }

type result = {
  segments : segment list;
  wirelength : int;
  abutted_nets : int;
  routed_nets : int;
  conflicts : int;
}

let seg_len s = P.manhattan s.a s.b

(* Prim's MST over pin points (nets are small: a handful of pins). *)
let mst points =
  match points with
  | [] | [ _ ] -> []
  | first :: rest ->
      let in_tree = ref [ first ] in
      let out = ref rest in
      let edges = ref [] in
      while !out <> [] do
        let best = ref None in
        List.iter
          (fun p ->
            List.iter
              (fun q ->
                let d = P.manhattan p q in
                match !best with
                | Some (bd, _, _) when bd <= d -> ()
                | _ -> best := Some (d, p, q))
              !in_tree)
          !out;
        match !best with
        | None -> out := []
        | Some (_, p, q) ->
            edges := (q, p) :: !edges;
            in_tree := p :: !in_tree;
            out := List.filter (fun x -> not (P.equal x p)) !out
      done;
      !edges

let z_route ~jitter net (a : P.t) (b : P.t) =
  (* general route: vertical escape stubs at both pins onto per-net
     horizontal tracks, joined by a per-net vertical track, so every
     long leg sits on a jitterable coordinate *)
  if P.equal a b then []
  else begin
    let ya = a.P.y + jitter and yb = b.P.y + jitter in
    let xm = ((a.P.x + b.P.x) / 2) + jitter in
    (* per-net escape columns: pins of distinct nets often share the x
       of a common block edge, so the vertical stubs leave from a
       net-specific column reached by a short leg along the pin row *)
    let xa = a.P.x + jitter and xb = b.P.x + jitter in
    let waypoints =
      [ a; P.make xa a.P.y; P.make xa ya; P.make xm ya; P.make xm yb
      ; P.make xb yb; P.make xb b.P.y; b
      ]
    in
    let rec to_segments = function
      | p :: (q :: _ as rest) ->
          if P.equal p q then to_segments rest
          else { net; a = p; b = q } :: to_segments rest
      | [ _ ] | [] -> []
    in
    to_segments waypoints
  end

let is_horizontal s = s.a.P.y = s.b.P.y

(* Pin-access stubs: short jogs next to a pin, realized with vias in
   practice, are not track conflicts. *)
let stub_limit = 30

let segments_conflict s1 s2 =
  (* HV discipline: horizontal legs run on metal-3, vertical legs on
     metal-2, so perpendicular crossings are legal; only parallel
     same-direction overlaps between distinct nets conflict *)
  if s1.net = s2.net then false
  else if is_horizontal s1 <> is_horizontal s2 then false
  else if seg_len s1 <= stub_limit || seg_len s2 <= stub_limit then false
  else begin
    let widen s = R.inflate 1 (R.make s.a.P.x s.a.P.y s.b.P.x s.b.P.y) in
    R.overlaps (widen s1) (widen s2)
  end

let conflicting_nets segs_by_net =
  (* names of nets whose segments overlap another net's segments *)
  let all = Array.of_list (List.concat_map snd segs_by_net) in
  let bad = Hashtbl.create 8 in
  let count = ref 0 in
  for i = 0 to Array.length all - 1 do
    for j = i + 1 to Array.length all - 1 do
      if segments_conflict all.(i) all.(j) then begin
        incr count;
        Hashtbl.replace bad all.(i).net ();
        Hashtbl.replace bad all.(j).net ()
      end
    done
  done;
  (!count, bad)

let route rules placement =
  let pitch = Bisram_tech.Rules.pitch rules L.Metal3 in
  (* collect pins by net *)
  let nets = Hashtbl.create 32 in
  List.iter
    (fun pl ->
      List.iter
        (fun pin ->
          let p = Placer.pin_point pl pin in
          let cur =
            match Hashtbl.find_opt nets pin.Block.net with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace nets pin.Block.net (p :: cur))
        pl.Placer.block.Block.pins)
    placement.Placer.placements;
  let abutted = ref 0 in
  let to_route = ref [] in
  Hashtbl.iter
    (fun net points ->
      let distinct = List.sort_uniq P.compare points in
      if List.length distinct <= 1 then incr abutted
      else to_route := (net, distinct) :: !to_route)
    nets;
  let route_one ~jitter (net, points) =
    (net, List.concat_map (fun (a, b) -> z_route ~jitter net a b) (mst points))
  in
  (* initial tracks: alternating signed jitter per net index *)
  let signed k = (if k mod 2 = 0 then k / 2 else -((k / 2) + 1)) * pitch in
  let jitters = Hashtbl.create 16 in
  List.iteri
    (fun k (net, _) -> Hashtbl.replace jitters net (signed k))
    !to_route;
  (* rip-up and retry: nets still in conflict move to fresh tracks *)
  let rec iterate attempt =
    let segs_by_net =
      List.map
        (fun (net, pts) ->
          route_one ~jitter:(Hashtbl.find jitters net) (net, pts))
        !to_route
    in
    let count, bad = conflicting_nets segs_by_net in
    if count = 0 || attempt >= 10 then (segs_by_net, count)
    else begin
      Hashtbl.iter
        (fun net () ->
          let j = Hashtbl.find jitters net in
          (* per-net bump so synchronized re-collisions cannot persist *)
          let bump = ((attempt + 1) + (Hashtbl.hash net mod 3)) * pitch in
          Hashtbl.replace jitters net (j + bump))
        bad;
      iterate (attempt + 1)
    end
  in
  let segs_by_net, conflicts = iterate 0 in
  let segs = List.concat_map snd segs_by_net in
  { segments = segs
  ; wirelength = List.fold_left (fun a s -> a + seg_len s) 0 segs
  ; abutted_nets = !abutted
  ; routed_nets = List.length !to_route
  ; conflicts
  }

let pp ppf r =
  Format.fprintf ppf
    "%d nets by abutment, %d routed, wirelength %d lambda, %d conflicts"
    r.abutted_nets r.routed_nets r.wirelength r.conflicts
