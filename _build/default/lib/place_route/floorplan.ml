module R = Bisram_geometry.Rect

type t = { placement : Placer.result; routing : Router.result }

let make rules blocks =
  let placement = Placer.place blocks in
  { placement; routing = Router.route rules placement }

let epsilon t = (1.0 /. t.placement.Placer.rectangularity) -. 1.0

let render ?(width = 72) t =
  let bbox = t.placement.Placer.bbox in
  let bw = max 1 (R.width bbox) and bh = max 1 (R.height bbox) in
  let cols = width in
  let rows = max 8 (cols * bh / bw / 2) in
  (* /2: characters are taller than wide *)
  let rows = min rows 48 in
  let grid = Array.make_matrix rows cols ' ' in
  let xof x = (x - bbox.R.x0) * (cols - 1) / bw in
  let yof y = (rows - 1) - ((y - bbox.R.y0) * (rows - 1) / bh) in
  List.iter
    (fun pl ->
      let r = Placer.rect_of_placement pl in
      let x0 = xof r.R.x0 and x1 = xof r.R.x1 in
      let y1 = yof r.R.y0 and y0 = yof r.R.y1 in
      for x = x0 to x1 do
        if y0 >= 0 && y0 < rows then grid.(y0).(x) <- '-';
        if y1 >= 0 && y1 < rows then grid.(y1).(x) <- '-'
      done;
      for y = y0 to y1 do
        if x0 >= 0 && x0 < cols then grid.(y).(x0) <- '|';
        if x1 >= 0 && x1 < cols then grid.(y).(x1) <- '|'
      done;
      grid.(y0).(x0) <- '+';
      grid.(y0).(x1) <- '+';
      grid.(y1).(x0) <- '+';
      grid.(y1).(x1) <- '+';
      (* label *)
      let label = pl.Placer.block.Block.name in
      let ly = (y0 + y1) / 2 in
      let avail = x1 - x0 - 1 in
      if avail > 0 then begin
        let label =
          if String.length label > avail then String.sub label 0 avail
          else label
        in
        let lx = x0 + 1 + ((avail - String.length label) / 2) in
        String.iteri (fun i c -> grid.(ly).(lx + i) <- c) label
      end)
    t.placement.Placer.placements;
  let buf = Buffer.create (rows * (cols + 1)) in
  Array.iter
    (fun line ->
      Buffer.add_string buf (String.init cols (fun i -> line.(i)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@,epsilon = %.3f@]" Placer.pp t.placement
    Router.pp t.routing (epsilon t)
