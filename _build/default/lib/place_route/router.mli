(** Over-the-cell router.

    Ports already coincident after placement are connected by abutment
    and need no wire.  Remaining nets are routed with L-shaped
    (one-bend) metal-3 segments over the cells in HV discipline (horizontal legs on metal 3,
    vertical legs on metal 2) — the paper's preferred
    alternative to channel or global routing — connecting each net's
    pins along a minimum spanning tree.  Distinct nets sharing a track
    are jittered apart by one wire pitch; any residual same-layer
    crossings are reported as conflicts. *)

type segment = {
  net : string;
  a : Bisram_geometry.Point.t;
  b : Bisram_geometry.Point.t;  (** horizontal or vertical *)
}

type result = {
  segments : segment list;
  wirelength : int;
  abutted_nets : int;  (** nets fully connected by abutment *)
  routed_nets : int;
  conflicts : int;  (** same-layer overlaps between distinct nets *)
}

val route : Bisram_tech.Rules.t -> Placer.result -> result
val pp : Format.formatter -> result -> unit
