(** Functional fault models for SRAM arrays.

    These are the fault classes the IFA-9 test targets (Shen, Maly and
    Ferguson's inductive fault analysis): stuck-at, stuck-open,
    transition, coupling (inversion, idempotent and state coupling) and
    data-retention faults. *)

type cell = { row : int; col : int }
(** Physical bit position: [row] is the physical row index (spare rows
    sit above the regular rows); [col] is the global column index in
    [0, bpw*bpc). *)

type t =
  | Stuck_at of cell * bool
      (** cell always stores/reads the given value *)
  | Transition of cell * bool
      (** [true]: up-transition fault (cannot go 0 to 1);
          [false]: down-transition fault *)
  | Stuck_open of cell
      (** cell inaccessible; a read returns the sense amplifier's
          previous output (the standard SOF read model) *)
  | Coupling_inversion of { aggressor : cell; victim : cell }
      (** any write transition on the aggressor inverts the victim *)
  | Coupling_idempotent of {
      aggressor : cell;
      rising : bool;  (** which aggressor transition triggers *)
      victim : cell;
      forces : bool;  (** value forced onto the victim *)
    }
  | State_coupling of {
      aggressor : cell;
      when_state : bool;
      victim : cell;
      reads_as : bool;
    }
      (** while the aggressor stores [when_state], the victim reads as
          [reads_as] *)
  | Data_retention of cell * bool
      (** after a retention wait the cell decays to the given value *)

(** The cell whose behaviour is directly broken (the victim). *)
val victim : t -> cell

(** Every cell mentioned by the fault (victim and aggressor). *)
val cells : t -> cell list

val equal_cell : cell -> cell -> bool
val compare_cell : cell -> cell -> int
val pp_cell : Format.formatter -> cell -> unit
val pp : Format.formatter -> t -> unit

(** Short class name: "SAF", "TF", "SOF", "CFin", "CFid", "CFst", "DRF". *)
val class_name : t -> string

val all_class_names : string list
