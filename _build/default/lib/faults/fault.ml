type cell = { row : int; col : int }

type t =
  | Stuck_at of cell * bool
  | Transition of cell * bool
  | Stuck_open of cell
  | Coupling_inversion of { aggressor : cell; victim : cell }
  | Coupling_idempotent of {
      aggressor : cell;
      rising : bool;
      victim : cell;
      forces : bool;
    }
  | State_coupling of {
      aggressor : cell;
      when_state : bool;
      victim : cell;
      reads_as : bool;
    }
  | Data_retention of cell * bool

let victim = function
  | Stuck_at (c, _) -> c
  | Transition (c, _) -> c
  | Stuck_open c -> c
  | Coupling_inversion { victim; _ } -> victim
  | Coupling_idempotent { victim; _ } -> victim
  | State_coupling { victim; _ } -> victim
  | Data_retention (c, _) -> c

let cells = function
  | Stuck_at (c, _) | Transition (c, _) | Stuck_open c | Data_retention (c, _)
    ->
      [ c ]
  | Coupling_inversion { aggressor; victim } -> [ victim; aggressor ]
  | Coupling_idempotent { aggressor; victim; _ } -> [ victim; aggressor ]
  | State_coupling { aggressor; victim; _ } -> [ victim; aggressor ]

let equal_cell (a : cell) b = a.row = b.row && a.col = b.col

let compare_cell (a : cell) b =
  match Int.compare a.row b.row with 0 -> Int.compare a.col b.col | c -> c

let pp_cell ppf c = Format.fprintf ppf "r%dc%d" c.row c.col

let class_name = function
  | Stuck_at _ -> "SAF"
  | Transition _ -> "TF"
  | Stuck_open _ -> "SOF"
  | Coupling_inversion _ -> "CFin"
  | Coupling_idempotent _ -> "CFid"
  | State_coupling _ -> "CFst"
  | Data_retention _ -> "DRF"

let all_class_names = [ "SAF"; "TF"; "SOF"; "CFin"; "CFid"; "CFst"; "DRF" ]

let pp ppf = function
  | Stuck_at (c, v) -> Format.fprintf ppf "SAF(%a=%b)" pp_cell c v
  | Transition (c, up) ->
      Format.fprintf ppf "TF(%a,%s)" pp_cell c (if up then "up" else "down")
  | Stuck_open c -> Format.fprintf ppf "SOF(%a)" pp_cell c
  | Coupling_inversion { aggressor; victim } ->
      Format.fprintf ppf "CFin(%a->%a)" pp_cell aggressor pp_cell victim
  | Coupling_idempotent { aggressor; rising; victim; forces } ->
      Format.fprintf ppf "CFid(%a%s->%a:=%b)" pp_cell aggressor
        (if rising then "^" else "v")
        pp_cell victim forces
  | State_coupling { aggressor; when_state; victim; reads_as } ->
      Format.fprintf ppf "CFst(%a=%b->%a~%b)" pp_cell aggressor when_state
        pp_cell victim reads_as
  | Data_retention (c, v) -> Format.fprintf ppf "DRF(%a->%b)" pp_cell c v
