type defect = { x : int; y : int; radius : int }

(* Inverse-CDF sampling of p(r) ~ r^-3 on [r_min, r_max]:
   F(r) = (rmin^-2 - r^-2) / (rmin^-2 - rmax^-2). *)
let sample_radius rng ~r_min ~r_max =
  if r_min < 1 || r_max < r_min then invalid_arg "Spatial.sample_radius";
  if r_min = r_max then r_min
  else begin
    let a = 1.0 /. (float_of_int r_min ** 2.0) in
    let b = 1.0 /. (float_of_int r_max ** 2.0) in
    let u = Random.State.float rng 1.0 in
    let inv = a -. (u *. (a -. b)) in
    let r = 1.0 /. sqrt inv in
    max r_min (min r_max (int_of_float (Float.round r)))
  end

let sample_defect rng ~w ~h ~r_min ~r_max =
  { x = Random.State.int rng (max 1 w)
  ; y = Random.State.int rng (max 1 h)
  ; radius = sample_radius rng ~r_min ~r_max
  }

let cells_hit ~cell_w ~cell_h ~rows ~cols d =
  if cell_w <= 0 || cell_h <= 0 then invalid_arg "Spatial.cells_hit";
  let col_lo = max 0 ((d.x - d.radius) / cell_w) in
  let col_hi = min (cols - 1) ((d.x + d.radius) / cell_w) in
  let row_lo = max 0 ((d.y - d.radius) / cell_h) in
  let row_hi = min (rows - 1) ((d.y + d.radius) / cell_h) in
  let out = ref [] in
  for r = row_hi downto row_lo do
    for c = col_hi downto col_lo do
      (* distance from the disc centre to the cell rectangle *)
      let cx0 = c * cell_w and cy0 = r * cell_h in
      let nx = max cx0 (min d.x (cx0 + cell_w)) in
      let ny = max cy0 (min d.y (cy0 + cell_h)) in
      let dx = d.x - nx and dy = d.y - ny in
      if (dx * dx) + (dy * dy) <= d.radius * d.radius then
        out := (r, c) :: !out
    done
  done;
  !out

let faults_of_defect rng ~cell_w ~cell_h ~rows ~cols d =
  let hits = cells_hit ~cell_w ~cell_h ~rows ~cols d in
  let stuck =
    List.map
      (fun (r, c) -> Fault.Stuck_at ({ Fault.row = r; col = c }, Random.State.bool rng))
      hits
  in
  let rec bridges = function
    | (r1, c1) :: ((r2, c2) :: _ as rest) ->
        Fault.Coupling_inversion
          { aggressor = { Fault.row = r1; col = c1 }
          ; victim = { Fault.row = r2; col = c2 }
          }
        :: bridges rest
    | [ _ ] | [] -> []
  in
  stuck @ bridges hits

let inject rng ~cell_w ~cell_h ~rows ~cols ~r_min ~r_max ~mean ~alpha =
  let n = Defect.negative_binomial rng ~mean ~alpha in
  List.concat
    (List.init n (fun _ ->
         let d =
           sample_defect rng ~w:(cols * cell_w) ~h:(rows * cell_h) ~r_min
             ~r_max
         in
         faults_of_defect rng ~cell_w ~cell_h ~rows ~cols d))

let rows_hit faults =
  faults
  |> List.concat_map (fun f -> List.map (fun c -> c.Fault.row) (Fault.cells f))
  |> List.sort_uniq Int.compare
