(** Spatial spot-defect model.

    Defects are discs with a position on the array footprint and a
    radius drawn from the classical 1/r^3 size distribution; every cell
    whose footprint the defect touches becomes faulty, and cells hit by
    the same defect are additionally bridged (coupling faults).  Large
    defects therefore kill clusters of adjacent cells — the physically
    clustered patterns row sparing is designed for, in contrast to the
    uniform single-cell model of {!Injection}. *)

type defect = {
  x : int;  (** centre, lambda from the array's lower-left corner *)
  y : int;
  radius : int;  (** lambda *)
}

(** Sample a radius from p(r) ~ 1/r^3 truncated to [r_min, r_max]. *)
val sample_radius : Random.State.t -> r_min:int -> r_max:int -> int

(** Uniform position over a [w] x [h] footprint. *)
val sample_defect :
  Random.State.t -> w:int -> h:int -> r_min:int -> r_max:int -> defect

(** Cells (row, col) whose [cell_w] x [cell_h] footprint intersects the
    defect disc; clipped to the array. *)
val cells_hit :
  cell_w:int -> cell_h:int -> rows:int -> cols:int -> defect ->
  (int * int) list

(** Faults induced by one defect: a stuck-at per hit cell plus a
    coupling bridge between successive hit cells. *)
val faults_of_defect :
  Random.State.t -> cell_w:int -> cell_h:int -> rows:int -> cols:int ->
  defect -> Fault.t list

(** [inject rng ... ~mean ~alpha] — defect count from the clustered
    model, each mapped through geometry. *)
val inject :
  Random.State.t -> cell_w:int -> cell_h:int -> rows:int -> cols:int ->
  r_min:int -> r_max:int -> mean:float -> alpha:float -> Fault.t list

(** Rows with at least one victim (sorted, deduplicated). *)
val rows_hit : Fault.t list -> int list
