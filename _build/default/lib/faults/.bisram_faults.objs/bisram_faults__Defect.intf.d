lib/faults/defect.mli: Random
