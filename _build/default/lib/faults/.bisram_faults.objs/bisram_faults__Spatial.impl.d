lib/faults/spatial.ml: Defect Fault Float Int List Random
