lib/faults/fault.mli: Format
