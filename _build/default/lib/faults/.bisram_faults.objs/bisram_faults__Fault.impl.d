lib/faults/fault.ml: Format Int
