lib/faults/injection.ml: Defect Fault Int List Random
