lib/faults/spatial.mli: Fault Random
