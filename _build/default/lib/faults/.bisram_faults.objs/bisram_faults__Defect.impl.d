lib/faults/defect.ml: Array Float Random
