lib/faults/injection.mli: Fault Random
