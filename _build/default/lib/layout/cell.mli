(** Leaf cells: flat geometry plus ports, in lambda units.

    A leaf cell's bounding box is its abutment box — tiling places
    cells so abutment boxes touch exactly.  Geometry may extend to the
    abutment box edge (shared diffusion/well between mirrored
    neighbours is normal). *)

type t = {
  name : string;
  bbox : Bisram_geometry.Rect.t;
  shapes : (Bisram_tech.Layer.t * Bisram_geometry.Rect.t) list;
  ports : Port.t list;
}

(** [make ~name ~w ~h shapes ports] — abutment box is [0,0]-[w,h]. *)
val make :
  name:string -> w:int -> h:int ->
  (Bisram_tech.Layer.t * Bisram_geometry.Rect.t) list -> Port.t list -> t

val width : t -> int
val height : t -> int
val area : t -> int

val transform : Bisram_geometry.Transform.t -> t -> t
val translate : Bisram_geometry.Point.t -> t -> t

(** Move the cell so its abutment box's lower-left corner is at the
    origin. *)
val normalize : t -> t

val find_port : t -> string -> Port.t option
val ports_on : t -> Port.edge -> Port.t list
val shapes_on : t -> Bisram_tech.Layer.t -> Bisram_geometry.Rect.t list

(** Same-layer min-width and spacing DRC over the cell's own shapes. *)
val drc : Bisram_tech.Rules.t -> t -> string list

(** Merge several (already placed) cells into one flat cell. *)
val merge : name:string -> t list -> t

val pp : Format.formatter -> t -> unit
