module R = Bisram_geometry.Rect
module P = Bisram_geometry.Point
module T = Bisram_geometry.Transform
module O = Bisram_geometry.Orient
module L = Bisram_tech.Layer
module Pr = Bisram_tech.Process

type box = { layer : L.t; rect : R.t }
type call = { callee : int; transform : T.t }

type definition = {
  id : int;
  def_name : string option;
  boxes : box list;
  calls : call list;
}

type t = { definitions : definition list; top_calls : call list }

let layer_of_cif name =
  match List.find_opt (fun l -> L.cif_name l = name) L.all with
  | Some l -> l
  | None -> invalid_arg ("Cif_reader: unknown layer " ^ name)

(* statements are semicolon-terminated; comments are parenthesised *)
let statements text =
  let no_comments = Buffer.create (String.length text) in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' -> incr depth
      | ')' -> decr depth
      | c -> if !depth = 0 then Buffer.add_char no_comments c)
    text;
  Buffer.contents no_comments
  |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.map String.trim
  |> List.filter (fun w -> w <> "")

(* parse the transform suffix of a call: sequence of MX / MY /
   R a b / T x y applied left to right *)
let parse_call_transform parts =
  let rec go tr = function
    | [] -> tr
    | "MX" :: rest -> go (T.compose (T.rotation O.My) tr) rest
    | "MY" :: rest -> go (T.compose (T.rotation O.Mx) tr) rest
    | "R" :: a :: b :: rest ->
        let orient =
          match (int_of_string a, int_of_string b) with
          | 1, 0 -> O.R0
          | 0, 1 -> O.R90
          | -1, 0 -> O.R180
          | 0, -1 -> O.R270
          | _ -> invalid_arg "Cif_reader: bad rotation vector"
        in
        go (T.compose (T.rotation orient) tr) rest
    | "T" :: x :: y :: rest ->
        go
          (T.compose (T.translation (P.make (int_of_string x) (int_of_string y))) tr)
          rest
    | w :: _ -> invalid_arg ("Cif_reader: bad call transform " ^ w)
  in
  go T.identity parts

let parse text =
  let defs = ref [] in
  let top = ref [] in
  let current = ref None in
  let cur_layer = ref None in
  (* the definition's a/b distance scale (DS id a b) *)
  let cur_scale = ref (1, 1) in
  let rescale v =
    let a, b = !cur_scale in
    let scaled = v * a in
    if scaled mod b <> 0 then
      invalid_arg "Cif_reader: coordinate does not divide by the DS scale";
    scaled / b
  in
  let finish () =
    match !current with
    | Some d ->
        defs := { d with boxes = List.rev d.boxes; calls = List.rev d.calls } :: !defs;
        current := None
    | None -> ()
  in
  let add_box b =
    match !current with
    | Some d -> current := Some { d with boxes = b :: d.boxes }
    | None -> invalid_arg "Cif_reader: box outside definition"
  in
  let add_call c =
    match !current with
    | Some d -> current := Some { d with calls = c :: d.calls }
    | None -> top := c :: !top
  in
  List.iter
    (fun stmt ->
      match words stmt with
      | [] -> ()
      | "DS" :: id :: rest ->
          finish ();
          (cur_scale :=
             match rest with
             | a :: b :: _ -> (int_of_string a, int_of_string b)
             | _ -> (1, 1));
          current :=
            Some { id = int_of_string id; def_name = None; boxes = []; calls = [] }
      | [ "DF" ] -> finish ()
      | "9" :: name_parts -> (
          match !current with
          | Some d ->
              current := Some { d with def_name = Some (String.concat " " name_parts) }
          | None -> ())
      | [ "L"; layer ] -> cur_layer := Some (layer_of_cif layer)
      | "B" :: w :: h :: cx :: cy :: _ -> (
          match !cur_layer with
          | None -> invalid_arg "Cif_reader: box before layer"
          | Some layer ->
              let w = int_of_string w and h = int_of_string h in
              let cx = int_of_string cx and cy = int_of_string cy in
              add_box
                { layer
                ; rect =
                    R.make
                      (rescale (cx - (w / 2)))
                      (rescale (cy - (h / 2)))
                      (rescale (cx + ((w + 1) / 2)))
                      (rescale (cy + ((h + 1) / 2)))
                })
      | "C" :: id :: rest ->
          let tr = parse_call_transform rest in
          let tr =
            { tr with
              T.offset =
                P.make (rescale tr.T.offset.P.x) (rescale tr.T.offset.P.y)
            }
          in
          add_call { callee = int_of_string id; transform = tr }
      | [ "E" ] -> finish ()
      | w :: _ -> invalid_arg ("Cif_reader: unknown statement " ^ w))
    (statements text);
  finish ();
  { definitions = List.rev !defs; top_calls = List.rev !top }

let find t id = List.find_opt (fun d -> d.id = id) t.definitions

let flatten t =
  let rec expand tr call =
    match find t call.callee with
    | None -> invalid_arg "Cif_reader.flatten: dangling call"
    | Some d ->
        let tr = T.compose tr call.transform in
        List.map (fun b -> (b.layer, T.apply_rect tr b.rect)) d.boxes
        @ List.concat_map (expand tr) d.calls
  in
  List.concat_map (expand T.identity) t.top_calls

let to_cell p text =
  let parsed = parse text in
  let scale = p.Pr.lambda_nm / 10 in
  let unscale v =
    if v mod scale <> 0 then
      invalid_arg "Cif_reader.to_cell: coordinate not on the lambda grid";
    v / scale
  in
  let shapes =
    List.map
      (fun (layer, (r : R.t)) ->
        (layer, R.make (unscale r.R.x0) (unscale r.R.y0) (unscale r.R.x1) (unscale r.R.y1)))
      (flatten parsed)
  in
  let name =
    match parsed.definitions with
    | { def_name = Some n; _ } :: _ -> n
    | _ -> "cif_import"
  in
  let box = R.bbox (List.map snd shapes) in
  let c = Cell.make ~name ~w:(R.width box) ~h:(R.height box) shapes [] in
  (* keep original coordinates (bbox may not start at the origin) *)
  { c with Cell.bbox = box }
