module R = Bisram_geometry.Rect
module P = Bisram_geometry.Point
module T = Bisram_geometry.Transform
module O = Bisram_geometry.Orient
module L = Bisram_tech.Layer
module Pr = Bisram_tech.Process

(* CIF length unit is 0.01 um.  Definitions carry a 1/2 scale factor
   (DS id 1 2) and all coordinates are doubled, so box centres are
   exact integers even for odd-lambda extents. *)
let scale p v = 2 * v * p.Pr.lambda_nm / 10

let box p buf (layer, rect) =
  if not (R.is_empty rect) then begin
    let w = scale p (R.width rect) and h = scale p (R.height rect) in
    let cx = (scale p rect.R.x0 + scale p rect.R.x1) / 2 in
    let cy = (scale p rect.R.y0 + scale p rect.R.y1) / 2 in
    Buffer.add_string buf (Printf.sprintf "L %s;\n" (L.cif_name layer));
    Buffer.add_string buf (Printf.sprintf "B %d %d %d %d;\n" w h cx cy)
  end

let def p buf ~id (cell : Cell.t) =
  Buffer.add_string buf (Printf.sprintf "DS %d 1 2;\n" id);
  Buffer.add_string buf (Printf.sprintf "9 %s;\n" cell.Cell.name);
  List.iter (box p buf) cell.Cell.shapes;
  Buffer.add_string buf "DF;\n"

let of_cell p cell =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "( BISRAMGEN CIF output );\n";
  def p buf ~id:1 cell;
  Buffer.add_string buf "C 1;\nE\n";
  Buffer.contents buf

(* Orientation to CIF call transform suffix: CIF supports mirror (MX,
   MY) and rotate (R dx dy). *)
let orient_suffix = function
  | O.R0 -> ""
  | O.R90 -> " R 0 1"
  | O.R180 -> " R -1 0"
  | O.R270 -> " R 0 -1"
  | O.Mx -> " MY" (* CIF MY mirrors in y: flips the y axis *)
  | O.My -> " MX"
  | O.Mx90 -> " MY R 0 1"
  | O.My90 -> " MX R 0 1"

let call p buf ~id (t : T.t) =
  Buffer.add_string buf
    (Printf.sprintf "C %d%s T %d %d;\n" id (orient_suffix t.T.orient)
       (scale p t.T.offset.P.x) (scale p t.T.offset.P.y))

let of_macro ?(call_limit = 200_000) p (m : Macro.t) =
  if Macro.instance_count m > call_limit then
    invalid_arg
      (Printf.sprintf "Cif.of_macro: %d calls exceeds limit"
         (Macro.instance_count m));
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "( BISRAMGEN CIF output );\n";
  (* number distinct cells by name *)
  let ids = Hashtbl.create 16 in
  let next = ref 0 in
  let id_of (c : Cell.t) =
    match Hashtbl.find_opt ids c.Cell.name with
    | Some id -> id
    | None ->
        incr next;
        Hashtbl.add ids c.Cell.name !next;
        def p buf ~id:!next c;
        !next
  in
  let top = Buffer.create 4096 in
  List.iter
    (fun e ->
      match e with
      | Macro.Inst { cell; at } -> call p top ~id:(id_of cell) at
      | Macro.Array { cell; origin; nx; ny; pitch_x; pitch_y; mirror_odd_rows }
        ->
          let id = id_of cell in
          let h = Cell.height cell in
          for j = 0 to ny - 1 do
            for i = 0 to nx - 1 do
              let base =
                P.add origin (P.make (i * pitch_x) (j * pitch_y))
              in
              if mirror_odd_rows && j mod 2 = 1 then
                (* mirrored about x then shifted up by cell height *)
                call p top ~id
                  { T.orient = O.Mx; offset = P.add base (P.make 0 h) }
              else call p top ~id { T.orient = O.R0; offset = base }
            done
          done)
    m.Macro.elements;
  let topid = !next + 1 in
  Buffer.add_string buf (Printf.sprintf "DS %d 1 2;\n9 %s;\n" topid m.Macro.name);
  Buffer.add_buffer buf top;
  Buffer.add_string buf "DF;\n";
  Buffer.add_string buf (Printf.sprintf "C %d;\nE\n" topid);
  Buffer.contents buf
