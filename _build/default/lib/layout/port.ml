module O = Bisram_geometry.Orient
module T = Bisram_geometry.Transform
module P = Bisram_geometry.Point

type edge = North | South | East | West

type t = {
  name : string;
  layer : Bisram_tech.Layer.t;
  rect : Bisram_geometry.Rect.t;
  edge : edge;
}

let make ~name ~layer ~edge rect = { name; layer; rect; edge }

let opposite = function
  | North -> South
  | South -> North
  | East -> West
  | West -> East

(* Track where the outward normal of the edge goes under the
   orientation. *)
let normal = function
  | North -> P.make 0 1
  | South -> P.make 0 (-1)
  | East -> P.make 1 0
  | West -> P.make (-1) 0

let edge_of_normal (p : P.t) =
  match (p.P.x, p.P.y) with
  | 0, 1 -> North
  | 0, -1 -> South
  | 1, 0 -> East
  | -1, 0 -> West
  | _ -> invalid_arg "Port.edge_of_normal"

let transform_edge o e = edge_of_normal (O.apply o (normal e))

let transform tr p =
  { p with
    rect = T.apply_rect tr p.rect
  ; edge = transform_edge tr.T.orient p.edge
  }

let edge_name = function
  | North -> "N"
  | South -> "S"
  | East -> "E"
  | West -> "W"

let pp ppf p =
  Format.fprintf ppf "%s@%s:%a %a" p.name (edge_name p.edge)
    Bisram_tech.Layer.pp p.layer Bisram_geometry.Rect.pp p.rect
