(** ASCII rendering of leaf-cell geometry, one character per lambda.

    Layers are drawn bottom-up (wells first, metals last) with one
    character each, so the picture matches what a layout editor would
    show; used by the examples and for quick visual inspection of
    generated cells. *)

(** Character used for a layer. *)
val glyph : Bisram_tech.Layer.t -> char

(** Render the cell; [scale] lambda per character (default 1). *)
val render : ?scale:int -> Cell.t -> string
