module R = Bisram_geometry.Rect
module P = Bisram_geometry.Point
module T = Bisram_geometry.Transform
module O = Bisram_geometry.Orient

type element =
  | Inst of { cell : Cell.t; at : T.t }
  | Array of {
      cell : Cell.t;
      origin : P.t;
      nx : int;
      ny : int;
      pitch_x : int;
      pitch_y : int;
      mirror_odd_rows : bool;
    }

type t = { name : string; elements : element list; ports : Port.t list }

let make ~name ?(ports = []) elements =
  if elements = [] then invalid_arg "Macro.make: empty";
  { name; elements; ports }

let inst ?(at = T.identity) cell = Inst { cell; at }

let array ?pitch_x ?pitch_y ?(mirror_odd_rows = false) ~origin ~nx ~ny cell =
  if nx < 1 || ny < 1 then invalid_arg "Macro.array: dims";
  let pitch_x = Option.value pitch_x ~default:(Cell.width cell) in
  let pitch_y = Option.value pitch_y ~default:(Cell.height cell) in
  Array { cell; origin; nx; ny; pitch_x; pitch_y; mirror_odd_rows }

let element_bbox = function
  | Inst { cell; at } -> T.apply_rect at cell.Cell.bbox
  | Array { cell; origin; nx; ny; pitch_x; pitch_y; _ } ->
      let w = ((nx - 1) * pitch_x) + Cell.width cell in
      let h = ((ny - 1) * pitch_y) + Cell.height cell in
      R.translate origin (R.make 0 0 w h)

let bbox t =
  match t.elements with
  | [] -> invalid_arg "Macro.bbox: empty"
  | e :: es -> List.fold_left (fun acc x -> R.join acc (element_bbox x)) (element_bbox e) es

let width t = R.width (bbox t)
let height t = R.height (bbox t)
let area t = R.area (bbox t)

let instance_count t =
  List.fold_left
    (fun acc e ->
      match e with Inst _ -> acc + 1 | Array { nx; ny; _ } -> acc + (nx * ny))
    0 t.elements

let flatten ?(limit = 100_000) t =
  if instance_count t > limit then
    invalid_arg
      (Printf.sprintf "Macro.flatten: %d instances exceeds limit %d"
         (instance_count t) limit);
  let cells =
    List.concat_map
      (fun e ->
        match e with
        | Inst { cell; at } -> [ Cell.transform at cell ]
        | Array { cell; origin; nx; ny; pitch_x; pitch_y; mirror_odd_rows } ->
            let flipped =
              if mirror_odd_rows then
                Cell.normalize (Cell.transform (T.rotation O.Mx) cell)
              else cell
            in
            List.concat
              (List.init ny (fun j ->
                   let base = if mirror_odd_rows && j mod 2 = 1 then flipped else cell in
                   List.init nx (fun i ->
                       Cell.translate
                         (P.add origin (P.make (i * pitch_x) (j * pitch_y)))
                         base))))
      t.elements
  in
  let merged = Cell.merge ~name:t.name cells in
  { merged with Cell.ports = merged.Cell.ports @ t.ports }

let pp ppf t =
  Format.fprintf ppf "%s: %d elements, %d instances, bbox %a" t.name
    (List.length t.elements) (instance_count t) R.pp (bbox t)
