(** Parametric leaf-cell generators, all in lambda units so every
    bundled process shares them (BISRAMGEN's design-rule independence).

    The 6T cell and its column peripherals carry real mask geometry —
    the 6T layout is the template with near-zero critical area for the
    fatal global-net flaws (Section VII) — while registers, CAM bits
    and the PLA are abutment-box "phantom" cells with accurate areas
    and ports (their internals do not affect the floorplan or the
    area/overhead results). *)

(** 24 x 20 lambda 6T SRAM cell.  Ports: [bl]/[blb] (metal2, N+S),
    [wl] (poly, E+W), [vdd]/[gnd] (metal1, E+W). *)
val sram_6t : unit -> Cell.t

(** Column precharge/equalize head, 24 wide; [bl]/[blb] on the south
    edge line up with the cell bitlines. *)
val precharge : unit -> Cell.t

(** Current-mode sense amplifier + write driver column foot, 24 wide. *)
val sense_amp : unit -> Cell.t

(** Word-line driver, [drive] x minimum; [inp] west (metal1), [out]
    east (poly) aligned with the cell word line. *)
val wordline_driver : drive:int -> Cell.t

(** One row-decoder slice (NAND of [bits] address lines), word-line
    pitch tall; [out] east aligned with the word-line driver input. *)
val row_decoder_slice : bits:int -> Cell.t

(** Column multiplexer slice: [bpc] pass-transistor pairs, 24*bpc
    wide. *)
val column_mux : bpc:int -> Cell.t

(** Strap cell inserted between subarrays every [strap] columns: a
    vertical well-tap / wire-through column, [w] lambda wide, cell
    height tall. *)
val strap : w:int -> Cell.t

(** Phantom cells (accurate abutment box + ports, no internals). *)

(** TLB CAM bit: storage + comparator + match-line segment. *)
val cam_bit : unit -> Cell.t

(** Static D flip-flop with scan-free reset (ADDGEN/DATAGEN/STREG). *)
val dff : unit -> Cell.t

(** Pseudo-NMOS NOR-NOR PLA core of the given plane dimensions
    (abutment-box phantom used for floorplanning). *)
val pla : n_inputs:int -> n_outputs:int -> n_terms:int -> Cell.t

(** Fully drawn PLA core programmed from plane images (the layout
    BISRAMGEN builds from the two control-code files): vertical poly
    true/complement input columns, horizontal metal-1 term rows,
    metal-2 output columns, and one pull-down device patch per
    programmed literal.  AND-plane characters: '1' true line, '0'
    complement line, '-' none; OR plane: '1' connects the term.
    @raise Invalid_argument on ragged or empty planes. *)
val pla_programmed : and_plane:string list -> or_plane:string list -> Cell.t

(** Johnson-counter stage: dff + feedback mux + comparator XOR. *)
val datagen_stage : unit -> Cell.t

(** Up/down counter stage: dff + half-adder + direction mux. *)
val addgen_stage : unit -> Cell.t
