(** Abutment tiling combinators over flat cells.

    These flatten their operands, so they are meant for leaf-scale
    assemblies (a column head, a decoder slice stack).  Full arrays use
    {!Macro}'s symbolic arrays instead. *)

(** Place cells left to right, abutment boxes touching; bottoms
    aligned. *)
val hstack : name:string -> Cell.t list -> Cell.t

(** Place cells bottom to top; left edges aligned. *)
val vstack : name:string -> Cell.t list -> Cell.t

(** [harray ~name ~n cell] — [n] copies left to right. *)
val harray : name:string -> n:int -> Cell.t -> Cell.t

(** [varray ~name ~n cell] — [n] copies bottom to top. *)
val varray : name:string -> n:int -> Cell.t -> Cell.t

(** [varray_mirrored ~name ~n cell] — like [varray] but odd rows are
    mirrored about the x axis so power rails and diffusion are shared
    between vertical neighbours (the classic SRAM tiling). *)
val varray_mirrored : name:string -> n:int -> Cell.t -> Cell.t

(** Abutting ports of two placed cells: pairs of same-named ports whose
    rectangles coincide.  The tiling contract between neighbours. *)
val abutting_ports : Cell.t -> Cell.t -> (Port.t * Port.t) list
