module R = Bisram_geometry.Rect
module P = Bisram_geometry.Point
module T = Bisram_geometry.Transform
module O = Bisram_geometry.Orient

let hstack ~name cells =
  match cells with
  | [] -> invalid_arg "Tile.hstack: empty"
  | cells ->
      let placed, _ =
        List.fold_left
          (fun (acc, x) c ->
            let c = Cell.normalize c in
            (Cell.translate (P.make x 0) c :: acc, x + Cell.width c))
          ([], 0) cells
      in
      Cell.merge ~name (List.rev placed)

let vstack ~name cells =
  match cells with
  | [] -> invalid_arg "Tile.vstack: empty"
  | cells ->
      let placed, _ =
        List.fold_left
          (fun (acc, y) c ->
            let c = Cell.normalize c in
            (Cell.translate (P.make 0 y) c :: acc, y + Cell.height c))
          ([], 0) cells
      in
      Cell.merge ~name (List.rev placed)

let harray ~name ~n cell =
  if n < 1 then invalid_arg "Tile.harray: n";
  hstack ~name (List.init n (fun _ -> cell))

let varray ~name ~n cell =
  if n < 1 then invalid_arg "Tile.varray: n";
  vstack ~name (List.init n (fun _ -> cell))

let varray_mirrored ~name ~n cell =
  if n < 1 then invalid_arg "Tile.varray_mirrored: n";
  let flipped = Cell.normalize (Cell.transform (T.rotation O.Mx) cell) in
  vstack ~name
    (List.init n (fun i -> if i mod 2 = 0 then cell else flipped))

let abutting_ports a b =
  List.concat_map
    (fun pa ->
      List.filter_map
        (fun (pb : Port.t) ->
          if
            pa.Port.name = pb.Port.name
            && Bisram_tech.Layer.equal pa.Port.layer pb.Port.layer
            && R.equal pa.Port.rect pb.Port.rect
            && pa.Port.edge = Port.opposite pb.Port.edge
          then Some (pa, pb)
          else None)
        b.Cell.ports)
    a.Cell.ports
