module R = Bisram_geometry.Rect
module L = Bisram_tech.Layer

let union_area rects =
  let rects = List.filter (fun r -> not (R.is_empty r)) rects in
  match rects with
  | [] -> 0
  | _ ->
      (* coordinate compression on x; per strip, union the y spans *)
      let xs =
        rects
        |> List.concat_map (fun (r : R.t) -> [ r.R.x0; r.R.x1 ])
        |> List.sort_uniq Int.compare
        |> Array.of_list
      in
      let total = ref 0 in
      for i = 0 to Array.length xs - 2 do
        let x0 = xs.(i) and x1 = xs.(i + 1) in
        let spans =
          rects
          |> List.filter_map (fun (r : R.t) ->
                 if r.R.x0 <= x0 && r.R.x1 >= x1 then Some (r.R.y0, r.R.y1)
                 else None)
          |> List.sort compare
        in
        let covered = ref 0 and cur = ref None in
        List.iter
          (fun (y0, y1) ->
            match !cur with
            | None -> cur := Some (y0, y1)
            | Some (c0, c1) ->
                if y0 <= c1 then cur := Some (c0, max c1 y1)
                else begin
                  covered := !covered + (c1 - c0);
                  cur := Some (y0, y1)
                end)
          spans;
        (match !cur with
        | Some (c0, c1) -> covered := !covered + (c1 - c0)
        | None -> ());
        total := !total + ((x1 - x0) * !covered)
      done;
      !total

let critical_area ~radius ~a ~b =
  if radius <= 0 then 0
  else begin
    (* a square defect model: the r-dilations of a pair of rectangles
       overlap exactly on the intersection of their inflations *)
    let overlaps =
      List.concat_map
        (fun ra ->
          List.filter_map
            (fun rb -> R.inter (R.inflate radius ra) (R.inflate radius rb))
            b)
        a
    in
    union_area overlaps
  end

(* Metal-1 shapes touching a port of the given name form that net. *)
let net_shapes cell name =
  let port_rects =
    List.filter_map
      (fun (p : Port.t) ->
        if p.Port.name = name && L.equal p.Port.layer L.Metal1 then
          Some p.Port.rect
        else None)
      cell.Cell.ports
  in
  List.filter
    (fun shape -> List.exists (fun pr -> R.touches shape pr) port_rects)
    (Cell.shapes_on cell L.Metal1)

let power_short cell ~radius =
  let vdd = net_shapes cell "vdd" and gnd = net_shapes cell "gnd" in
  critical_area ~radius ~a:vdd ~b:gnd

let fatal_radius ?limit cell =
  let limit =
    match limit with
    | Some l -> l
    | None -> Cell.width cell + Cell.height cell
  in
  let rec go r =
    if r > limit then None
    else if power_short cell ~radius:r > 0 then Some r
    else go (r + 1)
  in
  go 1
