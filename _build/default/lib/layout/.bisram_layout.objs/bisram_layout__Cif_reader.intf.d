lib/layout/cif_reader.mli: Bisram_geometry Bisram_tech Cell
