lib/layout/cif.mli: Bisram_tech Cell Macro
