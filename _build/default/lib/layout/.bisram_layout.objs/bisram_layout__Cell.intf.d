lib/layout/cell.mli: Bisram_geometry Bisram_tech Format Port
