lib/layout/cif_reader.ml: Bisram_geometry Bisram_tech Buffer Cell List String
