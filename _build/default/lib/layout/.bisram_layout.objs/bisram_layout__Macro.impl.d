lib/layout/macro.ml: Bisram_geometry Cell Format List Option Port Printf
