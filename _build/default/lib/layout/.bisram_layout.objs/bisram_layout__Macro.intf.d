lib/layout/macro.mli: Bisram_geometry Cell Format Port
