lib/layout/critical_area.mli: Bisram_geometry Cell
