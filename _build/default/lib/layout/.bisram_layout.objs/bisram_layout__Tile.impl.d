lib/layout/tile.ml: Bisram_geometry Bisram_tech Cell List Port
