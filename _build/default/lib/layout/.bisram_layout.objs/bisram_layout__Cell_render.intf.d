lib/layout/cell_render.mli: Bisram_tech Cell
