lib/layout/leaf.mli: Cell
