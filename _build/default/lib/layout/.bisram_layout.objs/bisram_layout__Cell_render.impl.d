lib/layout/cell_render.ml: Array Bisram_geometry Bisram_tech Buffer Cell List
