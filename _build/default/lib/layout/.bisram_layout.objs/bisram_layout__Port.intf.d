lib/layout/port.mli: Bisram_geometry Bisram_tech Format
