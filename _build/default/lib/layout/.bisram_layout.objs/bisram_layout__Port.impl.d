lib/layout/port.ml: Bisram_geometry Bisram_tech Format
