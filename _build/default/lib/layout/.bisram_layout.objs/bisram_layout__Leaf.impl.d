lib/layout/leaf.ml: Bisram_geometry Bisram_tech Cell List Port Printf String
