lib/layout/cell.ml: Bisram_geometry Bisram_tech Format List Port
