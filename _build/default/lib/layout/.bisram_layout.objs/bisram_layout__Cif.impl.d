lib/layout/cif.ml: Bisram_geometry Bisram_tech Buffer Cell Hashtbl List Macro Printf
