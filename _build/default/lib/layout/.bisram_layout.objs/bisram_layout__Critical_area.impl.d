lib/layout/critical_area.ml: Array Bisram_geometry Bisram_tech Cell Int List Port
