lib/layout/tile.mli: Cell Port
