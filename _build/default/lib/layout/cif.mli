(** CIF 2.0 writer.

    Emits hierarchical CIF: one definition (DS/DF) per distinct cell,
    calls (C) for instances and arrays, boxes (B) for geometry.
    Coordinates are converted from lambda to CIF centimicrons using the
    process lambda. *)

(** [of_cell process cell] — a single-cell CIF file. *)
val of_cell : Bisram_tech.Process.t -> Cell.t -> string

(** [of_macro process macro] — hierarchical CIF with one definition per
    distinct leaf cell.  Arrays are expanded into calls; macros above
    [call_limit] calls (default 200_000) are rejected with
    [Invalid_argument]. *)
val of_macro :
  ?call_limit:int -> Bisram_tech.Process.t -> Macro.t -> string
