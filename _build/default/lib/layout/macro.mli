(** Hierarchical macrocells.

    A macrocell instantiates leaf cells directly or as symbolic 2-D
    arrays (step-and-repeat), so a megabit RAM core stays one record
    instead of millions of flattened rectangles.  Areas, bounding boxes
    and the CIF writer all work on the symbolic form. *)

type element =
  | Inst of { cell : Cell.t; at : Bisram_geometry.Transform.t }
  | Array of {
      cell : Cell.t;
      origin : Bisram_geometry.Point.t;
      nx : int;
      ny : int;
      pitch_x : int;
      pitch_y : int;
      mirror_odd_rows : bool;
    }

type t = {
  name : string;
  elements : element list;
  ports : Port.t list;
}

val make : name:string -> ?ports:Port.t list -> element list -> t

val inst : ?at:Bisram_geometry.Transform.t -> Cell.t -> element

(** [array cell ~origin ~nx ~ny] with pitch defaulting to the cell's
    abutment-box size (tight tiling). *)
val array :
  ?pitch_x:int -> ?pitch_y:int -> ?mirror_odd_rows:bool ->
  origin:Bisram_geometry.Point.t -> nx:int -> ny:int -> Cell.t -> element

val bbox : t -> Bisram_geometry.Rect.t
val width : t -> int
val height : t -> int

(** Abutment-box area (the floorplanning area). *)
val area : t -> int

(** Number of leaf-cell instances (arrays counted in full). *)
val instance_count : t -> int

(** Flatten to a single cell.  Refuses (raises [Invalid_argument]) when
    the expansion would exceed [limit] instances (default 100_000). *)
val flatten : ?limit:int -> t -> Cell.t

val pp : Format.formatter -> t -> unit
