(** Reader for the CIF subset the {!Cif} writer emits: definitions
    (DS/DF), names (9), layers (L), boxes (B), calls (C) with mirror /
    rotate / translate, and the end marker (E).  Used to round-trip the
    writer in the test suite and to re-import generated geometry. *)

type box = {
  layer : Bisram_tech.Layer.t;
  rect : Bisram_geometry.Rect.t;  (** centimicrons *)
}

type call = {
  callee : int;
  transform : Bisram_geometry.Transform.t;  (** offset in centimicrons *)
}

type definition = {
  id : int;
  def_name : string option;
  boxes : box list;
  calls : call list;
}

type t = {
  definitions : definition list;
  top_calls : call list;
}

(** @raise Invalid_argument on syntax errors or unknown CIF layers. *)
val parse : string -> t

val find : t -> int -> definition option

(** Flatten a parsed file into layer/rect pairs in centimicrons,
    expanding calls recursively from the top-level calls. *)
val flatten : t -> (Bisram_tech.Layer.t * Bisram_geometry.Rect.t) list

(** Reconstruct a cell in lambda units from a single-definition file
    written by {!Cif.of_cell}.  @raise Invalid_argument when the
    coordinates are not multiples of the process lambda. *)
val to_cell : Bisram_tech.Process.t -> string -> Cell.t
