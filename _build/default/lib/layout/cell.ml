module R = Bisram_geometry.Rect
module T = Bisram_geometry.Transform
module P = Bisram_geometry.Point
module L = Bisram_tech.Layer

type t = {
  name : string;
  bbox : R.t;
  shapes : (L.t * R.t) list;
  ports : Port.t list;
}

let make ~name ~w ~h shapes ports =
  if w < 0 || h < 0 then invalid_arg "Cell.make: negative size";
  { name; bbox = R.make 0 0 w h; shapes; ports }

let width t = R.width t.bbox
let height t = R.height t.bbox
let area t = R.area t.bbox

let transform tr t =
  { t with
    bbox = T.apply_rect tr t.bbox
  ; shapes = List.map (fun (l, r) -> (l, T.apply_rect tr r)) t.shapes
  ; ports = List.map (Port.transform tr) t.ports
  }

let translate d t = transform (T.translation d) t

let normalize t =
  let ll = R.lower_left t.bbox in
  translate (P.neg ll) t

let find_port t name = List.find_opt (fun p -> p.Port.name = name) t.ports
let ports_on t edge = List.filter (fun p -> p.Port.edge = edge) t.ports

let shapes_on t layer =
  List.filter_map
    (fun (l, r) -> if L.equal l layer then Some r else None)
    t.shapes

let drc rules t =
  (* a shape reaching the abutment boundary merges with the neighbouring
     cell's copy (shared wells, power rails), so its drawn width inside
     one cell may legally be below minimum *)
  let merges_at_boundary (r : R.t) =
    r.R.x0 = t.bbox.R.x0 || r.R.x1 = t.bbox.R.x1 || r.R.y0 = t.bbox.R.y0
    || r.R.y1 = t.bbox.R.y1
  in
  List.concat_map
    (fun layer ->
      let rects = shapes_on t layer in
      let widths =
        List.filter_map
          (fun r ->
            if merges_at_boundary r then None
            else Bisram_tech.Rules.check_width rules layer r)
          rects
      in
      widths @ Bisram_tech.Rules.check_spacing rules layer rects)
    L.all

let merge ~name cells =
  match cells with
  | [] -> invalid_arg "Cell.merge: empty"
  | first :: _ ->
      let bbox =
        List.fold_left (fun acc c -> R.join acc c.bbox) first.bbox cells
      in
      { name
      ; bbox
      ; shapes = List.concat_map (fun c -> c.shapes) cells
      ; ports = List.concat_map (fun c -> c.ports) cells
      }

let pp ppf t =
  Format.fprintf ppf "%s %dx%d (%d shapes, %d ports)" t.name (width t)
    (height t) (List.length t.shapes) (List.length t.ports)
