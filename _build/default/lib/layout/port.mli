(** Cell ports: named, layered landing rectangles on a cell edge.

    Signals between adjacent macrocells are connected by abutment: two
    cells abut correctly when their facing ports coincide after
    placement.  Port rectangles may be degenerate (zero thickness). *)

type edge = North | South | East | West

type t = {
  name : string;
  layer : Bisram_tech.Layer.t;
  rect : Bisram_geometry.Rect.t;
  edge : edge;
}

val make :
  name:string -> layer:Bisram_tech.Layer.t -> edge:edge ->
  Bisram_geometry.Rect.t -> t

(** Edge after an orientation change. *)
val transform_edge : Bisram_geometry.Orient.t -> edge -> edge

val transform : Bisram_geometry.Transform.t -> t -> t
val opposite : edge -> edge
val pp : Format.formatter -> t -> unit
