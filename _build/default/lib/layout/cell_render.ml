module R = Bisram_geometry.Rect
module L = Bisram_tech.Layer

let glyph = function
  | L.Nwell -> 'n'
  | L.Pwell -> 'p'
  | L.Active -> 'a'
  | L.Poly -> '|'
  | L.Nplus -> '.'
  | L.Pplus -> ','
  | L.Contact -> 'x'
  | L.Metal1 -> '='
  | L.Via1 -> '#'
  | L.Metal2 -> 'H'
  | L.Via2 -> '@'
  | L.Metal3 -> 'T'
  | L.Glass -> 'g'

(* draw order: later layers overwrite earlier ones *)
let draw_order =
  [ L.Nwell; L.Pwell; L.Nplus; L.Pplus; L.Active; L.Poly; L.Contact
  ; L.Metal1; L.Via1; L.Metal2; L.Via2; L.Metal3; L.Glass
  ]

let render ?(scale = 1) (cell : Cell.t) =
  if scale < 1 then invalid_arg "Cell_render.render: scale";
  let box = cell.Cell.bbox in
  let w = max 1 (R.width box / scale) and h = max 1 (R.height box / scale) in
  let grid = Array.make_matrix h w ' ' in
  List.iter
    (fun layer ->
      let c = glyph layer in
      List.iter
        (fun (r : R.t) ->
          let x0 = max 0 ((r.R.x0 - box.R.x0) / scale) in
          let x1 = min w ((r.R.x1 - box.R.x0 + scale - 1) / scale) in
          let y0 = max 0 ((r.R.y0 - box.R.y0) / scale) in
          let y1 = min h ((r.R.y1 - box.R.y0 + scale - 1) / scale) in
          for y = y0 to y1 - 1 do
            for x = x0 to x1 - 1 do
              grid.(y).(x) <- c
            done
          done)
        (Cell.shapes_on cell layer))
    draw_order;
  let buf = Buffer.create ((w + 1) * h) in
  (* y grows upward in layout, downward on screen *)
  for y = h - 1 downto 0 do
    for x = 0 to w - 1 do
      Buffer.add_char buf grid.(y).(x)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
