module R = Bisram_geometry.Rect
module L = Bisram_tech.Layer

let r = R.make

(* ------------------------------------------------------------------ *)
(* 6T SRAM cell, 24 x 20 lambda.

   Vertical metal2 bitlines at the cell edges, horizontal poly word
   line near the bottom, NMOS (access + driver) pairs below, PMOS
   pull-ups in the top n-well, metal1 power rails top and bottom.  The
   cross-coupling is drawn as the two internal metal1 node plates. *)

let sram_6t () =
  let shapes =
    [ (* wells and selects *)
      (L.Nwell, r 0 12 24 20)
    ; (L.Pplus, r 6 12 18 20)
    ; (L.Nplus, r 1 0 23 10)
    ; (* power rails, metal1 *)
      (L.Metal1, r 0 0 24 2) (* gnd *)
    ; (L.Metal1, r 0 18 24 20) (* vdd *)
    ; (* bitlines, metal2 *)
      (L.Metal2, r 1 0 4 20) (* bl *)
    ; (L.Metal2, r 20 0 23 20) (* blb *)
    ; (* word line, poly *)
      (L.Poly, r 0 3 24 5)
    ; (* access + driver active strips *)
      (L.Active, r 2 1 5 9)
    ; (L.Active, r 19 1 22 9)
    ; (* pull-up actives in the well *)
      (L.Active, r 7 13 10 19)
    ; (L.Active, r 14 13 17 19)
    ; (* storage-node gates (drivers + pull-ups share poly columns) *)
      (L.Poly, r 8 7 10 17)
    ; (L.Poly, r 14 7 16 17)
    ; (* internal storage-node plates, metal1 *)
      (L.Metal1, r 6 9 12 12)
    ; (L.Metal1, r 12 6 18 9)
    ; (* bitline and node contacts *)
      (L.Contact, r 2 6 4 8)
    ; (L.Contact, r 20 6 22 8)
    ; (L.Via1, r 2 6 4 8)
    ; (L.Via1, r 20 6 22 8)
    ; (L.Contact, r 8 18 10 20)
    ; (L.Contact, r 14 0 16 2)
    ]
  in
  let ports =
    [ Port.make ~name:"bl" ~layer:L.Metal2 ~edge:Port.North (r 1 20 4 20)
    ; Port.make ~name:"bl" ~layer:L.Metal2 ~edge:Port.South (r 1 0 4 0)
    ; Port.make ~name:"blb" ~layer:L.Metal2 ~edge:Port.North (r 20 20 23 20)
    ; Port.make ~name:"blb" ~layer:L.Metal2 ~edge:Port.South (r 20 0 23 0)
    ; Port.make ~name:"wl" ~layer:L.Poly ~edge:Port.West (r 0 3 0 5)
    ; Port.make ~name:"wl" ~layer:L.Poly ~edge:Port.East (r 24 3 24 5)
    ; Port.make ~name:"vdd" ~layer:L.Metal1 ~edge:Port.West (r 0 18 0 20)
    ; Port.make ~name:"vdd" ~layer:L.Metal1 ~edge:Port.East (r 24 18 24 20)
    ; Port.make ~name:"gnd" ~layer:L.Metal1 ~edge:Port.West (r 0 0 0 2)
    ; Port.make ~name:"gnd" ~layer:L.Metal1 ~edge:Port.East (r 24 0 24 2)
    ]
  in
  Cell.make ~name:"sram_6t" ~w:24 ~h:20 shapes ports

(* ------------------------------------------------------------------ *)
(* Column precharge head: two precharge PMOS and an equalizer in one
   n-well strip, bitline stubs aligned with the 6T cell. *)

let precharge () =
  let shapes =
    [ (L.Nwell, r 0 0 24 12)
    ; (L.Pplus, r 1 1 23 11)
    ; (L.Metal1, r 0 10 24 12) (* vdd rail *)
    ; (L.Metal2, r 1 0 4 12)
    ; (L.Metal2, r 20 0 23 12)
    ; (L.Poly, r 0 4 24 6) (* prechargE clock *)
    ; (L.Active, r 2 1 5 9)
    ; (L.Active, r 19 1 22 9)
    ; (L.Active, r 10 1 14 9) (* equalizer *)
    ; (L.Contact, r 2 1 4 3)
    ; (L.Contact, r 20 1 22 3)
    ]
  in
  let ports =
    [ Port.make ~name:"bl" ~layer:L.Metal2 ~edge:Port.South (r 1 0 4 0)
    ; Port.make ~name:"blb" ~layer:L.Metal2 ~edge:Port.South (r 20 0 23 0)
    ; Port.make ~name:"pclk" ~layer:L.Poly ~edge:Port.West (r 0 4 0 6)
    ; Port.make ~name:"pclk" ~layer:L.Poly ~edge:Port.East (r 24 4 24 6)
    ; Port.make ~name:"vdd" ~layer:L.Metal1 ~edge:Port.West (r 0 10 0 12)
    ; Port.make ~name:"vdd" ~layer:L.Metal1 ~edge:Port.East (r 24 10 24 12)
    ]
  in
  Cell.make ~name:"precharge" ~w:24 ~h:12 shapes ports

(* ------------------------------------------------------------------ *)
(* Current-mode sense amplifier + write driver column foot. *)

let sense_amp () =
  let shapes =
    [ (L.Nwell, r 0 18 24 30)
    ; (L.Metal2, r 1 18 4 30)
    ; (L.Metal2, r 20 18 23 30)
    ; (L.Metal1, r 0 0 24 2) (* gnd *)
    ; (L.Metal1, r 0 28 24 30) (* vdd *)
    ; (L.Active, r 2 4 8 14)
    ; (L.Active, r 16 4 22 14)
    ; (L.Poly, r 6 3 8 16)
    ; (L.Poly, r 16 3 18 16)
    ; (L.Poly, r 0 20 24 22) (* sense enable *)
    ; (L.Metal1, r 8 6 16 9) (* cross-coupled latch node *)
    ; (L.Metal1, r 10 12 14 16)
    ; (L.Contact, r 3 5 5 7)
    ; (L.Contact, r 19 5 21 7)
    ]
  in
  let ports =
    [ Port.make ~name:"bl" ~layer:L.Metal2 ~edge:Port.North (r 1 30 4 30)
    ; Port.make ~name:"blb" ~layer:L.Metal2 ~edge:Port.North (r 20 30 23 30)
    ; Port.make ~name:"dout" ~layer:L.Metal1 ~edge:Port.South (r 10 0 13 0)
    ; Port.make ~name:"sen" ~layer:L.Poly ~edge:Port.West (r 0 20 0 22)
    ; Port.make ~name:"sen" ~layer:L.Poly ~edge:Port.East (r 24 20 24 22)
    ]
  in
  Cell.make ~name:"sense_amp" ~w:24 ~h:30 shapes ports

(* ------------------------------------------------------------------ *)
(* Word-line driver: an inverter whose devices scale with [drive]. *)

let wordline_driver ~drive =
  if drive < 1 then invalid_arg "Leaf.wordline_driver: drive";
  let w = 12 + (4 * drive) in
  let nw = 3 * drive in
  (* device widths grow with drive *)
  let shapes =
    [ (L.Nwell, r 0 10 w 20)
    ; (L.Metal1, r 0 0 w 2)
    ; (L.Metal1, r 0 18 w 20)
    ; (L.Poly, r 5 2 7 18) (* common gate *)
    ; (L.Active, r 3 3 (3 + max 4 nw) 8)
    ; (L.Active, r 3 12 (3 + max 4 (2 * drive * 3 / 2)) 17)
    ; (L.Metal1, r (w - 4) 5 w 8) (* drain strap to the word line *)
    ; (L.Contact, r (w - 4) 5 (w - 2) 7)
    ; (L.Poly, r (w - 3) 3 w 5) (* word-line poly stub at the east edge *)
    ]
  in
  let ports =
    [ Port.make ~name:"inp" ~layer:L.Metal1 ~edge:Port.West (r 0 3 0 5)
    ; Port.make ~name:"out" ~layer:L.Poly ~edge:Port.East (r w 3 w 5)
    ; Port.make ~name:"vdd" ~layer:L.Metal1 ~edge:Port.East (r w 18 w 20)
    ; Port.make ~name:"gnd" ~layer:L.Metal1 ~edge:Port.East (r w 0 w 2)
    ]
  in
  Cell.make ~name:(Printf.sprintf "wl_driver_x%d" drive) ~w ~h:20 shapes ports

(* ------------------------------------------------------------------ *)
(* Row-decoder slice: a [bits]-input NAND at word-line pitch. *)

let row_decoder_slice ~bits =
  if bits < 1 then invalid_arg "Leaf.row_decoder_slice: bits";
  let w = (6 * bits) + 10 in
  let addr_polys =
    List.init bits (fun i ->
        let x = 2 + (6 * i) in
        (L.Poly, r x 2 (x + 2) 18))
  in
  let shapes =
    [ (L.Metal1, r 0 0 w 2)
    ; (L.Metal1, r 0 18 w 20)
    ; (L.Active, r 1 6 (6 * bits) 10) (* series NMOS stack *)
    ; (L.Nwell, r 0 12 w 20)
    ; (L.Active, r 1 13 (6 * bits) 17) (* parallel PMOS *)
    ; (L.Metal1, r ((6 * bits) + 2) 5 w 8)
    ; (L.Contact, r ((6 * bits) + 2) 5 ((6 * bits) + 4) 7)
    ]
    @ addr_polys
  in
  let addr_ports =
    List.concat
      (List.init bits (fun i ->
           let x = 2 + (6 * i) in
           [ Port.make ~name:(Printf.sprintf "a%d" i) ~layer:L.Poly
               ~edge:Port.North
               (r x 20 (x + 2) 20)
           ; Port.make ~name:(Printf.sprintf "a%d" i) ~layer:L.Poly
               ~edge:Port.South
               (r x 0 (x + 2) 0)
           ]))
  in
  let ports =
    Port.make ~name:"out" ~layer:L.Metal1 ~edge:Port.East (r w 5 w 8)
    :: Port.make ~name:"vdd" ~layer:L.Metal1 ~edge:Port.East (r w 18 w 20)
    :: Port.make ~name:"gnd" ~layer:L.Metal1 ~edge:Port.East (r w 0 w 2)
    :: addr_ports
  in
  Cell.make ~name:(Printf.sprintf "row_dec_%db" bits) ~w ~h:20 shapes ports

(* ------------------------------------------------------------------ *)
(* Column multiplexer slice: bpc pass pairs under the bitlines. *)

let column_mux ~bpc =
  if bpc < 1 then invalid_arg "Leaf.column_mux: bpc";
  let w = 24 * bpc in
  let per_col =
    List.concat
      (List.init bpc (fun i ->
           let x0 = 24 * i in
           [ (L.Metal2, r (x0 + 2) 6 (x0 + 5) 16)
           ; (L.Metal2, r (x0 + 18) 6 (x0 + 21) 16)
           ; (L.Active, r (x0 + 2) 2 (x0 + 6) 6)
           ; (L.Active, r (x0 + 17) 2 (x0 + 21) 6)
           ]))
  in
  let sel_polys =
    List.init bpc (fun i -> (L.Poly, r ((24 * i) + 8) 0 ((24 * i) + 10) 16))
  in
  let shapes = ((L.Metal1, r 0 0 w 2) :: per_col) @ sel_polys in
  let bit_ports =
    List.concat
      (List.init bpc (fun i ->
           let x0 = 24 * i in
           [ Port.make ~name:(Printf.sprintf "bl%d" i) ~layer:L.Metal2
               ~edge:Port.North
               (r (x0 + 1) 16 (x0 + 4) 16)
           ; Port.make ~name:(Printf.sprintf "blb%d" i) ~layer:L.Metal2
               ~edge:Port.North
               (r (x0 + 20) 16 (x0 + 23) 16)
           ; Port.make ~name:(Printf.sprintf "sel%d" i) ~layer:L.Poly
               ~edge:Port.South
               (r ((24 * i) + 8) 0 ((24 * i) + 10) 0)
           ]))
  in
  let ports =
    Port.make ~name:"io" ~layer:L.Metal1 ~edge:Port.South (r 0 0 w 2)
    :: bit_ports
  in
  Cell.make ~name:(Printf.sprintf "col_mux_%d" bpc) ~w ~h:16 shapes ports

(* ------------------------------------------------------------------ *)
(* Strap column: well taps + wire-through, cell height tall. *)

let strap ~w =
  if w < 4 then invalid_arg "Leaf.strap: too narrow";
  let shapes =
    [ (L.Metal1, r 0 0 w 2)
    ; (L.Metal1, r 0 18 w 20)
    ; (L.Poly, r 0 3 w 5) (* word line runs through *)
    ; (L.Contact, r 1 13 3 15) (* well tap *)
    ]
  in
  let ports =
    [ Port.make ~name:"wl" ~layer:L.Poly ~edge:Port.West (r 0 3 0 5)
    ; Port.make ~name:"wl" ~layer:L.Poly ~edge:Port.East (r w 3 w 5)
    ]
  in
  Cell.make ~name:(Printf.sprintf "strap_%d" w) ~w ~h:20 shapes ports

(* ------------------------------------------------------------------ *)
(* Phantom cells: abutment box + ports only. *)

let phantom ~name ~w ~h ports = Cell.make ~name ~w ~h [] ports

let cam_bit () =
  phantom ~name:"cam_bit" ~w:36 ~h:20
    [ Port.make ~name:"akey" ~layer:L.Metal2 ~edge:Port.North (r 4 20 7 20)
    ; Port.make ~name:"match" ~layer:L.Metal1 ~edge:Port.West (r 0 8 0 10)
    ; Port.make ~name:"match" ~layer:L.Metal1 ~edge:Port.East (r 36 8 36 10)
    ]

let dff () =
  phantom ~name:"dff" ~w:40 ~h:24
    [ Port.make ~name:"d" ~layer:L.Metal1 ~edge:Port.West (r 0 10 0 12)
    ; Port.make ~name:"q" ~layer:L.Metal1 ~edge:Port.East (r 40 10 40 12)
    ; Port.make ~name:"clk" ~layer:L.Metal2 ~edge:Port.North (r 18 24 21 24)
    ]

let pla ~n_inputs ~n_outputs ~n_terms =
  if n_inputs < 1 || n_outputs < 1 || n_terms < 1 then
    invalid_arg "Leaf.pla: dimensions";
  (* one contacted pitch (6 lambda) per plane column/term row plus a
     2-pitch ring of pull-ups and buffers *)
  let pitch = 6 in
  let w = ((2 * n_inputs) + n_outputs + 4) * pitch in
  let h = (n_terms + 4) * pitch in
  let inp_ports =
    List.init n_inputs (fun i ->
        Port.make ~name:(Printf.sprintf "in%d" i) ~layer:L.Metal2
          ~edge:Port.South
          (r ((i * 2 * pitch) + 12) 0 ((i * 2 * pitch) + 15) 0))
  in
  let out_ports =
    List.init n_outputs (fun i ->
        Port.make ~name:(Printf.sprintf "out%d" i) ~layer:L.Metal2
          ~edge:Port.North
          (r ((2 * n_inputs * pitch) + 12 + (i * pitch)) h
             ((2 * n_inputs * pitch) + 15 + (i * pitch))
             h))
  in
  phantom ~name:"trpla" ~w ~h (inp_ports @ out_ports)

(* Drawn PLA: input pitch 6 (poly w2, gap 4), output pitch 8 (metal2
   w3, gap 5), term pitch 6 (metal1 w3, gap 3), device patches 3x3
   active + 2x2 contact per programmed literal. *)
let pla_programmed ~and_plane ~or_plane =
  (match (and_plane, or_plane) with
  | [], _ | _, [] -> invalid_arg "Leaf.pla_programmed: empty plane"
  | a :: _, o :: _ ->
      if String.length a = 0 || String.length o = 0 then
        invalid_arg "Leaf.pla_programmed: empty rows");
  let n_terms = List.length and_plane in
  if List.length or_plane <> n_terms then
    invalid_arg "Leaf.pla_programmed: plane row counts differ";
  let n_in = String.length (List.hd and_plane) in
  let n_out = String.length (List.hd or_plane) in
  List.iter
    (fun l ->
      if String.length l <> n_in then
        invalid_arg "Leaf.pla_programmed: ragged AND plane")
    and_plane;
  List.iter
    (fun l ->
      if String.length l <> n_out then
        invalid_arg "Leaf.pla_programmed: ragged OR plane")
    or_plane;
  let in_pitch = 6 and out_pitch = 8 and term_pitch = 6 in
  let margin = 6 in
  (* two columns (true + complement) per input *)
  let x_true i = margin + (2 * i * in_pitch) in
  let x_compl i = x_true i + in_pitch in
  let and_width = 2 * n_in * in_pitch in
  let x_out o = margin + and_width + (o * out_pitch) in
  let w = margin + and_width + (n_out * out_pitch) + margin in
  let y_term t = margin + (t * term_pitch) in
  let h = margin + (n_terms * term_pitch) + margin in
  let shapes = ref [] in
  let add l rect = shapes := (l, rect) :: !shapes in
  (* input columns: poly, full height *)
  for i = 0 to n_in - 1 do
    add L.Poly (r (x_true i) 0 (x_true i + 2) h);
    add L.Poly (r (x_compl i) 0 (x_compl i + 2) h)
  done;
  (* output columns: metal2, full height *)
  for o = 0 to n_out - 1 do
    add L.Metal2 (r (x_out o) 0 (x_out o + 3) h)
  done;
  (* term rows: metal1 across both planes *)
  List.iteri
    (fun t _ ->
      let y = y_term t in
      add L.Metal1 (r (margin - 3) y (w - margin + 3) (y + 3)))
    and_plane;
  (* AND-plane devices *)
  List.iteri
    (fun t line ->
      let y = y_term t in
      String.iteri
        (fun i c ->
          let x =
            match c with
            | '1' -> Some (x_true i)
            | '0' -> Some (x_compl i)
            | '-' -> None
            | _ -> invalid_arg "Leaf.pla_programmed: bad AND char"
          in
          match x with
          | Some x ->
              add L.Active (r x (y - 3) (x + 3) y);
              add L.Contact (r x (y - 3) (x + 2) (y - 1))
          | None -> ())
        line)
    and_plane;
  (* OR-plane devices *)
  List.iteri
    (fun t line ->
      let y = y_term t in
      String.iteri
        (fun o c ->
          match c with
          | '1' ->
              let x = x_out o in
              add L.Active (r x (y - 3) (x + 3) y);
              add L.Via1 (r x (y - 3) (x + 2) (y - 1))
          | '.' | '0' -> ()
          | _ -> invalid_arg "Leaf.pla_programmed: bad OR char")
        line)
    or_plane;
  (* pull-up strip at the top (pseudo-NMOS loads) *)
  add L.Nwell (r 0 (h - 5) w h);
  add L.Metal1 (r 0 (h - 3) w h);
  let ports =
    List.init n_in (fun i ->
        Port.make ~name:(Printf.sprintf "in%d" i) ~layer:L.Poly
          ~edge:Port.South
          (r (x_true i) 0 (x_true i + 2) 0))
    @ List.init n_out (fun o ->
          Port.make ~name:(Printf.sprintf "out%d" o) ~layer:L.Metal2
            ~edge:Port.North
            (r (x_out o) h (x_out o + 3) h))
  in
  Cell.make ~name:"trpla_core" ~w ~h !shapes ports

let datagen_stage () =
  phantom ~name:"datagen_stage" ~w:64 ~h:24
    [ Port.make ~name:"si" ~layer:L.Metal1 ~edge:Port.West (r 0 10 0 12)
    ; Port.make ~name:"so" ~layer:L.Metal1 ~edge:Port.East (r 64 10 64 12)
    ; Port.make ~name:"cmp" ~layer:L.Metal2 ~edge:Port.South (r 30 0 33 0)
    ]

let addgen_stage () =
  phantom ~name:"addgen_stage" ~w:56 ~h:24
    [ Port.make ~name:"ci" ~layer:L.Metal1 ~edge:Port.West (r 0 10 0 12)
    ; Port.make ~name:"co" ~layer:L.Metal1 ~edge:Port.East (r 56 10 56 12)
    ; Port.make ~name:"q" ~layer:L.Metal2 ~edge:Port.North (r 26 24 29 24)
    ]
