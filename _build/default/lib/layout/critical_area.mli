(** Critical-area analysis for fatal flaws (Section VII, after Khare et
    al.).

    A spot defect of radius r shorts two nets when its centre lies
    where the r-dilations of both nets' geometry overlap; the area of
    that region is the critical area.  The paper's claim is that the
    chosen 6T template leaves a near-zero critical area for the fatal
    vdd/gnd shorts at all realistic defect radii — here that is
    computed from the generated geometry itself. *)

(** [critical_area ~radius ~a ~b] — area (lambda^2) of the region where
    a defect of the given radius bridges some rectangle of [a] with
    some rectangle of [b]. *)
val critical_area :
  radius:int ->
  a:Bisram_geometry.Rect.t list ->
  b:Bisram_geometry.Rect.t list ->
  int

(** Area of the union of a rectangle list (coordinate compression). *)
val union_area : Bisram_geometry.Rect.t list -> int

(** Critical area for a supply short (vdd net vs gnd net) inside a leaf
    cell: the nets are the metal-1 shapes touching the cell's vdd and
    gnd ports.  Returns lambda^2. *)
val power_short : Cell.t -> radius:int -> int

(** Smallest defect radius (lambda) with a nonzero power-short critical
    area — infinite separation returns [None] (searched up to
    [limit], default the cell diagonal). *)
val fatal_radius : ?limit:int -> Cell.t -> int option
