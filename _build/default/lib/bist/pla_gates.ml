module N = Bisram_gates.Netlist

let cond_names =
  [ "test_enable"; "cmp_fail"; "elem_done"; "bg_done"; "tlb_full"; "ret_ack" ]

let action_names =
  [ "apply_read"; "apply_write"; "data_complement"; "addr_reset_up"
  ; "addr_reset_down"; "request_wait"; "sig_done"; "sig_fail"; "addr_step"
  ; "record_row"; "next_background"; "reset_background"; "enable_remap"
  ]

(* Two-level AND-OR expansion of the plane images. *)
let build_planes t pla inputs =
  let and_plane = Trpla.and_plane_image pla in
  let or_plane = Trpla.or_plane_image pla in
  let term_signals =
    List.map
      (fun line ->
        let lits = ref [] in
        String.iteri
          (fun i c ->
            match c with
            | '1' -> lits := List.nth inputs i :: !lits
            | '0' -> lits := N.not_ t (List.nth inputs i) :: !lits
            | '-' -> ()
            | _ -> invalid_arg "Pla_gates: bad plane image")
          line;
        match !lits with
        | [] -> N.const t true
        | l -> N.and_list t l)
      and_plane
  in
  List.init (Trpla.n_outputs pla) (fun o ->
      let contributors =
        List.concat
          (List.map2
             (fun term line -> if line.[o] = '1' then [ term ] else [])
             term_signals or_plane)
      in
      match contributors with
      | [] -> N.const t false
      | l -> N.or_list t l)

let of_trpla pla =
  let t = N.create () in
  let inputs =
    List.init (Trpla.n_inputs pla) (fun i -> N.input t (Printf.sprintf "in%d" i))
  in
  let outs = build_planes t pla inputs in
  List.iteri (fun i s -> N.output t (Printf.sprintf "out%d" i) s) outs;
  t

let controller_netlist ctl =
  let pla = Controller.to_pla ctl in
  let nbits = Controller.flipflop_count ctl in
  assert (Trpla.n_inputs pla = nbits + List.length cond_names);
  assert (Trpla.n_outputs pla = nbits + List.length action_names);
  let t = N.create () in
  (* state register (IDLE = 0) *)
  let state = List.init nbits (fun i -> N.dff t (Printf.sprintf "s%d" i)) in
  let conds = List.map (N.input t) cond_names in
  let outs = build_planes t pla (state @ conds) in
  let next_state = List.filteri (fun i _ -> i < nbits) outs in
  let actions = List.filteri (fun i _ -> i >= nbits) outs in
  List.iter2 (fun q d -> N.connect t ~q ~d) state next_state;
  List.iteri (fun i q -> N.output t (Printf.sprintf "state%d" i) q) state;
  List.iter2 (fun name s -> N.output t name s) action_names actions;
  t

let controller_verilog ctl =
  N.to_verilog ~name:"trpla_fsm" (controller_netlist ctl)
