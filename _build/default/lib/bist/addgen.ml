type t = { limit : int; mutable v : int }

let create ~limit =
  if limit <= 0 then invalid_arg "Addgen.create: limit must be positive";
  { limit; v = 0 }

let limit t = t.limit

let start ~dir t = match dir with March.Down -> t.limit - 1 | March.Up | March.Either -> 0

let reset t ~dir = t.v <- start ~dir t
let value t = t.v

let step t ~dir =
  match dir with
  | March.Up | March.Either ->
      if t.v = t.limit - 1 then begin
        t.v <- 0;
        true
      end
      else begin
        t.v <- t.v + 1;
        false
      end
  | March.Down ->
      if t.v = 0 then begin
        t.v <- t.limit - 1;
        true
      end
      else begin
        t.v <- t.v - 1;
        false
      end

let width t =
  let rec go acc k = if k >= t.limit then acc else go (acc + 1) (k * 2) in
  go 0 1

let gate_count t = 10 * width t
