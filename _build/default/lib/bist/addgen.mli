(** ADDGEN: the test address generator.

    March elements need a forward and a reverse addressing sequence, so
    ADDGEN is a binary up/down counter over [0, limit).  The model is
    register-accurate: [step] advances one address per test clock and
    reports wrap-around (the element-done condition sampled by the
    controller). *)

type t

(** [create ~limit] counts over addresses [0 .. limit-1]. *)
val create : limit:int -> t

val limit : t -> int

(** Park the counter at the first address of the given direction
    (0 for [Up], limit-1 for [Down]). *)
val reset : t -> dir:March.order -> unit

val value : t -> int

(** Advance one step in the direction; returns [true] when the counter
    wrapped (all addresses visited). *)
val step : t -> dir:March.order -> bool

(** Hardware cost of the counter: flip-flop count (address width). *)
val width : t -> int

(** Approximate gate count: a loadable up/down counter costs about ten
    gate equivalents per stage. *)
val gate_count : t -> int
