module Word = Bisram_sram.Word

type t = { bpw : int; mutable state : bool array }

let create ~bpw =
  if bpw <= 0 then invalid_arg "Datagen.create: bpw must be positive";
  { bpw; state = Array.make bpw false }

let bpw t = t.bpw
let reset t = t.state <- Array.make t.bpw false
let state t = Word.of_bits t.state

let step t =
  let n = t.bpw in
  let next = Array.make n false in
  next.(0) <- not t.state.(n - 1);
  for i = 1 to n - 1 do
    next.(i) <- t.state.(i - 1)
  done;
  t.state <- next

let required_count ~bpw = (bpw / 2) + 1

let half_cycle_backgrounds ~bpw =
  let g = create ~bpw in
  let out = ref [ state g ] in
  for _ = 1 to bpw do
    step g;
    out := state g :: !out
  done;
  List.rev !out

let required_backgrounds ~bpw =
  let half = Array.of_list (half_cycle_backgrounds ~bpw) in
  let n = required_count ~bpw in
  (* every second state, pinned to start at all-0 and end at all-1 *)
  List.init n (fun i ->
      if i = n - 1 then half.(bpw) else half.(min (2 * i) bpw))

let matches ~expected ~got = Word.equal expected got
let ff_count t = t.bpw

let gate_count t =
  (* ~6 gates per Johnson stage + 3 per comparator XOR + OR tree *)
  (6 * t.bpw) + (3 * t.bpw) + t.bpw
