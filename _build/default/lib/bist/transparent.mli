(** Transparent BIST (Kebichi and Nicolaidis, Section III).

    A transparent march test leaves the RAM's normal-mode contents
    intact: the initialization element is dropped, every datum is
    expressed relative to each cell's initial content s (w0 becomes
    "write s xor background", etc.), read results are compressed into a
    MISR signature, and a prediction phase computes the fault-free
    signature from the same read sequence.  A final restoring element
    returns every word to s, so a periodic field self-test does not
    destroy state. *)

(** Signature of the transparent transform of a march test: the ops per
    address actually applied (initialization dropped, restore element
    appended when the test ends off-phase). *)
val transformed_ops_per_address : March.t -> int

type result = {
  detected : bool;  (** predicted and observed signatures differ *)
  contents_preserved : bool;
      (** post-test contents equal pre-test contents (checked against a
          snapshot; a detected fault may legitimately break this) *)
}

(** [run ram test] executes the transparent transform of [test] over
    the abstract RAM.  The background is taken relative to the cell
    contents, so no background sweep is needed. *)
val run : Engine.ram -> March.t -> result

(** Convenience: transparent self-test of a model. *)
val run_model : Bisram_sram.Model.t -> March.t -> result
