type lit = T | F | X

type t = {
  n_inputs : int;
  n_outputs : int;
  mutable terms : (lit array * bool array) list; (* reversed *)
  mutable n_terms : int;
}

let create ~n_inputs ~n_outputs =
  if n_inputs <= 0 || n_outputs <= 0 then invalid_arg "Trpla.create";
  { n_inputs; n_outputs; terms = []; n_terms = 0 }

let n_inputs t = t.n_inputs
let n_outputs t = t.n_outputs
let term_count t = t.n_terms

let add_term t ~ands ~ors =
  if Array.length ands <> t.n_inputs then
    invalid_arg "Trpla.add_term: AND-plane width mismatch";
  if Array.length ors <> t.n_outputs then
    invalid_arg "Trpla.add_term: OR-plane width mismatch";
  t.terms <- (Array.copy ands, Array.copy ors) :: t.terms;
  t.n_terms <- t.n_terms + 1

let term_matches ands inputs =
  let n = Array.length ands in
  let rec go i =
    if i >= n then true
    else
      match ands.(i) with
      | X -> go (i + 1)
      | T -> inputs.(i) && go (i + 1)
      | F -> (not inputs.(i)) && go (i + 1)
  in
  go 0

let eval t inputs =
  if Array.length inputs <> t.n_inputs then
    invalid_arg "Trpla.eval: input width mismatch";
  let out = Array.make t.n_outputs false in
  List.iter
    (fun (ands, ors) ->
      if term_matches ands inputs then
        Array.iteri (fun i o -> if o then out.(i) <- true) ors)
    t.terms;
  out

let in_order t = List.rev t.terms

let and_plane_image t =
  List.map
    (fun (ands, _) ->
      String.init t.n_inputs (fun i ->
          match ands.(i) with T -> '1' | F -> '0' | X -> '-'))
    (in_order t)

let or_plane_image t =
  List.map
    (fun (_, ors) ->
      String.init t.n_outputs (fun i -> if ors.(i) then '1' else '.'))
    (in_order t)

let of_images ~and_plane ~or_plane =
  (match (and_plane, or_plane) with
  | [], _ | _, [] -> invalid_arg "Trpla.of_images: empty plane"
  | _ -> ());
  if List.length and_plane <> List.length or_plane then
    invalid_arg "Trpla.of_images: plane row counts differ";
  let n_inputs = String.length (List.hd and_plane) in
  let n_outputs = String.length (List.hd or_plane) in
  let t = create ~n_inputs ~n_outputs in
  List.iter2
    (fun al ol ->
      if String.length al <> n_inputs then
        invalid_arg "Trpla.of_images: ragged AND plane";
      if String.length ol <> n_outputs then
        invalid_arg "Trpla.of_images: ragged OR plane";
      let ands =
        Array.init n_inputs (fun i ->
            match al.[i] with
            | '1' -> T
            | '0' -> F
            | '-' -> X
            | c -> invalid_arg (Printf.sprintf "Trpla.of_images: bad char %c" c))
      in
      let ors =
        Array.init n_outputs (fun i ->
            match ol.[i] with
            | '1' -> true
            | '.' | '0' -> false
            | c -> invalid_arg (Printf.sprintf "Trpla.of_images: bad char %c" c))
      in
      add_term t ~ands ~ors)
    and_plane or_plane;
  t

let transistor_count t =
  let literal_devices =
    List.fold_left
      (fun acc (ands, ors) ->
        let a =
          Array.fold_left
            (fun n lit -> match lit with X -> n | T | F -> n + 1)
            0 ands
        in
        let o = Array.fold_left (fun n b -> if b then n + 1 else n) 0 ors in
        acc + a + o)
      0 t.terms
  in
  (* pseudo-NMOS pull-ups: one per term line and one per output line;
     input buffers: two devices per input (true + complement drivers) *)
  literal_devices + t.n_terms + t.n_outputs + (2 * t.n_inputs)

let area_lambda2 rules t =
  let pitch = Bisram_tech.Rules.contact_pitch rules in
  let columns = (2 * t.n_inputs) + t.n_outputs in
  let rows = t.n_terms in
  (* plus a one-pitch ring for pull-ups and buffers on each side *)
  (columns + 2) * pitch * ((rows + 2) * pitch)
