(** Functional march-test execution (the reference semantics).

    {!Controller} runs the same algorithm through the microprogrammed
    TRPLA datapath; this module executes it directly and is used for
    fault simulation, coverage evaluation and as the oracle the
    controller is checked against. *)

type failure = {
  background : Bisram_sram.Word.t;
  item : int;  (** index of the march item *)
  op : int;  (** index of the op within the element *)
  addr : int;
  expected : Bisram_sram.Word.t;
  got : Bisram_sram.Word.t;
}

type ram = {
  words : int;
  read : int -> Bisram_sram.Word.t;
  write : int -> Bisram_sram.Word.t -> unit;
  retention_wait : unit -> unit;
}
(** Abstract RAM access: lets the engine drive repair architectures
    other than the row-remapped {!Bisram_sram.Model} (the Section III
    baseline schemes divert individual words). *)

val ram_of_model : Bisram_sram.Model.t -> ram

(** [run_ram ram test ~backgrounds] applies the march once per
    background (no clearing), collecting every read mismatch. *)
val run_ram :
  ram -> March.t -> backgrounds:Bisram_sram.Word.t list -> failure list

(** [run model test ~backgrounds] clears the RAM and applies the march
    test once per background, collecting every read mismatch.  [Either]
    order is executed ascending.  The RAM's remap (if installed) is in
    effect, so this runs both BIST passes depending on model state. *)
val run :
  Bisram_sram.Model.t ->
  March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  failure list

(** [passes model test ~backgrounds] = no failure; stops at the first
    mismatch, which is the production-line use. *)
val passes :
  Bisram_sram.Model.t ->
  March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  bool

(** Logical rows containing at least one failing address, in order of
    first detection. *)
val failing_rows : Bisram_sram.Org.t -> failure list -> int list

(** Total RAM operations the test performs:
    ops_per_address * words * #backgrounds. *)
val op_count : March.t -> Bisram_sram.Org.t -> backgrounds:int -> int

val pp_failure : Format.formatter -> failure -> unit
