module Org = Bisram_sram.Org
module Model = Bisram_sram.Model

let element_pool =
  let elem order ops = March.Elem { order; ops } in
  [ [ elem March.Up [ March.W false ] ]
  ; [ elem March.Up [ March.W true ] ]
  ; [ elem March.Up [ March.R false; March.W true ] ]
  ; [ elem March.Up [ March.R true; March.W false ] ]
  ; [ elem March.Up [ March.R false; March.W true; March.R true ] ]
  ; [ elem March.Up [ March.R true; March.W false; March.R false ] ]
  ; [ elem March.Down [ March.R false; March.W true ] ]
  ; [ elem March.Down [ March.R true; March.W false ] ]
  ; [ elem March.Down [ March.R false; March.W true; March.R true ] ]
  ; [ elem March.Down [ March.R true; March.W false; March.R false ] ]
  ; [ elem March.Up [ March.R false ] ]
  ; [ elem March.Up [ March.R true ] ]
    (* retention wait plus the verify read that makes it observable *)
  ; [ March.Wait; elem March.Up [ March.R false ] ]
  ; [ March.Wait; elem March.Up [ March.R true ] ]
  ]

type result = {
  march : March.t;
  coverage : Coverage.result;
  achieved : float;
}

let ops_of_items items =
  List.fold_left
    (fun acc item ->
      match item with
      | March.Wait -> acc
      | March.Elem { ops; _ } -> acc + List.length ops)
    0 items

let valid_on_clean org march ~backgrounds =
  let m = Model.create org in
  Engine.passes m march ~backgrounds

let evaluate org march ~backgrounds ~faults =
  Coverage.evaluate org march ~backgrounds ~faults

let synthesize ?(max_elements = 12) org ~faults ~backgrounds ~target =
  if faults = [] then invalid_arg "Synthesis.synthesize: no faults";
  let mk items = March.make ~name:"synthesized" items in
  let seed = [ March.Elem { order = March.Up; ops = [ March.W false ] } ] in
  let score cov = Coverage.total_pct cov in
  let rec grow items cov =
    let current = score cov in
    if current >= target || List.length items >= max_elements then
      { march = mk items; coverage = cov; achieved = current }
    else begin
      (* best (gain per op) extension that stays valid on a clean RAM *)
      let best =
        List.fold_left
          (fun best cand ->
            let items' = items @ cand in
            let march' = mk items' in
            if List.length items' > max_elements then best
            else if not (valid_on_clean org march' ~backgrounds) then best
            else begin
              let cov' = evaluate org march' ~backgrounds ~faults in
              let gain = score cov' -. current in
              let per_op = gain /. float_of_int (max 1 (ops_of_items cand)) in
              match best with
              | Some (best_per_op, _, _, _) when best_per_op >= per_op -> best
              | _ -> Some (per_op, gain, items', cov')
            end)
          None element_pool
      in
      match best with
      | Some (_, gain, items', cov') when gain > 0.0 -> grow items' cov'
      | Some _ | None ->
          (* no extension helps: return what we have *)
          { march = mk items; coverage = cov; achieved = current }
    end
  in
  let cov0 = evaluate org (mk seed) ~backgrounds ~faults in
  grow seed cov0
