(** TRPLA: the pseudo-NMOS NOR-NOR programmable logic array that holds
    the test-and-repair control program.

    A NOR-NOR PLA with complemented inputs and outputs computes the
    same function as the AND-OR form modeled here: each product term
    selects inputs as true / complemented / don't-care; each output is
    the OR of its connected terms.  The control code is loaded from two
    plane images (one for the AND plane, one for the OR plane), exactly
    as BISRAMGEN reads them from two input files at layout-synthesis
    time — changing the files changes the test algorithm. *)

type lit = T  (** input must be 1 *) | F  (** input must be 0 *) | X  (** don't care *)

type t

val create : n_inputs:int -> n_outputs:int -> t
val n_inputs : t -> int
val n_outputs : t -> int
val term_count : t -> int

(** [add_term t ~ands ~ors] appends a product term.  [ands] has one lit
    per input; [ors] one bool per output. *)
val add_term : t -> ands:lit array -> ors:bool array -> unit

(** Evaluate: each output is the OR over matching terms. *)
val eval : t -> bool array -> bool array

(** Plane images: AND plane uses characters '1' (true), '0'
    (complemented), '-' (don't care); OR plane uses '1' and '.'.
    One line per term. *)
val and_plane_image : t -> string list

val or_plane_image : t -> string list

(** Load from plane images. @raise Invalid_argument on malformed or
    inconsistent images. *)
val of_images : and_plane:string list -> or_plane:string list -> t

(** Transistor-count estimate of the pseudo-NMOS NOR-NOR
    implementation: one device per programmed AND-plane literal, one
    per OR-plane connection, plus the pull-ups. *)
val transistor_count : t -> int

(** Core area in lambda^2: (2*inputs + outputs) columns x terms rows at
    one contacted pitch each. *)
val area_lambda2 : Bisram_tech.Rules.t -> t -> int
