type order = Up | Down | Either
type op = W of bool | R of bool
type element = { order : order; ops : op list }
type item = Elem of element | Wait
type t = { name : string; items : item list }

let make ~name items =
  List.iter
    (fun item ->
      match item with
      | Wait -> ()
      | Elem { ops; _ } ->
          if ops = [] then invalid_arg "March.make: empty element")
    items;
  { name; items }

let ops_per_address t =
  List.fold_left
    (fun acc item ->
      match item with Wait -> acc | Elem e -> acc + List.length e.ops)
    0 t.items

let reads_per_address t =
  List.fold_left
    (fun acc item ->
      match item with
      | Wait -> acc
      | Elem e ->
          acc
          + List.length (List.filter (function R _ -> true | W _ -> false) e.ops))
    0 t.items

let has_retention t = List.exists (fun i -> i = Wait) t.items

let string_of_op = function
  | W false -> "w0"
  | W true -> "w1"
  | R false -> "r0"
  | R true -> "r1"

let string_of_order = function Up -> "u" | Down -> "d" | Either -> "a"

let to_string t =
  t.items
  |> List.map (fun item ->
         match item with
         | Wait -> "D"
         | Elem { order; ops } ->
             Printf.sprintf "%s(%s)" (string_of_order order)
               (String.concat "," (List.map string_of_op ops)))
  |> String.concat "; "

let parse_op s =
  match String.trim s with
  | "w0" -> W false
  | "w1" -> W true
  | "r0" -> R false
  | "r1" -> R true
  | other -> invalid_arg ("March.of_string: bad op " ^ other)

let parse_item s =
  let s = String.trim s in
  if s = "D" then Wait
  else
    let order =
      match s.[0] with
      | 'u' -> Up
      | 'd' -> Down
      | 'a' -> Either
      | c -> invalid_arg (Printf.sprintf "March.of_string: bad order %c" c)
    in
    let len = String.length s in
    if len < 3 || s.[1] <> '(' || s.[len - 1] <> ')' then
      invalid_arg ("March.of_string: bad element " ^ s);
    let inner = String.sub s 2 (len - 3) in
    let ops = List.map parse_op (String.split_on_char ',' inner) in
    if ops = [] then invalid_arg "March.of_string: empty element";
    Elem { order; ops }

let of_string ~name s =
  let parts =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then invalid_arg "March.of_string: empty test";
  make ~name (List.map parse_item parts)

let equal a b = a.items = b.items
let pp ppf t = Format.fprintf ppf "%s: %s" t.name (to_string t)
