lib/bist/algorithms.ml: List March String
