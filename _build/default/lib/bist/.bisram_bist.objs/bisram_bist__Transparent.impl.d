lib/bist/transparent.ml: Array Bisram_sram Engine Hashtbl List March
