lib/bist/coverage.ml: Bisram_faults Bisram_sram Engine Format Hashtbl List
