lib/bist/datagen.ml: Array Bisram_sram List
