lib/bist/addgen.ml: March
