lib/bist/addgen.mli: March
