lib/bist/march.ml: Format List Printf String
