lib/bist/trpla.ml: Array Bisram_tech List Printf String
