lib/bist/algorithms.mli: March
