lib/bist/synthesis.mli: Bisram_faults Bisram_sram Coverage March
