lib/bist/pla_gates.ml: Bisram_gates Controller List Printf String Trpla
