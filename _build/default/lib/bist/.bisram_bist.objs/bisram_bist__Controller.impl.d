lib/bist/controller.ml: Addgen Array Bisram_sram Format List March Printf Trpla
