lib/bist/coverage.mli: Bisram_faults Bisram_sram Format March Random
