lib/bist/pla_gates.mli: Bisram_gates Controller Trpla
