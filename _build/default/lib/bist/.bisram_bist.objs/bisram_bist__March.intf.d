lib/bist/march.mli: Format
