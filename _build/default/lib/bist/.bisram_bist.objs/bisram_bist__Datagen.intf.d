lib/bist/datagen.mli: Bisram_sram
