lib/bist/controller.mli: Bisram_sram Format March Trpla
