lib/bist/synthesis.ml: Bisram_sram Coverage Engine List March
