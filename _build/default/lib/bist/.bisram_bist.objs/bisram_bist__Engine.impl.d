lib/bist/engine.ml: Bisram_sram Format Hashtbl List March
