lib/bist/engine.mli: Bisram_sram Format March
