lib/bist/transparent.mli: Bisram_sram Engine March
