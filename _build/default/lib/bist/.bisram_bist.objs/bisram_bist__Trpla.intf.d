lib/bist/trpla.mli: Bisram_tech
