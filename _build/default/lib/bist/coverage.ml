module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module F = Bisram_faults.Fault

type class_stats = { class_name : string; injected : int; detected : int }

type result = {
  per_class : class_stats list;
  total_injected : int;
  total_detected : int;
}

let coverage_pct c =
  if c.injected = 0 then 100.0
  else 100.0 *. float_of_int c.detected /. float_of_int c.injected

let total_pct r =
  if r.total_injected = 0 then 100.0
  else 100.0 *. float_of_int r.total_detected /. float_of_int r.total_injected

let evaluate org test ~backgrounds ~faults =
  let tally = Hashtbl.create 8 in
  List.iter (fun name -> Hashtbl.replace tally name (0, 0)) F.all_class_names;
  let model = Model.create org in
  List.iter
    (fun fault ->
      Model.set_faults model [ fault ];
      let detected = not (Engine.passes model test ~backgrounds) in
      let name = F.class_name fault in
      let inj, det =
        match Hashtbl.find_opt tally name with Some x -> x | None -> (0, 0)
      in
      Hashtbl.replace tally name (inj + 1, (det + if detected then 1 else 0)))
    faults;
  let per_class =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt tally name with
        | Some (injected, detected) when injected > 0 ->
            Some { class_name = name; injected; detected }
        | Some _ | None -> None)
      F.all_class_names
  in
  { per_class
  ; total_injected = List.fold_left (fun a c -> a + c.injected) 0 per_class
  ; total_detected = List.fold_left (fun a c -> a + c.detected) 0 per_class
  }

let exhaustive_faults ?(include_same_word = false) org =
  let rows = Org.rows org and cols = Org.cols org in
  let singles = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let cell = { F.row = r; col = c } in
      singles :=
        F.Stuck_at (cell, false) :: F.Stuck_at (cell, true)
        :: F.Transition (cell, true) :: F.Transition (cell, false)
        :: F.Stuck_open cell
        :: F.Data_retention (cell, false) :: F.Data_retention (cell, true)
        :: !singles
    done
  done;
  let couplings = ref [] in
  let add_pair a v =
    couplings :=
      F.Coupling_inversion { aggressor = a; victim = v }
      :: F.Coupling_idempotent { aggressor = a; rising = true; victim = v; forces = true }
      :: F.Coupling_idempotent { aggressor = a; rising = false; victim = v; forces = false }
      :: F.State_coupling { aggressor = a; when_state = true; victim = v; reads_as = true }
      :: F.State_coupling { aggressor = a; when_state = false; victim = v; reads_as = false }
      :: !couplings
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let cell = { F.row = r; col = c } in
      if r + 1 < rows then begin
        let below = { F.row = r + 1; col = c } in
        add_pair cell below;
        add_pair below cell
      end;
      if c + 1 < cols then begin
        let right = { F.row = r; col = c + 1 } in
        add_pair cell right;
        add_pair right cell
      end;
      (* bit-adjacent cells of the same word sit bpc columns apart *)
      if include_same_word && c + org.Org.bpc < cols then begin
        let next_bit = { F.row = r; col = c + org.Org.bpc } in
        add_pair cell next_bit;
        add_pair next_bit cell
      end
    done
  done;
  List.rev_append !singles (List.rev !couplings)

let sampled_faults rng org ~mix ~n =
  Bisram_faults.Injection.inject rng ~rows:(Org.rows org) ~cols:(Org.cols org)
    ~mix ~n

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-5s %5d/%5d  %6.2f%%@," c.class_name c.detected
        c.injected (coverage_pct c))
    r.per_class;
  Format.fprintf ppf "TOTAL %5d/%5d  %6.2f%%@]" r.total_detected
    r.total_injected (total_pct r)
