(** Gate-level realization of the TRPLA and of the whole test-and-repair
    FSM.

    [of_trpla] expands the PLA's plane images into two-level AND-OR
    logic; [controller_netlist] adds the state flip-flops, giving a
    synchronous circuit whose inputs are the controller's condition
    bits and whose outputs are its control lines — the synthesizable
    view of the microprogram. *)

(** Names of the controller's condition inputs, in PLA input order
    (after the state bits). *)
val cond_names : string list

(** Names of the controller's control outputs, in PLA output order
    (after the next-state bits). *)
val action_names : string list

(** Pure combinational AND-OR netlist of a PLA.  Inputs are named
    [in0..]; outputs [out0..]. *)
val of_trpla : Trpla.t -> Bisram_gates.Netlist.t

(** The controller as a synchronous netlist: inputs are
    {!cond_names}, outputs are {!action_names} plus the state bits
    [state0..]; flip-flops reset to the IDLE state. *)
val controller_netlist : Controller.t -> Bisram_gates.Netlist.t

(** Structural Verilog of the controller FSM. *)
val controller_verilog : Controller.t -> string
