(** The march-test library.

    IFA-9 is the algorithm BISRAMGEN microprograms into its TRPLA;
    IFA-13 is the variant used by Chen and Sunada; the others are
    classical baselines for the coverage comparisons. *)

val ifa_9 : March.t
(** u(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); D; u(r0,w1); D; u(r1) *)

val ifa_13 : March.t
val mats_plus : March.t
val march_c_minus : March.t
val march_b : March.t
val zero_one : March.t
(** The naive u(w0); u(r0); u(w1); u(r1) baseline (MSCAN). *)

val march_a : March.t
(** 15N; unlinked coupling faults. *)

val march_y : March.t
(** 8N; linked transition faults. *)

val march_lr : March.t
(** 14N; realistic linked faults. *)

val pmovi : March.t
(** 13N; read-after-write everywhere (transition + SOF oriented). *)

val all : March.t list
val find : string -> March.t option
