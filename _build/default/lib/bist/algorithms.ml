let ifa_9 =
  March.of_string ~name:"IFA-9"
    "u(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); D; u(r0,w1); D; u(r1)"

let ifa_13 =
  March.of_string ~name:"IFA-13"
    "u(w0); u(r0,w1,r1); u(r1,w0,r0); d(r0,w1,r1); d(r1,w0,r0); D; u(r0,w1); \
     D; u(r1)"

let mats_plus = March.of_string ~name:"MATS+" "u(w0); u(r0,w1); d(r1,w0)"

let march_c_minus =
  March.of_string ~name:"March C-"
    "u(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); d(r0)"

let march_b =
  March.of_string ~name:"March B"
    "u(w0); u(r0,w1,r1,w0,r0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); d(r0,w1,w0)"

let zero_one = March.of_string ~name:"Zero-One" "u(w0); u(r0); u(w1); u(r1)"

let march_a =
  March.of_string ~name:"March A"
    "u(w0); u(r0,w1,w0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); d(r0,w1,w0)"

let march_y =
  March.of_string ~name:"March Y" "u(w0); u(r0,w1,r1); d(r1,w0,r0); u(r0)"

let march_lr =
  March.of_string ~name:"March LR"
    "u(w0); d(r0,w1); u(r1,w0,r0,w1); u(r1,w0); u(r0,w1,r1,w0); u(r0)"

let pmovi =
  March.of_string ~name:"PMOVI"
    "d(w0); u(r0,w1,r1); u(r1,w0,r0); d(r0,w1,r1); d(r1,w0,r0)"

let all =
  [ ifa_9; ifa_13; mats_plus; march_c_minus; march_b; zero_one; march_a
  ; march_y; march_lr; pmovi
  ]

let find name =
  List.find_opt
    (fun m -> String.lowercase_ascii m.March.name = String.lowercase_ascii name)
    all
