(** Fault-coverage evaluation by serial fault simulation.

    Each candidate fault is injected alone into a fresh RAM model; the
    march test runs with the given backgrounds, and the fault counts as
    detected when at least one read miscompares.  This is the metric
    behind the paper's claim that IFA-9 with Johnson-counter backgrounds
    covers stuck-at, stuck-open, transition, state-coupling and
    data-retention faults. *)

type class_stats = {
  class_name : string;
  injected : int;
  detected : int;
}

type result = {
  per_class : class_stats list;
  total_injected : int;
  total_detected : int;
}

val coverage_pct : class_stats -> float
val total_pct : result -> float

(** [evaluate org test ~backgrounds ~faults] simulates each fault
    separately. *)
val evaluate :
  Bisram_sram.Org.t ->
  March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  faults:Bisram_faults.Fault.t list ->
  result

(** Exhaustive single-cell fault list over a (small) array: every SAF,
    TF, SOF and DRF at every cell, plus coupling faults between every
    vertically/horizontally adjacent pair.  With [include_same_word],
    couplings between bit-adjacent cells of the same word (physically
    bpc columns apart) are added — the faults the Johnson-counter
    backgrounds exist to expose.  Meant for small organizations. *)
val exhaustive_faults :
  ?include_same_word:bool -> Bisram_sram.Org.t -> Bisram_faults.Fault.t list

(** Random fault sample (one fault per simulation). *)
val sampled_faults :
  Random.State.t ->
  Bisram_sram.Org.t ->
  mix:Bisram_faults.Injection.mix ->
  n:int ->
  Bisram_faults.Fault.t list

val pp : Format.formatter -> result -> unit
