(** Greedy march-test synthesis.

    The TRPLA's control code is loaded from plane files, so deploying a
    new algorithm is cheap; this module generates one.  Starting from
    the initializing element, the synthesizer greedily appends the
    march element (from a classical element pool, including retention
    waits) that buys the most coverage per added operation on a given
    fault sample, until the target coverage is reached.  An extension
    in the paper's "changing the control files" spirit. *)

(** The candidate pool: each candidate is a short item sequence (single
    march elements, plus composite "retention wait then verify read"
    pairs, which a purely single-element greedy could never justify). *)
val element_pool : March.item list list

type result = {
  march : March.t;
  coverage : Coverage.result;
  achieved : float;  (** total coverage percent *)
}

(** [synthesize org ~faults ~backgrounds ~target] — grows a march until
    [target] percent of [faults] are detected or [max_elements]
    (default 12) is reached.  The result always passes on a fault-free
    RAM. *)
val synthesize :
  ?max_elements:int ->
  Bisram_sram.Org.t ->
  faults:Bisram_faults.Fault.t list ->
  backgrounds:Bisram_sram.Word.t list ->
  target:float ->
  result
