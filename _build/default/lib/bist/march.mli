(** March-test notation.

    A march test is a sequence of march elements; each element applies a
    fixed sequence of operations to every address, in ascending ([Up]),
    descending ([Down]) or arbitrary ([Either]) address order.  An
    operation reads or writes the current data background [b] or its
    complement.  [Wait] elements model the data-retention pause of
    IFA-class tests (the embedded processor tristates the RAM for
    ~100 ms).

    ASCII surface syntax (parsed by {!of_string}, printed by
    {!to_string}):
    {v u(w0); u(r0,w1); d(r1,w0); D; u(r1) v}
    where [u]/[d]/[a] select the order, [w0]/[r1] etc. refer to the
    background ([0]) or its complement ([1]) and [D] is a wait. *)

type order = Up | Down | Either

type op =
  | W of bool  (** write background ([false]) or complement ([true]) *)
  | R of bool  (** read and compare against background or complement *)

type element = { order : order; ops : op list }
type item = Elem of element | Wait
type t = { name : string; items : item list }

val make : name:string -> item list -> t

(** Number of operations applied per address over the whole test (the
    "xN" complexity figure; waits count 0). *)
val ops_per_address : t -> int

(** Number of read operations per address. *)
val reads_per_address : t -> int

(** Whether the test contains a retention wait. *)
val has_retention : t -> bool

val to_string : t -> string

(** Parse the ASCII notation. @raise Invalid_argument on syntax error. *)
val of_string : name:string -> string -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
