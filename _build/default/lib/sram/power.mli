(** Power estimation for the generated RAM (datasheet "supply current"
    figures, in the RAMGEN tradition the paper cites).

    Dynamic energy per access: word-line swing, the selected column's
    bit-line swing (small under current-mode sensing), decoder and
    datapath switching.  Static power: sense-amplifier bias and the
    pseudo-NMOS TRPLA pull-ups (the BIST controller burns static power
    only while testing; its normal-mode contribution is gated off). *)

type estimate = {
  read_energy : float;  (** joules per read access *)
  write_energy : float;  (** joules per write access *)
  static_power : float;  (** watts, normal mode *)
  vdd : float;  (** supply the energies were computed at *)
}

(** [estimate process org ~drive] — per-access energies and static
    power of the array plus periphery. *)
val estimate :
  Bisram_tech.Process.t -> Org.t -> drive:float -> estimate

(** Average supply current at the given access rate (50/50 read/write),
    amperes. *)
val supply_current : estimate -> frequency_hz:float -> float

(** Average power at the given access rate, watts. *)
val average_power : estimate -> frequency_hz:float -> float

val pp : Format.formatter -> estimate -> unit
