(** Access-time extrapolation for the generated RAM, in the style of the
    paper's "timing guarantees before designing the overall layout".

    The model is built from the same primitives BISRAMGEN characterizes
    with its SPICE utilities: Elmore delays of the decoder chain, the
    word line, the bit line under current-mode sensing, and the column
    multiplexer / output path. *)

type breakdown = {
  address_buffer : float;
  row_decoder : float;
  word_line : float;
  bit_line : float;  (** swing development under current-mode sensing *)
  sense_amp : float;
  column_mux : float;
  output_driver : float;
}

val total : breakdown -> float

(** [access_time process org ~drive] estimates the read access time
    (seconds) of the array. [drive] is the user's critical-gate size
    multiplier (paper: "buffer size"); larger drive shortens the decoder
    and word-line terms. *)
val access_time :
  Bisram_tech.Process.t -> Org.t -> drive:float -> breakdown

(** Write-cycle time: decoder + word line as in a read, then the write
    drivers slam the bit lines full swing (no sense amplifier). *)
val write_time : Bisram_tech.Process.t -> Org.t -> drive:float -> float

type interface_timing = {
  address_setup : float;
      (** address stable before the cycle strobe: decode settle margin *)
  data_setup : float;  (** write data before write enable *)
  hold : float;  (** address/data hold after the strobe *)
}

(** Datasheet setup/hold figures (the RAMGEN datasheet tradition the
    paper cites). *)
val interface : Bisram_tech.Process.t -> Org.t -> drive:float -> interface_timing

(** Word-line wire length in meters (used by layout cross-checks). *)
val wordline_length : Bisram_tech.Process.t -> Org.t -> float

(** Bit-line wire length in meters. *)
val bitline_length : Bisram_tech.Process.t -> Org.t -> float

(** 6T cell footprint in lambda: (width, height). *)
val cell_lambda : int * int

val pp : Format.formatter -> breakdown -> unit
