lib/sram/timing.ml: Bisram_spice Bisram_tech Format List Org
