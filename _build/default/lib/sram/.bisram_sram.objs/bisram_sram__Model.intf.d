lib/sram/model.mli: Bisram_faults Org Word
