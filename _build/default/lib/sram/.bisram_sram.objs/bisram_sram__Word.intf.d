lib/sram/word.mli: Format
