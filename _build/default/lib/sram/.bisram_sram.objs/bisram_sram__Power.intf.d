lib/sram/power.mli: Bisram_tech Format Org
