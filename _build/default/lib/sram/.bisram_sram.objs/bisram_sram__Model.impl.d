lib/sram/model.ml: Array Bisram_faults Bytes List Org Word
