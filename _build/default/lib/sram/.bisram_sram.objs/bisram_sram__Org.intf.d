lib/sram/org.mli: Format
