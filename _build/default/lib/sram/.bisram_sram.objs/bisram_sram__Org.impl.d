lib/sram/org.ml: Format List
