lib/sram/timing.mli: Bisram_tech Format Org
