lib/sram/word.ml: Array Format String
