lib/sram/power.ml: Bisram_tech Format Org Timing
