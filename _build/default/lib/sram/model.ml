module F = Bisram_faults.Fault

type agg_effect =
  | Invert of int (* victim idx *)
  | Force of { rising : bool; victim : int; forces : bool }

type t = {
  org : Org.t;
  ncells : int;
  cells : Bytes.t;
  (* fault indices, one slot per physical cell *)
  mutable fault_list : F.t list;
  pin : bool option array;
  no_rise : bool array;
  no_fall : bool array;
  opens : bool array;
  retention : bool option array;
  state_cpl : (int * bool * bool) list array; (* victim -> (agg, state, reads_as) *)
  agg_effects : agg_effect list array; (* aggressor -> effects *)
  sense_residue : bool array; (* one per I/O (bpw) *)
  mutable remap : (int -> int) option;
  mutable n_reads : int;
  mutable n_writes : int;
}

let org t = t.org

let create org =
  let ncells = Org.total_rows org * Org.cols org in
  { org
  ; ncells
  ; cells = Bytes.make ncells '\000'
  ; fault_list = []
  ; pin = Array.make ncells None
  ; no_rise = Array.make ncells false
  ; no_fall = Array.make ncells false
  ; opens = Array.make ncells false
  ; retention = Array.make ncells None
  ; state_cpl = Array.make ncells []
  ; agg_effects = Array.make ncells []
  ; sense_residue = Array.make org.Org.bpw false
  ; remap = None
  ; n_reads = 0
  ; n_writes = 0
  }

let idx t (c : F.cell) =
  let cols = Org.cols t.org in
  if c.F.row < 0 || c.F.row >= Org.total_rows t.org then
    invalid_arg "Model: fault row out of range";
  if c.F.col < 0 || c.F.col >= cols then
    invalid_arg "Model: fault col out of range";
  (c.F.row * cols) + c.F.col

let stored t i = Bytes.get t.cells i <> '\000'
let store t i v = Bytes.set t.cells i (if v then '\001' else '\000')

let clear t =
  Bytes.fill t.cells 0 t.ncells '\000';
  Array.iteri (fun i p -> match p with Some v -> store t i v | None -> ()) t.pin;
  Array.fill t.sense_residue 0 (Array.length t.sense_residue) false

let set_faults t faults =
  t.fault_list <- faults;
  Array.fill t.pin 0 t.ncells None;
  Array.fill t.no_rise 0 t.ncells false;
  Array.fill t.no_fall 0 t.ncells false;
  Array.fill t.opens 0 t.ncells false;
  Array.fill t.retention 0 t.ncells None;
  Array.fill t.state_cpl 0 t.ncells [];
  Array.fill t.agg_effects 0 t.ncells [];
  List.iter
    (fun f ->
      match f with
      | F.Stuck_at (c, v) -> t.pin.(idx t c) <- Some v
      | F.Transition (c, up) ->
          if up then t.no_rise.(idx t c) <- true
          else t.no_fall.(idx t c) <- true
      | F.Stuck_open c -> t.opens.(idx t c) <- true
      | F.Data_retention (c, v) -> t.retention.(idx t c) <- Some v
      | F.Coupling_inversion { aggressor; victim } ->
          let a = idx t aggressor in
          t.agg_effects.(a) <- Invert (idx t victim) :: t.agg_effects.(a)
      | F.Coupling_idempotent { aggressor; rising; victim; forces } ->
          let a = idx t aggressor in
          t.agg_effects.(a) <-
            Force { rising; victim = idx t victim; forces }
            :: t.agg_effects.(a)
      | F.State_coupling { aggressor; when_state; victim; reads_as } ->
          let v = idx t victim in
          t.state_cpl.(v) <-
            (idx t aggressor, when_state, reads_as) :: t.state_cpl.(v))
    faults;
  clear t

let faults t = t.fault_list
let set_remap t f = t.remap <- f

(* Coupling-driven store: respects pins (a stuck node cannot be flipped
   by crosstalk) but bypasses transition faults. *)
let force_store t i v =
  match t.pin.(i) with Some _ -> () | None -> store t i v

(* A successful state change on cell [i] fires its aggressor effects. *)
let fire_coupling t i ~old_v ~new_v =
  if old_v <> new_v then
    List.iter
      (fun eff ->
        match eff with
        | Invert victim -> force_store t victim (not (stored t victim))
        | Force { rising; victim; forces } ->
            if rising = new_v then force_store t victim forces)
      t.agg_effects.(i)

let write_bit t i v =
  if t.opens.(i) then () (* inaccessible cell *)
  else
    match t.pin.(i) with
    | Some _ -> () (* stuck node: write has no effect *)
    | None ->
        let old_v = stored t i in
        let blocked = (v && not old_v && t.no_rise.(i))
                      || ((not v) && old_v && t.no_fall.(i)) in
        if not blocked then begin
          store t i v;
          fire_coupling t i ~old_v ~new_v:v
        end

let read_bit t ~io i =
  if t.opens.(i) then t.sense_residue.(io) (* SOF: sense amp keeps residue *)
  else begin
    let v0 = stored t i in
    let v =
      List.fold_left
        (fun acc (agg, st, reads_as) ->
          if stored t agg = st then reads_as else acc)
        v0 t.state_cpl.(i)
    in
    t.sense_residue.(io) <- v;
    v
  end

let physical_row t row =
  match t.remap with None -> row | Some f -> f row

let check_word t w =
  if Word.width w <> t.org.Org.bpw then
    invalid_arg "Model: word width mismatch"

let write_phys t ~row ~col w =
  check_word t w;
  if row < 0 || row >= Org.total_rows t.org then
    invalid_arg "Model: row out of range";
  if col < 0 || col >= t.org.Org.bpc then invalid_arg "Model: col out of range";
  let cols = Org.cols t.org in
  for bit = 0 to t.org.Org.bpw - 1 do
    let c = Org.cell_col t.org ~col ~bit in
    write_bit t ((row * cols) + c) (Word.get w bit)
  done;
  t.n_writes <- t.n_writes + 1

let read_phys t ~row ~col =
  if row < 0 || row >= Org.total_rows t.org then
    invalid_arg "Model: row out of range";
  if col < 0 || col >= t.org.Org.bpc then invalid_arg "Model: col out of range";
  let cols = Org.cols t.org in
  let bits =
    Array.init t.org.Org.bpw (fun bit ->
        let c = Org.cell_col t.org ~col ~bit in
        read_bit t ~io:bit ((row * cols) + c))
  in
  t.n_reads <- t.n_reads + 1;
  Word.of_bits bits

let read_word t a =
  let row = physical_row t (Org.row_of_addr t.org a) in
  read_phys t ~row ~col:(Org.col_of_addr t.org a)

let write_word t a w =
  let row = physical_row t (Org.row_of_addr t.org a) in
  write_phys t ~row ~col:(Org.col_of_addr t.org a) w

let read_row_word t ~row ~col = read_phys t ~row ~col
let write_row_word t ~row ~col w = write_phys t ~row ~col w

let retention_wait t =
  Array.iteri
    (fun i decay ->
      match decay with
      | Some v -> if t.pin.(i) = None then store t i v
      | None -> ())
    t.retention

let reads t = t.n_reads
let writes t = t.n_writes
