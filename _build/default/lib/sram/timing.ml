module E = Bisram_tech.Electrical
module Pr = Bisram_tech.Process
module L = Bisram_tech.Layer
module El = Bisram_spice.Elmore
module Sz = Bisram_spice.Sizing

type breakdown = {
  address_buffer : float;
  row_decoder : float;
  word_line : float;
  bit_line : float;
  sense_amp : float;
  column_mux : float;
  output_driver : float;
}

let total b =
  b.address_buffer +. b.row_decoder +. b.word_line +. b.bit_line
  +. b.sense_amp +. b.column_mux +. b.output_driver

(* A compact 6T cell in SCMOS-class rules. *)
let cell_lambda = (24, 20)

let wordline_length p org =
  let cw, _ = cell_lambda in
  float_of_int (Org.cols org * Pr.nm_of_lambda p cw) *. 1e-9

let bitline_length p org =
  let _, ch = cell_lambda in
  float_of_int (Org.total_rows org * Pr.nm_of_lambda p ch) *. 1e-9

let wire_r e layer ~length ~width = e.E.sheet_r layer *. (length /. width)

let wire_c e layer ~length ~width =
  (e.E.cap_area layer *. length *. width)
  +. (e.E.cap_fringe layer *. 2.0 *. (length +. width))

let log2i n =
  let rec go acc k = if k <= 1 then acc else go (acc + 1) (k / 2) in
  go 0 n

let access_time p org ~drive =
  assert (drive >= 1.0);
  let e = p.Pr.electrical in
  let feature_m = float_of_int p.Pr.feature_nm *. 1e-9 in
  let lambda_m = float_of_int p.Pr.lambda_nm *. 1e-9 in
  let unit = Sz.balanced e ~feature_m ~drive:1.0 in
  let sized = Sz.balanced e ~feature_m ~drive in
  let cunit = Sz.input_cap e unit in
  let inv g cload = Sz.inverter_delay e ~feature_m g ~cload in
  (* --- address buffer: one sized inverter pair driving the predecode
     fanout (one gate per predecode NAND it feeds) --- *)
  let row_bits = log2i (Org.rows org) in
  let address_buffer = 2.0 *. inv sized (cunit *. float_of_int (max 2 row_bits)) in
  (* --- row decoder: predecode NAND + final NAND per row + WL driver
     chain.  The decode fanout grows with log(rows). --- *)
  let nand = Sz.nand_stack sized ~n:3 in
  let wl_len = wordline_length p org in
  let wl_width = 4.0 *. lambda_m in
  let cwl_wire = wire_c e L.Metal2 ~length:wl_len ~width:wl_width in
  (* two access-transistor gates per cell on the word line *)
  let cgate_cell = 2.0 *. E.cgate e ~w:(3.0 *. lambda_m) ~l:feature_m in
  let cwl = cwl_wire +. (float_of_int (Org.cols org) *. cgate_cell) in
  let chain = Sz.buffer_chain e ~feature_m ~cin:(Sz.input_cap e nand) ~cload:cwl in
  let row_decoder =
    inv nand (Sz.input_cap e (List.hd chain))
    +. List.fold_left (fun acc _ -> acc +. inv sized (4.0 *. Sz.input_cap e sized))
         0.0 chain
  in
  (* --- word line: distributed RC driven by the last buffer --- *)
  let last = List.nth chain (List.length chain - 1) in
  let rwl = wire_r e L.Metal2 ~length:wl_len ~width:wl_width in
  let word_line =
    0.69 *. El.rc_line ~rdrive:(Sz.rpull_up e last) ~r:rwl ~c:cwl ~cload:0.0
  in
  (* --- bit line: the accessed cell sinks current; with current-mode
     sensing only a ~10% swing must develop before the sense amp
     latches, so the effective delay is 0.1 of the full RC. --- *)
  let bl_len = bitline_length p org in
  let bl_width = 3.0 *. lambda_m in
  let rbl = wire_r e L.Metal1 ~length:bl_len ~width:bl_width in
  let cbl_wire = wire_c e L.Metal1 ~length:bl_len ~width:bl_width in
  let cdiff_cell = E.cdiff e ~feature_m ~w:(3.0 *. lambda_m) in
  let cbl = cbl_wire +. (float_of_int (Org.total_rows org) *. cdiff_cell) in
  let rcell =
    (* series access transistor + driver, both near-minimum *)
    2.0 *. E.ron_nmos e ~w:(3.0 *. lambda_m) ~l:feature_m
  in
  let bit_line = 0.1 *. El.rc_line ~rdrive:rcell ~r:rbl ~c:cbl ~cload:0.0 in
  (* --- current-mode sense amplifier: a couple of gate delays to
     regenerate full swing --- *)
  let sense_amp = 2.0 *. inv sized (2.0 *. cunit) in
  (* --- column mux: one pass-transistor RC into the sense node --- *)
  let rpass = E.ron_nmos e ~w:(6.0 *. lambda_m) ~l:feature_m in
  let column_mux =
    0.69 *. rpass *. (float_of_int org.Org.bpc *. cdiff_cell)
  in
  (* --- output driver: sized chain into a 0.2 pF internal bus --- *)
  let out_chain = Sz.buffer_chain e ~feature_m ~cin:cunit ~cload:0.2e-12 in
  let output_driver =
    List.fold_left (fun acc g -> acc +. inv g (4.0 *. Sz.input_cap e g)) 0.0
      out_chain
  in
  { address_buffer; row_decoder; word_line; bit_line; sense_amp; column_mux
  ; output_driver
  }

let write_time p org ~drive =
  let e = p.Pr.electrical in
  let feature_m = float_of_int p.Pr.feature_nm *. 1e-9 in
  let lambda_m = float_of_int p.Pr.lambda_nm *. 1e-9 in
  let b = access_time p org ~drive in
  (* write drivers swing the selected bit lines rail to rail *)
  let bl_len = bitline_length p org in
  let bl_width = 3.0 *. lambda_m in
  let rbl = wire_r e L.Metal1 ~length:bl_len ~width:bl_width in
  let cbl_wire = wire_c e L.Metal1 ~length:bl_len ~width:bl_width in
  let cdiff_cell = E.cdiff e ~feature_m ~w:(3.0 *. lambda_m) in
  let cbl = cbl_wire +. (float_of_int (Org.total_rows org) *. cdiff_cell) in
  let driver = Sz.balanced e ~feature_m ~drive:(4.0 *. drive) in
  let slam =
    0.69 *. El.rc_line ~rdrive:(Sz.rpull_down e driver) ~r:rbl ~c:cbl ~cload:0.0
  in
  (* cell flip once the bit lines are driven: a couple of gate delays *)
  let unit = Sz.balanced e ~feature_m ~drive:1.0 in
  let flip = 2.0 *. Sz.inverter_delay e ~feature_m unit ~cload:(Sz.input_cap e unit) in
  b.address_buffer +. b.row_decoder +. b.word_line +. slam +. flip

type interface_timing = {
  address_setup : float;
  data_setup : float;
  hold : float;
}

let interface p org ~drive =
  let b = access_time p org ~drive in
  (* the address must be stable while the decoders settle before the
     word line fires; data must be at the write drivers before write
     enable; hold covers the word-line fall *)
  { address_setup = b.address_buffer +. b.row_decoder
  ; data_setup = b.output_driver
  ; hold = 0.5 *. b.word_line
  }

let pp ppf b =
  let ns x = x *. 1e9 in
  Format.fprintf ppf
    "@[<v>addr buf   %.3f ns@,row dec    %.3f ns@,word line  %.3f ns@,\
     bit line   %.3f ns@,sense amp  %.3f ns@,col mux    %.3f ns@,\
     out drv    %.3f ns@,TOTAL      %.3f ns@]"
    (ns b.address_buffer) (ns b.row_decoder) (ns b.word_line) (ns b.bit_line)
    (ns b.sense_amp) (ns b.column_mux) (ns b.output_driver) (ns (total b))
