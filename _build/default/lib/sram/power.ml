module E = Bisram_tech.Electrical
module Pr = Bisram_tech.Process
module L = Bisram_tech.Layer

type estimate = {
  read_energy : float;
  write_energy : float;
  static_power : float;
  vdd : float;
}

let log2i n =
  let rec go acc k = if k <= 1 then acc else go (acc + 1) (k / 2) in
  go 0 n

let estimate p org ~drive =
  assert (drive >= 1.0);
  let e = p.Pr.electrical in
  let vdd = e.E.vdd in
  let feature_m = float_of_int p.Pr.feature_nm *. 1e-9 in
  let lambda_m = float_of_int p.Pr.lambda_nm *. 1e-9 in
  (* word line: full-swing CV^2 over the wire + 2 gates per cell *)
  let wl_len = Timing.wordline_length p org in
  let wl_width = 4.0 *. lambda_m in
  let c_wl =
    (e.E.cap_area L.Metal2 *. wl_len *. wl_width)
    +. (e.E.cap_fringe L.Metal2 *. 2.0 *. wl_len)
    +. (float_of_int (Org.cols org)
       *. 2.0
       *. E.cgate e ~w:(3.0 *. lambda_m) ~l:feature_m)
  in
  let e_wl = c_wl *. vdd *. vdd in
  (* bit lines: under current-mode sensing a read develops only ~10% of
     the swing on the selected word's bpw pairs; a write drives the
     selected pairs full swing *)
  let bl_len = Timing.bitline_length p org in
  let bl_width = 3.0 *. lambda_m in
  let c_bl =
    (e.E.cap_area L.Metal1 *. bl_len *. bl_width)
    +. (e.E.cap_fringe L.Metal1 *. 2.0 *. bl_len)
    +. (float_of_int (Org.total_rows org)
       *. E.cdiff e ~feature_m ~w:(3.0 *. lambda_m))
  in
  let pairs = float_of_int org.Org.bpw in
  let e_bl_read = pairs *. c_bl *. vdd *. (0.1 *. vdd) in
  let e_bl_write = pairs *. c_bl *. vdd *. vdd in
  (* decoders and datapath: a handful of sized gates switching *)
  let unit_w = 1.5 *. feature_m *. drive in
  let c_gate = E.cgate e ~w:unit_w ~l:feature_m in
  let switching_gates =
    float_of_int (2 * (log2i org.Org.words + org.Org.bpw + 8))
  in
  let e_logic = switching_gates *. c_gate *. vdd *. vdd in
  (* sense amplifiers: bias current during the sensing window (~1 ns) *)
  let i_sa = 50e-6 (* 50 uA per amp, current-mode bias *) in
  let e_sense = pairs *. i_sa *. vdd *. 1e-9 in
  (* static: sense-amp standby bias (powered down between accesses to
     10%) dominates; leakage at 5 V 0.5-0.7 um is negligible *)
  let static_power = 0.1 *. pairs *. i_sa *. vdd in
  { read_energy = e_wl +. e_bl_read +. e_logic +. e_sense
  ; write_energy = e_wl +. e_bl_write +. e_logic
  ; static_power
  ; vdd
  }

let average_power t ~frequency_hz =
  assert (frequency_hz >= 0.0);
  (0.5 *. (t.read_energy +. t.write_energy) *. frequency_hz) +. t.static_power

let supply_current t ~frequency_hz = average_power t ~frequency_hz /. t.vdd

let pp ppf t =
  Format.fprintf ppf "read %.2f pJ, write %.2f pJ, static %.2f mW"
    (t.read_energy *. 1e12) (t.write_energy *. 1e12) (t.static_power *. 1e3)
