(** Wafer geometry: gross dies per wafer.

    Standard estimate: pi (d/2)^2 / A  -  pi d / sqrt(2 A), the second
    term accounting for edge loss; [d] wafer diameter in mm, [A] die
    area in mm^2. *)

val dies_per_wafer : wafer_mm:float -> die_mm2:float -> int

(** The paper's observation: moving from 150 mm to 200 mm wafers raises
    wafer cost ~50% but die count by 80-100%. *)
val die_count_gain : die_mm2:float -> from_mm:float -> to_mm:float -> float
