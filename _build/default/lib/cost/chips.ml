type package = PGA | PQFP | TAB | MCM

type t = {
  name : string;
  feature_um : float;
  metal_layers : int;
  die_mm2 : float;
  wafer_mm : float;
  wafer_cost : float;
  die_yield : float;
  cache_fraction : float;
  pins : int;
  package : package;
  test_minutes : float;
  tester_rate : float;
}

(* Representative MPR 1993-94 figures.  Die areas, processes, pin counts
   and packages are the published ones; wafer costs, die yields and
   cache fractions (from die photographs) are period-realistic
   estimates. *)
let all =
  [ { name = "Intel 486DX2"
    ; feature_um = 0.8
    ; metal_layers = 3
    ; die_mm2 = 81.0
    ; wafer_mm = 150.0
    ; wafer_cost = 900.0
    ; die_yield = 0.60
    ; cache_fraction = 0.10
    ; pins = 168
    ; package = PGA
    ; test_minutes = 0.75
    ; tester_rate = 5.0
    }
  ; { name = "AMD 486DX2"
    ; feature_um = 0.8
    ; metal_layers = 3
    ; die_mm2 = 81.0
    ; wafer_mm = 150.0
    ; wafer_cost = 850.0
    ; die_yield = 0.55
    ; cache_fraction = 0.12
    ; pins = 168
    ; package = PGA
    ; test_minutes = 0.75
    ; tester_rate = 5.0
    }
  ; { name = "Intel Pentium"
    ; feature_um = 0.8
    ; metal_layers = 4
    ; die_mm2 = 294.0
    ; wafer_mm = 200.0
    ; wafer_cost = 1300.0
    ; die_yield = 0.28
    ; cache_fraction = 0.13
    ; pins = 273
    ; package = PGA
    ; test_minutes = 5.0
    ; tester_rate = 5.0
    }
  ; { name = "Pentium P54C"
    ; feature_um = 0.6
    ; metal_layers = 4
    ; die_mm2 = 148.0
    ; wafer_mm = 200.0
    ; wafer_cost = 1500.0
    ; die_yield = 0.40
    ; cache_fraction = 0.14
    ; pins = 296
    ; package = PGA
    ; test_minutes = 5.0
    ; tester_rate = 5.0
    }
  ; { name = "TI SuperSPARC"
    ; feature_um = 0.8
    ; metal_layers = 3
    ; die_mm2 = 256.0
    ; wafer_mm = 150.0
    ; wafer_cost = 1100.0
    ; die_yield = 0.10 (* huge 0.8 um BiCMOS die; redundancy-era yields *)
    ; cache_fraction = 0.35 (* 20K I$ + 16K D$ + tags dominate the plot *)
    ; pins = 293
    ; package = PGA
    ; test_minutes = 5.0
    ; tester_rate = 5.0
    }
  ; { name = "MIPS R4600"
    ; feature_um = 0.64
    ; metal_layers = 3
    ; die_mm2 = 77.0
    ; wafer_mm = 150.0
    ; wafer_cost = 1000.0
    ; die_yield = 0.55
    ; cache_fraction = 0.30
    ; pins = 179
    ; package = PGA
    ; test_minutes = 1.5
    ; tester_rate = 5.0
    }
  ; { name = "PowerPC 601"
    ; feature_um = 0.6
    ; metal_layers = 4
    ; die_mm2 = 121.0
    ; wafer_mm = 200.0
    ; wafer_cost = 1400.0
    ; die_yield = 0.45
    ; cache_fraction = 0.25
    ; pins = 304
    ; package = PGA
    ; test_minutes = 2.5
    ; tester_rate = 5.0
    }
  ; { name = "PowerPC 604"
    ; feature_um = 0.5
    ; metal_layers = 4
    ; die_mm2 = 196.0
    ; wafer_mm = 200.0
    ; wafer_cost = 1600.0
    ; die_yield = 0.32
    ; cache_fraction = 0.25
    ; pins = 304
    ; package = PGA
    ; test_minutes = 3.0
    ; tester_rate = 5.0
    }
  ; { name = "Alpha 21064A"
    ; feature_um = 0.5
    ; metal_layers = 4
    ; die_mm2 = 166.0
    ; wafer_mm = 200.0
    ; wafer_cost = 1700.0
    ; die_yield = 0.35
    ; cache_fraction = 0.22
    ; pins = 431
    ; package = PGA
    ; test_minutes = 3.0
    ; tester_rate = 5.0
    }
  ; { name = "Intel 386DX" (* 2-metal: blank row in Table II *)
    ; feature_um = 1.0
    ; metal_layers = 2
    ; die_mm2 = 42.0
    ; wafer_mm = 150.0
    ; wafer_cost = 700.0
    ; die_yield = 0.75
    ; cache_fraction = 0.0
    ; pins = 132
    ; package = PQFP
    ; test_minutes = 0.5
    ; tester_rate = 5.0
    }
  ; { name = "Motorola 68040" (* 2-metal: blank row in Table II *)
    ; feature_um = 0.8
    ; metal_layers = 2
    ; die_mm2 = 126.0
    ; wafer_mm = 150.0
    ; wafer_cost = 800.0
    ; die_yield = 0.45
    ; cache_fraction = 0.18
    ; pins = 179
    ; package = PGA
    ; test_minutes = 1.0
    ; tester_rate = 5.0
    }
  ]

let find name =
  List.find_opt
    (fun c -> String.lowercase_ascii c.name = String.lowercase_ascii name)
    all

let bisr_capable = List.filter (fun c -> c.metal_layers >= 3) all

let final_test_yield = function
  | PGA -> 0.97
  | PQFP -> 0.93
  | TAB -> 0.95
  | MCM -> 0.90

let package_cost c =
  (* one cent per pin, divided by the final-test yield *)
  0.01 *. float_of_int c.pins /. final_test_yield c.package

let pp ppf c =
  Format.fprintf ppf "%s (%.2fum %dM, %.0f mm2, %d pins)" c.name c.feature_um
    c.metal_layers c.die_mm2 c.pins
