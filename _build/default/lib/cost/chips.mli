(** The commercial-microprocessor database behind Tables II and III.

    Values are representative of the Microprocessor Report 1993-94 data
    the paper cites: die area, process, metal layers, wafer size and
    cost, published die yield, embedded-cache area fraction (from die
    photographs), package and pin count, and tester time.  Chips with
    fewer than three metal layers cannot host BISRAMGEN's BISR (the
    blank rows of Table II). *)

type package = PGA | PQFP | TAB | MCM

type t = {
  name : string;
  feature_um : float;
  metal_layers : int;
  die_mm2 : float;
  wafer_mm : float;
  wafer_cost : float;  (** dollars *)
  die_yield : float;  (** published/estimated die yield without BISR *)
  cache_fraction : float;  (** embedded RAM area / die area *)
  pins : int;
  package : package;
  test_minutes : float;  (** wafer-test time for a good chip *)
  tester_rate : float;  (** dollars per minute of wafer test *)
}

val all : t list
val find : string -> t option

(** Chips with >= 3 metal layers (BISR-capable). *)
val bisr_capable : t list

(** Final-test yield by package type (93% PQFP, 97% PGA etc.). *)
val final_test_yield : package -> float

(** Packaging + final-test cost: about one cent per pin, adjusted by
    the final-test yield. *)
val package_cost : t -> float

val pp : Format.formatter -> t -> unit
