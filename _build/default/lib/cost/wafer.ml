let dies_per_wafer ~wafer_mm ~die_mm2 =
  assert (wafer_mm > 0.0 && die_mm2 > 0.0);
  let r = wafer_mm /. 2.0 in
  let gross =
    (Float.pi *. r *. r /. die_mm2)
    -. (Float.pi *. wafer_mm /. sqrt (2.0 *. die_mm2))
  in
  max 0 (int_of_float gross)

let die_count_gain ~die_mm2 ~from_mm ~to_mm =
  let a = dies_per_wafer ~wafer_mm:from_mm ~die_mm2 in
  let b = dies_per_wafer ~wafer_mm:to_mm ~die_mm2 in
  if a = 0 then infinity else float_of_int b /. float_of_int a
