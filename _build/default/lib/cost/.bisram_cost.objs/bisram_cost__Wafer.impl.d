lib/cost/wafer.ml: Float
