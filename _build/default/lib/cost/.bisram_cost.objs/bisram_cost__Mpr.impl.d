lib/cost/mpr.ml: Bisram_yield Chips List Option Wafer
