lib/cost/wafer.mli:
