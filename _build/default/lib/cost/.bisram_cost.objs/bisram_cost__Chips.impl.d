lib/cost/chips.ml: Format List String
