lib/cost/mpr.mli: Chips
