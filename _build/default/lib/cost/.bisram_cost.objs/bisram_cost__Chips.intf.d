lib/cost/chips.mli: Format
