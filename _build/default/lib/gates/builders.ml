module N = Netlist

let bits_for n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (k * 2) in
  go 0 1

let up_down_counter ~bits =
  if bits < 1 then invalid_arg "Builders.up_down_counter: bits";
  let t = N.create () in
  let reset_up = N.input t "reset_up" in
  let reset_down = N.input t "reset_down" in
  let en = N.input t "en" in
  let up = N.input t "up" in
  let qs = List.init bits (fun i -> N.dff t (Printf.sprintf "q%d" i)) in
  (* ripple carry: counting up propagates through 1s, down through 0s *)
  let one = N.const t true in
  let _final_carry, nexts =
    List.fold_left
      (fun (carry, acc) q ->
        let toggled = N.xor_ t q carry in
        let prop = N.mux t ~sel:up ~t1:q ~t0:(N.not_ t q) in
        let carry' = N.and_ t carry prop in
        (carry', (q, toggled) :: acc))
      (one, []) qs
  in
  let nexts = List.rev nexts in
  List.iter
    (fun (q, toggled) ->
      let counted = N.mux t ~sel:en ~t1:toggled ~t0:q in
      let after_down = N.mux t ~sel:reset_down ~t1:one ~t0:counted in
      let zero = N.const t false in
      let d = N.mux t ~sel:reset_up ~t1:zero ~t0:after_down in
      N.connect t ~q ~d)
    nexts;
  (* wrap: stepping off the terminal value (all-ones up, zero down) *)
  let all_ones = N.and_list t qs in
  let all_zero = N.and_list t (List.map (N.not_ t) qs) in
  let terminal = N.mux t ~sel:up ~t1:all_ones ~t0:all_zero in
  N.output t "wrap" (N.and_ t en terminal);
  List.iteri (fun i q -> N.output t (Printf.sprintf "q%d" i) q) qs;
  t

let johnson_counter ~bits =
  if bits < 1 then invalid_arg "Builders.johnson_counter: bits";
  let t = N.create () in
  let reset = N.input t "reset" in
  let en = N.input t "en" in
  let qs = List.init bits (fun i -> N.dff t (Printf.sprintf "q%d" i)) in
  let last = List.nth qs (bits - 1) in
  let zero = N.const t false in
  List.iteri
    (fun i q ->
      let shifted =
        if i = 0 then N.not_ t last else List.nth qs (i - 1)
      in
      let stepped = N.mux t ~sel:en ~t1:shifted ~t0:q in
      N.connect t ~q ~d:(N.mux t ~sel:reset ~t1:zero ~t0:stepped))
    qs;
  List.iteri (fun i q -> N.output t (Printf.sprintf "q%d" i) q) qs;
  t

let comparator ~bits =
  if bits < 1 then invalid_arg "Builders.comparator: bits";
  let t = N.create () in
  let diffs =
    List.init bits (fun i ->
        let a = N.input t (Printf.sprintf "a%d" i) in
        let b = N.input t (Printf.sprintf "b%d" i) in
        N.xor_ t a b)
  in
  N.output t "neq" (N.or_list t diffs);
  t

let cam ~entries ~bits =
  if entries < 1 || bits < 1 then invalid_arg "Builders.cam: dims";
  let t = N.create () in
  let key = List.init bits (fun i -> N.input t (Printf.sprintf "key%d" i)) in
  let write = N.input t "write" in
  (* allocation pointer counts 0..entries (the extra state = full) *)
  let abits = bits_for (entries + 1) in
  let alloc =
    List.init abits (fun i -> N.dff t (Printf.sprintf "alloc%d" i))
  in
  let alloc_is k =
    N.and_list t
      (List.mapi
         (fun i q -> if (k lsr i) land 1 = 1 then q else N.not_ t q)
         alloc)
  in
  let full = alloc_is entries in
  let do_write = N.and_ t write (N.not_ t full) in
  (* alloc increment *)
  let one = N.const t true in
  let _c, alloc_next =
    List.fold_left
      (fun (carry, acc) q ->
        (N.and_ t carry q, (q, N.xor_ t q carry) :: acc))
      (one, []) alloc
  in
  List.iter
    (fun (q, inc) -> N.connect t ~q ~d:(N.mux t ~sel:do_write ~t1:inc ~t0:q))
    (List.rev alloc_next);
  (* entries: valid bit + key register each *)
  let match_lines =
    List.init entries (fun e ->
        let valid = N.dff t (Printf.sprintf "v%d" e) in
        let sel = N.and_ t do_write (alloc_is e) in
        N.connect t ~q:valid ~d:(N.or_ t valid sel);
        let stored =
          List.mapi
            (fun i k ->
              let q = N.dff t (Printf.sprintf "e%dk%d" e i) in
              N.connect t ~q ~d:(N.mux t ~sel ~t1:k ~t0:q);
              q)
            key
        in
        let eq =
          N.and_list t
            (List.map2 (fun s k -> N.not_ t (N.xor_ t s k)) stored key)
        in
        N.and_ t valid eq)
  in
  N.output t "hit" (N.or_list t match_lines);
  N.output t "full" full;
  (* one-hot to binary index (entries are distinct, so <= 1 match) *)
  let ibits = max 1 (bits_for entries) in
  for i = 0 to ibits - 1 do
    let contributors =
      List.filteri (fun e _ -> (e lsr i) land 1 = 1) match_lines
    in
    let bit =
      match contributors with
      | [] -> N.const t false
      | l -> N.or_list t l
    in
    N.output t (Printf.sprintf "idx%d" i) bit
  done;
  List.iteri (fun e m -> N.output t (Printf.sprintf "match%d" e) m) match_lines;
  t
