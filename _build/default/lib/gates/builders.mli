(** Gate-level generators for the BIST/BISR datapath blocks.

    Each builder returns the netlist plus the naming conventions of its
    ports; the test suite proves them cycle-equivalent to the
    behavioural models in [Bisram_bist] / [Bisram_bisr]. *)

(** ADDGEN: a [bits]-wide binary up/down counter.

    Inputs: [reset_up] (load 0), [reset_down] (load all-ones), [en]
    (count one step), [up] (direction).  Outputs: [q0..] (count before
    the step), [wrap] (the step leaves the terminal address). *)
val up_down_counter : bits:int -> Netlist.t

(** DATAGEN core: a [bits]-stage Johnson counter.

    Inputs: [reset], [en].  Outputs: [q0..] (state before the step). *)
val johnson_counter : bits:int -> Netlist.t

(** Word comparator: inputs [a0..], [b0..]; output [neq]. *)
val comparator : bits:int -> Netlist.t

(** TLB CAM: [entries] keys of [bits] each, allocated in strictly
    increasing order.

    Inputs: [key0..] (lookup/write key), [write] (allocate the next
    entry for the key).  Outputs: [hit], [idx0..] (matched entry index),
    [full]. *)
val cam : entries:int -> bits:int -> Netlist.t

(** Bits needed to count to [n] (ceil log2). *)
val bits_for : int -> int
