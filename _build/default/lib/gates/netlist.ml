type signal = int

type node =
  | Input of string
  | Const of bool
  | Not of signal
  | And of signal * signal
  | Or of signal * signal
  | Xor of signal * signal
  | Mux of signal * signal * signal (* sel, t1, t0 *)
  | Dff of { name : string; init : bool; mutable d : signal option }

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable outputs : (string * signal) list;
}

let create () = { nodes = Array.make 64 (Const false); n = 0; outputs = [] }

let add t node =
  if t.n >= Array.length t.nodes then begin
    let grown = Array.make (2 * Array.length t.nodes) (Const false) in
    Array.blit t.nodes 0 grown 0 t.n;
    t.nodes <- grown
  end;
  t.nodes.(t.n) <- node;
  t.n <- t.n + 1;
  t.n - 1

let input t name = add t (Input name)
let const t b = add t (Const b)
let not_ t a = add t (Not a)
let and_ t a b = add t (And (a, b))
let or_ t a b = add t (Or (a, b))
let xor_ t a b = add t (Xor (a, b))
let mux t ~sel ~t1 ~t0 = add t (Mux (sel, t1, t0))

let rec reduce f t = function
  | [] -> invalid_arg "Netlist.reduce: empty"
  | [ s ] -> s
  | a :: b :: rest -> reduce f t (f t a b :: rest)

let and_list t l = reduce and_ t l
let or_list t l = reduce or_ t l
let dff t ?(init = false) name = add t (Dff { name; init; d = None })

let connect t ~q ~d =
  match t.nodes.(q) with
  | Dff r ->
      if r.d <> None then invalid_arg "Netlist.connect: already connected";
      r.d <- Some d
  | Input _ | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ ->
      invalid_arg "Netlist.connect: not a flip-flop"

let output t name s = t.outputs <- (name, s) :: t.outputs

let gate_count t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    match t.nodes.(i) with
    | Not _ | And _ | Or _ | Xor _ | Mux _ -> incr c
    | Input _ | Const _ | Dff _ -> ()
  done;
  !c

let ff_count t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    match t.nodes.(i) with
    | Dff _ -> incr c
    | Input _ | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ -> ()
  done;
  !c

let transistor_count t =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    total :=
      !total
      +
      match t.nodes.(i) with
      | Input _ | Const _ -> 0
      | Not _ -> 2
      | And _ | Or _ -> 6
      | Xor _ -> 10
      | Mux _ -> 8
      | Dff _ -> 22
  done;
  !total

type state = {
  net : t;
  values : bool array; (* combinational values, recomputed per step *)
  regs : bool array; (* flip-flop contents, indexed by node id *)
  mutable last_outputs : (string * bool) list;
}

let simulate net =
  let regs = Array.make net.n false in
  for i = 0 to net.n - 1 do
    match net.nodes.(i) with
    | Dff { init; d; _ } ->
        if d = None then
          invalid_arg "Netlist.simulate: unconnected flip-flop";
        regs.(i) <- init
    | Input _ | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ -> ()
  done;
  { net; values = Array.make net.n false; regs; last_outputs = [] }

let reset st =
  for i = 0 to st.net.n - 1 do
    match st.net.nodes.(i) with
    | Dff { init; _ } -> st.regs.(i) <- init
    | Input _ | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ -> ()
  done

let eval_pass st inputs =
  let net = st.net in
  let v = st.values in
  (* nodes reference only earlier ids except through flip-flops, so one
     forward pass evaluates the combinational logic *)
  for i = 0 to net.n - 1 do
    v.(i) <-
      (match net.nodes.(i) with
      | Input name -> (
          match List.assoc_opt name inputs with
          | Some b -> b
          | None -> invalid_arg ("Netlist.step: missing input " ^ name))
      | Const b -> b
      | Not a -> not v.(a)
      | And (a, b) -> v.(a) && v.(b)
      | Or (a, b) -> v.(a) || v.(b)
      | Xor (a, b) -> v.(a) <> v.(b)
      | Mux (sel, t1, t0) -> if v.(sel) then v.(t1) else v.(t0)
      | Dff _ -> st.regs.(i))
  done;
  let outs =
    List.rev_map (fun (name, s) -> (name, v.(s))) net.outputs
  in
  st.last_outputs <- outs;
  outs

let eval st inputs = eval_pass st inputs

let step st inputs =
  let outs = eval_pass st inputs in
  (* clock edge *)
  let net = st.net in
  for i = 0 to net.n - 1 do
    match net.nodes.(i) with
    | Dff { d = Some d; _ } -> st.regs.(i) <- st.values.(d)
    | Dff { d = None; _ } -> assert false
    | Input _ | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ -> ()
  done;
  outs

let peek st name =
  match List.assoc_opt name st.last_outputs with
  | Some b -> b
  | None -> invalid_arg ("Netlist.peek: no output " ^ name)

type view =
  | VInput of string
  | VConst of bool
  | VNot of signal
  | VAnd of signal * signal
  | VOr of signal * signal
  | VXor of signal * signal
  | VMux of signal * signal * signal
  | VDff of { ff_name : string; init : bool; d : signal option }

let size t = t.n

let view t s =
  if s < 0 || s >= t.n then invalid_arg "Netlist.view";
  match t.nodes.(s) with
  | Input n -> VInput n
  | Const b -> VConst b
  | Not a -> VNot a
  | And (a, b) -> VAnd (a, b)
  | Or (a, b) -> VOr (a, b)
  | Xor (a, b) -> VXor (a, b)
  | Mux (s', a, b) -> VMux (s', a, b)
  | Dff { name; init; d } -> VDff { ff_name = name; init; d }

let outputs t = List.rev t.outputs

let to_verilog ~name t =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let wire i = Printf.sprintf "w%d" i in
  let inputs = ref [] and ffs = ref [] in
  for i = 0 to t.n - 1 do
    match t.nodes.(i) with
    | Input n -> inputs := (n, i) :: !inputs
    | Dff { name = n; init; d } -> ffs := (n, i, init, d) :: !ffs
    | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ -> ()
  done;
  let inputs = List.rev !inputs and ffs = List.rev !ffs in
  let ports =
    [ "clk"; "rst" ]
    @ List.map fst inputs
    @ List.map (fun (n, _) -> n) t.outputs
  in
  out "module %s(%s);" name (String.concat ", " ports);
  out "  input clk, rst%s;"
    (String.concat ""
       (List.map (fun (n, _) -> Printf.sprintf ", %s" n) inputs));
  List.iter (fun (n, _) -> out "  output %s;" n) t.outputs;
  for i = 0 to t.n - 1 do
    match t.nodes.(i) with
    | Dff _ -> out "  reg %s;" (wire i)
    | Input _ | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ ->
        out "  wire %s;" (wire i)
  done;
  List.iter (fun (n, i) -> out "  assign %s = %s;" (wire i) n) inputs;
  for i = 0 to t.n - 1 do
    match t.nodes.(i) with
    | Input _ | Dff _ -> ()
    | Const b -> out "  assign %s = 1'b%d;" (wire i) (if b then 1 else 0)
    | Not a -> out "  assign %s = ~%s;" (wire i) (wire a)
    | And (a, b) -> out "  assign %s = %s & %s;" (wire i) (wire a) (wire b)
    | Or (a, b) -> out "  assign %s = %s | %s;" (wire i) (wire a) (wire b)
    | Xor (a, b) -> out "  assign %s = %s ^ %s;" (wire i) (wire a) (wire b)
    | Mux (s, t1, t0) ->
        out "  assign %s = %s ? %s : %s;" (wire i) (wire s) (wire t1) (wire t0)
  done;
  out "  always @(posedge clk) begin";
  out "    if (rst) begin";
  List.iter
    (fun (_, i, init, _) ->
      out "      %s <= 1'b%d;" (wire i) (if init then 1 else 0))
    ffs;
  out "    end else begin";
  List.iter
    (fun (_, i, _, d) ->
      match d with
      | Some d -> out "      %s <= %s;" (wire i) (wire d)
      | None -> invalid_arg "Netlist.to_verilog: unconnected flip-flop")
    ffs;
  out "    end";
  out "  end";
  List.iter (fun (n, s) -> out "  assign %s = %s;" n (wire s)) t.outputs;
  out "endmodule";
  Buffer.contents buf
