(** Gate-level netlists and their cycle-accurate simulator.

    BISRAMGEN's BIST datapath blocks (ADDGEN, DATAGEN, the comparator,
    the TLB CAM) are generated here as synchronous gate netlists — the
    structural "simulation models" behind the phantom layout cells.
    The test suite proves each netlist cycle-equivalent to its
    behavioural model.

    A netlist is a DAG of combinational gates over primary inputs and
    flip-flop outputs; D flip-flops update on [step]. *)

type signal = int
(** node id, in construction order — usable as an array index *)

type t

val create : unit -> t

(** Primary input; its value is supplied to every [step]. *)
val input : t -> string -> signal

val const : t -> bool -> signal
val not_ : t -> signal -> signal
val and_ : t -> signal -> signal -> signal
val or_ : t -> signal -> signal -> signal
val xor_ : t -> signal -> signal -> signal

(** [mux t ~sel ~t1 ~t0] — [t1] when [sel], else [t0]. *)
val mux : t -> sel:signal -> t1:signal -> t0:signal -> signal

(** Reduction over a non-empty list. *)
val and_list : t -> signal list -> signal

val or_list : t -> signal list -> signal

(** D flip-flop, initial value [init].  Returns its Q output; the D
    input is connected afterwards with [connect] (enabling feedback). *)
val dff : t -> ?init:bool -> string -> signal

val connect : t -> q:signal -> d:signal -> unit

(** Mark a signal as a named primary output. *)
val output : t -> string -> signal -> unit

(** Gate count (combinational gates only). *)
val gate_count : t -> int

val ff_count : t -> int

(** Static-CMOS transistor estimate: NOT 2, AND/OR 6 (nand/nor + inv),
    XOR 10, MUX 8, DFF 22; inputs/constants free. *)
val transistor_count : t -> int

(** {2 Simulation} *)

type state

val simulate : t -> state

(** Reset flip-flops to their initial values. *)
val reset : state -> unit

(** One clock cycle: evaluate combinational logic under the given
    primary-input values, sample outputs, then clock the flip-flops.
    @raise Invalid_argument on a missing input or if some flip-flop was
    never [connect]ed. *)
val step : state -> (string * bool) list -> (string * bool) list

(** Evaluate outputs under the given inputs WITHOUT clocking the
    flip-flops (the combinational view of the current state). *)
val eval : state -> (string * bool) list -> (string * bool) list

(** Peek an output's value from the last [step] without advancing. *)
val peek : state -> string -> bool

(** {2 Inspection} *)

type view =
  | VInput of string
  | VConst of bool
  | VNot of signal
  | VAnd of signal * signal
  | VOr of signal * signal
  | VXor of signal * signal
  | VMux of signal * signal * signal  (** sel, t1, t0 *)
  | VDff of { ff_name : string; init : bool; d : signal option }

val size : t -> int
(** number of nodes; signals are [0 .. size-1] in construction order *)

val view : t -> signal -> view
val outputs : t -> (string * signal) list

(** {2 Export} *)

(** Structural Verilog: one module with the primary inputs, the named
    outputs, a [clk] port clocking every flip-flop, and an active-high
    synchronous [rst] restoring the declared initial values. *)
val to_verilog : name:string -> t -> string
