lib/gates/optimize.mli: Netlist
