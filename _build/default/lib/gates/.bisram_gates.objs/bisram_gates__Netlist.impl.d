lib/gates/netlist.ml: Array Buffer List Printf String
