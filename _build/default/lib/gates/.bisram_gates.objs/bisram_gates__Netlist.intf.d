lib/gates/netlist.mli:
