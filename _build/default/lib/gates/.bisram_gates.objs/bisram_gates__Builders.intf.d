lib/gates/builders.mli: Netlist
