lib/gates/optimize.ml: Array Hashtbl List Netlist Queue
