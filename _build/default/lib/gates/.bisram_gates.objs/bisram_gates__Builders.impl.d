lib/gates/builders.ml: List Netlist Printf
