(** Netlist clean-up: constant folding, operand-identity simplification
    and dead-gate elimination.

    PLA expansions are full of constants and repeated literals; this
    pass gives an honest gate-count for the synthesized controller.
    The optimized netlist is behaviourally identical (the test suite
    checks random vectors). *)

type stats = {
  gates_before : int;
  gates_after : int;
  ffs : int;
}

(** Rebuild the netlist with simplifications applied.  Inputs, outputs
    and flip-flop names/initial values are preserved. *)
val optimize : Netlist.t -> Netlist.t * stats
