module N = Netlist

type stats = { gates_before : int; gates_after : int; ffs : int }

(* structural keys for hash-consing in the rebuilt netlist *)
type key =
  | KConst of bool
  | KNot of int
  | KAnd of int * int
  | KOr of int * int
  | KXor of int * int
  | KMux of int * int * int

let one_pass src =
  let n = N.size src in
  (* ---- reachability from outputs, flowing through flip-flop D pins *)
  let reachable = Array.make n false in
  let queue = Queue.create () in
  let mark s =
    if not reachable.(s) then begin
      reachable.(s) <- true;
      Queue.add s queue
    end
  in
  List.iter (fun (_, s) -> mark s) (N.outputs src);
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    match N.view src s with
    | N.VInput _ | N.VConst _ -> ()
    | N.VNot a -> mark a
    | N.VAnd (a, b) | N.VOr (a, b) | N.VXor (a, b) ->
        mark a;
        mark b
    | N.VMux (c, a, b) ->
        mark c;
        mark a;
        mark b
    | N.VDff { d = Some d; _ } -> mark d
    | N.VDff { d = None; _ } -> ()
  done;
  (* ---- rebuild with folding and hash-consing *)
  let dst = N.create () in
  let consts : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let interned : (key, int) Hashtbl.t = Hashtbl.create 256 in
  let const_of s = Hashtbl.find_opt consts s in
  let intern key make =
    match Hashtbl.find_opt interned key with
    | Some s -> s
    | None ->
        let s = make () in
        Hashtbl.add interned key s;
        (match key with KConst b -> Hashtbl.replace consts s b | _ -> ());
        s
  in
  let mk_const b = intern (KConst b) (fun () -> N.const dst b) in
  let not_cache : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let mk_not a =
    match const_of a with
    | Some b -> mk_const (not b)
    | None -> (
        match Hashtbl.find_opt not_cache a with
        | Some na -> na (* includes double negation: not(not x) = x *)
        | None ->
            let na = intern (KNot a) (fun () -> N.not_ dst a) in
            Hashtbl.replace not_cache a na;
            Hashtbl.replace not_cache na a;
            na)
  in
  let comm a b = if a <= b then (a, b) else (b, a) in
  let mk_and a b =
    let a, b = comm a b in
    match (const_of a, const_of b) with
    | Some false, _ | _, Some false -> mk_const false
    | Some true, _ -> b
    | _, Some true -> a
    | None, None ->
        if a = b then a else intern (KAnd (a, b)) (fun () -> N.and_ dst a b)
  in
  let mk_or a b =
    let a, b = comm a b in
    match (const_of a, const_of b) with
    | Some true, _ | _, Some true -> mk_const true
    | Some false, _ -> b
    | _, Some false -> a
    | None, None ->
        if a = b then a else intern (KOr (a, b)) (fun () -> N.or_ dst a b)
  in
  let mk_xor a b =
    let a, b = comm a b in
    match (const_of a, const_of b) with
    | Some x, Some y -> mk_const (x <> y)
    | Some false, _ -> b
    | _, Some false -> a
    | Some true, _ -> mk_not b
    | _, Some true -> mk_not a
    | None, None ->
        if a = b then mk_const false
        else intern (KXor (a, b)) (fun () -> N.xor_ dst a b)
  in
  let mk_mux sel t1 t0 =
    match const_of sel with
    | Some true -> t1
    | Some false -> t0
    | None ->
        if t1 = t0 then t1
        else
          (* mux(s, 1, 0) = s ; mux(s, 0, 1) = ~s *)
          (match (const_of t1, const_of t0) with
          | Some true, Some false -> sel
          | Some false, Some true -> mk_not sel
          | _ ->
              intern (KMux (sel, t1, t0)) (fun () -> N.mux dst ~sel ~t1 ~t0))
  in
  let map = Array.make n (-1) in
  let dff_fixups = ref [] in
  for s = 0 to n - 1 do
    if reachable.(s) then
      map.(s) <-
        (match N.view src s with
        | N.VInput name -> N.input dst name
        | N.VConst b -> mk_const b
        | N.VNot a -> mk_not map.(a)
        | N.VAnd (a, b) -> mk_and map.(a) map.(b)
        | N.VOr (a, b) -> mk_or map.(a) map.(b)
        | N.VXor (a, b) -> mk_xor map.(a) map.(b)
        | N.VMux (c, a, b) -> mk_mux map.(c) map.(a) map.(b)
        | N.VDff { ff_name; init; d } ->
            let q = N.dff dst ~init ff_name in
            (match d with
            | Some d -> dff_fixups := (q, d) :: !dff_fixups
            | None -> ());
            q)
  done;
  List.iter (fun (q, d) -> N.connect dst ~q ~d:map.(d)) !dff_fixups;
  List.iter (fun (name, s) -> N.output dst name map.(s)) (N.outputs src);
  dst

let optimize src =
  (* folding can orphan gates (e.g. the inner gate of a collapsed
     double negation), so iterate to a fixpoint *)
  let rec go cur =
    let next = one_pass cur in
    if N.gate_count next < N.gate_count cur then go next else next
  in
  let dst = go src in
  ( dst,
    { gates_before = N.gate_count src
    ; gates_after = N.gate_count dst
    ; ffs = N.ff_count dst
    } )
