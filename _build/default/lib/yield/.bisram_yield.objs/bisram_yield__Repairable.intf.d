lib/yield/repairable.mli: Random
