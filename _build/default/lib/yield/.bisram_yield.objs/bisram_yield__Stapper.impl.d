lib/yield/stapper.ml:
