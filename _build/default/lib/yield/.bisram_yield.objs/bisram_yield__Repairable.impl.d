lib/yield/repairable.ml: Array Bisram_faults Hashtbl Random
