lib/yield/stapper.mli:
