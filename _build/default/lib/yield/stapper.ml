let poisson_cell_yield ~lambda =
  assert (lambda >= 0.0);
  exp (-.lambda)

let stapper_yield ~mean_defects ~alpha =
  assert (mean_defects >= 0.0 && alpha > 0.0);
  (1.0 +. (mean_defects /. alpha)) ** -.alpha

let stapper_yield_da ~defect_density ~area ~alpha =
  stapper_yield ~mean_defects:(defect_density *. area) ~alpha

let mean_defects_of_yield ~yield ~alpha =
  assert (yield > 0.0 && yield <= 1.0 && alpha > 0.0);
  alpha *. ((yield ** (-1.0 /. alpha)) -. 1.0)

let poisson_yield ~mean_defects =
  assert (mean_defects >= 0.0);
  exp (-.mean_defects)
