(** Reliability of a BISR'ed RAM module (Section VIII, Fig. 5).

    Hard-failure model: each bit fails independently at rate [lambda]
    per hour, so a bpw-bit word is faulty at time t with probability
    q(t) = 1 - exp(-lambda*bpw*t).  The module survives until t iff at
    most S = spares*bpc of the W regular words are faulty and all S
    spare words are fault-free, giving

    R(t) = (1-q)^S * sum_{j=0..S} C(W,j) q^j (1-q)^(W-j).

    The initial dip with more spares (spares fail too) and the late
    crossover where more spares win are the paper's Fig. 5 phenomena. *)

type config = {
  words : int;  (** regular words W *)
  bpw : int;
  spare_words : int;  (** S = spares * bpc *)
  lambda : float;  (** per-bit failure rate, per hour *)
}

val of_org : Bisram_sram.Org.t -> lambda:float -> config

(** Reliability at time [t] hours; in [0,1], decreasing in [t]. *)
val reliability : config -> float -> float

(** Failure probability density -dR/dt (central difference). *)
val failure_pdf : config -> float -> float

(** Mean time to failure in hours, by adaptive integration of R(t). *)
val mttf : config -> float

(** Time at which the reliability of config [a] first drops below that
    of config [b] (scanning [t0..t1] with [steps] points); [None] when
    no crossover occurs in range.  Used for the 4-vs-8-spares crossover
    of Fig. 5. *)
val crossover :
  config -> config -> t0:float -> t1:float -> steps:int -> float option
