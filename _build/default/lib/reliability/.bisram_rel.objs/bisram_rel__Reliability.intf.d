lib/reliability/reliability.mli: Bisram_sram
