lib/reliability/reliability.ml: Array Bisram_sram Float
