type t = {
  vdd : float;
  vtn : float;
  vtp : float;
  kn : float;
  kp : float;
  cox_per_m2 : float;
  sheet_r : Layer.t -> float;
  cap_area : Layer.t -> float;
  cap_fringe : Layer.t -> float;
  junction_cap : float;
  contact_r : float;
}

let generic_sheet_r = function
  | Layer.Poly -> 25.0
  | Layer.Active -> 70.0
  | Layer.Metal1 -> 0.07
  | Layer.Metal2 -> 0.07
  | Layer.Metal3 -> 0.04
  | Layer.Nwell | Layer.Pwell -> 2000.0
  | Layer.Nplus | Layer.Pplus -> 70.0
  | Layer.Contact | Layer.Via1 | Layer.Via2 | Layer.Glass -> infinity

(* Capacitances per square meter to substrate; 1 fF/um^2 = 1e-3 F/m^2. *)
let generic_cap_area = function
  | Layer.Poly -> 0.058e-3
  | Layer.Active -> 0.3e-3
  | Layer.Metal1 -> 0.031e-3
  | Layer.Metal2 -> 0.015e-3
  | Layer.Metal3 -> 0.010e-3
  | Layer.Nwell | Layer.Pwell | Layer.Nplus | Layer.Pplus | Layer.Contact
  | Layer.Via1 | Layer.Via2 | Layer.Glass ->
      0.0

(* Fringe per meter of perimeter; 1 fF/um = 1e-9 F/m. *)
let generic_cap_fringe = function
  | Layer.Poly -> 0.04e-9
  | Layer.Active -> 0.25e-9
  | Layer.Metal1 -> 0.044e-9
  | Layer.Metal2 -> 0.035e-9
  | Layer.Metal3 -> 0.033e-9
  | Layer.Nwell | Layer.Pwell | Layer.Nplus | Layer.Pplus | Layer.Contact
  | Layer.Via1 | Layer.Via2 | Layer.Glass ->
      0.0

let generic_5v ~feature_m =
  (* Scale transconductance with 1/tox ~ 1/feature: a 0.5 um process is
     faster than a 0.8 um one.  Anchored at 0.7 um: kn' = 100 uA/V^2. *)
  let scale = 0.7e-6 /. feature_m in
  { vdd = 5.0
  ; vtn = 0.7
  ; vtp = -0.9
  ; kn = 100e-6 *. scale
  ; kp = 37e-6 *. scale
  ; cox_per_m2 = 2.4e-3 *. scale
  ; sheet_r = generic_sheet_r
  ; cap_area = generic_cap_area
  ; cap_fringe = generic_cap_fringe
  ; junction_cap = 0.35e-3
  ; contact_r = 10.0
  }

(* Averaged large-signal on-resistance: Req ~ 3/4 * Vdd / Idsat with
   Idsat = k/2 * (W/L) (Vdd - Vt)^2.  The exact constant is irrelevant;
   what matters is the W/L scaling used for sizing and Elmore delays. *)
let ron k vdd vt ~w ~l =
  assert (w > 0.0 && l > 0.0);
  let idsat = k /. 2.0 *. (w /. l) *. ((vdd -. vt) ** 2.0) in
  0.75 *. vdd /. idsat

let ron_nmos e ~w ~l = ron e.kn e.vdd e.vtn ~w ~l
let ron_pmos e ~w ~l = ron e.kp e.vdd (-.e.vtp) ~w ~l
let cgate e ~w ~l = e.cox_per_m2 *. w *. l

let cdiff e ~feature_m ~w =
  let ldiff = 3.0 *. feature_m in
  (e.junction_cap *. w *. ldiff)
  +. (generic_cap_fringe Layer.Active *. 2.0 *. (w +. ldiff))

let beta_ratio e = e.kn /. e.kp
