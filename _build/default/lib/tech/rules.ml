module Rect = Bisram_geometry.Rect

type t = {
  min_width : Layer.t -> int;
  min_space : Layer.t -> int;
  contact_size : int;
  contact_surround : int;
  gate_extension : int;
  active_extension : int;
  well_surround : int;
  select_surround : int;
  poly_active_space : int;
}

(* SCMOS baseline (MOSIS rev. 7 flavor, simplified to the subset the
   generators use). *)
let scmos_width = function
  | Layer.Nwell | Layer.Pwell -> 10
  | Layer.Active -> 3
  | Layer.Poly -> 2
  | Layer.Nplus | Layer.Pplus -> 2
  | Layer.Contact | Layer.Via1 | Layer.Via2 -> 2
  | Layer.Metal1 -> 3
  | Layer.Metal2 -> 3
  | Layer.Metal3 -> 5
  | Layer.Glass -> 20

let scmos_space = function
  | Layer.Nwell | Layer.Pwell -> 9
  | Layer.Active -> 3
  | Layer.Poly -> 2
  | Layer.Nplus | Layer.Pplus -> 2
  | Layer.Contact | Layer.Via1 | Layer.Via2 -> 2
  | Layer.Metal1 -> 3
  | Layer.Metal2 -> 4
  | Layer.Metal3 -> 4
  | Layer.Glass -> 20

let scmos =
  { min_width = scmos_width
  ; min_space = scmos_space
  ; contact_size = 2
  ; contact_surround = 1
  ; gate_extension = 2
  ; active_extension = 3
  ; well_surround = 5
  ; select_surround = 2
  ; poly_active_space = 1
  }

let pitch rules layer = rules.min_width layer + rules.min_space layer

let contact_pitch rules =
  rules.contact_size + (2 * rules.contact_surround)
  + rules.min_space Layer.Metal1

let check_width rules layer r =
  let w = rules.min_width layer in
  let rw = Rect.width r and rh = Rect.height r in
  (* A wire may be long and thin; only the short dimension must meet the
     minimum width.  Zero-extent port stubs are exempt. *)
  if rw = 0 || rh = 0 then None
  else if min rw rh >= w then None
  else
    Some (Format.asprintf "%a: %a narrower than %dl" Layer.pp layer Rect.pp r w)

let check_spacing rules layer rects =
  let s = rules.min_space layer in
  let violations = ref [] in
  let arr = Array.of_list rects in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      (* Rectangles that touch or overlap are merged shapes: legal. *)
      if not (Rect.touches a b) then
        if Rect.overlaps (Rect.inflate s a) b then
          violations :=
            Format.asprintf "%a: %a to %a closer than %dl" Layer.pp layer
              Rect.pp a Rect.pp b s
            :: !violations
    done
  done;
  List.rev !violations
