type t = {
  name : string;
  feature_nm : int;
  lambda_nm : int;
  metal_layers : int;
  poly_layers : int;
  rules : Rules.t;
  electrical : Electrical.t;
}

let custom ~name ~feature_nm ~metal_layers () =
  { name
  ; feature_nm
  ; lambda_nm = feature_nm / 2
  ; metal_layers
  ; poly_layers = 1
  ; rules = Rules.scmos
  ; electrical = Electrical.generic_5v ~feature_m:(float_of_int feature_nm *. 1e-9)
  }

let cda_05u3m1p = custom ~name:"CDA.5u3m1p" ~feature_nm:500 ~metal_layers:3 ()
let cda_07u3m1p = custom ~name:"CDA.7u3m1p" ~feature_nm:700 ~metal_layers:3 ()

let mosis_06u3m1p_hp =
  custom ~name:"mos.6u3m1pHP" ~feature_nm:600 ~metal_layers:3 ()

let all = [ cda_05u3m1p; mosis_06u3m1p_hp; cda_07u3m1p ]

let find name =
  List.find_opt (fun p -> String.lowercase_ascii p.name = String.lowercase_ascii name) all

let supports_bisr p = p.metal_layers >= 3
let nm_of_lambda p l = l * p.lambda_nm
let um_of_lambda p l = float_of_int (l * p.lambda_nm) /. 1000.0

let mm2_of_lambda_area p w h =
  let um = um_of_lambda p in
  um w *. um h /. 1e6

let pp ppf p =
  Format.fprintf ppf "%s (%.1f um, %dM%dP)" p.name
    (float_of_int p.feature_nm /. 1000.0)
    p.metal_layers p.poly_layers
