type t =
  | Nwell
  | Pwell
  | Active
  | Poly
  | Nplus
  | Pplus
  | Contact
  | Metal1
  | Via1
  | Metal2
  | Via2
  | Metal3
  | Glass

let all =
  [ Nwell; Pwell; Active; Poly; Nplus; Pplus; Contact; Metal1; Via1; Metal2
  ; Via2; Metal3; Glass
  ]

let routing = [ Active; Poly; Metal1; Metal2; Metal3 ]
let equal (a : t) b = a = b

let index = function
  | Nwell -> 0
  | Pwell -> 1
  | Active -> 2
  | Poly -> 3
  | Nplus -> 4
  | Pplus -> 5
  | Contact -> 6
  | Metal1 -> 7
  | Via1 -> 8
  | Metal2 -> 9
  | Via2 -> 10
  | Metal3 -> 11
  | Glass -> 12

let compare a b = Int.compare (index a) (index b)

let to_string = function
  | Nwell -> "nwell"
  | Pwell -> "pwell"
  | Active -> "active"
  | Poly -> "poly"
  | Nplus -> "nplus"
  | Pplus -> "pplus"
  | Contact -> "contact"
  | Metal1 -> "metal1"
  | Via1 -> "via1"
  | Metal2 -> "metal2"
  | Via2 -> "via2"
  | Metal3 -> "metal3"
  | Glass -> "glass"

let cif_name = function
  | Nwell -> "CWN"
  | Pwell -> "CWP"
  | Active -> "CAA"
  | Poly -> "CPG"
  | Nplus -> "CSN"
  | Pplus -> "CSP"
  | Contact -> "CCC"
  | Metal1 -> "CMF"
  | Via1 -> "CVA"
  | Metal2 -> "CMS"
  | Via2 -> "CVS"
  | Metal3 -> "CMT"
  | Glass -> "COG"

let metal_index = function
  | Metal1 -> Some 1
  | Metal2 -> Some 2
  | Metal3 -> Some 3
  | Nwell | Pwell | Active | Poly | Nplus | Pplus | Contact | Via1 | Via2
  | Glass ->
      None

let pp ppf l = Format.pp_print_string ppf (to_string l)
