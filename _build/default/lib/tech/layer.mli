(** Mask layers of a single-poly, triple-metal CMOS process.

    BISRAMGEN requires three metal layers (over-the-cell routing uses
    metal 3); processes with fewer metals are rejected at configuration
    time, mirroring the blank entries of Table II in the paper. *)

type t =
  | Nwell
  | Pwell
  | Active
  | Poly
  | Nplus (* n+ select *)
  | Pplus (* p+ select *)
  | Contact (* active/poly to metal1 *)
  | Metal1
  | Via1
  | Metal2
  | Via2
  | Metal3
  | Glass

val all : t list

(** Conducting layers that carry signals (used by extraction/routing). *)
val routing : t list

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string

(** CIF layer name (MOSIS SCMOS convention). *)
val cif_name : t -> string

(** Index of a metal layer (1, 2, 3); [None] for non-metals. *)
val metal_index : t -> int option

val pp : Format.formatter -> t -> unit
