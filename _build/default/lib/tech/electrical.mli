(** Electrical characterization of a process, used by the SPICE-like
    engine for leaf-cell timing extraction and transistor sizing.

    Units: resistance in ohms, capacitance in farads, lengths in meters,
    voltages in volts, transconductance in A/V^2. *)

type t = {
  vdd : float;  (** supply voltage *)
  vtn : float;  (** NMOS threshold *)
  vtp : float;  (** PMOS threshold (negative) *)
  kn : float;  (** NMOS process transconductance kn' = un*Cox *)
  kp : float;  (** PMOS process transconductance kp' = up*Cox *)
  cox_per_m2 : float;  (** gate oxide capacitance per m^2 *)
  sheet_r : Layer.t -> float;  (** sheet resistance, ohm/square *)
  cap_area : Layer.t -> float;  (** capacitance to substrate, F/m^2 *)
  cap_fringe : Layer.t -> float;  (** fringe capacitance, F/m *)
  junction_cap : float;  (** source/drain junction cap, F/m^2 *)
  contact_r : float;  (** single contact/via resistance, ohms *)
}

(** Electrical deck representative of a 0.5-0.8 um 5 V CMOS generation,
    scaled by drawn feature size [feature_m]. *)
val generic_5v : feature_m:float -> t

(** Equivalent switched-on channel resistance of a MOS device of drawn
    [w] and [l] (meters): the standard averaged large-signal estimate
    used for Elmore delay. *)
val ron_nmos : t -> w:float -> l:float -> float

val ron_pmos : t -> w:float -> l:float -> float

(** Gate capacitance of a device of drawn [w] x [l] (meters). *)
val cgate : t -> w:float -> l:float -> float

(** Drain/source diffusion capacitance estimate for a device of width
    [w]; diffusion length is taken as 3 feature sizes. *)
val cdiff : t -> feature_m:float -> w:float -> float

(** Ratio wp/wn that balances rise and fall times for equal lengths,
    i.e. kn/kp. *)
val beta_ratio : t -> float
