(** Lambda-based design rules (MOSIS SCMOS style).

    All values are in lambda.  A process binds lambda to nanometers;
    leaf-cell generators work purely in lambda so the same generator
    serves every process — this is the "design-rule independence" of
    BISRAMGEN. *)

type t = {
  min_width : Layer.t -> int;  (** minimum drawn width *)
  min_space : Layer.t -> int;  (** minimum same-layer spacing *)
  contact_size : int;  (** contact/via cut edge *)
  contact_surround : int;  (** metal/active/poly overlap of a cut *)
  gate_extension : int;  (** poly extension past active (endcap) *)
  active_extension : int;  (** source/drain active past the gate *)
  well_surround : int;  (** well overlap of active *)
  select_surround : int;  (** n+/p+ select overlap of active *)
  poly_active_space : int;  (** field poly to unrelated active *)
}

(** The SCMOS baseline rule deck used by every bundled process. *)
val scmos : t

(** [pitch rules layer] is the minimum wire pitch (width + space). *)
val pitch : t -> Layer.t -> int

(** [contact_pitch rules] is the minimum pitch of contacted wires. *)
val contact_pitch : t -> int

(** Check one rectangle of a given layer against min-width; returns a
    violation description if any. *)
val check_width : t -> Layer.t -> Bisram_geometry.Rect.t -> string option

(** Pairwise same-layer spacing check over a list of rectangles; returns
    violation descriptions.  Quadratic — meant for leaf cells. *)
val check_spacing :
  t -> Layer.t -> Bisram_geometry.Rect.t list -> string list
