(** A CMOS process binds the lambda-based rule deck to physical units
    and carries the electrical deck.

    The paper's user chooses among 3-metal, 1-poly processes with feature
    widths of 0.5 um and above: CDA.5u3m1p, CDA.7u3m1p and the MOSIS
    mos.6u3m1pHP.  We model those three plus a convenience constructor. *)

type t = {
  name : string;
  feature_nm : int;  (** drawn minimum feature (gate length), nm *)
  lambda_nm : int;  (** lambda = feature / 2, nm *)
  metal_layers : int;
  poly_layers : int;
  rules : Rules.t;
  electrical : Electrical.t;
}

val cda_05u3m1p : t
val cda_07u3m1p : t
val mosis_06u3m1p_hp : t

val all : t list
val find : string -> t option

(** [custom ~name ~feature_nm ~metal_layers ()] builds a process with the
    SCMOS deck and generic 5 V electricals. *)
val custom : name:string -> feature_nm:int -> metal_layers:int -> unit -> t

(** BISRAMGEN needs >= 3 metal layers (over-the-cell routing). *)
val supports_bisr : t -> bool

(** Convert a dimension in lambda to nanometers. *)
val nm_of_lambda : t -> int -> int

(** Convert a dimension in lambda to micrometers. *)
val um_of_lambda : t -> int -> float

(** Area of a [w] x [h] lambda box in mm^2. *)
val mm2_of_lambda_area : t -> int -> int -> float

val pp : Format.formatter -> t -> unit
