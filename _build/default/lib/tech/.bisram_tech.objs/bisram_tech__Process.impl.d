lib/tech/process.ml: Electrical Format List Rules String
