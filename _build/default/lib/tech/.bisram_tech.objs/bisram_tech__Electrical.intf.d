lib/tech/electrical.mli: Layer
