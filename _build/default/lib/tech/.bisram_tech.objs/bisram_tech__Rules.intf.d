lib/tech/rules.mli: Bisram_geometry Layer
