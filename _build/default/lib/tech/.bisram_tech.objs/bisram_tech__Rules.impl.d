lib/tech/rules.ml: Array Bisram_geometry Format Layer List
