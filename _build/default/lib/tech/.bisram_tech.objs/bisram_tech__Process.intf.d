lib/tech/process.mli: Electrical Format Rules
