lib/tech/electrical.ml: Layer
