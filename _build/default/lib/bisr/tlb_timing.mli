(** Delay model of the TLB's parallel address comparison.

    The match path is a CAM row: one XOR-style compare device per row
    address bit discharging a shared match line, followed by the
    spare word-line encoder.  The paper reports about 1.2 ns for four
    spare rows at 0.7 um, at least an order of magnitude below the RAM
    access time, and maskable (precharge overlap, level-sensitive
    address register, or oversized decoders) for 1-4 spares. *)

type estimate = {
  match_line : float;  (** CAM match-line discharge, seconds *)
  priority_encode : float;  (** entry select / spare encode *)
  drive_out : float;  (** driving the diverted row address out *)
}

val total : estimate -> float

(** [delay process ~org] — delay as a function of process, address
    width (log2 of regular rows) and number of spares. *)
val delay :
  Bisram_tech.Process.t -> org:Bisram_sram.Org.t -> estimate

(** A TLB delay is maskable when it fits inside the precharge phase,
    taken as 40% of the RAM access time (technique 1 of Section VI). *)
val maskable :
  Bisram_tech.Process.t -> org:Bisram_sram.Org.t -> drive:float -> bool

val pp : Format.formatter -> estimate -> unit
