(** The hardware translation lookaside buffer (TLB) of the BISR circuit.

    The TLB is a small CAM that associates the sequence of faulty row
    addresses, in order of detection, with the unique, predetermined,
    strictly increasing sequence of spare-row indices 0, 1, 2, ...
    During normal operation the incoming row address is compared in
    parallel against every stored entry; on a match the access is
    diverted to the corresponding spare row.

    A faulty spare discovered in a later repair iteration is handled by
    adding a fresh entry for the same logical row with the next spare
    index; lookup returns the latest entry, preserving the strictly
    increasing allocation property. *)

type t

(** [create ~spares ~regular_rows] — [spares] entries; spare [k] is the
    physical row [regular_rows + k]. *)
val create : spares:int -> regular_rows:int -> t

val capacity : t -> int
val entries : t -> int
(** number of spare rows consumed so far *)

val is_full : t -> bool

(** Logical rows currently mapped, in allocation order (latest mapping
    per row). *)
val mapped_rows : t -> int list

(** [record t ~row] allocates the next spare for the logical row.
    Recording a row that is already mapped to a non-superseded spare is
    a no-op returning [`Ok].  Returns [`Full] when no spare remains for
    a new allocation. *)
val record : t -> row:int -> [ `Ok | `Full ]

(** [would_overflow t ~row] — true when [record] would return [`Full]. *)
val would_overflow : t -> row:int -> bool

(** [remap t ~row] is the parallel CAM lookup: physical row for an
    incoming logical row ([row] itself when unmapped). *)
val remap : t -> row:int -> int

(** [remap_spare t ~row] forces the NEXT spare for a logical row whose
    current spare turned out faulty (the iterated 2k-pass flow).
    Returns [`Full] when out of spares. *)
val remap_spare : t -> row:int -> [ `Ok | `Full ]

(** The spare index currently serving a row, if any. *)
val spare_of : t -> row:int -> int option

(** The strictly-increasing invariant: allocation order equals spare
    order (exposed for property tests). *)
val allocation_is_strictly_increasing : t -> bool

val clear : t -> unit
val pp : Format.formatter -> t -> unit
