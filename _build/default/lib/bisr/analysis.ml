module Org = Bisram_sram.Org
module F = Bisram_faults.Fault

type verdict = { faulty_regular_rows : int; faulty_spare_rows : int }

let classify org faults =
  let regular = Hashtbl.create 16 and spare = Hashtbl.create 16 in
  let rows = Org.rows org in
  List.iter
    (fun f ->
      let r = (F.victim f).F.row in
      if r < rows then Hashtbl.replace regular r ()
      else Hashtbl.replace spare r ())
    faults;
  { faulty_regular_rows = Hashtbl.length regular
  ; faulty_spare_rows = Hashtbl.length spare
  }

let repairable_strict org faults =
  let v = classify org faults in
  v.faulty_spare_rows = 0 && v.faulty_regular_rows <= org.Org.spares

let repairable_iterated org faults =
  let v = classify org faults in
  v.faulty_regular_rows <= org.Org.spares - v.faulty_spare_rows

let swamped_columns org faults =
  let per_col = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let c = F.victim f in
      let set =
        match Hashtbl.find_opt per_col c.F.col with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 8 in
            Hashtbl.add per_col c.F.col s;
            s
      in
      Hashtbl.replace set c.F.row ())
    faults;
  Hashtbl.fold
    (fun col rows acc ->
      if Hashtbl.length rows > org.Org.spares then col :: acc else acc)
    per_col []
  |> List.sort Int.compare
