lib/bisr/tlb_timing.mli: Bisram_sram Bisram_tech Format
