lib/bisr/tlb.ml: Format Int List Option
