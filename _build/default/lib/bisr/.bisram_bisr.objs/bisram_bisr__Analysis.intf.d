lib/bisr/analysis.mli: Bisram_faults Bisram_sram
