lib/bisr/repair.mli: Bisram_bist Bisram_sram Format Tlb
