lib/bisr/tlb_timing.ml: Bisram_spice Bisram_sram Bisram_tech Format
