lib/bisr/analysis.ml: Bisram_faults Bisram_sram Hashtbl Int List
