lib/bisr/tlb.mli: Format
