lib/bisr/hybrid.mli: Bisram_bist Bisram_faults Bisram_sram Bisram_tech
