lib/bisr/repair.ml: Bisram_bist Bisram_sram Format List String Tlb
