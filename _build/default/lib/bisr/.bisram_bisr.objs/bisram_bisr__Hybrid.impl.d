lib/bisr/hybrid.ml: Bisram_bist Bisram_faults Bisram_sram Hashtbl Int List Tlb_timing
