type entry = { logical_row : int; spare : int }

type t = {
  spares : int;
  regular_rows : int;
  mutable entries : entry list; (* newest first; lookup takes first match *)
  mutable next_spare : int;
}

let create ~spares ~regular_rows =
  if spares < 0 then invalid_arg "Tlb.create: negative spares";
  if regular_rows <= 0 then invalid_arg "Tlb.create: regular_rows";
  { spares; regular_rows; entries = []; next_spare = 0 }

let capacity t = t.spares
let entries t = t.next_spare
let is_full t = t.next_spare >= t.spares

let find t row =
  List.find_opt (fun e -> e.logical_row = row) t.entries

let spare_of t ~row = Option.map (fun e -> e.spare) (find t row)

let mapped_rows t =
  (* allocation order = spare order; keep only the newest entry per row *)
  t.entries
  |> List.filter (fun e ->
         match find t e.logical_row with
         | Some newest -> newest.spare = e.spare
         | None -> false)
  |> List.sort (fun a b -> Int.compare a.spare b.spare)
  |> List.map (fun e -> e.logical_row)

let alloc t row =
  if is_full t then `Full
  else begin
    t.entries <- { logical_row = row; spare = t.next_spare } :: t.entries;
    t.next_spare <- t.next_spare + 1;
    `Ok
  end

let record t ~row =
  if row < 0 || row >= t.regular_rows then invalid_arg "Tlb.record: bad row";
  match find t row with Some _ -> `Ok | None -> alloc t row

let would_overflow t ~row =
  match find t row with Some _ -> false | None -> is_full t

let remap t ~row =
  match find t row with
  | Some e -> t.regular_rows + e.spare
  | None -> row

let remap_spare t ~row =
  match find t row with
  | None -> invalid_arg "Tlb.remap_spare: row not mapped"
  | Some _ -> alloc t row

let allocation_is_strictly_increasing t =
  (* entries are newest-first, so spare indices must strictly decrease *)
  let rec check = function
    | a :: (b :: _ as rest) -> a.spare > b.spare && check rest
    | [ _ ] | [] -> true
  in
  check t.entries

let clear t =
  t.entries <- [];
  t.next_spare <- 0

let pp ppf t =
  Format.fprintf ppf "@[<v>TLB %d/%d entries@," t.next_spare t.spares;
  List.iter
    (fun e ->
      Format.fprintf ppf "  row %d -> spare %d (phys %d)@," e.logical_row
        e.spare (t.regular_rows + e.spare))
    (List.rev t.entries);
  Format.fprintf ppf "@]"
