(** Hybrid row + word repair (future-work extension).

    Section III shows the two pure architectures failing in opposite
    regimes: row sparing (BISRAMGEN) wastes a whole spare row on a
    single-cell defect and saturates on scattered singles, while word
    sparing (Chen-Sunada) is swamped by row-kill defects.  The hybrid
    keeps BISRAMGEN's TLB row sparing and adds a few word-capture
    registers: rows with several faulty words go to spare rows, isolated
    faulty words go to the word registers.

    The allocation is greedy and provably safe: rows are ranked by
    faulty-word count; the top rows take spare rows; everything left
    must fit in the word registers. *)

type t

val create :
  Bisram_sram.Org.t -> word_registers:int -> t

type plan = {
  row_assignments : int list;  (** logical rows sent to spare rows *)
  word_assignments : int list;  (** word addresses sent to registers *)
}

(** Greedy allocation for a set of faulty word addresses;
    [None] when the pattern does not fit. *)
val plan : t -> faulty_words:int list -> plan option

(** Static repairability of a fault list (victims in spare rows still
    disqualify, as in the strict row-sparing notion). *)
val repairable : t -> Bisram_faults.Fault.t list -> bool

(** End-to-end repair of a faulty model: test (march), allocate, divert
    (rows through the model remap, words through a wrapper), verify. *)
val repair :
  t ->
  Bisram_sram.Model.t ->
  Bisram_bist.March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  [ `Passed_clean | `Repaired of plan | `Unsuccessful ]

(** Additional delay vs the plain TLB: one more parallel CAM bank
    (word registers) — still one match time, not sequential. *)
val delay_penalty :
  Bisram_tech.Process.t -> org:Bisram_sram.Org.t -> word_registers:int ->
  float
