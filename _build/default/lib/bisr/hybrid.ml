module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module Engine = Bisram_bist.Engine
module F = Bisram_faults.Fault

type t = { org : Org.t; word_registers : int }

let create org ~word_registers =
  if word_registers < 0 then invalid_arg "Hybrid.create";
  { org; word_registers }

type plan = { row_assignments : int list; word_assignments : int list }

let group_by_row t faulty_words =
  let per_row = Hashtbl.create 16 in
  List.iter
    (fun addr ->
      let row = Org.row_of_addr t.org addr in
      Hashtbl.replace per_row row
        (addr
        :: (match Hashtbl.find_opt per_row row with Some l -> l | None -> [])))
    (List.sort_uniq Int.compare faulty_words);
  per_row

let plan t ~faulty_words =
  let per_row = group_by_row t faulty_words in
  (* rank rows by damage; the worst rows take the spare rows *)
  let rows =
    Hashtbl.fold (fun row words acc -> (row, List.length words, words) :: acc)
      per_row []
    |> List.sort (fun (_, a, _) (_, b, _) -> Int.compare b a)
  in
  let spare_rows = t.org.Org.spares in
  let to_rows, to_words =
    let rec split i = function
      | [] -> ([], [])
      | (row, _, words) :: rest ->
          let r, w = split (i + 1) rest in
          if i < spare_rows then (row :: r, w) else (r, words @ w)
    in
    split 0 rows
  in
  if List.length to_words <= t.word_registers then
    Some
      { row_assignments = List.sort Int.compare to_rows
      ; word_assignments = List.sort Int.compare to_words
      }
  else begin
    (* greedy alternative: prefer registers for single-fault rows even
       when spare rows remain — already covered, since single-fault rows
       rank last; if it does not fit above, no assignment fits: spare
       rows always remove at least as many leftover words as registers
       could *)
    None
  end

let victim_words t faults =
  List.filter_map
    (fun f ->
      let c = F.victim f in
      if c.F.row < Org.rows t.org then
        Some (Org.addr_of t.org ~row:c.F.row ~col:(c.F.col mod t.org.Org.bpc))
      else None)
    faults
  |> List.sort_uniq Int.compare

let spares_clean t faults =
  List.for_all
    (fun f -> (F.victim f).F.row < Org.rows t.org)
    faults

let repairable t faults =
  spares_clean t faults
  && plan t ~faulty_words:(victim_words t faults) <> None

let repair t model test ~backgrounds =
  assert (Model.org model = t.org);
  Model.clear model;
  let failures = Engine.run_ram (Engine.ram_of_model model) test ~backgrounds in
  let faulty_words =
    List.sort_uniq Int.compare (List.map (fun f -> f.Engine.addr) failures)
  in
  if faulty_words = [] then `Passed_clean
  else begin
    match plan t ~faulty_words with
    | None -> `Unsuccessful
    | Some p ->
        (* rows through the model's remap; words through a wrapper *)
        let regular = Org.rows t.org in
        let row_map = Hashtbl.create 8 in
        List.iteri
          (fun i row -> Hashtbl.add row_map row (regular + i))
          p.row_assignments;
        Model.set_remap model
          (Some
             (fun row ->
               match Hashtbl.find_opt row_map row with
               | Some phys -> phys
               | None -> row));
        let registers = Hashtbl.create 8 in
        List.iter
          (fun addr ->
            Hashtbl.add registers addr (ref (Word.zero t.org.Org.bpw)))
          p.word_assignments;
        let base = Engine.ram_of_model model in
        let ram =
          { base with
            Engine.read =
              (fun addr ->
                match Hashtbl.find_opt registers addr with
                | Some cell -> !cell
                | None -> base.Engine.read addr)
          ; write =
              (fun addr w ->
                match Hashtbl.find_opt registers addr with
                | Some cell -> cell := w
                | None -> base.Engine.write addr w)
          }
        in
        Model.clear model;
        if Engine.run_ram ram test ~backgrounds = [] then `Repaired p
        else `Unsuccessful
  end

let delay_penalty p ~org ~word_registers =
  (* the word-register CAM matches in parallel with the row TLB; its
     match line carries the full word address (log2 words bits instead
     of log2 rows), and the total is max of the two matches plus the
     shared encode/drive path *)
  ignore word_registers;
  let row = Tlb_timing.delay p ~org in
  let log2i n =
    let rec go acc k = if k <= 1 then acc else go (acc + 1) (k / 2) in
    go 0 n
  in
  let row_bits = max 1 (log2i (Org.rows org)) in
  let word_bits = max 1 (log2i org.Org.words) in
  let word_match =
    row.Tlb_timing.match_line *. float_of_int word_bits
    /. float_of_int row_bits
  in
  Tlb_timing.total row -. row.Tlb_timing.match_line
  +. max row.Tlb_timing.match_line word_match