module E = Bisram_tech.Electrical
module Pr = Bisram_tech.Process
module Org = Bisram_sram.Org
module Sz = Bisram_spice.Sizing

type estimate = {
  match_line : float;
  priority_encode : float;
  drive_out : float;
}

let total e = e.match_line +. e.priority_encode +. e.drive_out

let log2i n =
  let rec go acc k = if k <= 1 then acc else go (acc + 1) (k / 2) in
  go 0 n

let delay p ~org =
  let e = p.Pr.electrical in
  let feature_m = float_of_int p.Pr.feature_nm *. 1e-9 in
  let lambda_m = float_of_int p.Pr.lambda_nm *. 1e-9 in
  let addr_bits = max 1 (log2i (Org.rows org)) in
  let s = max 1 org.Org.spares in
  (* match line: one compare device per address bit discharges the
     shared line; pseudo-NMOS keeper fights the pull-down, so the
     effective resistance is several times the raw Ron *)
  let ron_cam = 4.0 *. E.ron_nmos e ~w:(4.0 *. lambda_m) ~l:feature_m in
  let c_per_bit =
    E.cdiff e ~feature_m ~w:(4.0 *. lambda_m) *. 2.0 (* two devices per bit *)
  in
  let match_line = 0.69 *. ron_cam *. (float_of_int addr_bits *. c_per_bit) in
  (* entry select: a ripple priority chain across the s entries (a pass
     device per entry), so the Elmore delay grows quadratically with the
     entry count — this is why masking is only guaranteed for 1-4
     spares *)
  let r_pass = E.ron_nmos e ~w:(4.0 *. lambda_m) ~l:feature_m in
  let c_stage = E.cdiff e ~feature_m ~w:(4.0 *. lambda_m) in
  let sf = float_of_int s in
  let priority_encode = 0.69 *. (sf *. (sf +. 1.0) /. 2.0) *. r_pass *. c_stage in
  (* drive the diverted row address onto the decoder input bus: two
     true/complement lines per address bit at ~50 fF each *)
  let bus_cap = float_of_int (2 * addr_bits) *. 50e-15 in
  let driver = Sz.balanced e ~feature_m ~drive:4.0 in
  let drive_out = 0.69 *. Sz.rpull_down e driver *. bus_cap in
  { match_line; priority_encode; drive_out }

let maskable p ~org ~drive =
  let access =
    Bisram_sram.Timing.total (Bisram_sram.Timing.access_time p org ~drive)
  in
  (* the ATD-triggered precharge phase is ~40% of the read cycle *)
  total (delay p ~org) <= 0.40 *. access

let pp ppf t =
  Format.fprintf ppf "match %.3f ns + encode %.3f ns + drive %.3f ns = %.3f ns"
    (t.match_line *. 1e9) (t.priority_encode *. 1e9) (t.drive_out *. 1e9)
    (total t *. 1e9)
