(** Static repairability analysis of fault patterns.

    Two notions from the paper:

    - {b strict} "goodness" (Section VII, used for the yield model): a
      BISR'ed RAM is good iff the number of faulty regular rows is at
      most the number of spare rows {e and} every spare row is
      fault-free — the manufacturer's guarantee, since BISRAMGEN
      performs one round of spare substitution per test cycle and the
      part must stay repairable in the field.

    - {b iterated} repairability (the 2k-pass flow): faulty spares may
      themselves be replaced by later spares, so a pattern is
      repairable iff #faulty regular rows <= #fault-free spares. *)

type verdict = { faulty_regular_rows : int; faulty_spare_rows : int }

val classify :
  Bisram_sram.Org.t -> Bisram_faults.Fault.t list -> verdict

(** Strict: faulty_regular_rows <= spares && faulty_spare_rows = 0. *)
val repairable_strict :
  Bisram_sram.Org.t -> Bisram_faults.Fault.t list -> bool

(** Iterated: faulty_regular_rows <= spares - faulty_spare_rows. *)
val repairable_iterated :
  Bisram_sram.Org.t -> Bisram_faults.Fault.t list -> bool

(** Column-failure detection: a fault pattern whose victims swamp a
    single column across more rows than there are spares cannot be
    repaired by row redundancy (the paper's column-failure discussion);
    returns the offending columns. *)
val swamped_columns :
  Bisram_sram.Org.t -> Bisram_faults.Fault.t list -> int list
