(** Switch-level transient simulation.

    Devices are reduced to conductances: a MOS transistor is a resistor
    of its averaged on-resistance when its gate passes the switching
    threshold, and an open circuit otherwise.  Capacitors are integrated
    with backward Euler.  This reproduces the waveform-level behaviour
    BISRAMGEN needs (delay and rise/fall trends of leaf cells) without a
    full nonlinear solver. *)

type waveform = { times : float array; volts : float array }

type result

(** [simulate circuit ~feature_m ~sources ~tstop ~dt] integrates the
    circuit from 0 to [tstop] with step [dt].  [sources] pin nets to
    time-dependent voltages; the vdd net is pinned to Vdd and ground to
    0 automatically.  Unpinned nets start at 0 V. *)
val simulate :
  Circuit.t ->
  feature_m:float ->
  sources:(Circuit.net * (float -> float)) list ->
  tstop:float ->
  dt:float ->
  result

val waveform : result -> Circuit.net -> waveform

(** Voltage of a net at the final time point. *)
val final : result -> Circuit.net -> float

(** First time the waveform crosses [level] in the given direction;
    [None] if it never does. *)
val crossing : waveform -> level:float -> rising:bool -> float option

(** Propagation delay between the 50%-Vdd crossings of input and output
    waveforms. *)
val prop_delay :
  vdd:float -> input:waveform -> output:waveform -> float option

(** Step input: 0 before [at], Vdd after. *)
val step : vdd:float -> at:float -> float -> float

(** Falling step: Vdd before [at], 0 after. *)
val fall : vdd:float -> at:float -> float -> float
