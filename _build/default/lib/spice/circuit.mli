(** Netlists for the built-in circuit-analysis utilities.

    BISRAMGEN uses "built-in access to SPICE utilities" to size critical
    gates and to extrapolate timing guarantees from leaf cells.  This
    module is the netlist datatype shared by the Elmore estimator
    ({!Elmore}) and the switch-level transient solver ({!Transient}). *)

type net = int
(** Nets are small integers; net 0 is ground. *)

type mos_kind = Nmos | Pmos

type device =
  | Mos of {
      kind : mos_kind;
      gate : net;
      drain : net;
      source : net;
      w : float;  (** drawn width, meters *)
      l : float;  (** drawn length, meters *)
    }
  | Resistor of { a : net; b : net; ohms : float }
  | Capacitor of { a : net; b : net; farads : float }

type t

val create : Bisram_tech.Electrical.t -> t
val electrical : t -> Bisram_tech.Electrical.t

(** Allocate a fresh net, optionally named for reporting. *)
val fresh_net : ?name:string -> t -> net

val gnd : net
val vdd_net : t -> net

val net_name : t -> net -> string
val net_count : t -> int

val add : t -> device -> unit
val devices : t -> device list

(** Total capacitance attached to a net: explicit capacitors to ground
    plus gate capacitance of MOS gates on that net plus diffusion
    capacitance of drains/sources (using the process feature size). *)
val node_capacitance : t -> feature_m:float -> net -> float

val pp : Format.formatter -> t -> unit
