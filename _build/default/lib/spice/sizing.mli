(** Automatic transistor sizing.

    Reproduces the two sizing services the paper describes: (1) for a
    given gate size, the N and P devices are sized to balance rise and
    fall times; (2) critical components (precharge devices, word-line
    drivers) are made larger than minimum to increase drive strength,
    via logical-effort buffer chains. *)

type gate_size = {
  wn : float;  (** NMOS drawn width, meters *)
  wp : float;  (** PMOS drawn width, meters *)
  l : float;  (** drawn channel length, meters *)
}

(** [balanced e ~feature_m ~drive] sizes an inverter whose NMOS is
    [drive] x minimum width (minimum width = 3 lambda = 1.5 features)
    and whose PMOS is widened by the mobility ratio so rise and fall
    times match. *)
val balanced : Bisram_tech.Electrical.t -> feature_m:float -> drive:float -> gate_size

(** Equal-resistance sizing for an [n]-input static NAND pulldown stack:
    series NMOS devices are made [n] x wider. *)
val nand_stack : gate_size -> n:int -> gate_size

(** Equal-resistance sizing for an [n]-input static NOR pullup stack. *)
val nor_stack : gate_size -> n:int -> gate_size

(** [buffer_chain e ~feature_m ~cin ~cload] returns the sizes of a
    minimum-delay inverter chain driving [cload] from an input
    capacitance budget [cin], using the standard fanout-of-4 rule.
    The list is ordered from first (smallest) to last (largest) stage;
    it is never empty. *)
val buffer_chain :
  Bisram_tech.Electrical.t ->
  feature_m:float ->
  cin:float ->
  cload:float ->
  gate_size list

(** Averaged pull-down / pull-up resistances of a sized gate. *)
val rpull_down : Bisram_tech.Electrical.t -> gate_size -> float

val rpull_up : Bisram_tech.Electrical.t -> gate_size -> float

(** Input capacitance of a sized gate (both gate electrodes). *)
val input_cap : Bisram_tech.Electrical.t -> gate_size -> float

(** Intrinsic RC delay estimate of a balanced inverter driving [cload]:
    0.69 * R * (Cself + Cload). *)
val inverter_delay :
  Bisram_tech.Electrical.t -> feature_m:float -> gate_size -> cload:float -> float

val pp : Format.formatter -> gate_size -> unit
