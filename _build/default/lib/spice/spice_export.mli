(** SPICE netlist writer.

    Emits a level-1 SPICE deck for a circuit: .MODEL cards derived from
    the electrical deck, one card per device, the supply source, and
    user-supplied control lines.  This is the "simulation model"
    artifact BISRAMGEN generates alongside layouts. *)

(** [deck ?title ?controls circuit] — a complete SPICE file.
    [controls] lines (e.g. ".TRAN 10p 6n") are emitted before .END. *)
val deck : ?title:string -> ?controls:string list -> Circuit.t -> string
