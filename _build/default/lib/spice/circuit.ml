type net = int
type mos_kind = Nmos | Pmos

type device =
  | Mos of {
      kind : mos_kind;
      gate : net;
      drain : net;
      source : net;
      w : float;
      l : float;
    }
  | Resistor of { a : net; b : net; ohms : float }
  | Capacitor of { a : net; b : net; farads : float }

type t = {
  electrical : Bisram_tech.Electrical.t;
  mutable next_net : int;
  mutable names : (int * string) list;
  mutable devs : device list;
  vdd : int;
}

let gnd = 0

let create electrical =
  { electrical
  ; next_net = 2
  ; names = [ (0, "gnd"); (1, "vdd") ]
  ; devs = []
  ; vdd = 1
  }

let electrical t = t.electrical
let vdd_net t = t.vdd

let fresh_net ?name t =
  let n = t.next_net in
  t.next_net <- n + 1;
  (match name with
  | Some s -> t.names <- (n, s) :: t.names
  | None -> ());
  n

let net_name t n =
  match List.assoc_opt n t.names with
  | Some s -> s
  | None -> Printf.sprintf "n%d" n

let net_count t = t.next_net
let add t d = t.devs <- d :: t.devs
let devices t = List.rev t.devs

let node_capacitance t ~feature_m net =
  let e = t.electrical in
  List.fold_left
    (fun acc d ->
      match d with
      | Capacitor { a; b; farads } ->
          if (a = net && b = gnd) || (b = net && a = gnd) then acc +. farads
          else acc
      | Mos { gate; drain; source; w; l; _ } ->
          let acc =
            if gate = net then acc +. Bisram_tech.Electrical.cgate e ~w ~l
            else acc
          in
          let acc =
            if drain = net then
              acc +. Bisram_tech.Electrical.cdiff e ~feature_m ~w
            else acc
          in
          if source = net then
            acc +. Bisram_tech.Electrical.cdiff e ~feature_m ~w
          else acc
      | Resistor _ -> acc)
    0.0 (devices t)

let pp_device t ppf = function
  | Mos { kind; gate; drain; source; w; l } ->
      Format.fprintf ppf "M%s g=%s d=%s s=%s w=%.2fu l=%.2fu"
        (match kind with Nmos -> "N" | Pmos -> "P")
        (net_name t gate) (net_name t drain) (net_name t source) (w *. 1e6)
        (l *. 1e6)
  | Resistor { a; b; ohms } ->
      Format.fprintf ppf "R %s %s %.1f" (net_name t a) (net_name t b) ohms
  | Capacitor { a; b; farads } ->
      Format.fprintf ppf "C %s %s %.3ffF" (net_name t a) (net_name t b)
        (farads *. 1e15)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (pp_device t))
    (devices t)
