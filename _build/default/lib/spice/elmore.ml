type node = int

type t = {
  rdrive : float;
  mutable parent : (int * float) array;  (* node -> (parent, r of edge) *)
  mutable cap : float array;
  mutable n : int;
}

let create ~rdrive =
  { rdrive; parent = Array.make 8 (-1, 0.0); cap = Array.make 8 0.0; n = 1 }

let ensure t k =
  if k >= Array.length t.cap then begin
    let m = max (2 * Array.length t.cap) (k + 1) in
    let parent' = Array.make m (-1, 0.0) and cap' = Array.make m 0.0 in
    Array.blit t.parent 0 parent' 0 t.n;
    Array.blit t.cap 0 cap' 0 t.n;
    t.parent <- parent';
    t.cap <- cap'
  end

let add_segment t ~parent ~r ~c =
  assert (parent >= 0 && parent < t.n);
  assert (r >= 0.0 && c >= 0.0);
  let id = t.n in
  ensure t id;
  t.parent.(id) <- (parent, r);
  t.cap.(id) <- c;
  t.n <- id + 1;
  id

let add_cap t node c =
  assert (node >= 0 && node < t.n);
  t.cap.(node) <- t.cap.(node) +. c

(* Path from root to [node] as a list of (edge resistance, edge child). *)
let path_to t node =
  let rec go acc k =
    if k = 0 then acc
    else
      let p, r = t.parent.(k) in
      go ((k, r) :: acc) p
  in
  go [] node

(* Total capacitance in the subtree rooted at [k]. *)
let subtree_cap t k =
  (* parents always precede children, so one reverse pass suffices *)
  let acc = Array.copy t.cap in
  for i = t.n - 1 downto 1 do
    let p, _ = t.parent.(i) in
    acc.(p) <- acc.(p) +. acc.(i)
  done;
  ignore k;
  acc

let delay t node =
  assert (node >= 0 && node < t.n);
  let sub = subtree_cap t 0 in
  let total = sub.(0) in
  let along_path =
    List.fold_left (fun acc (child, r) -> acc +. (r *. sub.(child))) 0.0
      (path_to t node)
  in
  (t.rdrive *. total) +. along_path

let max_delay t =
  let best = ref 0.0 in
  for k = 0 to t.n - 1 do
    let d = delay t k in
    if d > !best then best := d
  done;
  !best

let rc_line ~rdrive ~r ~c ~cload =
  (rdrive *. (c +. cload)) +. (r *. ((c /. 2.0) +. cload))
