(** Elmore delay estimation on RC trees.

    An RC tree is rooted at a driver with on-resistance [rdrive]; each
    branch is a resistive segment with a lumped capacitance at its far
    node.  The Elmore delay to a node is the sum over tree edges of
    (edge resistance) x (total downstream capacitance), which upper
    bounds — and in practice tracks — the 50% step response delay. *)

type node = int

type t

(** [create ~rdrive] starts a tree at root node 0 driven through
    [rdrive] ohms. *)
val create : rdrive:float -> t

(** [add_segment t ~parent ~r ~c] grows the tree: a new node connected
    to [parent] through [r] ohms with [c] farads at the new node.
    Returns the new node id. *)
val add_segment : t -> parent:node -> r:float -> c:float -> node

(** Add extra lumped capacitance at an existing node. *)
val add_cap : t -> node -> float -> unit

(** Elmore delay (seconds) from the driver input to the given node. *)
val delay : t -> node -> float

(** Delay to the node with the largest Elmore delay. *)
val max_delay : t -> float

(** Convenience: delay of a uniform distributed RC line with total
    resistance [r] and total capacitance [c], driven by [rdrive] into a
    load [cload]: rdrive*(c + cload) + r*(c/2 + cload). *)
val rc_line : rdrive:float -> r:float -> c:float -> cload:float -> float
