module E = Bisram_tech.Electrical

type gate_size = { wn : float; wp : float; l : float }

let min_width_features = 1.5 (* 3 lambda *)

let balanced e ~feature_m ~drive =
  assert (drive >= 1.0);
  let wn = min_width_features *. feature_m *. drive in
  { wn; wp = wn *. E.beta_ratio e; l = feature_m }

let nand_stack g ~n =
  assert (n >= 1);
  { g with wn = g.wn *. float_of_int n }

let nor_stack g ~n =
  assert (n >= 1);
  { g with wp = g.wp *. float_of_int n }

let input_cap e g = E.cgate e ~w:g.wn ~l:g.l +. E.cgate e ~w:g.wp ~l:g.l
let rpull_down e g = E.ron_nmos e ~w:g.wn ~l:g.l
let rpull_up e g = E.ron_pmos e ~w:g.wp ~l:g.l

let buffer_chain e ~feature_m ~cin ~cload =
  assert (cin > 0.0 && cload >= 0.0);
  let unit = balanced e ~feature_m ~drive:1.0 in
  let cunit = input_cap e unit in
  (* First stage must fit the input budget. *)
  let first_drive = max 1.0 (cin /. cunit) in
  let cfirst = cunit *. first_drive in
  if cload <= cfirst *. 4.0 then [ balanced e ~feature_m ~drive:first_drive ]
  else begin
    let fanout = 4.0 in
    let ratio = cload /. cfirst in
    let stages = max 1 (int_of_float (Float.round (log ratio /. log fanout))) in
    let per_stage = ratio ** (1.0 /. float_of_int stages) in
    List.init (stages + 1) (fun i ->
        let drive = first_drive *. (per_stage ** float_of_int i) in
        balanced e ~feature_m ~drive)
  end

let inverter_delay e ~feature_m g ~cload =
  let r = (rpull_down e g +. rpull_up e g) /. 2.0 in
  let cself =
    E.cdiff e ~feature_m ~w:g.wn +. E.cdiff e ~feature_m ~w:g.wp
  in
  0.69 *. r *. (cself +. cload)

let pp ppf g =
  Format.fprintf ppf "wn=%.2fu wp=%.2fu l=%.2fu" (g.wn *. 1e6) (g.wp *. 1e6)
    (g.l *. 1e6)
