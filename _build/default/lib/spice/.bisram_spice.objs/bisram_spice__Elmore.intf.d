lib/spice/elmore.mli:
