lib/spice/spice_export.ml: Bisram_tech Buffer Circuit List Printf
