lib/spice/elmore.ml: Array List
