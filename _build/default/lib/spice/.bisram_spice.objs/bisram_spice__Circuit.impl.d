lib/spice/circuit.ml: Bisram_tech Format List Printf
