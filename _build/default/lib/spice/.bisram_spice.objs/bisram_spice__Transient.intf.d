lib/spice/transient.mli: Circuit
