lib/spice/sizing.mli: Bisram_tech Format
