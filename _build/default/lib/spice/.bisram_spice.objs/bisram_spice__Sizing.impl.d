lib/spice/sizing.ml: Bisram_tech Float Format List
