lib/spice/spice_export.mli: Circuit
