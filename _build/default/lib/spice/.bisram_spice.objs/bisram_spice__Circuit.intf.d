lib/spice/circuit.mli: Bisram_tech Format
