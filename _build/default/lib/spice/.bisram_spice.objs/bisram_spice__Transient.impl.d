lib/spice/transient.ml: Array Bisram_tech Circuit List
