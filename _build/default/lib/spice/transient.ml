type waveform = { times : float array; volts : float array }
type result = { nets : int; samples : waveform array }

(* Dense Gaussian elimination with partial pivoting; systems here are
   leaf-cell sized (tens of nets), so O(n^3) per step is fine. *)
let solve a b =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if abs_float a.(r).(col) > abs_float a.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tb
    end;
    let d = a.(col).(col) in
    if abs_float d < 1e-30 then failwith "Transient.solve: singular matrix";
    for r = col + 1 to n - 1 do
      let f = a.(r).(col) /. d in
      if f <> 0.0 then begin
        for c = col to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  x

let simulate circuit ~feature_m ~sources ~tstop ~dt =
  let e = Circuit.electrical circuit in
  let vdd = e.Bisram_tech.Electrical.vdd in
  let n = Circuit.net_count circuit in
  let nsteps = int_of_float (ceil (tstop /. dt)) in
  let pinned = Array.make n None in
  pinned.(Circuit.gnd) <- Some (fun _ -> 0.0);
  pinned.(Circuit.vdd_net circuit) <- Some (fun _ -> vdd);
  List.iter (fun (net, f) -> pinned.(net) <- Some f) sources;
  let devs = Circuit.devices circuit in
  (* Per-net self-capacitance: everything to ground (including MOS gate
     and diffusion parasitics); floating caps handled separately. *)
  let cself =
    Array.init n (fun k ->
        if k = Circuit.gnd then 0.0
        else Circuit.node_capacitance circuit ~feature_m k)
  in
  let v = Array.make n 0.0 in
  v.(Circuit.vdd_net circuit) <- vdd;
  Array.iteri
    (fun k f -> match f with Some f -> v.(k) <- f 0.0 | None -> ())
    pinned;
  let out =
    Array.init n (fun _ ->
        { times = Array.make (nsteps + 1) 0.0
        ; volts = Array.make (nsteps + 1) 0.0
        })
  in
  for k = 0 to n - 1 do
    out.(k).volts.(0) <- v.(k)
  done;
  let half = vdd /. 2.0 in
  for step = 1 to nsteps do
    let t = float_of_int step *. dt in
    let g = Array.make_matrix n n 0.0 in
    let rhs = Array.make n 0.0 in
    let stamp_conductance a b cond =
      g.(a).(a) <- g.(a).(a) +. cond;
      g.(b).(b) <- g.(b).(b) +. cond;
      g.(a).(b) <- g.(a).(b) -. cond;
      g.(b).(a) <- g.(b).(a) -. cond
    in
    (* companion model of a capacitor under backward Euler *)
    let stamp_cap a b farads =
      let gc = farads /. dt in
      stamp_conductance a b gc;
      let ic = gc *. (v.(a) -. v.(b)) in
      rhs.(a) <- rhs.(a) +. ic;
      rhs.(b) <- rhs.(b) -. ic
    in
    List.iter
      (fun d ->
        match d with
        | Circuit.Resistor { a; b; ohms } ->
            if ohms > 0.0 then stamp_conductance a b (1.0 /. ohms)
        | Circuit.Capacitor { a; b; farads } ->
            if a <> Circuit.gnd && b <> Circuit.gnd then stamp_cap a b farads
            (* grounded caps already counted in cself *)
        | Circuit.Mos { kind; gate; drain; source; w; l } ->
            let on =
              match kind with
              | Circuit.Nmos -> v.(gate) > half
              | Circuit.Pmos -> v.(gate) < half
            in
            if on then
              let ron =
                match kind with
                | Circuit.Nmos -> Bisram_tech.Electrical.ron_nmos e ~w ~l
                | Circuit.Pmos -> Bisram_tech.Electrical.ron_pmos e ~w ~l
              in
              stamp_conductance drain source (1.0 /. ron))
      devs;
    (* grounded self-capacitances *)
    for k = 0 to n - 1 do
      if cself.(k) > 0.0 then begin
        let gc = cself.(k) /. dt in
        g.(k).(k) <- g.(k).(k) +. gc;
        rhs.(k) <- rhs.(k) +. (gc *. v.(k))
      end
    done;
    (* pin driven nets by row replacement *)
    for k = 0 to n - 1 do
      match pinned.(k) with
      | Some f ->
          for c = 0 to n - 1 do
            g.(k).(c) <- 0.0
          done;
          g.(k).(k) <- 1.0;
          rhs.(k) <- f t
      | None ->
          (* a truly floating net (no G, no C) gets a tiny leak to gnd so
             the matrix stays nonsingular *)
          if g.(k).(k) = 0.0 then g.(k).(k) <- 1e-12
    done;
    let v' = solve g rhs in
    Array.blit v' 0 v 0 n;
    for k = 0 to n - 1 do
      out.(k).times.(step) <- t;
      out.(k).volts.(step) <- v.(k)
    done
  done;
  { nets = n; samples = out }

let waveform r net =
  assert (net >= 0 && net < r.nets);
  r.samples.(net)

let final r net =
  let w = waveform r net in
  w.volts.(Array.length w.volts - 1)

let crossing w ~level ~rising =
  let n = Array.length w.times in
  let rec go i =
    if i >= n then None
    else
      let prev = w.volts.(i - 1) and cur = w.volts.(i) in
      let crossed =
        if rising then prev < level && cur >= level
        else prev > level && cur <= level
      in
      if crossed then
        (* linear interpolation within the step *)
        let frac = if cur = prev then 0.0 else (level -. prev) /. (cur -. prev) in
        Some (w.times.(i - 1) +. (frac *. (w.times.(i) -. w.times.(i - 1))))
      else go (i + 1)
  in
  if n < 2 then None else go 1

let prop_delay ~vdd ~input ~output =
  let half = vdd /. 2.0 in
  let cross w =
    match crossing w ~level:half ~rising:true with
    | Some t -> Some t
    | None -> crossing w ~level:half ~rising:false
  in
  match (cross input, cross output) with
  | Some ti, Some to_ -> Some (to_ -. ti)
  | _ -> None

let step ~vdd ~at t = if t < at then 0.0 else vdd
let fall ~vdd ~at t = if t < at then vdd else 0.0
