(* Bench trajectory page: render BENCH_history.jsonl — the one-line-
   per-baseline-regeneration trajectory file — into a static,
   self-contained HTML page with a sparkline and value table per
   metric, plus a latest-vs-baseline regression verdict.

   The verdict reuses bench_check's gate exactly (floor =
   baseline * (1 - tolerance), 35% by default, same two headline
   figures) so the page and the CI gate can never disagree about what
   counts as a regression.  --check additionally makes the exit status
   carry the verdict (1 on regression) so the renderer doubles as a
   trajectory-level CI gate; --advisory downgrades that to a warning
   for noisy shared boxes, mirroring bench_check.

   History lines are read through Bisram_obs.History: malformed lines
   (conflict markers, truncated appends) are skipped with a warning
   and rendered as a damage note on the page, never a crash. *)

module J = Bisram_campaign.Report
module History = Bisram_obs.History

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let number = function
  | Some (J.Int i) -> Some (float_of_int i)
  | Some (J.Float f) -> Some f
  | _ -> None

let jstring = function Some (J.String s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* tracked metrics *)

type dir = Higher_better | Lower_better

type metric = {
  m_key : string;  (* field name in a history record *)
  m_label : string;
  m_unit : string;
  m_dir : dir;
  m_gated : bool;  (* compared against the committed baseline *)
}

let metrics =
  [ { m_key = "campaign_trials_per_sec_jobs1"
    ; m_label = "Campaign throughput, jobs = 1"
    ; m_unit = "trials/s"
    ; m_dir = Higher_better
    ; m_gated = true
    }
  ; { m_key = "lanes62_speedup"
    ; m_label = "Lane batching speedup, 62 lanes vs scalar"
    ; m_unit = "x"
    ; m_dir = Higher_better
    ; m_gated = true
    }
  ; { m_key = "estimator_seconds_to_ci_naive"
    ; m_label = "Estimator: seconds to target CI, naive sampling"
    ; m_unit = "s"
    ; m_dir = Lower_better
    ; m_gated = false
    }
  ; { m_key = "estimator_seconds_to_ci_stratified"
    ; m_label = "Estimator: seconds to target CI, stratified proposal"
    ; m_unit = "s"
    ; m_dir = Lower_better
    ; m_gated = false
    }
  ; { m_key = "estimator_seconds_to_ci_importance"
    ; m_label = "Estimator: seconds to target CI, importance sampling"
    ; m_unit = "s"
    ; m_dir = Lower_better
    ; m_gated = false
    }
  ]

(* (record index, value) series for one metric — records missing the
   field (older schemas) keep their x slot so trend lines stay aligned
   across metrics *)
let series records key =
  List.mapi (fun i r -> (i, number (J.member key r))) records
  |> List.filter_map (fun (i, v) ->
         match v with Some v -> Some (i, v) | None -> None)

(* ------------------------------------------------------------------ *)
(* baseline figures (same extraction as bench_check) *)

let baseline_tps j ~section ~key ~level =
  match J.member section j with
  | None -> None
  | Some s -> (
      match J.member "runs" s with
      | Some (J.List runs) ->
          List.find_map
            (fun r ->
              match number (J.member key r) with
              | Some l when int_of_float l = level ->
                  number (J.member "trials_per_sec" r)
              | _ -> None)
            runs
      | _ -> None)

let baseline_lane_speedup j =
  match J.member "lanes" j with
  | None -> None
  | Some s -> (
      match J.member "runs" s with
      | Some (J.List runs) ->
          List.find_map
            (fun r ->
              match J.member "lanes" r with
              | Some (J.Int 62) -> number (J.member "speedup_vs_scalar" r)
              | _ -> None)
            runs
      | _ -> None)

let baseline_value baseline key =
  match key with
  | "campaign_trials_per_sec_jobs1" ->
      Option.bind baseline (fun b ->
          baseline_tps b ~section:"campaign" ~key:"jobs" ~level:1)
  | "lanes62_speedup" -> Option.bind baseline baseline_lane_speedup
  | _ -> None

(* bench_check's gate, verbatim: a gated figure regresses when the
   fresh value falls below baseline * (1 - tolerance) *)
type verdict = Ok_within of float | Regressed of float | Ungated

let gate ~tolerance ~baseline ~latest =
  match (baseline, latest) with
  | Some b, Some c ->
      let floor = b *. (1.0 -. tolerance) in
      if c >= floor then Ok_within floor else Regressed floor
  | _ -> Ungated

(* ------------------------------------------------------------------ *)
(* HTML / SVG rendering *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum v =
  if Float.is_integer v && Float.abs v < 1e6 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

(* inline SVG sparkline over (index, value) points; the x axis is the
   record index so gaps from older schemas show as gaps, not kinks *)
let sparkline pts ~n =
  let w = 260.0 and h = 56.0 and pad = 6.0 in
  match pts with
  | [] -> "<span class=\"nodata\">no data</span>"
  | pts ->
      let vals = List.map snd pts in
      let lo = List.fold_left Float.min infinity vals in
      let hi = List.fold_left Float.max neg_infinity vals in
      let span = if hi -. lo > 0.0 then hi -. lo else 1.0 in
      let x i =
        if n <= 1 then w /. 2.0
        else pad +. (float_of_int i /. float_of_int (n - 1) *. (w -. (2.0 *. pad)))
      in
      let y v = h -. pad -. ((v -. lo) /. span *. (h -. (2.0 *. pad))) in
      let coords =
        String.concat " "
          (List.map
             (fun (i, v) -> Printf.sprintf "%.1f,%.1f" (x i) (y v))
             pts)
      in
      let last_i, last_v = List.nth pts (List.length pts - 1) in
      Printf.sprintf
        "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" \
         class=\"spark\"><polyline points=\"%s\" fill=\"none\" \
         stroke=\"#2b6cb0\" stroke-width=\"1.5\"/><circle cx=\"%.1f\" \
         cy=\"%.1f\" r=\"2.5\" fill=\"#2b6cb0\"/></svg>"
        w h w h coords (x last_i) (y last_v)

let style =
  {|body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:70em;
color:#1a202c;padding:0 1em}
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em}
table{border-collapse:collapse;margin:0.5em 0}
td,th{border:1px solid #cbd5e0;padding:0.25em 0.6em;text-align:right}
th{background:#edf2f7;text-align:left}
td.utc,th.utc{text-align:left;font-family:ui-monospace,monospace;font-size:0.9em}
.metric{display:flex;gap:1.5em;align-items:center;border:1px solid #e2e8f0;
border-radius:6px;padding:0.7em 1em;margin:0.6em 0}
.metric .name{flex:1}
.metric .latest{font-size:1.2em;font-weight:600;min-width:8em;text-align:right}
.ok{color:#276749}.bad{color:#c53030;font-weight:700}
.badge{border-radius:4px;padding:0.1em 0.5em;font-size:0.85em}
.badge.ok{background:#c6f6d5}.badge.bad{background:#fed7d7}
.badge.none{background:#edf2f7;color:#4a5568}
.nodata{color:#a0aec0;font-style:italic}
.warn{background:#fffaf0;border:1px solid #ed8936;border-radius:6px;
padding:0.5em 1em;margin:1em 0}
footer{margin-top:3em;color:#718096;font-size:0.85em}|}

let render ~history_path ~baseline_path ~tolerance ~records ~warnings
    ~verdicts =
  let b = Buffer.create 16384 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let n = List.length records in
  let latest_utc =
    match List.rev records with
    | last :: _ -> Option.value ~default:"?" (jstring (J.member "utc" last))
    | [] -> "no records"
  in
  add "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n";
  add "<title>bisram bench trajectory</title>\n<style>%s</style></head>\n"
    style;
  add "<body>\n<h1>bisram bench trajectory</h1>\n";
  add
    "<p>%d full bench run(s) recorded in <code>%s</code>; latest %s.  Gated \
     figures are compared against <code>%s</code> with the bench_check \
     tolerance of %.0f%%.</p>\n"
    n (html_escape history_path) (html_escape latest_utc)
    (html_escape baseline_path) (tolerance *. 100.0);
  if warnings <> [] then begin
    add "<div class=\"warn\"><strong>history damage</strong> — %d line(s) \
         skipped:<ul>" (List.length warnings);
    List.iter (fun w -> add "<li><code>%s</code></li>" (html_escape w)) warnings;
    add "</ul></div>\n"
  end;
  add "<h2>Metrics</h2>\n";
  List.iter
    (fun m ->
      let pts = series records m.m_key in
      let latest = match List.rev pts with (_, v) :: _ -> Some v | [] -> None in
      let badge =
        match List.assoc_opt m.m_key verdicts with
        | Some (Ok_within floor) ->
            Printf.sprintf
              "<span class=\"badge ok\">ok (floor %s %s)</span>" (fnum floor)
              m.m_unit
        | Some (Regressed floor) ->
            Printf.sprintf
              "<span class=\"badge bad\">REGRESSED (floor %s %s)</span>"
              (fnum floor) m.m_unit
        | Some Ungated | None ->
            "<span class=\"badge none\">trend only</span>"
      in
      add
        "<div class=\"metric\"><div class=\"name\"><strong>%s</strong><br>%s \
         · %s</div>%s<div class=\"latest\">%s</div></div>\n"
        (html_escape m.m_label)
        (html_escape
           (match m.m_dir with
           | Higher_better -> "higher is better"
           | Lower_better -> "lower is better"))
        badge (sparkline pts ~n)
        (match latest with
        | Some v -> Printf.sprintf "%s %s" (fnum v) (html_escape m.m_unit)
        | None -> "<span class=\"nodata\">—</span>"))
    metrics;
  add "<h2>All records</h2>\n<table><tr><th class=\"utc\">utc</th>";
  List.iter (fun m -> add "<th>%s</th>" (html_escape m.m_key)) metrics;
  add "</tr>\n";
  List.iter
    (fun r ->
      add "<tr><td class=\"utc\">%s</td>"
        (html_escape (Option.value ~default:"?" (jstring (J.member "utc" r))));
      List.iter
        (fun m ->
          match number (J.member m.m_key r) with
          | Some v -> add "<td>%s</td>" (fnum v)
          | None -> add "<td class=\"nodata\">—</td>")
        metrics;
      add "</tr>\n")
    records;
  add "</table>\n";
  add
    "<footer>Generated by bench_page from %s.  Only full (non-smoke, \
     non-quick) bench runs append history; smoke and quick numbers are \
     noise by design.</footer>\n"
    (html_escape history_path);
  add "</body></html>\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let () =
  let history = ref "BENCH_history.jsonl" in
  let baseline = ref "BENCH_campaign.json" in
  let out = ref "bench_page.html" in
  let tolerance = ref 0.35 in
  let check = ref false in
  let advisory = ref false in
  let rec parse = function
    | [] -> ()
    | "--history" :: p :: rest ->
        history := p;
        parse rest
    | "--baseline" :: p :: rest ->
        baseline := p;
        parse rest
    | "-o" :: p :: rest ->
        out := p;
        parse rest
    | "--tolerance" :: t :: rest ->
        tolerance := float_of_string t;
        parse rest
    | "--check" :: rest ->
        check := true;
        parse rest
    | "--advisory" :: rest ->
        advisory := true;
        parse rest
    | a :: _ ->
        Printf.eprintf "bench_page: unknown argument %S\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !tolerance <= 0.0 || !tolerance >= 1.0 then begin
    Printf.eprintf "bench_page: --tolerance must be in (0, 1)\n";
    exit 2
  end;
  let records, warnings = History.read ~path:!history in
  List.iter (Printf.eprintf "bench_page: %s\n") warnings;
  let base =
    if Sys.file_exists !baseline then
      match J.of_string (read_file !baseline) with
      | Ok j -> Some j
      | Error e ->
          Printf.eprintf "bench_page: baseline %s: unparseable JSON: %s\n"
            !baseline e;
          None
    else begin
      Printf.eprintf
        "bench_page: baseline %s missing; rendering trends ungated\n"
        !baseline;
      None
    end
  in
  let latest_of key =
    match List.rev (series records key) with
    | (_, v) :: _ -> Some v
    | [] -> None
  in
  let verdicts =
    List.filter_map
      (fun m ->
        if not m.m_gated then None
        else
          Some
            ( m.m_key
            , gate ~tolerance:!tolerance
                ~baseline:(baseline_value base m.m_key)
                ~latest:(latest_of m.m_key) ))
      metrics
  in
  let regressed =
    List.filter_map
      (function key, Regressed _ -> Some key | _ -> None)
      verdicts
  in
  List.iter
    (fun (key, v) ->
      match v with
      | Ok_within floor ->
          Printf.printf "bench_page: %-32s latest %10s  floor %10s  ok\n" key
            (Option.fold ~none:"-" ~some:fnum (latest_of key))
            (fnum floor)
      | Regressed floor ->
          Printf.printf "bench_page: %-32s latest %10s  floor %10s  REGRESSED\n"
            key
            (Option.fold ~none:"-" ~some:fnum (latest_of key))
            (fnum floor)
      | Ungated ->
          Printf.printf
            "bench_page: %-32s not present on both sides; trend only\n" key)
    verdicts;
  let html =
    render ~history_path:!history ~baseline_path:!baseline
      ~tolerance:!tolerance ~records ~warnings ~verdicts
  in
  let oc = open_out !out in
  output_string oc html;
  close_out oc;
  Printf.printf "bench_page: wrote %s (%d record(s))\n" !out
    (List.length records);
  if regressed <> [] then
    if !check && not !advisory then begin
      flush stdout;
      Printf.eprintf
        "bench_page: %s regressed beyond %.0f%% tolerance\n"
        (String.concat ", " regressed)
        (!tolerance *. 100.0);
      exit 1
    end
    else
      Printf.printf
        "bench_page: regression beyond %.0f%% tolerance%s\n"
        (!tolerance *. 100.0)
        (if !check then " (advisory mode: not failing the build)" else "")
