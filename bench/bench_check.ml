(* Bench regression gate: compare a fresh bench run against the
   committed baseline and fail when throughput regressed beyond a
   noise tolerance.

   Only the two headline campaign throughput figures are gated —
   scalar trials_per_sec at jobs = 1 and lane-batched trials_per_sec
   at the widest lane level — because they are the numbers the
   campaign scheduler work is meant to protect and the only ones
   stable enough to gate on (kernel ns/op and parallel speedup are
   too machine-shaped).  The tolerance is deliberately wide (35% by
   default): a shared CI box is noisy, and the gate exists to catch
   an accidental 2x slowdown, not a 5% wobble.

   --advisory turns failures into warnings (exit 0) so low-core or
   heavily shared machines can keep the check in `make ci` without
   flaking the whole pipeline; the comparison is still printed. *)

module J = Bisram_campaign.Report

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_file label path =
  match J.of_string (read_file path) with
  | Ok j -> j
  | Error e ->
      Printf.eprintf "bench_check: %s %s: unparseable JSON: %s\n" label path e;
      exit 2
  | exception Sys_error e ->
      Printf.eprintf "bench_check: %s: %s\n" label e;
      exit 2

let number = function
  | Some (J.Int i) -> Some (float_of_int i)
  | Some (J.Float f) -> Some f
  | _ -> None

(* trials_per_sec of the run whose [key] field equals [level], from
   the [runs] list of the named section; None when absent (skipped
   level, older schema, --quick artifact without the section) *)
let tps j ~section ~key ~level =
  match J.member section j with
  | None -> None
  | Some s -> (
      match J.member "runs" s with
      | Some (J.List runs) ->
          List.find_map
            (fun r ->
              match number (J.member key r) with
              | Some l when int_of_float l = level ->
                  number (J.member "trials_per_sec" r)
              | _ -> None)
            runs
      | _ -> None)

let () =
  let baseline = ref "BENCH_campaign.json" in
  let fresh = ref "" in
  let tolerance = ref 0.35 in
  let advisory = ref false in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: p :: rest ->
        baseline := p;
        parse rest
    | "--fresh" :: p :: rest ->
        fresh := p;
        parse rest
    | "--tolerance" :: t :: rest ->
        tolerance := float_of_string t;
        parse rest
    | "--advisory" :: rest ->
        advisory := true;
        parse rest
    | a :: _ ->
        Printf.eprintf "bench_check: unknown argument %S\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !fresh = "" then begin
    Printf.eprintf "bench_check: --fresh FILE is required\n";
    exit 2
  end;
  if !tolerance <= 0.0 || !tolerance >= 1.0 then begin
    Printf.eprintf "bench_check: --tolerance must be in (0, 1)\n";
    exit 2
  end;
  let base = parse_file "baseline" !baseline in
  let cur = parse_file "fresh" !fresh in
  let failed = ref false in
  let gate name b c =
    match (b, c) with
    | Some b, Some c ->
        let floor = b *. (1.0 -. !tolerance) in
        let ok = c >= floor in
        Printf.printf
          "bench_check: %-28s baseline %10.1f/s  fresh %10.1f/s  floor \
           %10.1f/s  %s\n"
          name b c floor
          (if ok then "ok" else "REGRESSED");
        if not ok then failed := true
    | _ ->
        (* a figure absent on either side is reported, never fatal:
           baselines predating a section must not brick CI *)
        Printf.printf "bench_check: %-28s not present on both sides; skipped\n"
          name
  in
  gate "campaign jobs=1"
    (tps base ~section:"campaign" ~key:"jobs" ~level:1)
    (tps cur ~section:"campaign" ~key:"jobs" ~level:1);
  gate "lanes=62 jobs=1"
    (tps base ~section:"lanes" ~key:"lanes" ~level:62)
    (tps cur ~section:"lanes" ~key:"lanes" ~level:62);
  if !failed then
    if !advisory then begin
      Printf.printf
        "bench_check: regression beyond %.0f%% tolerance (advisory mode: \
         not failing the build)\n"
        (!tolerance *. 100.0);
      exit 0
    end
    else begin
      flush stdout;
      Printf.eprintf
        "bench_check: trials_per_sec regressed beyond %.0f%% tolerance\n"
        (!tolerance *. 100.0);
      exit 1
    end
  else print_endline "bench_check: throughput within tolerance"
