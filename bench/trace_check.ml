(* Structural validator for the telemetry exporters, used by
   `make trace-smoke`: parses a Chrome trace file and a metrics file
   produced by `bisramgen campaign --trace/--metrics` and checks the
   invariants every downstream consumer (Perfetto, the bench harness,
   ad-hoc jq) relies on.  Exit 0 on success, 1 with a message on the
   first violation. *)

module J = Bisram_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("trace_check: " ^ m); exit 1) fmt

let read_file path =
  match open_in path with
  | exception Sys_error e -> fail "cannot open %s: %s" path e
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

let parse ~what path =
  match J.of_string (read_file path) with
  | Ok j -> j
  | Error e -> fail "%s file %s is not valid JSON: %s" what path e

let member_exn ~what key j =
  match J.member key j with
  | Some v -> v
  | None -> fail "%s lacks required key %S" what key

(* ------------------------------------------------------------------ *)

let check_trace path =
  let j = parse ~what:"trace" path in
  let events =
    match member_exn ~what:"trace" "traceEvents" j with
    | J.List l -> l
    | _ -> fail "traceEvents is not an array"
  in
  if events = [] then fail "traceEvents is empty";
  let saw_trial = ref false in
  List.iteri
    (fun i ev ->
      let get key = member_exn ~what:(Printf.sprintf "traceEvents[%d]" i) key ev in
      let name =
        match get "name" with
        | J.String s -> s
        | _ -> fail "traceEvents[%d].name is not a string" i
      in
      let ph =
        match get "ph" with
        | J.String s -> s
        | _ -> fail "traceEvents[%d].ph is not a string" i
      in
      (match get "pid" with
      | J.Int _ -> ()
      | _ -> fail "traceEvents[%d].pid is not an integer" i);
      (match get "tid" with
      | J.Int _ -> ()
      | _ -> fail "traceEvents[%d].tid is not an integer" i);
      match ph with
      | "X" ->
          (match get "ts" with
          | J.Int _ | J.Float _ -> ()
          | _ -> fail "traceEvents[%d].ts is not a number" i);
          (match get "dur" with
          | J.Int _ | J.Float _ -> ()
          | _ -> fail "traceEvents[%d].dur is not a number" i);
          (match member_exn ~what:"trace" "cat" ev with
          | J.String "campaign" when name = "trial" -> saw_trial := true
          | _ -> ())
      | "M" -> ()
      | other -> fail "traceEvents[%d].ph is %S (expected \"X\" or \"M\")" i other)
    events;
  if not !saw_trial then
    fail "trace has no complete event named \"trial\" in category \"campaign\"";
  Printf.printf "trace_check: %s OK (%d events)\n" path (List.length events)

(* ------------------------------------------------------------------ *)

let check_metrics path =
  let j = parse ~what:"metrics" path in
  (match member_exn ~what:"metrics" "schema" j with
  | J.String "bisram-metrics/1" -> ()
  | J.String s -> fail "metrics schema is %S, expected \"bisram-metrics/1\"" s
  | _ -> fail "metrics schema is not a string");
  let counters = member_exn ~what:"metrics" "counters" j in
  let histograms = member_exn ~what:"metrics" "histograms" j in
  let require_counter name =
    match J.member name counters with
    | Some (J.Int _) -> ()
    | Some _ -> fail "counter %S is not an integer" name
    | None -> fail "metrics lack counter %S" name
  in
  (* always present in any campaign run: trials always tick, the model
     always serves reads, and worker 0 (the calling domain) always
     reports pool utilization *)
  require_counter "campaign.trials";
  require_counter "model.fast_reads";
  require_counter "pool.worker0.busy_ns";
  (match J.member "campaign.cycles" histograms with
  | Some (J.Obj _) -> ()
  | Some _ -> fail "histogram campaign.cycles is not an object"
  | None -> fail "metrics lack histogram \"campaign.cycles\"");
  Printf.printf "trace_check: %s OK\n" path

(* ------------------------------------------------------------------ *)

let () =
  let trace = ref None and metrics = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse_args rest
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        parse_args rest
    | a :: _ -> fail "unknown argument %S (usage: trace_check --trace FILE --metrics FILE)" a
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !trace = None && !metrics = None then
    fail "nothing to check (usage: trace_check --trace FILE --metrics FILE)";
  Option.iter check_trace !trace;
  Option.iter check_metrics !metrics
