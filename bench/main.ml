(* The experiment harness: regenerates every table and figure of the
   paper's evaluation, then runs Bechamel micro-benchmarks of the core
   kernels.  See EXPERIMENTS.md for the paper-vs-measured record. *)

module Org = Bisram_sram.Org
module Word = Bisram_sram.Word
module Model = Bisram_sram.Model
module Timing = Bisram_sram.Timing
module F = Bisram_faults.Fault
module I = Bisram_faults.Injection
module March = Bisram_bist.March
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module Trpla = Bisram_bist.Trpla
module Engine = Bisram_bist.Engine
module Controller = Bisram_bist.Controller
module Coverage = Bisram_bist.Coverage
module Tlb_timing = Bisram_bisr.Tlb_timing
module Repair = Bisram_bisr.Repair
module Stapper = Bisram_yield.Stapper
module Repairable = Bisram_yield.Repairable
module Rel = Bisram_rel.Reliability
module Chips = Bisram_cost.Chips
module Mpr = Bisram_cost.Mpr
module Config = Bisram_core.Config
module Compiler = Bisram_core.Compiler
module Floorplan = Bisram_pr.Floorplan
module Placer = Bisram_pr.Placer
module Pr = Bisram_tech.Process

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table I: BISR area overhead with four spare rows, process CDA 0.7u *)

let table1_configs =
  (* (words, bpw, bpc) spanning the paper's realistic 64 Kb - 4 Mb *)
  [ (16384, 4, 4) (* 64 Kb narrow *)
  ; (8192, 16, 8) (* 128 Kb *)
  ; (16384, 16, 8) (* 256 Kb *)
  ; (4096, 128, 8) (* 512 Kb  (Fig. 6) *)
  ; (4096, 256, 16) (* 1 Mb   (Fig. 7) *)
  ; (8192, 256, 16) (* 2 Mb *)
  ; (16384, 256, 16) (* 4 Mb *)
  ]

let table1 () =
  section "Table I: BISR area overhead, 4 spare rows, process CDA.7u3m1p";
  Printf.printf "%8s %5s %5s | %7s | %9s %9s | %8s %8s\n" "words" "bpw" "bpc"
    "size" "base mm2" "logic mm2" "logic%" "total%";
  List.iter
    (fun (words, bpw, bpc) ->
      let cfg =
        Config.make ~process:Pr.cda_07u3m1p ~words ~bpw ~bpc ~spares:4 ()
      in
      let d = Compiler.compile cfg in
      let a = d.Compiler.area in
      let kb = Org.kilobits cfg.Config.org in
      Printf.printf "%8d %5d %5d | %5.0fKb | %9.3f %9.4f | %7.2f%% %7.2f%%\n"
        words bpw bpc kb a.Compiler.base_mm2 a.Compiler.logic_mm2
        a.Compiler.overhead_logic_pct a.Compiler.overhead_total_pct)
    table1_configs;
  Printf.printf
    "(paper: BIST+BISR logic overhead at most 7%% for realistic sizes)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 4: yield vs number of defects; 1024 rows, bpc = bpw = 4 *)

let fig4_geometry spares =
  if spares = 0 then Repairable.bare ~regular_rows:1024
  else begin
    (* growth factor and logic fraction measured from the compiled
       module of the same organization *)
    let cfg =
      Config.make ~process:Pr.cda_07u3m1p ~words:4096 ~bpw:4 ~bpc:4 ~spares ()
    in
    let a = (Compiler.compile cfg).Compiler.area in
    Repairable.make ~regular_rows:1024 ~spares
      ~logic_fraction:(a.Compiler.logic_mm2 /. a.Compiler.module_mm2)
      ~growth_factor:(max 1.0 a.Compiler.growth_factor)
  end

let fig4 () =
  section "Fig. 4: yield vs mean defect count (1024 rows, bpc=4, bpw=4)";
  let alpha = 2.0 in
  let geoms = List.map (fun s -> (s, fig4_geometry s)) [ 0; 4; 8; 16 ] in
  Printf.printf "%6s" "n";
  List.iter (fun (s, _) -> Printf.printf "  %8s" (Printf.sprintf "s=%d" s)) geoms;
  Printf.printf "\n";
  List.iter
    (fun n ->
      Printf.printf "%6.1f" n;
      List.iter
        (fun (_, g) ->
          Printf.printf "  %8.4f" (Repairable.yield g ~mean_defects:n ~alpha))
        geoms;
      Printf.printf "\n")
    [ 0.0; 1.0; 2.0; 4.0; 6.0; 8.0; 10.0; 15.0; 20.0; 30.0; 40.0; 50.0; 60.0 ];
  Printf.printf "(alpha = %.1f; curves ordered s=16 > s=8 > s=4 > none for\n"
    alpha;
  Printf.printf " meaningful defect counts, with the slight inversion near\n";
  Printf.printf " n=0 where extra spares are only extra fault sites)\n"

(* Clustering-factor sensitivity of the Fig. 4 conclusions. *)
let fig4_alpha_sensitivity () =
  section "Fig. 4 sensitivity: clustering factor alpha";
  let g4 = fig4_geometry 4 and g0 = fig4_geometry 0 in
  Printf.printf "%7s" "alpha";
  List.iter (fun n -> Printf.printf "  %14s" (Printf.sprintf "gain @ n=%g" n))
    [ 2.0; 10.0; 30.0 ];
  Printf.printf "\n";
  List.iter
    (fun alpha ->
      Printf.printf "%7.1f" alpha;
      List.iter
        (fun n ->
          let y4 = Repairable.yield g4 ~mean_defects:n ~alpha in
          let y0 = Repairable.yield g0 ~mean_defects:n ~alpha in
          Printf.printf "  %13.1fx" (y4 /. y0))
        [ 2.0; 10.0; 30.0 ];
      Printf.printf "\n")
    [ 0.5; 1.0; 2.0; 5.0; 100.0 ];
  Printf.printf
    "(the BISR yield gain of 4 spares over none, across clustering\n\
    \ assumptions: heavier clustering (small alpha) shrinks the gain —\n\
    \ clustered defects concentrate in few dies — but BISR wins everywhere;\n\
    \ alpha=100 is effectively the Poisson limit)\n"

(* Cross-validation: the analytic curve against the actual two-pass
   BIST/BISR flow run on fault-injected behavioural RAMs. *)
let fig4_flow_validation () =
  section "Fig. 4 cross-check: analytic yield vs simulated two-pass flow";
  let org = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:4 () in
  let g = fig4_geometry 4 in
  let growth = g.Repairable.growth_factor
  and flogic = g.Repairable.logic_fraction in
  let alpha = 2.0 in
  let rng = Random.State.make [| 1999; 7 |] in
  let backgrounds = Datagen.required_backgrounds ~bpw:4 in
  let trials = 60 in
  Printf.printf "%6s  %10s  %10s\n" "n" "analytic" "simulated";
  List.iter
    (fun n ->
      let analytic = Repairable.yield g ~mean_defects:n ~alpha in
      let good = ref 0 in
      for _ = 1 to trials do
        (* same fault-count model as the analytic curve: mean scaled by
           the growth factor; a fault hits the BIST/BISR logic with the
           logic-area probability and is then fatal *)
        let count =
          Bisram_faults.Defect.negative_binomial rng ~mean:(n *. growth)
            ~alpha
        in
        let logic_kill = ref false in
        let array_faults = ref 0 in
        for _ = 1 to count do
          if Random.State.float rng 1.0 < flogic then logic_kill := true
          else incr array_faults
        done;
        if not !logic_kill then begin
          let faults =
            I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
              ~mix:I.stuck_at_only ~n:!array_faults
          in
          let m = Model.create org in
          Model.set_faults m faults;
          match Repair.run_reference m Alg.ifa_9 ~backgrounds with
          | Repair.Passed_clean, _ | Repair.Repaired _, _ -> incr good
          | Repair.Repair_unsuccessful _, _ -> ()
        end
      done;
      Printf.printf "%6.1f  %10.4f  %10.4f\n" n analytic
        (float_of_int !good /. float_of_int trials))
    [ 1.0; 3.0; 6.0 ];
  Printf.printf "(%d Monte-Carlo RAMs per point; simulated flow includes\n"
    trials;
  Printf.printf " fault injection, both BIST passes and TLB repair)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 5: reliability vs device age *)

let fig5 () =
  section "Fig. 5: reliability vs age (1024 rows, bpc=4, bpw=4)";
  let lambda = 1e-8 in
  let cfg s = Rel.of_org (Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:s ()) ~lambda in
  let spares = [ 0; 4; 8; 16 ] in
  Printf.printf "%8s" "t (kh)";
  List.iter (fun s -> Printf.printf "  %9s" (Printf.sprintf "s=%d" s)) spares;
  Printf.printf "\n";
  List.iter
    (fun tkh ->
      Printf.printf "%8.0f" tkh;
      List.iter
        (fun s -> Printf.printf "  %9.5f" (Rel.reliability (cfg s) (tkh *. 1e3)))
        spares;
      Printf.printf "\n")
    [ 0.0; 10.0; 20.0; 40.0; 60.0; 65.0; 70.0; 80.0; 100.0; 120.0; 150.0 ];
  (match Rel.crossover (cfg 4) (cfg 8) ~t0:1e3 ~t1:1e6 ~steps:5000 with
  | Some t ->
      Printf.printf
        "4-vs-8-spare crossover at %.0f h (%.1f years; paper: ~70,000 h / 8 y)\n"
        t (t /. 8760.0)
  | None -> Printf.printf "no crossover found\n");
  List.iter
    (fun s -> Printf.printf "MTTF with %2d spares: %.3g h\n" s (Rel.mttf (cfg s)))
    spares;
  Printf.printf
    "(per-bit failure rate %.0e/h, reconciling the paper's rate with its\n"
    lambda;
  Printf.printf " plotted crossover; see EXPERIMENTS.md)\n"

(* ------------------------------------------------------------------ *)
(* Figs. 6 and 7: generated module floorplans *)

let figN ~label ~words ~bpw ~bpc () =
  let cfg =
    Config.make ~process:Pr.cda_07u3m1p ~words ~bpw ~bpc ~spares:4 ~drive:2
      ~strap:32 ()
  in
  let d = Compiler.compile cfg in
  section label;
  print_string (Compiler.datasheet d);
  let fp = d.Compiler.floorplan in
  Format.printf "%a@." Floorplan.pp fp;
  print_string (Floorplan.render ~width:72 fp)

let fig6 =
  figN
    ~label:"Fig. 6: SRAM 4K words x 128 bits, bpc=8, strap 32, 4 spares (64 KB)"
    ~words:4096 ~bpw:128 ~bpc:8

let fig7 =
  figN
    ~label:"Fig. 7: SRAM 4K words x 256 bits, bpc=16, strap 32, 4 spares (128 KB)"
    ~words:4096 ~bpw:256 ~bpc:16

(* ------------------------------------------------------------------ *)
(* Tables II and III: manufacturing cost *)

let table2 () =
  section "Table II: cost per good die, with and without RAM BISR";
  Printf.printf "%-16s %3s | %8s %6s %8s | %8s %6s %8s\n" "chip" "M" "dies/waf"
    "yield" "$ /die" "dies/waf" "yield" "$ /die";
  List.iter
    (fun row ->
      let c = row.Mpr.chip in
      let p = row.Mpr.without_bisr in
      match row.Mpr.with_bisr with
      | Some w ->
          Printf.printf "%-16s %3d | %8d %5.1f%% %8.2f | %8d %5.1f%% %8.2f\n"
            c.Chips.name c.Chips.metal_layers p.Mpr.dies_per_wafer
            (100.0 *. p.Mpr.die_yield) p.Mpr.cost_per_good_die
            w.Mpr.dies_per_wafer
            (100.0 *. w.Mpr.die_yield)
            w.Mpr.cost_per_good_die
      | None ->
          Printf.printf "%-16s %3d | %8d %5.1f%% %8.2f | %25s\n" c.Chips.name
            c.Chips.metal_layers p.Mpr.dies_per_wafer
            (100.0 *. p.Mpr.die_yield) p.Mpr.cost_per_good_die
            "(2 metal layers: n/a)")
    (Mpr.table2 ());
  Printf.printf "(paper: significant decrease, often by a factor of about 2)\n"

let table3 () =
  section "Table III: total manufacturing cost per packaged and tested chip";
  Printf.printf "%-16s | %8s %8s %8s %9s | %9s %9s\n" "chip" "die" "test"
    "package" "total" "with BISR" "reduction";
  List.iter
    (fun row ->
      let c = row.Mpr.chip3 in
      let p = row.Mpr.plain in
      match (row.Mpr.bisr, row.Mpr.reduction_pct) with
      | Some b, Some pct ->
          Printf.printf
            "%-16s | %8.2f %8.2f %8.2f %9.2f | %9.2f %8.1f%%\n" c.Chips.name
            p.Mpr.die p.Mpr.test_assembly p.Mpr.package p.Mpr.total b.Mpr.total
            pct
      | _ ->
          Printf.printf "%-16s | %8.2f %8.2f %8.2f %9.2f | %20s\n" c.Chips.name
            p.Mpr.die p.Mpr.test_assembly p.Mpr.package p.Mpr.total
            "(2 metals: n/a)")
    (Mpr.table3 ());
  Printf.printf
    "(paper: reductions from 2.35%% for Intel486DX2 to 47.2%% for SuperSPARC)\n"

(* ------------------------------------------------------------------ *)
(* Section VI: TLB delay and masking *)

let tlb_delay () =
  section "Section VI: TLB delay penalty vs spare rows (0.7 um, 1024 rows)";
  let p = Pr.cda_07u3m1p in
  Printf.printf "%7s  %10s  %10s  %10s\n" "spares" "TLB (ns)" "access(ns)"
    "maskable";
  List.iter
    (fun s ->
      let org = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:s () in
      let d = Tlb_timing.total (Tlb_timing.delay p ~org) in
      let a = Timing.total (Timing.access_time p org ~drive:2.0) in
      Printf.printf "%7d  %10.3f  %10.3f  %10b\n" s (d *. 1e9) (a *. 1e9)
        (Tlb_timing.maskable p ~org ~drive:2.0))
    [ 4; 8; 16 ];
  Printf.printf "(paper: ~1.2 ns with four spares; masking guaranteed for 1-4)\n"

(* ------------------------------------------------------------------ *)
(* Sections V-VI: controller size and area fraction *)

let controller_stats () =
  section "Sections V-VI: test-and-repair controller";
  let bgs = Datagen.required_backgrounds ~bpw:8 in
  let ctl = Controller.compile Alg.ifa_9 ~words:16384 ~backgrounds:bgs in
  let pla = Controller.to_pla ctl in
  Printf.printf "march algorithm      : %s\n" (March.to_string Alg.ifa_9);
  Printf.printf "controller states    : %d (paper: 59)\n"
    (Controller.state_count ctl);
  Printf.printf "flip-flops           : %d (paper: 6)\n"
    (Controller.flipflop_count ctl);
  Printf.printf "TRPLA                : %d inputs, %d outputs, %d terms\n"
    (Trpla.n_inputs pla) (Trpla.n_outputs pla) (Trpla.term_count pla);
  Printf.printf "TRPLA transistors    : %d\n" (Trpla.transistor_count pla);
  (* area fraction for a 16 KB RAM, as in the paper *)
  let cfg16 =
    Config.make ~process:Pr.cda_07u3m1p ~words:16384 ~bpw:8 ~bpc:8 ~spares:4 ()
  in
  let d = Compiler.compile cfg16 in
  let pla_mm2 =
    let rules = Pr.cda_07u3m1p.Pr.rules in
    let lam2 = Trpla.area_lambda2 rules pla in
    let nm = float_of_int Pr.cda_07u3m1p.Pr.lambda_nm in
    float_of_int lam2 *. nm *. nm *. 1e-12
  in
  Printf.printf
    "controller area      : %.4f mm2 = %.3f%% of a 16 KB array (paper: <0.1%%)\n"
    pla_mm2
    (100.0 *. pla_mm2 /. d.Compiler.area.Compiler.array_mm2);
  (* plane images round-trip, the paper's runtime-loadable control code *)
  let images_ok =
    let pla' =
      Trpla.of_images
        ~and_plane:(Trpla.and_plane_image pla)
        ~or_plane:(Trpla.or_plane_image pla)
    in
    Trpla.term_count pla' = Trpla.term_count pla
  in
  Printf.printf "control-code files   : AND/OR plane images round-trip: %b\n"
    images_ok;
  (* gate-level compilation of the FSM *)
  let net = Bisram_bist.Pla_gates.controller_netlist ctl in
  let _, stats = Bisram_gates.Optimize.optimize net in
  Printf.printf
    "FSM as gates         : %d raw -> %d optimized gates + %d flip-flops\n"
    stats.Bisram_gates.Optimize.gates_before
    stats.Bisram_gates.Optimize.gates_after stats.Bisram_gates.Optimize.ffs

(* ------------------------------------------------------------------ *)
(* Section V: fault coverage of the microprogrammed test *)

let coverage () =
  section "Section V: fault coverage (exhaustive single faults, 16x4 array)";
  let org = Org.make ~words:16 ~bpw:4 ~bpc:4 ~spares:0 () in
  let faults = Coverage.exhaustive_faults org in
  let bgs = Datagen.required_backgrounds ~bpw:4 in
  Printf.printf "%-10s" "test";
  List.iter (fun c -> Printf.printf " %6s" c) F.all_class_names;
  Printf.printf " %7s\n" "TOTAL";
  List.iter
    (fun alg ->
      let r = Coverage.evaluate org alg ~backgrounds:bgs ~faults in
      Printf.printf "%-10s" alg.March.name;
      List.iter
        (fun name ->
          match
            List.find_opt
              (fun c -> c.Coverage.class_name = name)
              r.Coverage.per_class
          with
          | Some c -> Printf.printf " %5.1f%%" (Coverage.coverage_pct c)
          | None -> Printf.printf " %6s" "-")
        F.all_class_names;
      Printf.printf " %6.1f%%\n" (Coverage.total_pct r))
    [ Alg.ifa_9; Alg.ifa_13; Alg.march_c_minus; Alg.march_a; Alg.march_y
    ; Alg.march_lr; Alg.pmovi; Alg.mats_plus; Alg.zero_one
    ];
  Printf.printf
    "(IFA-9 covers SAF/TF/CF/DRF; IFA-13's read-after-write adds the\n\
     \ mid-array stuck-open coverage, matching the published hierarchy)\n"

(* ------------------------------------------------------------------ *)
(* Repair-flow demonstration *)

let repair_demo () =
  section "Two-pass self-repair demonstration (64 words x 8, 4 spares)";
  let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 () in
  let backgrounds = Datagen.required_backgrounds ~bpw:8 in
  let run name faults =
    let m = Model.create org in
    Model.set_faults m faults;
    let outcome, report, tlb = Repair.run m Alg.ifa_9 ~backgrounds in
    Format.printf "%-28s: %a (%d cycles, %d rows recorded)@." name
      Repair.pp_outcome outcome report.Controller.cycles
      (Bisram_bisr.Tlb.entries tlb)
  in
  run "clean RAM" [];
  run "2 faulty rows"
    [ F.Stuck_at ({ F.row = 3; col = 9 }, true)
    ; F.Transition ({ F.row = 7; col = 0 }, true)
    ];
  run "5 faulty rows (> spares)"
    (List.map (fun r -> F.Stuck_at ({ F.row = r; col = 0 }, true)) [ 1; 3; 5; 7; 9 ]);
  run "faulty spare row"
    [ F.Stuck_at ({ F.row = 3; col = 9 }, true)
    ; F.Stuck_at ({ F.row = Org.rows org; col = 9 }, true)
    ];
  (* iterated flow fixes the faulty spare *)
  let m = Model.create org in
  Model.set_faults m
    [ F.Stuck_at ({ F.row = 3; col = 9 }, true)
    ; F.Stuck_at ({ F.row = Org.rows org; col = 9 }, true)
    ];
  let outcome, _ = Repair.run_iterated m Alg.ifa_9 ~backgrounds in
  Format.printf "%-28s: %a@." "  ... with 2k-pass iteration" Repair.pp_outcome
    outcome

(* ------------------------------------------------------------------ *)
(* March synthesis: generated tests vs the hand-designed library *)

let synthesis () =
  section "March synthesis: greedy generation vs the library algorithms";
  let org = Org.make ~words:16 ~bpw:4 ~bpc:4 ~spares:0 () in
  let bgs = Datagen.required_backgrounds ~bpw:4 in
  let module Sy = Bisram_bist.Synthesis in
  let run label faults =
    let r = Sy.synthesize org ~faults ~backgrounds:bgs ~target:100.0 in
    Printf.printf "%-24s -> %2dN  %5.1f%%  %s\n" label
      (March.ops_per_address r.Sy.march)
      r.Sy.achieved
      (March.to_string r.Sy.march)
  in
  let all = Coverage.exhaustive_faults org in
  let only p = List.filter p all in
  run "SAF only"
    (only (function F.Stuck_at _ -> true | _ -> false));
  run "SAF + TF"
    (only (function F.Stuck_at _ | F.Transition _ -> true | _ -> false));
  run "SAF + TF + DRF"
    (only (function
      | F.Stuck_at _ | F.Transition _ | F.Data_retention _ -> true
      | _ -> false));
  run "all classes" all;
  Printf.printf
    "(hand-designed references: MATS+ 5N for SAF/TF, IFA-9 12N adding\n\
    \ coupling + retention; the synthesizer rediscovers the same structure\n\
    \ and the TRPLA loads any of them by swapping the two plane files)\n"

(* ------------------------------------------------------------------ *)
(* Spatial defects: yield vs defect size through real geometry *)

let spatial_yield () =
  section "Spatial defects: repairable fraction vs defect size";
  let org = Org.make ~words:1024 ~bpw:4 ~bpc:4 ~spares:4 () in
  let rows = Org.rows org and cols = Org.cols org in
  let rng = Random.State.make [| 42; 9 |] in
  let trials = 1500 in
  Printf.printf
    "%14s  %12s  %14s  (256 rows, 4 spares, mean 3 defects, %d trials)\n"
    "defect radius" "repairable" "mean rows hit" trials;
  List.iter
    (fun (r_min, r_max) ->
      let good = ref 0 and rows_total = ref 0 in
      for _ = 1 to trials do
        let faults =
          Bisram_faults.Spatial.inject rng ~cell_w:24 ~cell_h:20 ~rows ~cols
            ~r_min ~r_max ~mean:3.0 ~alpha:2.0
        in
        rows_total :=
          !rows_total + List.length (Bisram_faults.Spatial.rows_hit faults);
        if Bisram_bisr.Analysis.repairable_strict org faults then incr good
      done;
      Printf.printf "%7d-%3d l   %10.1f%%  %14.2f\n" r_min r_max
        (100.0 *. float_of_int !good /. float_of_int trials)
        (float_of_int !rows_total /. float_of_int trials))
    [ (1, 4); (1, 20); (10, 40); (30, 80) ];
  Printf.printf
    "(small spot defects stay within one row and repair like the analytic\n\
    \ model; defects larger than the 20-lambda cell height start killing\n\
    \ adjacent row pairs and the repairable fraction falls — the physical\n\
    \ regime behind Fig. 4's growth-factor bookkeeping)\n"

(* ------------------------------------------------------------------ *)
(* Ablation: what each IFA-9 element and each Johnson background buys *)

let ablation () =
  section "Ablation: IFA-9 march elements and Johnson backgrounds";
  let org = Org.make ~words:16 ~bpw:4 ~bpc:4 ~spares:0 () in
  let faults = Coverage.exhaustive_faults ~include_same_word:true org in
  let bgs = Datagen.required_backgrounds ~bpw:4 in
  let print_row label march backgrounds =
    let clean = Model.create org in
    if not (Engine.passes clean march ~backgrounds) then
      Printf.printf "%-22s  invalid: fails on a fault-free RAM\n" label
    else begin
      let r = Coverage.evaluate org march ~backgrounds ~faults in
      Printf.printf "%-22s" label;
      List.iter
        (fun name ->
          match
            List.find_opt
              (fun c -> c.Coverage.class_name = name)
              r.Coverage.per_class
          with
          | Some c -> Printf.printf " %5.1f" (Coverage.coverage_pct c)
          | None -> Printf.printf " %5s" "-")
        F.all_class_names;
      Printf.printf " %6.1f\n" (Coverage.total_pct r)
    end
  in
  Printf.printf "%-22s" "variant";
  List.iter (fun c -> Printf.printf " %5s" c) F.all_class_names;
  Printf.printf " %6s\n" "TOTAL";
  print_row "IFA-9 (full)" Alg.ifa_9 bgs;
  (* feature ablations keep the data-phase chain consistent *)
  let no_delays =
    March.make ~name:"no-delays"
      (List.filter
         (fun i -> i <> March.Wait)
         Alg.ifa_9.March.items)
  in
  print_row "  - retention delays" no_delays bgs;
  let no_down =
    March.of_string ~name:"no-down" "u(w0); u(r0,w1); u(r1,w0); D; u(r0,w1); D; u(r1)"
  in
  print_row "  - down-marches" no_down bgs;
  let no_rw_pairs =
    March.of_string ~name:"write-heavy" "u(w0); u(w1); u(r1,w0); d(r0)"
  in
  print_row "  - read-after-every-w" no_rw_pairs bgs;
  print_row "  IFA-13 (superset)" Alg.ifa_13 bgs;
  Printf.printf "\nbackground-count sweep (IFA-9, same-word couplings included):\n";
  let all_bgs = Array.of_list bgs in
  for k = 1 to Array.length all_bgs do
    let sub = Array.to_list (Array.sub all_bgs 0 k) in
    print_row (Printf.sprintf "  %d background(s)" k) Alg.ifa_9 sub
  done;
  Printf.printf
    "(dropping the delays kills DRF coverage; dropping down-marches or the\n\
    \ extra backgrounds costs coupling coverage — each element earns its\n\
    \ test time)\n"

(* ------------------------------------------------------------------ *)
(* Section III: comparison with the prior BISR schemes *)

let baseline_comparison () =
  section "Section III: BISRAMGEN vs Chen-Sunada vs Sawada";
  let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 () in
  let cs = Bisram_baselines.Chen_sunada.create org ~subblocks:4 ~spare_blocks:1 in
  let hybrid = Bisram_bisr.Hybrid.create org ~word_registers:2 in
  (* --- repair capability: Monte Carlo over two defect regimes --- *)
  let rng = Random.State.make [| 3; 1999 |] in
  let trials = 2000 in
  let capability_table ~title gen =
    Printf.printf "%s (%d trials)\n" title trials;
    Printf.printf "%8s  %10s  %12s  %8s  %8s\n" "defects" "BISRAMGEN"
      "Chen-Sunada" "Sawada" "hybrid";
    List.iter
      (fun n ->
        let b = ref 0 and c = ref 0 and s = ref 0 and h = ref 0 in
        for _ = 1 to trials do
          let faults = gen n in
          if Bisram_bisr.Analysis.repairable_strict org faults then incr b;
          if Bisram_baselines.Chen_sunada.repairable cs faults then incr c;
          if Bisram_baselines.Sawada.repairable org faults then incr s;
          if Bisram_bisr.Hybrid.repairable hybrid faults then incr h
        done;
        let pct x = 100.0 *. float_of_int x /. float_of_int trials in
        Printf.printf "%8d  %9.1f%%  %11.1f%%  %7.1f%%  %7.1f%%\n" n (pct !b)
          (pct !c) (pct !s) (pct !h))
      [ 1; 2; 3; 4; 6; 8 ]
  in
  (* scattered single-cell defects: word sparing shines *)
  capability_table ~title:"scattered single-cell defects" (fun n ->
      I.inject rng ~rows:(Org.rows org) ~cols:(Org.cols org)
        ~mix:I.stuck_at_only ~n);
  (* row-kill defects (broken word line / driver): each defect takes a
     whole row, the case row sparing is built for *)
  Printf.printf "\n";
  capability_table ~title:"row-kill defects (word-line/driver failures)"
    (fun n ->
      List.concat_map
        (fun _ ->
          let r = Random.State.int rng (Org.rows org) in
          List.init (Org.cols org) (fun c ->
              Bisram_faults.Fault.Stuck_at ({ F.row = r; col = c }, true)))
        (List.init n Fun.id));
  Printf.printf
    "(capability: BISRAMGEN repairs up to %d faulty words across <= %d rows;\n\
    \ Chen-Sunada 2 words per subblock + %d spare block; Sawada 1 word.\n\
    \ A killed row's %d words land in one subblock and swamp its two\n\
    \ capture registers — the paper's point 3 of Section III.\n\
    \ 'hybrid' is this repo's future-work extension: the same 4 spare rows\n\
    \ plus 2 word registers behind one parallel CAM — it dominates both\n\
    \ pure schemes in both regimes)\n"
    (Org.spare_words org) org.Org.spares 1 org.Org.bpc;
  (* --- normal-mode delay penalty: sequential vs parallel scaling --- *)
  let big = Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares:4 () in
  let p = Pr.cda_07u3m1p in
  Printf.printf
    "\naddress-match delay vs repairable entries (0.7 um, 4096 words):\n";
  Printf.printf "%9s  %18s  %18s\n" "entries" "sequential (ns)" "parallel TLB (ns)";
  List.iter
    (fun k ->
      let seq =
        Bisram_baselines.Chen_sunada.delay_penalty ~entries:k p ~org:big
      in
      let spares = if k <= 4 then 4 else if k <= 8 then 8 else 16 in
      let tlb =
        Tlb_timing.delay p
          ~org:(Org.make ~words:4096 ~bpw:4 ~bpc:4 ~spares ())
      in
      Printf.printf "%9d  %18.3f  %18.3f\n" k (seq *. 1e9)
        (tlb.Tlb_timing.match_line *. 1e9))
    [ 2; 4; 8; 16 ];
  Printf.printf
    "(the sequential comparison grows linearly with the entry count — the\n\
    \ paper's point 1: impractical for high-speed embedded memories)\n";
  (* --- data backgrounds: Johnson counter vs single pattern --- *)
  let cov_org = Org.make ~words:16 ~bpw:4 ~bpc:4 ~spares:0 () in
  let faults = Coverage.exhaustive_faults ~include_same_word:true cov_org in
  let coupling_cov alg backgrounds =
    let r = Coverage.evaluate cov_org alg ~backgrounds ~faults in
    List.filter_map
      (fun c ->
        match c.Coverage.class_name with
        | "CFin" | "CFid" | "CFst" -> Some (c.Coverage.detected, c.Coverage.injected)
        | _ -> None)
      r.Coverage.per_class
    |> List.fold_left (fun (d, i) (dd, ii) -> (d + dd, i + ii)) (0, 0)
    |> fun (d, i) -> 100.0 *. float_of_int d /. float_of_int (max 1 i)
  in
  let johnson = Datagen.required_backgrounds ~bpw:4 in
  let single = Bisram_baselines.Chen_sunada.backgrounds ~bpw:4 in
  Printf.printf
    "\ncoupling coverage incl. same-word pairs (point 4 of Section III):\n\
    \  IFA-9  + Johnson backgrounds                %.1f%%\n\
    \  IFA-9  + all-0/all-1 only                   %.1f%%\n\
    \  IFA-13 + all-0/all-1 (Chen-Sunada DATAGEN)  %.1f%%\n"
    (coupling_cov Alg.ifa_9 johnson)
    (coupling_cov Alg.ifa_9 single)
    (coupling_cov Alg.ifa_13 single)

(* ------------------------------------------------------------------ *)
(* Transparent BIST (Kebichi-Nicolaidis) *)

let transparent_bist () =
  section "Transparent BIST (Section III reference scheme, implemented)";
  let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 () in
  let rng = Random.State.make [| 77 |] in
  let m = Model.create org in
  for a = 0 to org.Org.words - 1 do
    Model.write_word m a
      (Word.of_int ~width:8 (Random.State.int rng 256))
  done;
  let module T = Bisram_bist.Transparent in
  let r = T.run_model m Alg.ifa_9 in
  Printf.printf
    "transparent IFA-9 on a loaded clean RAM: detected=%b, contents preserved=%b\n"
    r.T.detected r.T.contents_preserved;
  let mf = Model.create org in
  Model.set_faults mf [ F.Stuck_at ({ F.row = 3; col = 9 }, true) ];
  let rf = T.run_model mf Alg.ifa_9 in
  Printf.printf "transparent IFA-9 on a faulty RAM     : detected=%b\n"
    rf.T.detected;
  Printf.printf
    "test length: standard IFA-9 %dN per background vs transparent %dN, no\n\
     initialization and no destruction of memory state\n"
    (March.ops_per_address Alg.ifa_9)
    (T.transformed_ops_per_address Alg.ifa_9)

(* ------------------------------------------------------------------ *)
(* Monte Carlo fault-injection campaign: differential oracle + escapes *)

let campaign_scenario () =
  section "Monte Carlo campaign: differential oracle and escape hunting";
  let module C = Bisram_campaign.Campaign in
  let summarize label r =
    let h2 = r.C.two_pass and hi = r.C.iterated in
    Printf.printf
      "%-26s: %d trials  clean=%d repaired=%d overflow=%d 2nd-pass=%d\n" label
      r.C.trials_run h2.C.passed_clean h2.C.repaired h2.C.too_many_faulty_rows
      h2.C.fault_in_second_pass;
    Printf.printf
      "%-26s  iterated repaired=%d  escapes=%d  divergences=%d\n" ""
      hi.C.repaired
      (List.length r.C.escapes)
      (List.length r.C.divergences);
    Printf.printf "%-26s  yield observed %.3f / %.3f analytic %.3f\n" ""
      r.C.observed_yield_two_pass r.C.observed_yield_iterated r.C.analytic_yield
  in
  (* healthy regime: IFA-9 over the full mix - oracle agreement expected *)
  let cfg = C.make_config ~trials:200 ~mode:(C.Uniform 2) ~seed:1999 () in
  summarize "IFA-9, default mix" (C.run cfg);
  (* deliberate coverage hole: MATS+ has no Wait items, so data-retention
     faults escape the march and are caught only by the post-repair sweep *)
  let retention_only =
    { I.stuck_at = 0.0
    ; transition = 0.0
    ; stuck_open = 0.0
    ; coupling_inversion = 0.0
    ; coupling_idempotent = 0.0
    ; state_coupling = 0.0
    ; data_retention = 1.0
    }
  in
  let hole =
    C.make_config ~march:Alg.mats_plus ~mix:retention_only ~mode:(C.Uniform 2)
      ~trials:100 ~seed:1999 ()
  in
  let r = C.run hole in
  summarize "MATS+, retention faults" r;
  (match r.C.escapes with
  | f :: _ ->
      Printf.printf
        "first escape: trial %d (seed %d), %d-fault set shrunk to %d-fault\n\
        \ reproducer; replay with `bisramgen campaign --replay %d ...`\n"
        f.C.f_trial f.C.f_seed
        (List.length f.C.f_faults)
        (List.length f.C.f_shrunk)
        f.C.f_seed
  | [] -> Printf.printf "no escapes found (unexpected for this scenario)\n");
  Printf.printf
    "(the campaign runs the microprogrammed controller against the\n\
    \ functional reference as a differential oracle, then sweeps every\n\
    \ repaired RAM for silent escapes; failing fault sets are delta-\n\
    \ debugged to minimal reproducers and each trial's seed replays it)\n"

(* ------------------------------------------------------------------ *)
(* Section VII: fatal-flaw critical area of the 6T template *)

let critical_area () =
  section "Section VII: vdd/gnd short critical area of the 6T cell template";
  let c = Bisram_layout.Leaf.sram_6t () in
  let p = Pr.cda_07u3m1p in
  Printf.printf "%12s %10s %16s\n" "radius (l)" "(um)" "crit. area (l^2)";
  List.iter
    (fun r ->
      Printf.printf "%12d %10.2f %16d\n" r
        (Pr.um_of_lambda p r)
        (Bisram_layout.Critical_area.power_short c ~radius:r))
    [ 1; 2; 4; 6; 8; 10; 12 ];
  (match Bisram_layout.Critical_area.fatal_radius c with
  | Some r ->
      Printf.printf
        "smallest fatal defect radius: %d lambda = %.2f um (paper: near-zero\n\
         critical area for all realistic defect radii)\n"
        r (Pr.um_of_lambda p r)
  | None -> Printf.printf "rails never short\n")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let microbenchmarks () =
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  (* kernels *)
  let org = Org.make ~words:1024 ~bpw:4 ~bpc:4 ~spares:4 () in
  let bgs = Datagen.required_backgrounds ~bpw:4 in
  let model = Model.create org in
  let tlb = Bisram_bisr.Tlb.create ~spares:4 ~regular_rows:(Org.rows org) in
  ignore (Bisram_bisr.Tlb.record tlb ~row:17);
  ignore (Bisram_bisr.Tlb.record tlb ~row:42);
  let g4 = fig4_geometry 4 in
  let ctl = Controller.compile Alg.ifa_9 ~words:64 ~backgrounds:bgs in
  let pla = Controller.to_pla ctl in
  let pla_inputs = Array.make (Trpla.n_inputs pla) false in
  let blocks =
    List.mapi
      (fun i (w, h) ->
        Bisram_pr.Block.make ~name:(Printf.sprintf "b%d" i) ~w ~h [])
      [ (400, 300); (80, 300); (480, 60); (100, 60); (120, 60); (90, 50) ]
  in
  let tests =
    [ Test.make ~name:"tlb_lookup"
        (Staged.stage (fun () -> Bisram_bisr.Tlb.remap tlb ~row:17))
    ; Test.make ~name:"ifa9_4kb_array"
        (Staged.stage (fun () ->
             ignore (Engine.passes model Alg.ifa_9 ~backgrounds:bgs)))
    ; Test.make ~name:"yield_eval"
        (Staged.stage (fun () ->
             ignore (Repairable.yield g4 ~mean_defects:10.0 ~alpha:2.0)))
    ; Test.make ~name:"pla_eval"
        (Staged.stage (fun () -> ignore (Trpla.eval pla pla_inputs)))
    ; Test.make ~name:"placer_6_blocks"
        (Staged.stage (fun () -> ignore (Placer.place blocks)))
    ; Test.make ~name:"reliability_eval"
        (Staged.stage (fun () ->
             ignore
               (Rel.reliability
                  (Rel.of_org org ~lambda:1e-8)
                  70_000.0)))
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances
          (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-24s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-24s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "BISRAMGEN experiment harness\n";
  Printf.printf "reproducing: Chakraborty et al., \"A Physical Design Tool\n";
  Printf.printf "for Built-In Self-Repairable RAMs\" (DATE'99 / TVLSI 2001)\n";
  table1 ();
  fig4 ();
  fig4_alpha_sensitivity ();
  fig4_flow_validation ();
  fig5 ();
  fig6 ();
  fig7 ();
  table2 ();
  table3 ();
  tlb_delay ();
  controller_stats ();
  coverage ();
  repair_demo ();
  ablation ();
  synthesis ();
  spatial_yield ();
  baseline_comparison ();
  campaign_scenario ();
  transparent_bist ();
  critical_area ();
  microbenchmarks ();
  Printf.printf "\nAll experiments complete.\n"
