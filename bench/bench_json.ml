(* Machine-readable benchmark trajectory.

   Times the Monte Carlo campaign at several --jobs levels and the core
   simulation kernels (fast fault-free path vs the legacy per-cell
   fault machinery), then writes BENCH_campaign.json at the repo root
   so later PRs have a perf baseline to regress against.

   Every measurement is wall-clock via the monotonic clock; the
   machine's core count is recorded because parallel speedup is bounded
   by it (a 1-core container runs jobs=4 at ~1x, and that is the honest
   number to store). *)

module C = Bisram_campaign.Campaign
module J = Bisram_campaign.Report
module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module Engine = Bisram_bist.Engine
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module Clock = Bisram_parallel.Clock
module Pool = Bisram_parallel.Pool

let time f =
  let t0 = Clock.now () in
  let r = f () in
  (r, Clock.now () -. t0)

(* best-of-k wall time: robust against scheduler noise on small boxes *)
let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let _, s = time f in
    if s < !best then best := s
  done;
  !best

(* ------------------------------------------------------------------ *)
(* campaign throughput at increasing job counts *)

let campaign_runs ~trials ~jobs_levels =
  let cfg =
    C.make_config ~mode:(C.Uniform 0) ~trials ~seed:1999 ~shrink:false ()
  in
  let baseline = ref None in
  let runs, identical =
    List.fold_left
      (fun (runs, identical) jobs ->
        ignore (C.run ~jobs cfg) (* warm-up: page in code and heap *);
        let report = ref "" in
        let seconds =
          best_of 2 (fun () -> report := C.json_string (C.run ~jobs cfg))
        in
        let identical =
          identical
          &&
          match !baseline with
          | None ->
              baseline := Some !report;
              true
          | Some b -> String.equal b !report
        in
        let tps = float_of_int trials /. seconds in
        (runs @ [ (jobs, seconds, tps) ], identical))
      ([], true) jobs_levels
  in
  let base_tps =
    match runs with (_, _, tps) :: _ -> tps | [] -> nan
  in
  let run_json (jobs, seconds, tps) =
    J.Obj
      [ ("jobs", J.Int jobs)
      ; ("seconds", J.Float seconds)
      ; ("trials_per_sec", J.Float tps)
      ; ("speedup_vs_jobs1", J.Float (tps /. base_tps))
      ]
  in
  J.Obj
    [ ( "org"
      , J.Obj
          [ ("words", J.Int cfg.C.org.Org.words)
          ; ("bpw", J.Int cfg.C.org.Org.bpw)
          ; ("bpc", J.Int cfg.C.org.Org.bpc)
          ; ("spares", J.Int cfg.C.org.Org.spares)
          ] )
    ; ("trials", J.Int trials)
    ; ("faults_per_trial", J.Int 0)
    ; ("reports_identical_across_jobs", J.Bool identical)
    ; ("runs", J.List (List.map run_json runs))
    ]

(* ------------------------------------------------------------------ *)
(* kernel microbenchmarks: fast path vs legacy per-cell machinery *)

let kernel ~name ~variant ~ops ns =
  J.Obj
    [ ("name", J.String name)
    ; ("variant", J.String variant)
    ; ("ns_per_op", J.Float ns)
    ; ("ops", J.Int ops)
    ]

let march_kernel ~fast =
  let org = Org.make ~words:1024 ~bpw:4 ~bpc:4 ~spares:4 () in
  let bgs = Datagen.required_backgrounds ~bpw:4 in
  let m = Model.create org in
  Model.set_fast_path m fast;
  let reps = 5 in
  let seconds =
    best_of 3 (fun () ->
        for _ = 1 to reps do
          ignore (Engine.passes m Alg.ifa_9 ~backgrounds:bgs)
        done)
  in
  let ops = reps * Engine.op_count Alg.ifa_9 org ~backgrounds:(List.length bgs) in
  (seconds /. float_of_int ops *. 1e9, ops)

let word_rw_kernel ~fast =
  let org = Org.make ~words:4096 ~bpw:8 ~bpc:4 ~spares:4 () in
  let m = Model.create org in
  Model.set_fast_path m fast;
  let w = Word.of_int ~width:8 0xA5 in
  let reps = 20 in
  let seconds =
    best_of 3 (fun () ->
        for _ = 1 to reps do
          for a = 0 to org.Org.words - 1 do
            Model.write_word m a w;
            ignore (Model.read_word m a)
          done
        done)
  in
  let ops = reps * org.Org.words * 2 in
  (seconds /. float_of_int ops *. 1e9, ops)

let clear_kernel ~dirty =
  (* dirty = full array written since last clear; clean = nothing
     written, so the dirty-row clear is O(1) row scans *)
  let org = Org.make ~words:4096 ~bpw:8 ~bpc:4 ~spares:4 () in
  let m = Model.create org in
  let w = Word.of_int ~width:8 0xFF in
  let reps = 200 in
  let seconds =
    best_of 3 (fun () ->
        for _ = 1 to reps do
          if dirty then
            for a = 0 to org.Org.words - 1 do
              Model.write_word m a w
            done;
          Model.clear m
        done)
  in
  (seconds /. float_of_int reps *. 1e9, reps)

let kernels () =
  let fast_ns, fast_ops = march_kernel ~fast:true in
  let legacy_ns, legacy_ops = march_kernel ~fast:false in
  let rw_fast_ns, rw_fast_ops = word_rw_kernel ~fast:true in
  let rw_legacy_ns, rw_legacy_ops = word_rw_kernel ~fast:false in
  let clear_clean_ns, clear_clean_ops = clear_kernel ~dirty:false in
  let clear_dirty_ns, clear_dirty_ops = clear_kernel ~dirty:true in
  ( J.List
      [ kernel ~name:"ifa9_march_clean_4kb" ~variant:"fast" ~ops:fast_ops
          fast_ns
      ; kernel ~name:"ifa9_march_clean_4kb" ~variant:"legacy" ~ops:legacy_ops
          legacy_ns
      ; kernel ~name:"word_rw_clean_32kb" ~variant:"fast" ~ops:rw_fast_ops
          rw_fast_ns
      ; kernel ~name:"word_rw_clean_32kb" ~variant:"legacy" ~ops:rw_legacy_ops
          rw_legacy_ns
      ; kernel ~name:"clear_untouched_32kb" ~variant:"fast"
          ~ops:clear_clean_ops clear_clean_ns
      ; kernel ~name:"clear_after_full_write_32kb" ~variant:"fast"
          ~ops:clear_dirty_ops clear_dirty_ns
      ]
  , J.Obj
      [ ("ifa9_march_fast_vs_legacy", J.Float (legacy_ns /. fast_ns))
      ; ("word_rw_fast_vs_legacy", J.Float (rw_legacy_ns /. rw_fast_ns))
      ] )

(* ------------------------------------------------------------------ *)

let () =
  let out = ref "BENCH_campaign.json" in
  let trials = ref 200 in
  let rec parse = function
    | [] -> ()
    | "-o" :: path :: rest ->
        out := path;
        parse rest
    | "--trials" :: n :: rest ->
        trials := int_of_string n;
        parse rest
    | a :: _ ->
        Printf.eprintf "bench_json: unknown argument %S\n" a;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let campaign = campaign_runs ~trials:!trials ~jobs_levels:[ 1; 2; 4 ] in
  let kernels, derived = kernels () in
  let doc =
    J.Obj
      [ ("schema", J.String "bisram-bench/1")
      ; ( "machine"
        , J.Obj
            [ ("cores", J.Int (Pool.recommended_jobs ()))
            ; ("ocaml", J.String Sys.ocaml_version)
            ; ("word_size", J.Int Sys.word_size)
            ] )
      ; ("campaign", campaign)
      ; ("kernels", kernels)
      ; ("derived", derived)
      ]
  in
  let oc = open_out !out in
  output_string oc (J.to_pretty_string doc);
  close_out oc;
  Printf.printf "wrote %s\n" !out
