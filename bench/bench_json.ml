(* Machine-readable benchmark trajectory.

   Times the Monte Carlo campaign at several --jobs levels, a small
   explore sweep cache-cold and cache-warm, and the core simulation
   kernels (fast fault-free path vs the legacy per-cell fault
   machinery), then writes BENCH_campaign.json at the repo root so
   later PRs have a perf baseline to regress against.

   Every measurement is wall-clock via the monotonic clock; the
   machine's core count is recorded because parallel speedup is bounded
   by it (a 1-core container runs jobs=4 at ~1x, and that is the honest
   number to store).  Each kernel also records its minor-heap
   allocation per op ([Gc.minor_words] delta — allocation is
   deterministic, so a single sample is exact), which is the metric
   the packed word/row representation is meant to drive to zero.

   --smoke shrinks trials/reps to a few-second run for CI wiring
   checks; its numbers are noise, so it refuses to overwrite the
   committed baseline unless -o points elsewhere. *)

module C = Bisram_campaign.Campaign
module E = Bisram_campaign.Estimator
module Prop = Bisram_faults.Proposal
module J = Bisram_campaign.Report
module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word
module Engine = Bisram_bist.Engine
module Alg = Bisram_bist.Algorithms
module Datagen = Bisram_bist.Datagen
module Clock = Bisram_parallel.Clock
module Pool = Bisram_parallel.Pool
module Obs = Bisram_obs.Obs
module Export = Bisram_obs.Export

let smoke = ref false
let quick = ref false

let time f =
  let t0 = Clock.now () in
  let r = f () in
  (r, Clock.now () -. t0)

(* best-of-k wall time: robust against scheduler noise on small boxes *)
let best_of k f =
  let k = if !smoke || !quick then 1 else k in
  let best = ref infinity in
  for _ = 1 to k do
    let _, s = time f in
    if s < !best then best := s
  done;
  !best

(* minor-heap words allocated by one run of [f] *)
let minor_words_of f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

(* ------------------------------------------------------------------ *)
(* campaign throughput at increasing job counts *)

(* A jobs level beyond the machine's core count cannot speed anything
   up — domains time-share the same cores and the measured "speedup"
   is mostly scheduler noise (a 1-core box once recorded 0.22x here as
   if it were a regression).  Such levels are skipped and flagged
   instead of timed. *)
let campaign_runs ~trials ~jobs_levels =
  let cfg =
    C.make_config ~mode:(C.Uniform 0) ~trials ~seed:1999 ~shrink:false ()
  in
  let cores = Pool.recommended_jobs () in
  let baseline = ref None in
  let runs, identical =
    List.fold_left
      (fun (runs, identical) jobs ->
        if jobs > cores then (runs @ [ `Skipped jobs ], identical)
        else begin
          ignore (C.run ~jobs cfg) (* warm-up: page in code and heap *);
          let report = ref "" in
          let seconds =
            best_of 2 (fun () -> report := C.json_string (C.run ~jobs cfg))
          in
          let identical =
            identical
            &&
            match !baseline with
            | None ->
                baseline := Some !report;
                true
            | Some b -> String.equal b !report
          in
          let tps = float_of_int trials /. seconds in
          (runs @ [ `Run (jobs, seconds, tps) ], identical)
        end)
      ([], true) jobs_levels
  in
  let base_tps =
    match
      List.find_map
        (function `Run (_, _, tps) -> Some tps | `Skipped _ -> None)
        runs
    with
    | Some tps -> tps
    | None -> nan
  in
  let run_json = function
    | `Run (jobs, seconds, tps) ->
        J.Obj
          [ ("jobs", J.Int jobs)
          ; ("jobs_exceed_cores", J.Bool false)
          ; ("seconds", J.Float seconds)
          ; ("trials_per_sec", J.Float tps)
          ; ("speedup_vs_jobs1", J.Float (tps /. base_tps))
          ]
    | `Skipped jobs ->
        J.Obj
          [ ("jobs", J.Int jobs)
          ; ("jobs_exceed_cores", J.Bool true)
          ; ("skipped", J.Bool true)
          ; ( "skip_reason"
            , J.String
                (Printf.sprintf
                   "jobs %d exceeds the machine's %d core(s); a timed run \
                    would report scheduler noise as speedup"
                   jobs cores) )
          ]
  in
  J.Obj
    [ ( "org"
      , J.Obj
          [ ("words", J.Int cfg.C.org.Org.words)
          ; ("bpw", J.Int cfg.C.org.Org.bpw)
          ; ("bpc", J.Int cfg.C.org.Org.bpc)
          ; ("spares", J.Int cfg.C.org.Org.spares)
          ] )
    ; ("trials", J.Int trials)
    ; ("faults_per_trial", J.Int 0)
    ; ("reports_identical_across_jobs", J.Bool identical)
    ; ("runs", J.List (List.map run_json runs))
    ]

(* ------------------------------------------------------------------ *)
(* lane-sliced batching: trials_per_sec at increasing lane widths,
   always at jobs = 1 so the figure isolates the bit-parallel win from
   the domain-level one.  The trial count is divisible by every
   measured width, so no ragged tail dilutes the wide-lane numbers
   with scalar fallback work.  Lanes are purely a throughput knob —
   the reports must stay byte-identical across widths, and that check
   is recorded in the section. *)

let lane_runs ~trials =
  let cfg =
    C.make_config ~mode:(C.Uniform 0) ~trials ~seed:1999 ~shrink:false ()
  in
  let levels = [ 1; 8; 62 ] in
  ignore (C.run ~jobs:1 ~lanes:62 cfg) (* warm-up: page in code and heap *);
  let baseline = ref None in
  let runs, identical =
    List.fold_left
      (fun (runs, identical) lanes ->
        let report = ref "" in
        let seconds =
          best_of 2 (fun () ->
              report := C.json_string (C.run ~jobs:1 ~lanes cfg))
        in
        let identical =
          identical
          &&
          match !baseline with
          | None ->
              baseline := Some !report;
              true
          | Some b -> String.equal b !report
        in
        let tps = float_of_int trials /. seconds in
        (runs @ [ (lanes, seconds, tps) ], identical))
      ([], true) levels
  in
  let scalar_tps =
    match runs with (1, _, tps) :: _ -> tps | _ -> nan
  in
  let run_json (lanes, seconds, tps) =
    J.Obj
      [ ("lanes", J.Int lanes)
      ; ("seconds", J.Float seconds)
      ; ("trials_per_sec", J.Float tps)
      ; ("speedup_vs_scalar", J.Float (tps /. scalar_tps))
      ]
  in
  J.Obj
    [ ( "org"
      , J.Obj
          [ ("words", J.Int cfg.C.org.Org.words)
          ; ("bpw", J.Int cfg.C.org.Org.bpw)
          ; ("bpc", J.Int cfg.C.org.Org.bpc)
          ; ("spares", J.Int cfg.C.org.Org.spares)
          ] )
    ; ("trials", J.Int trials)
    ; ("faults_per_trial", J.Int 0)
    ; ("jobs", J.Int 1)
    ; ("reports_identical_across_lanes", J.Bool identical)
    ; ("runs", J.List (List.map run_json runs))
    ]

(* ------------------------------------------------------------------ *)
(* rare-event estimation: trials and wall-clock to a ±10% relative CI
   on the repair-failure rate — naive sampling vs a stratified count
   proposal vs importance sampling (count mean shifted to ~0.5) at
   three defect densities.  The rig (zero spare rows, stuck-at-only
   mix) makes the failure probability exactly 1 - e^-lambda, so every
   recorded rate is auditable against ground truth.  The headline is
   the lowest-density row: naive sampling needs roughly
   z^2 / (target^2 * p) trials to pin the rate, the biased proposals a
   density-independent few hundred — fewer trials *and* less wall
   clock, which is the point of the estimation layer. *)

let estimator_runs () =
  let target = if !smoke then 0.3 else 0.1 in
  let densities = if !smoke then [ 0.05 ] else [ 0.05; 0.01; 0.002 ] in
  let max_trials = if !smoke then 5_000 else 600_000 in
  let batch = if !smoke then 124 else 992 in
  let rare_cfg ?proposal lambda =
    let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:0 () in
    C.make_config ~org ~mix:Bisram_faults.Injection.stuck_at_only
      ~mode:(C.Poisson lambda) ?proposal ~trials:1 ~seed:1999 ~shrink:false ()
  in
  let strategies lambda =
    [ ("naive", None)
    ; ( "stratified"
      , Some { Prop.count = Prop.Stratified { nonzero = 0.5 }; mix = None } )
    ; ( "importance"
      , Some
          { Prop.count =
              Prop.Scaled
                { scale = Float.max 1.0 (0.5 /. lambda); shift = 0.0 }
          ; mix = None
          } )
    ]
  in
  let run lambda (name, proposal) =
    let cfg = rare_cfg ?proposal lambda in
    let a, seconds =
      (* adaptive runs are seconds long, so a single timed sample is
         already stable — and the reductions being claimed are 10x+ *)
      time (fun () ->
          E.run_adaptive ~lanes:62 ~batch ~metric:E.Repair_failure_two_pass
            ~max_trials ~target cfg)
    in
    let e = E.estimate a.E.a_result E.Repair_failure_two_pass in
    (name, a, e, seconds)
  in
  let density lambda =
    let rows = List.map (run lambda) (strategies lambda) in
    let naive_trials, naive_s =
      match rows with
      | (_, a, _, s) :: _ -> (a.E.a_result.C.trials_run, s)
      | [] -> (0, nan)
    in
    let row (name, a, e, seconds) =
      let trials = a.E.a_result.C.trials_run in
      J.Obj
        [ ("strategy", J.String name)
        ; ("reached_target", J.Bool (a.E.a_reason = E.Target_reached))
        ; ("trials", J.Int trials)
        ; ("seconds", J.Float seconds)
        ; ("rate", J.Float e.E.e_rate)
        ; ("rel_half_width", J.Float a.E.a_rel_half_width)
        ; ( "trials_reduction_vs_naive"
          , J.Float (float_of_int naive_trials /. float_of_int (max 1 trials))
          )
        ; ("wall_clock_reduction_vs_naive", J.Float (naive_s /. seconds))
        ]
    in
    J.Obj
      [ ("lambda", J.Float lambda)
      ; ("true_rate", J.Float (1.0 -. exp (-.lambda)))
      ; ("rows", J.List (List.map row rows))
      ]
  in
  J.Obj
    [ ("metric", J.String "repair_failure_two_pass")
    ; ("target_rel_half_width", J.Float target)
    ; ("batch", J.Int batch)
    ; ("max_trials", J.Int max_trials)
    ; ("densities", J.List (List.map density densities))
    ]

(* ------------------------------------------------------------------ *)
(* explore sweep: cold throughput and warm-cache hit behaviour *)

module Spec = Bisram_explore.Spec
module Explore = Bisram_explore.Explore

let rm_rf_cache dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let explore_spec () =
  let text =
    if !smoke then
      "words = 64\n\
       bpw = 8\n\
       bpc = 4\n\
       spares = 0, 4\n\
       mean_defects = 1\n\
       evaluators = area, yield, cost, reliability\n"
    else
      "words = 64, 128\n\
       bpw = 8\n\
       bpc = 4\n\
       spares = 0, 4, 8\n\
       mean_defects = 1, 4\n\
       evaluators = area, yield, cost, reliability\n"
  in
  match Spec.of_string text with
  | Ok s -> s
  | Error e ->
      Printf.eprintf "bench_json: bad built-in explore spec: %s\n" e;
      exit 1

let explore_sweep () =
  let spec = explore_spec () in
  let dir = Filename.temp_file "bisram-bench-explore" ".cache" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let run_timed ~resume =
    let res = ref None in
    let seconds =
      best_of 2 (fun () ->
          res := Some (Explore.run ~jobs:1 ~cache_dir:dir ~resume spec))
    in
    (Option.get !res, seconds)
  in
  (* cold: resume off ignores existing entries, so repeats stay cold *)
  let cold, cold_s = run_timed ~resume:false in
  let warm, warm_s = run_timed ~resume:true in
  let identical =
    String.equal (Explore.json_string cold) (Explore.json_string warm)
  in
  rm_rf_cache dir;
  let points = Array.length cold.Explore.points in
  let evals = Explore.evaluations cold in
  let rate hits = float_of_int hits /. float_of_int (max 1 evals) in
  let run_json (r : Explore.result) seconds =
    J.Obj
      [ ("seconds", J.Float seconds)
      ; ("points_per_sec", J.Float (float_of_int points /. seconds))
      ; ("cache_hits", J.Int r.Explore.cache_hits)
      ; ("cache_misses", J.Int r.Explore.cache_misses)
      ; ("hit_rate", J.Float (rate r.Explore.cache_hits))
      ]
  in
  J.Obj
    [ ("points", J.Int points)
    ; ("evaluations", J.Int evals)
    ; ("cold", run_json cold cold_s)
    ; ("warm", run_json warm warm_s)
    ; ("warm_speedup", J.Float (cold_s /. warm_s))
    ; ("reports_identical_cold_vs_warm", J.Bool identical)
    ]

(* ------------------------------------------------------------------ *)
(* kernel microbenchmarks: fast path vs legacy per-cell machinery *)

type kmeasure = { ns_per_op : float; ops : int; minor_words_per_op : float }

let kernel ~name ~variant m =
  J.Obj
    [ ("name", J.String name)
    ; ("variant", J.String variant)
    ; ("ns_per_op", J.Float m.ns_per_op)
    ; ("ops", J.Int m.ops)
    ; ("minor_words_per_op", J.Float m.minor_words_per_op)
    ]

let measure ~ops f =
  let seconds = best_of 3 f in
  let mw = minor_words_of f in
  { ns_per_op = seconds /. float_of_int ops *. 1e9
  ; ops
  ; minor_words_per_op = mw /. float_of_int ops
  }

let march_kernel ~fast =
  let org = Org.make ~words:1024 ~bpw:4 ~bpc:4 ~spares:4 () in
  let bgs = Datagen.required_backgrounds ~bpw:4 in
  let m = Model.create org in
  Model.set_fast_path m fast;
  let reps = if !smoke then 1 else 5 in
  let ops =
    reps * Engine.op_count Alg.ifa_9 org ~backgrounds:(List.length bgs)
  in
  measure ~ops (fun () ->
      for _ = 1 to reps do
        ignore (Engine.passes m Alg.ifa_9 ~backgrounds:bgs)
      done)

let word_rw_kernel ~fast =
  let org = Org.make ~words:4096 ~bpw:8 ~bpc:4 ~spares:4 () in
  let m = Model.create org in
  Model.set_fast_path m fast;
  let w = Word.of_int ~width:8 0xA5 in
  let reps = if !smoke then 2 else 20 in
  let ops = reps * org.Org.words * 2 in
  measure ~ops (fun () ->
      for _ = 1 to reps do
        for a = 0 to org.Org.words - 1 do
          Model.write_word m a w;
          ignore (Model.read_word m a)
        done
      done)

let clear_kernel ~dirty =
  (* dirty = full array written since last clear; clean = nothing
     written, so the dirty-row clear is O(1) row scans *)
  let org = Org.make ~words:4096 ~bpw:8 ~bpc:4 ~spares:4 () in
  let m = Model.create org in
  let w = Word.of_int ~width:8 0xFF in
  let reps = if !smoke then 10 else 200 in
  let m' =
    measure ~ops:reps (fun () ->
        for _ = 1 to reps do
          if dirty then
            for a = 0 to org.Org.words - 1 do
              Model.write_word m a w
            done;
          Model.clear m
        done)
  in
  (* ns_per_op for this kernel means ns per clear *)
  m'

let kernels () =
  let fast = march_kernel ~fast:true in
  let legacy = march_kernel ~fast:false in
  let rw_fast = word_rw_kernel ~fast:true in
  let rw_legacy = word_rw_kernel ~fast:false in
  let clear_clean = clear_kernel ~dirty:false in
  let clear_dirty = clear_kernel ~dirty:true in
  ( J.List
      [ kernel ~name:"ifa9_march_clean_4kb" ~variant:"fast" fast
      ; kernel ~name:"ifa9_march_clean_4kb" ~variant:"legacy" legacy
      ; kernel ~name:"word_rw_clean_32kb" ~variant:"fast" rw_fast
      ; kernel ~name:"word_rw_clean_32kb" ~variant:"legacy" rw_legacy
      ; kernel ~name:"clear_untouched_32kb" ~variant:"fast" clear_clean
      ; kernel ~name:"clear_after_full_write_32kb" ~variant:"fast" clear_dirty
      ]
  , J.Obj
      [ ( "ifa9_march_fast_vs_legacy"
        , J.Float (legacy.ns_per_op /. fast.ns_per_op) )
      ; ( "word_rw_fast_vs_legacy"
        , J.Float (rw_legacy.ns_per_op /. rw_fast.ns_per_op) )
      ] )

(* ------------------------------------------------------------------ *)
(* 2D BIRA: allocator throughput on a seeded synthetic problem set
   (allocation is pure line-cover, so this isolates the allocators from
   the simulation), plus the repair-rate win of 2D repair over row-only
   TLB repair at a defect density heavy enough that clustered faults
   exhaust the row spares.  At realistic (single-digit) fault counts
   the must-repair preamble resolves most problems outright, so even
   branch and bound stays in the hundreds of thousands of allocations
   per second; the repair-rate rows are seeded campaigns, so they are
   exact re-runnable numbers, not samples. *)

module Cover = Bisram_bira.Cover

let bira_problems ~count =
  let rng = Random.State.make [| 0xB12A; 1999 |] in
  List.init count (fun _ ->
      let n = 1 + Random.State.int rng 8 in
      let cells =
        List.init n (fun _ ->
            (Random.State.int rng 32, Random.State.int rng 32))
      in
      { Cover.rows = 32; cols = 32; spare_rows = 4; spare_cols = 2; cells })

let bira_allocators () =
  let count = if !smoke then 50 else 2000 in
  let problems = bira_problems ~count in
  let bench (module A : Cover.Allocator) =
    let covered =
      List.fold_left
        (fun n p ->
          match A.solve p with Cover.Cover _ -> n + 1 | Cover.Uncoverable -> n)
        0 problems
    in
    let seconds =
      best_of 3 (fun () -> List.iter (fun p -> ignore (A.solve p)) problems)
    in
    J.Obj
      [ ("allocator", J.String A.name)
      ; ("problems", J.Int count)
      ; ("covered", J.Int covered)
      ; ("seconds", J.Float seconds)
      ; ("allocations_per_sec", J.Float (float_of_int count /. seconds))
      ]
  in
  J.List
    (List.map bench
       [ (module Cover.Greedy : Cover.Allocator)
       ; (module Cover.Essential)
       ; (module Cover.Exhaustive)
       ])

let bira_repair_rates () =
  let org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 ~spare_cols:2 () in
  let trials = if !smoke then 10 else 80 in
  let run repair =
    let cfg =
      C.make_config ~org ~mode:(C.Poisson 3.0) ~repair ~trials ~seed:11
        ~shrink:false ()
    in
    let r = C.run ~jobs:1 cfg in
    (r.C.observed_yield_iterated, r.C.analytic_yield)
  in
  let row name repair =
    let observed, analytic = run repair in
    J.Obj
      [ ("repair", J.String name)
      ; ("observed_repair_rate", J.Float observed)
      ; ("analytic_yield", J.Float analytic)
      ]
  in
  J.Obj
    [ ("mode", J.String "poisson")
    ; ("mean_defects", J.Float 3.0)
    ; ("trials", J.Int trials)
    ; ("spare_rows", J.Int 4)
    ; ("spare_cols", J.Int 2)
    ; ( "rows"
      , J.List
          [ row "row-tlb" C.Row_tlb
          ; row "bira-greedy" (C.Bira Bisram_bira.Bira.Greedy)
          ; row "bira-bnb" (C.Bira Bisram_bira.Bira.Exhaustive)
          ] )
    ]

let bira_section () =
  J.Obj
    [ ("allocators", bira_allocators ())
    ; ("repair_rates", bira_repair_rates ())
    ]

(* ------------------------------------------------------------------ *)
(* telemetry: instrumentation overhead and access-regime hit ratios *)

(* The march kernel with the registry disabled vs enabled.  The
   disabled figure is the one to hold against the committed baseline:
   instrumentation must stay within noise (<2%) of the uninstrumented
   kernel when telemetry is off. *)
let telemetry_overhead () =
  Obs.set_enabled false;
  let disabled = march_kernel ~fast:true in
  Obs.set_enabled true;
  Obs.reset ();
  let enabled = march_kernel ~fast:true in
  Obs.set_enabled false;
  Obs.reset ();
  J.Obj
    [ ("kernel", J.String "ifa9_march_clean_4kb")
    ; ("disabled_ns_per_op", J.Float disabled.ns_per_op)
    ; ("enabled_ns_per_op", J.Float enabled.ns_per_op)
    ; ( "enabled_over_disabled"
      , J.Float (enabled.ns_per_op /. disabled.ns_per_op) )
    ]

(* Fast/legacy hit counts over a faulty campaign (default mix): the
   honest utilization of the packed store when real fault machinery is
   armed, not the fault-free best case the kernels measure. *)
let model_hit_ratios () =
  Obs.set_enabled true;
  Obs.reset ();
  let cfg =
    C.make_config ~mode:(C.Uniform 2)
      ~trials:(if !smoke then 5 else 50)
      ~seed:2024 ~shrink:false ()
  in
  ignore (C.run cfg);
  let snap = Obs.snapshot () in
  Obs.set_enabled false;
  Obs.reset ();
  let counter name =
    Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)
  in
  let fr = counter "model.fast_reads" and lr = counter "model.legacy_reads" in
  let fw = counter "model.fast_writes" and lw = counter "model.legacy_writes" in
  let ratio fast legacy =
    if fast + legacy = 0 then J.Null
    else J.Float (float_of_int fast /. float_of_int (fast + legacy))
  in
  J.Obj
    [ ("fast_reads", J.Int fr)
    ; ("legacy_reads", J.Int lr)
    ; ("fast_writes", J.Int fw)
    ; ("legacy_writes", J.Int lw)
    ; ("fast_read_ratio", ratio fr lr)
    ; ("fast_write_ratio", ratio fw lw)
    ]

(* ------------------------------------------------------------------ *)
(* resilience: the price of fault tolerance when nothing goes wrong
   (checkpointing a healthy campaign) and when everything does (healing
   a fully corrupted explore cache).  The acceptance line is that
   checkpointing must stay within 2% of the uncheckpointed run — the
   snapshot serializes the whole completed prefix, so this is the
   figure that catches an accidentally quadratic writer. *)

let checkpoint_overhead () =
  let trials = if !smoke then 20 else 400 in
  let cfg =
    C.make_config ~mode:(C.Uniform 0) ~trials ~seed:1999 ~shrink:false ()
  in
  let ckpt = Filename.temp_file "bisram-bench" ".ckpt.json" in
  let once every =
    match every with
    | 0 -> ignore (C.run ~jobs:1 cfg)
    | every ->
        ignore
          (C.run ~jobs:1 ~checkpoint:(C.checkpoint ~path:ckpt ~every ()) cfg)
  in
  (* interleave the configurations within each rep so a noise burst on
     a shared box penalizes every configuration alike instead of
     landing on one and reading as overhead (or as a speedup) *)
  let everys = [ 0; 100; 1000 ] in
  let best = Hashtbl.create 4 in
  List.iter (fun e -> Hashtbl.replace best e infinity) everys;
  ignore (C.run ~jobs:1 cfg) (* warm-up: page in code and heap *);
  let reps = if !smoke then 1 else 5 in
  for _ = 1 to reps do
    List.iter
      (fun e ->
        let _, s = time (fun () -> once e) in
        if s < Hashtbl.find best e then Hashtbl.replace best e s)
      everys
  done;
  let base = Hashtbl.find best 0 in
  let level every =
    let s = Hashtbl.find best every in
    let pct = (s -. base) /. base *. 100.0 in
    J.Obj
      [ ("every", J.Int every)
      ; ("seconds", J.Float s)
      ; ("overhead_pct", J.Float pct)
      ; ("within_acceptance", J.Bool (pct <= 2.0))
      ]
  in
  let levels = List.map level [ 100; 1000 ] in
  (try Sys.remove ckpt with Sys_error _ -> ());
  J.Obj
    [ ("trials", J.Int trials)
    ; ("baseline_seconds", J.Float base)
    ; ("acceptance_overhead_pct", J.Float 2.0)
    ; ("levels", J.List levels)
    ]

let corrupt_entries dir =
  Array.fold_left
    (fun n name ->
      if Filename.check_suffix name ".json" then begin
        let oc = open_out (Filename.concat dir name) in
        output_string oc "{ damaged";
        close_out oc;
        n + 1
      end
      else n)
    0 (Sys.readdir dir)

let self_heal_cost () =
  let spec = explore_spec () in
  let dir = Filename.temp_file "bisram-bench-heal" ".cache" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  ignore (Explore.run ~jobs:1 ~cache_dir:dir spec) (* populate *);
  let warm_s =
    best_of 2 (fun () ->
        ignore (Explore.run ~jobs:1 ~cache_dir:dir ~resume:true spec))
  in
  (* healing is one-shot by nature — the first pass repairs the cache —
     so it is a single sample, not a best-of *)
  let entries = corrupt_entries dir in
  let healed = ref None in
  let _, heal_s =
    time (fun () ->
        healed := Some (Explore.run ~jobs:1 ~cache_dir:dir ~resume:true spec))
  in
  let quarantined =
    match !healed with
    | Some r -> r.Explore.cache_stats.Bisram_explore.Cache.st_quarantined
    | None -> 0
  in
  rm_rf_cache dir;
  J.Obj
    [ ("entries_corrupted", J.Int entries)
    ; ("entries_quarantined", J.Int quarantined)
    ; ("warm_seconds", J.Float warm_s)
    ; ("heal_seconds", J.Float heal_s)
    ; ("heal_over_warm", J.Float (heal_s /. warm_s))
    ]

let resilience () =
  J.Obj
    [ ("checkpoint", checkpoint_overhead ())
    ; ("cache_self_heal", self_heal_cost ())
    ]

(* ------------------------------------------------------------------ *)
(* --smoke: exercise the exporters end to end (write, re-read, parse,
   check required keys) so `make bench-smoke` catches exporter bit-rot *)

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let smoke_exporters () =
  Obs.set_enabled true;
  Obs.reset ();
  let cfg =
    C.make_config ~mode:(C.Uniform 2) ~trials:5 ~seed:7 ~shrink:false ()
  in
  ignore (C.run ~jobs:1 cfg);
  let snap = Obs.snapshot () in
  Obs.set_enabled false;
  Obs.reset ();
  let check label doc required_key =
    let path = Filename.temp_file "bisram-bench-smoke" ".json" in
    let oc = open_out path in
    output_string oc (J.to_pretty_string doc);
    close_out oc;
    let contents = read_file path in
    Sys.remove path;
    match J.of_string contents with
    | Error e ->
        Printf.eprintf "bench_json: %s exporter wrote unparseable JSON: %s\n"
          label e;
        exit 1
    | Ok j ->
        if J.member required_key j = None then begin
          Printf.eprintf "bench_json: %s exporter output lacks %S\n" label
            required_key;
          exit 1
        end
  in
  check "trace" (Export.chrome_trace_json snap) "traceEvents";
  check "metrics" (Export.metrics_json snap) "counters";
  prerr_endline "bench_json: exporter smoke OK (trace + metrics parsed back)"

(* ------------------------------------------------------------------ *)
(* BENCH_history.jsonl: one compact line per baseline regeneration —
   the trajectory file that lets a later PR see throughput drift at a
   glance without diffing full baselines.  Only full (non-smoke,
   non-quick) runs append; their numbers are the only trustworthy
   ones. *)

let jget k j = Option.value ~default:J.Null (J.member k j)
let jlist = function J.List l -> l | _ -> []

let history_line doc =
  let jobs1_tps =
    match jlist (jget "runs" (jget "campaign" doc)) with
    | first :: _ -> jget "trials_per_sec" first
    | [] -> J.Null
  in
  let lane62_speedup =
    Option.value ~default:J.Null
      (List.find_map
         (fun r ->
           match J.member "lanes" r with
           | Some (J.Int 62) -> J.member "speedup_vs_scalar" r
           | _ -> None)
         (jlist (jget "runs" (jget "lanes" doc))))
  in
  (* the lowest density is the last one benched — the headline row *)
  let lowest =
    match List.rev (jlist (jget "densities" (jget "estimator" doc))) with
    | d :: _ -> d
    | [] -> J.Null
  in
  let strategy_seconds name =
    Option.value ~default:J.Null
      (List.find_map
         (fun r ->
           match J.member "strategy" r with
           | Some (J.String s) when String.equal s name -> J.member "seconds" r
           | _ -> None)
         (jlist (jget "rows" lowest)))
  in
  let bira_allocs_per_sec name =
    Option.value ~default:J.Null
      (List.find_map
         (fun r ->
           match J.member "allocator" r with
           | Some (J.String s) when String.equal s name ->
               J.member "allocations_per_sec" r
           | _ -> None)
         (jlist (jget "allocators" (jget "bira" doc))))
  in
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let utc =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  J.Obj
    [ ("schema", J.String "bisram-bench-history/1")
    ; ("utc", J.String utc)
    ; ("bench_schema", jget "schema" doc)
    ; ("campaign_trials_per_sec_jobs1", jobs1_tps)
    ; ("lanes62_speedup", lane62_speedup)
    ; ("estimator_lambda", jget "lambda" lowest)
    ; ("estimator_seconds_to_ci_naive", strategy_seconds "naive")
    ; ("estimator_seconds_to_ci_stratified", strategy_seconds "stratified")
    ; ("estimator_seconds_to_ci_importance", strategy_seconds "importance")
    ; ("bira_greedy_allocs_per_sec", bira_allocs_per_sec "bira-greedy")
    ; ("bira_bnb_allocs_per_sec", bira_allocs_per_sec "bira-bnb")
    ]

let append_history ~path doc =
  (* History.append is skip-and-warn over whatever is already in the
     file and dedupes on (utc, bench_schema), so a re-run bench or a
     damaged tracked file never compounds the damage *)
  let status, warnings = Bisram_obs.History.append ~path (history_line doc) in
  List.iter (Printf.eprintf "bench_json: %s\n") warnings;
  match status with
  | `Appended -> Printf.printf "appended %s\n" path
  | `Duplicate ->
      Printf.printf "skipped %s: identical (utc, schema) record present\n" path
  | `Error e -> Printf.eprintf "bench_json: cannot append %s: %s\n" path e

(* ------------------------------------------------------------------ *)

let () =
  let out = ref "BENCH_campaign.json" in
  let out_set = ref false in
  let trials = ref 200 in
  let trials_set = ref false in
  let rec parse = function
    | [] -> ()
    | "-o" :: path :: rest ->
        out := path;
        out_set := true;
        parse rest
    | "--trials" :: n :: rest ->
        trials := int_of_string n;
        trials_set := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | a :: _ ->
        Printf.eprintf "bench_json: unknown argument %S\n" a;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke then begin
    if not !trials_set then trials := 20;
    if not !out_set then begin
      Printf.eprintf
        "bench_json: --smoke numbers are noise; pass -o to write them \
         somewhere other than the committed baseline\n";
      exit 1
    end
  end;
  (* --quick times only the regression-gated sections (campaign +
     lanes) with single-rep best-of; good enough for bench-check's
     tolerance band but not for the committed baseline *)
  if !quick && not !out_set then begin
    Printf.eprintf
      "bench_json: --quick skips sections and single-samples timings; pass \
       -o to write somewhere other than the committed baseline\n";
    exit 1
  end;
  if !smoke then smoke_exporters ();
  let jobs_levels =
    if !quick then [ 1 ] else if !smoke then [ 1; 2 ] else [ 1; 2; 4 ]
  in
  let campaign = campaign_runs ~trials:!trials ~jobs_levels in
  let lanes = lane_runs ~trials:248 in
  let full name f = if !quick then (name, J.Null) else (name, f ()) in
  let estimator = if !quick then J.Null else estimator_runs () in
  let kernels, derived =
    if !quick then (J.Null, J.Null)
    else
      let k, d = kernels () in
      (k, d)
  in
  let doc =
    J.Obj
      [ ("schema", J.String "bisram-bench/8")
        (* cores mirrors recommended_jobs (Domain.recommended_domain_count):
           the exact gate behind the jobs_exceed_cores skips above, recorded
           so a skip is auditable from the JSON alone *)
      ; ( "machine"
        , J.Obj
            [ ("cores", J.Int (Pool.recommended_jobs ()))
            ; ("recommended_jobs", J.Int (Pool.recommended_jobs ()))
            ; ("ocaml", J.String Sys.ocaml_version)
            ; ("word_size", J.Int Sys.word_size)
            ] )
      ; ("smoke", J.Bool !smoke)
      ; ("quick", J.Bool !quick)
      ; ("campaign", campaign)
      ; ("lanes", lanes)
      ; ("estimator", estimator)
      ; full "explore" explore_sweep
      ; ("kernels", kernels)
      ; ("derived", derived)
      ; full "bira" bira_section
      ; full "telemetry" telemetry_overhead
      ; full "model_hits" model_hit_ratios
      ; full "resilience" resilience
      ]
  in
  let oc = open_out !out in
  output_string oc (J.to_pretty_string doc);
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  if (not !smoke) && not !quick then
    append_history
      ~path:(Filename.concat (Filename.dirname !out) "BENCH_history.jsonl")
      doc
