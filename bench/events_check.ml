(* Structural validator for the observability side channels, used by
   `make events-smoke`: strict-parses every line of a JSONL event log
   produced by `bisramgen campaign --events` through the same parser
   the library exports (so schema drift between writer and reader is
   impossible to miss), checks the run lifecycle invariants, and
   optionally validates a --status-file snapshot.  Exit 0 on success,
   1 with a message on the first violation. *)

module J = Bisram_obs.Json
module Events = Bisram_obs.Events

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("events_check: " ^ m); exit 1) fmt

let read_file path =
  match open_in path with
  | exception Sys_error e -> fail "cannot open %s: %s" path e
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

(* ------------------------------------------------------------------ *)

let check_events path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s has no events" path;
  let parsed =
    List.mapi
      (fun i line ->
        match Events.parse_line line with
        | Ok ev -> ev
        | Error e -> fail "%s:%d: %s" path (i + 1) e)
      lines
  in
  let saw name =
    List.exists (fun ev -> String.equal ev.Events.ev_name name) parsed
  in
  (* every run emits exactly one lifecycle pair; a log without them is
     a truncated or mis-merged capture *)
  if not (saw "run.start") then fail "%s lacks a run.start event" path;
  if not (saw "run.end") then fail "%s lacks a run.end event" path;
  (* drain sorts by (ts_ns, tid, seq); a written log must still be in
     that order or the writer regressed *)
  let ordered =
    let rec ok = function
      | a :: (b :: _ as rest) ->
          let c = Int64.compare a.Events.ev_ts_ns b.Events.ev_ts_ns in
          (c < 0
          || (c = 0
             && (a.Events.ev_tid < b.Events.ev_tid
                || (a.Events.ev_tid = b.Events.ev_tid
                   && a.Events.ev_seq <= b.Events.ev_seq))))
          && ok rest
      | _ -> true
    in
    ok parsed
  in
  if not ordered then fail "%s events are not in (ts_ns, tid, seq) order" path;
  Printf.printf "events_check: %s OK (%d events)\n" path (List.length parsed)

(* ------------------------------------------------------------------ *)

let check_status path =
  let j =
    match J.of_string (read_file path) with
    | Ok j -> j
    | Error e -> fail "status file %s is not valid JSON: %s" path e
  in
  (match J.member "schema" j with
  | Some (J.String "bisram-progress/1") -> ()
  | Some (J.String s) ->
      fail "status schema is %S, expected \"bisram-progress/1\"" s
  | _ -> fail "status file %s lacks a schema string" path);
  let require_int key =
    match J.member key j with
    | Some (J.Int _) -> ()
    | Some _ -> fail "status %S is not an integer" key
    | None -> fail "status file %s lacks %S" path key
  in
  List.iter require_int
    [ "done"; "escapes"; "divergences"; "tool_errors"; "clean" ];
  (match J.member "finished" j with
  | Some (J.Bool true) -> ()
  | Some (J.Bool false) ->
      fail "status file %s is not final (finished = false after the run)" path
  | _ -> fail "status file %s lacks a boolean \"finished\"" path);
  Printf.printf "events_check: %s OK\n" path

(* ------------------------------------------------------------------ *)

let () =
  let events = ref None and status = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--events" :: path :: rest ->
        events := Some path;
        parse_args rest
    | "--status" :: path :: rest ->
        status := Some path;
        parse_args rest
    | a :: _ ->
        fail "unknown argument %S (usage: events_check --events FILE --status FILE)"
          a
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !events = None && !status = None then
    fail "nothing to check (usage: events_check --events FILE --status FILE)";
  Option.iter check_events !events;
  Option.iter check_status !status
