(* BISRAMGEN command-line driver.

   Subcommands:
     compile    generate a BISR RAM module: datasheet, floorplan, CIF
     selftest   inject faults into the generated RAM and run BIST/BISR
     campaign   randomized Monte Carlo test-and-repair campaign
     explore    parallel design-space sweep with memoized evaluations
     processes  list the bundled CMOS processes
     marches    list the bundled march algorithms *)

open Cmdliner

module Config = Bisram_core.Config
module Compiler = Bisram_core.Compiler
module Pr = Bisram_tech.Process
module Org = Bisram_sram.Org
module March = Bisram_bist.March
module Alg = Bisram_bist.Algorithms
module I = Bisram_faults.Injection
module Repair = Bisram_bisr.Repair
module Floorplan = Bisram_pr.Floorplan
module Campaign = Bisram_campaign.Campaign
module Estimator = Bisram_campaign.Estimator
module Proposal = Bisram_faults.Proposal
module Obs = Bisram_obs.Obs
module Obs_export = Bisram_obs.Export
module Events = Bisram_obs.Events
module Progress = Bisram_obs.Progress
module Json = Bisram_obs.Json

(* ------------------------------------------------------------------ *)
(* shared arguments *)

let process_arg =
  let doc = "CMOS process (cda.5u3m1p, mos.6u3m1pHP, cda.7u3m1p)." in
  Arg.(value & opt string "CDA.7u3m1p" & info [ "p"; "process" ] ~doc)

let words_arg =
  let doc = "Number of words (positive multiple of bpc)." in
  Arg.(value & opt int 4096 & info [ "w"; "words" ] ~doc)

let bpw_arg =
  let doc = "Bits per word (power of two)." in
  Arg.(value & opt int 128 & info [ "bpw" ] ~doc)

let bpc_arg =
  let doc = "Bits per column / column-mux degree (power of two)." in
  Arg.(value & opt int 8 & info [ "bpc" ] ~doc)

let spares_arg =
  let doc = "Spare rows: 0, 4, 8 or 16." in
  Arg.(value & opt int 4 & info [ "s"; "spares" ] ~doc)

let spare_cols_arg =
  let doc = "Spare columns for 2D (BIRA) repair: 0 .. 8." in
  Arg.(value & opt int 0 & info [ "spare-cols" ] ~doc)

let drive_arg =
  let doc = "Critical-gate size multiplier (1-8)." in
  Arg.(value & opt int 2 & info [ "drive" ] ~doc)

let strap_arg =
  let doc = "Cells between strap columns (0 disables)." in
  Arg.(value & opt int 32 & info [ "strap" ] ~doc)

let march_arg =
  let doc =
    "March algorithm: a library name (IFA-9, IFA-13, MATS+, \"March C-\", \
     \"March B\", Zero-One) or an inline notation like \
     \"u(w0); u(r0,w1); d(r1,w0)\"."
  in
  Arg.(value & opt string "IFA-9" & info [ "m"; "march" ] ~doc)

let lookup_process name =
  match Pr.find name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown process %S (see `bisramgen processes')" name)

let lookup_march s =
  match Alg.find s with
  | Some m -> Ok m
  | None -> (
      match March.of_string ~name:"custom" s with
      | m -> Ok m
      | exception Invalid_argument e -> Error e)

(* The --jobs contract is shared by every parallel subcommand (campaign,
   explore): default 1 (fully sequential), 0 auto-detects the machine's
   recommended domain count, negative is an error.  One arg + one
   resolver, so the subcommands cannot drift. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains running work items concurrently (default 1, fully \
           sequential; 0 auto-detects the machine's recommended domain \
           count).  Reports are byte-identical at any $(docv).")

let resolve_jobs jobs =
  if jobs < 0 then
    Error (Printf.sprintf "--jobs must be >= 0 (got %d; 0 = auto-detect)" jobs)
  else if jobs = 0 then Ok (Bisram_parallel.Pool.recommended_jobs ())
  else Ok jobs

let build_config ~process ~words ~bpw ~bpc ~spares ~spare_cols ~drive ~strap
    ~march =
  match (lookup_process process, lookup_march march) with
  | Error e, _ | _, Error e -> Error e
  | Ok p, Ok m -> (
      match
        Config.make ~spares ~spare_cols ~drive ~strap ~march:m ~process:p
          ~words ~bpw ~bpc ()
      with
      | cfg -> Ok cfg
      | exception Invalid_argument e -> Error e)

(* ------------------------------------------------------------------ *)
(* compile *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let do_compile process words bpw bpc spares spare_cols drive strap march
    config_file show_floorplan show_rtl cif_dir =
  let cfg_result =
    match config_file with
    | Some path -> (
        match Bisram_core.Config_file.of_string (read_file path) with
        | Ok cfg -> Ok cfg
        | Error e -> Error (path ^ ": " ^ e)
        | exception Sys_error e -> Error e)
    | None ->
        build_config ~process ~words ~bpw ~bpc ~spares ~spare_cols ~drive
          ~strap ~march
  in
  match cfg_result with
  | Error e ->
      Printf.eprintf "bisramgen: %s\n" e;
      1
  | Ok cfg ->
      let d = Compiler.compile cfg in
      print_string (Compiler.datasheet d);
      if show_floorplan then begin
        Format.printf "@.%a@." Floorplan.pp d.Compiler.floorplan;
        print_string (Floorplan.render ~width:76 d.Compiler.floorplan)
      end;
      if show_rtl then begin
        print_newline ();
        print_string (Compiler.rtl d)
      end;
      (match cif_dir with
      | None -> ()
      | Some dir ->
          (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
          List.iter
            (fun (name, cif) ->
              let path = Filename.concat dir (name ^ ".cif") in
              let oc = open_out path in
              output_string oc cif;
              close_out oc;
              Printf.printf "wrote %s\n" path)
            (Compiler.leaf_library_cif d));
      0

let compile_cmd =
  let floorplan_arg =
    Arg.(value & flag & info [ "floorplan" ] ~doc:"Print the placed floorplan.")
  in
  let cif_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cif" ] ~docv:"DIR" ~doc:"Write the leaf-cell library as CIF files into $(docv).")
  in
  let rtl_arg =
    Arg.(
      value & flag
      & info [ "rtl" ] ~doc:"Print the BIST/BISR engine as structural Verilog.")
  in
  let config_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "c"; "config" ] ~docv:"FILE"
          ~doc:"Read the configuration from a key = value file (overrides the individual flags).")
  in
  let term =
    Term.(
      const do_compile $ process_arg $ words_arg $ bpw_arg $ bpc_arg
      $ spares_arg $ spare_cols_arg $ drive_arg $ strap_arg $ march_arg
      $ config_arg $ floorplan_arg $ rtl_arg $ cif_arg)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Generate a BISR RAM module.") term

(* ------------------------------------------------------------------ *)
(* selftest *)

let do_selftest process words bpw bpc spares spare_cols drive strap march
    nfaults seed_opt =
  match
    build_config ~process ~words ~bpw ~bpc ~spares ~spare_cols ~drive ~strap
      ~march
  with
  | Error e ->
      Printf.eprintf "bisramgen: %s\n" e;
      1
  | Ok cfg when not (Org.simulable cfg.Config.org) ->
      Printf.eprintf
        "bisramgen: selftest simulates the RAM word-by-word, which needs bpw \
         <= %d (got %d); wider organizations are compile-only\n"
        Bisram_sram.Word.max_width cfg.Config.org.Org.bpw;
      1
  | Ok cfg ->
      let org = cfg.Config.org in
      (* no --seed: draw one from the system and print it, so any run
         remains reproducible after the fact *)
      let seed =
        match seed_opt with
        | Some s -> s
        | None -> Random.State.int (Random.State.make_self_init ()) 0x3FFFFFFF
      in
      Format.printf "seed    : %d@." seed;
      let rng = Random.State.make [| seed |] in
      let faults =
        I.inject rng ~rows:(Org.total_rows org) ~cols:(Org.cols org)
          ~mix:I.default_mix ~n:nfaults
      in
      Format.printf "injected %d fault(s):@." nfaults;
      List.iter (fun f -> Format.printf "  %a@." Bisram_faults.Fault.pp f) faults;
      let d = Compiler.compile cfg in
      let outcome, report = Compiler.self_test d ~faults in
      Format.printf "outcome : %a@." Repair.pp_outcome outcome;
      Format.printf "cycles  : %d@." report.Bisram_bist.Controller.cycles;
      Format.printf "recorded: %d row(s)@."
        report.Bisram_bist.Controller.faults_recorded;
      (match outcome with Repair.Repair_unsuccessful _ -> 2 | _ -> 0)

let selftest_cmd =
  (* selftest simulates every word access, so its defaults are a
     simulable organization (bpw <= Word.max_width), independent of
     compile's datasheet defaults *)
  let st_words =
    Arg.(value & opt int 4096 & info [ "w"; "words" ] ~doc:"Number of words.")
  in
  let st_bpw =
    Arg.(
      value & opt int 32
      & info [ "bpw" ] ~doc:"Bits per word (power of two, at most 62).")
  in
  let st_bpc =
    Arg.(value & opt int 8 & info [ "bpc" ] ~doc:"Bits per column.")
  in
  let nfaults_arg =
    Arg.(value & opt int 2 & info [ "n"; "faults" ] ~doc:"Faults to inject.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ]
          ~doc:
            "Random seed (printed, so the run is replayable; a fresh one is \
             drawn when omitted).")
  in
  let term =
    Term.(
      const do_selftest $ process_arg $ st_words $ st_bpw $ st_bpc
      $ spares_arg $ spare_cols_arg $ drive_arg $ strap_arg $ march_arg
      $ nfaults_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "selftest"
       ~doc:
         "Inject random faults and run the two-pass self-test/repair \
          (exit code 2 when the repair is unsuccessful).")
    term

(* ------------------------------------------------------------------ *)
(* campaign *)

let retention_only_mix =
  { I.stuck_at = 0.0
  ; transition = 0.0
  ; stuck_open = 0.0
  ; coupling_inversion = 0.0
  ; coupling_idempotent = 0.0
  ; state_coupling = 0.0
  ; data_retention = 1.0
  }

(* Telemetry runs around the campaign, never inside its report: the
   trace/metrics/stats artifacts are written to their own files (or
   stderr), and stdout still carries the byte-identical JSON report. *)
let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let export_telemetry ~trace ~metrics ~stats =
  let snap = Obs.snapshot () in
  (match trace with
  | None -> ()
  | Some path ->
      write_file path (Json.to_pretty_string (Obs_export.chrome_trace_json snap));
      Printf.eprintf "wrote trace %s (load in Perfetto / chrome://tracing)\n"
        path);
  (match metrics with
  | None -> ()
  | Some path ->
      write_file path (Json.to_pretty_string (Obs_export.metrics_json snap));
      Printf.eprintf "wrote metrics %s\n" path);
  if stats then prerr_string (Obs_export.stats_table snap)

(* The event stream works like telemetry: armed before the run, drained
   to its own JSONL file after it, stdout untouched.  Arming validates
   the level eagerly so a typo is an exit-2 configuration error, not a
   silently empty log. *)
let setup_events ~events ~events_level =
  match Events.level_of_string events_level with
  | Error e -> Error ("--events-level: " ^ e)
  | Ok lvl ->
      if Option.is_some events then begin
        Events.set_min_level lvl;
        Events.set_enabled true;
        Events.reset ()
      end;
      Ok ()

let export_events ~events =
  match events with
  | None -> ()
  | Some path -> (
      let evs = Events.drain () in
      match open_out path with
      | exception Sys_error e ->
          Printf.eprintf "bisramgen: cannot write events %s: %s\n" path e
      | oc ->
          Events.write_jsonl oc evs;
          close_out oc;
          Printf.eprintf "wrote %d event(s) to %s\n" (List.length evs) path)

(* Progress rendering shares one construction across subcommands: armed
   by --progress (stderr line) and/or --status-file (atomic JSON
   snapshot); absent both, no reporter exists and the run pays
   nothing. *)
let make_progress ?total ?label ?show_anomalies ~progress ~status_file () =
  if progress || Option.is_some status_file then
    Some
      (Progress.create ?total ?status_file ~to_stderr:progress ?label
         ?show_anomalies ())
  else None

(* observability flags shared by campaign and explore *)
let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Write a structured JSONL event log (run lifecycle, pool retries \
           and deadline kills, chaos injections, cache quarantines, \
           checkpoint writes, estimator adaptive batches) to $(docv) after \
           the run.  Like telemetry, events never change the report.")

let events_level_arg =
  Arg.(
    value & opt string "info"
    & info [ "events-level" ] ~docv:"LEVEL"
        ~doc:
          "Minimum level recorded by $(b,--events): debug, info or warn \
           (debug adds per-key cache hit/miss events).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Maintain a live one-line progress display on stderr (done/total, \
           anomaly counts, throughput, ETA, and the CI half-width under \
           adaptive stopping).  stdout still carries the byte-identical \
           JSON report.")

let status_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "status-file" ] ~docv:"FILE"
        ~doc:
          "Atomically rewrite $(docv) with a machine-readable JSON progress \
           snapshot (schema bisram-progress/1) on each progress tick, for \
           external pollers; write failures warn once and never kill the \
           run.")

let do_campaign words bpw bpc spares spare_cols march trials seed mode nfaults
    mean alpha mix repair max_seconds no_shrink max_rounds jobs batch_lanes
    trace metrics stats
    events events_level progress status_file replay_seed fail_on_anomaly
    checkpoint_path checkpoint_every resume trial_deadline confidence target_ci
    ci_metric ci_batch ci_max_trials prop_scale prop_shift prop_nonzero
    prop_mix =
  let jobs_result = resolve_jobs jobs in
  let named_mix name =
    match name with
    | "default" -> Ok I.default_mix
    | "stuck-at" -> Ok I.stuck_at_only
    | "retention" -> Ok retention_only_mix
    | s ->
        Error
          (Printf.sprintf
             "unknown mix %S (expected default, stuck-at or retention)" s)
  in
  let mix_result = named_mix mix in
  (* The proposal is assembled from plain flags; anything it can get
     wrong (negative shift, stratified fraction outside (0,1), a
     proposal mix starving a nominal class, …) is caught by
     [Proposal.validate] inside [make_config] and lands in the same
     exit-2 diagnostic channel as every other bad flag. *)
  let proposal_result =
    let count_result =
      match prop_nonzero with
      | Some nonzero ->
          if prop_scale <> 1.0 || prop_shift <> 0.0 then
            Error
              "--proposal-nonzero is exclusive with --proposal-count-scale \
               and --proposal-count-shift"
          else Ok (Proposal.Stratified { nonzero })
      | None ->
          if prop_scale = 1.0 && prop_shift = 0.0 then Ok Proposal.Count_nominal
          else Ok (Proposal.Scaled { scale = prop_scale; shift = prop_shift })
    in
    let mix_result =
      match prop_mix with
      | "nominal" -> Ok None
      | name -> Result.map Option.some (named_mix name)
    in
    match (count_result, mix_result) with
    | Error e, _ | _, Error e -> Error e
    | Ok count, Ok mix -> Ok { Proposal.count; mix }
  in
  let ci_metric_result =
    match ci_metric with
    | "repair-failure" -> Ok Estimator.Repair_failure_two_pass
    | "repair-failure-iterated" -> Ok Estimator.Repair_failure_iterated
    | "escape" -> Ok Estimator.Escape
    | s ->
        Error
          (Printf.sprintf
             "unknown --ci-metric %S (expected repair-failure, \
              repair-failure-iterated or escape)" s)
  in
  let mode_result =
    match mode with
    | "uniform" -> Ok (Campaign.Uniform nfaults)
    | "poisson" -> Ok (Campaign.Poisson mean)
    | "clustered" -> Ok (Campaign.Clustered { mean; alpha })
    | s ->
        Error
          (Printf.sprintf
             "unknown mode %S (expected uniform, poisson or clustered)" s)
  in
  let repair_result =
    match Campaign.repair_of_name repair with
    | Some r -> Ok r
    | None ->
        Error
          (Printf.sprintf
             "unknown --repair %S (expected row-tlb, bira-greedy, \
              bira-essential or bira-bnb)" repair)
  in
  let cfg_result =
    match
      ( lookup_march march
      , mix_result
      , mode_result
      , jobs_result
      , proposal_result
      , ci_metric_result )
    with
    | Error e, _, _, _, _, _
    | _, Error e, _, _, _, _
    | _, _, Error e, _, _, _
    | _, _, _, Error e, _, _
    | _, _, _, _, Error e, _
    | _, _, _, _, _, Error e ->
        Error e
    | Ok m, Ok mix, Ok mode, Ok jobs, Ok proposal, Ok ci_metric -> (
        match repair_result with
        | Error e -> Error e
        | Ok repair -> (
        match
          let org = Org.make ~spares ~spare_cols ~words ~bpw ~bpc () in
          let cfg =
            Campaign.make_config ~org ~march:m ~mix ~mode ~proposal ~repair
              ~trials ~seed ?max_seconds ~shrink:(not no_shrink) ~max_rounds ()
          in
          (match trial_deadline with
          | Some s when s <= 0.0 ->
              invalid_arg "--trial-deadline must be positive"
          | _ -> ());
          if batch_lanes < 1 || batch_lanes > Campaign.max_lanes then
            invalid_arg
              (Printf.sprintf "--batch-lanes must be in 1 .. %d"
                 Campaign.max_lanes);
          (match target_ci with
          | None -> ()
          | Some t ->
              if t <= 0.0 then invalid_arg "--target-ci must be positive";
              if ci_batch < 1 then invalid_arg "--ci-batch must be >= 1";
              if ci_max_trials < 1 then
                invalid_arg "--ci-max-trials must be >= 1";
              if checkpoint_every > 0 || resume then
                invalid_arg
                  "--target-ci (adaptive stopping) is incompatible with \
                   --checkpoint-every and --resume (checkpoints cover a \
                   fixed trial count)";
              if Option.is_some replay_seed then
                invalid_arg "--target-ci is incompatible with --replay");
          let ck =
            if checkpoint_every > 0 || resume then
              Some
                (Campaign.checkpoint ~path:checkpoint_path
                   ~every:checkpoint_every ~resume ())
            else None
          in
          (cfg, ck)
        with
        (* the resolved job count stays out of the config: the report
           must not depend on the machine the campaign happened to
           run on *)
        | cfg, ck -> Ok (cfg, jobs, ck, ci_metric)
        | exception Invalid_argument e -> Error e))
  in
  match cfg_result with
  | Error e ->
      (* one-line diagnostic, never a backtrace; exit 2 = invalid
         configuration (distinct from 1 = runtime error, 3 = anomaly) *)
      Printf.eprintf "bisramgen: invalid configuration: %s\n" e;
      2
  | Ok (cfg, jobs, ck, ci_metric) -> (
      match setup_events ~events ~events_level with
      | Error e ->
          Printf.eprintf "bisramgen: invalid configuration: %s\n" e;
          2
      | Ok () -> (
      let telemetry = trace <> None || metrics <> None || stats in
      if telemetry then begin
        Obs.set_enabled true;
        Obs.reset ()
      end;
      let finish code =
        if telemetry then export_telemetry ~trace ~metrics ~stats;
        export_events ~events;
        code
      in
      match replay_seed with
      | Some rseed ->
          let t = Campaign.replay cfg ~seed:rseed in
          Format.printf "%a" Campaign.pp_trial t;
          List.iter
            (fun anomaly ->
              let shrunk = Campaign.shrink_anomaly cfg anomaly t.Campaign.t_faults in
              if List.length shrunk < List.length t.Campaign.t_faults then begin
                Format.printf "shrunk reproducer: %d fault(s)@."
                  (List.length shrunk);
                List.iter
                  (fun f ->
                    Format.printf "  %a@." Bisram_faults.Fault.pp f)
                  shrunk
              end)
            t.Campaign.t_anomalies;
          finish (if t.Campaign.t_anomalies = [] then 0 else 3)
      | None ->
          (* SIGINT drains instead of killing: the flag is polled by
             every worker before each trial (an Atomic.get, so it is
             domain-safe), in-flight trials finish, and the maximal
             contiguous prefix is still reported — exactly the
             wall-clock-budget truncation semantics.  A second SIGINT
             falls through to the restored default handler. *)
          let sigint = Atomic.make false in
          let prev_sigint =
            try
              Some
                (Sys.signal Sys.sigint
                   (Sys.Signal_handle (fun _ -> Atomic.set sigint true)))
            with Invalid_argument _ | Sys_error _ -> None
          in
          let r, adaptive =
            Fun.protect
              ~finally:(fun () ->
                match prev_sigint with
                | Some h -> Sys.set_signal Sys.sigint h
                | None -> ())
              (fun () ->
                let should_stop () = Atomic.get sigint in
                let reporter =
                  make_progress
                    ~total:
                      (match target_ci with
                      | Some _ -> ci_max_trials
                      | None -> cfg.Campaign.trials)
                    ~progress ~status_file ()
                in
                let on_progress =
                  Option.map
                    (fun p (pr : Campaign.progress) ->
                      Progress.update p ~done_:pr.Campaign.p_done
                        ~escapes:pr.Campaign.p_escapes
                        ~divergences:pr.Campaign.p_divergences
                        ~tool_errors:pr.Campaign.p_tool_errors
                        ~clean:pr.Campaign.p_clean)
                    reporter
                in
                let on_batch =
                  Option.map
                    (fun p ~batches:_ ~trials:_ ~rel_half_width ->
                      if Float.is_finite rel_half_width then
                        Progress.note_ci p ~rel_half_width)
                    reporter
                in
                Fun.protect
                  ~finally:(fun () -> Option.iter Progress.finish reporter)
                  (fun () ->
                    match target_ci with
                    | Some target ->
                        let a =
                          Estimator.run_adaptive ~jobs ~lanes:batch_lanes
                            ~should_stop ?trial_deadline ~batch:ci_batch
                            ~metric:ci_metric ~max_trials:ci_max_trials
                            ?on_progress ?on_batch ~target cfg
                        in
                        (a.Estimator.a_result, Some a)
                    | None ->
                        ( Campaign.run ~jobs ~lanes:batch_lanes ~should_stop
                            ?checkpoint:ck ?trial_deadline ?on_progress cfg
                        , None )))
          in
          (* estimation fully off: the exact pre-estimator schema-/2
             bytes.  Any estimation feature (a proposal, adaptive
             stopping, or an explicit --confidence) switches to the
             schema-/3 report with the confidence section. *)
          let estimation_on =
            confidence
            || Option.is_some adaptive
            || Option.is_some cfg.Campaign.proposal
          in
          if estimation_on then
            print_string (Estimator.pretty_report_string ?adaptive r)
          else print_string (Campaign.pretty_json_string r);
          (match adaptive with
          | Some a ->
              Printf.eprintf
                "bisramgen: adaptive stop after %d trial(s) in %d batch(es): \
                 %s (rel CI half-width %.4g, target %.4g)\n"
                r.Campaign.trials_run a.Estimator.a_batches
                (Estimator.stop_reason_name a.Estimator.a_reason)
                a.Estimator.a_rel_half_width a.Estimator.a_target
          | None -> ());
          if r.Campaign.resumed_trials > 0 then
            Printf.eprintf "bisramgen: resumed %d trial(s) from checkpoint\n"
              r.Campaign.resumed_trials;
          if r.Campaign.tool_errors <> [] then
            Printf.eprintf "bisramgen: %d trial(s) recorded as tool errors\n"
              (List.length r.Campaign.tool_errors);
          if Atomic.get sigint then begin
            Printf.eprintf
              "bisramgen: interrupted; report covers the first %d trial(s)\n"
              r.Campaign.trials_run;
            finish 130
          end
          else
            finish
              (if
                 fail_on_anomaly
                 && (r.Campaign.escapes <> [] || r.Campaign.divergences <> [])
               then 3
               else 0)))

let campaign_cmd =
  (* the campaign simulates every trial word-by-word, so its defaults
     are a small organization, independent of compile's *)
  let c_words =
    Arg.(value & opt int 64 & info [ "w"; "words" ] ~doc:"Number of words.")
  in
  let c_bpw = Arg.(value & opt int 8 & info [ "bpw" ] ~doc:"Bits per word.") in
  let c_bpc =
    Arg.(value & opt int 4 & info [ "bpc" ] ~doc:"Bits per column.")
  in
  let c_spares =
    Arg.(value & opt int 4 & info [ "s"; "spares" ] ~doc:"Spare rows.")
  in
  let c_spare_cols =
    Arg.(
      value & opt int 0
      & info [ "spare-cols" ]
          ~doc:"Spare columns (0 .. 8), deployed by the BIRA strategies.")
  in
  let trials_arg =
    Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Trials to run.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.")
  in
  let mode_arg =
    Arg.(
      value
      & opt string "uniform"
      & info [ "mode" ]
          ~doc:
            "Fault-count model per trial: uniform (exactly $(b,--faults)), \
             poisson or clustered (negative binomial, $(b,--mean) and \
             $(b,--alpha)).")
  in
  let nfaults_arg =
    Arg.(
      value & opt int 2
      & info [ "n"; "faults" ] ~doc:"Faults per trial (uniform mode).")
  in
  let mean_arg =
    Arg.(
      value & opt float 2.0
      & info [ "mean" ] ~doc:"Mean fault count (poisson/clustered modes).")
  in
  let alpha_arg =
    Arg.(
      value & opt float 2.0
      & info [ "alpha" ] ~doc:"Clustering factor (clustered mode).")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "default"
      & info [ "mix" ]
          ~doc:"Fault-class mix: default (IFA), stuck-at or retention.")
  in
  let repair_arg =
    Arg.(
      value
      & opt string "row-tlb"
      & info [ "repair" ]
          ~doc:
            "Repair architecture per trial: row-tlb (the paper's row-only \
             TLB flow), or a 2D BIRA allocator — bira-greedy, \
             bira-essential or bira-bnb (branch and bound, provably \
             optimal).")
  in
  let max_seconds_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ]
          ~doc:
            "Wall-clock budget; the campaign stops gracefully when exceeded \
             and flags the report as truncated.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Skip delta-debugging failing fault sets to minimal reproducers.")
  in
  let max_rounds_arg =
    Arg.(
      value & opt int 8
      & info [ "max-rounds" ] ~doc:"Iterated (2k-pass) repair round bound.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON with per-trial phase spans \
             (inject, march, oracle, repair, escape-sweep, shrink) and \
             per-march-element BIST sections to $(docv); load it in \
             Perfetto or chrome://tracing.  Enables telemetry.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a flat metrics JSON (fast/legacy hit counters, \
             per-worker busy/idle time, deterministic histograms) to \
             $(docv).  Enables telemetry.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print a human-readable phase/counter table to stderr after the \
             run (stdout still carries the byte-identical JSON report).  \
             Enables telemetry.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:
            "Re-run the single trial with this seed (from a campaign report) \
             and print it human-readably; exit 3 when it shows an escape or \
             divergence.")
  in
  let fail_arg =
    Arg.(
      value & flag
      & info [ "fail-on-anomaly" ]
          ~doc:"Exit 3 when the campaign found any escape or divergence.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt string ".bisram-campaign.ckpt.json"
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Checkpoint snapshot file (atomic temp + rename).  Only used \
             when $(b,--checkpoint-every) or $(b,--resume) is given.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Snapshot the completed-trial prefix every $(docv) trials (and \
             once at the end).  0 (the default) disables checkpoint writing.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Load the checkpoint first and serve its trials from memory \
             instead of recomputing them.  The report is byte-identical to \
             an uninterrupted run; a missing or damaged checkpoint silently \
             degrades to recomputation.")
  in
  let trial_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "trial-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Cooperative per-trial deadline: a trial exceeding it is \
             recorded as a tool error in the report and the campaign \
             continues.")
  in
  let batch_lanes_arg =
    Arg.(
      value & opt int 62
      & info [ "batch-lanes" ] ~docv:"N"
          ~doc:
            "Lane-sliced batch width: pack $(docv) consecutive trials into \
             one bit-parallel simulation (one trial per bit of a native \
             int).  Purely a throughput knob — the report is byte-identical \
             at every width.  1 disables batching (pure scalar scheduler); \
             the maximum is the native word width minus one (62 on 64-bit).")
  in
  let confidence_arg =
    Arg.(
      value & flag
      & info [ "confidence" ]
          ~doc:
            "Emit the schema-/3 report with Wilson and Clopper-Pearson \
             confidence intervals on the escape and repair-failure rates.  \
             Implied by any $(b,--proposal-*) flag and by \
             $(b,--target-ci); without them the report keeps its exact \
             schema-/2 bytes.")
  in
  let target_ci_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "target-ci" ] ~docv:"REL"
          ~doc:
            "Adaptive stopping: run $(b,--ci-batch)-sized batches until the \
             Wilson interval's relative half-width on $(b,--ci-metric) \
             drops to $(docv) (e.g. 0.1 = ±10%), instead of a fixed \
             $(b,--trials).  The report is byte-identical to a fixed-trial \
             run of the same total size.")
  in
  let ci_metric_arg =
    Arg.(
      value
      & opt string "repair-failure"
      & info [ "ci-metric" ]
          ~doc:
            "Metric the adaptive stopper tracks: repair-failure (two-pass \
             flow), repair-failure-iterated or escape.")
  in
  let ci_batch_arg =
    Arg.(
      value & opt int 992
      & info [ "ci-batch" ] ~docv:"N"
          ~doc:
            "Adaptive batch size (default 992 = 16 full 62-wide lane \
             batches, keeping the bit-parallel fast path saturated).")
  in
  let ci_max_trials_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "ci-max-trials" ] ~docv:"N"
          ~doc:
            "Upper bound on adaptively grown trials; the run stops there \
             with reason trial_cap if the target was not reached.")
  in
  let prop_scale_arg =
    Arg.(
      value & opt float 1.0
      & info [ "proposal-count-scale" ] ~docv:"S"
          ~doc:
            "Importance sampling: multiply the mean of the fault-count \
             model by $(docv) in the proposal (poisson/clustered modes).  \
             Reports stay unbiased via likelihood-ratio weights.")
  in
  let prop_shift_arg =
    Arg.(
      value & opt float 0.0
      & info [ "proposal-count-shift" ] ~docv:"H"
          ~doc:
            "Importance sampling: add $(docv) to the (scaled) mean of the \
             proposal fault-count model.")
  in
  let prop_nonzero_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "proposal-nonzero" ] ~docv:"F"
          ~doc:
            "Stratified sampling: draw a trial with at least one fault with \
             probability $(docv) (0 < $(docv) < 1) and zero faults \
             otherwise, reweighting each stratum by its nominal mass.  \
             Exclusive with the count-scale/shift flags.")
  in
  let prop_mix_arg =
    Arg.(
      value
      & opt string "nominal"
      & info [ "proposal-mix" ]
          ~doc:
            "Fault-class mix of the proposal: nominal (same as $(b,--mix)), \
             default, stuck-at or retention.  Classes are reweighted per \
             drawn fault.")
  in
  let term =
    Term.(
      const do_campaign $ c_words $ c_bpw $ c_bpc $ c_spares $ c_spare_cols
      $ march_arg $ trials_arg $ seed_arg $ mode_arg $ nfaults_arg $ mean_arg
      $ alpha_arg $ mix_arg $ repair_arg $ max_seconds_arg $ no_shrink_arg
      $ max_rounds_arg $ jobs_arg
      $ batch_lanes_arg $ trace_arg $ metrics_arg $ stats_arg $ events_arg
      $ events_level_arg $ progress_arg $ status_file_arg $ replay_arg
      $ fail_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
      $ trial_deadline_arg $ confidence_arg $ target_ci_arg $ ci_metric_arg
      $ ci_batch_arg $ ci_max_trials_arg $ prop_scale_arg $ prop_shift_arg
      $ prop_nonzero_arg $ prop_mix_arg)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Monte Carlo test-and-repair campaign: randomized fault injection, \
          controller-vs-reference differential oracle, independent \
          post-repair escape sweep, failure shrinking; emits a deterministic \
          JSON report.")
    term

(* ------------------------------------------------------------------ *)
(* explore: parallel design-space sweep *)

let do_explore spec_file jobs cache_dir resume pareto trace metrics stats
    events events_level progress status_file =
  let spec_result =
    match read_file spec_file with
    | exception Sys_error e -> Error (`Io e)
    | text -> (
        match Bisram_explore.Spec.of_string text with
        | Ok s -> Ok s
        | Error e -> Error (`Config (spec_file ^ ": " ^ e)))
  in
  let jobs_result =
    Result.map_error (fun e -> `Config e) (resolve_jobs jobs)
  in
  match (spec_result, jobs_result) with
  | Error (`Io e), _ ->
      Printf.eprintf "bisramgen: %s\n" e;
      1
  | Error (`Config e), _ | _, Error (`Config e) ->
      Printf.eprintf "bisramgen: invalid configuration: %s\n" e;
      2
  | Ok spec, Ok jobs -> (
      match setup_events ~events ~events_level with
      | Error e ->
          Printf.eprintf "bisramgen: invalid configuration: %s\n" e;
          2
      | Ok () -> (
      let telemetry = trace <> None || metrics <> None || stats in
      if telemetry then begin
        Obs.set_enabled true;
        Obs.reset ()
      end;
      let reporter =
        make_progress
          ~total:(Array.length (fst (Bisram_explore.Spec.expand spec)))
          ~label:"points" ~show_anomalies:false ~progress ~status_file ()
      in
      let on_progress =
        Option.map
          (fun p ~done_ ~total:_ ->
            Progress.update p ~done_ ~escapes:0 ~divergences:0 ~tool_errors:0
              ~clean:0)
          reporter
      in
      match
        Fun.protect
          ~finally:(fun () -> Option.iter Progress.finish reporter)
          (fun () ->
            Bisram_explore.Explore.run ~jobs ~cache_dir ~resume ?on_progress
              spec)
      with
      | exception Invalid_argument e ->
          Printf.eprintf "bisramgen: invalid configuration: %s\n" e;
          2
      | r ->
          (* stdout carries only the byte-identical report; cache
             statistics and the --pareto table go to stderr *)
          print_string (Bisram_explore.Explore.pretty_json_string r);
          let module E = Bisram_explore.Explore in
          let evals = E.evaluations r in
          let rate =
            if evals = 0 then 100.0
            else 100.0 *. float_of_int r.E.cache_hits /. float_of_int evals
          in
          Printf.eprintf
            "explore: %d point(s), %d evaluation(s): %d hit(s), %d miss(es) \
             (%.1f%% hit rate)\n"
            (Array.length r.E.points)
            evals r.E.cache_hits r.E.cache_misses rate;
          (let cs = r.E.cache_stats in
           let module C = Bisram_explore.Cache in
           if
             cs.C.st_quarantined > 0 || cs.C.st_reaped_tmp > 0
             || cs.C.st_io_errors > 0
           then
             Printf.eprintf
               "explore: cache self-heal: %d quarantined, %d tmp reaped, %d \
                io error(s)\n"
               cs.C.st_quarantined cs.C.st_reaped_tmp cs.C.st_io_errors);
          if pareto then prerr_string (E.summary_table r);
          if telemetry then export_telemetry ~trace ~metrics ~stats;
          export_events ~events;
          0))

let explore_cmd =
  let spec_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Sweep specification: a key = value file with comma-separated \
             ranges over words/bpw/bpc/spares, mean_defects, alpha and \
             lambda, plus shared process/march/drive/strap/chip scalars, an \
             optional evaluator list and a campaign_trials budget.")
  in
  let cache_arg =
    Arg.(
      value
      & opt string ".bisram-explore.cache"
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed evaluation cache directory (created if \
             missing).  Entries are always written; they are only read back \
             with $(b,--resume).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Reuse cache entries from earlier runs: interrupted or repeated \
             sweeps recompute only what is missing.  The report is \
             byte-identical to a cache-cold run.")
  in
  let pareto_arg =
    Arg.(
      value & flag
      & info [ "pareto" ]
          ~doc:
            "Print the Pareto frontier and best-spares tables human-readably \
             to stderr (stdout still carries the JSON report).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON with per-point and \
             per-evaluator spans to $(docv).  Enables telemetry.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a flat metrics JSON (point counters, cache hit/miss, \
             per-worker busy/idle) to $(docv).  Enables telemetry.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print a phase/counter table to stderr after the sweep.  \
             Enables telemetry.")
  in
  let term =
    Term.(
      const do_explore $ spec_arg $ jobs_arg $ cache_arg $ resume_arg
      $ pareto_arg $ trace_arg $ metrics_arg $ stats_arg $ events_arg
      $ events_level_arg $ progress_arg $ status_file_arg)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Design-space exploration: expand a declarative sweep spec into \
          the config lattice, evaluate every point (area, yield, cost, \
          reliability, optional campaign) across worker domains with \
          on-disk memoization, and report the grid, its Pareto frontier \
          and the best spare count per organization as deterministic JSON.")
    term

(* ------------------------------------------------------------------ *)
(* analyze: yield / reliability / power what-if *)

let do_analyze process words bpw bpc spares spare_cols drive strap march =
  match
    build_config ~process ~words ~bpw ~bpc ~spares ~spare_cols ~drive ~strap
      ~march
  with
  | Error e ->
      Printf.eprintf "bisramgen: %s\n" e;
      1
  | Ok cfg ->
      let d = Compiler.compile cfg in
      let org = cfg.Config.org in
      let a = d.Compiler.area in
      Printf.printf "analysis for %s\n\n"
        (Format.asprintf "%a" Config.pp cfg);
      (* yield *)
      let geom =
        if org.Org.spares = 0 then
          Bisram_yield.Repairable.bare ~regular_rows:(Org.rows org)
        else
          Bisram_yield.Repairable.make ~regular_rows:(Org.rows org)
            ~spares:org.Org.spares
            ~logic_fraction:(a.Compiler.logic_mm2 /. a.Compiler.module_mm2)
            ~growth_factor:(max 1.0 a.Compiler.growth_factor)
      in
      Printf.printf "module yield (alpha = 2):\n";
      List.iter
        (fun n ->
          Printf.printf "  %5.1f mean defects -> %.4f\n" n
            (Bisram_yield.Repairable.yield geom ~mean_defects:n ~alpha:2.0))
        [ 0.5; 1.0; 2.0; 5.0; 10.0 ];
      (* 2D line-cover yield, shown only when spare columns exist *)
      if org.Org.spare_cols > 0 then begin
        let g2 =
          Bisram_yield.Repairable.make2 ~rows:(Org.rows org)
            ~cols:(Org.cols org) ~spare_rows:org.Org.spares
            ~spare_cols:org.Org.spare_cols
        in
        Printf.printf "\n2D (BIRA) array yield (alpha = 2):\n";
        List.iter
          (fun n ->
            Printf.printf "  %5.1f mean defects -> %.4f\n" n
              (Bisram_yield.Repairable.yield2 g2 ~mean_defects:n ~alpha:2.0))
          [ 0.5; 1.0; 2.0; 5.0; 10.0 ]
      end;
      (* reliability *)
      let lambda = 1e-10 in
      let rel = Bisram_rel.Reliability.of_org org ~lambda in
      Printf.printf
        "\nreliability (lambda = %g /bit/h): R(1y) = %.5f, R(10y) = %.5f, \
         MTTF = %.3g h\n"
        lambda
        (Bisram_rel.Reliability.reliability rel 8760.0)
        (Bisram_rel.Reliability.reliability rel 87600.0)
        (Bisram_rel.Reliability.mttf rel);
      (* power *)
      let pw =
        Bisram_sram.Power.estimate cfg.Config.process org
          ~drive:(float_of_int cfg.Config.drive)
      in
      Printf.printf "\npower: %s\n" (Format.asprintf "%a" Bisram_sram.Power.pp pw);
      List.iter
        (fun mhz ->
          Printf.printf "  Icc at %3.0f MHz: %.1f mA\n" mhz
            (Bisram_sram.Power.supply_current pw ~frequency_hz:(mhz *. 1e6)
            *. 1e3))
        [ 25.0; 50.0; 100.0 ];
      0

let analyze_cmd =
  let term =
    Term.(
      const do_analyze $ process_arg $ words_arg $ bpw_arg $ bpc_arg
      $ spares_arg $ spare_cols_arg $ drive_arg $ strap_arg $ march_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Yield, reliability and power analysis for a configuration.")
    term

(* ------------------------------------------------------------------ *)
(* listings *)

let processes_cmd =
  let run () =
    List.iter (fun p -> Format.printf "%a@." Pr.pp p) Pr.all;
    0
  in
  Cmd.v (Cmd.info "processes" ~doc:"List bundled CMOS processes.")
    Term.(const run $ const ())

let marches_cmd =
  let run () =
    List.iter (fun m -> Format.printf "%a@." March.pp m) Alg.all;
    0
  in
  Cmd.v (Cmd.info "marches" ~doc:"List bundled march algorithms.")
    Term.(const run $ const ())

let () =
  (* chaos harness: armed only when BISRAM_CHAOS_* variables are set in
     the environment; a production invocation costs one getenv here and
     disarmed Atomic.gets at the seams *)
  Bisram_chaos.Chaos.arm_from_env ();
  let info =
    Cmd.info "bisramgen" ~version:"1.0.0"
      ~doc:"Physical design tool for built-in self-repairable static RAMs"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ compile_cmd
          ; selftest_cmd
          ; campaign_cmd
          ; explore_cmd
          ; analyze_cmd
          ; processes_cmd
          ; marches_cmd
          ]))
