module Org = Bisram_sram.Org
module Pr = Bisram_tech.Process
module March = Bisram_bist.March
module Alg = Bisram_bist.Algorithms
module Chips = Bisram_cost.Chips
module Config = Bisram_core.Config
module J = Bisram_obs.Json

type t = {
  words : int list;
  bpw : int list;
  bpc : int list;
  spares : int list;
  spare_cols : int list;
  mean_defects : float list;
  alpha : float list;
  lambda : float list;
  process : Pr.t;
  march : March.t;
  drive : int;
  strap : int;
  chip : Chips.t;
  evaluators : string list;
  campaign_trials : int;
  campaign_seed : int;
  repair : string;
}

type point = {
  index : int;
  org : Org.t;
  mean_defects : float;
  alpha : float;
  lambda : float;
}

let known_evaluators = [ "area"; "yield"; "cost"; "reliability"; "campaign" ]

let default =
  { words = [ 4096 ]
  ; bpw = [ 4 ]
  ; bpc = [ 4 ]
  ; spares = [ 0; 4; 8; 16 ]
  ; spare_cols = [ 0 ]
  ; mean_defects = [ 0.5; 1.0; 2.0; 5.0; 10.0 ]
  ; alpha = [ 2.0 ]
  ; lambda = [ 1e-10 ]
  ; process = (match Pr.find "CDA.7u3m1p" with Some p -> p | None -> assert false)
  ; march = Alg.ifa_9
  ; drive = 2
  ; strap = 32
  ; chip =
      (match Chips.find "Intel Pentium" with Some c -> c | None -> assert false)
  ; evaluators = [ "area"; "yield"; "cost"; "reliability" ]
  ; campaign_trials = 0
  ; campaign_seed = 42
  ; repair = "row-tlb"
  }

(* same strategy-name surface as the campaign CLI; spec only validates
   the spelling — resolution to an allocator happens in the evaluator *)
let known_repairs = [ "row-tlb"; "bira-greedy"; "bira-essential"; "bira-bnb" ]

(* ------------------------------------------------------------------ *)
(* parsing (same key = value surface syntax as Config_file, with
   comma-separated lists for the range keys) *)

let known_keys =
  [ "words"; "bpw"; "bpc"; "spares"; "spare_cols"; "mean_defects"; "alpha"
  ; "lambda"; "process"; "march"; "drive"; "strap"; "chip"; "evaluators"
  ; "campaign_trials"; "campaign_seed"; "repair"
  ]

let parse_kvs text =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  text
  |> String.split_on_char '\n'
  |> List.concat_map (fun line ->
         let line = String.trim (strip_comment line) in
         if line = "" then []
         else
           match String.index_opt line '=' with
           | None -> invalid_arg ("missing '=' in: " ^ line)
           | Some i ->
               let key = String.trim (String.sub line 0 i) in
               let value =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               if key = "" || value = "" then
                 invalid_arg ("empty key or value in: " ^ line);
               [ (String.lowercase_ascii key, value) ])

let split_list s =
  s |> String.split_on_char ',' |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let ( let* ) = Result.bind

let int_list key s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match int_of_string_opt x with
        | Some v -> go (v :: acc) rest
        | None -> Error (Printf.sprintf "key %S: %S is not an integer" key x))
  in
  match split_list s with
  | [] -> Error (Printf.sprintf "key %S: empty list" key)
  | items -> go [] items

let float_list key s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match float_of_string_opt x with
        | Some v when Float.is_finite v -> go (v :: acc) rest
        | Some _ -> Error (Printf.sprintf "key %S: %S is not finite" key x)
        | None -> Error (Printf.sprintf "key %S: %S is not a number" key x))
  in
  match split_list s with
  | [] -> Error (Printf.sprintf "key %S: empty list" key)
  | items -> go [] items

let int_scalar key s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "key %S: %S is not an integer" key s)

let check_range key ok items =
  if List.for_all ok items then Ok items
  else Error (Printf.sprintf "key %S: value out of domain" key)

let of_string text =
  match parse_kvs text with
  | exception Invalid_argument e -> Error e
  | kvs -> (
      match
        List.find_opt (fun (k, _) -> not (List.mem k known_keys)) kvs
      with
      | Some (k, _) -> Error (Printf.sprintf "unknown key %S" k)
      | None ->
          let get key = List.assoc_opt key kvs in
          let ints key dflt =
            match get key with Some s -> int_list key s | None -> Ok dflt
          in
          let floats key dflt =
            match get key with Some s -> float_list key s | None -> Ok dflt
          in
          let int1 key dflt =
            match get key with Some s -> int_scalar key s | None -> Ok dflt
          in
          let* words = ints "words" default.words in
          let* bpw = ints "bpw" default.bpw in
          let* bpc = ints "bpc" default.bpc in
          let* spares = ints "spares" default.spares in
          let* spare_cols = ints "spare_cols" default.spare_cols in
          let* mean_defects =
            Result.bind (floats "mean_defects" default.mean_defects)
              (check_range "mean_defects" (fun v -> v >= 0.0))
          in
          let* alpha =
            Result.bind (floats "alpha" default.alpha)
              (check_range "alpha" (fun v -> v > 0.0))
          in
          let* lambda =
            Result.bind (floats "lambda" default.lambda)
              (check_range "lambda" (fun v -> v > 0.0))
          in
          let* drive = int1 "drive" default.drive in
          let* strap = int1 "strap" default.strap in
          let* campaign_trials = int1 "campaign_trials" default.campaign_trials in
          let* campaign_seed = int1 "campaign_seed" default.campaign_seed in
          let* process =
            match get "process" with
            | None -> Ok default.process
            | Some name -> (
                match Pr.find name with
                | Some p -> Ok p
                | None -> Error (Printf.sprintf "unknown process %S" name))
          in
          let* march =
            match get "march" with
            | None -> Ok default.march
            | Some s -> (
                match Alg.find s with
                | Some m -> Ok m
                | None -> (
                    match March.of_string ~name:"custom" s with
                    | m -> Ok m
                    | exception Invalid_argument e -> Error e))
          in
          let* chip =
            match get "chip" with
            | None -> Ok default.chip
            | Some name -> (
                match Chips.find name with
                | Some c -> Ok c
                | None -> Error (Printf.sprintf "unknown chip %S" name))
          in
          let* evaluators =
            match get "evaluators" with
            | None ->
                Ok
                  (default.evaluators
                  @ if campaign_trials > 0 then [ "campaign" ] else [])
            | Some s -> (
                let named = split_list s in
                match
                  List.find_opt
                    (fun e -> not (List.mem e known_evaluators))
                    named
                with
                | Some e -> Error (Printf.sprintf "unknown evaluator %S" e)
                | None ->
                    if named = [] then Error "key \"evaluators\": empty list"
                    else
                      (* fixed report order, regardless of spelling order *)
                      Ok
                        (List.filter
                           (fun e -> List.mem e named)
                           known_evaluators))
          in
          let* repair =
            match get "repair" with
            | None -> Ok default.repair
            | Some s ->
                if List.mem s known_repairs then Ok s
                else
                  Error
                    (Printf.sprintf
                       "key \"repair\": unknown strategy %S (expected %s)" s
                       (String.concat ", " known_repairs))
          in
          let* () =
            if campaign_trials < 0 then
              Error "key \"campaign_trials\": must be >= 0"
            else if List.mem "campaign" evaluators && campaign_trials = 0 then
              Error
                "the campaign evaluator needs campaign_trials > 0 (it runs a \
                 Monte Carlo campaign per point)"
            else Ok ()
          in
          Ok
            { words; bpw; bpc; spares; spare_cols; mean_defects; alpha
            ; lambda; process; march; drive; strap; chip; evaluators
            ; campaign_trials; campaign_seed; repair
            })

(* ------------------------------------------------------------------ *)
(* lattice expansion *)

let expand (t : t) =
  let points = ref [] and skipped = ref 0 and index = ref 0 in
  List.iter
    (fun words ->
      List.iter
        (fun bpw ->
          List.iter
            (fun bpc ->
              List.iter
                (fun spares ->
                  List.iter
                    (fun spare_cols ->
                      match Org.make ~spares ~spare_cols ~words ~bpw ~bpc () with
                      | exception Invalid_argument _ -> incr skipped
                      | org ->
                          List.iter
                            (fun mean_defects ->
                              List.iter
                                (fun alpha ->
                                  List.iter
                                    (fun lambda ->
                                      points :=
                                        { index = !index; org; mean_defects
                                        ; alpha; lambda
                                        }
                                        :: !points;
                                      incr index)
                                    t.lambda)
                                t.alpha)
                            t.mean_defects)
                    t.spare_cols)
                t.spares)
            t.bpc)
        t.bpw)
    t.words;
  (Array.of_list (List.rev !points), !skipped)

let config_of_point t p =
  Config.make ~spares:p.org.Org.spares ~drive:t.drive ~strap:t.strap
    ~march:t.march ~process:t.process ~words:p.org.Org.words
    ~bpw:p.org.Org.bpw ~bpc:p.org.Org.bpc ()

(* ------------------------------------------------------------------ *)
(* cache-key material: the exact inputs each evaluator consumes *)

let fk = Printf.sprintf "%.17g"

let org_key org =
  (* the spare-column suffix appears only when non-zero so cache entries
     from row-only sweeps stay addressable under the same key *)
  Printf.sprintf "w%d.b%d.c%d.s%d%s" org.Org.words org.Org.bpw org.Org.bpc
    org.Org.spares
    (if org.Org.spare_cols > 0 then Printf.sprintf ".sc%d" org.Org.spare_cols
     else "")

(* area (and through it yield and cost) depends on the full compiled
   design: organization, process, gate sizing, strapping and the march
   microprogram (the TRPLA size feeds the logic area) *)
let design_key t org =
  Printf.sprintf "%s|p=%s|d=%d|t=%d|m=%s" (org_key org) t.process.Pr.name
    t.drive t.strap
    (March.to_string t.march)

let cache_key t p ~evaluator =
  match evaluator with
  | "area" -> "area|" ^ design_key t p.org
  | "yield" ->
      Printf.sprintf "yield|%s|n=%s|a=%s" (design_key t p.org)
        (fk p.mean_defects) (fk p.alpha)
  | "cost" ->
      Printf.sprintf "cost|%s|a=%s|chip=%s" (design_key t p.org) (fk p.alpha)
        t.chip.Chips.name
  | "reliability" ->
      Printf.sprintf "reliability|%s|l=%s" (org_key p.org) (fk p.lambda)
  | "campaign" ->
      (* same back-compat rule as org_key: the repair component is only
         spelled when a non-default strategy is selected *)
      Printf.sprintf "campaign|%s|m=%s|n=%s|a=%s|trials=%d|seed=%d%s"
        (org_key p.org)
        (March.to_string t.march)
        (fk p.mean_defects) (fk p.alpha) t.campaign_trials t.campaign_seed
        (if t.repair <> "row-tlb" then "|r=" ^ t.repair else "")
  | e -> invalid_arg ("Spec.cache_key: unknown evaluator " ^ e)

(* ------------------------------------------------------------------ *)
(* report echo *)

let to_json t =
  let ints l = J.List (List.map (fun v -> J.Int v) l) in
  let floats l = J.List (List.map (fun v -> J.Float v) l) in
  J.Obj
    [ ("words", ints t.words)
    ; ("bpw", ints t.bpw)
    ; ("bpc", ints t.bpc)
    ; ("spares", ints t.spares)
    ; ("spare_cols", ints t.spare_cols)
    ; ("mean_defects", floats t.mean_defects)
    ; ("alpha", floats t.alpha)
    ; ("lambda", floats t.lambda)
    ; ("process", J.String t.process.Pr.name)
    ; ("march", J.String (March.to_string t.march))
    ; ("drive", J.Int t.drive)
    ; ("strap", J.Int t.strap)
    ; ("chip", J.String t.chip.Chips.name)
    ; ("evaluators", J.List (List.map (fun e -> J.String e) t.evaluators))
    ; ("campaign_trials", J.Int t.campaign_trials)
    ; ("campaign_seed", J.Int t.campaign_seed)
    ; ("repair", J.String t.repair)
    ]
