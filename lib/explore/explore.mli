(** Parallel design-space exploration: evaluate every point of a
    {!Spec} lattice through the analysis layers, memoize the results
    on disk, and extract the paper's decision artifacts (the Pareto
    frontier over cost/yield/MTTF/area and the best-spares-per-
    organization table of its conclusions).

    Evaluators (selected by the spec, fixed report order):

    - ["area"] — the layout flow's area report for the compiled module
      (module mm2, BIST/BISR logic share, total overhead, Fig.-4 growth
      factor).
    - ["yield"] — {!Bisram_yield.Repairable} module yield under the
      point's (mean defects, alpha), with the Stapper bare-array
      baseline; geometry (logic fraction, growth) comes from the same
      compiled design the area evaluator reports.
    - ["cost"] — {!Bisram_cost.Mpr} cost per good die and per packaged
      chip for the spec's host chip, with the point's spares/rows/alpha
      and the {e measured} area overhead of the compiled module.
    - ["reliability"] — MTTF, one- and ten-year reliability and the
      Fig.-5 crossover age against the 4-spare baseline of the same
      organization.
    - ["campaign"] — empirical post-repair rates from a seeded
      {!Bisram_campaign.Campaign} run (simulable organizations only).

    Points are fanned out over {!Bisram_parallel.Pool} and merged in
    lattice order; every evaluation is memoized through {!Cache}, and
    both the fan-out and the cache normalize values identically — so
    the ["bisram-explore/1"] report is byte-identical at any job count,
    cache-cold or cache-warm.  Per-point and per-evaluator phase spans
    and cache counters land in {!Bisram_obs.Obs} when telemetry is
    enabled; nothing telemetry records feeds the report. *)

type result = {
  spec : Spec.t;
  points : Spec.point array;  (** lattice order *)
  evals : (string * Bisram_obs.Json.t) list array;
      (** per point: (evaluator id, normalized result), spec order *)
  skipped : int;  (** invalid lattice combinations *)
  cache_hits : int;
  cache_misses : int;
  cache_stats : Cache.stats;
      (** full self-heal counters (quarantines, reaped temp files, IO
          errors) for the run's cache instance *)
}

(** Run the sweep.  [jobs] (default 1) fans points over that many
    domains; [cache_dir] (default none: no disk cache) roots the
    memoization store; [resume] (default false) lets the run read
    entries left by earlier runs — without it the sweep is cache-cold
    by construction and existing entries are overwritten.

    [on_progress] (default absent) is called once per completed point
    with the cumulative completion count and the point total, on the
    completing worker's domain (it must be domain-safe;
    {!Bisram_obs.Progress} is).  Write-only: the report is
    byte-identical with or without it.
    @raise Invalid_argument if [jobs < 1]. *)
val run :
  ?jobs:int ->
  ?cache_dir:string ->
  ?resume:bool ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  Spec.t ->
  result

(** Evaluations performed (points x selected evaluators) — the
    denominator of the cache hit rate. *)
val evaluations : result -> int

(** The ["bisram-explore/1"] report: spec echo, per-point evaluator
    results, the Pareto frontier over (cost per good die min,
    repairable yield max, MTTF max, area overhead min), and the
    best-spares table (grouped by everything but spares, ranked by
    cost per good die when the cost evaluator ran, else by yield).
    Cache statistics and timing deliberately stay out: the report is a
    pure function of the spec. *)
val report_json : result -> Bisram_obs.Json.t

val json_string : result -> string
val pretty_json_string : result -> string

(** Human-readable Pareto frontier + best-spares summary (the
    [--pareto] side channel; goes to stderr, never into the report). *)
val summary_table : result -> string
