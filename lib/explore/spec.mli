(** Declarative sweep specification: the input of the design-space
    exploration engine.

    A spec names {e ranges} over the organization parameters the paper
    sweeps (words, bpw, bpc, spare rows) and over the environment axes
    of its figures (mean defect count, clustering factor alpha, per-bit
    failure rate lambda), plus {e scalars} shared by every point
    (process, march, drive, strap, the cost-model chip and the optional
    campaign budget).  {!expand} crosses the ranges into the config
    lattice in a fixed documented order, skipping combinations that
    violate the organization constraints (words not a multiple of bpc),
    so the point list — and with it the whole report — is deterministic.

    The surface syntax is the same [key = value] file format as
    {!Bisram_core.Config_file}, with comma-separated lists for ranges:

    {v
    # Fig. 4 sweep
    words        = 4096
    bpw          = 4
    bpc          = 4
    spares       = 0, 4, 8, 16
    mean_defects = 0.5, 1, 2, 5, 10
    alpha        = 2
    lambda       = 1e-10
    chip         = Intel Pentium
    v} *)

type t = {
  words : int list;
  bpw : int list;
  bpc : int list;
  spares : int list;
  spare_cols : int list;  (** spare-column budgets; [0] = row-only *)
  mean_defects : float list;
  alpha : float list;
  lambda : float list;  (** per-bit hard-failure rate, per hour *)
  process : Bisram_tech.Process.t;
  march : Bisram_bist.March.t;
  drive : int;
  strap : int;
  chip : Bisram_cost.Chips.t;  (** cost-model host chip (Tables II/III) *)
  evaluators : string list;  (** evaluator ids, validated, fixed order *)
  campaign_trials : int;  (** 0 disables the campaign evaluator *)
  campaign_seed : int;
  repair : string;
      (** campaign repair strategy name (validated against
          {!known_repairs}); ["row-tlb"] by default *)
}

(** One lattice point: an organization under one (defect, alpha,
    lambda) environment.  [index] is the point's position in the
    deterministic expansion order. *)
type point = {
  index : int;
  org : Bisram_sram.Org.t;
  mean_defects : float;
  alpha : float;
  lambda : float;
}

(** The evaluator ids a spec may name, in report order:
    ["area"], ["yield"], ["cost"], ["reliability"], ["campaign"]. *)
val known_evaluators : string list

(** The repair-strategy names the [repair] key accepts — the same
    surface as the campaign CLI's [--repair]: ["row-tlb"],
    ["bira-greedy"], ["bira-essential"], ["bira-bnb"]. *)
val known_repairs : string list

(** Defaults: the paper's Fig.-4 organization (4096 words, bpw 4,
    bpc 4) over spares 0/4/8/16 and mean defects 0.5/1/2/5/10,
    alpha 2, lambda 1e-10, CDA.7u3m1p, IFA-9, drive 2, strap 32,
    Intel Pentium, campaign disabled. *)
val default : t

(** Parse a spec file.  Unknown keys, empty ranges, malformed numbers,
    non-finite or out-of-domain values (negative mean defects,
    alpha <= 0, lambda <= 0), unknown process/march/chip/evaluator
    names and a requested campaign evaluator with [campaign_trials = 0]
    are all reported as [Error]. *)
val of_string : string -> (t, string) result

(** Expand the ranges into the point lattice, nesting in the fixed
    order words > bpw > bpc > spares > spare_cols > mean_defects >
    alpha > lambda (rightmost fastest).  Returns the points and the
    number of skipped invalid combinations. *)
val expand : t -> point array * int

(** The full compiler configuration of a point (spec scalars + point
    organization). *)
val config_of_point : t -> point -> Bisram_core.Config.t

(** Canonical, version-free rendering of the sub-spec a given evaluator
    depends on — the content-addressed cache key material.  Two points
    that agree on an evaluator's inputs (e.g. the same organization at
    different lambda, for ["area"]) share a key, so the cache
    deduplicates across the lattice as well as across runs.
    @raise Invalid_argument on an unknown evaluator id. *)
val cache_key : t -> point -> evaluator:string -> string

(** Spec echo for the report (deterministic field order). *)
val to_json : t -> Bisram_obs.Json.t
