module J = Bisram_obs.Json
module Obs = Bisram_obs.Obs
module Events = Bisram_obs.Events
module Chaos = Bisram_chaos.Chaos

let version = "bisram-explore-cache/2"

type stats = {
  st_hits : int;
  st_misses : int;
  st_quarantined : int;
  st_reaped_tmp : int;
  st_io_errors : int;
}

type t = {
  dir : string option;
  resume : bool;
  hits : int Atomic.t;
  misses : int Atomic.t;
  quarantined : int Atomic.t;
  reaped_tmp : int Atomic.t;
  io_errors : int Atomic.t;
}

(* Orphaned temp files are the residue of a run killed between
   open_temp_file and rename; they can never become entries (their
   names are not digests), only accumulate.  Reaped once per cache
   open — failures are ignored: reaping is hygiene, not correctness. *)
let reap_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun n name ->
          if
            String.length name > 11
            && String.sub name 0 7 = ".cache-"
            && Filename.check_suffix name ".tmp"
          then (
            match Sys.remove (Filename.concat dir name) with
            | () -> n + 1
            | exception Sys_error _ -> n)
          else n)
        0 names

let create ?dir ~resume () =
  let reaped =
    match dir with
    | None -> 0
    | Some d ->
        if Sys.file_exists d then begin
          if not (Sys.is_directory d) then
            raise (Sys_error (d ^ ": not a directory"))
        end
        else Sys.mkdir d 0o755;
        reap_tmp d
  in
  if reaped > 0 then begin
    Obs.add "cache.reaped_tmp" reaped;
    Events.emit ~level:Events.Warn ~domain:"cache" "cache.reap_tmp"
      [ ("reaped", J.Int reaped) ]
  end;
  { dir
  ; resume
  ; hits = Atomic.make 0
  ; misses = Atomic.make 0
  ; quarantined = Atomic.make 0
  ; reaped_tmp = Atomic.make reaped
  ; io_errors = Atomic.make 0
  }

let full_key key = version ^ "|" ^ key

let path_of t key =
  match t.dir with
  | None -> None
  | Some d ->
      Some (Filename.concat d (Digest.to_hex (Digest.string (full_key key)) ^ ".json"))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The entry document: the full key travels with the value so a digest
   collision or stale format is detected on read instead of silently
   returning the wrong result, and the value's own serialization is
   digested so bit rot {e inside} the value is detected too — a flipped
   byte in a float or a field name still parses as JSON with an intact
   key, which key verification alone would happily serve (found by the
   chaos harness, cache-format /1 -> /2). *)
let value_digest v = Digest.to_hex (Digest.string (J.to_string v))

let entry_string key value =
  (* One parse round first: serialization is only re-serialization-
     stable for values that came out of the parser (a fresh float like
     1.0479e+09 can round, at 9 significant digits, to an
     integer-valued double that re-prints as 1047935990.0), and the
     digest must be over the stable form the reader will recompute. *)
  let value =
    match J.of_string (J.to_string value) with
    | Ok v -> v
    | Error _ -> value
  in
  J.to_string
    (J.Obj
       [ ("key", J.String (full_key key))
       ; ("digest", J.String (value_digest value))
       ; ("value", value)
       ])

let parse_entry key s =
  match J.of_string s with
  | Error _ -> None
  | Ok doc -> (
      match (J.member "key" doc, J.member "digest" doc, J.member "value" doc) with
      | Some (J.String k), Some (J.String d), Some v
        when String.equal k (full_key key) && String.equal d (value_digest v)
        ->
          Some v
      | _ -> None)

(* An entry that exists but fails verification (invalid JSON, truncated
   bytes, wrong embedded key) is moved aside rather than deleted: the
   damaged bytes stay available for a post-mortem, the digest slot is
   freed for the recomputed entry, and the rename is atomic so
   concurrent readers see either the bad entry or none.  Quarantining
   is itself best-effort — if even the rename fails we fall back to
   remove, and if that fails the entry is simply left to fail
   verification again next time. *)
let quarantine t key path =
  Atomic.incr t.quarantined;
  Obs.incr "cache.quarantined";
  Events.emit ~level:Events.Warn ~domain:"cache" "cache.quarantine"
    [ ("key", J.String key); ("path", J.String path) ];
  match Sys.rename path (path ^ ".quarantine") with
  | () -> ()
  | exception Sys_error _ -> (
      try Sys.remove path with Sys_error _ -> ())

let lookup t key =
  if not t.resume then None
  else
    match path_of t key with
    | None -> None
    | Some path ->
        if not (Sys.file_exists path) then None
        else (
          match read_file path with
          | exception Sys_error _ ->
              (* the file is there but unreadable (EIO, permissions):
                 degrade to a miss, recompute uncached *)
              Atomic.incr t.io_errors;
              Obs.incr "cache.io_errors";
              None
          | s -> (
              (* chaos seam: a deterministic injector may hand back a
                 corrupted view of the on-disk bytes *)
              let s =
                match Chaos.corrupt ~key s with Some c -> c | None -> s
              in
              match parse_entry key s with
              | Some v -> Some v
              | None ->
                  quarantine t key path;
                  None))

(* serialize + re-parse: the value every caller sees is exactly the
   value a later warm run will parse back from the entry's bytes *)
let normalize key s =
  match parse_entry key s with
  | Some v -> v
  | None -> invalid_arg "Cache.memo: evaluator result does not round-trip"

(* Store failures (ENOSPC, EIO, a full temp dir, injected chaos) never
   surface to the caller: the value was computed, the run continues
   uncached, and the counter records that the disk lost an entry. *)
let store t key s =
  match path_of t key with
  | None -> ()
  | Some path -> (
      let dir = Option.get t.dir in
      match
        let tmp, oc = Filename.open_temp_file ~temp_dir:dir ".cache-" ".tmp" in
        try
          if Chaos.write_fails ~key then
            raise (Sys_error "chaos: injected cache write failure");
          output_string oc s;
          close_out oc;
          Sys.rename tmp path
        with e ->
          close_out_noerr oc;
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e
      with
      | () -> ()
      | exception Sys_error _ ->
          Atomic.incr t.io_errors;
          Obs.incr "cache.io_errors")

let memo t ~key compute =
  match lookup t key with
  | Some v ->
      Atomic.incr t.hits;
      Obs.incr "cache.hits";
      if Events.would_log Events.Debug then
        Events.emit ~level:Events.Debug ~domain:"cache" "cache.hit"
          [ ("key", J.String key) ];
      v
  | None ->
      Atomic.incr t.misses;
      Obs.incr "cache.misses";
      if Events.would_log Events.Debug then
        Events.emit ~level:Events.Debug ~domain:"cache" "cache.miss"
          [ ("key", J.String key) ];
      let s = entry_string key (compute ()) in
      store t key s;
      normalize key s

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

let stats t =
  { st_hits = Atomic.get t.hits
  ; st_misses = Atomic.get t.misses
  ; st_quarantined = Atomic.get t.quarantined
  ; st_reaped_tmp = Atomic.get t.reaped_tmp
  ; st_io_errors = Atomic.get t.io_errors
  }
