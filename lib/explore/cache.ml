module J = Bisram_obs.Json

let version = "bisram-explore-cache/1"

type t = {
  dir : string option;
  resume : bool;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?dir ~resume () =
  (match dir with
  | None -> ()
  | Some d ->
      if Sys.file_exists d then begin
        if not (Sys.is_directory d) then
          raise (Sys_error (d ^ ": not a directory"))
      end
      else Sys.mkdir d 0o755);
  { dir; resume; hits = Atomic.make 0; misses = Atomic.make 0 }

let full_key key = version ^ "|" ^ key

let path_of t key =
  match t.dir with
  | None -> None
  | Some d ->
      Some (Filename.concat d (Digest.to_hex (Digest.string (full_key key)) ^ ".json"))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The entry document: the full key travels with the value so a digest
   collision or stale format is detected on read instead of silently
   returning the wrong result. *)
let entry_string key value =
  J.to_string (J.Obj [ ("key", J.String (full_key key)); ("value", value) ])

let parse_entry key s =
  match J.of_string s with
  | Error _ -> None
  | Ok doc -> (
      match (J.member "key" doc, J.member "value" doc) with
      | Some (J.String k), Some v when String.equal k (full_key key) -> Some v
      | _ -> None)

let lookup t key =
  if not t.resume then None
  else
    match path_of t key with
    | None -> None
    | Some path -> (
        match read_file path with
        | exception Sys_error _ -> None
        | s -> parse_entry key s)

(* serialize + re-parse: the value every caller sees is exactly the
   value a later warm run will parse back from the entry's bytes *)
let normalize key s =
  match parse_entry key s with
  | Some v -> v
  | None -> invalid_arg "Cache.memo: evaluator result does not round-trip"

let store t key s =
  match path_of t key with
  | None -> ()
  | Some path ->
      let dir = Option.get t.dir in
      let tmp, oc = Filename.open_temp_file ~temp_dir:dir ".cache-" ".tmp" in
      output_string oc s;
      close_out oc;
      Sys.rename tmp path

let memo t ~key compute =
  match lookup t key with
  | Some v ->
      Atomic.incr t.hits;
      v
  | None ->
      Atomic.incr t.misses;
      let s = entry_string key (compute ()) in
      store t key s;
      normalize key s

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
