(* Pareto-frontier extraction over heterogeneous objectives.

   An objective is a direction plus a partial extractor: points that
   lack a value for any active objective (e.g. the cost model declined
   the chip, or the evaluator was not requested) cannot be compared and
   are excluded from the frontier rather than guessed at.  The frontier
   preserves input order, so it is as deterministic as its input. *)

type direction = Minimize | Maximize

type 'a objective = {
  obj_name : string;
  direction : direction;
  value : 'a -> float option;
}

let objective ~name ~direction value = { obj_name = name; direction; value }

(* orient every objective so that larger is better *)
let score o x = match o.direction with Minimize -> -.x | Maximize -> x

let dominates va vb =
  let ge = ref true and gt = ref false in
  for i = 0 to Array.length va - 1 do
    if va.(i) < vb.(i) then ge := false
    else if va.(i) > vb.(i) then gt := true
  done;
  !ge && !gt

let frontier ~objectives items =
  let scored =
    items
    |> List.filter_map (fun item ->
           let vals =
             List.map (fun o -> Option.map (score o) (o.value item)) objectives
           in
           if List.exists Option.is_none vals then None
           else Some (item, Array.of_list (List.map Option.get vals)))
    |> Array.of_list
  in
  let n = Array.length scored in
  let keep = ref [] in
  for i = n - 1 downto 0 do
    let _, vi = scored.(i) in
    let dominated = ref false in
    for j = 0 to n - 1 do
      if (not !dominated) && j <> i then begin
        let _, vj = scored.(j) in
        (* strict domination only: ties survive together *)
        if dominates vj vi then dominated := true
      end
    done;
    if not !dominated then keep := fst scored.(i) :: !keep
  done;
  !keep

let name o = o.obj_name
