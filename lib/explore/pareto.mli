(** Pareto-frontier extraction over a list of evaluated points.

    Objectives are directions plus partial extractors; a point missing
    a value for any objective is excluded from the frontier (it cannot
    be compared), never treated as best or worst.  Input order is
    preserved, so deterministic input gives a deterministic frontier. *)

type direction = Minimize | Maximize

type 'a objective

val objective :
  name:string -> direction:direction -> ('a -> float option) -> 'a objective

val name : 'a objective -> string

(** [dominates a b] on pre-extracted score vectors (already oriented so
    that larger is better): [a] at least as good everywhere and
    strictly better somewhere. *)
val dominates : float array -> float array -> bool

(** The non-dominated subset, in input order. *)
val frontier : objectives:'a objective list -> 'a list -> 'a list
