module Org = Bisram_sram.Org
module Compiler = Bisram_core.Compiler
module Repairable = Bisram_yield.Repairable
module Stapper = Bisram_yield.Stapper
module Mpr = Bisram_cost.Mpr
module Chips = Bisram_cost.Chips
module Rel = Bisram_rel.Reliability
module Campaign = Bisram_campaign.Campaign
module Pool = Bisram_parallel.Pool
module Obs = Bisram_obs.Obs
module Events = Bisram_obs.Events
module J = Bisram_obs.Json

type result = {
  spec : Spec.t;
  points : Spec.point array;
  evals : (string * J.t) list array;
  skipped : int;
  cache_hits : int;
  cache_misses : int;
  cache_stats : Cache.stats;
}

(* ------------------------------------------------------------------ *)
(* evaluators: each one a pure function of its Spec.cache_key inputs *)

(* yield geometry from the measured layout, as the analyze subcommand
   derives it: logic share and growth factor of the compiled module *)
let geometry org (a : Compiler.area_report) =
  if org.Org.spares = 0 then Repairable.bare ~regular_rows:(Org.rows org)
  else
    Repairable.make ~regular_rows:(Org.rows org) ~spares:org.Org.spares
      ~logic_fraction:(a.Compiler.logic_mm2 /. a.Compiler.module_mm2)
      ~growth_factor:(max 1.0 a.Compiler.growth_factor)

let area_json (d : Compiler.t) =
  let a = d.Compiler.area in
  J.Obj
    [ ("module_mm2", J.Float a.Compiler.module_mm2)
    ; ("base_module_mm2", J.Float a.Compiler.base_module_mm2)
    ; ("logic_mm2", J.Float a.Compiler.logic_mm2)
    ; ("spare_mm2", J.Float a.Compiler.spare_mm2)
    ; ("overhead_logic_pct", J.Float a.Compiler.overhead_logic_pct)
    ; ("overhead_total_pct", J.Float a.Compiler.overhead_total_pct)
    ; ("growth_factor", J.Float a.Compiler.growth_factor)
    ; ("logic_fraction", J.Float (a.Compiler.logic_mm2 /. a.Compiler.module_mm2))
    ]

let yield_json (p : Spec.point) (d : Compiler.t) =
  let g = geometry p.Spec.org d.Compiler.area in
  let y = Repairable.yield g ~mean_defects:p.Spec.mean_defects ~alpha:p.Spec.alpha in
  let yp = Repairable.yield_poisson g ~mean_defects:p.Spec.mean_defects in
  let bare =
    Stapper.stapper_yield ~mean_defects:p.Spec.mean_defects ~alpha:p.Spec.alpha
  in
  (* 2D line-cover yield, only for organizations that carry spare
     columns (row-only orgs keep the exact historical rendering) *)
  let two_d =
    if p.Spec.org.Org.spare_cols = 0 then []
    else
      let g2 =
        Repairable.make2 ~rows:(Org.rows p.Spec.org)
          ~cols:(Org.cols p.Spec.org) ~spare_rows:p.Spec.org.Org.spares
          ~spare_cols:p.Spec.org.Org.spare_cols
      in
      [ ( "repairable2"
        , J.Float
            (Repairable.yield2 g2 ~mean_defects:p.Spec.mean_defects
               ~alpha:p.Spec.alpha) )
      ]
  in
  J.Obj
    ([ ("repairable", J.Float y)
     ; ("repairable_poisson", J.Float yp)
     ; ("stapper_bare", J.Float bare)
     ; ("gain_vs_bare", J.Float (y /. bare))
     ]
    @ two_d)

let cost_json (spec : Spec.t) (p : Spec.point) (d : Compiler.t) =
  let a = d.Compiler.area in
  let chip = spec.Spec.chip in
  let params =
    { Mpr.spares = p.Spec.org.Org.spares
    ; cache_rows = Org.rows p.Spec.org
    ; area_overhead = max 0.0 (a.Compiler.overhead_total_pct /. 100.0)
    ; alpha = p.Spec.alpha
    }
  in
  match Mpr.die_bisr chip params with
  | None ->
      J.Obj
        [ ("chip", J.String chip.Chips.name); ("available", J.Bool false) ]
  | Some bisr ->
      let plain = Mpr.die_plain chip in
      let tp = Mpr.totals_plain chip in
      let tb =
        match Mpr.totals_bisr chip params with
        | Some t -> t
        | None -> assert false (* die_bisr just succeeded *)
      in
      J.Obj
        [ ("chip", J.String chip.Chips.name)
        ; ("available", J.Bool true)
        ; ("cost_per_good_die", J.Float bisr.Mpr.cost_per_good_die)
        ; ("plain_cost_per_good_die", J.Float plain.Mpr.cost_per_good_die)
        ; ("die_yield", J.Float bisr.Mpr.die_yield)
        ; ("plain_die_yield", J.Float plain.Mpr.die_yield)
        ; ("dies_per_wafer", J.Int bisr.Mpr.dies_per_wafer)
        ; ("chip_total", J.Float tb.Mpr.total)
        ; ("plain_chip_total", J.Float tp.Mpr.total)
        ; ( "reduction_pct"
          , J.Float (100.0 *. (tp.Mpr.total -. tb.Mpr.total) /. tp.Mpr.total) )
        ]

let year_h = 8760.0

let reliability_json (p : Spec.point) =
  let c = Rel.of_org p.Spec.org ~lambda:p.Spec.lambda in
  let mttf = Rel.mttf c in
  let crossover =
    (* Fig. 5: the fewer-spares curve starts higher (spares are failure
       sites) and is overtaken later; report the age where the 4-spare
       baseline of the same organization crosses this config *)
    if p.Spec.org.Org.spares = 4 then J.Null
    else
      match
        Org.make ~spares:4 ~words:p.Spec.org.Org.words ~bpw:p.Spec.org.Org.bpw
          ~bpc:p.Spec.org.Org.bpc ()
      with
      | exception Invalid_argument _ -> J.Null
      | base_org -> (
          let base = Rel.of_org base_org ~lambda:p.Spec.lambda in
          let fewer, more =
            if p.Spec.org.Org.spares < 4 then (c, base) else (base, c)
          in
          let t1 = 20.0 *. Float.max mttf (Rel.mttf base) in
          match Rel.crossover fewer more ~t0:1.0 ~t1 ~steps:4000 with
          | Some t -> J.Float t
          | None -> J.Null)
  in
  J.Obj
    [ ("mttf_h", J.Float mttf)
    ; ("r_1y", J.Float (Rel.reliability c year_h))
    ; ("r_10y", J.Float (Rel.reliability c (10.0 *. year_h)))
    ; ("crossover_vs_4_spares_h", crossover)
    ]

let campaign_json (spec : Spec.t) (p : Spec.point) =
  if not (Org.simulable p.Spec.org) then
    J.Obj [ ("simulable", J.Bool false) ]
  else begin
    let repair =
      match Campaign.repair_of_name spec.Spec.repair with
      | Some r -> r
      | None ->
          (* Spec.of_string validated the spelling already *)
          invalid_arg ("Explore: unknown repair strategy " ^ spec.Spec.repair)
    in
    let cfg =
      Campaign.make_config ~org:p.Spec.org ~march:spec.Spec.march
        ~mode:(Campaign.Clustered { mean = p.Spec.mean_defects; alpha = p.Spec.alpha })
        ~trials:spec.Spec.campaign_trials ~seed:spec.Spec.campaign_seed
        ~repair ~shrink:false ()
    in
    (* sequential inside the pool worker: points are the parallel axis *)
    let r = Campaign.run ~jobs:1 cfg in
    J.Obj
      ([ ("simulable", J.Bool true)
       ; ("trials", J.Int r.Campaign.trials_run)
       ]
      @ (* only spelled for a non-default strategy, so cached row-tlb
           evaluations from older sweeps keep their exact rendering *)
      (match repair with
      | Campaign.Row_tlb -> []
      | _ -> [ ("repair", J.String (Campaign.repair_name repair)) ])
      @ [ ("repair_rate_two_pass", J.Float r.Campaign.observed_yield_two_pass)
        ; ("repair_rate_iterated", J.Float r.Campaign.observed_yield_iterated)
        ; ("analytic_yield", J.Float r.Campaign.analytic_yield)
        ; ("escapes", J.Int (List.length r.Campaign.escapes))
        ; ("divergences", J.Int (List.length r.Campaign.divergences))
        ])
  end

let compute spec p design = function
  | "area" -> area_json (Lazy.force design)
  | "yield" -> yield_json p (Lazy.force design)
  | "cost" -> cost_json spec p (Lazy.force design)
  | "reliability" -> reliability_json p
  | "campaign" -> campaign_json spec p
  | e -> invalid_arg ("Explore: unknown evaluator " ^ e)

(* ------------------------------------------------------------------ *)
(* the parallel sweep *)

let run ?(jobs = 1) ?cache_dir ?(resume = false) ?on_progress spec =
  if jobs < 1 then invalid_arg "Explore.run: jobs must be >= 1";
  let points, skipped = Spec.expand spec in
  let cache = Cache.create ?dir:cache_dir ~resume () in
  Events.emit ~domain:"explore" "run.start"
    [ ("points", J.Int (Array.length points))
    ; ("skipped", J.Int skipped)
    ; ("evaluators", J.Int (List.length spec.Spec.evaluators))
    ; ("jobs", J.Int jobs)
    ; ("cached", J.Bool (cache_dir <> None))
    ];
  (* live progress: one tick per completed point, pushed from the
     completing worker's domain; write-only, never read by the report *)
  let prog_done = Atomic.make 0 in
  let tick () =
    match on_progress with
    | None -> ()
    | Some f -> f ~done_:(Atomic.fetch_and_add prog_done 1 + 1)
                  ~total:(Array.length points)
  in
  let work i =
    let p = points.(i) in
    Obs.span ~cat:"explore" ~arg:("point", i) "point" (fun () ->
        Obs.incr "explore.points";
        (* one lazily compiled design per point, shared by the area,
           yield and cost evaluators; never forced when all three hit
           the cache *)
        let design = lazy (Compiler.compile (Spec.config_of_point spec p)) in
        let evs =
          List.map
            (fun ev ->
              let key = Spec.cache_key spec p ~evaluator:ev in
              let v =
                Obs.span ~cat:"explore" ~arg:("point", i) ev (fun () ->
                    Cache.memo cache ~key (fun () -> compute spec p design ev))
              in
              (ev, v))
            spec.Spec.evaluators
        in
        tick ();
        evs)
  in
  let probe =
    if not (Obs.enabled ()) then None
    else
      Some
        (fun ~worker ~busy_ns ~total_ns ~chunks ~items ->
          let pre = Printf.sprintf "pool.worker%d." worker in
          Obs.add (pre ^ "busy_ns") (Int64.to_int busy_ns);
          Obs.add (pre ^ "idle_ns") (Int64.to_int (Int64.sub total_ns busy_ns));
          Obs.add (pre ^ "chunks") chunks;
          Obs.add (pre ^ "items") items)
  in
  let completed = Pool.map ~jobs ?probe (Array.length points) work in
  (* no stop condition, so every slot is filled *)
  let evals =
    Array.map (function Some e -> e | None -> assert false) completed
  in
  Obs.add "explore.cache_hits" (Cache.hits cache);
  Obs.add "explore.cache_misses" (Cache.misses cache);
  let st = Cache.stats cache in
  Events.emit ~domain:"explore" "run.end"
    [ ("points", J.Int (Array.length points))
    ; ("cache_hits", J.Int st.Cache.st_hits)
    ; ("cache_misses", J.Int st.Cache.st_misses)
    ; ("cache_quarantined", J.Int st.Cache.st_quarantined)
    ];
  { spec; points; evals; skipped
  ; cache_hits = Cache.hits cache
  ; cache_misses = Cache.misses cache
  ; cache_stats = st
  }

let evaluations r =
  Array.length r.points * List.length r.spec.Spec.evaluators

(* ------------------------------------------------------------------ *)
(* objective extraction *)

let num = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let eval_field r i ~evaluator ~field =
  match List.assoc_opt evaluator r.evals.(i) with
  | None -> None
  | Some j -> Option.bind (J.member field j) num

(* (objective display name, evaluator, field, direction) — the
   frontier of the tentpole: cost, yield, MTTF, area overhead *)
let objective_specs =
  [ ("cost_per_good_die", "cost", "cost_per_good_die", Pareto.Minimize)
  ; ("repairable_yield", "yield", "repairable", Pareto.Maximize)
  ; ("repair_rate", "campaign", "repair_rate_iterated", Pareto.Maximize)
  ; ("mttf_h", "reliability", "mttf_h", Pareto.Maximize)
  ; ("overhead_total_pct", "area", "overhead_total_pct", Pareto.Minimize)
  ]

let active_objectives r =
  List.filter_map
    (fun (name, ev, field, direction) ->
      if List.mem ev r.spec.Spec.evaluators then
        Some
          (Pareto.objective ~name ~direction (fun i ->
               eval_field r i ~evaluator:ev ~field))
      else None)
    objective_specs

let pareto_indices r =
  match active_objectives r with
  | [] -> []
  | objectives ->
      Pareto.frontier ~objectives
        (List.init (Array.length r.points) (fun i -> i))

(* ------------------------------------------------------------------ *)
(* best spares per organization (the paper's conclusions table) *)

type group = {
  g_words : int;
  g_bpw : int;
  g_bpc : int;
  g_mean : float;
  g_alpha : float;
  g_lambda : float;
  mutable members : int list;  (** point indices, reverse lattice order *)
}

let groups_of r =
  let tbl = Hashtbl.create 16 and order = ref [] in
  Array.iter
    (fun (p : Spec.point) ->
      let key =
        ( p.Spec.org.Org.words, p.Spec.org.Org.bpw, p.Spec.org.Org.bpc
        , p.Spec.mean_defects, p.Spec.alpha, p.Spec.lambda )
      in
      match Hashtbl.find_opt tbl key with
      | Some g -> g.members <- p.Spec.index :: g.members
      | None ->
          let g =
            { g_words = p.Spec.org.Org.words
            ; g_bpw = p.Spec.org.Org.bpw
            ; g_bpc = p.Spec.org.Org.bpc
            ; g_mean = p.Spec.mean_defects
            ; g_alpha = p.Spec.alpha
            ; g_lambda = p.Spec.lambda
            ; members = [ p.Spec.index ]
            }
          in
          Hashtbl.add tbl key g;
          order := g :: !order)
    r.points;
  let gs = List.rev !order in
  List.iter (fun g -> g.members <- List.rev g.members) gs;
  gs

(* ranking metric: the first objective every group member has a value
   for, in the order cost > yield > mttf > overhead; spares count
   breaks ties so the cheaper redundancy wins *)
let ranking_metric r members =
  List.find_opt
    (fun (_, ev, field, _) ->
      List.mem ev r.spec.Spec.evaluators
      && List.for_all
           (fun i -> eval_field r i ~evaluator:ev ~field <> None)
           members)
    objective_specs

let rank_members r members =
  match ranking_metric r members with
  | None ->
      ( "spares"
      , List.sort
          (fun a b ->
            compare r.points.(a).Spec.org.Org.spares
              r.points.(b).Spec.org.Org.spares)
          members )
  | Some (name, ev, field, direction) ->
      let value i =
        match eval_field r i ~evaluator:ev ~field with
        | Some v -> v
        | None -> assert false (* ranking_metric checked every member *)
      in
      let cmp a b =
        let va = value a and vb = value b in
        let c =
          match direction with
          | Pareto.Minimize -> compare va vb
          | Pareto.Maximize -> compare vb va
        in
        if c <> 0 then c
        else
          compare r.points.(a).Spec.org.Org.spares
            r.points.(b).Spec.org.Org.spares
      in
      (name, List.sort cmp members)

(* ------------------------------------------------------------------ *)
(* report *)

let org_json (org : Org.t) =
  J.Obj
    ([ ("words", J.Int org.Org.words)
     ; ("bpw", J.Int org.Org.bpw)
     ; ("bpc", J.Int org.Org.bpc)
     ; ("spares", J.Int org.Org.spares)
     ]
    @
    (* spelled only when present, like the campaign report's org echo *)
    if org.Org.spare_cols > 0 then
      [ ("spare_cols", J.Int org.Org.spare_cols) ]
    else [])

let objective_fields r i =
  List.map
    (fun (name, ev, field, _) ->
      ( name
      , if List.mem ev r.spec.Spec.evaluators then
          match eval_field r i ~evaluator:ev ~field with
          | Some v -> J.Float v
          | None -> J.Null
        else J.Null ))
    objective_specs

let point_json r i =
  let p = r.points.(i) in
  J.Obj
    [ ("index", J.Int p.Spec.index)
    ; ("org", org_json p.Spec.org)
    ; ("mean_defects", J.Float p.Spec.mean_defects)
    ; ("alpha", J.Float p.Spec.alpha)
    ; ("lambda", J.Float p.Spec.lambda)
    ; ("evals", J.Obj (List.map (fun (ev, v) -> (ev, v)) r.evals.(i)))
    ]

let best_spares_json r =
  groups_of r
  |> List.map (fun g ->
         let ranked_by, ranking = rank_members r g.members in
         let best =
           match ranking with
           | i :: _ -> J.Int r.points.(i).Spec.org.Org.spares
           | [] -> J.Null
         in
         J.Obj
           [ ("words", J.Int g.g_words)
           ; ("bpw", J.Int g.g_bpw)
           ; ("bpc", J.Int g.g_bpc)
           ; ("mean_defects", J.Float g.g_mean)
           ; ("alpha", J.Float g.g_alpha)
           ; ("lambda", J.Float g.g_lambda)
           ; ("ranked_by", J.String ranked_by)
           ; ( "ranking"
             , J.List
                 (List.map
                    (fun i ->
                      let org = r.points.(i).Spec.org in
                      let sc =
                        if org.Org.spare_cols > 0 then
                          [ ("spare_cols", J.Int org.Org.spare_cols) ]
                        else []
                      in
                      J.Obj
                        ((("spares", J.Int org.Org.spares) :: sc)
                        @ ("index", J.Int i)
                          :: objective_fields r i))
                    ranking) )
           ; ("best_spares", best)
           ])

let report_json r =
  J.Obj
    [ ("schema", J.String "bisram-explore/1")
    ; ("spec", Spec.to_json r.spec)
    ; ("points_total", J.Int (Array.length r.points))
    ; ("combinations_skipped", J.Int r.skipped)
    ; ( "points"
      , J.List (List.init (Array.length r.points) (fun i -> point_json r i)) )
    ; ( "pareto"
      , J.List
          (List.map
             (fun i -> J.Obj (("index", J.Int i) :: objective_fields r i))
             (pareto_indices r)) )
    ; ("best_spares", J.List (best_spares_json r))
    ]

let json_string r = J.to_string (report_json r)
let pretty_json_string r = J.to_pretty_string (report_json r)

(* ------------------------------------------------------------------ *)
(* human-readable summary (stderr side channel; never in the report) *)

let summary_table r =
  let b = Buffer.create 1024 in
  let fmt_opt = function
    | Some v -> Printf.sprintf "%12.4g" v
    | None -> Printf.sprintf "%12s" "-"
  in
  let objective_names = List.map (fun (n, _, _, _) -> n) objective_specs in
  Buffer.add_string b
    (Printf.sprintf "pareto frontier (%d of %d points)\n"
       (List.length (pareto_indices r))
       (Array.length r.points));
  Buffer.add_string b
    (Printf.sprintf "%6s %-30s %8s" "index" "org" "n-bar");
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf " %12s" n))
    objective_names;
  Buffer.add_char b '\n';
  List.iter
    (fun i ->
      let p = r.points.(i) in
      Buffer.add_string b
        (Printf.sprintf "%6d %-30s %8.3g" i
           (Format.asprintf "%a" Org.pp p.Spec.org)
           p.Spec.mean_defects);
      List.iter
        (fun (_, ev, field, _) ->
          Buffer.add_string b
            (Printf.sprintf " %s" (fmt_opt (eval_field r i ~evaluator:ev ~field))))
        objective_specs;
      Buffer.add_char b '\n')
    (pareto_indices r);
  Buffer.add_string b "\nbest spares per organization\n";
  Buffer.add_string b
    (Printf.sprintf "%-22s %8s %8s  %s\n" "org (words x bpw/bpc)" "n-bar"
       "best" "ranking (by first available of cost/yield/mttf)");
  List.iter
    (fun g ->
      let ranked_by, ranking = rank_members r g.members in
      let spares_of i = r.points.(i).Spec.org.Org.spares in
      Buffer.add_string b
        (Printf.sprintf "%-22s %8.3g %8s  %s (by %s)\n"
           (Printf.sprintf "%dw x %db/%d" g.g_words g.g_bpw g.g_bpc)
           g.g_mean
           (match ranking with
           | i :: _ -> string_of_int (spares_of i)
           | [] -> "-")
           (String.concat " > "
              (List.map (fun i -> string_of_int (spares_of i)) ranking))
           ranked_by))
    (groups_of r);
  Buffer.contents b
