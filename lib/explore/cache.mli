(** Content-addressed on-disk memoization of evaluator results.

    Every entry is one JSON file under the cache directory, named by
    the hex digest of its key; the key itself embeds the cache-format
    {!version} and the evaluator's canonical input rendering
    ({!Spec.cache_key}), so a format bump or an input change can never
    alias an old entry.  The stored document carries the full key and a
    content digest of the value's serialization, both verified on read
    — a filename-digest collision, a truncated file or a flipped byte
    anywhere in the entry is treated as a miss, never as data.

    Determinism contract: {!memo} always returns the {e parsed} JSON of
    the entry's on-disk bytes — also on a miss, where the freshly
    computed value is serialized, written and re-parsed.  Since the
    serializer prints floats through a fixed format, a value read back
    from the cache is byte-for-byte the value a cold run reports, which
    is what makes cold and warm sweep reports identical.

    Writes are atomic (temp file + rename in the cache directory), so
    concurrent workers and interrupted runs leave either a complete
    entry or none.  Workers never write the same key twice in one run,
    and identical keys produce identical bytes, so a rename race is
    harmless.

    Self-healing: the cache treats its own disk state as untrusted.
    Orphaned temp files (a kill between write and rename) are reaped at
    {!create}; an entry that exists but fails verification is moved
    aside to [<entry>.quarantine] and recomputed; a read or write error
    (EIO, ENOSPC, permissions) degrades that evaluation to uncached.
    None of this changes any value {!memo} returns — a damaged cache
    only costs recomputation, so reports stay byte-identical.  Every
    event is counted in {!stats} and mirrored to {!Bisram_obs.Obs}
    counters ([cache.quarantined], [cache.reaped_tmp],
    [cache.io_errors]) when telemetry is on. *)

type t

(** The cache-format version baked into every key. *)
val version : string

(** Lifetime event counters for one cache instance. *)
type stats = {
  st_hits : int;
  st_misses : int;
  st_quarantined : int;  (** entries failing verification, moved aside *)
  st_reaped_tmp : int;  (** orphaned temp files removed at open *)
  st_io_errors : int;  (** reads/writes that degraded to uncached *)
}

(** [create ?dir ~resume ()] — a cache rooted at [dir] (created if
    missing; orphaned [.cache-*.tmp] files from killed runs are reaped
    on open).  Without [dir] nothing touches the disk: every lookup is
    a miss and results are only normalized (serialize + re-parse).
    With [resume = false] existing entries are ignored (and
    overwritten), so the run is cache-cold by construction; hits can
    only happen when [resume] is set.
    @raise Sys_error when [dir] exists but is not a directory. *)
val create : ?dir:string -> resume:bool -> unit -> t

(** [memo t ~key compute] — the normalized cached value for [key],
    computing (and storing) it on a miss.  Safe to call from pool
    workers: the counters are atomic and writes go through unique temp
    files.  Never raises on cache damage or disk errors — those
    degrade to recomputation (see self-healing above). *)
val memo : t -> key:string -> (unit -> Bisram_obs.Json.t) -> Bisram_obs.Json.t

val hits : t -> int
val misses : t -> int
val stats : t -> stats
