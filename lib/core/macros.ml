module P = Bisram_geometry.Point
module R = Bisram_geometry.Rect
module Org = Bisram_sram.Org
module Leaf = Bisram_layout.Leaf
module Cell = Bisram_layout.Cell
module Macro = Bisram_layout.Macro
module Port = Bisram_layout.Port
module Block = Bisram_pr.Block
module Trpla = Bisram_bist.Trpla

type t = {
  ram_array : Macro.t;
  row_decoder : Macro.t;
  wl_drivers : Macro.t;
  precharge : Macro.t;
  column_mux : Macro.t;
  sense_amps : Macro.t;
  column_decoder : Macro.t;
  addgen : Macro.t;
  datagen : Macro.t;
  tlb : Macro.t;
  csteer : Macro.t option;
  trpla : Macro.t;
  streg : Macro.t;
}

let log2i n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (k * 2) in
  go 0 1

let row_bits cfg = max 1 (log2i (Org.rows cfg.Config.org))
let addr_bits cfg = max 1 (log2i cfg.Config.org.Org.words)

let cell_w = 24
let cell_h = 20
let strap_w = 8

(* The RAM core: subarrays of [strap] columns separated by strap
   columns, [total_cols] wide and [total_rows] tall (spare lines are
   ordinary cells), odd rows mirrored to share rails. *)
let ram_array cfg =
  let org = cfg.Config.org in
  let cols = Org.total_cols org and rows = Org.total_rows org in
  let cell = Leaf.sram_6t () in
  let strap_cell = Leaf.strap ~w:strap_w in
  let group = if cfg.Config.strap = 0 then cols else min cfg.Config.strap cols in
  let elements = ref [] in
  let x = ref 0 in
  let remaining = ref cols in
  let first = ref true in
  while !remaining > 0 do
    if not !first then begin
      elements :=
        Macro.array ~origin:(P.make !x 0) ~nx:1 ~ny:rows ~mirror_odd_rows:true
          strap_cell
        :: !elements;
      x := !x + strap_w
    end;
    first := false;
    let n = min group !remaining in
    elements :=
      Macro.array ~origin:(P.make !x 0) ~nx:n ~ny:rows ~mirror_odd_rows:true
        cell
      :: !elements;
    x := !x + (n * cell_w);
    remaining := !remaining - n
  done;
  Macro.make ~name:"RAMARRAY" (List.rev !elements)

(* Per-physical-column periphery spans the spare columns too: a spare
   column is only usable if its bitlines precharge like any other. *)
let column_peripheral cfg ~name cell =
  let cols = Org.total_cols cfg.Config.org in
  Macro.make ~name [ Macro.array ~origin:P.zero ~nx:cols ~ny:1 cell ]

let generate cfg ~pla =
  let org = cfg.Config.org in
  let rows = Org.total_rows org in
  let rb = row_bits cfg and ab = addr_bits cfg in
  let ram_array = ram_array cfg in
  let row_decoder =
    Macro.make ~name:"ROWDEC"
      [ Macro.array ~origin:P.zero ~nx:1 ~ny:rows ~mirror_odd_rows:true
          (Leaf.row_decoder_slice ~bits:rb)
      ]
  in
  let wl_drivers =
    Macro.make ~name:"WLDRV"
      [ Macro.array ~origin:P.zero ~nx:1 ~ny:rows ~mirror_odd_rows:true
          (Leaf.wordline_driver ~drive:cfg.Config.drive)
      ]
  in
  let precharge = column_peripheral cfg ~name:"PRECH" (Leaf.precharge ()) in
  (* Column datapath blocks are pitch-matched to the I/O pitch (bpc
     cells per I/O), so they stack under the array with no dead shelf;
     the slack inside each slice carries feed-through routing. *)
  let io_pitch = cell_w * org.Org.bpc in
  let column_mux =
    Macro.make ~name:"COLMUX"
      [ Macro.array ~origin:P.zero ~nx:org.Org.bpw ~ny:1
          (Leaf.column_mux ~bpc:org.Org.bpc)
      ]
  in
  let sense_amps =
    Macro.make ~name:"SENSE"
      [ Macro.array ~origin:P.zero
          ~pitch_x:(max io_pitch (Cell.width (Leaf.sense_amp ())))
          ~nx:org.Org.bpw ~ny:1 (Leaf.sense_amp ())
      ]
  in
  let column_decoder =
    let w = (6 * max 1 (log2i org.Org.bpc)) + (10 * org.Org.bpc) in
    Macro.make ~name:"COLDEC"
      [ Macro.inst (Cell.make ~name:"col_dec" ~w ~h:24 [] []) ]
  in
  (* register strips fold into multiple rows when the module is
     narrower than the strip (narrow-word organizations) *)
  let folded_strip ~name cell n =
    let max_w = max (Macro.width ram_array) (Cell.width cell) in
    let per_row = max 1 (min n (max_w / Cell.width cell)) in
    let rows = (n + per_row - 1) / per_row in
    Macro.make ~name [ Macro.array ~origin:P.zero ~nx:per_row ~ny:rows cell ]
  in
  let addgen = folded_strip ~name:"ADDGEN" (Leaf.addgen_stage ()) ab in
  let datagen =
    Macro.make ~name:"DATAGEN"
      [ Macro.array ~origin:P.zero
          ~pitch_x:(max io_pitch (Cell.width (Leaf.datagen_stage ())))
          ~nx:org.Org.bpw ~ny:1 (Leaf.datagen_stage ())
      ]
  in
  let tlb =
    let cam = Leaf.cam_bit () in
    let encoder =
      Cell.make ~name:"tlb_encoder" ~w:40 ~h:(cell_h * max 1 org.Org.spares) []
        []
    in
    Macro.make ~name:"TLB"
      [ Macro.array ~origin:P.zero ~nx:rb ~ny:(max 1 org.Org.spares) cam
      ; Macro.inst
          ~at:(Bisram_geometry.Transform.translation (P.make (36 * rb) 0))
          encoder
      ]
  in
  (* Column steering (BIRA only): per spare column, a 2:1 steering mux
     per data I/O plus a CAM word on the physical column address that
     holds the allocated column — the column analogue of the TLB. *)
  let csteer =
    if org.Org.spare_cols = 0 then None
    else
      let cb = max 1 (log2i (Org.cols org)) in
      let mux = Leaf.column_mux ~bpc:2 in
      Some
        (Macro.make ~name:"CSTEER"
           [ Macro.array ~origin:P.zero ~nx:org.Org.bpw ~ny:org.Org.spare_cols
               mux
           ; Macro.array
               ~origin:(P.make (org.Org.bpw * Cell.width mux) 0)
               ~nx:cb ~ny:org.Org.spare_cols (Leaf.cam_bit ())
           ])
  in
  let trpla =
    Macro.make ~name:"TRPLA"
      [ Macro.inst
          (Leaf.pla ~n_inputs:(Trpla.n_inputs pla)
             ~n_outputs:(Trpla.n_outputs pla) ~n_terms:(Trpla.term_count pla))
      ]
  in
  let streg =
    Macro.make ~name:"STREG"
      [ Macro.array ~origin:P.zero ~nx:8 ~ny:1 (Leaf.dff ()) ]
  in
  { ram_array
  ; row_decoder
  ; wl_drivers
  ; precharge
  ; column_mux
  ; sense_amps
  ; column_decoder
  ; addgen
  ; datagen
  ; tlb
  ; csteer
  ; trpla
  ; streg
  }

let to_list t =
  [ ("RAMARRAY", t.ram_array)
  ; ("ROWDEC", t.row_decoder)
  ; ("WLDRV", t.wl_drivers)
  ; ("PRECH", t.precharge)
  ; ("COLMUX", t.column_mux)
  ; ("SENSE", t.sense_amps)
  ; ("COLDEC", t.column_decoder)
  ; ("ADDGEN", t.addgen)
  ; ("DATAGEN", t.datagen)
  ; ("TLB", t.tlb)
  ]
  @ (match t.csteer with Some m -> [ ("CSTEER", m) ] | None -> [])
  @ [ ("TRPLA", t.trpla)
    ; ("STREG", t.streg)
    ]

(* Floorplanner view: representative pins encode the module netlist so
   the placer's port-alignment heuristic pulls connected blocks
   together. *)
let block_of name (m : Macro.t) pins =
  let box = Macro.bbox m in
  let w = R.width box and h = R.height box in
  let n = List.length pins in
  Block.make ~name ~w ~h
    (List.mapi
       (fun i (net, edge) ->
         let along =
           match edge with
           | Port.North | Port.South -> w
           | Port.East | Port.West -> h
         in
         (* spread the block's pins evenly along their edges so no two
            nets depart from the same routing line *)
         let offset = along * (i + 1) / (n + 1) in
         { Block.net; edge; offset })
       pins)

let base_blocks t =
  [ block_of "RAMARRAY" t.ram_array
      [ ("wl", Port.West); ("bl", Port.South); ("pbl", Port.North) ]
  ; block_of "WLDRV" t.wl_drivers [ ("rdec", Port.West); ("wl", Port.East) ]
  ; block_of "ROWDEC" t.row_decoder
      [ ("rdec", Port.East); ("addr", Port.South); ("saddr", Port.West) ]
  ; block_of "PRECH" t.precharge [ ("pbl", Port.South); ("ctl", Port.East) ]
  ; block_of "COLMUX" t.column_mux
      [ ("bl", Port.North); ("muxio", Port.South); ("csel", Port.West) ]
  ; block_of "COLDEC" t.column_decoder
      [ ("csel", Port.East); ("addr", Port.West) ]
  ; block_of "SENSE" t.sense_amps
      [ ("muxio", Port.North); ("dout", Port.South) ]
  ]

let blocks t =
  base_blocks t
  @ [ block_of "DATAGEN" t.datagen [ ("dout", Port.North); ("ctl", Port.West) ]
    ; block_of "ADDGEN" t.addgen [ ("addr", Port.North); ("ctl", Port.West) ]
    ; block_of "TLB" t.tlb
        [ ("addr", Port.South); ("saddr", Port.East); ("ctl", Port.West) ]
    ]
  @ (match t.csteer with
    | Some m ->
        [ block_of "CSTEER" m [ ("muxio", Port.North); ("ctl", Port.West) ] ]
    | None -> [])
  @ [ block_of "TRPLA" t.trpla [ ("ctl", Port.East); ("status", Port.South) ]
    ; block_of "STREG" t.streg [ ("status", Port.North) ]
    ]
