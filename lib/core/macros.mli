(** Macrocell generation: the named blocks of the BISR-RAM module.

    Every macrocell is generated bottom-up from the leaf library as a
    symbolic {!Bisram_layout.Macro.t}; the floorplanner consumes the
    derived {!Bisram_pr.Block.t} views connected by the module's nets. *)

type t = {
  ram_array : Bisram_layout.Macro.t;  (** regular + spare rows + straps *)
  row_decoder : Bisram_layout.Macro.t;
  wl_drivers : Bisram_layout.Macro.t;
  precharge : Bisram_layout.Macro.t;
  column_mux : Bisram_layout.Macro.t;
  sense_amps : Bisram_layout.Macro.t;
  column_decoder : Bisram_layout.Macro.t;
  addgen : Bisram_layout.Macro.t;
  datagen : Bisram_layout.Macro.t;
  tlb : Bisram_layout.Macro.t;
  csteer : Bisram_layout.Macro.t option;
      (** column steering muxes + allocation CAM; present iff the
          organization has spare columns *)
  trpla : Bisram_layout.Macro.t;
  streg : Bisram_layout.Macro.t;
}

val generate : Config.t -> pla:Bisram_bist.Trpla.t -> t

(** All macros with their block names, in floorplanning order. *)
val to_list : t -> (string * Bisram_layout.Macro.t) list

(** Floorplanner views, with pins wired per the module netlist. *)
val blocks : t -> Bisram_pr.Block.t list

(** Floorplanner views of the base RAM only (array, row and column
    periphery) — the module a non-BISR compiler would emit.  Used to
    measure the true area cost of BIST/BISR by comparing floorplanned
    bounding boxes. *)
val base_blocks : t -> Bisram_pr.Block.t list

(** Address width of the row field. *)
val row_bits : Config.t -> int
