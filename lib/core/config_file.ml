module Pr = Bisram_tech.Process
module March = Bisram_bist.March
module Alg = Bisram_bist.Algorithms

let parse text =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  text
  |> String.split_on_char '\n'
  |> List.concat_map (fun line ->
         let line = String.trim (strip_comment line) in
         if line = "" then []
         else
           match String.index_opt line '=' with
           | None -> invalid_arg ("Config_file.parse: missing '=' in: " ^ line)
           | Some i ->
               let key = String.trim (String.sub line 0 i) in
               let value =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               if key = "" || value = "" then
                 invalid_arg ("Config_file.parse: empty key or value in: " ^ line);
               [ (String.lowercase_ascii key, value) ])

let known_keys =
  [ "process"; "words"; "bpw"; "bpc"; "spares"; "spare_cols"; "drive"
  ; "strap"; "march"
  ]

let to_config kvs =
  match
    List.find_opt (fun (k, _) -> not (List.mem k known_keys)) kvs
  with
  | Some (k, _) -> Error (Printf.sprintf "unknown key %S" k)
  | None -> (
      let get key default = Option.value (List.assoc_opt key kvs) ~default in
      let int_of key default =
        let s = get key default in
        match int_of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "key %S: %S is not an integer" key s)
      in
      let ( let* ) = Result.bind in
      let* words = int_of "words" "4096" in
      let* bpw = int_of "bpw" "128" in
      let* bpc = int_of "bpc" "8" in
      let* spares = int_of "spares" "4" in
      let* spare_cols = int_of "spare_cols" "0" in
      let* drive = int_of "drive" "2" in
      let* strap = int_of "strap" "32" in
      let process_name = get "process" "CDA.7u3m1p" in
      let* process =
        match Pr.find process_name with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown process %S" process_name)
      in
      let march_s = get "march" "IFA-9" in
      let* march =
        match Alg.find march_s with
        | Some m -> Ok m
        | None -> (
            match March.of_string ~name:"custom" march_s with
            | m -> Ok m
            | exception Invalid_argument e -> Error e)
      in
      match
        Config.make ~spares ~spare_cols ~drive ~strap ~march ~process ~words
          ~bpw ~bpc ()
      with
      | cfg -> Ok cfg
      | exception Invalid_argument e -> Error e)

let of_string text =
  match parse text with
  | kvs -> to_config kvs
  | exception Invalid_argument e -> Error e
