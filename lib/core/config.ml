type t = {
  process : Bisram_tech.Process.t;
  org : Bisram_sram.Org.t;
  drive : int;
  strap : int;
  march : Bisram_bist.March.t;
}

let make ?(spares = 4) ?(spare_cols = 0) ?(drive = 2) ?(strap = 32)
    ?(march = Bisram_bist.Algorithms.ifa_9) ~process ~words ~bpw ~bpc () =
  if not (Bisram_tech.Process.supports_bisr process) then
    invalid_arg
      (Printf.sprintf
         "Config.make: process %s has %d metal layers; BISRAMGEN needs 3"
         process.Bisram_tech.Process.name
         process.Bisram_tech.Process.metal_layers);
  if drive < 1 || drive > 8 then invalid_arg "Config.make: drive must be 1..8";
  if strap < 0 then invalid_arg "Config.make: strap must be >= 0";
  let org = Bisram_sram.Org.make ~spares ~spare_cols ~words ~bpw ~bpc () in
  { process; org; drive; strap; march }

let backgrounds t =
  Bisram_bist.Datagen.required_backgrounds ~bpw:t.org.Bisram_sram.Org.bpw

let pp ppf t =
  Format.fprintf ppf "%a on %a, drive x%d, strap %d, march %s"
    Bisram_sram.Org.pp t.org Bisram_tech.Process.pp t.process t.drive t.strap
    t.march.Bisram_bist.March.name
