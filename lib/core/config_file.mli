(** Key = value configuration files for the CLI.

    {v
    # 64 KB embedded cache
    process = CDA.7u3m1p
    words   = 4096
    bpw     = 128
    bpc     = 8
    spares  = 4
    spare_cols = 0
    drive   = 2
    strap   = 32
    march   = IFA-9
    v}

    Unknown keys are rejected; missing keys take the same defaults as
    the CLI.  [march] accepts a library name or inline notation. *)

(** Parse file contents into key/value pairs.
    @raise Invalid_argument on malformed lines. *)
val parse : string -> (string * string) list

(** Build a configuration; [Error] carries a human-readable message. *)
val to_config : (string * string) list -> (Config.t, string) result

(** Convenience: [parse] + [to_config]. *)
val of_string : string -> (Config.t, string) result
