module Org = Bisram_sram.Org
module Timing = Bisram_sram.Timing
module Model = Bisram_sram.Model
module Controller = Bisram_bist.Controller
module Datagen = Bisram_bist.Datagen
module Trpla = Bisram_bist.Trpla
module March = Bisram_bist.March
module Tlb_timing = Bisram_bisr.Tlb_timing
module Macro = Bisram_layout.Macro
module Leaf = Bisram_layout.Leaf
module Cif = Bisram_layout.Cif
module Floorplan = Bisram_pr.Floorplan
module Pr = Bisram_tech.Process

type area_report = {
  array_mm2 : float;
  base_mm2 : float;
  logic_mm2 : float;
  spare_mm2 : float;
  module_mm2 : float;
  base_module_mm2 : float;
  dead_mm2 : float;
  overhead_logic_pct : float;
  overhead_total_pct : float;
  growth_factor : float;
}

type timing_report = {
  access : Timing.breakdown;
  access_ns : float;
  tlb : Tlb_timing.estimate;
  tlb_ns : float;
  tlb_maskable : bool;
}

type controller_report = {
  states : int;
  flipflops : int;
  pla_terms : int;
  pla_transistors : int;
  backgrounds : int;
  test_ops : int;
}

type t = {
  config : Config.t;
  macros : Macros.t;
  controller : Controller.t;
  pla : Trpla.t;
  floorplan : Floorplan.t;
  area : area_report;
  timing : timing_report;
  ctl_report : controller_report;
}

let mm2 process lambda2 =
  let nm = float_of_int process.Pr.lambda_nm in
  float_of_int lambda2 *. nm *. nm *. 1e-12

let area_report cfg macros floorplan ~base_module_mm2 =
  let p = cfg.Config.process in
  let org = cfg.Config.org in
  let rows = Org.rows org and total = Org.total_rows org in
  let cols = Org.cols org and total_cols = Org.total_cols org in
  (* 2D regular fractions: the array carries spare rows and spare
     columns; row periphery scales with rows, per-column periphery
     (precharge) with physical columns.  With spare_cols = 0 both
     column factors are exactly 1.0 and every formula reduces to the
     historical row-only accounting bit-for-bit. *)
  let frac_regular = float_of_int rows /. float_of_int total in
  let frac_regular_cols = float_of_int cols /. float_of_int total_cols in
  let a m = mm2 p (Macro.area m) in
  let array_total = a macros.Macros.ram_array in
  let row_periph_total =
    a macros.Macros.row_decoder +. a macros.Macros.wl_drivers
  in
  let array_mm2 = array_total *. frac_regular *. frac_regular_cols in
  let base_mm2 =
    array_mm2
    +. (row_periph_total *. frac_regular)
    +. (a macros.Macros.precharge *. frac_regular_cols)
    +. a macros.Macros.column_mux
    +. a macros.Macros.sense_amps +. a macros.Macros.column_decoder
  in
  let logic_mm2 =
    a macros.Macros.addgen +. a macros.Macros.datagen +. a macros.Macros.tlb
    +. (match macros.Macros.csteer with Some m -> a m | None -> 0.0)
    +. a macros.Macros.trpla +. a macros.Macros.streg
  in
  let spare_mm2 =
    (* the row-only branch keeps the historical expression so existing
       reports stay byte-identical (distributing the product would
       perturb the last ulp) *)
    if org.Org.spare_cols = 0 then
      (array_total +. row_periph_total) *. (1.0 -. frac_regular)
    else
      (array_total *. (1.0 -. (frac_regular *. frac_regular_cols)))
      +. (row_periph_total *. (1.0 -. frac_regular))
      +. (a macros.Macros.precharge *. (1.0 -. frac_regular_cols))
  in
  let module_mm2 =
    mm2 p
      (Bisram_geometry.Rect.area floorplan.Floorplan.placement.Bisram_pr.Placer.bbox)
  in
  let dead_mm2 =
    mm2 p floorplan.Floorplan.placement.Bisram_pr.Placer.dead_space
  in
  { array_mm2
  ; base_mm2
  ; logic_mm2
  ; spare_mm2
  ; module_mm2
  ; base_module_mm2
  ; dead_mm2
  ; overhead_logic_pct = 100.0 *. logic_mm2 /. base_mm2
  ; overhead_total_pct =
      100.0 *. (module_mm2 -. base_module_mm2) /. base_module_mm2
  ; growth_factor = module_mm2 /. base_module_mm2
  }

let compile cfg =
  let org = cfg.Config.org in
  (* Wide-word organizations (bpw > Word.max_width) are layout-only:
     their backgrounds cannot be represented as packed words, but the
     controller needs only the background count to compile. *)
  let n_backgrounds = Datagen.required_count ~bpw:org.Org.bpw in
  let controller =
    if Org.simulable org then
      Controller.compile cfg.Config.march ~words:org.Org.words
        ~backgrounds:(Config.backgrounds cfg)
    else
      Controller.compile_layout cfg.Config.march ~words:org.Org.words
        ~n_backgrounds
  in
  let pla = Controller.to_pla controller in
  let macros = Macros.generate cfg ~pla in
  let floorplan =
    Floorplan.make cfg.Config.process.Pr.rules (Macros.blocks macros)
  in
  (* floorplan the plain (no-spares, no-BIST/BISR) module to measure the
     true silicon cost of self-repair *)
  let base_module_mm2 =
    let base_org =
      Org.make ~spares:0 ~words:org.Org.words ~bpw:org.Org.bpw
        ~bpc:org.Org.bpc ()
    in
    let base_cfg = { cfg with Config.org = base_org } in
    let base_macros = Macros.generate base_cfg ~pla in
    let base_fp =
      Bisram_pr.Placer.place (Macros.base_blocks base_macros)
    in
    mm2 cfg.Config.process
      (Bisram_geometry.Rect.area base_fp.Bisram_pr.Placer.bbox)
  in
  let area = area_report cfg macros floorplan ~base_module_mm2 in
  let access = Timing.access_time cfg.Config.process org ~drive:(float_of_int cfg.Config.drive) in
  let tlb = Tlb_timing.delay cfg.Config.process ~org in
  let timing =
    { access
    ; access_ns = Timing.total access *. 1e9
    ; tlb
    ; tlb_ns = Tlb_timing.total tlb *. 1e9
    ; tlb_maskable =
        Tlb_timing.maskable cfg.Config.process ~org
          ~drive:(float_of_int cfg.Config.drive)
    }
  in
  let ctl_report =
    { states = Controller.state_count controller
    ; flipflops = Controller.flipflop_count controller
    ; pla_terms = Trpla.term_count pla
    ; pla_transistors = Trpla.transistor_count pla
    ; backgrounds = n_backgrounds
    ; test_ops =
        2 * March.ops_per_address cfg.Config.march * org.Org.words
        * n_backgrounds
    }
  in
  { config = cfg; macros; controller; pla; floorplan; area; timing; ctl_report }

let self_test t ~faults =
  let model = Model.create t.config.Config.org in
  Model.set_faults model faults;
  let backgrounds = Config.backgrounds t.config in
  let outcome, report, _tlb =
    Bisram_bisr.Repair.run model t.config.Config.march ~backgrounds
  in
  (outcome, report)

type pin = { pin_name : string; width : int; dir : string; purpose : string }

let pinout t =
  let org = t.config.Config.org in
  let log2i n =
    let rec go acc k = if k >= n then acc else go (acc + 1) (k * 2) in
    go 0 1
  in
  let abits = max 1 (log2i org.Org.words) in
  [ { pin_name = "A"; width = abits; dir = "in"; purpose = "word address" }
  ; { pin_name = "DIN"; width = org.Org.bpw; dir = "in"; purpose = "write data" }
  ; { pin_name = "DOUT"; width = org.Org.bpw; dir = "out"; purpose = "read data" }
  ; { pin_name = "WE"; width = 1; dir = "in"; purpose = "write enable" }
  ; { pin_name = "CS"; width = 1; dir = "in"; purpose = "chip select" }
  ; { pin_name = "TEST"; width = 1; dir = "in"; purpose = "BIST/BISR start" }
  ; { pin_name = "RET"; width = 1; dir = "in"
    ; purpose = "retention-wait acknowledge from the processor" }
  ; { pin_name = "BUSY"; width = 1; dir = "out"; purpose = "self-test running" }
  ; { pin_name = "FAIL"; width = 1; dir = "out"
    ; purpose = "Repair Unsuccessful status" }
  ; { pin_name = "VDD"; width = 1; dir = "supply"; purpose = "power" }
  ; { pin_name = "GND"; width = 1; dir = "supply"; purpose = "ground" }
  ]

let datasheet t =
  let cfg = t.config in
  let org = cfg.Config.org in
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "BISRAMGEN datasheet";
  p "===================";
  p "organization      : %d words x %d bits (bpc=%d)" org.Org.words org.Org.bpw
    org.Org.bpc;
  p "capacity          : %.0f Kb (%.1f KB)" (Org.kilobits org)
    (Org.kilobits org /. 8.0);
  p "rows              : %d regular + %d spare" (Org.rows org) org.Org.spares;
  if org.Org.spare_cols > 0 then
    p "columns           : %d regular + %d spare (2D BIRA repair)"
      (Org.cols org) org.Org.spare_cols;
  p "process           : %s" cfg.Config.process.Pr.name;
  p "march algorithm   : %s" cfg.Config.march.March.name;
  p "backgrounds       : %d (Johnson counter)" t.ctl_report.backgrounds;
  p "";
  p "access time       : %.2f ns" t.timing.access_ns;
  let wt =
    Timing.write_time cfg.Config.process org
      ~drive:(float_of_int cfg.Config.drive)
  in
  let itf =
    Timing.interface cfg.Config.process org
      ~drive:(float_of_int cfg.Config.drive)
  in
  p "write time        : %.2f ns" (wt *. 1e9);
  p "setup/hold        : addr %.2f ns, data %.2f ns, hold %.2f ns"
    (itf.Timing.address_setup *. 1e9)
    (itf.Timing.data_setup *. 1e9)
    (itf.Timing.hold *. 1e9);
  p "TLB delay         : %.2f ns (%s)" t.timing.tlb_ns
    (if t.timing.tlb_maskable then "maskable" else "NOT maskable");
  let pw =
    Bisram_sram.Power.estimate cfg.Config.process org
      ~drive:(float_of_int cfg.Config.drive)
  in
  let f_access = 1.0 /. (t.timing.access_ns *. 1e-9) in
  p "energy            : %.2f pJ/read, %.2f pJ/write"
    (pw.Bisram_sram.Power.read_energy *. 1e12)
    (pw.Bisram_sram.Power.write_energy *. 1e12);
  p "supply current    : %.2f mA at %.0f MHz access rate"
    (Bisram_sram.Power.supply_current pw ~frequency_hz:f_access *. 1e3)
    (f_access /. 1e6);
  p "";
  p "module area       : %.3f mm^2 (plain module: %.3f mm^2)"
    t.area.module_mm2 t.area.base_module_mm2;
  p "base RAM area     : %.3f mm^2" t.area.base_mm2;
  p "BIST/BISR logic   : %.4f mm^2 (%.2f%% overhead)" t.area.logic_mm2
    t.area.overhead_logic_pct;
  (if t.config.Config.org.Org.spare_cols > 0 then
     p "spare rows+cols   : %.4f mm^2" t.area.spare_mm2
   else p "spare rows        : %.4f mm^2" t.area.spare_mm2);
  p "total overhead    : %.2f%% vs the plain module (growth factor %.3f)"
    t.area.overhead_total_pct t.area.growth_factor;
  p "";
  p "controller        : %d states, %d flip-flops" t.ctl_report.states
    t.ctl_report.flipflops;
  p "TRPLA             : %d terms, %d transistors" t.ctl_report.pla_terms
    t.ctl_report.pla_transistors;
  p "self-test length  : %d RAM operations (two passes)"
    t.ctl_report.test_ops;
  p "";
  p "symbol (pinout)";
  List.iter
    (fun pin ->
      p "  %-5s %-8s %-6s %s" pin.pin_name
        (if pin.width = 1 then "" else Printf.sprintf "[%d:0]" (pin.width - 1))
        pin.dir pin.purpose)
    (pinout t);
  Buffer.contents buf

let rtl t =
  let org = t.config.Config.org in
  let module B = Bisram_gates.Builders in
  let module N = Bisram_gates.Netlist in
  let abits = max 1 (B.bits_for org.Org.words) in
  let rbits = max 1 (B.bits_for (Org.rows org)) in
  String.concat "\n"
    [ Bisram_bist.Pla_gates.controller_verilog t.controller
    ; N.to_verilog ~name:"addgen" (B.up_down_counter ~bits:abits)
    ; N.to_verilog ~name:"datagen_core"
        (B.johnson_counter ~bits:org.Org.bpw)
    ; N.to_verilog ~name:"read_comparator" (B.comparator ~bits:org.Org.bpw)
    ; N.to_verilog ~name:"tlb_cam"
        (B.cam ~entries:(max 1 org.Org.spares) ~bits:rbits)
    ]

let leaf_library_cif t =
  let p = t.config.Config.process in
  let cells =
    [ Leaf.sram_6t (); Leaf.precharge (); Leaf.sense_amp ()
    ; Leaf.wordline_driver ~drive:t.config.Config.drive
    ; Leaf.row_decoder_slice ~bits:(Macros.row_bits t.config)
    ; Leaf.column_mux ~bpc:t.config.Config.org.Org.bpc
    ; Leaf.pla_programmed
        ~and_plane:(Trpla.and_plane_image t.pla)
        ~or_plane:(Trpla.or_plane_image t.pla)
    ]
  in
  List.map (fun c -> (c.Bisram_layout.Cell.name, Cif.of_cell p c)) cells
