(** User-facing configuration of a BISRAMGEN run: the circuit
    parameters the paper's tool prompts for, plus the march algorithm
    microprogrammed into the TRPLA. *)

type t = {
  process : Bisram_tech.Process.t;
  org : Bisram_sram.Org.t;
  drive : int;  (** critical-gate size multiplier ("buffer size") *)
  strap : int;  (** cells between straps; 0 disables strapping *)
  march : Bisram_bist.March.t;
}

(** @raise Invalid_argument when the process has fewer than three metal
    layers (BISR needs over-the-cell metal-3 routing), when [drive] is
    not in [1,8] or when [strap] is negative.  [march] defaults to
    IFA-9, [drive] to 2, [strap] to 32, [spares] to 4, [spare_cols]
    to 0 (row-only redundancy, the paper's scheme). *)
val make :
  ?spares:int -> ?spare_cols:int -> ?drive:int -> ?strap:int ->
  ?march:Bisram_bist.March.t ->
  process:Bisram_tech.Process.t -> words:int -> bpw:int -> bpc:int -> unit -> t

(** The data backgrounds the Johnson counter applies: bpw/2 + 1. *)
val backgrounds : t -> Bisram_sram.Word.t list

val pp : Format.formatter -> t -> unit
