(** Biased sampling proposals for rare-event campaign estimation.

    A proposal biases the per-trial fault draw — the fault count, the
    class mix, or both — towards the rare failing region, and supplies
    the likelihood ratio [w = p(trial) / q(trial)] that makes
    [w]-weighted tallies unbiased estimates of the nominal escape /
    repair-failure probabilities (importance sampling).  The identity
    proposal reproduces the nominal sampler byte-for-byte, including
    its rng consumption order, so replay and checkpoint determinism
    are preserved. *)

(** The campaign's nominal fault-count model. *)
type count_model =
  | Fixed of int  (** uniform mode: exactly [n] faults per trial *)
  | Poisson of float  (** Poisson defect counts with the given mean *)
  | Clustered of { mean : float; alpha : float }
      (** Stapper clustered (negative-binomial) counts *)

(** How the proposal biases the fault count. *)
type count_proposal =
  | Count_nominal  (** draw from the nominal count model *)
  | Scaled of { scale : float; shift : float }
      (** importance sampling: draw the count from the nominal family
          with mean [nominal_mean * scale + shift] (Poisson or
          clustered modes only) *)
  | Stratified of { nonzero : float }
      (** two-stratum mixture: with probability [nonzero] draw the
          nominal count conditioned on [n >= 1] (inverse-CDF), else
          [n = 0].  Weights are the constant per-stratum ratios
          [p(0)/(1-nonzero)] and [(1-p(0))/nonzero]. *)

type t = {
  count : count_proposal;
  mix : Injection.mix option;
      (** [Some q] draws fault classes from [q] instead of the nominal
          mix, contributing per-fault ratio factors; [None] keeps the
          nominal mix (ratio factor 1). *)
}

(** The identity proposal: nominal count, nominal mix, weight 1. *)
val nominal : t

val is_nominal : t -> bool

(** Validate a proposal against the nominal distribution it will be
    weighted with.

    @raise Invalid_argument naming the offending key when: a scale /
    shift / nonzero parameter is non-finite or out of range
    ([scale > 0], [shift >= 0], [0 < nonzero < 1]); the count proposal
    is non-trivial but the count model is [Fixed], or is stratified
    with [P(n >= 1) = 0]; either mix fails
    {!Injection.validate_mix}; or the proposal mix gives zero weight
    to a class the nominal mix draws (unbounded weights). *)
val validate : nominal_mix:Injection.mix -> count_model -> t -> unit

(** [draw p ~count ~mix rng ~rows ~cols] draws one trial's fault list
    from the proposal distribution.  With [p = nominal] this consumes
    [rng] exactly like drawing the count from [count] and injecting
    with [mix] — byte-identical to the unbiased sampler. *)
val draw :
  t ->
  count:count_model ->
  mix:Injection.mix ->
  Random.State.t ->
  rows:int ->
  cols:int ->
  Fault.t list

(** Log likelihood ratio [log (p(faults) / q(faults))] of a drawn
    trial: the count term plus one class-probability term per fault.
    Positions and per-class parameters cancel.  [neg_infinity] (weight
    0) when the nominal distribution cannot produce the trial. *)
val log_weight : t -> count:count_model -> mix:Injection.mix -> Fault.t list -> float

(** [exp (log_weight ...)]; exactly [1.0] for the identity proposal. *)
val weight : t -> count:count_model -> mix:Injection.mix -> Fault.t list -> float
