type mix = {
  stuck_at : float;
  transition : float;
  stuck_open : float;
  coupling_inversion : float;
  coupling_idempotent : float;
  state_coupling : float;
  data_retention : float;
}

let default_mix =
  { stuck_at = 0.40
  ; transition = 0.15
  ; stuck_open = 0.10
  ; coupling_inversion = 0.10
  ; coupling_idempotent = 0.10
  ; state_coupling = 0.05
  ; data_retention = 0.10
  }

let stuck_at_only =
  { stuck_at = 1.0
  ; transition = 0.0
  ; stuck_open = 0.0
  ; coupling_inversion = 0.0
  ; coupling_idempotent = 0.0
  ; state_coupling = 0.0
  ; data_retention = 0.0
  }

let mix_weights mix =
  [ ("stuck_at", mix.stuck_at)
  ; ("transition", mix.transition)
  ; ("stuck_open", mix.stuck_open)
  ; ("coupling_inversion", mix.coupling_inversion)
  ; ("coupling_idempotent", mix.coupling_idempotent)
  ; ("state_coupling", mix.state_coupling)
  ; ("data_retention", mix.data_retention)
  ]

let validate_mix mix =
  List.iter
    (fun (name, w) ->
      if Float.is_nan w then
        invalid_arg (Printf.sprintf "Injection: %s weight is NaN" name);
      if w < 0.0 then
        invalid_arg
          (Printf.sprintf "Injection: %s weight %g is negative" name w))
    (mix_weights mix);
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 (mix_weights mix) in
  if total <= 0.0 then
    invalid_arg
      (Printf.sprintf
         "Injection: mix has no positive weight (all-zero mix: %s are all 0)"
         (String.concat ", " (List.map fst (mix_weights mix))))

let class_name = function
  | Fault.Stuck_at _ -> "stuck_at"
  | Fault.Transition _ -> "transition"
  | Fault.Stuck_open _ -> "stuck_open"
  | Fault.Coupling_inversion _ -> "coupling_inversion"
  | Fault.Coupling_idempotent _ -> "coupling_idempotent"
  | Fault.State_coupling _ -> "state_coupling"
  | Fault.Data_retention _ -> "data_retention"

let total_weight mix =
  List.fold_left (fun a (_, w) -> a +. w) 0.0 (mix_weights mix)

let class_weight mix fault =
  match fault with
  | Fault.Stuck_at _ -> mix.stuck_at
  | Fault.Transition _ -> mix.transition
  | Fault.Stuck_open _ -> mix.stuck_open
  | Fault.Coupling_inversion _ -> mix.coupling_inversion
  | Fault.Coupling_idempotent _ -> mix.coupling_idempotent
  | Fault.State_coupling _ -> mix.state_coupling
  | Fault.Data_retention _ -> mix.data_retention

let class_probability mix fault = class_weight mix fault /. total_weight mix

let random_cell rng ~rows ~cols =
  { Fault.row = Random.State.int rng rows; col = Random.State.int rng cols }

(* A physically adjacent distinct cell: vertical or horizontal neighbour,
   clamped to the array. *)
let neighbour rng ~rows ~cols (c : Fault.cell) =
  let candidates =
    List.filter
      (fun (r, k) -> r >= 0 && r < rows && k >= 0 && k < cols)
      [ (c.Fault.row - 1, c.Fault.col)
      ; (c.Fault.row + 1, c.Fault.col)
      ; (c.Fault.row, c.Fault.col - 1)
      ; (c.Fault.row, c.Fault.col + 1)
      ]
  in
  match candidates with
  | [] -> c (* degenerate 1x1 array *)
  | l ->
      let r, k = List.nth l (Random.State.int rng (List.length l)) in
      { Fault.row = r; col = k }

let random_fault rng ~rows ~cols ~mix =
  assert (rows > 0 && cols > 0);
  validate_mix mix;
  let weights =
    [ (mix.stuck_at, `Saf)
    ; (mix.transition, `Tf)
    ; (mix.stuck_open, `Sof)
    ; (mix.coupling_inversion, `Cfin)
    ; (mix.coupling_idempotent, `Cfid)
    ; (mix.state_coupling, `Cfst)
    ; (mix.data_retention, `Drf)
    ]
  in
  let total = List.fold_left (fun a (w, _) -> a +. w) 0.0 weights in
  let pick = Random.State.float rng total in
  let rec select acc = function
    | [] -> `Saf
    | (w, k) :: rest -> if pick < acc +. w then k else select (acc +. w) rest
  in
  let victim = random_cell rng ~rows ~cols in
  let flag = Random.State.bool rng in
  match select 0.0 weights with
  | `Saf -> Fault.Stuck_at (victim, flag)
  | `Tf -> Fault.Transition (victim, flag)
  | `Sof -> Fault.Stuck_open victim
  | `Cfin ->
      let aggressor = neighbour rng ~rows ~cols victim in
      Fault.Coupling_inversion { aggressor; victim }
  | `Cfid ->
      let aggressor = neighbour rng ~rows ~cols victim in
      Fault.Coupling_idempotent
        { aggressor; rising = Random.State.bool rng; victim; forces = flag }
  | `Cfst ->
      let aggressor = neighbour rng ~rows ~cols victim in
      Fault.State_coupling
        { aggressor; when_state = Random.State.bool rng; victim; reads_as = flag }
  | `Drf -> Fault.Data_retention (victim, flag)

let inject rng ~rows ~cols ~mix ~n =
  validate_mix mix;
  List.init n (fun _ -> random_fault rng ~rows ~cols ~mix)

let inject_poisson rng ~rows ~cols ~mix ~mean =
  inject rng ~rows ~cols ~mix ~n:(Defect.poisson rng mean)

let inject_clustered rng ~rows ~cols ~mix ~mean ~alpha =
  inject rng ~rows ~cols ~mix ~n:(Defect.negative_binomial rng ~mean ~alpha)

let faulty_rows faults =
  faults
  |> List.map (fun f -> (Fault.victim f).Fault.row)
  |> List.sort_uniq Int.compare
