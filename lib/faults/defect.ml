(* Knuth's product method below lambda=30; normal approximation with
   continuity correction above (counts here are small-to-moderate). *)
let rec poisson rng lambda =
  assert (lambda >= 0.0);
  if lambda = 0.0 then 0
  else if lambda > 30.0 then begin
    (* split: X ~ Pois(30) + Pois(lambda-30) *)
    poisson rng 30.0 + poisson rng (lambda -. 30.0)
  end
  else begin
    let limit = exp (-.lambda) in
    let rec go k p =
      let p = p *. Random.State.float rng 1.0 in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.0
  end

let rec gamma rng ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  if shape < 1.0 then
    (* boost: Gamma(a) = Gamma(a+1) * U^(1/a) *)
    let u = Random.State.float rng 1.0 in
    gamma rng ~shape:(shape +. 1.0) ~scale *. (u ** (1.0 /. shape))
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec normal () =
      (* Box-Muller *)
      let u1 = Random.State.float rng 1.0 and u2 = Random.State.float rng 1.0 in
      if u1 <= 0.0 then normal ()
      else sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
    in
    let rec try_once () =
      let x = normal () in
      let v = (1.0 +. (c *. x)) ** 3.0 in
      if v <= 0.0 then try_once ()
      else
        let u = Random.State.float rng 1.0 in
        if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then
          d *. v *. scale
        else try_once ()
    in
    try_once ()
  end

let negative_binomial rng ~mean ~alpha =
  assert (mean >= 0.0 && alpha > 0.0);
  if mean = 0.0 then 0
  else
    (* Gamma-Poisson mixture: lambda ~ Gamma(alpha, mean/alpha) *)
    let lambda = gamma rng ~shape:alpha ~scale:(mean /. alpha) in
    poisson rng lambda

(* Lanczos log-gamma *)
let rec log_gamma x =
  let g = 7.0 in
  let coefs =
    [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028
     ; 771.32342877765313; -176.61502916214059; 12.507343278686905
     ; -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7
    |]
  in
  if x < 0.5 then
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma_aux g coefs (1.0 -. x)
  else log_gamma_aux g coefs x

and log_gamma_aux g coefs x =
  let x = x -. 1.0 in
  let a = ref coefs.(0) in
  let t = x +. g +. 0.5 in
  for i = 1 to 8 do
    a := !a +. (coefs.(i) /. (x +. float_of_int i))
  done;
  (0.5 *. log (2.0 *. Float.pi))
  +. ((x +. 0.5) *. log t)
  -. t
  +. log !a

(* Degenerate mean 0 puts all mass on k = 0; without the guard the
   k = 0 term evaluates 0 * log 0 = nan. *)
let poisson_log_pmf ~mean k =
  assert (k >= 0);
  if mean = 0.0 then (if k = 0 then 0.0 else neg_infinity)
  else
    (float_of_int k *. log mean) -. mean -. log_gamma (float_of_int k +. 1.0)

let poisson_pmf ~mean k = exp (poisson_log_pmf ~mean k)

let negative_binomial_log_pmf ~mean ~alpha k =
  assert (k >= 0);
  if mean = 0.0 then (if k = 0 then 0.0 else neg_infinity)
  else
    let kf = float_of_int k in
    let p = mean /. (mean +. alpha) in
    log_gamma (kf +. alpha) -. log_gamma alpha
    -. log_gamma (kf +. 1.0)
    +. (alpha *. log (1.0 -. p))
    +. (kf *. log p)

let negative_binomial_pmf ~mean ~alpha k =
  exp (negative_binomial_log_pmf ~mean ~alpha k)
