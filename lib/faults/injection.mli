(** Random fault injection for an array of [rows] x [cols] cells.

    A spot defect is mapped to a functional fault at a uniformly random
    cell; the fault class is drawn from a distribution representative of
    inductive fault analysis results (stuck-at faults dominate, coupling
    and retention faults form the tail). *)

type mix = {
  stuck_at : float;
  transition : float;
  stuck_open : float;
  coupling_inversion : float;
  coupling_idempotent : float;
  state_coupling : float;
  data_retention : float;
}
(** Relative weights of each fault class; need not sum to 1. *)

(** The default IFA-flavoured mix. *)
val default_mix : mix

(** Every weight on stuck-at faults: the classical row-kill model used
    for the paper's yield analysis (a defect makes one cell bad). *)
val stuck_at_only : mix

(** @raise Invalid_argument when any weight is negative or NaN (the
    message names the offending key and its value), or when every
    weight is zero (the sampler would silently bias towards stuck-at
    faults otherwise).  Called by [random_fault] and the [inject*]
    functions; exposed so configuration front ends can fail fast. *)
val validate_mix : mix -> unit

(** The mix field name of a fault's class (["stuck_at"],
    ["transition"], …) — the key [validate_mix] diagnostics use. *)
val class_name : Fault.t -> string

(** Sum of all mix weights (positive after [validate_mix]). *)
val total_weight : mix -> float

(** The raw mix weight of the given fault's class. *)
val class_weight : mix -> Fault.t -> float

(** Normalized class-draw probability of the given fault's class under
    the mix — the per-fault factor of an importance-sampling
    likelihood ratio. *)
val class_probability : mix -> Fault.t -> float

(** [random_fault rng ~rows ~cols ~mix] draws one fault.  Coupling
    aggressors are drawn from the victim's neighbourhood (same column,
    adjacent row, or adjacent column) as physical adjacency dictates. *)
val random_fault :
  Random.State.t -> rows:int -> cols:int -> mix:mix -> Fault.t

(** [inject rng ~rows ~cols ~mix ~n] draws [n] independent faults. *)
val inject :
  Random.State.t -> rows:int -> cols:int -> mix:mix -> n:int -> Fault.t list

(** Defect count drawn from Poisson with the given mean. *)
val inject_poisson :
  Random.State.t -> rows:int -> cols:int -> mix:mix -> mean:float ->
  Fault.t list

(** Defect count drawn from the clustered (negative binomial) model. *)
val inject_clustered :
  Random.State.t -> rows:int -> cols:int -> mix:mix -> mean:float ->
  alpha:float -> Fault.t list

(** Rows containing at least one victim cell, deduplicated, sorted. *)
val faulty_rows : Fault.t list -> int list
