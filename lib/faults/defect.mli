(** Statistical defect-count models.

    Manufacturing defects are counted per die either with a Poisson
    model or with Stapper's clustered (negative-binomial) model, which
    is the Gamma mixture of Poissons with clustering factor alpha. *)

(** [poisson rng lambda] samples a Poisson variate with mean [lambda]. *)
val poisson : Random.State.t -> float -> int

(** [gamma rng ~shape ~scale] samples a Gamma variate
    (Marsaglia-Tsang). [shape] > 0, [scale] > 0. *)
val gamma : Random.State.t -> shape:float -> scale:float -> float

(** [negative_binomial rng ~mean ~alpha] samples a defect count with
    mean [mean] and clustering factor [alpha] (small alpha = heavy
    clustering; alpha -> infinity recovers Poisson). *)
val negative_binomial : Random.State.t -> mean:float -> alpha:float -> int

(** Probability mass function of the clustered count (exact, via log
    Gamma), useful for analytic cross-checks of the samplers. *)
val negative_binomial_pmf : mean:float -> alpha:float -> int -> float

val poisson_pmf : mean:float -> int -> float

(** Log-space pmfs, the numerically safe form for likelihood ratios
    (importance-sampling weights multiply many of them).  [mean = 0.0]
    is the degenerate point mass at 0: log pmf 0 at [k = 0] and
    [neg_infinity] elsewhere. *)
val poisson_log_pmf : mean:float -> int -> float

val negative_binomial_log_pmf : mean:float -> alpha:float -> int -> float

(** Lanczos log-Gamma (the kernel behind the pmfs), exposed for the
    estimator layer's Beta-function machinery. *)
val log_gamma : float -> float
