(* Biased sampling proposals for rare-event fault-injection campaigns.

   A proposal replaces the nominal trial distribution (fault count ~
   the campaign's count model, classes ~ the campaign mix) with a
   biased one that visits the rare failing region more often; every
   drawn trial carries the likelihood ratio

     w = p_count(n) / q_count(n) * prod_i p_class(c_i) / q_class(c_i)

   so that E_q[w * x] = E_p[x]: accumulating w-weighted indicators
   yields an unbiased estimate of the nominal escape / repair-failure
   probability.  The cell positions and per-class parameters of each
   fault are drawn identically under both distributions, so their
   densities cancel out of the ratio.

   Everything is driven by the caller's [Random.State.t] in a fixed
   consumption order (count first, then each fault), so the campaign's
   per-trial seed discipline — replay, checkpoint resume, byte-identical
   reports at any jobs/lanes — carries over unchanged.  The identity
   proposal ([nominal]) consumes the rng exactly like the unbiased
   sampler and weights every trial 1. *)

type count_model =
  | Fixed of int
  | Poisson of float
  | Clustered of { mean : float; alpha : float }

type count_proposal =
  | Count_nominal
  | Scaled of { scale : float; shift : float }
  | Stratified of { nonzero : float }

type t = { count : count_proposal; mix : Injection.mix option }

let nominal = { count = Count_nominal; mix = None }
let is_nominal p = p = nominal

(* ------------------------------------------------------------------ *)
(* count-model kernels *)

let log_pmf model k =
  match model with
  | Fixed n -> if k = n then 0.0 else neg_infinity
  | Poisson mean -> Defect.poisson_log_pmf ~mean k
  | Clustered { mean; alpha } -> Defect.negative_binomial_log_pmf ~mean ~alpha k

let pmf model k = exp (log_pmf model k)

let scaled_model model ~scale ~shift =
  match model with
  | Fixed _ ->
      invalid_arg
        "Proposal: count_scale/count_shift need a poisson or clustered \
         fault-count mode (uniform mode has a fixed count)"
  | Poisson mean -> Poisson ((mean *. scale) +. shift)
  | Clustered { mean; alpha } ->
      Clustered { mean = (mean *. scale) +. shift; alpha }

let draw_count model rng =
  match model with
  | Fixed n -> n
  | Poisson mean -> Defect.poisson rng mean
  | Clustered { mean; alpha } -> Defect.negative_binomial rng ~mean ~alpha

(* pmf recurrence ratio pmf(k+1)/pmf(k), used to invert the CDF of the
   count conditioned on [n >= 1] without evaluating log-Gammas per
   step. *)
let pmf_step model k =
  match model with
  | Fixed _ -> 0.0
  | Poisson mean -> mean /. float_of_int (k + 1)
  | Clustered { mean; alpha } ->
      let p = mean /. (mean +. alpha) in
      (float_of_int k +. alpha) /. float_of_int (k + 1) *. p

(* Inverse-CDF draw of the nominal count conditioned on [n >= 1]:
   target cumulative mass c = p(0) + u * (1 - p(0)), then walk the pmf
   recurrence from k = 1 until the cumulative reaches c.  O(E[n | n>=1])
   steps — constant-ish at the low means this sampler exists for. *)
let draw_count_nonzero model rng =
  match model with
  | Fixed n -> n (* point mass; validate requires n >= 1 via P(0) < 1 *)
  | _ ->
  let p0 = pmf model 0 in
  let u = Random.State.float rng 1.0 in
  let c = p0 +. (u *. (1.0 -. p0)) in
  let k = ref 1 in
  let pk = ref (p0 *. pmf_step model 0) in
  let cum = ref (p0 +. !pk) in
  while !cum < c && !pk > 1e-300 && !k < 1_000_000 do
    pk := !pk *. pmf_step model !k;
    incr k;
    cum := !cum +. !pk
  done;
  !k

(* ------------------------------------------------------------------ *)
(* validation *)

let finite name v =
  if Float.is_nan v || not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Proposal: %s must be finite (got %g)" name v)

let validate ~nominal_mix count_model p =
  Injection.validate_mix nominal_mix;
  (match p.count with
  | Count_nominal -> ()
  | Scaled { scale; shift } ->
      finite "count_scale" scale;
      finite "count_shift" shift;
      if scale <= 0.0 then
        invalid_arg
          (Printf.sprintf "Proposal: count_scale must be positive (got %g)"
             scale);
      if shift < 0.0 then
        invalid_arg
          (Printf.sprintf "Proposal: count_shift %g is negative" shift);
      ignore (scaled_model count_model ~scale ~shift)
  | Stratified { nonzero } ->
      finite "stratified_nonzero" nonzero;
      if nonzero <= 0.0 || nonzero >= 1.0 then
        invalid_arg
          (Printf.sprintf
             "Proposal: stratified_nonzero must be in (0, 1) (got %g)" nonzero);
      (match count_model with
      | Fixed _ ->
          invalid_arg
            "Proposal: stratified_nonzero needs a poisson or clustered \
             fault-count mode (uniform mode has a fixed count)"
      | _ -> ());
      let p0 = pmf count_model 0 in
      if p0 >= 1.0 then
        invalid_arg
          "Proposal: stratified sampling needs P(count >= 1) > 0 under the \
           nominal count model (mean must be positive)");
  match p.mix with
  | None -> ()
  | Some q ->
      Injection.validate_mix q;
      (* absolute continuity: any class the nominal mix can draw must be
         drawable under the proposal, or its likelihood ratio p/q is
         unbounded and the weighted estimator loses its variance
         guarantee.  Checked key by key for a precise diagnostic. *)
      List.iter
        (fun (name, pw, qw) ->
          if pw > 0.0 && qw <= 0.0 then
            invalid_arg
              (Printf.sprintf
                 "Proposal: proposal mix gives zero weight to %s, which the \
                  nominal mix draws (importance weights would be unbounded)"
                 name))
        [ ("stuck_at", nominal_mix.Injection.stuck_at, q.Injection.stuck_at)
        ; ("transition", nominal_mix.Injection.transition, q.Injection.transition)
        ; ("stuck_open", nominal_mix.Injection.stuck_open, q.Injection.stuck_open)
        ; ( "coupling_inversion"
          , nominal_mix.Injection.coupling_inversion
          , q.Injection.coupling_inversion )
        ; ( "coupling_idempotent"
          , nominal_mix.Injection.coupling_idempotent
          , q.Injection.coupling_idempotent )
        ; ( "state_coupling"
          , nominal_mix.Injection.state_coupling
          , q.Injection.state_coupling )
        ; ( "data_retention"
          , nominal_mix.Injection.data_retention
          , q.Injection.data_retention )
        ]

(* ------------------------------------------------------------------ *)
(* drawing and weighting *)

let draw p ~count ~mix rng ~rows ~cols =
  let n =
    match p.count with
    | Count_nominal -> draw_count count rng
    | Scaled { scale; shift } -> draw_count (scaled_model count ~scale ~shift) rng
    | Stratified { nonzero } ->
        if Random.State.float rng 1.0 < nonzero then
          draw_count_nonzero count rng
        else 0
  in
  let mix = match p.mix with Some q -> q | None -> mix in
  Injection.inject rng ~rows ~cols ~mix ~n

let log_weight p ~count ~mix faults =
  let n = List.length faults in
  let count_term =
    match p.count with
    | Count_nominal -> 0.0
    | Scaled { scale; shift } ->
        log_pmf count n -. log_pmf (scaled_model count ~scale ~shift) n
    | Stratified { nonzero } ->
        let p0 = pmf count 0 in
        if n = 0 then log p0 -. log (1.0 -. nonzero)
        else log (1.0 -. p0) -. log nonzero
  in
  let mix_term =
    match p.mix with
    | None -> 0.0
    | Some q ->
        List.fold_left
          (fun acc f ->
            acc
            +. log (Injection.class_probability mix f)
            -. log (Injection.class_probability q f))
          0.0 faults
  in
  count_term +. mix_term

let weight p ~count ~mix faults = exp (log_weight p ~count ~mix faults)
