(* Packed bitvector: bit i of the word is bit i of [v].  The invariant
   [v land lnot (mask width) = 0] is maintained by every constructor, so
   [equal] and the BIST engine's expected-vs-got check reduce to a
   native integer compare and no operation allocates beyond its small
   result record. *)

type t = { width : int; v : int }

(* 62 keeps [1 lsl width] and [mask width] inside OCaml's 63-bit
   tagged int on 64-bit platforms (mask 62 = max_int). *)
let max_width = 62

let check_width n =
  if n < 0 || n > max_width then
    invalid_arg
      (Printf.sprintf "Word: width %d out of range (0..%d)" n max_width)

let mask n = (1 lsl n) - 1

let width t = t.width
let zero n = check_width n; { width = n; v = 0 }
let ones n = check_width n; { width = n; v = mask n }

let of_int ~width v =
  check_width width;
  { width; v = v land mask width }

let to_int t = t.v

let init n f =
  check_width n;
  let v = ref 0 in
  for i = 0 to n - 1 do
    if f i then v := !v lor (1 lsl i)
  done;
  { width = n; v = !v }

let of_bits b = init (Array.length b) (Array.get b)

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Word.get";
  (t.v lsr i) land 1 = 1

let set t i b =
  if i < 0 || i >= t.width then invalid_arg "Word.set";
  { t with v = (if b then t.v lor (1 lsl i) else t.v land lnot (1 lsl i)) }

let lnot_ t = { t with v = lnot t.v land mask t.width }

let equal a b =
  if a.width <> b.width then invalid_arg "Word.equal: width mismatch";
  a.v = b.v

let to_bits t = Array.init t.width (fun i -> (t.v lsr i) land 1 = 1)

let diff a b =
  if a.width <> b.width then invalid_arg "Word.diff: width mismatch";
  let x = a.v lxor b.v in
  let out = ref [] in
  for i = a.width - 1 downto 0 do
    if (x lsr i) land 1 = 1 then out := i :: !out
  done;
  !out

let to_string t =
  String.init t.width (fun i -> if (t.v lsr i) land 1 = 1 then '1' else '0')

let pp ppf t = Format.pp_print_string ppf (to_string t)
