type t = { bits : bool array }

let width t = Array.length t.bits
let zero n = { bits = Array.make n false }
let ones n = { bits = Array.make n true }
let of_bits b = { bits = Array.copy b }
let init n f = { bits = Array.init n f }
let of_int ~width v = { bits = Array.init width (fun i -> (v lsr i) land 1 = 1) }

let get t i =
  if i < 0 || i >= width t then invalid_arg "Word.get";
  t.bits.(i)

let set t i v =
  if i < 0 || i >= width t then invalid_arg "Word.set";
  let b = Array.copy t.bits in
  b.(i) <- v;
  { bits = b }

let lnot_ t = { bits = Array.map not t.bits }
let equal a b = a.bits = b.bits
let to_bits t = Array.copy t.bits

let diff a b =
  if width a <> width b then invalid_arg "Word.diff: width mismatch";
  let out = ref [] in
  for i = width a - 1 downto 0 do
    if a.bits.(i) <> b.bits.(i) then out := i :: !out
  done;
  !out

let to_string t =
  String.init (width t) (fun i -> if t.bits.(i) then '1' else '0')

let pp ppf t = Format.pp_print_string ppf (to_string t)
