(** RAM organization: the user-visible circuit parameters of BISRAMGEN.

    A wide-word RAM with column-multiplexed addressing stores [words]
    words of [bpw] bits.  Each physical column stores [bpc] bits
    (column multiplexing degree); a row therefore holds [bpc] words and
    the array has [words/bpc] regular rows plus [spares] spare rows.
    An address splits into a row field (high bits) and a column field
    (the low [log2 bpc] bits). *)

type t = private {
  words : int;  (** number of addressable words; multiple of bpc *)
  bpw : int;  (** bits per word; power of two *)
  bpc : int;  (** bits per column; power of two *)
  spares : int;  (** spare rows: 0, 4, 8 or 16 *)
  spare_cols : int;  (** spare columns (2D BIRA): 0 .. 8 *)
}

(** @raise Invalid_argument when constraints are violated.  [spares]
    defaults to 4, [spare_cols] to 0 (the paper's row-only scheme). *)
val make :
  ?spares:int -> ?spare_cols:int -> words:int -> bpw:int -> bpc:int ->
  unit -> t

val rows : t -> int
(** regular rows = words / bpc *)

val total_rows : t -> int
(** regular + spare rows *)

val cols : t -> int
(** regular physical columns per row = bpw * bpc *)

val total_cols : t -> int
(** regular + spare physical columns — the full row stride of the
    simulated array.  Equal to {!cols} when [spare_cols = 0]. *)

val bits : t -> int
(** regular capacity in bits = words * bpw *)

val kilobits : t -> float

val spare_words : t -> int
(** spares * bpc — the redundancy the TLB can deploy *)

(** Address decomposition.  @raise Invalid_argument when out of range. *)
val row_of_addr : t -> int -> int

val col_of_addr : t -> int -> int
val addr_of : t -> row:int -> col:int -> int

(** Physical column of bit [bit] of the word at column-mux position
    [col]: the array interleaves the [bpw] I/O subarrays, so bit [i]
    of mux position [c] sits at column [i*bpc + c]. *)
val cell_col : t -> col:int -> bit:int -> int

(** Whether the behavioural simulator accepts this organization:
    [bpw <= Word.max_width] (62).  Layout/area/timing flows carry no
    such bound — the paper's Fig. 6/7 modules (bpw = 128/256) compile
    but are never word-simulated.  {!Model.create} enforces this. *)
val simulable : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
