(** Fixed-width bit vectors used as RAM words and test backgrounds.
    Bit 0 is the least significant / leftmost I/O subarray. *)

type t

val width : t -> int
val zero : int -> t
val ones : int -> t
val of_bits : bool array -> t

(** [init n f] is the word whose bit [i] is [f i] — like
    {!Array.init}, without the defensive copy of {!of_bits} (the
    fault-free read fast path of {!Model} is built on it). *)
val init : int -> (int -> bool) -> t

(** Low [width] bits of an integer, bit 0 = LSB. *)
val of_int : width:int -> int -> t

val get : t -> int -> bool
val set : t -> int -> bool -> t
(** functional update *)

val lnot_ : t -> t
val equal : t -> t -> bool
val to_bits : t -> bool array

(** Positions where the two words differ. *)
val diff : t -> t -> int list

(** "0101..." with bit 0 printed first. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
