(** Fixed-width bit vectors used as RAM words and test backgrounds.
    Bit 0 is the least significant / leftmost I/O subarray.

    Words are packed into a single native integer, so every operation
    is a mask-and-shift with no per-bit work, and {!equal} is an
    integer compare.  The representation caps the width at
    {!max_width} (62) bits; all simulated organizations satisfy this
    (layout-only configurations with wider words never construct
    words). *)

type t

(** Largest representable width, 62: the packed value must fit OCaml's
    63-bit native int. *)
val max_width : int

val width : t -> int

(** Constructors raise [Invalid_argument] when the width is negative
    or exceeds {!max_width}. *)
val zero : int -> t

val ones : int -> t
val of_bits : bool array -> t

(** [init n f] is the word whose bit [i] is [f i].  [f] is called in
    increasing bit order 0..n-1 (the legacy read path of {!Model}
    relies on that order for its sense-amplifier residue). *)
val init : int -> (int -> bool) -> t

(** Low [width] bits of an integer, bit 0 = LSB. *)
val of_int : width:int -> int -> t

(** The packed value: bit [i] of the result is bit [i] of the word.
    Always non-negative and below [2^width]. *)
val to_int : t -> int

val get : t -> int -> bool
val set : t -> int -> bool -> t
(** functional update *)

val lnot_ : t -> t

(** Value equality.  @raise Invalid_argument on width mismatch — a
    width mismatch is a caller bug (the old implementation silently
    returned [false]). *)
val equal : t -> t -> bool

val to_bits : t -> bool array

(** Positions where the two words differ.
    @raise Invalid_argument on width mismatch. *)
val diff : t -> t -> int list

(** "0101..." with bit 0 printed first. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
