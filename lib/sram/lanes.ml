module F = Bisram_faults.Fault

(* Lane-sliced (PPSFP-style) batch store: bit [l] of every packed int
   is campaign trial [l]'s copy of that cell.  All stimulus is
   broadcast (a written bit is 0 or [all] across lanes), every fault is
   armed as a per-lane mask, so one int operation advances every lane
   at once.  The semantics per lane mirror [Model]'s legacy (byte)
   path exactly — the qcheck differential property in test_lanes pins
   the two engines to each other bit-for-bit. *)

type eff =
  | Invert of { victim : int; lbit : int }
  | Force of { rising : bool; victim : int; forces : bool; lbit : int }

type t = {
  org : Org.t;
  lanes : int;
  all : int; (* mask of the armed lanes: (1 lsl lanes) - 1 *)
  nrows : int;
  cols : int; (* regular physical columns *)
  tcols : int; (* row stride: cols + spare_cols (spare-column cells can
                  carry armed faults; word accesses never reach them —
                  only clean lanes are resolved here, and their
                  steering is the identity) *)
  bpc : int;
  bpw : int;
  state : int array; (* one slot per cell, bit l = lane l's value *)
  pin_mask : int array; (* lanes on which the cell is stuck *)
  pin_val : int array; (* the stuck value, within pin_mask *)
  no_rise : int array;
  no_fall : int array;
  opens : int array;
  ret_mask : int array; (* lanes with a retention fault on the cell *)
  ret_val : int array; (* the decay value, within ret_mask *)
  (* victim -> (aggressor idx, when_state, reads_as, lane bit); list
     order matches the scalar model's per-lane [state_cpl] list *)
  state_cpl : (int * bool * bool * int) list array;
  agg_effects : eff list array;
  residue : int array; (* per-I/O sense-amp residue, one lane mask each *)
  (* address decode tables: cell index of I/O 0 and physical row per
     logical address, hoisted out of the per-access hot path *)
  addr_base : int array;
  addr_row : int array;
  row_fault : Bytes.t; (* rows with any fault machinery, any lane *)
  mutable pinned : int list; (* cells with pin_mask <> 0, for [clear] *)
  mutable ret_cells : int list; (* cells with ret_mask <> 0 *)
  mutable nopens : int; (* armed stuck-open count, all lanes *)
}

let org t = t.org
let nlanes t = t.lanes
let all_mask t = t.all

let create org ~lanes =
  if not (Org.simulable org) then
    invalid_arg "Lanes.create: organization is not simulable (bpw too wide)";
  if lanes < 1 || lanes > Word.max_width then
    invalid_arg
      (Printf.sprintf "Lanes.create: lanes must be in 1..%d" Word.max_width);
  let nrows = Org.total_rows org in
  let cols = Org.cols org in
  let tcols = Org.total_cols org in
  let ncells = nrows * tcols in
  { org
  ; lanes
  ; all = (1 lsl lanes) - 1
  ; nrows
  ; cols
  ; tcols
  ; bpc = org.Org.bpc
  ; bpw = org.Org.bpw
  ; state = Array.make ncells 0
  ; pin_mask = Array.make ncells 0
  ; pin_val = Array.make ncells 0
  ; no_rise = Array.make ncells 0
  ; no_fall = Array.make ncells 0
  ; opens = Array.make ncells 0
  ; ret_mask = Array.make ncells 0
  ; ret_val = Array.make ncells 0
  ; state_cpl = Array.make ncells []
  ; agg_effects = Array.make ncells []
  ; residue = Array.make org.Org.bpw 0
  ; addr_base =
      Array.init org.Org.words (fun a ->
          (Org.row_of_addr org a * tcols) + Org.col_of_addr org a)
  ; addr_row = Array.init org.Org.words (fun a -> Org.row_of_addr org a)
  ; row_fault = Bytes.make nrows '\000'
  ; pinned = []
  ; ret_cells = []
  ; nopens = 0
  }

let idx t (c : F.cell) =
  if c.F.row < 0 || c.F.row >= t.nrows then
    invalid_arg "Lanes: fault row out of range";
  if c.F.col < 0 || c.F.col >= t.tcols then
    invalid_arg "Lanes: fault col out of range";
  (c.F.row * t.tcols) + c.F.col

let row_is_faulty t row = Bytes.unsafe_get t.row_fault row <> '\000'
let mark_row_fault t row = Bytes.unsafe_set t.row_fault row '\001'

(* Per-lane bit update helpers: set bit [lbit] of slot [i] to [v]. *)
let set_lane_bit a i lbit v =
  a.(i) <- (if v then a.(i) lor lbit else a.(i) land lnot lbit)

let arm t ~lane faults =
  if lane < 0 || lane >= t.lanes then invalid_arg "Lanes.arm: lane out of range";
  let lbit = 1 lsl lane in
  List.iter
    (fun f ->
      match f with
      | F.Stuck_at (c, v) ->
          let i = idx t c in
          mark_row_fault t c.F.row;
          if t.pin_mask.(i) = 0 then t.pinned <- i :: t.pinned;
          t.pin_mask.(i) <- t.pin_mask.(i) lor lbit;
          set_lane_bit t.pin_val i lbit v
      | F.Transition (c, up) ->
          let i = idx t c in
          mark_row_fault t c.F.row;
          if up then t.no_rise.(i) <- t.no_rise.(i) lor lbit
          else t.no_fall.(i) <- t.no_fall.(i) lor lbit
      | F.Stuck_open c ->
          let i = idx t c in
          mark_row_fault t c.F.row;
          t.opens.(i) <- t.opens.(i) lor lbit;
          t.nopens <- t.nopens + 1
      | F.Data_retention (c, v) ->
          let i = idx t c in
          mark_row_fault t c.F.row;
          if t.ret_mask.(i) = 0 then t.ret_cells <- i :: t.ret_cells;
          t.ret_mask.(i) <- t.ret_mask.(i) lor lbit;
          set_lane_bit t.ret_val i lbit v
      | F.Coupling_inversion { aggressor; victim } ->
          let a = idx t aggressor and v = idx t victim in
          mark_row_fault t aggressor.F.row;
          mark_row_fault t victim.F.row;
          t.agg_effects.(a) <- Invert { victim = v; lbit } :: t.agg_effects.(a)
      | F.Coupling_idempotent { aggressor; rising; victim; forces } ->
          let a = idx t aggressor and v = idx t victim in
          mark_row_fault t aggressor.F.row;
          mark_row_fault t victim.F.row;
          t.agg_effects.(a) <-
            Force { rising; victim = v; forces; lbit } :: t.agg_effects.(a)
      | F.State_coupling { aggressor; when_state; victim; reads_as } ->
          let a = idx t aggressor and v = idx t victim in
          (* like the scalar model, only the victim's reads are special:
             the victim re-reads the aggressor's stored state on access *)
          mark_row_fault t victim.F.row;
          t.state_cpl.(v) <- (a, when_state, reads_as, lbit) :: t.state_cpl.(v))
    faults

let clear t =
  Array.fill t.state 0 (Array.length t.state) 0;
  (* re-assert pinned cells; for several stuck-ats on one (cell, lane)
     the last armed won in pin_val, same as the scalar re-assert order *)
  List.iter
    (fun i -> t.state.(i) <- t.pin_val.(i) land t.pin_mask.(i))
    t.pinned;
  Array.fill t.residue 0 (Array.length t.residue) 0

let retention_wait t =
  List.iter
    (fun i ->
      (* decay, pin-respecting, lane-wise *)
      let m = t.ret_mask.(i) land lnot t.pin_mask.(i) in
      t.state.(i) <- (t.state.(i) land lnot m) lor (t.ret_val.(i) land m))
    t.ret_cells

(* A successful state change on cell [i] fires its aggressor effects.
   Entries are walked in the same order the scalar model walks them
   (head = last armed); each effect re-reads the victim's fresh state
   and respects pins but not transition faults, and never cascades. *)
let fire t i ~changed ~nv =
  List.iter
    (fun eff ->
      match eff with
      | Invert { victim; lbit } ->
          let fl = changed land lbit in
          if fl <> 0 then begin
            let w = fl land lnot t.pin_mask.(victim) in
            t.state.(victim) <- t.state.(victim) lxor w
          end
      | Force { rising; victim; forces; lbit } ->
          let fired =
            changed land lbit land (if rising then nv else lnot nv)
          in
          if fired <> 0 then begin
            let w = fired land lnot t.pin_mask.(victim) in
            t.state.(victim) <-
              (if forces then t.state.(victim) lor w
               else t.state.(victim) land lnot w)
          end)
    t.agg_effects.(i)

(* Lane-wise legacy write: open and pinned lanes keep their value, a
   transition-faulted lane blocks the offending edge, every other lane
   stores [d]; lanes whose stored value actually changed fire the
   cell's coupling effects. *)
let write_cell t i d =
  let old_v = t.state.(i) in
  let blocked =
    (t.no_rise.(i) land d land lnot old_v)
    lor (t.no_fall.(i) land lnot d land old_v)
  in
  let keep = t.opens.(i) lor t.pin_mask.(i) lor blocked in
  let nv = (old_v land keep) lor (d land lnot keep) in
  if nv <> old_v || t.agg_effects.(i) <> [] then begin
    t.state.(i) <- nv;
    let changed = old_v lxor nv in
    if changed <> 0 then fire t i ~changed ~nv
  end

(* Lane-wise legacy read of cell [i] on I/O [io]: state-coupling
   entries override the stored value exactly like the scalar fold
   (the earliest-armed matching entry wins), open lanes return the
   sense residue untouched, every other lane refreshes it. *)
let read_cell t ~io i =
  let v = ref t.state.(i) in
  (match t.state_cpl.(i) with
  | [] -> ()
  | l ->
      List.iter
        (fun (agg, st, reads_as, lbit) ->
          if (t.state.(agg) land lbit <> 0) = st then
            v := (if reads_as then !v lor lbit else !v land lnot lbit))
        l);
  let op = t.opens.(i) in
  let out = (t.residue.(io) land op) lor (!v land lnot op) in
  t.residue.(io) <- out;
  out

(* ------------------------------------------------------------------ *)
(* word access (no remap: the lane engine only resolves clean lanes,
   whose TLB is empty and whose remap is the identity) *)

(* Broadcast expansion of a data word: element [b] is the lane mask of
   data bit [b] — [all] or [0].  The march engine expands each op's
   word once per element, so the per-address loops below touch only
   int arrays. *)
let expand t w =
  if Word.width w <> t.bpw then invalid_arg "Lanes: word width mismatch";
  Array.init t.bpw (fun bit -> if Word.get w bit then t.all else 0)

let write_exp t a exp =
  let base = Array.unsafe_get t.addr_base a in
  if row_is_faulty t (Array.unsafe_get t.addr_row a) then
    for bit = 0 to t.bpw - 1 do
      write_cell t (base + (bit * t.bpc)) (Array.unsafe_get exp bit)
    done
  else
    for bit = 0 to t.bpw - 1 do
      Array.unsafe_set t.state (base + (bit * t.bpc)) (Array.unsafe_get exp bit)
    done

(* Read-and-compare: returns the mask of lanes whose word differs from
   the expanded expected word — the lane-wise comparator/MISR
   reduction.  The fast path (clean row, no stuck-open anywhere) skips
   the residue refresh for the same reason the scalar model may: with
   no open cell the residue is unobservable. *)
let mismatch_exp t a exp =
  let base = Array.unsafe_get t.addr_base a in
  let acc = ref 0 in
  if t.nopens = 0 && not (row_is_faulty t (Array.unsafe_get t.addr_row a)) then
    for bit = 0 to t.bpw - 1 do
      acc :=
        !acc
        lor (Array.unsafe_get t.state (base + (bit * t.bpc))
            lxor Array.unsafe_get exp bit)
    done
  else
    for bit = 0 to t.bpw - 1 do
      acc :=
        !acc
        lor (read_cell t ~io:bit (base + (bit * t.bpc))
            lxor Array.unsafe_get exp bit)
    done;
  !acc land t.all

let write_word t a w = write_exp t a (expand t w)
let read_mismatch t a expected = mismatch_exp t a (expand t expected)

(* Per-I/O lane values of one word read (allocates; used by the
   differential tests, not the march hot path).  Side effects are those
   of exactly one word read. *)
let read_bits t a =
  let base = t.addr_base.(a) in
  if t.nopens = 0 && not (row_is_faulty t t.addr_row.(a)) then
    Array.init t.bpw (fun bit -> t.state.(base + (bit * t.bpc)))
  else Array.init t.bpw (fun bit -> read_cell t ~io:bit (base + (bit * t.bpc)))
