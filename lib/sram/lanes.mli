(** Lane-sliced batch simulation store (the PPSFP trick applied to
    Monte Carlo trials).

    Bit position [l] of every packed int is campaign trial [l]'s copy
    of that cell, so one int operation advances up to
    {!Word.max_width} trials at once.  Stimulus is broadcast — all
    lanes see the same march/sweep data — while each lane carries its
    own fault set, armed as per-lane AND/OR/XOR masks:

    - stuck-at: a pin mask and pin value per cell;
    - transition: a no-rise/no-fall mask blocking the faulted edge;
    - stuck-open: a keep mask on writes, sense-residue reads;
    - data retention: a decay mask applied at {!retention_wait};
    - coupling (inversion/idempotent): per-lane effects fired by the
      lanes whose aggressor bit actually changed;
    - state coupling: per-lane read overrides folded in the scalar
      model's entry order.

    Per lane the semantics equal {!Model}'s legacy path exactly (the
    qcheck differential property in [test_lanes] pins them together);
    there is deliberately no remap, because the batched campaign
    scheduler only resolves lanes whose whole flow is clean — their
    TLB is empty and their remap is the identity. *)

type t

(** [create org ~lanes] builds a zeroed lane store.
    @raise Invalid_argument if [org] is not simulable or [lanes] is
    outside [1 .. Word.max_width]. *)
val create : Org.t -> lanes:int -> t

val org : t -> Org.t
val nlanes : t -> int

(** Mask with one bit per armed lane: [(1 lsl lanes) - 1]. *)
val all_mask : t -> int

(** Arm one lane's fault list, mirroring {!Model.set_faults} for that
    lane.  Call once per lane, then {!clear} (the scalar model's
    [set_faults] ends with a clear).
    @raise Invalid_argument on an out-of-range lane or fault cell. *)
val arm : t -> lane:int -> Bisram_faults.Fault.t list -> unit

(** Power-up fill: zero every cell on every lane, re-assert stuck-at
    pins, forget the sense residue. *)
val clear : t -> unit

(** Broadcast a word write to all lanes at a logical address. *)
val write_word : t -> int -> Word.t -> unit

(** [read_mismatch t a expected] reads the word at [a] on every lane
    and returns the mask of lanes whose value differs from [expected]
    — the lane-wise comparator reduction used by the lane engine. *)
val read_mismatch : t -> int -> Word.t -> int

(** Broadcast expansion of a data word: element [b] is the lane mask
    ([all_mask] or [0]) of data bit [b].  The march engine expands
    each op's word once per element so the per-address loop touches
    only int arrays. *)
val expand : t -> Word.t -> int array

(** {!write_word} / {!read_mismatch} on a pre-expanded word. *)
val write_exp : t -> int -> int array -> unit

val mismatch_exp : t -> int -> int array -> int

(** Per-I/O lane values of one word read: element [b] is the lane mask
    of data bit [b].  Performs the side effects of exactly one word
    read (used by the differential tests; allocates). *)
val read_bits : t -> int -> int array

(** Retention decay on every armed lane (pin-respecting). *)
val retention_wait : t -> unit
