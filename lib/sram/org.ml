type t = {
  words : int;
  bpw : int;
  bpc : int;
  spares : int;
  spare_cols : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ?(spares = 4) ?(spare_cols = 0) ~words ~bpw ~bpc () =
  if not (is_pow2 bpc) then invalid_arg "Org.make: bpc must be a power of 2";
  if not (is_pow2 bpw) then invalid_arg "Org.make: bpw must be a power of 2";
  if words <= 0 || words mod bpc <> 0 then
    invalid_arg "Org.make: words must be a positive multiple of bpc";
  if not (List.mem spares [ 0; 4; 8; 16 ]) then
    invalid_arg "Org.make: spares must be 0, 4, 8 or 16";
  if spare_cols < 0 || spare_cols > 8 then
    invalid_arg "Org.make: spare_cols must be in 0 .. 8";
  { words; bpw; bpc; spares; spare_cols }

let rows t = t.words / t.bpc
let total_rows t = rows t + t.spares
let cols t = t.bpw * t.bpc
let total_cols t = cols t + t.spare_cols
let bits t = t.words * t.bpw
let kilobits t = float_of_int (bits t) /. 1024.0
let spare_words t = t.spares * t.bpc

let row_of_addr t a =
  if a < 0 || a >= t.words then invalid_arg "Org.row_of_addr: out of range";
  a / t.bpc

let col_of_addr t a =
  if a < 0 || a >= t.words then invalid_arg "Org.col_of_addr: out of range";
  a mod t.bpc

let addr_of t ~row ~col =
  if row < 0 || row >= rows t then invalid_arg "Org.addr_of: bad row";
  if col < 0 || col >= t.bpc then invalid_arg "Org.addr_of: bad col";
  (row * t.bpc) + col

let cell_col t ~col ~bit =
  if col < 0 || col >= t.bpc then invalid_arg "Org.cell_col: bad col";
  if bit < 0 || bit >= t.bpw then invalid_arg "Org.cell_col: bad bit";
  (bit * t.bpc) + col

(* The behavioural simulator (Model/Word/Datagen) packs a word into one
   native int, so it only accepts organizations with bpw <= Word.max_width.
   Layout-only flows (compile, area, timing, power) have no such bound:
   the paper's Fig. 6/7 modules use bpw = 128/256 and never simulate
   word accesses, which is why the guard lives at Model.create rather
   than here. *)
let simulable t = t.bpw <= Word.max_width

let equal (a : t) b = a = b

let pp ppf t =
  Format.fprintf ppf "%dw x %db (bpc=%d, %d+%d rows)" t.words t.bpw t.bpc
    (rows t) t.spares;
  if t.spare_cols > 0 then Format.fprintf ppf " +%dc" t.spare_cols
