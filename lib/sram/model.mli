(** Fault-aware behavioural model of the BISRAMGEN RAM array.

    The model covers the regular rows plus the spare rows, a per-I/O
    sense-amplifier residue (needed for the stuck-open read model), an
    optional row remap installed by the BISR logic, and a retention
    "wait" operation for IFA-9 data-retention testing.

    Storage is split by regime.  Rows with no armed fault machinery
    live in a packed store — one native int per (row, column-mux)
    word — so a clean-array access is a single array load/store of
    {!Word.to_int}/{!Word.of_int}.  Fault-armed rows live in a legacy
    byte-per-cell store driven by the per-cell fault machinery.  A row
    changes regime only inside {!set_faults} (whose trailing {!clear}
    restores power-up zeros in both stores) and {!set_fast_path}
    (which migrates the data), so the stores never disagree. *)

type t

(** @raise Invalid_argument when the organization is not
    {!Org.simulable} (bpw > [Word.max_width]). *)
val create : Org.t -> t
val org : t -> Org.t

(** Install functional faults (replaces any previous set).  Fault cells
    may lie in spare rows ([row < total_rows]). *)
val set_faults : t -> Bisram_faults.Fault.t list -> unit

val faults : t -> Bisram_faults.Fault.t list

(** [set_remap t f] installs a logical-row to physical-row translation
    (the TLB's output); [None] restores identity. *)
val set_remap : t -> (int -> int) option -> unit

(** [set_col_remap t f] installs a physical-column steering map (the 2D
    BIRA allocation's output): a word access to mux position [col]
    resolves bit [b] at physical column [f (b*bpc + col)] instead of
    [b*bpc + col].  Spare columns occupy physical columns
    [cols .. total_cols - 1].  While a map is armed every word access
    takes the per-bit path (the packed fast path assumes identity
    steering); [None] restores identity and re-enables the fast path.
    @raise Invalid_argument if the map sends any regular column outside
    [0 .. total_cols - 1]. *)
val set_col_remap : t -> (int -> int) option -> unit

(** Word access through the addressing logic (column mux + remap).
    @raise Invalid_argument if the address is out of range or the word
    width mismatches. *)
val read_word : t -> int -> Word.t

val write_word : t -> int -> Word.t -> unit

(** Direct physical-row access, bypassing the remap (used to test spare
    rows and by white-box tests). *)
val read_row_word : t -> row:int -> col:int -> Word.t

val write_row_word : t -> row:int -> col:int -> Word.t -> unit

(** Retention wait: every data-retention-faulty cell decays. *)
val retention_wait : t -> unit

(** Number of word reads/writes performed so far (test-length metric). *)
val reads : t -> int

val writes : t -> int

type stats = {
  s_reads : int;  (** word reads (= {!reads}) *)
  s_writes : int;  (** word writes (= {!writes}) *)
  s_fast_reads : int;  (** reads served by the packed fast path *)
  s_fast_writes : int;  (** writes served by the packed fast path *)
  s_rows_migrated : int;
      (** clean rows moved between stores by {!set_fast_path} *)
  s_rows_cleared : int;  (** dirty rows zeroed by {!clear} *)
}

(** Access-regime counters since creation.  Legacy-path traffic is
    [s_reads - s_fast_reads] / [s_writes - s_fast_writes].  These are
    plain per-model ints (no global telemetry involved); the campaign
    flushes them into the {!Bisram_obs.Obs} registry per trial. *)
val stats : t -> stats

(** Forget all stored data (power-up state: zeros, pinned cells at their
    stuck value); counters and faults are preserved.  Only rows written
    since the previous clear (plus fault-armed rows) are touched. *)
val clear : t -> unit

(** Testing seam: [set_fast_path t false] forces every access through
    the legacy per-cell fault machinery, even on fault-free rows.  The
    fast path (on by default) is observationally equivalent — the
    [test_sram] qcheck property holds the two paths against each
    other — so this is only for differential tests and benchmarks. *)
val set_fast_path : t -> bool -> unit
