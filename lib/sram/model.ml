module F = Bisram_faults.Fault

type agg_effect =
  | Invert of int (* victim idx *)
  | Force of { rising : bool; victim : int; forces : bool }

type t = {
  org : Org.t;
  ncells : int;
  nrows : int;
  cols : int; (* regular physical columns: bpw * bpc *)
  (* Row stride of the cell arrays: cols + spare_cols.  Cells at
     offsets cols .. tcols-1 within a row are the spare columns; they
     are reachable only through an armed column remap (and by fault
     arming), and they always live in the byte store — the packed store
     covers exactly the regular [cols] grid. *)
  tcols : int;
  bpc : int;
  bpw : int;
  (* Packed fast-path store: one int per (row, col-mux) word, bit [b]
     of slot [row * bpc + col] = cell (row, b*bpc + col).  Authoritative
     for every row without armed fault machinery while [fast] is on. *)
  packed : int array;
  (* Legacy byte-per-cell store: authoritative for fault-armed rows
     (and for every row when [fast] is off). *)
  cells : Bytes.t;
  (* fault indices, one slot per physical cell *)
  mutable fault_list : F.t list;
  pin : bool option array;
  no_rise : bool array;
  no_fall : bool array;
  opens : bool array;
  retention : bool option array;
  state_cpl : (int * bool * bool) list array; (* victim -> (agg, state, reads_as) *)
  agg_effects : agg_effect list array; (* aggressor -> effects *)
  sense_residue : bool array; (* one per I/O (bpw) *)
  mutable remap : (int -> int) option;
  (* Column steering (2D BIRA): maps a regular physical column to the
     physical column actually accessed (a spare column for repaired
     lines, itself everywhere else).  While armed, every word access
     takes the per-bit path — the packed fast path assumes the identity
     column map. *)
  mutable col_remap : (int -> int) option;
  mutable n_reads : int;
  mutable n_writes : int;
  (* Access-regime telemetry: how many of the reads/writes took the
     packed fast path, plus the row traffic of [set_fast_path]
     migrations and [clear].  Plain unconditional increments adjacent
     to the ones above — cheaper than any enabled-check would be. *)
  mutable n_fast_reads : int;
  mutable n_fast_writes : int;
  mutable n_rows_migrated : int;
  mutable n_rows_cleared : int;
  (* Fast-path bookkeeping.  [row_fault] marks every row on which any
     fault machinery is armed (fault site, coupling aggressor or
     victim); [row_written] marks rows whose data may differ from the
     power-up zeros.  [nfaults]/[nopens] are the armed totals, so the
     all-clean test is a single integer compare. *)
  mutable nfaults : int;
  mutable nopens : int;
  row_fault : Bytes.t;
  row_written : Bytes.t;
  mutable fast : bool; (* test seam: disable to force the legacy path *)
}

let org t = t.org

let create org =
  if not (Org.simulable org) then
    invalid_arg
      (Printf.sprintf
         "Model.create: bpw %d exceeds the packed simulator's %d-bit words \
          (layout-only flows accept it; simulation does not)"
         org.Org.bpw Word.max_width);
  let nrows = Org.total_rows org in
  let cols = Org.cols org in
  let tcols = Org.total_cols org in
  let ncells = nrows * tcols in
  { org
  ; ncells
  ; nrows
  ; cols
  ; tcols
  ; bpc = org.Org.bpc
  ; bpw = org.Org.bpw
  ; packed = Array.make (nrows * org.Org.bpc) 0
  ; cells = Bytes.make ncells '\000'
  ; fault_list = []
  ; pin = Array.make ncells None
  ; no_rise = Array.make ncells false
  ; no_fall = Array.make ncells false
  ; opens = Array.make ncells false
  ; retention = Array.make ncells None
  ; state_cpl = Array.make ncells []
  ; agg_effects = Array.make ncells []
  ; sense_residue = Array.make org.Org.bpw false
  ; remap = None
  ; col_remap = None
  ; n_reads = 0
  ; n_writes = 0
  ; n_fast_reads = 0
  ; n_fast_writes = 0
  ; n_rows_migrated = 0
  ; n_rows_cleared = 0
  ; nfaults = 0
  ; nopens = 0
  ; row_fault = Bytes.make nrows '\000'
  ; row_written = Bytes.make nrows '\000'
  ; fast = true
  }

let idx t (c : F.cell) =
  if c.F.row < 0 || c.F.row >= t.nrows then
    invalid_arg "Model: fault row out of range";
  if c.F.col < 0 || c.F.col >= t.tcols then
    invalid_arg "Model: fault col out of range";
  (c.F.row * t.tcols) + c.F.col

let row_is_faulty t row = Bytes.unsafe_get t.row_fault row <> '\000'
let mark_row_fault t row = Bytes.unsafe_set t.row_fault row '\001'
let mark_row_written t row = Bytes.unsafe_set t.row_written row '\001'

(* A cell's data lives in [packed] iff its row is in the fast regime.
   Rows change regime only inside [set_faults] (whose trailing [clear]
   wipes both stores back to power-up zeros) and [set_fast_path] (which
   migrates the data), so the two stores never disagree. *)
let row_in_packed t row = t.fast && not (row_is_faulty t row)

(* Cell-granular access used by the legacy fault machinery.  Regime
   aware: a State_coupling victim re-reads its aggressor's stored
   state, and the aggressor may sit on a clean (packed) row. *)
let stored t i =
  let row = i / t.tcols in
  let c = i - (row * t.tcols) in
  if c < t.cols && row_in_packed t row then begin
    let col = c mod t.bpc and bit = c / t.bpc in
    (Array.unsafe_get t.packed ((row * t.bpc) + col) lsr bit) land 1 = 1
  end
  else Bytes.get t.cells i <> '\000'

let store t i v =
  let row = i / t.tcols in
  let c = i - (row * t.tcols) in
  if c < t.cols && row_in_packed t row then begin
    let col = c mod t.bpc and bit = c / t.bpc in
    let slot = (row * t.bpc) + col in
    let cur = Array.unsafe_get t.packed slot in
    Array.unsafe_set t.packed slot
      (if v then cur lor (1 lsl bit) else cur land lnot (1 lsl bit))
  end
  else Bytes.set t.cells i (if v then '\001' else '\000')

let set_fast_path t on =
  if on <> t.fast then begin
    (* migrate every clean row between the two stores so the regime
       switch is observationally silent (fault-armed rows already live
       in the byte store on both sides) *)
    for row = 0 to t.nrows - 1 do
      if not (row_is_faulty t row) then begin
        t.n_rows_migrated <- t.n_rows_migrated + 1;
        (* only the regular [cols] grid migrates; spare-column cells
           are byte-store residents in both regimes *)
        for col = 0 to t.bpc - 1 do
          let slot = (row * t.bpc) + col in
          let base = (row * t.tcols) + col in
          if on then begin
            let v = ref 0 in
            for bit = 0 to t.bpw - 1 do
              if Bytes.unsafe_get t.cells (base + (bit * t.bpc)) <> '\000'
              then v := !v lor (1 lsl bit);
              Bytes.unsafe_set t.cells (base + (bit * t.bpc)) '\000'
            done;
            t.packed.(slot) <- !v
          end
          else begin
            let v = t.packed.(slot) in
            for bit = 0 to t.bpw - 1 do
              Bytes.unsafe_set t.cells
                (base + (bit * t.bpc))
                (if (v lsr bit) land 1 = 1 then '\001' else '\000')
            done;
            t.packed.(slot) <- 0
          end
        done
      end
    done;
    t.fast <- on
  end

let clear t =
  (* power-up fill, dirty rows only: a row holds non-zero data only if
     it was written (or force-stored / decayed, which is confined to
     fault-armed rows) since the previous clear *)
  for row = 0 to t.nrows - 1 do
    if
      Bytes.unsafe_get t.row_written row <> '\000'
      || Bytes.unsafe_get t.row_fault row <> '\000'
    then begin
      Bytes.fill t.cells (row * t.tcols) t.tcols '\000';
      Array.fill t.packed (row * t.bpc) t.bpc 0;
      Bytes.unsafe_set t.row_written row '\000';
      t.n_rows_cleared <- t.n_rows_cleared + 1
    end
  done;
  (* re-assert pinned cells; list order matches the pin-array contents
     (the last Stuck_at on a cell wins in both) *)
  List.iter
    (fun f -> match f with F.Stuck_at (c, v) -> store t (idx t c) v | _ -> ())
    t.fault_list;
  Array.fill t.sense_residue 0 (Array.length t.sense_residue) false

let set_faults t faults =
  (* tear down the previous fault machinery, armed rows only *)
  for row = 0 to t.nrows - 1 do
    if Bytes.unsafe_get t.row_fault row <> '\000' then begin
      let off = row * t.tcols in
      Array.fill t.pin off t.tcols None;
      Array.fill t.no_rise off t.tcols false;
      Array.fill t.no_fall off t.tcols false;
      Array.fill t.opens off t.tcols false;
      Array.fill t.retention off t.tcols None;
      Array.fill t.state_cpl off t.tcols [];
      Array.fill t.agg_effects off t.tcols [];
      (* the row may hold non-zero bytes planted by the old config
         without [row_written] being set (pin re-assertion in [clear],
         retention decay, coupling force-stores), so flag it written:
         once [row_fault] drops, only that flag makes the final [clear]
         restore the power-up zeros *)
      mark_row_written t row;
      Bytes.unsafe_set t.row_fault row '\000'
    end
  done;
  t.fault_list <- faults;
  t.nfaults <- 0;
  t.nopens <- 0;
  List.iter
    (fun f ->
      (match f with
      | F.Stuck_at (c, v) ->
          let i = idx t c in
          mark_row_fault t c.F.row;
          t.pin.(i) <- Some v
      | F.Transition (c, up) ->
          let i = idx t c in
          mark_row_fault t c.F.row;
          if up then t.no_rise.(i) <- true else t.no_fall.(i) <- true
      | F.Stuck_open c ->
          let i = idx t c in
          mark_row_fault t c.F.row;
          t.opens.(i) <- true;
          t.nopens <- t.nopens + 1
      | F.Data_retention (c, v) ->
          let i = idx t c in
          mark_row_fault t c.F.row;
          t.retention.(i) <- Some v
      | F.Coupling_inversion { aggressor; victim } ->
          let a = idx t aggressor and v = idx t victim in
          mark_row_fault t aggressor.F.row;
          mark_row_fault t victim.F.row;
          t.agg_effects.(a) <- Invert v :: t.agg_effects.(a)
      | F.Coupling_idempotent { aggressor; rising; victim; forces } ->
          let a = idx t aggressor and v = idx t victim in
          mark_row_fault t aggressor.F.row;
          mark_row_fault t victim.F.row;
          t.agg_effects.(a) <-
            Force { rising; victim = v; forces } :: t.agg_effects.(a)
      | F.State_coupling { aggressor; when_state; victim; reads_as } ->
          let a = idx t aggressor and v = idx t victim in
          (* only the victim's reads are special; plain writes to the
             aggressor stay on the fast path because the victim re-reads
             the aggressor's stored state on every access *)
          mark_row_fault t victim.F.row;
          t.state_cpl.(v) <- (a, when_state, reads_as) :: t.state_cpl.(v));
      t.nfaults <- t.nfaults + 1)
    faults;
  clear t

let faults t = t.fault_list
let set_remap t f = t.remap <- f

let set_col_remap t f =
  (match f with
  | None -> ()
  | Some g ->
      (* validate the whole map up front so the hot path can trust it *)
      for p = 0 to t.cols - 1 do
        let q = g p in
        if q < 0 || q >= t.tcols then
          invalid_arg "Model.set_col_remap: mapped column out of range"
      done);
  t.col_remap <- f

(* Coupling-driven store: respects pins (a stuck node cannot be flipped
   by crosstalk) but bypasses transition faults. *)
let force_store t i v =
  match t.pin.(i) with Some _ -> () | None -> store t i v

(* A successful state change on cell [i] fires its aggressor effects. *)
let fire_coupling t i ~old_v ~new_v =
  if old_v <> new_v then
    List.iter
      (fun eff ->
        match eff with
        | Invert victim -> force_store t victim (not (stored t victim))
        | Force { rising; victim; forces } ->
            if rising = new_v then force_store t victim forces)
      t.agg_effects.(i)

let write_bit t i v =
  if t.opens.(i) then () (* inaccessible cell *)
  else
    match t.pin.(i) with
    | Some _ -> () (* stuck node: write has no effect *)
    | None ->
        let old_v = stored t i in
        let blocked = (v && not old_v && t.no_rise.(i))
                      || ((not v) && old_v && t.no_fall.(i)) in
        if not blocked then begin
          store t i v;
          fire_coupling t i ~old_v ~new_v:v
        end

let read_bit t ~io i =
  if t.opens.(i) then t.sense_residue.(io) (* SOF: sense amp keeps residue *)
  else begin
    let v0 = stored t i in
    let v =
      List.fold_left
        (fun acc (agg, st, reads_as) ->
          if stored t agg = st then reads_as else acc)
        v0 t.state_cpl.(i)
    in
    t.sense_residue.(io) <- v;
    v
  end

let physical_row t row =
  match t.remap with None -> row | Some f -> f row

let check_word t w =
  if Word.width w <> t.bpw then invalid_arg "Model: word width mismatch"

(* A write lands on the fast path when the target row has no fault
   machinery armed: no pins/transition/open faults to consult and no
   aggressor effects to fire (aggressor rows are always marked).  The
   packed store makes it a single array store of the word's int. *)
let write_phys t ~row ~col w =
  check_word t w;
  if row < 0 || row >= t.nrows then invalid_arg "Model: row out of range";
  if col < 0 || col >= t.bpc then invalid_arg "Model: col out of range";
  (match t.col_remap with
  | None ->
      if t.fast && (t.nfaults = 0 || not (row_is_faulty t row)) then begin
        Array.unsafe_set t.packed ((row * t.bpc) + col) (Word.to_int w);
        t.n_fast_writes <- t.n_fast_writes + 1
      end
      else
        for bit = 0 to t.bpw - 1 do
          write_bit t ((row * t.tcols) + (bit * t.bpc) + col) (Word.get w bit)
        done
  | Some f ->
      (* steering armed: every access resolves per bit through the
         column map (repaired columns land on their spare column) *)
      for bit = 0 to t.bpw - 1 do
        write_bit t ((row * t.tcols) + f ((bit * t.bpc) + col)) (Word.get w bit)
      done);
  mark_row_written t row;
  t.n_writes <- t.n_writes + 1

(* A read is fast when the row is clean AND no stuck-open fault exists
   anywhere: the legacy path refreshes the per-I/O sense residue on
   every read, which is observable only through an open cell, so with
   [nopens = 0] skipping the refresh cannot change any later read.
   The fast case is a single array load; [of_int] re-masks, which is
   free on an already-packed value. *)
let read_phys t ~row ~col =
  if row < 0 || row >= t.nrows then invalid_arg "Model: row out of range";
  if col < 0 || col >= t.bpc then invalid_arg "Model: col out of range";
  let w =
    match t.col_remap with
    | None ->
        if
          t.fast
          && (t.nfaults = 0 || (t.nopens = 0 && not (row_is_faulty t row)))
        then begin
          t.n_fast_reads <- t.n_fast_reads + 1;
          Word.of_int ~width:t.bpw
            (Array.unsafe_get t.packed ((row * t.bpc) + col))
        end
        else
          (* [Word.init] applies f in increasing bit order, preserving
             the per-I/O sense-residue update sequence of the legacy
             path *)
          Word.init t.bpw (fun bit ->
              read_bit t ~io:bit ((row * t.tcols) + (bit * t.bpc) + col))
    | Some f ->
        Word.init t.bpw (fun bit ->
            read_bit t ~io:bit ((row * t.tcols) + f ((bit * t.bpc) + col)))
  in
  t.n_reads <- t.n_reads + 1;
  w

let read_word t a =
  let row = physical_row t (Org.row_of_addr t.org a) in
  read_phys t ~row ~col:(Org.col_of_addr t.org a)

let write_word t a w =
  let row = physical_row t (Org.row_of_addr t.org a) in
  write_phys t ~row ~col:(Org.col_of_addr t.org a) w

let read_row_word t ~row ~col = read_phys t ~row ~col
let write_row_word t ~row ~col w = write_phys t ~row ~col w

(* Decay is confined to retention-faulty cells, so walking the armed
   fault list replaces the legacy O(ncells) array scan; for several
   retention faults on one cell the last one wins on both paths. *)
let retention_wait t =
  List.iter
    (fun f ->
      match f with
      | F.Data_retention (c, v) ->
          let i = idx t c in
          if t.pin.(i) = None then store t i v
      | _ -> ())
    t.fault_list

let reads t = t.n_reads
let writes t = t.n_writes

type stats = {
  s_reads : int;
  s_writes : int;
  s_fast_reads : int;
  s_fast_writes : int;
  s_rows_migrated : int;
  s_rows_cleared : int;
}

let stats t =
  { s_reads = t.n_reads
  ; s_writes = t.n_writes
  ; s_fast_reads = t.n_fast_reads
  ; s_fast_writes = t.n_fast_writes
  ; s_rows_migrated = t.n_rows_migrated
  ; s_rows_cleared = t.n_rows_cleared
  }
