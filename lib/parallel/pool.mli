(** A small domain-pool scheduler for embarrassingly parallel index
    ranges (OCaml 5 [Domain] + [Atomic], no external dependency).

    Work items are the indices [0 .. n-1].  Workers claim chunks of
    consecutive indices from a shared atomic counter, so claims are
    handed out in index order and the completed set under an early stop
    is (with [chunk = 1] and one worker) an exact prefix.  Results are
    returned positionally, which lets the caller merge them in input
    order — the property the campaign relies on for byte-identical
    reports at any job count. *)

(** Upper bound the runtime considers useful for [jobs] on this
    machine ({!Domain.recommended_domain_count}). *)
val recommended_jobs : unit -> int

(** Per-worker utilization report, called once per worker (including
    the caller, [worker = 0]) on that worker's own domain just before
    it finishes: [busy_ns] is time spent inside [f], [total_ns] the
    worker's whole lifetime (so [total_ns - busy_ns] is idle/scheduling
    time), [chunks] the chunks claimed and [items] the items
    completed.  Chunk assignment depends on scheduling, so only the
    item/chunk {e totals} across workers are deterministic. *)
type probe =
  worker:int -> busy_ns:int64 -> total_ns:int64 -> chunks:int -> items:int ->
  unit

(** [map ~jobs ~chunk ~should_stop n f] computes [f i] for [i] in
    [0 .. n-1] on [jobs] workers ([jobs - 1] spawned domains plus the
    calling one) and returns the results in index order.

    [jobs] defaults to [1]: no domain is spawned and the calls happen
    sequentially in the caller, in index order.  [chunk] (default [1])
    is the number of consecutive indices a worker claims at a time.

    [should_stop] (default [fun () -> false]) is polled before every
    item; once it returns [true] no further item is started anywhere
    (items already in flight complete), and the corresponding slots are
    [None].  It may be called concurrently from every worker.

    If any [f i] raises, the pool stops claiming work, waits for the
    workers, and re-raises the first exception (with its backtrace) in
    the caller.

    [probe] (default absent: the hot loop reads no clock) receives one
    utilization report per worker.

    @raise Invalid_argument if [jobs < 1], [chunk < 1] or [n < 0]. *)
val map :
  ?jobs:int ->
  ?chunk:int ->
  ?should_stop:(unit -> bool) ->
  ?probe:probe ->
  int ->
  (int -> 'a) ->
  'a option array
