(** A small domain-pool scheduler for embarrassingly parallel index
    ranges (OCaml 5 [Domain] + [Atomic], no external dependency).

    Work items are the indices [0 .. n-1].  Workers claim chunks of
    consecutive indices from a shared atomic counter, so claims are
    handed out in index order and the completed set under an early stop
    is (with [chunk = 1] and one worker) an exact prefix.  Results are
    returned positionally, which lets the caller merge them in input
    order — the property the campaign relies on for byte-identical
    reports at any job count. *)

(** Upper bound the runtime considers useful for [jobs] on this
    machine ({!Domain.recommended_domain_count}). *)
val recommended_jobs : unit -> int

(** [map ~jobs ~chunk ~should_stop n f] computes [f i] for [i] in
    [0 .. n-1] on [jobs] workers ([jobs - 1] spawned domains plus the
    calling one) and returns the results in index order.

    [jobs] defaults to [1]: no domain is spawned and the calls happen
    sequentially in the caller, in index order.  [chunk] (default [1])
    is the number of consecutive indices a worker claims at a time.

    [should_stop] (default [fun () -> false]) is polled before every
    item; once it returns [true] no further item is started anywhere
    (items already in flight complete), and the corresponding slots are
    [None].  It may be called concurrently from every worker.

    If any [f i] raises, the pool stops claiming work, waits for the
    workers, and re-raises the first exception (with its backtrace) in
    the caller.

    @raise Invalid_argument if [jobs < 1], [chunk < 1] or [n < 0]. *)
val map :
  ?jobs:int ->
  ?chunk:int ->
  ?should_stop:(unit -> bool) ->
  int ->
  (int -> 'a) ->
  'a option array
