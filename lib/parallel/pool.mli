(** A small domain-pool scheduler for embarrassingly parallel index
    ranges (OCaml 5 [Domain] + [Atomic], no external dependency).

    Work items are the indices [0 .. n-1].  Workers claim chunks of
    consecutive indices from a shared atomic counter, so claims are
    handed out in index order and the completed set under an early stop
    is (with [chunk = 1] and one worker) an exact prefix.  Results are
    returned positionally, which lets the caller merge them in input
    order — the property the campaign relies on for byte-identical
    reports at any job count.

    Two entry points share one engine:

    - {!map} — legacy fail-fast semantics: the first exception stops
      the pool and re-raises in the caller.
    - {!map_result} — supervised semantics: a raising item is captured
      (with its backtrace and attempt count) into a structured
      {!job_result} in its own slot, [Transient]-flagged raises are
      retried with bounded backoff, and every other chunk keeps
      running.

    Both join every spawned domain before returning — a raising worker
    can never deadlock the pool or leak a domain (unit-tested). *)

(** Upper bound the runtime considers useful for [jobs] on this
    machine ({!Domain.recommended_domain_count}). *)
val recommended_jobs : unit -> int

(** Per-worker utilization report, called once per worker (including
    the caller, [worker = 0]) on that worker's own domain just before
    it finishes: [busy_ns] is time spent inside [f], [total_ns] the
    worker's whole lifetime (so [total_ns - busy_ns] is idle/scheduling
    time), [chunks] the chunks claimed and [items] the items
    completed.  Chunk assignment depends on scheduling, so only the
    item/chunk {e totals} across workers are deterministic. *)
type probe =
  worker:int -> busy_ns:int64 -> total_ns:int64 -> chunks:int -> items:int ->
  unit

(** Wrap an exception in [Transient] before raising to flag the
    failure as retryable: {!map_result} re-runs the item (up to
    [retries] times) instead of recording it.  The wrapper is stripped
    in the recorded {!failure} when retries are exhausted. *)
exception Transient of exn

(** Raised by {!check_deadline} once the running item's cooperative
    deadline has passed.  Deadlines are {e cooperative}: a domain
    cannot be preempted, so long-running items must poll
    {!check_deadline} at convenient points; the pool records the raise
    as a non-transient {!failure}. *)
exception Deadline_exceeded

type failure = {
  f_exn : exn;  (** the original exception ([Transient] stripped) *)
  f_backtrace : Printexc.raw_backtrace;
  f_transient : bool;
      (** the final raise was [Transient]-flagged (retries exhausted) *)
}

type 'a job_result = {
  outcome : ('a, failure) result;
  attempts : int;  (** total attempts made, >= 1 *)
}

(** The attempt number of the item currently running on this domain
    (1 on the first try; only [> 1] inside {!map_result} retries).
    Lets deterministic fault injection key its decision on the attempt
    so a retry re-rolls it. *)
val current_attempt : unit -> int

(** Poll the running item's cooperative deadline; raises
    {!Deadline_exceeded} when [deadline_ns] was given to {!map_result}
    and has elapsed for this item.  A no-op (cheap domain-local read)
    when no deadline is set, so library code can poll unconditionally. *)
val check_deadline : unit -> unit

(** [map ~jobs ~chunk ~should_stop n f] computes [f i] for [i] in
    [0 .. n-1] on [jobs] workers ([jobs - 1] spawned domains plus the
    calling one) and returns the results in index order.

    [jobs] defaults to [1]: no domain is spawned and the calls happen
    sequentially in the caller, in index order.  [chunk] (default [1])
    is the number of consecutive indices a worker claims at a time.

    [should_stop] (default [fun () -> false]) is polled before every
    item; once it returns [true] no further item is started anywhere
    (items already in flight complete), and the corresponding slots are
    [None].  It may be called concurrently from every worker.

    If any [f i] raises, the pool stops claiming work, waits for the
    workers, and re-raises the first exception (with its backtrace) in
    the caller.

    [probe] (default absent: the hot loop reads no clock) receives one
    utilization report per worker.

    @raise Invalid_argument if [jobs < 1], [chunk < 1] or [n < 0]. *)
val map :
  ?jobs:int ->
  ?chunk:int ->
  ?should_stop:(unit -> bool) ->
  ?probe:probe ->
  int ->
  (int -> 'a) ->
  'a option array

(** [map_result ~jobs ~chunk ~should_stop ~probe ~retries ~backoff_ns
    ~deadline_ns ~on_result n f] — like {!map}, but supervised: each
    slot holds a {!job_result} instead of a bare value, and an item
    that raises fails {e alone}.

    Retry: an item raising [Transient e] is re-run on the same worker,
    up to [retries] (default [2]) extra attempts, sleeping
    [backoff_ns * 2^(attempt-1)] (default [0], capped at 100 ms)
    between attempts.  A non-[Transient] raise, or a [Transient] one
    with retries exhausted, is recorded as [Error failure] in the
    item's slot; every other item still runs.

    Deadline: with [deadline_ns] each attempt gets a fresh cooperative
    deadline; {!check_deadline} polled inside [f] raises
    {!Deadline_exceeded} past it, recorded like any non-transient
    failure.

    [on_result] (default absent) runs on the completing worker's
    domain right after the item's slot is filled, receiving the index
    and the result it just produced — the seam the campaign uses to
    feed its checkpoint writer without cross-domain reads.  It must be
    safe to call concurrently from every worker.

    [on_retry] (default absent) runs on the raising worker's domain
    each time a [Transient] raise is about to be retried, receiving the
    index, the attempt number that just failed (starting at 1) and the
    unwrapped exception — the seam the observability layer uses to log
    retries.  Like [on_result], it must be safe to call concurrently
    from every worker.

    Determinism: with a deterministic [f] (per index and attempt), the
    returned array is identical at every [jobs]/[chunk] combination —
    failures land in their own slots, so no result depends on
    scheduling.

    @raise Invalid_argument if [jobs < 1], [chunk < 1], [n < 0] or
    [retries < 0]. *)
val map_result :
  ?jobs:int ->
  ?chunk:int ->
  ?should_stop:(unit -> bool) ->
  ?probe:probe ->
  ?retries:int ->
  ?backoff_ns:int64 ->
  ?deadline_ns:int64 ->
  ?on_result:(int -> 'a job_result -> unit) ->
  ?on_retry:(int -> attempt:int -> exn -> unit) ->
  int ->
  (int -> 'a) ->
  'a job_result option array

(** [batch_ranges ~items ~width] decomposes [0 .. items - 1] into
    [(start, len)] pool items: [items / width] full batches of [width]
    consecutive indices, then one single-index item per ragged-tail
    index (so the tail keeps the unbatched scheduler's chaos, retry
    and checkpoint granularity).  [width = 1] yields the identity
    decomposition.  Used by the campaign's lane-batch scheduler.
    @raise Invalid_argument if [items < 0] or [width < 1]. *)
val batch_ranges : items:int -> width:int -> (int * int) array
