(** Monotonic time, immune to wall-clock jumps (NTP steps, DST,
    manual resets).  Backed by [CLOCK_MONOTONIC] via the
    bechamel.monotonic_clock stub already used by the benchmarks.

    Chaos seam: when {!Bisram_chaos.Chaos} is armed with a clock skew,
    both readings are shifted by that constant — still monotonic, but
    time-budget and deadline paths see a perturbed clock. *)

(** Seconds since an arbitrary fixed origin; strictly non-decreasing
    within a process.  Only differences are meaningful. *)
val now : unit -> float

(** Nanoseconds since the same origin (the raw counter). *)
val now_ns : unit -> int64
