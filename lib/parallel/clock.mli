(** Monotonic time, immune to wall-clock jumps (NTP steps, DST,
    manual resets).  Backed by [CLOCK_MONOTONIC] via the
    bechamel.monotonic_clock stub already used by the benchmarks. *)

(** Seconds since an arbitrary fixed origin; strictly non-decreasing
    within a process.  Only differences are meaningful. *)
val now : unit -> float

(** Nanoseconds since the same origin (the raw counter). *)
val now_ns : unit -> int64
