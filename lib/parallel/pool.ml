let recommended_jobs () = Domain.recommended_domain_count ()

type probe =
  worker:int -> busy_ns:int64 -> total_ns:int64 -> chunks:int -> items:int ->
  unit

let map ?(jobs = 1) ?(chunk = 1) ?(should_stop = fun () -> false) ?probe n f =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Pool.map: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.map: negative length";
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let stopped = Atomic.make false in
  let error : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let probing = probe <> None in
  let worker widx () =
    let t_start = if probing then Clock.now_ns () else 0L in
    let busy = ref 0L in
    let chunks = ref 0 in
    let items = ref 0 in
    let continue = ref true in
    while !continue do
      if Atomic.get stopped then continue := false
      else begin
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= n then continue := false
        else begin
          incr chunks;
          let hi = min n (lo + chunk) in
          let i = ref lo in
          while !continue && !i < hi do
            if should_stop () then begin
              Atomic.set stopped true;
              continue := false
            end
            else begin
              let t0 = if probing then Clock.now_ns () else 0L in
              (match f !i with
              | v ->
                  results.(!i) <- Some v;
                  incr items
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  ignore (Atomic.compare_and_set error None (Some (e, bt)));
                  Atomic.set stopped true;
                  continue := false);
              if probing then
                busy := Int64.add !busy (Int64.sub (Clock.now_ns ()) t0);
              incr i
            end
          done
        end
      end
    done;
    match probe with
    | None -> ()
    | Some p ->
        (* runs on the worker's own domain, before the join: a probe
           writing to domain-local telemetry shards stays race-free *)
        p ~worker:widx ~busy_ns:!busy
          ~total_ns:(Int64.sub (Clock.now_ns ()) t_start)
          ~chunks:!chunks ~items:!items
  in
  (* never spawn more helpers than there are items left to hand out *)
  let helpers =
    List.init
      (min (jobs - 1) (max 0 (n - 1)))
      (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  List.iter Domain.join helpers;
  (match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  results
