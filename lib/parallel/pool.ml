let recommended_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 1) ?(chunk = 1) ?(should_stop = fun () -> false) n f =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Pool.map: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.map: negative length";
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let stopped = Atomic.make false in
  let error : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let worker () =
    let continue = ref true in
    while !continue do
      if Atomic.get stopped then continue := false
      else begin
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= n then continue := false
        else begin
          let hi = min n (lo + chunk) in
          let i = ref lo in
          while !continue && !i < hi do
            if should_stop () then begin
              Atomic.set stopped true;
              continue := false
            end
            else begin
              (match f !i with
              | v -> results.(!i) <- Some v
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  ignore (Atomic.compare_and_set error None (Some (e, bt)));
                  Atomic.set stopped true;
                  continue := false);
              incr i
            end
          done
        end
      end
    done
  in
  (* never spawn more helpers than there are items left to hand out *)
  let helpers =
    List.init
      (min (jobs - 1) (max 0 (n - 1)))
      (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join helpers;
  (match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  results
