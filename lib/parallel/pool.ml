let recommended_jobs () = Domain.recommended_domain_count ()

type probe =
  worker:int -> busy_ns:int64 -> total_ns:int64 -> chunks:int -> items:int ->
  unit

exception Transient of exn
exception Deadline_exceeded

type failure = {
  f_exn : exn;
  f_backtrace : Printexc.raw_backtrace;
  f_transient : bool;
}

type 'a job_result = { outcome : ('a, failure) result; attempts : int }

(* ------------------------------------------------------------------ *)
(* per-worker job context: the running attempt number and the current
   item's cooperative deadline, both domain-local so concurrently
   running items never observe each other's context *)

let attempt_key = Domain.DLS.new_key (fun () -> 1)
let deadline_key : int64 option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_attempt () = Domain.DLS.get attempt_key

let check_deadline () =
  match Domain.DLS.get deadline_key with
  | Some d when Clock.now_ns () > d -> raise Deadline_exceeded
  | _ -> ()

(* bounded spin between retry attempts; the clock is monotonic, so this
   terminates even under chaos skew.  Exponential in the attempt number
   and capped so a misconfigured backoff cannot stall a worker. *)
let backoff_cap_ns = 100_000_000L (* 100 ms *)

let backoff ~base_ns ~attempt =
  if base_ns > 0L then begin
    let scale = Int64.shift_left 1L (min 16 (attempt - 1)) in
    let wait =
      let w = Int64.mul base_ns scale in
      if Int64.compare w backoff_cap_ns > 0 || Int64.compare w 0L < 0 then
        backoff_cap_ns
      else w
    in
    let until = Int64.add (Clock.now_ns ()) wait in
    while Int64.compare (Clock.now_ns ()) until < 0 do
      Domain.cpu_relax ()
    done
  end

(* ------------------------------------------------------------------ *)
(* the shared engine

   [mode] decides what a raising item does to the rest of the run:

   - [`Abort]: legacy [map] semantics — record the first exception,
     stop handing out work, and re-raise in the caller after the join.
   - [`Supervise]: fault-tolerant [map_result] semantics — the failure
     is captured (with backtrace and attempt count) into the item's own
     slot after bounded retries of [Transient]-flagged raises, and
     every other chunk keeps running.

   Either way every spawned domain is joined before returning, so a
   raising worker can never deadlock the pool or leak a domain. *)

type 'a supervise_opts = {
  retries : int;
  backoff_ns : int64;
  deadline_ns : int64 option;
  on_result : (int -> 'a job_result -> unit) option;
  on_retry : (int -> attempt:int -> exn -> unit) option;
}

let run_pool ~jobs ~chunk ~should_stop ~probe ~mode n f_item =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let stopped = Atomic.make false in
  let error : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let probing = probe <> None in
  let worker widx () =
    let t_start = if probing then Clock.now_ns () else 0L in
    let busy = ref 0L in
    let chunks = ref 0 in
    let items = ref 0 in
    let continue = ref true in
    while !continue do
      if Atomic.get stopped then continue := false
      else begin
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= n then continue := false
        else begin
          incr chunks;
          let hi = min n (lo + chunk) in
          let i = ref lo in
          while !continue && !i < hi do
            if should_stop () then begin
              Atomic.set stopped true;
              continue := false
            end
            else begin
              let t0 = if probing then Clock.now_ns () else 0L in
              (match mode with
              | `Abort -> (
                  match f_item !i with
                  | v ->
                      results.(!i) <- Some { outcome = Ok v; attempts = 1 };
                      incr items
                  | exception e ->
                      let bt = Printexc.get_raw_backtrace () in
                      ignore
                        (Atomic.compare_and_set error None (Some (e, bt)));
                      Atomic.set stopped true;
                      continue := false)
              | `Supervise o ->
                  let rec attempt k =
                    Domain.DLS.set attempt_key k;
                    (match o.deadline_ns with
                    | None -> ()
                    | Some d ->
                        Domain.DLS.set deadline_key
                          (Some (Int64.add (Clock.now_ns ()) d)));
                    match f_item !i with
                    | v -> { outcome = Ok v; attempts = k }
                    | exception Transient e when k <= o.retries ->
                        (* fires on the raising worker, before the
                           re-attempt: the observability layer logs the
                           retry while the failure is still current *)
                        (match o.on_retry with
                        | None -> ()
                        | Some h -> h !i ~attempt:k e);
                        backoff ~base_ns:o.backoff_ns ~attempt:k;
                        attempt (k + 1)
                    | exception e ->
                        let f_backtrace = Printexc.get_raw_backtrace () in
                        let f_transient, f_exn =
                          match e with
                          | Transient e' -> (true, e')
                          | e -> (false, e)
                        in
                        { outcome = Error { f_exn; f_backtrace; f_transient }
                        ; attempts = k
                        }
                  in
                  let r = attempt 1 in
                  Domain.DLS.set attempt_key 1;
                  Domain.DLS.set deadline_key None;
                  results.(!i) <- Some r;
                  incr items;
                  (* runs on the completing worker with the result it
                     just produced (no cross-domain read): the
                     campaign's checkpoint hook feeds a mutex-guarded
                     table from here *)
                  (match o.on_result with
                  | None -> ()
                  | Some h -> h !i r));
              if probing then
                busy := Int64.add !busy (Int64.sub (Clock.now_ns ()) t0);
              incr i
            end
          done
        end
      end
    done;
    match probe with
    | None -> ()
    | Some p ->
        (* runs on the worker's own domain, before the join: a probe
           writing to domain-local telemetry shards stays race-free *)
        p ~worker:widx ~busy_ns:!busy
          ~total_ns:(Int64.sub (Clock.now_ns ()) t_start)
          ~chunks:!chunks ~items:!items
  in
  (* never spawn more helpers than there are items left to hand out *)
  let helpers =
    List.init
      (min (jobs - 1) (max 0 (n - 1)))
      (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  List.iter Domain.join helpers;
  (match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  results

let validate ~fn ~jobs ~chunk n =
  if jobs < 1 then invalid_arg (fn ^ ": jobs must be >= 1");
  if chunk < 1 then invalid_arg (fn ^ ": chunk must be >= 1");
  if n < 0 then invalid_arg (fn ^ ": negative length")

let map ?(jobs = 1) ?(chunk = 1) ?(should_stop = fun () -> false) ?probe n f =
  validate ~fn:"Pool.map" ~jobs ~chunk n;
  run_pool ~jobs ~chunk ~should_stop ~probe ~mode:`Abort n f
  |> Array.map (function
       | Some { outcome = Ok v; _ } -> Some v
       | Some { outcome = Error _; _ } -> assert false (* `Abort re-raises *)
       | None -> None)

let map_result ?(jobs = 1) ?(chunk = 1) ?(should_stop = fun () -> false)
    ?probe ?(retries = 2) ?(backoff_ns = 0L) ?deadline_ns ?on_result ?on_retry
    n f =
  validate ~fn:"Pool.map_result" ~jobs ~chunk n;
  if retries < 0 then invalid_arg "Pool.map_result: retries must be >= 0";
  run_pool ~jobs ~chunk ~should_stop ~probe
    ~mode:(`Supervise { retries; backoff_ns; deadline_ns; on_result; on_retry })
    n f

(* Lane-batch decomposition: the leading [items / width] pool items
   cover [width] consecutive indices each, the ragged tail degrades to
   single-index items so its chaos/retry/checkpoint granularity equals
   the unbatched scheduler's.  With [width = 1] this is the identity
   decomposition (one item per index). *)
let batch_ranges ~items ~width =
  if items < 0 then invalid_arg "Pool.batch_ranges: negative items";
  if width < 1 then invalid_arg "Pool.batch_ranges: width must be >= 1";
  let full = if width > 1 then items / width else 0 in
  let tail = items - (full * width) in
  Array.init (full + tail) (fun u ->
      if u < full then (u * width, width) else ((full * width) + u - full, 1))
