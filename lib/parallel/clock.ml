(* The chaos skew is a constant added on top of the monotonic counter:
   monotonicity is preserved, but budget/deadline math sees a shifted
   clock — the seam the chaos harness uses to provoke time-dependent
   paths.  Disarmed chaos costs one Atomic.get per reading. *)
let now_ns () = Int64.add (Monotonic_clock.now ()) (Bisram_chaos.Chaos.clock_skew_ns ())
let now () = Int64.to_float (now_ns ()) /. 1e9
