(** 2D remap layer: turn a spare allocation into the address-path
    translations the {!Bisram_sram.Model} can arm.

    Rows are remapped exactly like the TLB (logical row diverted to a
    physical spare row); columns are steered in the I/O path (a
    physical regular column replaced by a spare column at stride
    position [cols + k]).  Spares are consumed in increasing index
    order, skipping burned (known-faulty) ones. *)

(** [assign ~spares ~burned lines] pairs each line (ascending) with the
    lowest-index spare whose [burned] flag is unset, in order.  [None]
    when the unburned spares run out.  [burned] may be shorter than
    [spares] (missing entries are unburned). *)
val assign :
  spares:int -> burned:bool array -> int list -> (int * int) list option

(** [row_remap org pairs] — [pairs] maps logical rows to spare-row
    indices; the result diverts those rows to
    [regular_rows + spare] and is the identity elsewhere. *)
val row_remap : Bisram_sram.Org.t -> (int * int) list -> int -> int

(** [col_remap org pairs] — [pairs] maps regular physical columns to
    spare-column indices; the result steers those columns to
    [cols + spare] and is the identity elsewhere.  Suitable for
    {!Bisram_sram.Model.set_col_remap}. *)
val col_remap : Bisram_sram.Org.t -> (int * int) list -> int -> int
