type problem = {
  rows : int;
  cols : int;
  spare_rows : int;
  spare_cols : int;
  cells : (int * int) list;
}

type solution = { rep_rows : int list; rep_cols : int list }
type verdict = Cover of solution | Uncoverable

module type Allocator = sig
  val name : string
  val solve : problem -> verdict
end

let compare_cell (r1, c1) (r2, c2) =
  match compare (r1 : int) r2 with 0 -> compare (c1 : int) c2 | d -> d

let norm_cells cells = List.sort_uniq compare_cell cells

let check p =
  if p.rows <= 0 || p.cols <= 0 then
    invalid_arg "Cover: rows and cols must be positive";
  if p.spare_rows < 0 || p.spare_cols < 0 then
    invalid_arg "Cover: spare budgets must be non-negative";
  List.iter
    (fun (r, c) ->
      if r < 0 || r >= p.rows || c < 0 || c >= p.cols then
        invalid_arg "Cover: fault cell outside the regular grid")
    p.cells

let covers p s =
  List.length s.rep_rows <= p.spare_rows
  && List.length s.rep_cols <= p.spare_cols
  && List.for_all
       (fun (r, c) -> List.mem r s.rep_rows || List.mem c s.rep_cols)
       p.cells

(* Per-line fault counts of a cell list, as sorted (index, count) assoc. *)
let line_counts proj cells =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun cell ->
      let l = proj cell in
      Hashtbl.replace tbl l (1 + try Hashtbl.find tbl l with Not_found -> 0))
    cells;
  Hashtbl.fold (fun l n acc -> (l, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let remove_lines ~rows ~cols cells =
  List.filter (fun (r, c) -> not (List.mem r rows || List.mem c cols)) cells

(* Must-repair fixpoint: with [cb] columns still available, a row
   holding more than [cb] uncovered faults cannot be column-covered, so
   a row spare is forced (and symmetrically).  Forcing shrinks the
   budgets, which may force further lines — iterate until stable. *)
let must_repair p =
  check p;
  let rec go forced_r forced_c cells =
    let rb = p.spare_rows - List.length forced_r
    and cb = p.spare_cols - List.length forced_c in
    if rb < 0 || cb < 0 then None
    else
      let new_r =
        line_counts fst cells
        |> List.filter_map (fun (r, n) -> if n > cb then Some r else None)
      and new_c =
        line_counts snd cells
        |> List.filter_map (fun (c, n) -> if n > rb then Some c else None)
      in
      if new_r = [] && new_c = [] then
        Some (List.sort compare forced_r, List.sort compare forced_c, cells)
      else
        go (new_r @ forced_r) (new_c @ forced_c)
          (remove_lines ~rows:new_r ~cols:new_c cells)
  in
  go [] [] (norm_cells p.cells)

(* Greedy core shared by Greedy and Essential: repeatedly replace the
   line covering the most uncovered faults.  Ties go rows-before-cols,
   then lower index.  Returns the extra lines chosen. *)
let greedy_core ~rb ~cb cells =
  let best counts =
    List.fold_left
      (fun acc (l, n) ->
        match acc with Some (_, bn) when bn >= n -> acc | _ -> Some (l, n))
      None counts
  in
  let rec go rb cb chosen_r chosen_c cells =
    match cells with
    | [] -> Some (chosen_r, chosen_c)
    | _ ->
        let br = if rb > 0 then best (line_counts fst cells) else None
        and bc = if cb > 0 then best (line_counts snd cells) else None in
        let pick =
          match (br, bc) with
          | None, None -> None
          | Some r, None -> Some (`Row r)
          | None, Some c -> Some (`Col c)
          | Some ((_, rn) as r), Some ((_, cn) as c) ->
              if rn >= cn then Some (`Row r) else Some (`Col c)
        in
        (match pick with
        | None -> None
        | Some (`Row (r, _)) ->
            go (rb - 1) cb (r :: chosen_r) chosen_c
              (remove_lines ~rows:[ r ] ~cols:[] cells)
        | Some (`Col (c, _)) ->
            go rb (cb - 1) chosen_r (c :: chosen_c)
              (remove_lines ~rows:[] ~cols:[ c ] cells))
  in
  go rb cb [] [] cells

module Greedy = struct
  let name = "bira-greedy"

  let solve p =
    check p;
    match greedy_core ~rb:p.spare_rows ~cb:p.spare_cols (norm_cells p.cells) with
    | None -> Uncoverable
    | Some (rs, cs) ->
        Cover { rep_rows = List.sort compare rs; rep_cols = List.sort compare cs }
end

module Essential = struct
  let name = "bira-essential"

  (* After must-repair, a fault that is alone on both its row and its
     column (an orphan single) gives greedy no leverage — any single
     line covers exactly it.  Defer orphans, run greedy on the
     structured residue, then spend leftover budget on the orphans
     (row spares first). *)
  let solve p =
    match must_repair p with
    | None -> Uncoverable
    | Some (fr, fc, residue) -> (
        let row_cnt = line_counts fst residue
        and col_cnt = line_counts snd residue in
        let count counts l = try List.assoc l counts with Not_found -> 0 in
        let orphans, rest =
          List.partition
            (fun (r, c) -> count row_cnt r = 1 && count col_cnt c = 1)
            residue
        in
        let rb = p.spare_rows - List.length fr
        and cb = p.spare_cols - List.length fc in
        match greedy_core ~rb ~cb rest with
        | None -> Uncoverable
        | Some (gr, gc) ->
            let rb = ref (rb - List.length gr)
            and cb = ref (cb - List.length gc) in
            let rs = ref (fr @ gr) and cs = ref (fc @ gc) in
            let ok =
              List.for_all
                (fun (r, c) ->
                  if !rb > 0 then (decr rb; rs := r :: !rs; true)
                  else if !cb > 0 then (decr cb; cs := c :: !cs; true)
                  else false)
                (List.sort compare_cell orphans)
            in
            if not ok then Uncoverable
            else
              Cover
                {
                  rep_rows = List.sort_uniq compare !rs;
                  rep_cols = List.sort_uniq compare !cs;
                })
end

module Exhaustive = struct
  let name = "bira-bnb"

  (* Branch and bound over the residual fault list.  The first
     uncovered cell must be covered by its row or its column; explore
     the row branch first so that among equal-size covers the
     rows-before-columns one is found (and kept — later solutions must
     be strictly smaller to displace it), making the result
     deterministic.  Must-repair lines are in every feasible cover, so
     forcing them first preserves optimality. *)
  let solve p =
    match must_repair p with
    | None -> Uncoverable
    | Some (fr, fc, residue) -> (
        let rb0 = p.spare_rows - List.length fr
        and cb0 = p.spare_cols - List.length fc in
        let cells = Array.of_list (List.sort compare_cell residue) in
        let n = Array.length cells in
        let best = ref None in
        let rec go i rs cs rb cb used =
          let bound_ok =
            match !best with Some (b, _) -> used < b | None -> true
          in
          if bound_ok then
            if i >= n then best := Some (used, (rs, cs))
            else
              let r, c = cells.(i) in
              if List.mem r rs || List.mem c cs then
                go (i + 1) rs cs rb cb used
              else begin
                if rb > 0 then go (i + 1) (r :: rs) cs (rb - 1) cb (used + 1);
                if cb > 0 then go (i + 1) rs (c :: cs) rb (cb - 1) (used + 1)
              end
        in
        go 0 [] [] rb0 cb0 0;
        match !best with
        | None -> Uncoverable
        | Some (_, (rs, cs)) ->
            Cover
              {
                rep_rows = List.sort compare (fr @ rs);
                rep_cols = List.sort compare (fc @ cs);
              })
end

(* Test oracle: enumerate every within-budget subset of the candidate
   lines (only lines that contain a fault matter).  Exponential — small
   grids only. *)
let brute_force p =
  check p;
  let cells = norm_cells p.cells in
  let cand_rows = List.sort_uniq compare (List.map fst cells)
  and cand_cols = List.sort_uniq compare (List.map snd cells) in
  let rec subsets k = function
    | [] -> [ [] ]
    | x :: tl ->
        let without = subsets k tl in
        if k = 0 then without
        else List.map (fun s -> x :: s) (subsets (k - 1) tl) @ without
  in
  let best = ref None in
  List.iter
    (fun rs ->
      List.iter
        (fun cs ->
          let s = { rep_rows = rs; rep_cols = cs } in
          if covers p s then
            let sz = List.length rs + List.length cs in
            match !best with
            | Some (b, _) when b <= sz -> ()
            | _ -> best := Some (sz, s))
        (subsets p.spare_cols cand_cols))
    (subsets p.spare_rows cand_rows);
  match !best with None -> Uncoverable | Some (_, s) -> Cover s
