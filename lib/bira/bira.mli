(** The 2D built-in self-repair flow: detect → allocate → steer →
    verify, with iterated spare burning.

    This is the column-spare generalisation of the row-only TLB flow in
    {!Bisram_bisr.Repair}: pass 1 collects a bounded per-cell fault
    list from the march comparator, an {!Cover.Allocator} picks the
    spare rows/columns, the allocation is armed as a row remap plus a
    column steering map, and a verification march retests through the
    repair.  A verification failure on a repaired line burns that
    line's spare (the spare itself is faulty) and reallocates; a
    failure elsewhere is a newly learned fault cell.  The flow is pure
    besides the model it drives, and deterministic for a given model
    state. *)

type strategy = Greedy | Essential | Exhaustive

val strategy_name : strategy -> string
(** ["bira-greedy"], ["bira-essential"], ["bira-bnb"] — the CLI and
    report spellings. *)

val strategy_of_name : string -> strategy option
val allocator : strategy -> (module Cover.Allocator)

type alloc = {
  a_rows : int list;  (** logical rows replaced, ascending *)
  a_cols : int list;  (** regular physical columns replaced, ascending *)
}

type result = {
  b_outcome : Bisram_bisr.Repair.outcome;
      (** [Repaired rows] carries {!alloc.a_rows} (possibly [[]] for a
          column-only repair).  Allocation failure or fault-list
          overflow maps to [Too_many_faulty_rows]; exceeding
          [max_rounds] maps to [Fault_in_second_pass]. *)
  b_alloc : alloc option;  (** the armed allocation, on success only *)
  b_rounds : int;
      (** verification marches executed — same metric as
          {!Bisram_bisr.Repair.iterated_result.i_rounds}: 1 for a
          clean or first-try pass, 0 when detection already proved the
          memory unrepairable. *)
}

(** [run ~fast strategy model march ~backgrounds] executes the flow and
    leaves the successful repair armed in the model (normal-mode
    accesses are diverted), mirroring {!Bisram_bisr.Repair.run}.
    [fast] selects the packed-word comparator analog for fault-list
    extraction; [fast:false] re-extracts bit by bit and is the
    reference side of the campaign's differential oracle.
    [max_rounds] defaults to 4. *)
val run :
  ?max_rounds:int ->
  fast:bool ->
  strategy ->
  Bisram_sram.Model.t ->
  Bisram_bist.March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  result
