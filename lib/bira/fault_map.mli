(** Bounded per-cell fault bitmap fed by the BIST comparator.

    The BIRA hardware cannot store an unbounded fault list, and it does
    not need to: a repair with [R] spare rows and [C] spare columns can
    cover at most [R*cols + C*rows] distinct cells, so once more
    distinct cells than that have been seen the memory is provably
    uncoverable and collection stops.  Overflow therefore never causes
    a false "unrepairable" verdict relative to a full-knowledge
    allocator.

    Cells are extracted from march-engine failures.  The default
    extraction XORs the packed {!Bisram_sram.Word} values (one int op
    plus one iteration per differing bit — the comparator analog); the
    [fast:false] seam re-extracts bit by bit through {!Word.get} and is
    held against the packed path by the campaign's differential
    oracle. *)

type t

(** [create org] sizes the bound from the organization's spare budget.
    With no spares at all any fault overflows (bound 0). *)
val create : Bisram_sram.Org.t -> t

(** The (row, col) cells behind one comparator mismatch, in bit order.
    [fast] takes the packed-XOR path; [fast:false] the per-bit one —
    both must agree (differential oracle). *)
val failure_cells :
  fast:bool ->
  Bisram_sram.Org.t ->
  Bisram_bist.Engine.failure ->
  (int * int) list

(** Record every differing bit of each failure as a (row, col) cell.
    Detection passes only address the regular grid, so cells always
    satisfy [row < rows && col < cols].  Duplicate cells are free. *)
val add_failures :
  fast:bool -> t -> Bisram_bist.Engine.failure list -> unit

(** Record one cell directly (iterated-flow re-analysis). *)
val add_cell : t -> row:int -> col:int -> unit

val overflowed : t -> bool

(** Distinct cells seen so far, sorted by (row, col).  Meaningless when
    {!overflowed} (collection stopped). *)
val cells : t -> (int * int) list

val count : t -> int
