module Org = Bisram_sram.Org

let assign ~spares ~burned lines =
  let is_burned s = s < Array.length burned && burned.(s) in
  let rec go next = function
    | [] -> Some []
    | line :: tl ->
        let rec free s = if s >= spares then None
          else if is_burned s then free (s + 1)
          else Some s
        in
        (match free next with
        | None -> None
        | Some s -> (
            match go (s + 1) tl with
            | None -> None
            | Some rest -> Some ((line, s) :: rest)))
  in
  go 0 (List.sort compare lines)

let lookup_fn pairs base x =
  match List.assoc_opt x pairs with Some s -> base + s | None -> x

let row_remap org pairs =
  let base = Org.rows org in
  List.iter
    (fun (row, s) ->
      if row < 0 || row >= base then invalid_arg "Remap2d.row_remap: bad row";
      if s < 0 || s >= org.Org.spares then
        invalid_arg "Remap2d.row_remap: bad spare index")
    pairs;
  lookup_fn pairs base

let col_remap org pairs =
  let base = Org.cols org in
  List.iter
    (fun (col, s) ->
      if col < 0 || col >= base then invalid_arg "Remap2d.col_remap: bad col";
      if s < 0 || s >= org.Org.spare_cols then
        invalid_arg "Remap2d.col_remap: bad spare index")
    pairs;
  lookup_fn pairs base
