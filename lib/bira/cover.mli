(** The spare-allocation core of 2D built-in redundancy analysis.

    A memory with [spare_rows] spare rows and [spare_cols] spare
    columns is repairable iff the set of faulty cells can be covered by
    at most [spare_rows] row lines plus [spare_cols] column lines — the
    classic bipartite line-cover problem (NP-hard in general, tiny in
    practice because spare budgets are single digits).

    Every algorithm here is pure and deterministic: ties are broken
    rows-before-columns and lower-index-first, so a given problem
    always yields the same solution regardless of host parallelism. *)

type problem = {
  rows : int;  (** regular rows of the array *)
  cols : int;  (** regular columns of the array *)
  spare_rows : int;  (** row budget *)
  spare_cols : int;  (** column budget *)
  cells : (int * int) list;
      (** distinct faulty cells [(row, col)]; all within the regular
          grid.  Order is irrelevant (solvers sort internally). *)
}

type solution = {
  rep_rows : int list;  (** rows to replace, strictly increasing *)
  rep_cols : int list;  (** columns to replace, strictly increasing *)
}

type verdict = Cover of solution | Uncoverable

(** A pluggable repair allocator.  [solve] must respect the budgets and
    must be deterministic; it need not be optimal (only {!Exhaustive}
    is).  A [Cover] answer is always a genuine cover of every cell. *)
module type Allocator = sig
  val name : string
  val solve : problem -> verdict
end

(** Must-repair analysis: a row with more faulty cells than the
    remaining column budget can only be covered by a row spare (and
    symmetrically for columns).  Iterates to a fixpoint and returns the
    forced lines plus the residual cells, or [None] when the forced
    lines alone exceed a budget. *)
val must_repair :
  problem -> (int list * int list * (int * int) list) option

(** Most-faults-first line selection (no must-repair pre-pass). *)
module Greedy : Allocator

(** Must-repair fixpoint, then single-orphan fault deferral, then
    greedy on the residue. *)
module Essential : Allocator

(** Branch-and-bound over the fault list: provably finds a cover
    whenever one exists, and among covers uses the fewest lines
    (rows-before-columns on ties).  Exponential only in the spare
    budget, which is at most 16 + 8. *)
module Exhaustive : Allocator

(** Reference oracle for tests: enumerate every subset of candidate
    rows and columns within budget.  Only usable on small grids. *)
val brute_force : problem -> verdict

(** Does [s] cover every cell of [p] within budget?  (Test helper.) *)
val covers : problem -> solution -> bool
