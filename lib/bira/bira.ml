module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Engine = Bisram_bist.Engine
module Repair = Bisram_bisr.Repair

type strategy = Greedy | Essential | Exhaustive

let strategy_name = function
  | Greedy -> "bira-greedy"
  | Essential -> "bira-essential"
  | Exhaustive -> "bira-bnb"

let strategy_of_name = function
  | "bira-greedy" -> Some Greedy
  | "bira-essential" -> Some Essential
  | "bira-bnb" -> Some Exhaustive
  | _ -> None

let allocator : strategy -> (module Cover.Allocator) = function
  | Greedy -> (module Cover.Greedy)
  | Essential -> (module Cover.Essential)
  | Exhaustive -> (module Cover.Exhaustive)

type alloc = { a_rows : int list; a_cols : int list }

type result = {
  b_outcome : Repair.outcome;
  b_alloc : alloc option;
  b_rounds : int;
}

let unburned burned =
  Array.fold_left (fun n b -> if b then n else n + 1) 0 burned

let run ?(max_rounds = 4) ~fast strategy model march ~backgrounds =
  let org = Model.org model in
  let (module A : Cover.Allocator) = allocator strategy in
  Model.set_remap model None;
  Model.set_col_remap model None;
  let fmap = Fault_map.create org in
  let failures = Engine.run model march ~backgrounds in
  Fault_map.add_failures ~fast fmap failures;
  if failures = [] then
    { b_outcome = Repair.Passed_clean; b_alloc = None; b_rounds = 1 }
  else
    let burned_r = Array.make (max org.Org.spares 1) false
    and burned_c = Array.make (max org.Org.spare_cols 1) false in
    let too_many rounds =
      Model.set_remap model None;
      Model.set_col_remap model None;
      {
        b_outcome = Repair.Repair_unsuccessful Repair.Too_many_faulty_rows;
        b_alloc = None;
        b_rounds = rounds;
      }
    in
    let rec round n =
      if Fault_map.overflowed fmap then too_many (n - 1)
      else if n > max_rounds then begin
        Model.set_remap model None;
        Model.set_col_remap model None;
        {
          b_outcome = Repair.Repair_unsuccessful Repair.Fault_in_second_pass;
          b_alloc = None;
          b_rounds = max_rounds;
        }
      end
      else
        let problem =
          {
            Cover.rows = Org.rows org;
            cols = Org.cols org;
            spare_rows = min org.Org.spares (unburned burned_r);
            spare_cols = min org.Org.spare_cols (unburned burned_c);
            cells = Fault_map.cells fmap;
          }
        in
        match A.solve problem with
        | Cover.Uncoverable -> too_many (n - 1)
        | Cover.Cover sol -> (
            match
              ( Remap2d.assign ~spares:org.Org.spares ~burned:burned_r
                  sol.Cover.rep_rows,
                Remap2d.assign ~spares:org.Org.spare_cols ~burned:burned_c
                  sol.Cover.rep_cols )
            with
            | None, _ | _, None -> too_many (n - 1)
            | Some rpairs, Some cpairs ->
                Model.set_remap model
                  (if rpairs = [] then None
                   else Some (Remap2d.row_remap org rpairs));
                Model.set_col_remap model
                  (if cpairs = [] then None
                   else Some (Remap2d.col_remap org cpairs));
                let vfail = Engine.run model march ~backgrounds in
                if vfail = [] then
                  {
                    b_outcome = Repair.Repaired sol.Cover.rep_rows;
                    b_alloc =
                      Some
                        {
                          a_rows = sol.Cover.rep_rows;
                          a_cols = sol.Cover.rep_cols;
                        };
                    b_rounds = n;
                  }
                else begin
                  (* A mismatch on a repaired line means the spare
                     serving it is itself faulty: burn it (rows take
                     precedence when both lines are repaired) and
                     reallocate.  A mismatch elsewhere is a newly
                     learned fault cell. *)
                  List.iter
                    (fun f ->
                      List.iter
                        (fun (r, c) ->
                          match List.assoc_opt r rpairs with
                          | Some s -> burned_r.(s) <- true
                          | None -> (
                              match List.assoc_opt c cpairs with
                              | Some s -> burned_c.(s) <- true
                              | None -> Fault_map.add_cell fmap ~row:r ~col:c))
                        (Fault_map.failure_cells ~fast org f))
                    vfail;
                  round (n + 1)
                end)
    in
    if Fault_map.overflowed fmap then too_many 0 else round 1
